(* anonet — command-line interface to the library.

   Subcommands:
     views        print a node's depth-d local view (Figure 1)
     factor       compute the finite view graph / prime factor (Figure 2)
     solve        run a randomized anonymous algorithm (Las-Vegas)
     derandomize  solve the 2-hop colored variant deterministically
                  (A* / A_infinity, Theorems 1 and 2)
     decouple     the two-stage pipeline: randomized coloring +
                  deterministic stage
     norris       report the view stabilization depth (Theorem 3)
     stoneage     run an algorithm in the weak FSM model of [19]
     experiments  regenerate the figures/theorem validations
     serve        run jobs for remote clients over the wire protocol
     client       submit a job file to a running server

   solve, derandomize and experiments execute through Anonet_net.Runner —
   the same engine `anonet serve` runs jobs through — so a job submitted
   over a socket is byte-identical to the local subcommand.

   Graphs are described by compact specs, e.g.:
     cycle:6  path:5  complete:4  star:5  wheel:6  grid:3x4  torus:3x3
     hypercube:3  petersen  bintree:4  random:10,0.3,7  regular:10,3,7
     hamiltonian:8,0.2,7  gnp:1000000,8,1  file:PATH
*)

open Cmdliner
open Anonet_graph
module Problem = Anonet_problems.Problem
module Gran = Anonet_problems.Gran
module Catalog = Anonet_problems.Catalog
module Executor = Anonet_runtime.Executor
module Faults = Anonet_runtime.Faults
module Adversary = Anonet_runtime.Adversary
module Las_vegas = Anonet_runtime.Las_vegas
module Run_ctx = Anonet_runtime.Run_ctx
module Run_error = Anonet_runtime.Run_error
module Bundles = Anonet_algorithms.Bundles
module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs
module Metrics = Anonet_obs.Metrics
module Obs_events = Anonet_obs.Events
module Job = Anonet_net.Job
module Runner = Anonet_net.Runner
module Client = Anonet_net.Client

(* ---------- spec parsing (shared with the wire layer) ---------- *)

let parse_graph = Runner.graph_of_spec
let parse_coloring = Runner.coloring_of_spec
let parse_bundle = Runner.bundle_of_spec

(* ---------- common args ---------- *)

let graph_arg =
  let doc = "Graph spec, e.g. cycle:6, petersen, random:10,0.3,7, gnp:1000000,8,1, file:PATH." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAPH" ~doc)

let problem_arg pos_ix =
  let doc = "Problem: mis, coloring, 2hop, matching." in
  Arg.(required & pos pos_ix (some string) None & info [] ~docv:"PROBLEM" ~doc)

let seed_arg =
  let doc = "Random seed for Las-Vegas stages." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let jobs_arg =
  let doc =
    "Number of domains (OS threads) for parallel execution.  1 runs \
     sequentially; higher values race Las-Vegas attempts / shard the \
     minimal-simulation search / fan out experiment rows, with results \
     identical to a sequential run."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* ---------- observability flags ---------- *)

let metrics_arg =
  let doc =
    "Print a metrics trailer after the command: run counters (rounds, \
     messages, Las-Vegas attempts, fault injections, search effort), \
     gauges and timing histograms.  $(docv) is $(b,text) or $(b,json) \
     (single-line, schema anonet-metrics/1 — extract with tail -n 1)."
  in
  Arg.(value
       & opt (some (enum [ "text", `Text; "json", `Json ])) None
       & info [ "metrics" ] ~docv:"FORMAT" ~doc)

let events_arg =
  let doc =
    "Stream structured NDJSON events (round boundaries, fault injections, \
     Las-Vegas attempt lifecycle, search progress, profiling spans) to \
     $(docv), one JSON object per line."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)

(* Builds the observability handle from the two flags and hands it to the
   command body.  With neither flag this is exactly [Obs.null] — the
   instrumented code paths keep their uninstrumented behavior and output.
   The trailer/close runs on every way out, [exit 1] included (the
   [at_exit] hook), so a failing run still reports its metrics. *)
let with_obs metrics events f =
  match metrics, events with
  | None, None -> f Obs.null
  | _ ->
    let close_events, sink =
      match events with
      | None -> (fun () -> ()), None
      | Some path ->
        let oc = open_out path in
        (fun () -> close_out oc), Some (Obs_events.ndjson oc)
    in
    let registry = Metrics.create () in
    let obs = Obs.make ~metrics:registry ?events:sink () in
    let finished = ref false in
    let finish () =
      if not !finished then begin
        finished := true;
        (match metrics with
         | None -> ()
         | Some fmt ->
           (* Fold the process-lifetime cache totals (the cache.view and
              cache.encode families) into the registry — once, right before
              the snapshot. *)
           Anonet_views.Interned.publish_metrics obs;
           (match fmt with
            | `Text -> print_string (Metrics.render_text (Metrics.snapshot registry))
            | `Json -> print_string (Metrics.render_json (Metrics.snapshot registry))));
        close_events ()
      end
    in
    at_exit finish;
    let v = f obs in
    finish ();
    v

let print_outputs outputs =
  Array.iteri
    (fun v o -> Printf.printf "  node %2d: %s\n" v (Label.to_string o))
    outputs

(* ---------- subcommands ---------- *)

let views_cmd =
  let run spec root depth coloring =
    let g = parse_graph spec in
    let g =
      match coloring with
      | None -> g
      | Some c -> Problem.attach_coloring g (parse_coloring g c)
    in
    print_string
      (Anonet_views.View.to_string (Anonet_views.View.of_graph g ~root ~depth))
  in
  let root =
    Arg.(value & opt int 0 & info [ "root" ] ~doc:"Root node of the view.")
  in
  let depth =
    Arg.(value & opt int 3 & info [ "depth" ] ~doc:"View depth (>= 1).")
  in
  let coloring =
    Arg.(value & opt (some string) None
         & info [ "colors" ] ~doc:"Attach a coloring: unique, mod:K, random:SEED.")
  in
  Cmd.v
    (Cmd.info "views" ~doc:"Print a node's depth-d local view (Figure 1).")
    Term.(const run $ graph_arg $ root $ depth $ coloring)

let factor_cmd =
  let run spec coloring dot =
    let g = parse_graph spec in
    let colors = parse_coloring g (Option.value ~default:"unique" coloring) in
    let colored = Graph.with_labels g colors in
    let vg = Anonet_views.View_graph.of_graph_exn colored in
    let fg = vg.Anonet_views.View_graph.graph in
    Printf.printf "graph: %d nodes, %d edges\n" (Graph.n colored)
      (Graph.num_edges colored);
    Printf.printf "prime factor (finite view graph): %d nodes, %d edges\n"
      (Graph.n fg) (Graph.num_edges fg);
    Printf.printf "prime: %b | views stabilize at depth %d (n = %d, Norris ok: %b)\n"
      (Graph.n fg = Graph.n colored)
      vg.Anonet_views.View_graph.stable_view_depth (Graph.n colored)
      (Anonet_views.Norris.bound_holds colored);
    Printf.printf "factorizing map: [%s]\n"
      (String.concat "; "
         (Array.to_list (Array.map string_of_int vg.Anonet_views.View_graph.map)));
    if dot then
      print_string
        (Dot.of_factorization ~product:colored ~factor:fg
           ~map:vg.Anonet_views.View_graph.map ())
  in
  let coloring =
    Arg.(value & opt (some string) None
         & info [ "colors" ] ~doc:"Node coloring: unique (default), mod:K, random:SEED.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz output.") in
  Cmd.v
    (Cmd.info "factor" ~doc:"Compute the prime factor / view graph (Figure 2).")
    Term.(const run $ graph_arg $ coloring $ dot)

let solve_cmd =
  let run_solve problem spec seed trace faults_spec adversary_spec divergence
      retransmit jobs metrics events =
    if trace then begin
      (* the round-by-round timeline is a local diagnostic: it records and
         renders in-process and has no job-spec equivalent *)
      let g = parse_graph spec in
      let bundle = parse_bundle problem in
      let plan =
        match faults_spec with
        | None -> None
        | Some s -> begin
            match Faults.plan_of_string s with
            | Ok p -> Some p
            | Error m -> prerr_endline ("bad --faults spec: " ^ m); exit 1
          end
      in
      let adversary =
        match adversary_spec with
        | None -> None
        | Some s -> begin
            match Adversary.plan_of_string s with
            | Ok p -> Some p
            | Error m -> prerr_endline ("bad --adversary spec: " ^ m); exit 1
          end
      in
      (match plan with
       | None -> ()
       | Some p -> Printf.printf "fault plan: %s\n" (Faults.plan_to_string p));
      (match adversary with
       | None -> ()
       | Some p -> Printf.printf "adversary plan: %s\n" (Adversary.plan_to_string p));
      with_obs metrics events @@ fun obs ->
      let solver =
        if retransmit then Anonet_runtime.Retransmit.wrap ~obs bundle.Gran.solver
        else bundle.Gran.solver
      in
      let ctx = Run_ctx.make ?faults:plan ?adversary ~obs () in
      match
        Anonet_runtime.Trace.record ~ctx solver g
          ~tape:(Anonet_runtime.Tape.random ~seed)
          ~max_rounds:(64 * (Graph.n g + 4))
      with
      | Error (t, f) ->
        print_string (Anonet_runtime.Trace.render t);
        Format.printf "failed: %a@." Executor.pp_failure f;
        exit (Run_error.exit_code (Run_error.Sync f))
      | Ok (t, outcome) ->
        print_string (Anonet_runtime.Trace.render t);
        Printf.printf "valid: %b\n"
          (bundle.Gran.problem.Problem.is_valid_output g outcome.Executor.outputs)
    end
    else begin
      (* everything else goes through the wire layer's runner: `anonet
         serve` executes the same job record, so socket and CLI runs are
         byte-identical by construction *)
      let pairs =
        [ "problem", problem; "graph", spec; "seed", string_of_int seed;
          "jobs", string_of_int jobs ]
        @ (match faults_spec with None -> [] | Some s -> [ "faults", s ])
        @ (match adversary_spec with None -> [] | Some s -> [ "adversary", s ])
        @ (match divergence with
          | None -> []
          | Some d -> [ "divergence", string_of_float d ])
        @ (if retransmit then [ "retransmit", "true" ] else [])
      in
      with_obs metrics events @@ fun obs ->
      let outcome = Runner.execute ~obs { Job.kind = Job.Solve; pairs } in
      print_string outcome.Runner.out;
      if outcome.Runner.code <> 0 then begin
        prerr_endline outcome.Runner.err;
        exit outcome.Runner.code
      end
    end
  in
  let run problem spec seed trace faults_spec adversary_spec divergence
      retransmit jobs metrics events =
    (* Fault injection can feed an algorithm messages its protocol never
       anticipated (a loss-induced null mid-phase, a corrupted payload);
       decoders are entitled to reject them.  Report that as the diagnosis
       it is, not as an internal error. *)
    try
      run_solve problem spec seed trace faults_spec adversary_spec divergence
        retransmit jobs metrics events
    with Invalid_argument m when faults_spec <> None || adversary_spec <> None ->
      Printf.eprintf
        "fault injection broke the algorithm's protocol: %s\n\
         (expected for unwrapped algorithms on a faulty network — try \
         --retransmit)\n"
        m;
      exit 1
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print a round-by-round timeline.")
  in
  let faults_spec =
    let doc =
      "Inject faults, e.g. 'loss=0.2,seed=7' or \
       'loss=0.1,dup=0.05,crash=2\\@4,droplink=0-1,budget=10,seed=3'.  Keys: \
       loss, dup, corrupt (probabilities), seed, budget, crash=V\\@R or \
       crash=V\\@R1..R2 (crash-recovery), droplink=U-V.  See README."
    in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let adversary_spec =
    let doc =
      "Layer an adaptive adversary over the fault injector, e.g. \
       'byzantine=0+2,strength=0.5,seed=7', 'sniper=2,budget=40' or \
       'eavesdropper=3,strength=0.8'.  Exactly one strategy item \
       (byzantine=V1+V2..., sniper=K, eavesdropper=K); optional strength \
       (tamper probability, default 1), seed, budget.  See README."
    in
    Arg.(value & opt (some string) None & info [ "adversary" ] ~docv:"SPEC" ~doc)
  in
  let divergence =
    let doc =
      "Declare divergence (exit code 9) instead of retrying once an \
       attempt's escalated budget reaches $(docv) times the base round \
       budget and still fails — catches adversaries that systematically \
       prevent stabilization."
    in
    Arg.(value & opt (some float) None & info [ "divergence" ] ~docv:"FACTOR" ~doc)
  in
  let retransmit =
    Arg.(value & flag
         & info [ "retransmit" ]
             ~doc:"Wrap the algorithm in the retransmission/ack protocol \
                   (loss- and corruption-tolerant; see DESIGN.md).")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run the randomized anonymous algorithm (Las-Vegas).")
    Term.(const run $ problem_arg 0 $ Arg.(required & pos 1 (some string) None
                                           & info [] ~docv:"GRAPH") $ seed_arg $ trace
          $ faults_spec $ adversary_spec $ divergence $ retransmit $ jobs_arg
          $ metrics_arg $ events_arg)

let derandomize_cmd =
  let run problem spec coloring method_ jobs metrics events =
    let pairs =
      [ "problem", problem; "graph", spec; "colors", coloring;
        "method", method_; "jobs", string_of_int jobs ]
    in
    with_obs metrics events @@ fun obs ->
    let outcome = Runner.execute ~obs { Job.kind = Job.Derandomize; pairs } in
    print_string outcome.Runner.out;
    if outcome.Runner.code <> 0 then begin
      prerr_endline outcome.Runner.err;
      exit outcome.Runner.code
    end
  in
  let coloring =
    Arg.(value & opt string "random:1"
         & info [ "colors" ] ~doc:"2-hop coloring: unique, mod:K, random:SEED.")
  in
  let method_ =
    Arg.(value & opt string "a-infinity"
         & info [ "method" ] ~doc:"a-star (message passing) or a-infinity.")
  in
  Cmd.v
    (Cmd.info "derandomize"
       ~doc:"Solve the 2-hop colored variant deterministically (Theorems 1-2).")
    Term.(const run $ problem_arg 0
          $ Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH")
          $ coloring $ method_ $ jobs_arg $ metrics_arg $ events_arg)

let decouple_cmd =
  let run problem spec seed stage2 =
    let g = parse_graph spec in
    let bundle = parse_bundle problem in
    let stage_two =
      match stage2 with
      | "a-star" -> Anonet.Decouple.Generic_a_star
      | "a-infinity" -> Anonet.Decouple.Generic_a_infinity
      | "specific" -> begin
          match problem with
          | "mis" -> Anonet.Decouple.Specific Anonet_algorithms.Det_from_two_hop.mis
          | "coloring" ->
            Anonet.Decouple.Specific Anonet_algorithms.Det_from_two_hop.coloring
          | _ -> failwith "specific stage 2 available for mis and coloring only"
        end
      | m -> failwith (Printf.sprintf "unknown stage 2 %S" m)
    in
    match Anonet.Decouple.solve ~gran:bundle g ~seed ~stage_two () with
    | Error m -> prerr_endline m; exit 1
    | Ok r ->
      Printf.printf
        "stage 1 (randomized 2-hop coloring): %d rounds\n\
         stage 2 (deterministic): %d rounds\n"
        r.Anonet.Decouple.coloring_rounds r.Anonet.Decouple.stage_two_rounds;
      print_outputs r.Anonet.Decouple.outputs;
      Printf.printf "valid: %b\n"
        (bundle.Gran.problem.Problem.is_valid_output g r.Anonet.Decouple.outputs)
  in
  let stage2 =
    Arg.(value & opt string "specific"
         & info [ "stage2" ] ~doc:"a-star, a-infinity, or specific.")
  in
  Cmd.v
    (Cmd.info "decouple"
       ~doc:"Two-stage pipeline: randomized coloring, then deterministic stage.")
    Term.(const run $ problem_arg 0
          $ Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH")
          $ seed_arg $ stage2)

let norris_cmd =
  let run spec =
    let g = parse_graph spec in
    Printf.printf "n = %d, view stabilization depth = %d, bound holds: %b\n"
      (Graph.n g)
      (Anonet_views.Norris.stable_view_depth g)
      (Anonet_views.Norris.bound_holds g)
  in
  Cmd.v
    (Cmd.info "norris" ~doc:"View stabilization depth vs Norris' bound (Theorem 3).")
    Term.(const run $ graph_arg)

let stoneage_cmd =
  let run problem spec seed palette =
    let g = parse_graph spec in
    let machine =
      match problem with
      | "mis" -> Anonet_stoneage.Mis.machine
      | "coloring" ->
        Anonet_stoneage.Coloring.make
          ~palette:(Option.value ~default:(Graph.max_degree g + 1) palette)
      | "2hop" | "two-hop" ->
        let d = Graph.max_degree g in
        Anonet_stoneage.Two_hop.make
          ~palette:(Option.value ~default:((d * d) + 1) palette)
      | p -> failwith (Printf.sprintf "unknown stone-age problem %S" p)
    in
    match
      Anonet_stoneage.Engine.run machine g ~seed
        ~max_rounds:(100_000 * (Graph.n g + 4))
    with
    | Error e ->
      Format.eprintf "%a@." Anonet_stoneage.Engine.pp_failure e;
      exit 1
    | Ok { outputs; rounds } ->
      Printf.printf "stone-age %s finished in %d rounds:\n" problem rounds;
      print_outputs outputs
  in
  let palette =
    Arg.(value & opt (some int) None
         & info [ "palette" ] ~doc:"Color palette size (default Δ+1 / Δ²+1).")
  in
  Cmd.v
    (Cmd.info "stoneage"
       ~doc:"Run an algorithm in the weak finite-state-machine model of [19].")
    Term.(const run $ problem_arg 0
          $ Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH")
          $ seed_arg $ palette)

let experiments_cmd =
  let run id jobs metrics events =
    let pairs =
      ("jobs", string_of_int jobs)
      :: (match id with None -> [] | Some id -> [ "id", id ])
    in
    with_obs metrics events @@ fun obs ->
    let outcome = Runner.execute ~obs { Job.kind = Job.Experiment; pairs } in
    print_string outcome.Runner.out;
    if outcome.Runner.code <> 0 then begin
      prerr_endline outcome.Runner.err;
      exit outcome.Runner.code
    end
  in
  let id =
    let doc =
      "Experiment id (f1, f2, f3, t2, t3, lemmas, a1, a2, a3, a4, e1, e2, r1, \
       r2, avg); all when omitted."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's figures/theorem validations (EXPERIMENTS.md).")
    Term.(const run $ id $ jobs_arg $ metrics_arg $ events_arg)

let serve_cmd =
  let run listen jobs max_queue metrics events =
    match Anonet_net.Addr.of_string listen with
    | Error m -> prerr_endline m; exit 1
    | Ok addr -> (
      with_obs metrics events @@ fun obs ->
      match Anonet_net.Server.start ~obs ?domains:jobs ~max_queue addr with
      | Error m -> prerr_endline ("anonet serve: " ^ m); exit 1
      | Ok server ->
        Printf.printf "anonet serve: listening on %s\n%!" listen;
        (* block until the process is signalled *)
        let rec forever () = Unix.sleep 86_400; forever () in
        (try forever ()
         with e -> Anonet_net.Server.stop server; raise e))
  in
  let listen =
    let doc = "Listen address: unix:PATH or tcp:HOST:PORT." in
    Arg.(required & opt (some string) None & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let jobs =
    let doc =
      "Number of domains jobs are multiplexed across (defaults to the \
       machine's recommended domain count).  Up to this many jobs execute \
       concurrently."
    in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let max_queue =
    let doc =
      "Backpressure bound: submits beyond this many queued jobs are \
       answered with an immediate rejection (exit code 11 on the client)."
    in
    Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run solve/derandomize/experiment jobs for remote clients over \
             the anonet wire protocol.")
    Term.(const run $ listen $ jobs $ max_queue $ metrics_arg $ events_arg)

let client_cmd =
  let run connect jobfile events =
    match Anonet_net.Addr.of_string connect with
    | Error m -> prerr_endline m; exit 1
    | Ok addr ->
      let text =
        if jobfile = "-" then In_channel.input_all stdin
        else In_channel.with_open_bin jobfile In_channel.input_all
      in
      match Job.of_text text with
      | Error m -> prerr_endline m; exit 1
      | Ok job ->
        let close_events, on_event =
          match events with
          | None -> (fun () -> ()), fun _ -> ()
          | Some path ->
            let oc = open_out path in
            ( (fun () -> close_out oc),
              fun line -> output_string oc line; output_char oc '\n' )
        in
        let outcome = Client.submit addr job ~on_event in
        close_events ();
        print_string outcome.Runner.out;
        if outcome.Runner.code <> 0 then prerr_endline outcome.Runner.err;
        exit outcome.Runner.code
  in
  let connect =
    let doc = "Server address: unix:PATH or tcp:HOST:PORT." in
    Arg.(required & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let jobfile =
    let doc =
      "Job file: key=value lines ('-' reads stdin).  Needs \
       kind=solve|derandomize|experiment plus that kind's keys — the same \
       knobs the local subcommands take, e.g. kind=solve, problem=2hop, \
       graph=cycle:6, seed=5, faults=loss=0.2,seed=21, retransmit=true."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JOBFILE" ~doc)
  in
  let events =
    let doc =
      "Write the job's streamed NDJSON events to $(docv), exactly as the \
       equivalent local run's --events would."
    in
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Submit a job to a running anonet serve and stream its output.")
    Term.(const run $ connect $ jobfile $ events)

let main =
  let doc = "anonymous networks: randomization = 2-hop coloring (PODC 2014)" in
  Cmd.group (Cmd.info "anonet" ~version:"1.0.0" ~doc)
    [ views_cmd; factor_cmd; solve_cmd; derandomize_cmd; decouple_cmd; norris_cmd;
      stoneage_cmd; experiments_cmd; serve_cmd; client_cmd ]

(* Spec errors — from argument parsing deep inside a run — are user
   errors, not crashes: report the message alone and exit 1. *)
let () =
  try exit (Cmd.eval ~catch:false main) with
  | Runner.Bad_spec m | Failure m ->
    prerr_endline m;
    exit 1
