(* anonet — command-line interface to the library.

   Subcommands:
     views        print a node's depth-d local view (Figure 1)
     factor       compute the finite view graph / prime factor (Figure 2)
     solve        run a randomized anonymous algorithm (Las-Vegas)
     derandomize  solve the 2-hop colored variant deterministically
                  (A* / A_infinity, Theorems 1 and 2)
     decouple     the two-stage pipeline: randomized coloring +
                  deterministic stage
     norris       report the view stabilization depth (Theorem 3)
     stoneage     run an algorithm in the weak FSM model of [19]
     experiments  regenerate the figures/theorem validations

   Graphs are described by compact specs, e.g.:
     cycle:6  path:5  complete:4  star:5  wheel:6  grid:3x4  torus:3x3
     hypercube:3  petersen  bintree:4  random:10,0.3,7  regular:10,3,7
     hamiltonian:8,0.2,7  file:PATH
*)

open Cmdliner
open Anonet_graph
module Problem = Anonet_problems.Problem
module Gran = Anonet_problems.Gran
module Catalog = Anonet_problems.Catalog
module Executor = Anonet_runtime.Executor
module Faults = Anonet_runtime.Faults
module Adversary = Anonet_runtime.Adversary
module Las_vegas = Anonet_runtime.Las_vegas
module Run_ctx = Anonet_runtime.Run_ctx
module Run_error = Anonet_runtime.Run_error
module Bundles = Anonet_algorithms.Bundles
module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs
module Metrics = Anonet_obs.Metrics
module Obs_events = Anonet_obs.Events

(* ---------- graph spec parsing ---------- *)

let parse_ints s = List.map int_of_string (String.split_on_char ',' s)

let parse_graph spec =
  let fail () = failwith (Printf.sprintf "unknown graph spec %S" spec) in
  match String.split_on_char ':' spec with
  | [ "file"; path ] -> Graph_io.load path
  | [ "petersen" ] -> Gen.petersen ()
  | [ "cycle"; n ] -> Gen.cycle (int_of_string n)
  | [ "path"; n ] -> Gen.path (int_of_string n)
  | [ "complete"; n ] -> Gen.complete (int_of_string n)
  | [ "star"; n ] -> Gen.star (int_of_string n)
  | [ "wheel"; n ] -> Gen.wheel (int_of_string n)
  | [ "hypercube"; d ] -> Gen.hypercube (int_of_string d)
  | [ "bintree"; d ] -> Gen.binary_tree (int_of_string d)
  | [ "grid"; wh ] | [ "torus"; wh ] -> begin
      match String.split_on_char 'x' wh with
      | [ w; h ] ->
        let w = int_of_string w and h = int_of_string h in
        if String.length spec > 0 && spec.[0] = 'g' then Gen.grid w h
        else Gen.torus w h
      | _ -> fail ()
    end
  | [ "random"; args ] -> begin
      match String.split_on_char ',' args with
      | [ n; p; seed ] ->
        Gen.random_connected ~seed:(int_of_string seed) (int_of_string n)
          (float_of_string p)
      | _ -> fail ()
    end
  | [ "hamiltonian"; args ] -> begin
      match String.split_on_char ',' args with
      | [ n; p; seed ] ->
        Gen.random_hamiltonian ~seed:(int_of_string seed) (int_of_string n)
          (float_of_string p)
      | _ -> fail ()
    end
  | [ "regular"; args ] -> begin
      match parse_ints args with
      | [ n; d; seed ] -> Gen.random_regular ~seed n d
      | _ -> fail ()
    end
  | _ -> fail ()

(* ---------- coloring specs ---------- *)

let parse_coloring g spec =
  let n = Graph.n g in
  match String.split_on_char ':' spec with
  | [ "unique" ] -> Array.init n (fun v -> Label.Int v)
  | [ "mod"; k ] ->
    let k = int_of_string k in
    let c = Array.init n (fun v -> Label.Int (v mod k)) in
    if not (Props.is_k_hop_coloring g 2 (fun v -> c.(v))) then
      failwith (Printf.sprintf "mod:%d is not a 2-hop coloring of this graph" k);
    c
  | [ "random"; seed ] -> begin
      match
        Las_vegas.solve Anonet_algorithms.Rand_two_hop.algorithm g
          ~seed:(int_of_string seed) ()
      with
      | Ok r -> r.Las_vegas.outcome.Executor.outputs
      | Error m -> failwith m
    end
  | _ -> failwith (Printf.sprintf "unknown coloring spec %S" spec)

(* ---------- problem bundles ---------- *)

let parse_bundle = function
  | "mis" -> Bundles.mis
  | "coloring" -> Bundles.coloring
  | "2hop" | "two-hop" -> Bundles.two_hop_coloring
  | "matching" -> Bundles.maximal_matching
  | p -> failwith (Printf.sprintf "unknown problem %S (mis|coloring|2hop|matching)" p)

(* ---------- common args ---------- *)

let graph_arg =
  let doc = "Graph spec, e.g. cycle:6, petersen, random:10,0.3,7, file:PATH." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAPH" ~doc)

let problem_arg pos_ix =
  let doc = "Problem: mis, coloring, 2hop, matching." in
  Arg.(required & pos pos_ix (some string) None & info [] ~docv:"PROBLEM" ~doc)

let seed_arg =
  let doc = "Random seed for Las-Vegas stages." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let jobs_arg =
  let doc =
    "Number of domains (OS threads) for parallel execution.  1 runs \
     sequentially; higher values race Las-Vegas attempts / shard the \
     minimal-simulation search / fan out experiment rows, with results \
     identical to a sequential run."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* ---------- observability flags ---------- *)

let metrics_arg =
  let doc =
    "Print a metrics trailer after the command: run counters (rounds, \
     messages, Las-Vegas attempts, fault injections, search effort), \
     gauges and timing histograms.  $(docv) is $(b,text) or $(b,json) \
     (single-line, schema anonet-metrics/1 — extract with tail -n 1)."
  in
  Arg.(value
       & opt (some (enum [ "text", `Text; "json", `Json ])) None
       & info [ "metrics" ] ~docv:"FORMAT" ~doc)

let events_arg =
  let doc =
    "Stream structured NDJSON events (round boundaries, fault injections, \
     Las-Vegas attempt lifecycle, search progress, profiling spans) to \
     $(docv), one JSON object per line."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)

(* Builds the observability handle from the two flags and hands it to the
   command body.  With neither flag this is exactly [Obs.null] — the
   instrumented code paths keep their uninstrumented behavior and output.
   The trailer/close runs on every way out, [exit 1] included (the
   [at_exit] hook), so a failing run still reports its metrics. *)
let with_obs metrics events f =
  match metrics, events with
  | None, None -> f Obs.null
  | _ ->
    let close_events, sink =
      match events with
      | None -> (fun () -> ()), None
      | Some path ->
        let oc = open_out path in
        (fun () -> close_out oc), Some (Obs_events.ndjson oc)
    in
    let registry = Metrics.create () in
    let obs = Obs.make ~metrics:registry ?events:sink () in
    let finished = ref false in
    let finish () =
      if not !finished then begin
        finished := true;
        (match metrics with
         | None -> ()
         | Some fmt ->
           (* Fold the process-lifetime cache totals (the cache.view and
              cache.encode families) into the registry — once, right before
              the snapshot. *)
           Anonet_views.Interned.publish_metrics obs;
           (match fmt with
            | `Text -> print_string (Metrics.render_text (Metrics.snapshot registry))
            | `Json -> print_string (Metrics.render_json (Metrics.snapshot registry))));
        close_events ()
      end
    in
    at_exit finish;
    let v = f obs in
    finish ();
    v

(* The pool lives exactly as long as the command body: workers are joined
   on the way out even if the body raises. *)
let with_jobs ?obs jobs f =
  if jobs <= 1 then f None
  else Pool.with_pool ?obs ~domains:jobs (fun p -> f (Some p))

let print_outputs outputs =
  Array.iteri
    (fun v o -> Printf.printf "  node %2d: %s\n" v (Label.to_string o))
    outputs

(* ---------- subcommands ---------- *)

let views_cmd =
  let run spec root depth coloring =
    let g = parse_graph spec in
    let g =
      match coloring with
      | None -> g
      | Some c -> Problem.attach_coloring g (parse_coloring g c)
    in
    print_string
      (Anonet_views.View.to_string (Anonet_views.View.of_graph g ~root ~depth))
  in
  let root =
    Arg.(value & opt int 0 & info [ "root" ] ~doc:"Root node of the view.")
  in
  let depth =
    Arg.(value & opt int 3 & info [ "depth" ] ~doc:"View depth (>= 1).")
  in
  let coloring =
    Arg.(value & opt (some string) None
         & info [ "colors" ] ~doc:"Attach a coloring: unique, mod:K, random:SEED.")
  in
  Cmd.v
    (Cmd.info "views" ~doc:"Print a node's depth-d local view (Figure 1).")
    Term.(const run $ graph_arg $ root $ depth $ coloring)

let factor_cmd =
  let run spec coloring dot =
    let g = parse_graph spec in
    let colors = parse_coloring g (Option.value ~default:"unique" coloring) in
    let colored = Graph.with_labels g colors in
    let vg = Anonet_views.View_graph.of_graph_exn colored in
    let fg = vg.Anonet_views.View_graph.graph in
    Printf.printf "graph: %d nodes, %d edges\n" (Graph.n colored)
      (Graph.num_edges colored);
    Printf.printf "prime factor (finite view graph): %d nodes, %d edges\n"
      (Graph.n fg) (Graph.num_edges fg);
    Printf.printf "prime: %b | views stabilize at depth %d (n = %d, Norris ok: %b)\n"
      (Graph.n fg = Graph.n colored)
      vg.Anonet_views.View_graph.stable_view_depth (Graph.n colored)
      (Anonet_views.Norris.bound_holds colored);
    Printf.printf "factorizing map: [%s]\n"
      (String.concat "; "
         (Array.to_list (Array.map string_of_int vg.Anonet_views.View_graph.map)));
    if dot then
      print_string
        (Dot.of_factorization ~product:colored ~factor:fg
           ~map:vg.Anonet_views.View_graph.map ())
  in
  let coloring =
    Arg.(value & opt (some string) None
         & info [ "colors" ] ~doc:"Node coloring: unique (default), mod:K, random:SEED.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz output.") in
  Cmd.v
    (Cmd.info "factor" ~doc:"Compute the prime factor / view graph (Figure 2).")
    Term.(const run $ graph_arg $ coloring $ dot)

let solve_cmd =
  let run_solve problem spec seed trace faults_spec adversary_spec divergence
      retransmit jobs metrics events =
    let g = parse_graph spec in
    let bundle = parse_bundle problem in
    let plan =
      match faults_spec with
      | None -> None
      | Some s -> begin
          match Faults.plan_of_string s with
          | Ok p -> Some p
          | Error m -> prerr_endline ("bad --faults spec: " ^ m); exit 1
        end
    in
    let adversary =
      match adversary_spec with
      | None -> None
      | Some s -> begin
          match Adversary.plan_of_string s with
          | Ok p -> Some p
          | Error m -> prerr_endline ("bad --adversary spec: " ^ m); exit 1
        end
    in
    (match plan with
     | None -> ()
     | Some p -> Printf.printf "fault plan: %s\n" (Faults.plan_to_string p));
    (match adversary with
     | None -> ()
     | Some p -> Printf.printf "adversary plan: %s\n" (Adversary.plan_to_string p));
    with_obs metrics events @@ fun obs ->
    let solver =
      if retransmit then Anonet_runtime.Retransmit.wrap ~obs bundle.Gran.solver
      else bundle.Gran.solver
    in
    if trace then begin
      let ctx = Run_ctx.make ?faults:plan ?adversary ~obs () in
      match
        Anonet_runtime.Trace.record ~ctx solver g
          ~tape:(Anonet_runtime.Tape.random ~seed)
          ~max_rounds:(64 * (Graph.n g + 4))
      with
      | Error (t, f) ->
        print_string (Anonet_runtime.Trace.render t);
        Format.printf "failed: %a@." Executor.pp_failure f;
        exit (Run_error.exit_code (Run_error.Sync f))
      | Ok (t, outcome) ->
        print_string (Anonet_runtime.Trace.render t);
        Printf.printf "valid: %b\n"
          (bundle.Gran.problem.Problem.is_valid_output g outcome.Executor.outputs)
    end
    else begin
      match
        with_jobs ~obs jobs (fun pool ->
            let ctx = Run_ctx.make ?faults:plan ?adversary ?pool ~obs () in
            Las_vegas.solve_detailed ~ctx solver g ~seed ?divergence ())
      with
      | Error f ->
        prerr_endline f.Las_vegas.message;
        exit (Run_error.exit_code (Run_error.Las_vegas f))
      | Ok r ->
        let o = r.Las_vegas.outcome.Executor.outputs in
        Printf.printf "solved %s in %d rounds (%d messages, attempt %d):\n" problem
          r.Las_vegas.outcome.Executor.rounds r.Las_vegas.outcome.Executor.messages
          r.Las_vegas.attempts;
        print_outputs o;
        Printf.printf "valid: %b\n" (bundle.Gran.problem.Problem.is_valid_output g o)
    end
  in
  let run problem spec seed trace faults_spec adversary_spec divergence
      retransmit jobs metrics events =
    (* Fault injection can feed an algorithm messages its protocol never
       anticipated (a loss-induced null mid-phase, a corrupted payload);
       decoders are entitled to reject them.  Report that as the diagnosis
       it is, not as an internal error. *)
    try
      run_solve problem spec seed trace faults_spec adversary_spec divergence
        retransmit jobs metrics events
    with Invalid_argument m when faults_spec <> None || adversary_spec <> None ->
      Printf.eprintf
        "fault injection broke the algorithm's protocol: %s\n\
         (expected for unwrapped algorithms on a faulty network — try \
         --retransmit)\n"
        m;
      exit 1
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print a round-by-round timeline.")
  in
  let faults_spec =
    let doc =
      "Inject faults, e.g. 'loss=0.2,seed=7' or \
       'loss=0.1,dup=0.05,crash=2\\@4,droplink=0-1,budget=10,seed=3'.  Keys: \
       loss, dup, corrupt (probabilities), seed, budget, crash=V\\@R or \
       crash=V\\@R1..R2 (crash-recovery), droplink=U-V.  See README."
    in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let adversary_spec =
    let doc =
      "Layer an adaptive adversary over the fault injector, e.g. \
       'byzantine=0+2,strength=0.5,seed=7', 'sniper=2,budget=40' or \
       'eavesdropper=3,strength=0.8'.  Exactly one strategy item \
       (byzantine=V1+V2..., sniper=K, eavesdropper=K); optional strength \
       (tamper probability, default 1), seed, budget.  See README."
    in
    Arg.(value & opt (some string) None & info [ "adversary" ] ~docv:"SPEC" ~doc)
  in
  let divergence =
    let doc =
      "Declare divergence (exit code 9) instead of retrying once an \
       attempt's escalated budget reaches $(docv) times the base round \
       budget and still fails — catches adversaries that systematically \
       prevent stabilization."
    in
    Arg.(value & opt (some float) None & info [ "divergence" ] ~docv:"FACTOR" ~doc)
  in
  let retransmit =
    Arg.(value & flag
         & info [ "retransmit" ]
             ~doc:"Wrap the algorithm in the retransmission/ack protocol \
                   (loss- and corruption-tolerant; see DESIGN.md).")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run the randomized anonymous algorithm (Las-Vegas).")
    Term.(const run $ problem_arg 0 $ Arg.(required & pos 1 (some string) None
                                           & info [] ~docv:"GRAPH") $ seed_arg $ trace
          $ faults_spec $ adversary_spec $ divergence $ retransmit $ jobs_arg
          $ metrics_arg $ events_arg)

let derandomize_cmd =
  let run problem spec coloring method_ jobs metrics events =
    let g = parse_graph spec in
    let bundle = parse_bundle problem in
    let colors = parse_coloring g coloring in
    let inst = Problem.attach_coloring g colors in
    with_obs metrics events @@ fun obs ->
    match method_ with
    | "a-star" -> begin
        match
          with_jobs ~obs jobs (fun pool ->
              Anonet.A_star.solve ~ctx:(Run_ctx.make ?pool ~obs ())
                ~gran:bundle inst ())
        with
        | Error m -> prerr_endline m; exit 1
        | Ok outcome ->
          Printf.printf "A* solved %s^c deterministically in %d rounds:\n" problem
            outcome.Executor.rounds;
          print_outputs outcome.Executor.outputs;
          Printf.printf "valid: %b\n"
            (bundle.Gran.problem.Problem.is_valid_output g outcome.Executor.outputs)
      end
    | "a-infinity" -> begin
        match
          with_jobs ~obs jobs (fun pool ->
              Anonet.A_infinity.solve ~ctx:(Run_ctx.make ?pool ~obs ())
                ~gran:bundle inst ())
        with
        | Error m -> prerr_endline m; exit 1
        | Ok r ->
          Printf.printf
            "A_infinity solved %s^c (view graph: %d nodes; simulation: %d rounds; \
             search: %d states):\n"
            problem
            (Graph.n r.Anonet.A_infinity.view_graph.Anonet_views.View_graph.graph)
            (Anonet.Bit_assignment.max_length
               r.Anonet.A_infinity.found.Anonet.Min_search.assignment)
            r.Anonet.A_infinity.found.Anonet.Min_search.states_explored;
          print_outputs r.Anonet.A_infinity.outputs;
          Printf.printf "valid: %b\n"
            (bundle.Gran.problem.Problem.is_valid_output g r.Anonet.A_infinity.outputs)
      end
    | m -> failwith (Printf.sprintf "unknown method %S (a-star|a-infinity)" m)
  in
  let coloring =
    Arg.(value & opt string "random:1"
         & info [ "colors" ] ~doc:"2-hop coloring: unique, mod:K, random:SEED.")
  in
  let method_ =
    Arg.(value & opt string "a-infinity"
         & info [ "method" ] ~doc:"a-star (message passing) or a-infinity.")
  in
  Cmd.v
    (Cmd.info "derandomize"
       ~doc:"Solve the 2-hop colored variant deterministically (Theorems 1-2).")
    Term.(const run $ problem_arg 0
          $ Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH")
          $ coloring $ method_ $ jobs_arg $ metrics_arg $ events_arg)

let decouple_cmd =
  let run problem spec seed stage2 =
    let g = parse_graph spec in
    let bundle = parse_bundle problem in
    let stage_two =
      match stage2 with
      | "a-star" -> Anonet.Decouple.Generic_a_star
      | "a-infinity" -> Anonet.Decouple.Generic_a_infinity
      | "specific" -> begin
          match problem with
          | "mis" -> Anonet.Decouple.Specific Anonet_algorithms.Det_from_two_hop.mis
          | "coloring" ->
            Anonet.Decouple.Specific Anonet_algorithms.Det_from_two_hop.coloring
          | _ -> failwith "specific stage 2 available for mis and coloring only"
        end
      | m -> failwith (Printf.sprintf "unknown stage 2 %S" m)
    in
    match Anonet.Decouple.solve ~gran:bundle g ~seed ~stage_two () with
    | Error m -> prerr_endline m; exit 1
    | Ok r ->
      Printf.printf
        "stage 1 (randomized 2-hop coloring): %d rounds\n\
         stage 2 (deterministic): %d rounds\n"
        r.Anonet.Decouple.coloring_rounds r.Anonet.Decouple.stage_two_rounds;
      print_outputs r.Anonet.Decouple.outputs;
      Printf.printf "valid: %b\n"
        (bundle.Gran.problem.Problem.is_valid_output g r.Anonet.Decouple.outputs)
  in
  let stage2 =
    Arg.(value & opt string "specific"
         & info [ "stage2" ] ~doc:"a-star, a-infinity, or specific.")
  in
  Cmd.v
    (Cmd.info "decouple"
       ~doc:"Two-stage pipeline: randomized coloring, then deterministic stage.")
    Term.(const run $ problem_arg 0
          $ Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH")
          $ seed_arg $ stage2)

let norris_cmd =
  let run spec =
    let g = parse_graph spec in
    Printf.printf "n = %d, view stabilization depth = %d, bound holds: %b\n"
      (Graph.n g)
      (Anonet_views.Norris.stable_view_depth g)
      (Anonet_views.Norris.bound_holds g)
  in
  Cmd.v
    (Cmd.info "norris" ~doc:"View stabilization depth vs Norris' bound (Theorem 3).")
    Term.(const run $ graph_arg)

let stoneage_cmd =
  let run problem spec seed palette =
    let g = parse_graph spec in
    let machine =
      match problem with
      | "mis" -> Anonet_stoneage.Mis.machine
      | "coloring" ->
        Anonet_stoneage.Coloring.make
          ~palette:(Option.value ~default:(Graph.max_degree g + 1) palette)
      | "2hop" | "two-hop" ->
        let d = Graph.max_degree g in
        Anonet_stoneage.Two_hop.make
          ~palette:(Option.value ~default:((d * d) + 1) palette)
      | p -> failwith (Printf.sprintf "unknown stone-age problem %S" p)
    in
    match
      Anonet_stoneage.Engine.run machine g ~seed
        ~max_rounds:(100_000 * (Graph.n g + 4))
    with
    | Error e ->
      Format.eprintf "%a@." Anonet_stoneage.Engine.pp_failure e;
      exit 1
    | Ok { outputs; rounds } ->
      Printf.printf "stone-age %s finished in %d rounds:\n" problem rounds;
      print_outputs outputs
  in
  let palette =
    Arg.(value & opt (some int) None
         & info [ "palette" ] ~doc:"Color palette size (default Δ+1 / Δ²+1).")
  in
  Cmd.v
    (Cmd.info "stoneage"
       ~doc:"Run an algorithm in the weak finite-state-machine model of [19].")
    Term.(const run $ problem_arg 0
          $ Arg.(required & pos 1 (some string) None & info [] ~docv:"GRAPH")
          $ seed_arg $ palette)

let experiments_cmd =
  let run id jobs metrics events =
    let module Experiments = Anonet_experiments.Experiments in
    with_obs metrics events @@ fun obs ->
    with_jobs ~obs jobs (fun pool ->
        let ctx = Run_ctx.make ?pool ~obs () in
        match id with
        | None ->
          List.iter (Experiments.render stdout) (Experiments.run_all ~ctx ())
        | Some id -> begin
            match Experiments.run ~ctx id with
            | Ok out -> Experiments.render stdout out
            | Error m -> prerr_endline m; exit 1
          end)
  in
  let id =
    let doc =
      "Experiment id (f1, f2, f3, t2, t3, lemmas, a1, a2, a3, a4, e1, e2, r1, \
       r2); all when omitted."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's figures/theorem validations (EXPERIMENTS.md).")
    Term.(const run $ id $ jobs_arg $ metrics_arg $ events_arg)

let main =
  let doc = "anonymous networks: randomization = 2-hop coloring (PODC 2014)" in
  Cmd.group (Cmd.info "anonet" ~version:"1.0.0" ~doc)
    [ views_cmd; factor_cmd; solve_cmd; derandomize_cmd; decouple_cmd; norris_cmd;
      stoneage_cmd; experiments_cmd ]

let () = exit (Cmd.eval main)
