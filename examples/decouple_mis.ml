(* The decoupling corollary, end to end.

   The paper's headline: every randomized anonymous algorithm decouples
   into (1) a generic randomized stage computing a 2-hop coloring, and
   (2) a problem-specific deterministic stage.  This example runs the MIS
   pipeline on several networks with all three stage-2 strategies the
   library offers and compares their costs against the direct randomized
   algorithm:

   - direct:      the randomized MIS algorithm as-is;
   - decouple/A*: generic derandomization (Theorem 1) after the coloring;
   - decouple/A∞: the centralized form (Theorem 2) after the coloring;
   - decouple/specific: a natural deterministic MIS given the coloring —
     showing why the corollary is practically appealing.

   Run with:  dune exec examples/decouple_mis.exe
*)

open Anonet_graph
module Catalog = Anonet_problems.Catalog
module Problem = Anonet_problems.Problem
module Las_vegas = Anonet_runtime.Las_vegas
module Executor = Anonet_runtime.Executor
module Bundles = Anonet_algorithms.Bundles
module Decouple = Anonet.Decouple

let networks =
  [ "cycle-6", Gen.cycle 6;
    "path-5", Gen.path 5;
    "star-5", Gen.star 5;
    "petersen", Gen.petersen ();
    "random-9", Gen.random_connected ~seed:7 9 0.3;
  ]

let direct g seed =
  match Las_vegas.solve_msg Anonet_algorithms.Rand_mis.algorithm g ~seed () with
  | Ok r -> r.Las_vegas.outcome.Executor.rounds
  | Error m -> failwith m

let decoupled g seed stage =
  match Decouple.solve ~gran:Bundles.mis g ~seed ~stage_two:stage () with
  | Error m -> failwith m
  | Ok r ->
    assert (Catalog.mis.Problem.is_valid_output g r.Decouple.outputs);
    r

let () =
  Printf.printf "%-10s | %7s | %18s | %18s | %22s\n" "network" "direct"
    "decouple+A* " "decouple+A∞" "decouple+specific";
  Printf.printf "%-10s | %7s | %18s | %18s | %22s\n" "" "(rounds)"
    "(color+det rounds)" "(color rounds)" "(color+det rounds)";
  print_endline (String.make 88 '-');
  List.iter
    (fun (name, g) ->
      let seed = 42 in
      let d = direct g seed in
      (* A* is exponential in the view-graph size: only run it on the small
         networks; the specific stage-2 runs everywhere. *)
      let astar =
        if Graph.n g <= 6 then begin
          let r = decoupled g seed Decouple.Generic_a_star in
          Printf.sprintf "%4d + %-4d" r.Decouple.coloring_rounds r.Decouple.stage_two_rounds
        end
        else "   (skipped)"
      in
      let ainf =
        if Graph.n g <= 6 then begin
          let r = decoupled g seed Decouple.Generic_a_infinity in
          Printf.sprintf "%4d" r.Decouple.coloring_rounds
        end
        else "   (skipped)"
      in
      let specific =
        let r =
          decoupled g seed
            (Decouple.Specific Anonet_algorithms.Det_from_two_hop.mis)
        in
        Printf.sprintf "%4d + %-4d" r.Decouple.coloring_rounds r.Decouple.stage_two_rounds
      in
      Printf.printf "%-10s | %7d | %18s | %18s | %22s\n" name d astar ainf specific)
    networks;
  print_newline ();
  print_endline
    "All outputs verified as valid maximal independent sets.  The generic";
  print_endline
    "stage (A*/A∞) shows randomization is *only* needed for the coloring;";
  print_endline
    "the specific stage shows the decoupling is also practically cheap."
