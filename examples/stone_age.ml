(* 2-hop coloring in the stone-age model — how little power randomization
   actually needs.

   Section 1.3 of the paper remarks that the 2-hop coloring problem — the
   *entire* power of randomization, by Theorem 1 — is already solvable in
   the weak model of Emek & Wattenhofer [19]: anonymous finite state
   machines that see only zero/one/many counts of their neighbors'
   displayed letters, with no degrees, no identifiers, and no unbounded
   messages.

   This example runs the library's stone-age machines end to end:

   1. a stone-age MIS (four states, four letters);
   2. a stone-age 2-hop coloring over a Δ²+1 palette;
   3. the full decoupling with the *weak* model supplying stage 1: the
      stone-age coloring seeds the paper's deterministic stage-2
      algorithms running in the message-passing model.

   Run with:  dune exec examples/stone_age.exe
*)

open Anonet_graph
open Anonet_stoneage
module Catalog = Anonet_problems.Catalog
module Problem = Anonet_problems.Problem

let () =
  let g = Gen.petersen () in
  let d = Graph.max_degree g in

  print_endline "=== 1. stone-age MIS (4 states, 4 letters) =================";
  (match Engine.run Mis.machine g ~seed:2 ~max_rounds:10_000 with
   | Error e -> failwith (Format.asprintf "%a" Engine.pp_failure e)
   | Ok { outputs; rounds } ->
     Printf.printf "Petersen graph, %d rounds: MIS = {" rounds;
     Array.iteri
       (fun v l -> if Label.equal l (Label.Bool true) then Printf.printf " %d" v)
       outputs;
     print_endline " }";
     assert (Catalog.mis.Problem.is_valid_output g outputs));

  print_endline "\n=== 2. stone-age 2-hop coloring (palette Δ²+1) =============";
  let palette = (d * d) + 1 in
  let colors =
    match Engine.run (Two_hop.make ~palette) g ~seed:3 ~max_rounds:100_000 with
    | Error e -> failwith (Format.asprintf "%a" Engine.pp_failure e)
    | Ok { outputs; rounds } ->
      Printf.printf "palette %d, %d rounds:\n" palette rounds;
      Array.iteri
        (fun v c -> Printf.printf "  node %d: color %s\n" v (Label.to_string c))
        outputs;
      assert (Catalog.two_hop_coloring.Problem.is_valid_output g outputs);
      print_endline "  (verified: a proper 2-hop coloring)";
      outputs
  in

  print_endline "\n=== 3. weak-model stage 1 + deterministic stage 2 ==========";
  let inst = Problem.attach_coloring g colors in
  (match
     Anonet_runtime.Executor.run Anonet_algorithms.Det_from_two_hop.mis inst
       ~tape:Anonet_runtime.Tape.zero ~max_rounds:500
   with
   | Error e -> failwith (Format.asprintf "%a" Anonet_runtime.Executor.pp_failure e)
   | Ok { outputs; rounds; _ } ->
     assert (Catalog.mis.Problem.is_valid_output g outputs);
     Printf.printf
       "deterministic MIS from the stone-age coloring: %d rounds, valid.\n" rounds);
  print_endline
    "\nTheorem 1 says a 2-hop coloring captures all of randomization's\n\
     power; this pipeline shows even finite state machines with one-two-\n\
     many counting can supply it."
