(* Why leader election is excluded: GRAN and the mock cases.

   The paper restricts attention to problems *genuinely* solvable by
   randomized anonymous algorithms.  Leader election is the canonical
   excluded problem: by Angluin's lifting argument, a Las-Vegas algorithm
   electing a leader on a graph G would also have to elect one on every
   product of G — but a product has several indistinguishable copies of
   each node, so any "leader" view is occupied by m > 1 nodes at once.

   This example makes the argument concrete and executable:

   1. On a non-prime colored graph (the C6 of Figure 1), nodes 0 and 3
      have identical infinite views, so *no* deterministic-from-views
      procedure can separate them — an elected leader view would elect 2.
   2. Any output labeling produced by a derandomized (A∞-style) procedure
      assigns equal labels to same-view nodes; we exhibit this.
   3. On a *prime* instance, views are faithful aliases (Corollary 1) and
      leader election is trivially solvable deterministically — electing
      the node with the smallest view.  Primality is exactly what the
      2-hop coloring cannot guarantee: a coloring can be lifted along any
      product, which is why "elect a leader" stays outside GRAN while
      MIS/coloring/matching are inside.

   Run with:  dune exec examples/leader_election.exe
*)

open Anonet_graph
open Anonet_views

let () =
  print_endline "=== 1. same views, no leader ===============================";
  let c6 = Gen.c6_figure1 () in
  let vg = View_graph.of_graph_exn c6 in
  Printf.printf
    "colored C6: %d nodes but only %d distinct infinite views\n"
    (Graph.n c6) (Graph.n vg.View_graph.graph);
  let classes = vg.View_graph.map in
  Printf.printf "view classes: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int classes)));
  (* nodes 0 and 3 share a class: indistinguishable forever *)
  assert (classes.(0) = classes.(3));
  print_endline
    "nodes 0 and 3 are indistinguishable at every depth — any deterministic\n\
     rule that elects node 0 elects node 3 too: leader election fails.\n";

  print_endline "=== 2. derandomized outputs respect view classes ===========";
  (match Anonet.A_infinity.solve ~gran:Anonet_algorithms.Bundles.coloring
           (Anonet_problems.Problem.attach_coloring (Gen.cycle 6)
              (Array.init 6 (fun v -> Label.Int ((v mod 3) + 1))))
           ()
   with
   | Error m -> failwith m
   | Ok r ->
     Array.iteri
       (fun v o -> Printf.printf "  node %d (class %d) -> %s\n" v classes.(v)
           (Label.to_string o))
       r.Anonet.A_infinity.outputs;
     Array.iteri
       (fun u cu ->
         Array.iteri
           (fun v cv ->
             if cu = cv then
               assert (Label.equal r.Anonet.A_infinity.outputs.(u)
                         r.Anonet.A_infinity.outputs.(v)))
           classes)
       classes;
     print_endline "  (same class ⇒ same output, verified)\n");

  print_endline "=== 3. on prime instances a leader is free =================";
  let prime = Gen.label_with_ints (Gen.petersen ()) in
  assert (Prime.is_prime prime);
  (* smallest depth-n view = unique node: an executable election *)
  let n = Graph.n prime in
  let views = Array.init n (fun v -> View.of_graph prime ~root:v ~depth:n) in
  let leader = ref 0 in
  for v = 1 to n - 1 do
    if View.compare views.(v) views.(!leader) < 0 then leader := v
  done;
  (* the minimum is unique because views are faithful aliases *)
  Array.iteri
    (fun v view ->
      if v <> !leader then assert (View.compare view views.(!leader) <> 0))
    views;
  Printf.printf
    "uniquely-labeled Petersen graph is prime: node %d has the smallest\n\
     depth-n view and wins a deterministic election.\n" !leader;
  print_endline
    "\nThe catch: no anonymous algorithm can *make* a graph prime — a 2-hop\n\
     coloring always lifts to products (Fact 1), so GRAN rightly excludes\n\
     leader election while containing MIS, coloring, and matching."
