(* Running the paper's synchronous algorithms on an asynchronous network.

   The model of Section 1.1 is synchronous.  This example shows the
   library's α-synchronizer carrying the whole pipeline — the Las-Vegas
   2-hop coloring and the deterministic A* stage — over an asynchronous
   message-passing substrate with adversarial delays, reproducing the
   synchronous outputs bit-for-bit under every scheduler.

   Run with:  dune exec examples/asynchronous.exe
*)

open Anonet_graph
module Executor = Anonet_runtime.Executor
module Async = Anonet_runtime.Async
module Tape = Anonet_runtime.Tape
module Catalog = Anonet_problems.Catalog
module Problem = Anonet_problems.Problem
module Bundles = Anonet_algorithms.Bundles

let schedulers =
  [ "fifo (delay 1)", Async.Fifo;
    "random delays <= 5", Async.Random_delay { seed = 3; max_delay = 5 };
    "random delays <= 20", Async.Random_delay { seed = 4; max_delay = 20 };
    "node 0 starved (x12)", Async.Skewed { seed = 5; max_delay = 12; slow_node = 0 };
  ]

let () =
  let g = Gen.petersen () in
  let tape = Tape.random ~seed:2024 in
  let algo = Anonet_algorithms.Rand_two_hop.algorithm in

  (* Reference: the synchronous execution. *)
  let sync =
    match Executor.run algo g ~tape ~max_rounds:2000 with
    | Ok o -> o
    | Error e -> failwith (Format.asprintf "%a" Executor.pp_failure e)
  in
  Printf.printf
    "synchronous 2-hop coloring of the Petersen graph: %d rounds, %d messages\n\n"
    sync.Executor.rounds sync.Executor.messages;

  Printf.printf "%-22s | %8s | %15s | %s\n" "scheduler" "events" "virtual rounds"
    "outputs = synchronous?";
  List.iter
    (fun (name, scheduler) ->
      match Async.run algo g ~tape ~scheduler ~max_events:2_000_000 with
      | Error e -> failwith (Format.asprintf "%a" Async.pp_failure e)
      | Ok { outputs; events; virtual_rounds } ->
        let same = Array.for_all2 Label.equal outputs sync.Executor.outputs in
        Printf.printf "%-22s | %8d | %15d | %b\n" name events virtual_rounds same;
        assert same)
    schedulers;

  (* The deterministic A* stage also survives: run it on the colored
     6-ring (3 view classes — the generic stage is exponential in the view
     graph, so we keep it small) under random delays. *)
  let ring = Gen.cycle 6 in
  let instance =
    Problem.attach_coloring ring (Array.init 6 (fun v -> Label.Int (v mod 3)))
  in
  print_newline ();
  (match
     Async.run
       (Anonet.A_star.make ~gran:Bundles.mis ())
       instance ~tape:Tape.zero
       ~scheduler:(Async.Random_delay { seed = 9; max_delay = 10 })
       ~max_events:5_000_000
   with
   | Error e -> failwith (Format.asprintf "%a" Async.pp_failure e)
   | Ok { outputs; events; virtual_rounds } ->
     Printf.printf
       "A* (deterministic MIS on the colored 6-ring) under random delays:\n\
        %d events, %d virtual rounds\n"
       events virtual_rounds;
     assert (Catalog.mis.Anonet_problems.Problem.is_valid_output ring outputs);
     Printf.printf "outputs form a valid MIS: true\n");
  print_endline
    "\nThe α-synchronizer preserves the synchronous semantics exactly, so\n\
     every result in this library transfers to asynchronous networks."
