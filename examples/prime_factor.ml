(* Figure 2, reconstructed: factors, products, and prime factors.

   The paper's Figure 2 shows the labeled 12-cycle factoring onto the
   labeled 6-cycle, which factors onto the labeled triangle — and the
   triangle is prime.  This example rebuilds that chain with the library's
   lift machinery, computes the view graphs (= unique prime factors,
   Lemma 3), verifies each factorizing map, checks Norris' depth bound
   (Theorem 3) along the way, and emits a Graphviz rendering.

   Run with:  dune exec examples/prime_factor.exe
*)

open Anonet_graph
open Anonet_views

let describe name g =
  let vg = View_graph.of_graph_exn g in
  let prime = Graph.n vg.View_graph.graph = Graph.n g in
  Printf.printf "%-14s %2d nodes | prime factor: %d nodes | prime: %-5b | %s\n"
    name (Graph.n g)
    (Graph.n vg.View_graph.graph)
    prime
    (Printf.sprintf "views stabilize at depth %d <= n (Norris)"
       vg.View_graph.stable_view_depth);
  assert (Norris.bound_holds g);
  vg

let () =
  print_endline "=== the Figure-2 chain: C3 ⪯ C6 ⪯ C12 ===============";
  let c12 = Lift.c12_over_c6 () in
  let c6 = c12.Lift.base in
  let c6_lift = Lift.c6_over_c3 () in
  let c3 = c6_lift.Lift.base in

  (* Verify the explicit factorizing maps f : C12 -> C6 and g : C6 -> C3. *)
  (match Factor.check ~product:c12.Lift.graph ~factor:c6 ~map:c12.Lift.map with
   | Ok () -> print_endline "f : C12 -> C6 is a factorizing map   ✓"
   | Error m -> failwith m);
  (match Factor.check ~product:c6_lift.Lift.graph ~factor:c3 ~map:c6_lift.Lift.map with
   | Ok () -> print_endline "g : C6  -> C3 is a factorizing map   ✓"
   | Error m -> failwith m);
  Printf.printf "multiplicities: |C12| = %d x |C6|, |C6| = %d x |C3|\n\n"
    (Option.get (Factor.multiplicity ~product:c12.Lift.graph ~factor:c6))
    (Option.get (Factor.multiplicity ~product:c6_lift.Lift.graph ~factor:c3));

  let vg12 = describe "C12 (colored)" c12.Lift.graph in
  let vg6 = describe "C6 (colored)" c6 in
  let vg3 = describe "C3 (colored)" c3 in

  (* Lemma 3: all three share the same unique prime factor — the triangle. *)
  assert (Iso.equal vg12.View_graph.graph vg6.View_graph.graph);
  assert (Iso.equal vg6.View_graph.graph vg3.View_graph.graph);
  print_endline "\nall three have the *same* prime factor (Lemma 3)     ✓";

  (* Lemma 4 / Corollary 1: in the prime C3, views are faithful aliases. *)
  assert (Prime.aliases_faithful c3);
  print_endline "depth-n views are faithful aliases in the prime C3   ✓";

  (* Contrast: the paper notes the *uncolored* C12 has two distinct prime
     factors (C3 and C4) — uniqueness needs the 2-hop coloring. *)
  let uc12 = Gen.cycle 12 and uc3 = Gen.cycle 3 and uc4 = Gen.cycle 4 in
  let map3 = Array.init 12 (fun v -> v mod 3) in
  let map4 = Array.init 12 (fun v -> v mod 4) in
  assert (Factor.is_factorizing ~product:uc12 ~factor:uc3 ~map:map3);
  assert (Factor.is_factorizing ~product:uc12 ~factor:uc4 ~map:map4);
  print_endline
    "but the *uncolored* C12 factors onto both C3 and C4: without a 2-hop";
  print_endline "coloring the prime factor is not unique (Section 2.3.1) ✓";

  (* Dump a Graphviz rendering of the C12 -> C6 factorization. *)
  let dot =
    Dot.of_factorization ~name:"figure2" ~product:c12.Lift.graph ~factor:c6
      ~map:c12.Lift.map ()
  in
  let path = Filename.temp_file "figure2" ".dot" in
  Out_channel.with_open_text path (fun oc -> output_string oc dot);
  Printf.printf "\nGraphviz rendering of the C12 -> C6 factorization: %s\n" path
