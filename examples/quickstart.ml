(* Quickstart: the library in five minutes.

   1. Build an anonymous network (a labeled graph).
   2. Run a randomized anonymous algorithm on it (Las-Vegas 2-hop coloring).
   3. Inspect local views (Figure 1 of the paper).
   4. Derandomize: solve MIS deterministically given the 2-hop coloring,
      via the generic A* construction of Theorem 1.

   Run with:  dune exec examples/quickstart.exe
*)

open Anonet_graph
module Problem = Anonet_problems.Problem
module Catalog = Anonet_problems.Catalog
module Las_vegas = Anonet_runtime.Las_vegas
module Executor = Anonet_runtime.Executor
module Bundles = Anonet_algorithms.Bundles

let () =
  (* --- 1. An anonymous ring of 6 nodes ------------------------------ *)
  let g = Gen.cycle 6 in
  Printf.printf "network: the anonymous 6-cycle (%d nodes, %d edges)\n\n"
    (Graph.n g) (Graph.num_edges g);

  (* --- 2. Randomized 2-hop coloring --------------------------------- *)
  let report =
    match
      Las_vegas.solve_msg Anonet_algorithms.Rand_two_hop.algorithm g ~seed:2024 ()
    with
    | Ok r -> r
    | Error m -> failwith m
  in
  let colors = report.Las_vegas.outcome.Executor.outputs in
  Printf.printf "stage 1 — Las-Vegas 2-hop coloring (%d rounds, %d messages):\n"
    report.Las_vegas.outcome.Executor.rounds
    report.Las_vegas.outcome.Executor.messages;
  Array.iteri
    (fun v c -> Printf.printf "  node %d: color %s\n" v (Label.to_string c))
    colors;
  assert (Props.is_k_hop_coloring g 2 (fun v -> colors.(v)));
  Printf.printf "  (verified: a proper 2-hop coloring)\n\n";

  (* --- 3. Local views (Figure 1) ------------------------------------- *)
  let colored = Problem.attach_coloring g colors in
  Printf.printf "depth-3 local view of node 0 in the colored ring:\n%s\n"
    (Anonet_views.View.to_string
       (Anonet_views.View.of_graph colored ~root:0 ~depth:3));

  (* --- 4. Deterministic MIS via the generic derandomization ---------- *)
  Printf.printf "stage 2 — deterministic MIS via A* (Theorem 1):\n";
  (match Anonet.A_star.solve ~gran:Bundles.mis colored () with
   | Error m -> failwith m
   | Ok outcome ->
     Array.iteri
       (fun v o ->
         Printf.printf "  node %d: %s\n" v
           (if Label.equal o (Label.Bool true) then "IN the MIS" else "out"))
       outcome.Executor.outputs;
     assert (Catalog.mis.Problem.is_valid_output g outcome.Executor.outputs);
     Printf.printf
       "  (verified: independent and maximal; computed in %d rounds with no \
        random bits)\n"
       outcome.Executor.rounds)
