#!/usr/bin/env python3
"""Bench regression gate: compare a fresh BENCH.json against the newest
snapshot in bench/history/ and fail on a >20% slowdown in any group.

Usage: bench_gate.py FRESH_JSON HISTORY_DIR [--threshold 1.20] [--strict]

Snapshots are the files `main.exe bench-json PATH --history DIR` writes
(schema anonet-bench/1 through /5).  Schema 3 adds an "allocs" array of
per-workload GC word deltas (minor_words_per_run / major_words_per_run),
schema 4 a "search_states" array of pruning-ablation counters, and
schema 5 a "huge" array of one-shot million-node build/simulate rows;
the gate compares wall-clock "tests" rows only and ignores keys it does
not know, so mixed-schema histories remain comparable.  The schema-5
huge-graphs bechamel group gates like any other group once a schema-5
snapshot is the baseline (new groups start their own trajectory).
Comparison rules:

- The baseline is the history entry with the newest `generated_at`
  (file mtime for schema-1 entries, which lack the field).
- Only tests present in BOTH snapshots are compared: a new group lands
  with no baseline and simply starts its own trajectory.
- Tests aggregate into groups by the middle component of their
  "anonet/<group>/<test>" name; the gate fails iff some group's
  geometric-mean ratio fresh/baseline exceeds the threshold.
- Cross-host comparisons are meaningless, so when `domains_available`
  differs between the two snapshots the gate warns and passes (use
  --strict to fail instead).
- No history at all passes: the first snapshot seeds the trajectory.
"""

import datetime
import json
import math
import os
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def generated_at(path, doc):
    # The sort key must be a number, not a string: schema >= 2 stores an
    # ISO-8601 `generated_at` while schema 1 only has a file mtime, and
    # a lexical sort between "2026-08-08T..." and a zero-padded epoch
    # ranks every mtime-keyed entry older than every ISO-keyed one
    # regardless of the actual times.  Parse both to epoch seconds.
    stamp = doc.get("generated_at")
    if stamp:
        try:
            return datetime.datetime.fromisoformat(
                stamp.replace("Z", "+00:00")
            ).timestamp()
        except ValueError:
            print(f"bench-gate: unparsable generated_at {stamp!r} in {path}; "
                  "falling back to file mtime")
    return os.path.getmtime(path)


def newest_history(history_dir):
    entries = []
    if not os.path.isdir(history_dir):
        return None
    for name in os.listdir(history_dir):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(history_dir, name)
        try:
            doc = load(path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench-gate: skipping unreadable {path}: {e}")
            continue
        entries.append((generated_at(path, doc), path, doc))
    if not entries:
        return None
    entries.sort()
    return entries[-1][1], entries[-1][2]


def tests_by_name(doc):
    return {
        t["name"]: t["ns_per_run"]
        for t in doc.get("tests", [])
        if isinstance(t.get("ns_per_run"), (int, float)) and t["ns_per_run"] > 0
    }


def group_of(name):
    parts = name.split("/")
    return parts[1] if len(parts) >= 3 else parts[0]


def self_test():
    """Exercise the baseline-selection logic on a synthetic history.

    Regression coverage for the schema-1 ordering bug: mtime-keyed and
    ISO-keyed entries must interleave by actual time, in particular a
    schema-1 snapshot written *after* the newest ISO-stamped one must
    win the baseline.
    """
    import tempfile

    failures = []

    def expect(name, cond):
        print(f"  self-test {name}: {'ok' if cond else 'FAIL'}")
        if not cond:
            failures.append(name)

    iso = "2026-08-08T12:00:00Z"
    iso_epoch = datetime.datetime(
        2026, 8, 8, 12, tzinfo=datetime.timezone.utc
    ).timestamp()

    with tempfile.TemporaryDirectory() as d:
        def snapshot(name, doc, mtime):
            path = os.path.join(d, name)
            with open(path, "w") as f:
                json.dump(doc, f)
            os.utime(path, (mtime, mtime))
            return path

        p_iso = snapshot("BENCH_aaa.json", {"generated_at": iso}, iso_epoch + 9999)
        expect("iso key ignores mtime", generated_at(p_iso, load(p_iso)) == iso_epoch)

        p_old = snapshot("BENCH_bbb.json", {"schema": "anonet-bench/1"}, iso_epoch - 3600)
        expect("older schema-1 loses", newest_history(d)[0] == p_iso)

        p_new = snapshot("BENCH_ccc.json", {"schema": "anonet-bench/1"}, iso_epoch + 3600)
        expect("newer schema-1 wins", newest_history(d)[0] == p_new)

        p_bad = snapshot(
            "BENCH_ddd.json", {"generated_at": "not-a-date"}, iso_epoch + 7200
        )
        expect("unparsable stamp falls back to mtime", newest_history(d)[0] == p_bad)

        p_iso2 = snapshot(
            "BENCH_eee.json", {"generated_at": "2026-08-08T15:00:00Z"}, iso_epoch - 9999
        )
        expect(
            "iso entries order among themselves",
            generated_at(p_iso2, load(p_iso2)) > generated_at(p_iso, load(p_iso)),
        )

    if failures:
        print(f"bench-gate: self-test FAIL ({', '.join(failures)})")
        return 1
    print("bench-gate: self-test pass")
    return 0


def main():
    if "--self-test" in sys.argv:
        return self_test()
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    strict = "--strict" in sys.argv
    threshold = 1.20
    if "--threshold" in sys.argv:
        threshold = float(sys.argv[sys.argv.index("--threshold") + 1])
        args = [a for a in args if a != str(threshold)]
    if len(args) < 2:
        print(__doc__)
        return 2
    fresh_path, history_dir = args[0], args[1]

    fresh = load(fresh_path)
    base = newest_history(history_dir)
    if base is None:
        print(f"bench-gate: no history in {history_dir}; seeding trajectory, pass")
        return 0
    base_path, base_doc = base
    print(f"bench-gate: baseline {base_path} (commit {base_doc.get('commit', '?')})")

    if fresh.get("domains_available") != base_doc.get("domains_available"):
        msg = (
            f"bench-gate: host mismatch (domains_available "
            f"{base_doc.get('domains_available')} -> {fresh.get('domains_available')}); "
            "timings are not comparable"
        )
        if strict:
            print(msg + " [--strict: FAIL]")
            return 1
        print(msg + "; skipping comparison, pass")
        return 0

    base_tests = tests_by_name(base_doc)
    fresh_tests = tests_by_name(fresh)
    shared = sorted(set(base_tests) & set(fresh_tests))
    if not shared:
        print("bench-gate: no shared tests with the baseline; pass")
        return 0

    groups = {}
    for name in shared:
        groups.setdefault(group_of(name), []).append(
            (name, fresh_tests[name] / base_tests[name])
        )

    failed = []
    for group in sorted(groups):
        ratios = groups[group]
        gmean = math.exp(sum(math.log(r) for _, r in ratios) / len(ratios))
        status = "ok" if gmean <= threshold else "REGRESSION"
        print(f"  {group:24s} gmean x{gmean:.3f} over {len(ratios)} tests  [{status}]")
        if gmean > threshold:
            failed.append(group)
            for name, r in sorted(ratios, key=lambda p: -p[1]):
                print(f"    {name}: x{r:.3f}")

    if failed:
        print(
            f"bench-gate: FAIL — group(s) {', '.join(failed)} slowed by more than "
            f"{(threshold - 1) * 100:.0f}% vs {os.path.basename(base_path)}"
        )
        return 1
    print(f"bench-gate: pass ({len(shared)} shared tests, {len(groups)} groups)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
