(* Tests for the runtime: tapes, the synchronous executor, incremental
   execution, and the Las-Vegas harness. *)

open Anonet_graph
open Anonet_runtime

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* A tiny deterministic algorithm: output your degree after one round. *)
let degree_reporter : Algorithm.t =
  (module struct
    type state = {
      degree : int;
      out : Label.t option;
    }

    let name = "degree-reporter"

    let init ~input:_ ~degree = { degree; out = None }

    let round s ~bit:_ ~inbox:_ =
      { s with out = Some (Label.Int s.degree) }, Algorithm.silence ~degree:s.degree

    let output s = s.out
  end)

(* Echo: round 1 send own label; round 2 output the multiset received. *)
let gossip : Algorithm.t =
  (module struct
    type state = {
      degree : int;
      input : Label.t;
      round_no : int;
      out : Label.t option;
    }

    let name = "gossip"

    let init ~input ~degree = { degree; input; round_no = 0; out = None }

    let round s ~bit:_ ~inbox =
      let s = { s with round_no = s.round_no + 1 } in
      if s.round_no = 1 then s, Algorithm.broadcast ~degree:s.degree s.input
      else begin
        let received =
          List.sort Label.compare (List.filter_map Fun.id (Array.to_list inbox))
        in
        { s with out = Some (Label.List received) }, Algorithm.silence ~degree:s.degree
      end

    let output s = s.out
  end)

(* Bit collector: outputs its first three random bits. *)
let bit_collector : Algorithm.t =
  (module struct
    type state = {
      degree : int;
      bits : Bits.t;
      out : Label.t option;
    }

    let name = "bit-collector"

    let init ~input:_ ~degree = { degree; bits = Bits.empty; out = None }

    let round s ~bit ~inbox:_ =
      let bits = Bits.append s.bits bit in
      let s = { s with bits } in
      let s = if Bits.length bits = 3 then { s with out = Some (Label.Bits bits) } else s in
      s, Algorithm.silence ~degree:s.degree

    let output s = s.out
  end)

(* A buggy algorithm that revokes its output: must be rejected.  Degree-1
   nodes output at round 1 and change their answer at round 2; other nodes
   stay silent so the execution is still running when the change happens. *)
let revoker : Algorithm.t =
  (module struct
    type state = {
      degree : int;
      round_no : int;
    }

    let name = "revoker"

    let init ~input:_ ~degree = { degree; round_no = 0 }

    let round s ~bit:_ ~inbox:_ =
      { s with round_no = s.round_no + 1 }, Algorithm.silence ~degree:s.degree

    let output s =
      if s.degree = 1 && s.round_no >= 1 then Some (Label.Int s.round_no) else None
  end)

(* ---------- Tape ---------- *)

let test_tape_random_deterministic () =
  let t1 = Tape.random ~seed:5 and t2 = Tape.random ~seed:5 in
  for node = 0 to 3 do
    for round = 1 to 10 do
      Alcotest.(check (option bool))
        "same seed same bit"
        (Tape.bit t1 ~node ~round)
        (Tape.bit t2 ~node ~round)
    done
  done;
  (* different seeds differ somewhere *)
  let t3 = Tape.random ~seed:6 in
  let differs = ref false in
  for node = 0 to 3 do
    for round = 1 to 10 do
      if Tape.bit t1 ~node ~round <> Tape.bit t3 ~node ~round then differs := true
    done
  done;
  check "different seed differs" true !differs

let test_tape_fixed () =
  let t = Tape.fixed [| Bits.of_string "101"; Bits.of_string "0" |] in
  Alcotest.(check (option bool)) "node0 r1" (Some true) (Tape.bit t ~node:0 ~round:1);
  Alcotest.(check (option bool)) "node0 r2" (Some false) (Tape.bit t ~node:0 ~round:2);
  Alcotest.(check (option bool)) "node0 r4 exhausted" None (Tape.bit t ~node:0 ~round:4);
  Alcotest.(check (option bool)) "node1 r2 exhausted" None (Tape.bit t ~node:1 ~round:2);
  check_int "horizon" 1 (Tape.horizon t ~nodes:2);
  check_int "zero horizon" max_int (Tape.horizon Tape.zero ~nodes:5)

(* ---------- Executor ---------- *)

let test_executor_runs () =
  let g = Gen.star 3 in
  match Executor.run degree_reporter g ~tape:Tape.zero ~max_rounds:5 with
  | Error _ -> Alcotest.fail "should finish"
  | Ok { outputs; rounds; _ } ->
    check_int "one round" 1 rounds;
    check "hub degree" true (Label.equal outputs.(0) (Label.Int 3));
    check "leaf degree" true (Label.equal outputs.(1) (Label.Int 1))

let test_executor_message_delivery () =
  let g = Graph.relabel (Gen.path 3) (fun v -> Label.Int (10 * v)) in
  match Executor.run gossip g ~tape:Tape.zero ~max_rounds:5 with
  | Error _ -> Alcotest.fail "should finish"
  | Ok { outputs; messages; _ } ->
    (* middle node hears both ends *)
    check "middle hears ends" true
      (Label.equal outputs.(1) (Label.List [ Label.Int 0; Label.Int 20 ]));
    check "end hears middle" true (Label.equal outputs.(0) (Label.List [ Label.Int 10 ]));
    check_int "messages = 2 * edges" 4 messages

let test_executor_fixed_tape_feeds_bits () =
  let g = Gen.path 2 in
  let tape = Tape.fixed [| Bits.of_string "101"; Bits.of_string "011" |] in
  match Executor.run bit_collector g ~tape ~max_rounds:5 with
  | Error _ -> Alcotest.fail "should finish"
  | Ok { outputs; _ } ->
    check "node0 bits" true (Label.equal outputs.(0) (Label.Bits (Bits.of_string "101")));
    check "node1 bits" true (Label.equal outputs.(1) (Label.Bits (Bits.of_string "011")))

let test_executor_tape_exhaustion () =
  let g = Gen.path 2 in
  let tape = Tape.fixed [| Bits.of_string "10"; Bits.of_string "01" |] in
  match Executor.run bit_collector g ~tape ~max_rounds:5 with
  | Error (Executor.Tape_exhausted { round }) -> check_int "exhausted at 3" 3 round
  | Ok _ | Error _ -> Alcotest.fail "expected tape exhaustion"

let test_executor_max_rounds () =
  let g = Gen.path 2 in
  (* gossip finishes in 2; give it 1 *)
  match Executor.run gossip g ~tape:Tape.zero ~max_rounds:1 with
  | Error (Executor.Max_rounds_exceeded 1) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected max-rounds failure"

let test_executor_rejects_revocation () =
  let g = Gen.path 3 in
  Alcotest.check_raises "revocation"
    (Invalid_argument "Executor.step: revoker revoked an irrevocable output")
    (fun () -> ignore (Executor.run revoker g ~tape:Tape.zero ~max_rounds:5))

(* ---------- Incremental ---------- *)

let test_incremental_persistence () =
  let g = Gen.path 2 in
  let e0 = Executor.Incremental.start bit_collector g in
  let bits1 = [| true; false |] in
  let e1 = Executor.Incremental.step e0 ~bits:bits1 in
  (* branch: from e1, two different second rounds *)
  let e2a = Executor.Incremental.step e1 ~bits:[| true; true |] in
  let e2b = Executor.Incremental.step e1 ~bits:[| false; false |] in
  let e3a = Executor.Incremental.step e2a ~bits:[| true; true |] in
  let e3b = Executor.Incremental.step e2b ~bits:[| false; false |] in
  check "branch a done" true (Executor.Incremental.all_output e3a);
  check "branch b done" true (Executor.Incremental.all_output e3b);
  let out3a = Executor.Incremental.outputs e3a in
  let out3b = Executor.Incremental.outputs e3b in
  check "branch a sees its bits" true
    (Label.equal (Option.get out3a.(0)) (Label.Bits (Bits.of_string "111")));
  check "branch b sees its bits" true
    (Label.equal (Option.get out3b.(0)) (Label.Bits (Bits.of_string "100")));
  check_int "round counter" 3 (Executor.Incremental.round e3a);
  check_int "e1 unchanged" 1 (Executor.Incremental.round e1)

(* Never outputs: for exercising the Las-Vegas failure paths. *)
let never : Algorithm.t =
  (module struct
    type state = int

    let name = "never"

    let init ~input:_ ~degree = degree

    let round s ~bit:_ ~inbox:_ = s, Algorithm.silence ~degree:s

    let output _ = None
  end)

(* ---------- Las Vegas ---------- *)

let test_las_vegas_solves () =
  let g = Gen.cycle 5 in
  match Las_vegas.solve_msg Anonet_algorithms.Rand_coloring.algorithm g ~seed:1 () with
  | Error m -> Alcotest.fail m
  | Ok { outcome; attempts; _ } ->
    check "valid coloring" true
      (Anonet_problems.Catalog.coloring.Anonet_problems.Problem.is_valid_output g
         outcome.Executor.outputs);
    check "few attempts" true (attempts <= 3)

let test_las_vegas_deterministic_given_seed () =
  let g = Gen.cycle 5 in
  let run () =
    match Las_vegas.solve_msg Anonet_algorithms.Rand_coloring.algorithm g ~seed:3 () with
    | Error m -> Alcotest.fail m
    | Ok r -> r.Las_vegas.outcome.Executor.outputs
  in
  let o1 = run () and o2 = run () in
  check "same seed same run" true (Array.for_all2 Label.equal o1 o2)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_las_vegas_error_includes_failure () =
  let g = Gen.path 2 in
  match Las_vegas.solve_msg never g ~seed:1 ~max_rounds:5 ~attempts:2 () with
  | Ok _ -> Alcotest.fail "never must not succeed"
  | Error m ->
    check "counts the attempts" true (contains "no success in 2 attempts" m);
    check "includes the last failure" true (contains "no output after" m);
    check "includes the budget" true (contains "budget" m)

let test_las_vegas_backoff_escalates () =
  (* backoff 2.0: budgets 5, 10 — 15 rounds total when both fail. *)
  let g = Gen.path 2 in
  (match Las_vegas.solve_msg never g ~seed:1 ~max_rounds:5 ~attempts:2 () with
  | Ok _ -> Alcotest.fail "never must not succeed"
  | Error m -> check "second budget doubled" true (contains "budget 10" m));
  Alcotest.check_raises "backoff < 1 rejected"
    (Invalid_argument "Las_vegas.solve: backoff < 1")
    (fun () ->
      ignore (Las_vegas.solve_msg never g ~seed:1 ~backoff:0.5 ()))

let test_las_vegas_giveup_caps_total () =
  let g = Gen.path 2 in
  match
    Las_vegas.solve_msg never g ~seed:1 ~max_rounds:8 ~attempts:20 ~giveup:20 ()
  with
  | Ok _ -> Alcotest.fail "never must not succeed"
  | Error m ->
    (* budgets 8, 16: the second attempt would push past the 20-round cap *)
    check "gives up by the cap" true (contains "giving up" m);
    check "names the cap" true (contains "20-round cap" m)

let test_las_vegas_reports_rounds_spent () =
  let g = Gen.cycle 5 in
  match Las_vegas.solve_msg Anonet_algorithms.Rand_coloring.algorithm g ~seed:1 () with
  | Error m -> Alcotest.fail m
  | Ok r ->
    check "spent at least the final run" true
      (r.Las_vegas.rounds_spent >= r.Las_vegas.outcome.Executor.rounds)

let test_prng_hash2 () =
  let h = Prng.hash2 in
  check "deterministic" true (h 1 2 = h 1 2);
  check "argument order matters" true (h 1 2 <> h 2 1);
  check "second arg decorrelates" true (h 1 2 <> h 1 3);
  check "non-negative (usable as a seed)" true
    (List.for_all (fun (a, b) -> h a b >= 0)
       [ 0, 0; 1, 1; -5, 3; max_int, 2; min_int, min_int ])

(* ---------- Trace ---------- *)

let test_trace_records () =
  let g = Gen.cycle 5 in
  match
    Trace.record Anonet_algorithms.Rand_coloring.algorithm g
      ~tape:(Tape.random ~seed:6) ~max_rounds:400
  with
  | Error _ -> Alcotest.fail "should finish"
  | Ok (t, outcome) ->
    check_int "rounds agree" outcome.Executor.rounds (Trace.rounds t);
    let per_round = Trace.messages_by_round t in
    check_int "message totals agree" outcome.Executor.messages
      (List.fold_left ( + ) 0 per_round);
    Array.iter
      (fun r ->
        match r with
        | Some r -> check "output round within run" true (r >= 1 && r <= Trace.rounds t)
        | None -> Alcotest.fail "every node must have an output round")
      (Trace.output_rounds t);
    let rendering = Trace.render t in
    check "render mentions every node" true
      (List.for_all
         (fun v ->
           let needle = Printf.sprintf "node %2d" v in
           let rec contains i =
             i + String.length needle <= String.length rendering
             && (String.sub rendering i (String.length needle) = needle
                 || contains (i + 1))
           in
           contains 0)
         (List.init 5 Fun.id))

let test_trace_partial_on_failure () =
  let g = Gen.path 3 in
  match Trace.record gossip g ~tape:Tape.zero ~max_rounds:1 with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error (t, Executor.Max_rounds_exceeded 1) -> check_int "partial trace" 1 (Trace.rounds t)
  | Error (_, _) -> Alcotest.fail "wrong failure"

(* ---------- Async / α-synchronizer ---------- *)

let schedulers =
  [ "fifo", Async.Fifo;
    "random-3", Async.Random_delay { seed = 11; max_delay = 3 };
    "random-9", Async.Random_delay { seed = 12; max_delay = 9 };
    "skewed", Async.Skewed { seed = 13; max_delay = 7; slow_node = 0 };
  ]

let test_async_matches_sync () =
  (* The α-synchronizer must reproduce the synchronous outputs exactly,
     with the same tape, under every scheduler. *)
  let cases =
    [ "gossip/path4", gossip, Gen.path 4, Tape.zero;
      "bits/path3", bit_collector, Gen.path 3, Tape.random ~seed:5;
      "2hop/c5", Anonet_algorithms.Rand_two_hop.algorithm, Gen.cycle 5,
      Tape.random ~seed:2;
      "mis/petersen", Anonet_algorithms.Rand_mis.algorithm, Gen.petersen (),
      Tape.random ~seed:3;
      "matching/c6", Anonet_algorithms.Rand_matching.algorithm, Gen.cycle 6,
      Tape.random ~seed:4;
    ]
  in
  List.iter
    (fun (name, algo, g, tape) ->
      let sync =
        match Executor.run algo g ~tape ~max_rounds:3000 with
        | Ok o -> o.Executor.outputs
        | Error e -> Alcotest.failf "sync %s: %a" name Executor.pp_failure e
      in
      List.iter
        (fun (sname, scheduler) ->
          match Async.run algo g ~tape ~scheduler ~max_events:2_000_000 with
          | Error e -> Alcotest.failf "async %s/%s: %a" name sname Async.pp_failure e
          | Ok { outputs; _ } ->
            check
              (Printf.sprintf "%s under %s matches sync" name sname)
              true
              (Array.for_all2 Label.equal sync outputs))
        schedulers)
    cases

let test_async_single_node () =
  let g = Gen.path 1 in
  match
    Async.run Anonet_algorithms.Rand_mis.algorithm g ~tape:(Tape.random ~seed:1)
      ~scheduler:Async.Fifo ~max_events:1000
  with
  | Error e -> Alcotest.failf "single node: %a" Async.pp_failure e
  | Ok { outputs; _ } ->
    check "joins alone" true (Label.equal outputs.(0) (Label.Bool true))

let test_async_virtual_rounds () =
  (* The synchronizer's virtual round count matches the synchronous round
     count (up to the final round bookkeeping). *)
  let g = Gen.cycle 5 in
  let tape = Tape.random ~seed:9 in
  let algo = Anonet_algorithms.Rand_coloring.algorithm in
  let sync =
    match Executor.run algo g ~tape ~max_rounds:500 with
    | Ok o -> o.Executor.rounds
    | Error _ -> Alcotest.fail "sync failed"
  in
  match Async.run algo g ~tape ~scheduler:Async.Fifo ~max_events:100_000 with
  | Error e -> Alcotest.failf "async: %a" Async.pp_failure e
  | Ok { virtual_rounds; _ } ->
    check "round counts close" true (abs (virtual_rounds - sync) <= 1)

let test_synchronizer_equivalence_suite () =
  (* Satellite: Async.run ≡ Executor.run for every fault-free scheduler on
     cycles, hypercubes, and random connected graphs. *)
  let graphs =
    [ "cycle6", Gen.cycle 6;
      "hypercube3", Gen.hypercube 3;
      "random(10,.3)", Gen.random_connected ~seed:42 10 0.3;
    ]
  in
  let all_schedulers =
    [ "fifo", Async.Fifo;
      "random-delay-6", Async.Random_delay { seed = 21; max_delay = 6 };
      "skewed-6", Async.Skewed { seed = 22; max_delay = 6; slow_node = 1 };
    ]
  in
  List.iter
    (fun (gname, g) ->
      let tape = Tape.random ~seed:31 in
      let algo = Anonet_algorithms.Rand_two_hop.algorithm in
      let sync =
        match Executor.run algo g ~tape ~max_rounds:5000 with
        | Ok o -> o.Executor.outputs
        | Error e -> Alcotest.failf "sync %s: %a" gname Executor.pp_failure e
      in
      List.iter
        (fun (sname, scheduler) ->
          match Async.run algo g ~tape ~scheduler ~max_events:4_000_000 with
          | Error e -> Alcotest.failf "%s/%s: %a" gname sname Async.pp_failure e
          | Ok { outputs; _ } ->
            check
              (Printf.sprintf "%s under %s = sync" gname sname)
              true
              (Array.for_all2 Label.equal sync outputs))
        all_schedulers)
    graphs

let test_sample_delay_range () =
  (* Satellite regression: every scheduler draws delays from the documented
     1..max_delay range — no off-by-one at either endpoint. *)
  let max_delay = 5 in
  let draws scheduler ~source =
    let rng = Prng.create 17 in
    List.init 2000 (fun _ -> Async.sample_delay scheduler rng ~source)
  in
  let rd = draws (Async.Random_delay { seed = 0; max_delay }) ~source:0 in
  check "random-delay within 1..max" true
    (List.for_all (fun d -> d >= 1 && d <= max_delay) rd);
  check "random-delay hits 1" true (List.mem 1 rd);
  check "random-delay hits max" true (List.mem max_delay rd);
  let sk_fast =
    draws (Async.Skewed { seed = 0; max_delay; slow_node = 3 }) ~source:0
  in
  check "skewed (fast node) within 1..max" true
    (List.for_all (fun d -> d >= 1 && d <= max_delay) sk_fast);
  check "skewed (fast node) hits 1" true (List.mem 1 sk_fast);
  check "skewed (fast node) hits max" true (List.mem max_delay sk_fast);
  let sk_slow =
    draws (Async.Skewed { seed = 0; max_delay; slow_node = 3 }) ~source:3
  in
  check "skewed slow node pinned to max" true
    (List.for_all (( = ) max_delay) sk_slow);
  check "fifo is always 1" true
    (List.for_all (( = ) 1) (draws Async.Fifo ~source:0));
  (* degenerate max_delay values still give a sane delay >= 1 *)
  List.iter
    (fun md ->
      check
        (Printf.sprintf "max_delay=%d still delays by 1" md)
        true
        (List.for_all (( = ) 1) (draws (Async.Random_delay { seed = 0; max_delay = md }) ~source:0)))
    [ 0; 1 ]

let test_async_event_limit () =
  match
    Async.run Anonet_algorithms.Rand_two_hop.algorithm (Gen.cycle 6)
      ~tape:(Tape.random ~seed:1) ~scheduler:Async.Fifo ~max_events:5
  with
  | Error (Async.Event_limit_exceeded 5) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected event-limit failure"

let () =
  Alcotest.run "anonet_runtime"
    [
      ( "tape",
        [
          Alcotest.test_case "random deterministic" `Quick test_tape_random_deterministic;
          Alcotest.test_case "fixed" `Quick test_tape_fixed;
        ] );
      ( "executor",
        [
          Alcotest.test_case "runs" `Quick test_executor_runs;
          Alcotest.test_case "message delivery" `Quick test_executor_message_delivery;
          Alcotest.test_case "fixed tape bits" `Quick test_executor_fixed_tape_feeds_bits;
          Alcotest.test_case "tape exhaustion" `Quick test_executor_tape_exhaustion;
          Alcotest.test_case "max rounds" `Quick test_executor_max_rounds;
          Alcotest.test_case "rejects revocation" `Quick test_executor_rejects_revocation;
        ] );
      ( "incremental",
        [ Alcotest.test_case "persistent branching" `Quick test_incremental_persistence ] );
      ( "las-vegas",
        [
          Alcotest.test_case "solves" `Quick test_las_vegas_solves;
          Alcotest.test_case "seeded determinism" `Quick test_las_vegas_deterministic_given_seed;
          Alcotest.test_case "error includes last failure" `Quick
            test_las_vegas_error_includes_failure;
          Alcotest.test_case "backoff escalates budgets" `Quick
            test_las_vegas_backoff_escalates;
          Alcotest.test_case "giveup caps total rounds" `Quick
            test_las_vegas_giveup_caps_total;
          Alcotest.test_case "reports rounds spent" `Quick
            test_las_vegas_reports_rounds_spent;
        ] );
      ( "prng",
        [ Alcotest.test_case "hash2 decorrelates" `Quick test_prng_hash2 ] );
      ( "trace",
        [
          Alcotest.test_case "records a run" `Quick test_trace_records;
          Alcotest.test_case "partial on failure" `Quick test_trace_partial_on_failure;
        ] );
      ( "async",
        [
          Alcotest.test_case "synchronizer matches sync executor" `Quick
            test_async_matches_sync;
          Alcotest.test_case "single node" `Quick test_async_single_node;
          Alcotest.test_case "virtual rounds" `Quick test_async_virtual_rounds;
          Alcotest.test_case "event limit" `Quick test_async_event_limit;
          Alcotest.test_case "scheduler equivalence suite" `Quick
            test_synchronizer_equivalence_suite;
          Alcotest.test_case "sample_delay range" `Quick test_sample_delay_range;
        ] );
    ]
