(* Tests for the stone-age model (Section 1.3's weak FSM model): the
   engine, MIS, bounded-palette coloring, and the 2-hop coloring that the
   paper asserts is solvable even there. *)

open Anonet_graph
open Anonet_stoneage
module Catalog = Anonet_problems.Catalog
module Problem = Anonet_problems.Problem

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let families =
  [ "p1", Gen.path 1;
    "p2", Gen.path 2;
    "p6", Gen.path 6;
    "c3", Gen.cycle 3;
    "c8", Gen.cycle 8;
    "star5", Gen.star 5;
    "petersen", Gen.petersen ();
    "grid33", Gen.grid 3 3;
    "rand9", Gen.random_connected ~seed:5 9 0.3;
  ]

let run machine g seed =
  match Engine.run machine g ~seed ~max_rounds:(4000 * (Graph.n g + 4)) with
  | Ok o -> o
  | Error e -> Alcotest.failf "engine: %a" Engine.pp_failure e

(* ---------- engine ---------- *)

let test_engine_deterministic_given_seed () =
  let g = Gen.cycle 6 in
  let o1 = run Mis.machine g 3 and o2 = run Mis.machine g 3 in
  check "same seed same run" true
    (Array.for_all2 Label.equal o1.Engine.outputs o2.Engine.outputs);
  check_int "same rounds" o1.Engine.rounds o2.Engine.rounds

let test_engine_round_budget () =
  (* a machine that never outputs *)
  let stuck : Machine.t =
    (module struct
      type state = unit

      let name = "stuck"

      let alphabet = [ Label.Unit ]

      let randomness = 1

      let init () = ()

      let output () = None

      let transition () ~counts:_ ~random:_ = (), Label.Unit
    end)
  in
  match Engine.run stuck (Gen.path 2) ~seed:1 ~max_rounds:10 with
  | Error (Engine.Max_rounds_exceeded n) -> check_int "budget reported" 10 n
  | Ok _ -> Alcotest.fail "expected round-budget failure"

let test_engine_rejects_foreign_letters () =
  let bad : Machine.t =
    (module struct
      type state = unit

      let name = "bad-letters"

      let alphabet = [ Label.Unit ]

      let randomness = 1

      let init () = ()

      let output () = None

      let transition () ~counts:_ ~random:_ = (), Label.Int 42
    end)
  in
  Alcotest.check_raises "foreign letter"
    (Invalid_argument
       "Stoneage.Engine.run: bad-letters displayed a letter outside its alphabet")
    (fun () -> ignore (Engine.run bad (Gen.path 2) ~seed:1 ~max_rounds:10))

(* ---------- MIS ---------- *)

let test_stoneage_mis_valid () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let o = run Mis.machine g seed in
          check
            (Printf.sprintf "stone-age MIS valid on %s (seed %d)" name seed)
            true
            (Catalog.mis.Problem.is_valid_output g o.Engine.outputs))
        [ 1; 2; 3 ])
    families

let test_stoneage_mis_complete_graph () =
  let g = Gen.complete 6 in
  let o = run Mis.machine g 7 in
  let members =
    Array.to_list o.Engine.outputs
    |> List.filter (Label.equal (Label.Bool true))
    |> List.length
  in
  check_int "single member on K6" 1 members

(* ---------- bounded-palette coloring ---------- *)

let test_stoneage_coloring_valid () =
  List.iter
    (fun (name, g) ->
      let palette = Graph.max_degree g + 1 in
      let o = run (Coloring.make ~palette) g 11 in
      check (Printf.sprintf "stone-age coloring valid on %s" name) true
        (Catalog.coloring.Problem.is_valid_output g o.Engine.outputs);
      Array.iter
        (fun l ->
          match l with
          | Label.Int c -> check "palette respected" true (c >= 0 && c < palette)
          | _ -> Alcotest.fail "expected Int")
        o.Engine.outputs)
    families

let test_stoneage_coloring_too_small_palette_livelocks () =
  (* K4 cannot be properly colored with 3 colors: the machine must hit the
     round budget rather than output something invalid. *)
  match Engine.run (Coloring.make ~palette:3) (Gen.complete 4) ~seed:5 ~max_rounds:3000 with
  | Error (Engine.Max_rounds_exceeded _) -> ()
  | Ok o ->
    (* If it terminated, the output would have to be valid — it cannot be. *)
    Alcotest.failf "terminated?! valid=%b"
      (Catalog.coloring.Problem.is_valid_output (Gen.complete 4) o.Engine.outputs)

(* ---------- 2-hop coloring (the Section 1.3 claim) ---------- *)

let test_stoneage_two_hop_valid () =
  List.iter
    (fun (name, g) ->
      let d = Graph.max_degree g in
      let palette = (d * d) + 1 in
      List.iter
        (fun seed ->
          let o = run (Two_hop.make ~palette) g seed in
          check
            (Printf.sprintf "stone-age 2-hop coloring valid on %s (seed %d)" name seed)
            true
            (Catalog.two_hop_coloring.Problem.is_valid_output g o.Engine.outputs))
        [ 1; 2 ])
    families

let test_stoneage_two_hop_feeds_decoupling () =
  (* The stone-age coloring can seed the paper's deterministic stage: a
     full pipeline below the message-passing model's strength. *)
  let g = Gen.cycle 8 in
  let o = run (Two_hop.make ~palette:5) g 13 in
  let inst = Problem.attach_coloring g o.Engine.outputs in
  match
    Anonet_runtime.Executor.run Anonet_algorithms.Det_from_two_hop.mis inst
      ~tape:Anonet_runtime.Tape.zero ~max_rounds:200
  with
  | Error e -> Alcotest.failf "det stage: %a" Anonet_runtime.Executor.pp_failure e
  | Ok { outputs; _ } ->
    check "stone-age colors drive deterministic MIS" true
      (Catalog.mis.Problem.is_valid_output g outputs)

(* ---------- qcheck ---------- *)

let arb =
  QCheck.make
    ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%f" s n p)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 1 9) (float_bound_inclusive 0.4))

let prop_stoneage_mis =
  QCheck.Test.make ~name:"stone-age MIS valid on random graphs" ~count:40 arb
    (fun (seed, n, p) ->
      let g = Gen.random_connected ~seed n p in
      let o = run Mis.machine g (seed + 1) in
      Catalog.mis.Problem.is_valid_output g o.Engine.outputs)

let prop_stoneage_two_hop =
  QCheck.Test.make ~name:"stone-age 2-hop coloring valid on random graphs" ~count:15
    arb (fun (seed, n, p) ->
      let g = Gen.random_connected ~seed n p in
      let d = Graph.max_degree g in
      let o = run (Two_hop.make ~palette:((d * d) + 1)) g (seed + 2) in
      Catalog.two_hop_coloring.Problem.is_valid_output g o.Engine.outputs)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_stoneage_mis; prop_stoneage_two_hop ]

let () =
  Alcotest.run "anonet_stoneage"
    [
      ( "engine",
        [
          Alcotest.test_case "seeded determinism" `Quick test_engine_deterministic_given_seed;
          Alcotest.test_case "round budget" `Quick test_engine_round_budget;
          Alcotest.test_case "alphabet enforced" `Quick test_engine_rejects_foreign_letters;
        ] );
      ( "mis",
        [
          Alcotest.test_case "valid on families" `Quick test_stoneage_mis_valid;
          Alcotest.test_case "complete graph" `Quick test_stoneage_mis_complete_graph;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "valid with Δ+1 palette" `Quick test_stoneage_coloring_valid;
          Alcotest.test_case "small palette livelocks" `Quick
            test_stoneage_coloring_too_small_palette_livelocks;
        ] );
      ( "two-hop",
        [
          Alcotest.test_case "valid with Δ²+1 palette" `Quick test_stoneage_two_hop_valid;
          Alcotest.test_case "feeds the decoupling" `Quick
            test_stoneage_two_hop_feeds_decoupling;
        ] );
      "properties", qcheck_tests;
    ]
