(* Tests for the multicore execution layer: the domain pool itself, and
   the sequential-equivalence guarantees of the three parallelized hot
   paths — Las-Vegas attempt racing, the sharded minimal-simulation
   search, and (indirectly via those) the experiment row fan-out.  All
   equivalence tests run the same call with no pool and with pools of
   1, 2 and 4 domains and demand identical results, down to attempt
   counts, state counters and error strings. *)

open Anonet_graph
open Anonet
module Pool = Anonet_parallel.Pool
module Las_vegas = Anonet_runtime.Las_vegas
module Executor = Anonet_runtime.Executor
module Faults = Anonet_runtime.Faults
module Retransmit = Anonet_runtime.Retransmit
module Run_ctx = Anonet_runtime.Run_ctx

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let pool_sizes = [ 1; 2; 4 ]

(* ---------- Pool: the combinators themselves ---------- *)

let test_pool_create_invalid () =
  Alcotest.check_raises "domains 0" (Invalid_argument "Pool.create: domains < 1")
    (fun () -> ignore (Pool.create ~domains:0 ()))

let test_pool_map_order () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          check_int (Printf.sprintf "domains reported (%d)" domains) domains
            (Pool.domains p);
          List.iter
            (fun n ->
              let input = Array.init n (fun i -> i) in
              let out = Pool.map p (fun i -> i * i) input in
              Alcotest.(check (array int))
                (Printf.sprintf "map %d items on %d domains" n domains)
                (Array.map (fun i -> i * i) input)
                out)
            [ 0; 1; 7; 100 ]))
    pool_sizes

let test_pool_run_each_index_once () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let n = 200 in
          let hits = Array.init n (fun _ -> Atomic.make 0) in
          Pool.run p ~n (fun i -> Atomic.incr hits.(i));
          Array.iteri
            (fun i a ->
              check_int (Printf.sprintf "index %d on %d domains" i domains) 1
                (Atomic.get a))
            hits))
    pool_sizes

let test_pool_run_propagates_exception () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          (match Pool.run p ~n:50 (fun i -> if i = 13 then failwith "boom-13") with
           | () -> Alcotest.fail "expected Failure"
           | exception Failure m ->
             check_string "first failure re-raised" "boom-13" m);
          (* The pool survives a failed job. *)
          let out = Pool.map p (fun i -> i + 1) (Array.init 10 (fun i -> i)) in
          Alcotest.(check (array int))
            "usable after failure"
            (Array.init 10 (fun i -> i + 1))
            out))
    pool_sizes

let test_pool_race_lowest_wins () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          (* Several tasks succeed; the lowest index must win even if a
             higher one finishes first. *)
          let result =
            Pool.race p ~n:10 (fun ~stop:_ i ->
                if i = 3 || i = 5 || i = 8 then Some (i * 100) else None)
          in
          check (Printf.sprintf "winner 3 on %d domains" domains) true
            (result = Some (3, 300));
          let nobody = Pool.race p ~n:10 (fun ~stop:_ _ -> None) in
          check "all-None race" true (nobody = None);
          let empty = Pool.race p ~n:0 (fun ~stop:_ _ -> None) in
          check "empty race" true (empty = None)))
    pool_sizes

let test_pool_race_runs_everything_below_winner () =
  (* Sequential-equivalence core: every index below the winner must have
     run to completion (and returned None). *)
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let ran = Array.init 20 (fun _ -> Atomic.make false) in
          let result =
            Pool.race p ~n:20 (fun ~stop:_ i ->
                Atomic.set ran.(i) true;
                if i >= 11 then Some i else None)
          in
          check "winner 11" true (result = Some (11, 11));
          for i = 0 to 11 do
            check
              (Printf.sprintf "index %d ran (%d domains)" i domains)
              true
              (Atomic.get ran.(i))
          done))
    pool_sizes

let test_pool_shutdown () =
  let p = Pool.create ~domains:3 () in
  let out = Pool.map p string_of_int (Array.init 5 (fun i -> i)) in
  Alcotest.(check (array string))
    "before shutdown"
    [| "0"; "1"; "2"; "3"; "4" |]
    out;
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  (match Pool.map p string_of_int [| 1 |] with
   | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
   | exception Invalid_argument _ -> ())

(* ---------- Las-Vegas racing = sequential ---------- *)

let equivalence_graphs =
  [ "cycle-6", Gen.cycle 6;
    "cycle-7", Gen.cycle 7;
    "petersen", Gen.petersen ();
    "random-9", Gen.random_connected ~seed:5 9 0.3;
    "random-11", Gen.random_connected ~seed:8 11 0.25;
  ]

let report_equal (a : Las_vegas.report) (b : Las_vegas.report) =
  a.Las_vegas.attempts = b.Las_vegas.attempts
  && a.Las_vegas.seed_used = b.Las_vegas.seed_used
  && a.Las_vegas.rounds_spent = b.Las_vegas.rounds_spent
  && a.Las_vegas.outcome.Executor.rounds = b.Las_vegas.outcome.Executor.rounds
  && a.Las_vegas.outcome.Executor.messages = b.Las_vegas.outcome.Executor.messages
  && Array.for_all2 Label.equal a.Las_vegas.outcome.Executor.outputs
       b.Las_vegas.outcome.Executor.outputs

let check_lv_equivalent name solve =
  let sequential = solve None in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let parallel = solve (Some p) in
          match sequential, parallel with
          | Ok a, Ok b ->
            check
              (Printf.sprintf "%s: identical report (%d domains)" name domains)
              true (report_equal a b)
          | Error a, Error b ->
            check
              (Printf.sprintf "%s: identical failure reason (%d domains)" name
                 domains)
              true
              (a.Las_vegas.reason = b.Las_vegas.reason);
            check_string
              (Printf.sprintf "%s: identical error (%d domains)" name domains)
              a.Las_vegas.message b.Las_vegas.message
          | Ok _, Error f ->
            Alcotest.fail
              (Printf.sprintf "%s: sequential Ok but %d domains Error %s" name
                 domains f.Las_vegas.message)
          | Error f, Ok _ ->
            Alcotest.fail
              (Printf.sprintf "%s: sequential Error %s but %d domains Ok" name
                 f.Las_vegas.message domains)))
    pool_sizes

let test_lv_equivalence_easy () =
  (* Default budgets: the first attempt almost always succeeds; racing
     must agree on attempt 1 and its outcome. *)
  List.iter
    (fun (name, g) ->
      check_lv_equivalent name (fun pool ->
          Las_vegas.solve Anonet_algorithms.Rand_mis.algorithm g ~seed:7 ~ctx:(Run_ctx.make ?pool ()) ()))
    equivalence_graphs

let test_lv_equivalence_forced_retries () =
  (* A starvation budget forces several failed attempts before the
     backoff escalates far enough: racing must charge exactly the same
     failed budgets and stop at the same attempt. *)
  List.iter
    (fun (name, g) ->
      check_lv_equivalent (name ^ "/tight") (fun pool ->
          Las_vegas.solve Anonet_algorithms.Rand_two_hop.algorithm g ~seed:3
            ~max_rounds:1 ~attempts:25 ~ctx:(Run_ctx.make ?pool ()) ()))
    equivalence_graphs

let test_lv_equivalence_no_success_error () =
  (* backoff 1.0 with a hopeless budget: every attempt fails, and the
     no-success error string must match the sequential one verbatim. *)
  check_lv_equivalent "no-success" (fun pool ->
      Las_vegas.solve Anonet_algorithms.Rand_two_hop.algorithm (Gen.cycle 6)
        ~seed:2 ~max_rounds:1 ~backoff:1.0 ~attempts:6 ~ctx:(Run_ctx.make ?pool ()) ())

let test_lv_equivalence_giveup_error () =
  (* The give-up truncation point is budget arithmetic only; both paths
     must cut the schedule at the same attempt and render the same cap
     message. *)
  check_lv_equivalent "giveup" (fun pool ->
      Las_vegas.solve Anonet_algorithms.Rand_two_hop.algorithm (Gen.cycle 6)
        ~seed:2 ~max_rounds:2 ~giveup:20 ~attempts:10 ~ctx:(Run_ctx.make ?pool ()) ())

let test_lv_equivalence_under_faults () =
  (* A lossy fault plan (fresh injector per attempt) behind the
     retransmission wrapper: outcomes stay pure functions of the attempt
     index, so racing still reconstructs the sequential report. *)
  let wrapped = Retransmit.wrap Anonet_algorithms.Rand_mis.algorithm in
  List.iter
    (fun (name, g) ->
      check_lv_equivalent (name ^ "/faults") (fun pool ->
          Las_vegas.solve
            ~ctx:(Run_ctx.make ~faults:(Faults.with_loss 0.15 ~seed:9) ?pool ())
            wrapped g ~seed:11 ()))
    [ "cycle-6", Gen.cycle 6; "petersen", Gen.petersen () ]

let test_lv_backoff_overflow_clamped () =
  (* Regression: backoff 10 reaches 10^29 * base_rounds long before
     attempt 30 — budgets must clamp at max_int / 2 instead of wrapping
     negative through int_of_float.  With a give-up cap the run must stop
     with the cap message (a wrapped negative budget would either sail
     past the cap or turn the budget arithmetic nonsensical). *)
  let r =
    Las_vegas.solve_msg Anonet_algorithms.Rand_two_hop.algorithm (Gen.cycle 6)
      ~seed:2 ~max_rounds:1 ~backoff:10.0 ~attempts:30 ~giveup:1000 ()
  in
  (match r with
   | Ok _ -> ()
   | Error m ->
     check "giveup message mentions the cap" true
       (let contains s sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        contains m "giving up"));
  (* And without a cap: 30 attempts with clamped budgets must terminate
     (attempt budgets saturate at max_int / 2 — success comes quickly once
     the budget is astronomically generous). *)
  match
    Las_vegas.solve_msg Anonet_algorithms.Rand_two_hop.algorithm (Gen.cycle 6)
      ~seed:2 ~max_rounds:1 ~backoff:10.0 ~attempts:30 ()
  with
  | Ok r -> check "eventually succeeds" true (r.Las_vegas.attempts >= 1)
  | Error m -> Alcotest.fail ("expected success with clamped budgets: " ^ m)

(* ---------- Min_search sharding = sequential ---------- *)

let found_equal (a : Min_search.found) (b : Min_search.found) =
  a.Min_search.states_explored = b.Min_search.states_explored
  && Array.length a.Min_search.assignment = Array.length b.Min_search.assignment
  && Array.for_all2 Bits.equal a.Min_search.assignment b.Min_search.assignment
  && a.Min_search.sim.Simulation.successful = b.Min_search.sim.Simulation.successful
  && a.Min_search.sim.Simulation.rounds_run = b.Min_search.sim.Simulation.rounds_run

let check_search_equivalent name search =
  let sequential = search None in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let parallel = search (Some p) in
          match sequential, parallel with
          | None, None -> ()
          | Some a, Some b ->
            check
              (Printf.sprintf "%s: identical found (%d domains)" name domains)
              true (found_equal a b)
          | Some _, None | None, Some _ ->
            Alcotest.fail
              (Printf.sprintf "%s: presence differs at %d domains" name domains)))
    pool_sizes

let search_graphs =
  [ "path-2", Gen.label_with_ints (Gen.path 2);
    "cycle-4", Gen.label_with_ints (Gen.cycle 4);
    "cycle-5", Gen.label_with_ints (Gen.cycle 5);
    "random-5", Gen.label_with_ints (Gen.random_connected ~seed:3 5 0.5);
  ]

let test_search_equivalence_round_major () =
  List.iter
    (fun (name, g) ->
      check_search_equivalent (name ^ "/round-major") (fun pool ->
          Min_search.minimal_successful
            ~solver:Anonet_algorithms.Rand_mis.algorithm g
            ~base:(Bit_assignment.empty (Graph.n g))
            ~order:Min_search.Round_major ~ctx:(Run_ctx.make ?pool ()) ~len:(Min_search.At_most 16) ()))
    search_graphs

let test_search_equivalence_node_major () =
  List.iter
    (fun (name, g) ->
      check_search_equivalent (name ^ "/node-major") (fun pool ->
          Min_search.minimal_successful
            ~solver:Anonet_algorithms.Rand_mis.algorithm g
            ~base:(Bit_assignment.empty (Graph.n g))
            ~order:Min_search.Node_major ~ctx:(Run_ctx.make ?pool ()) ~len:(Min_search.At_most 4) ()))
    search_graphs

let test_search_equivalence_orders_agree () =
  (* Round-major's minimal assignment, re-checked against the exhaustive
     node-major enumeration under both execution modes: all four runs
     must find a successful assignment of the same minimal length. *)
  let g = Gen.label_with_ints (Gen.cycle 4) in
  let run order pool =
    Min_search.minimal_successful ~solver:Anonet_algorithms.Rand_mis.algorithm g
      ~base:(Bit_assignment.empty 4) ~order ~ctx:(Run_ctx.make ?pool ()) ~len:(Min_search.At_most 4) ()
  in
  match run Min_search.Round_major None, run Min_search.Node_major None with
  | Some rm, Some nm ->
    let len f = Bit_assignment.max_length f.Min_search.assignment in
    check_int "orders agree on minimal length" (len rm) (len nm);
    Pool.with_pool ~domains:4 (fun p ->
        match run Min_search.Round_major (Some p), run Min_search.Node_major (Some p) with
        | Some rm', Some nm' ->
          check "round-major parallel identical" true (found_equal rm rm');
          check "node-major parallel identical" true (found_equal nm nm')
        | _ -> Alcotest.fail "parallel search lost the assignment")
  | _ -> Alcotest.fail "sequential search found nothing"

let test_search_equivalence_search_limit () =
  (* When the state budget bites, it must bite identically: both modes
     raise Search_limit_exceeded on the same instance. *)
  let g = Gen.label_with_ints (Gen.cycle 6) in
  let run pool =
    match
      Min_search.minimal_successful ~solver:Anonet_algorithms.Rand_mis.algorithm
        g
        ~base:(Bit_assignment.empty 6)
        ~max_states:40 ~ctx:(Run_ctx.make ?pool ()) ~len:(Min_search.At_most 16) ()
    with
    | _ -> Alcotest.fail "expected Search_limit_exceeded"
    | exception Min_search.Search_limit_exceeded -> ()
  in
  run None;
  List.iter
    (fun domains -> Pool.with_pool ~domains (fun p -> run (Some p)))
    pool_sizes

(* ---------- Branching_limit_exceeded: typed, both orders ---------- *)

let test_branching_limit_round_major () =
  (* 25 free bits in round 1 exceeds the 2^24 branching limit: the typed
     exception, carrying the numbers, before any enumeration starts. *)
  let g25 = Gen.label_with_ints (Gen.cycle 25) in
  (match
     Min_search.minimal_successful ~solver:Anonet_algorithms.Rand_mis.algorithm
       g25
       ~base:(Bit_assignment.empty 25)
       ~len:(Min_search.At_most 4) ()
   with
   | _ -> Alcotest.fail "expected Branching_limit_exceeded"
   | exception Min_search.Branching_limit_exceeded { free_bits; limit } ->
     check_int "free bits" 25 free_bits;
     check_int "limit" 24 limit);
  (* At the boundary itself (24 free bits) branching is allowed; a small
     state budget then stops the (legal but hopeless) enumeration with
     Search_limit_exceeded instead. *)
  let g24 = Gen.label_with_ints (Gen.cycle 24) in
  match
    Min_search.minimal_successful ~solver:Anonet_algorithms.Rand_mis.algorithm
      g24
      ~base:(Bit_assignment.empty 24)
      ~max_states:100 ~len:(Min_search.At_most 4) ()
  with
  | _ -> Alcotest.fail "expected Search_limit_exceeded at the boundary"
  | exception Min_search.Search_limit_exceeded -> ()

let test_branching_limit_node_major () =
  (* Node-major branches once per candidate length on all free bits at
     once: 31 nodes x length 1 = 31 bits > 30. *)
  let g31 = Gen.label_with_ints (Gen.cycle 31) in
  (match
     Min_search.minimal_successful ~solver:Anonet_algorithms.Rand_mis.algorithm
       g31
       ~base:(Bit_assignment.empty 31)
       ~order:Min_search.Node_major ~len:(Min_search.At_most 2) ()
   with
   | _ -> Alcotest.fail "expected Branching_limit_exceeded"
   | exception Min_search.Branching_limit_exceeded { free_bits; limit } ->
     check_int "free bits" 31 free_bits;
     check_int "limit" 30 limit);
  let g30 = Gen.label_with_ints (Gen.cycle 30) in
  match
    Min_search.minimal_successful ~solver:Anonet_algorithms.Rand_mis.algorithm
      g30
      ~base:(Bit_assignment.empty 30)
      ~order:Min_search.Node_major ~max_states:100 ~len:(Min_search.At_most 2) ()
  with
  | _ -> Alcotest.fail "expected Search_limit_exceeded at the boundary"
  | exception Min_search.Search_limit_exceeded -> ()

let test_branching_limit_parallel_agrees () =
  (* The parallel paths enforce the same limits with the same payload. *)
  Pool.with_pool ~domains:2 (fun p ->
      let g25 = Gen.label_with_ints (Gen.cycle 25) in
      (match
         Min_search.minimal_successful
           ~solver:Anonet_algorithms.Rand_mis.algorithm g25
           ~base:(Bit_assignment.empty 25)
           ~ctx:(Run_ctx.make ~pool:p ()) ~len:(Min_search.At_most 4) ()
       with
       | _ -> Alcotest.fail "expected Branching_limit_exceeded"
       | exception Min_search.Branching_limit_exceeded { free_bits; limit } ->
         check_int "free bits" 25 free_bits;
         check_int "limit" 24 limit);
      let g31 = Gen.label_with_ints (Gen.cycle 31) in
      match
        Min_search.minimal_successful ~solver:Anonet_algorithms.Rand_mis.algorithm
          g31
          ~base:(Bit_assignment.empty 31)
          ~order:Min_search.Node_major ~ctx:(Run_ctx.make ~pool:p ()) ~len:(Min_search.At_most 2) ()
      with
      | _ -> Alcotest.fail "expected Branching_limit_exceeded"
      | exception Min_search.Branching_limit_exceeded { free_bits; limit } ->
        check_int "free bits" 31 free_bits;
        check_int "limit" 30 limit)

let test_a_infinity_degrades_gracefully () =
  (* Through A_infinity the typed limits come back as Error strings, not
     exceptions.  A prime coloring keeps the view graph at 31 nodes, so
     node-major's very first candidate length branches on 31 free bits. *)
  let g =
    Anonet_problems.Problem.attach_coloring (Gen.cycle 31)
      (Array.init 31 (fun v -> Label.Int v))
  in
  match
    A_infinity.solve ~gran:Anonet_algorithms.Bundles.mis g
      ~order:Min_search.Node_major ()
  with
  | Ok _ -> Alcotest.fail "expected a graceful error"
  | Error m ->
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    check "mentions free bits" true (contains m "free bits")

(* ---------- QCheck: equivalence on random graphs ---------- *)

let qcheck_lv_equivalence =
  QCheck.Test.make ~name:"las-vegas racing = sequential on random graphs"
    ~count:12
    QCheck.(pair (int_range 4 10) (int_range 1 1000))
    (fun (n, seed) ->
      let g = Gen.random_connected ~seed n 0.35 in
      let solve pool =
        Las_vegas.solve Anonet_algorithms.Rand_mis.algorithm g ~seed
          ~max_rounds:4 ~attempts:15 ~ctx:(Run_ctx.make ?pool ()) ()
      in
      let sequential = solve None in
      List.for_all
        (fun domains ->
          Pool.with_pool ~domains (fun p ->
              match sequential, solve (Some p) with
              | Ok a, Ok b -> report_equal a b
              | Error a, Error b ->
                a.Las_vegas.reason = b.Las_vegas.reason
                && String.equal a.Las_vegas.message b.Las_vegas.message
              | _ -> false))
        [ 2; 4 ])

let qcheck_search_equivalence =
  QCheck.Test.make ~name:"sharded min-search = sequential on random graphs"
    ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed 4 0.5) in
      let search order pool =
        Min_search.minimal_successful
          ~solver:Anonet_algorithms.Rand_mis.algorithm g
          ~base:(Bit_assignment.empty 4) ~order ~ctx:(Run_ctx.make ?pool ()) ~len:(Min_search.At_most 6)
          ()
      in
      List.for_all
        (fun order ->
          let sequential = search order None in
          List.for_all
            (fun domains ->
              Pool.with_pool ~domains (fun p ->
                  match sequential, search order (Some p) with
                  | None, None -> true
                  | Some a, Some b -> found_equal a b
                  | _ -> false))
            [ 2; 4 ])
        [ Min_search.Round_major; Min_search.Node_major ])

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "create validates" `Quick test_pool_create_invalid;
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "run hits each index once" `Quick
            test_pool_run_each_index_once;
          Alcotest.test_case "run propagates exceptions" `Quick
            test_pool_run_propagates_exception;
          Alcotest.test_case "race: lowest index wins" `Quick
            test_pool_race_lowest_wins;
          Alcotest.test_case "race: runs everything below winner" `Quick
            test_pool_race_runs_everything_below_winner;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
        ] );
      ( "las-vegas",
        [
          Alcotest.test_case "equivalence: default budgets" `Quick
            test_lv_equivalence_easy;
          Alcotest.test_case "equivalence: forced retries" `Quick
            test_lv_equivalence_forced_retries;
          Alcotest.test_case "equivalence: no-success error" `Quick
            test_lv_equivalence_no_success_error;
          Alcotest.test_case "equivalence: give-up error" `Quick
            test_lv_equivalence_giveup_error;
          Alcotest.test_case "equivalence: under fault plan" `Quick
            test_lv_equivalence_under_faults;
          Alcotest.test_case "backoff overflow clamped" `Quick
            test_lv_backoff_overflow_clamped;
          QCheck_alcotest.to_alcotest qcheck_lv_equivalence;
        ] );
      ( "min-search",
        [
          Alcotest.test_case "equivalence: round-major" `Quick
            test_search_equivalence_round_major;
          Alcotest.test_case "equivalence: node-major" `Quick
            test_search_equivalence_node_major;
          Alcotest.test_case "equivalence: orders agree" `Quick
            test_search_equivalence_orders_agree;
          Alcotest.test_case "equivalence: search limit" `Quick
            test_search_equivalence_search_limit;
          QCheck_alcotest.to_alcotest qcheck_search_equivalence;
        ] );
      ( "branching-limit",
        [
          Alcotest.test_case "round-major boundary" `Quick
            test_branching_limit_round_major;
          Alcotest.test_case "node-major boundary" `Quick
            test_branching_limit_node_major;
          Alcotest.test_case "parallel agrees" `Quick
            test_branching_limit_parallel_agrees;
          Alcotest.test_case "a-infinity degrades gracefully" `Quick
            test_a_infinity_degrades_gracefully;
        ] );
    ]
