(* Tests for the CSR graph core: the flat offsets/adjacency representation
   must be observationally identical to the legacy per-node adjacency-list
   semantics — same neighbor order, same ports, same degrees — and every
   functional update must keep minting fresh ids (the canonical-encoding
   cache is keyed by them).  On top, the end-to-end solve/derandomize text
   must stay byte-identical across --jobs 1/2/4 on fixed and random
   graphs: the parallel executor aliases the CSR arrays instead of copying
   them, so any mutation slip in the flat layout would surface here. *)

open Anonet_graph
module Job = Anonet_net.Job
module Runner = Anonet_net.Runner

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

(* The reference model: the pre-CSR representation kept one int array per
   node, the neighbor list sorted ascending; a port was an index into it. *)
let reference_adjacency n edges =
  let buckets = Array.make (max 1 n) [] in
  List.iter
    (fun (u, v) ->
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v))
    edges;
  Array.init n (fun v -> Array.of_list (List.sort Int.compare buckets.(v)))

(* Simple-graph edge sampler (deterministic in [seed]; ~30% density, so
   small instances cover empty nodes, leaves and dense nodes alike). *)
let random_edges ~seed n =
  let r = Prng.create seed in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.int r 100 < 30 then edges := (u, v) :: !edges
    done
  done;
  !edges

(* The observational-equivalence core: every accessor, flat or not, must
   agree with the reference model built from the same edge list. *)
let agree name g edges =
  let n = Graph.n g in
  let ref_adj = reference_adjacency n edges in
  let off = Graph.offsets g and adj = Graph.adjacency g in
  check_int (name ^ ": num_edges") (List.length edges) (Graph.num_edges g);
  check_int (name ^ ": offsets length") (n + 1) (Array.length off);
  check_int (name ^ ": total slots") (2 * List.length edges) off.(n);
  check (name ^ ": ports sorted") true (Graph.ports_sorted g);
  check (name ^ ": edge set") true
    (List.sort_uniq compare edges = List.sort compare (Graph.edges g));
  for v = 0 to n - 1 do
    let expect = ref_adj.(v) in
    let d = Array.length expect in
    check_int (Printf.sprintf "%s: degree %d" name v) d (Graph.degree g v);
    check_int (Printf.sprintf "%s: slice width %d" name v) d (off.(v + 1) - off.(v));
    Alcotest.(check (array int))
      (Printf.sprintf "%s: neighbors %d" name v)
      expect (Graph.neighbors g v);
    Array.iteri
      (fun p u ->
        check_int (Printf.sprintf "%s: neighbor %d.%d" name v p) u
          (Graph.neighbor g v p);
        check_int (Printf.sprintf "%s: slot %d.%d" name v p) u (adj.(off.(v) + p));
        check_int (Printf.sprintf "%s: port_to %d->%d" name v u) p
          (Graph.port_to g v u);
        check (Printf.sprintf "%s: has_edge %d-%d" name v u) true
          (Graph.has_edge g v u))
      expect;
    let folded =
      List.rev (Graph.fold_neighbors g v ~init:[] ~f:(fun acc u -> u :: acc))
    in
    check (Printf.sprintf "%s: fold order %d" name v) true
      (Array.to_list expect = folded);
    let iterated = ref [] in
    Graph.iter_neighbors g v ~f:(fun u -> iterated := u :: !iterated);
    check (Printf.sprintf "%s: iter order %d" name v) true
      (Array.to_list expect = List.rev !iterated);
    (* One non-neighbor probe per node: port_to must raise, has_edge deny. *)
    let non_neighbor =
      List.find_opt
        (fun w -> w <> v && not (Array.exists (fun u -> u = w) expect))
        (List.init n (fun i -> i))
    in
    Option.iter
      (fun w ->
        check (Printf.sprintf "%s: no edge %d-%d" name v w) false
          (Graph.has_edge g v w);
        check (Printf.sprintf "%s: no port %d->%d" name v w) true
          (match Graph.port_to g v w with
           | _ -> false
           | exception Not_found -> true))
      non_neighbor
  done

let fixed_graphs =
  [ "petersen", Gen.petersen ();
    "cycle-7", Gen.cycle 7;
    "grid-3x4", Gen.grid 3 4;
    "star-6", Gen.star 6;
    "path-2", Gen.path 2;
  ]

let test_fixed_graphs_agree () =
  List.iter (fun (name, g) -> agree name g (Graph.edges g)) fixed_graphs

let test_empty_and_singleton () =
  agree "empty" (Graph.unlabeled ~n:0 ~edges:[]) [];
  agree "singleton" (Graph.unlabeled ~n:1 ~edges:[]) [];
  agree "two-isolated" (Graph.unlabeled ~n:2 ~edges:[]) []

let qcheck_csr_agrees =
  QCheck.Test.make ~name:"CSR = legacy adjacency on random graphs" ~count:60
    QCheck.(pair (int_range 2 30) (int_range 1 10_000))
    (fun (n, seed) ->
      let edges = random_edges ~seed n in
      agree (Printf.sprintf "n%d-seed%d" n seed) (Graph.unlabeled ~n ~edges) edges;
      true)

(* ---------- functional updates: fresh ids, stable adjacency ---------- *)

let reversing_perms g =
  Array.init (Graph.n g) (fun v ->
      let d = Graph.degree g v in
      Array.init d (fun j -> d - 1 - j))

let test_functional_update_ids () =
  let g = Gen.petersen () in
  let g1 = Graph.relabel g (fun v -> Label.Int v) in
  let g2 = Graph.with_labels g (Array.make 10 (Label.Int 9)) in
  let g3 = Graph.map_labels g (fun l -> l) in
  let g4 = Graph.permute_ports g (reversing_perms g) in
  let ids = List.map Graph.id [ g; g1; g2; g3; g4 ] in
  check_int "all ids distinct" (List.length ids)
    (List.length (List.sort_uniq Int.compare ids));
  (* relabel shares the structure, only the labels move *)
  Graph.iter_nodes g ~f:(fun v ->
      Alcotest.(check (array int))
        (Printf.sprintf "relabel keeps neighbors of %d" v)
        (Graph.neighbors g v) (Graph.neighbors g1 v);
      check "relabel applied" true (Label.equal (Graph.label g1 v) (Label.Int v)))

let test_permute_ports_semantics () =
  let g = Gen.petersen () in
  let gp = Graph.permute_ports g (reversing_perms g) in
  check "reversed ports are unsorted" false (Graph.ports_sorted gp);
  Graph.iter_nodes g ~f:(fun v ->
      let d = Graph.degree g v in
      for j = 0 to d - 1 do
        check_int
          (Printf.sprintf "port %d.%d reversed" v j)
          (Graph.neighbor g v (d - 1 - j))
          (Graph.neighbor gp v j)
      done;
      (* port_to falls back to a linear scan on unsorted ports and must
         still find every neighbor — and only neighbors. *)
      Graph.iter_neighbors g v ~f:(fun u ->
          check_int
            (Printf.sprintf "port_to %d->%d on unsorted" v u)
            u
            (Graph.neighbor gp v (Graph.port_to gp v u))))

let test_encode_streaming_vs_sorting () =
  (* A sorted graph encodes through the streaming CSR walk; the same graph
     with permuted ports falls back to the materialize-and-sort path.  The
     two must agree byte-for-byte (port numbering is not observable in the
     encoding), on fixed and random graphs. *)
  let graphs =
    fixed_graphs
    @ List.map
        (fun seed ->
          ( Printf.sprintf "random-%d" seed,
            Gen.random_connected ~seed 13 0.3 ))
        [ 1; 2; 3 ]
  in
  List.iter
    (fun (name, g) ->
      let identity = Array.init (Graph.n g) (fun i -> i) in
      check_string
        (name ^ ": canonical = to_string identity")
        (Encode.to_string g ~order:identity)
        (Encode.canonical g);
      let gp = Graph.permute_ports g (reversing_perms g) in
      check_string
        (name ^ ": streaming = sorting path")
        (Encode.canonical g) (Encode.canonical gp))
    graphs

(* ---------- solve/derandomize byte-identity across --jobs ---------- *)

let run_job kind pairs ~jobs =
  Runner.execute { Job.kind; pairs = pairs @ [ "jobs", string_of_int jobs ] }

let check_jobs_invariant name kind pairs =
  let base = run_job kind pairs ~jobs:1 in
  check_int (name ^ ": sequential exit code") 0 base.Runner.code;
  List.iter
    (fun jobs ->
      let o = run_job kind pairs ~jobs in
      check_int (Printf.sprintf "%s: exit code at --jobs %d" name jobs)
        base.Runner.code o.Runner.code;
      check_string (Printf.sprintf "%s: stdout at --jobs %d" name jobs)
        base.Runner.out o.Runner.out;
      check_string (Printf.sprintf "%s: stderr at --jobs %d" name jobs)
        base.Runner.err o.Runner.err)
    [ 2; 4 ]

let test_solve_byte_identity () =
  check_jobs_invariant "solve mis/petersen" Job.Solve
    [ "problem", "mis"; "graph", "petersen"; "seed", "3" ];
  check_jobs_invariant "solve 2hop/random" Job.Solve
    [ "problem", "2hop"; "graph", "random:12,0.3,5"; "seed", "7" ];
  check_jobs_invariant "solve mis/gnp" Job.Solve
    [ "problem", "mis"; "graph", "gnp:60,4,2"; "seed", "9" ]

let test_derandomize_byte_identity () =
  check_jobs_invariant "derandomize a-infinity/c6" Job.Derandomize
    [ "problem", "mis"; "graph", "cycle:6"; "colors", "mod:3" ];
  check_jobs_invariant "derandomize a-star/c6" Job.Derandomize
    [ "problem", "mis"; "graph", "cycle:6"; "colors", "mod:3";
      "method", "a-star";
    ]

let () =
  Alcotest.run "csr"
    [
      ( "layout",
        [
          Alcotest.test_case "fixed graphs agree with reference" `Quick
            test_fixed_graphs_agree;
          Alcotest.test_case "empty and singleton graphs" `Quick
            test_empty_and_singleton;
          QCheck_alcotest.to_alcotest qcheck_csr_agrees;
        ] );
      ( "updates",
        [
          Alcotest.test_case "functional updates mint fresh ids" `Quick
            test_functional_update_ids;
          Alcotest.test_case "permute_ports semantics" `Quick
            test_permute_ports_semantics;
          Alcotest.test_case "streaming encode = sorting encode" `Quick
            test_encode_streaming_vs_sorting;
        ] );
      ( "byte-identity",
        [
          Alcotest.test_case "solve across --jobs" `Quick
            test_solve_byte_identity;
          Alcotest.test_case "derandomize across --jobs" `Quick
            test_derandomize_byte_identity;
        ] );
    ]
