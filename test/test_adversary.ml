(* Tests for the adaptive-adversary tier: the spec grammar, seeded
   determinism, budget accounting, the strategies' targeting behavior,
   the checksummed retransmission wrapper's convergence under
   corruption-only adversaries, Las-Vegas sequential/racing identity
   with an adversary in the context, and divergence detection with its
   reserved exit code. *)

open Anonet_graph
open Anonet_runtime
module Catalog = Anonet_problems.Catalog
module Problem = Anonet_problems.Problem
module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs
module Metrics = Anonet_obs.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- plan grammar ---------- *)

let test_grammar_roundtrip () =
  let plans =
    [ Adversary.byzantine [ 0; 2 ] ~strength:0.5 ~seed:7;
      Adversary.sniper 3 ~strength:1.0 ~seed:0;
      { (Adversary.eavesdropper 2 ~strength:0.25 ~seed:9) with
        Adversary.budget = Some 40 };
    ]
  in
  List.iter
    (fun p ->
      let s = Adversary.plan_to_string p in
      match Adversary.plan_of_string s with
      | Error m -> Alcotest.failf "re-parse of %S failed: %s" s m
      | Ok p' -> check (Printf.sprintf "round-trip %S" s) true (p = p'))
    plans

let test_grammar_parses () =
  match Adversary.plan_of_string "eavesdropper=2,strength=0.5,seed=7,budget=40" with
  | Error m -> Alcotest.fail m
  | Ok p ->
    check "strategy" true (p.Adversary.strategy = Adversary.Eavesdropper 2);
    check "strength" true (p.Adversary.strength = 0.5);
    check_int "seed" 7 p.Adversary.seed;
    check "budget" true (p.Adversary.budget = Some 40)

let test_grammar_defaults () =
  match Adversary.plan_of_string "byzantine=1+4" with
  | Error m -> Alcotest.fail m
  | Ok p ->
    check "nodes" true (p.Adversary.strategy = Adversary.Byzantine [ 1; 4 ]);
    check "strength defaults to 1" true (p.Adversary.strength = 1.0);
    check_int "seed defaults to 0" 0 p.Adversary.seed;
    check "budget defaults to unlimited" true (p.Adversary.budget = None)

let test_grammar_rejects () =
  List.iter
    (fun s ->
      match Adversary.plan_of_string s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error _ -> ())
    [ "";                      (* empty spec *)
      "strength=0.5";          (* no strategy item *)
      "byzantine=1,sniper=2";  (* two strategy items *)
      "sniper=-1";             (* negative link count *)
      "byzantine=x";           (* not a node id *)
      "byzantine=-3";          (* negative node id *)
      "strength=1.5";          (* out of range *)
      "eavesdropper=2,budget=-3";  (* negative budget *)
      "warp=1";                (* unknown key *)
    ]

(* ---------- budget and strength ---------- *)

let test_budget_caps_tampering () =
  let plan =
    { (Adversary.byzantine [ 0 ] ~strength:1.0 ~seed:3) with
      Adversary.budget = Some 2 }
  in
  let t = Adversary.make plan in
  let tampered = ref 0 in
  for r = 1 to 10 do
    let p = Label.Int r in
    if not (Label.equal p (Adversary.tamper t ~src:0 ~dst:1 ~round:r p)) then
      incr tampered
  done;
  check_int "tamperings = budget" 2 !tampered;
  check_int "spent = budget" 2 (Adversary.spent t);
  check_int "still observes after exhaustion" 10 (Adversary.observed t);
  check_int "one event per tampering" 2 (List.length (Adversary.events t))

let test_strength_zero_is_a_no_op () =
  let t = Adversary.make (Adversary.byzantine [ 0 ] ~strength:0.0 ~seed:3) in
  for r = 1 to 10 do
    let p = Label.Pair (Label.Int r, Label.Bool (r mod 2 = 0)) in
    check "payload untouched" true
      (Label.equal p (Adversary.tamper t ~src:0 ~dst:1 ~round:r p))
  done;
  check_int "nothing spent" 0 (Adversary.spent t);
  check_int "no events" 0 (List.length (Adversary.events t))

let test_make_rejects_bad_plans () =
  List.iter
    (fun plan ->
      match Adversary.make plan with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [ Adversary.byzantine [ 0 ] ~strength:1.5 ~seed:1;
      Adversary.byzantine [ -2 ] ~strength:0.5 ~seed:1;
      Adversary.sniper (-1) ~strength:0.5 ~seed:1;
      { (Adversary.sniper 1 ~strength:0.5 ~seed:1) with Adversary.budget = Some (-1) };
    ]

(* ---------- strategies ---------- *)

let targeted_links t =
  List.filter_map
    (fun e ->
      match e.Adversary.kind with
      | Adversary.Targeted { src; dst } -> Some (src, dst)
      | _ -> None)
    (Adversary.events t)

let test_byzantine_substitutes_only_its_nodes () =
  let t = Adversary.make (Adversary.byzantine [ 1 ] ~strength:1.0 ~seed:9) in
  let p = Label.Pair (Label.Int 1, Label.Bool true) in
  check "honest sender untouched" true
    (Label.equal p (Adversary.tamper t ~src:0 ~dst:1 ~round:1 p));
  check "byzantine sender substituted" false
    (Label.equal p (Adversary.tamper t ~src:1 ~dst:0 ~round:1 p));
  check "substitution logged" true
    (List.exists
       (fun e ->
         match e.Adversary.kind with
         | Adversary.Substituted { src = 1; dst = 0 } -> true
         | _ -> false)
       (Adversary.events t))

let test_eavesdropper_targets_high_entropy_link () =
  (* Strength 0 so the adversary only observes and targets: link 0->1
     carries a fresh payload every round (high entropy), link 2->3 the
     same constant.  Every boundary must target the diverse link. *)
  let t = Adversary.make (Adversary.eavesdropper 1 ~strength:0.0 ~seed:1) in
  for r = 1 to 5 do
    ignore (Adversary.tamper t ~src:0 ~dst:1 ~round:r (Label.Int (100 + r)));
    ignore (Adversary.tamper t ~src:2 ~dst:3 ~round:r (Label.Int 7))
  done;
  let targeted = targeted_links t in
  check "boundaries produced targets" true (targeted <> []);
  check "every target is the high-entropy link" true
    (List.for_all (fun l -> l = (0, 1)) targeted)

let test_sniper_targets_busiest_link () =
  (* Link 0->1 carries three messages per round, link 2->3 one. *)
  let t = Adversary.make (Adversary.sniper 1 ~strength:0.0 ~seed:1) in
  for r = 1 to 4 do
    for i = 1 to 3 do
      ignore (Adversary.tamper t ~src:0 ~dst:1 ~round:r (Label.Int i))
    done;
    ignore (Adversary.tamper t ~src:2 ~dst:3 ~round:r (Label.Int 0))
  done;
  let targeted = targeted_links t in
  check "boundaries produced targets" true (targeted <> []);
  check "every target is the busiest link" true
    (List.for_all (fun l -> l = (0, 1)) targeted)

(* ---------- seeded determinism through the executors ---------- *)

let test_deterministic_traces () =
  (* Equal plans (faults + adversary) on equal seeds: the full trace —
     timeline, fault events, adversary events — renders identically.
     The trace recorder drives Incremental.step, so this pins the whole
     executor + injector + adversary pipeline. *)
  let g = Gen.cycle 6 in
  let algo = Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm in
  let record () =
    let ctx =
      Run_ctx.make
        ~faults:(Faults.with_loss 0.1 ~seed:5)
        ~adversary:(Adversary.eavesdropper 2 ~strength:0.8 ~seed:13)
        ()
    in
    match
      Trace.record ~ctx algo g ~tape:(Tape.random ~seed:3) ~max_rounds:2000
    with
    | Ok (t, _) -> t
    | Error (_, e) -> Alcotest.failf "should finish: %a" Executor.pp_failure e
  in
  let a = record () and b = record () in
  check "adversary acted at all" true (Trace.adversary_events a <> []);
  Alcotest.(check string) "byte-identical renders" (Trace.render a) (Trace.render b)

(* ---------- the tentpole acceptance property ----------

   The checksummed retransmission wrapper converges to a valid output
   with probability 1 under every corruption-only adversary in this
   suite: corrupted frames fail their checksum (or the plausibility
   window), are dropped whole, and the every-round window resend
   eventually delivers an intact copy.  Sub-1 strength or a finite
   budget guarantees intact copies keep crossing targeted links. *)

let test_retransmit_converges_under_adversaries () =
  let g = Gen.cycle 6 in
  let algo = Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm in
  let adversaries =
    [ "sniper-0.7", (fun seed -> Adversary.sniper 2 ~strength:0.7 ~seed);
      "eavesdropper-0.7",
      (fun seed -> Adversary.eavesdropper 2 ~strength:0.7 ~seed);
      "sniper-1.0-budget200",
      (fun seed ->
        { (Adversary.sniper 2 ~strength:1.0 ~seed) with
          Adversary.budget = Some 200 });
      "byzantine-0.8", (fun seed -> Adversary.byzantine [ 0; 3 ] ~strength:0.8 ~seed);
    ]
  in
  List.iter
    (fun (name, mk) ->
      for seed = 1 to 10 do
        let ctx = Run_ctx.make ~adversary:(mk seed) () in
        match
          Executor.run ~ctx algo g
            ~tape:(Tape.random ~seed:(Prng.hash2 seed 81))
            ~max_rounds:4000
        with
        | Error e ->
          Alcotest.failf "%s seed %d: %a" name seed Executor.pp_failure e
        | Ok { outputs; _ } ->
          check
            (Printf.sprintf "%s seed %d: valid 2-hop coloring" name seed)
            true
            (Catalog.two_hop_coloring.Problem.is_valid_output g outputs)
      done)
    adversaries

let test_retransmit_rejections_are_counted () =
  let registry = Metrics.create () in
  let obs = Obs.make ~metrics:registry () in
  let g = Gen.cycle 6 in
  let algo = Retransmit.wrap ~obs Anonet_algorithms.Rand_two_hop.algorithm in
  let ctx =
    Run_ctx.make ~adversary:(Adversary.sniper 2 ~strength:0.7 ~seed:4) ~obs ()
  in
  (match
     Executor.run ~ctx algo g ~tape:(Tape.random ~seed:6) ~max_rounds:4000
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "should finish: %a" Executor.pp_failure e);
  let counters = (Metrics.snapshot registry).Metrics.counters in
  let value k = Option.value ~default:0 (List.assoc_opt k counters) in
  check "corrupted frames were rejected" true (value "retransmit.rejected" > 0);
  check "adversary tampered" true (value "adversary.corrupted" > 0);
  check_int "rejections cannot exceed tamperings" (value "retransmit.rejected")
    (min (value "retransmit.rejected") (value "adversary.corrupted"))

(* ---------- async executor ---------- *)

let test_async_adversary_is_survivable_and_deterministic () =
  (* The α-synchronizer has no retransmission, so only the synchronizer's
     round tags protect it — but a Byzantine replay keeps frames
     well-formed, and the synchronizer's buffering dedups by port+round.
     Run twice: equal outcomes (determinism); and the tampering must not
     deadlock the run on a fault-free wire. *)
  let g = Gen.cycle 4 in
  let run () =
    let ctx =
      Run_ctx.make ~adversary:(Adversary.eavesdropper 2 ~strength:0.5 ~seed:3) ()
    in
    Async.run ~ctx
      (Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm)
      g ~tape:(Tape.random ~seed:4) ~scheduler:Async.Fifo ~max_events:2_000_000
  in
  match run (), run () with
  | Ok a, Ok b ->
    check "same outputs" true (Array.for_all2 Label.equal a.Async.outputs b.Async.outputs);
    check_int "same events" a.Async.events b.Async.events
  | (Error e, _ | _, Error e) ->
    Alcotest.failf "should finish: %a" Async.pp_failure e

(* ---------- Las-Vegas: racing identity and divergence ---------- *)

let test_las_vegas_pool_identity_under_adversary () =
  (* Equal seeds produce identical reports (or identical structured
     failures) at --jobs 1/2/4: attempts instantiate fresh adversaries, so
     outcomes stay pure functions of (seed, attempt, budget). *)
  let g = Gen.petersen () in
  let algo = Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm in
  let adversary = Adversary.eavesdropper 2 ~strength:0.6 ~seed:11 in
  let solve pool =
    Las_vegas.solve
      ~ctx:(Run_ctx.make ~adversary ?pool ())
      algo g ~seed:4 ~max_rounds:120 ~attempts:6 ()
  in
  let seq = solve None in
  check "the run is meaningful" true (Result.is_ok seq || Result.is_error seq);
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          check
            (Printf.sprintf "racing(%d) = sequential" domains)
            true
            (solve (Some p) = seq)))
    [ 2; 4 ]

let test_divergence_detection () =
  (* Total loss + retransmission never stabilizes: with a divergence
     threshold the harness stops escalating, reports Diverged, and maps to
     exit code 9 — identically in sequential and racing modes. *)
  let g = Gen.cycle 4 in
  let algo = Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm in
  let faults = Faults.with_loss 1.0 ~seed:2 in
  let solve pool =
    Las_vegas.solve
      ~ctx:(Run_ctx.make ~faults ?pool ())
      algo g ~seed:3 ~max_rounds:50 ~attempts:10 ~divergence:3.0 ()
  in
  match solve None with
  | Ok _ -> Alcotest.fail "expected divergence under total loss"
  | Error f ->
    check "reason is Diverged" true (f.Las_vegas.reason = Las_vegas.Diverged);
    let contains needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    check "message says so" true (contains "divergence" f.Las_vegas.message);
    check_int "exit code 9" 9 (Run_error.exit_code (Run_error.Las_vegas f));
    Pool.with_pool ~domains:2 (fun p ->
        check "racing reports the identical failure" true (solve (Some p) = Error f))

let test_divergence_validates () =
  (match
     Las_vegas.solve Anonet_algorithms.Rand_mis.algorithm
       (Gen.cycle 4) ~seed:1 ~divergence:(-1.0) ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for divergence <= 0");
  (* and a clean run with a threshold set still succeeds *)
  match
    Las_vegas.solve Anonet_algorithms.Rand_mis.algorithm (Gen.cycle 4)
      ~seed:1 ~divergence:8.0 ()
  with
  | Ok r ->
    check "valid MIS" true
      (Catalog.mis.Problem.is_valid_output (Gen.cycle 4)
         r.Las_vegas.outcome.Executor.outputs)
  | Error f -> Alcotest.fail f.Las_vegas.message

let () =
  Alcotest.run "anonet_adversary"
    [
      ( "grammar",
        [
          Alcotest.test_case "round-trip" `Quick test_grammar_roundtrip;
          Alcotest.test_case "parses the README example" `Quick test_grammar_parses;
          Alcotest.test_case "defaults" `Quick test_grammar_defaults;
          Alcotest.test_case "rejects malformed specs" `Quick test_grammar_rejects;
        ] );
      ( "budget",
        [
          Alcotest.test_case "budget caps tampering" `Quick test_budget_caps_tampering;
          Alcotest.test_case "strength 0 is a no-op" `Quick test_strength_zero_is_a_no_op;
          Alcotest.test_case "make validates plans" `Quick test_make_rejects_bad_plans;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "byzantine substitutes only its nodes" `Quick
            test_byzantine_substitutes_only_its_nodes;
          Alcotest.test_case "eavesdropper targets high entropy" `Quick
            test_eavesdropper_targets_high_entropy_link;
          Alcotest.test_case "sniper targets busiest link" `Quick
            test_sniper_targets_busiest_link;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical traces" `Quick test_deterministic_traces;
        ] );
      ( "retransmit-hardening",
        [
          Alcotest.test_case "converges under corruption-only adversaries (10 seeds x4)"
            `Slow test_retransmit_converges_under_adversaries;
          Alcotest.test_case "rejected frames are counted" `Quick
            test_retransmit_rejections_are_counted;
          Alcotest.test_case "async survives tampering deterministically" `Quick
            test_async_adversary_is_survivable_and_deterministic;
        ] );
      ( "las-vegas",
        [
          Alcotest.test_case "sequential = racing under adversary" `Slow
            test_las_vegas_pool_identity_under_adversary;
          Alcotest.test_case "divergence detection + exit code 9" `Quick
            test_divergence_detection;
          Alcotest.test_case "divergence parameter validates" `Quick
            test_divergence_validates;
        ] );
    ]
