(* Tests for the incremental phase engine: Min_search.Resumable warm
   starts against cold searches, A*'s cross-phase search/simulation
   cache (value identity, eviction), and the round-major budget parity
   across pool sizes. *)

open Anonet_graph
open Anonet
module Problem = Anonet_problems.Problem
module Bundles = Anonet_algorithms.Bundles
module Executor = Anonet_runtime.Executor
module Run_ctx = Anonet_runtime.Run_ctx
module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs
module Metrics = Anonet_obs.Metrics

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let colored_instance g colors = Problem.attach_coloring g colors

let c6_instance () =
  colored_instance (Gen.cycle 6) (Array.init 6 (fun v -> Label.Int ((v mod 3) + 1)))

let prime_instance g = colored_instance g (Array.init (Graph.n g) (fun v -> Label.Int v))

let ctx_of_pool pool = Run_ctx.make ?pool ()

(* Run [f] sequentially and under 2- and 4-domain pools. *)
let with_pool_sizes f =
  f None;
  List.iter (fun domains -> Pool.with_pool ~domains (fun p -> f (Some p))) [ 2; 4 ]

let bits_testable =
  Alcotest.testable
    (fun fmt b -> Format.pp_print_string fmt (Bits.to_string b))
    (fun a b -> String.equal (Bits.to_string a) (Bits.to_string b))

(* found-by-found equality between a warm and a cold search result *)
let check_found_equal name warm cold =
  match warm, cold with
  | None, None -> ()
  | Some _, None | None, Some _ ->
    Alcotest.failf "%s: warm and cold disagree on existence" name
  | Some (w : Min_search.found), Some (c : Min_search.found) ->
    Array.iteri
      (fun v bits ->
        Alcotest.check bits_testable
          (Printf.sprintf "%s: assignment node %d" name v)
          bits w.Min_search.assignment.(v))
      c.Min_search.assignment;
    check (name ^ ": sim success") c.Min_search.sim.Simulation.successful
      w.Min_search.sim.Simulation.successful;
    check_int (name ^ ": sim rounds") c.Min_search.sim.Simulation.rounds_run
      w.Min_search.sim.Simulation.rounds_run;
    check (name ^ ": sim outputs") true
      (w.Min_search.sim.Simulation.outputs = c.Min_search.sim.Simulation.outputs);
    check_int (name ^ ": states explored") c.Min_search.states_explored
      w.Min_search.states_explored

(* ---------- Resumable = cold, phase for phase ---------- *)

let search_fixtures () =
  let base_p3 =
    (* a partially prescribed base, so free/prescribed paths both run *)
    let b = Bit_assignment.empty 3 in
    b.(0) <- Bits.of_string "01";
    b
  in
  [ "path2-mis", Gen.label_with_ints (Gen.path 2), Bit_assignment.empty 2, 7;
    "cycle3-mis", Gen.label_with_ints (Gen.cycle 3), Bit_assignment.empty 3, 7;
    "cycle4-mis", Gen.label_with_ints (Gen.cycle 4), Bit_assignment.empty 4, 6;
    "path3-mis-base01", Gen.label_with_ints (Gen.path 3), base_p3, 6;
  ]

let check_resumable_matches_cold ~name ~solver g ~base ~max_len pool =
  let ctx = ctx_of_pool pool in
  let handle = Min_search.Resumable.create ~ctx ~solver g ~base () in
  let lo = Bit_assignment.max_length base in
  for len = max 1 lo to max_len do
    let warm = Min_search.Resumable.extend handle ~len in
    let cold =
      Min_search.minimal_successful ~ctx ~solver g ~base
        ~len:(Min_search.Exactly len) ()
    in
    let name = Printf.sprintf "%s len=%d" name len in
    check_found_equal name warm cold;
    (match cold with
     | Some c ->
       check_int (name ^ ": cumulative states")
         c.Min_search.states_explored
         (Min_search.Resumable.states_explored handle)
     | None -> ());
    check (name ^ ": level <= len") true (Min_search.Resumable.level handle <= len)
  done

let test_resumable_equals_cold () =
  List.iter
    (fun (name, g, base, max_len) ->
      with_pool_sizes (fun pool ->
          let name =
            Printf.sprintf "%s/domains=%d" name
              (match pool with None -> 1 | Some p -> Pool.domains p)
          in
          check_resumable_matches_cold ~name
            ~solver:Anonet_algorithms.Rand_mis.algorithm g ~base ~max_len pool))
    (search_fixtures ())

let prop_resumable_equals_cold =
  QCheck.Test.make ~name:"resumable = cold on random graphs, pools 1/2/4"
    ~count:15
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed 4 0.5) in
      with_pool_sizes (fun pool ->
          check_resumable_matches_cold
            ~name:(Printf.sprintf "seed=%d" seed)
            ~solver:Anonet_algorithms.Rand_mis.algorithm g
            ~base:(Bit_assignment.empty 4) ~max_len:5 pool);
      true)

(* extend must refuse to shrink *)
let test_resumable_backward_extend () =
  let g = Gen.label_with_ints (Gen.cycle 3) in
  let handle =
    Min_search.Resumable.create ~solver:Anonet_algorithms.Rand_mis.algorithm g
      ~base:(Bit_assignment.empty 3) ()
  in
  ignore (Min_search.Resumable.extend handle ~len:4);
  let level = Min_search.Resumable.level handle in
  check "advanced" true (level >= 1);
  Alcotest.check_raises "backward extend rejected"
    (Invalid_argument "Min_search.Resumable.extend: target below explored level")
    (fun () -> ignore (Min_search.Resumable.extend handle ~len:(level - 1)))

(* ---------- A* warm = cold, whole solves ---------- *)

let a_star_instances () =
  [ "c6/3colors", c6_instance ();
    "c3-prime", prime_instance (Gen.cycle 3);
    "p3-prime", prime_instance (Gen.path 3);
    "p1", prime_instance (Gen.path 1);
    "star3-prime", prime_instance (Gen.star 3);
  ]

let solve_outcome ?ctx ?incremental ?search_cache_cap ~gran inst =
  match A_star.solve ?ctx ~gran inst ?incremental ?search_cache_cap () with
  | Ok outcome -> outcome
  | Error m -> failwith m

let check_same_outcome name (a : Executor.outcome) (b : Executor.outcome) =
  check_int (name ^ ": rounds") a.Executor.rounds b.Executor.rounds;
  check (name ^ ": outputs") true (a.Executor.outputs = b.Executor.outputs)

let check_a_star_warm_equals_cold ~name ~gran inst =
  let cold = solve_outcome ~incremental:false ~gran inst in
  let warm = solve_outcome ~gran inst in
  check_same_outcome (name ^ " seq") cold warm;
  Pool.with_pool ~domains:4 (fun p ->
      let warm_pooled =
        solve_outcome ~ctx:(Run_ctx.make ~pool:p ()) ~gran inst
      in
      check_same_outcome (name ^ " pool4") cold warm_pooled)

let test_a_star_warm_equals_cold () =
  List.iter
    (fun gran ->
      List.iter
        (fun (name, inst) ->
          check_a_star_warm_equals_cold
            ~name:
              (Printf.sprintf "%s on %s" gran.Anonet_problems.Gran.problem.Problem.name
                 name)
            ~gran inst)
        (a_star_instances ()))
    [ Bundles.mis; Bundles.coloring ]

let test_a_star_warm_equals_cold_two_hop () =
  (* the deep case: long phase schedule, most frontier reuse *)
  check_a_star_warm_equals_cold ~name:"2hop on c6" ~gran:Bundles.two_hop_coloring
    (c6_instance ())

let prop_a_star_warm_equals_cold =
  QCheck.Test.make ~name:"A* warm = cold on random colored instances" ~count:10
    (QCheck.make
       ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%f" seed n p)
       QCheck.Gen.(triple (int_bound 10_000) (int_range 2 4) (float_bound_inclusive 0.4)))
    (fun (seed, n, p) ->
      let g = Gen.random_connected ~seed n p in
      let inst =
        match
          Anonet_runtime.Las_vegas.solve_msg Anonet_algorithms.Rand_two_hop.algorithm g
            ~seed:(seed + 13) ()
        with
        | Error m -> failwith m
        | Ok r ->
          colored_instance g r.Anonet_runtime.Las_vegas.outcome.Executor.outputs
      in
      check_a_star_warm_equals_cold
        ~name:(Printf.sprintf "seed=%d n=%d" seed n)
        ~gran:Bundles.mis inst;
      true)

(* ---------- cache accounting and the eviction path ---------- *)

let counters_after ?search_cache_cap ~gran inst =
  let registry = Metrics.create () in
  let obs = Obs.make ~metrics:registry () in
  let outcome =
    solve_outcome ~ctx:(Run_ctx.make ~obs ()) ?search_cache_cap ~gran inst
  in
  let value name = Metrics.counter_value (Metrics.counter registry name) in
  outcome, value

let test_a_star_cache_counters () =
  let outcome, value = counters_after ~gran:Bundles.mis (c6_instance ()) in
  let cold = solve_outcome ~incremental:false ~gran:Bundles.mis (c6_instance ()) in
  check_same_outcome "counters run" cold outcome;
  check "some hits" true (value "cache.search.hits" > 0);
  check "some misses" true (value "cache.search.misses" > 0);
  check "levels were resumed" true (value "cache.search.resumed_levels" > 0);
  check "states counted" true (value "search.states_explored" > 0);
  check "sims counted" true (value "sim.runs" > 0)

let test_a_star_eviction_path () =
  (* cap 1 on an instance whose classes select different candidates:
     every phase alternates entries through the one slot, so the warm
     path keeps evicting and recreating — and must stay value-identical
     to the cold path throughout. *)
  let inst = prime_instance (Gen.path 3) in
  let outcome, value = counters_after ~search_cache_cap:1 ~gran:Bundles.mis inst in
  let cold = solve_outcome ~incremental:false ~gran:Bundles.mis inst in
  check_same_outcome "eviction run" cold outcome;
  check "evictions happened" true (value "cache.search.evictions" > 0);
  check "misses happened" true (value "cache.search.misses" > 1)

(* ---------- budget parity across pool sizes ---------- *)

let test_budget_parity () =
  let g = Gen.label_with_ints (Gen.cycle 4) in
  let max_states = 50 in
  let explored_at_raise pool =
    let registry = Metrics.create () in
    let obs = Obs.make ~metrics:registry () in
    let ctx = Run_ctx.make ?pool ~obs () in
    (try
       ignore
         (Min_search.minimal_successful ~ctx
            ~solver:Anonet_algorithms.Rand_mis.algorithm g
            ~base:(Bit_assignment.empty 4) ~max_states
            ~len:(Min_search.Exactly 12) ());
       Alcotest.fail "expected Search_limit_exceeded"
     with Min_search.Search_limit_exceeded -> ());
    Metrics.counter_value (Metrics.counter registry "search.states_explored")
  in
  let seq = explored_at_raise None in
  check_int "sequential counts one past the budget" (max_states + 1) seq;
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          check_int
            (Printf.sprintf "domains=%d matches sequential" domains)
            seq
            (explored_at_raise (Some p))))
    [ 2; 4 ]

let () =
  Alcotest.run "incremental"
    [
      ( "resumable",
        [
          Alcotest.test_case "warm = cold on fixtures, pools 1/2/4" `Quick
            test_resumable_equals_cold;
          Alcotest.test_case "backward extend rejected" `Quick
            test_resumable_backward_extend;
          QCheck_alcotest.to_alcotest prop_resumable_equals_cold;
        ] );
      ( "a-star-cache",
        [
          Alcotest.test_case "warm = cold on fixtures, seq + pool4" `Slow
            test_a_star_warm_equals_cold;
          Alcotest.test_case "warm = cold on the 2hop solver" `Slow
            test_a_star_warm_equals_cold_two_hop;
          Alcotest.test_case "cache counters live" `Quick
            test_a_star_cache_counters;
          Alcotest.test_case "eviction path stays identical" `Quick
            test_a_star_eviction_path;
          QCheck_alcotest.to_alcotest prop_a_star_warm_equals_cold;
        ] );
      ( "budget",
        [
          Alcotest.test_case "states at raise identical at jobs 1/2/4" `Quick
            test_budget_parity;
        ] );
    ]
