(* Tests for the observability layer: the metrics registry (sharded
   counters, gauges, histograms, snapshots, both renderers), the structured
   event sink (NDJSON schema, sequence numbers, escaping), profiling spans
   (nesting, exception safety), and the acceptance bar of the Run_ctx
   redesign — live-handle byte-identity of instrumented runs, and live
   counters matching the runtime's own reports exactly on the three fixed
   scenarios (fault-free run, lossy retransmitted solve, node-major
   search). *)

open Anonet_graph
open Anonet_runtime
open Anonet
module Metrics = Anonet_obs.Metrics
module Events = Anonet_obs.Events
module Obs = Anonet_obs.Obs
module Pool = Anonet_parallel.Pool
module Catalog = Anonet_problems.Catalog
module Problem = Anonet_problems.Problem
module Experiments = Anonet_experiments.Experiments

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------- a minimal JSON parser ----------

   The library renders JSON but deliberately does not parse it (it stays
   dependency-free); the tests validate the rendered output with this
   little recursive-descent parser.  Object fields keep their order, which
   the NDJSON schema tests rely on (ts/seq/event must come first). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d in %s" msg !pos s)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* the emitter only \u-escapes control characters *)
           Buffer.add_char buf (Char.chr (code land 0xff))
         | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance (); skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws (); expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
    | Some '[' ->
      advance (); skip_ws ();
      if peek () = Some ']' then (advance (); Arr [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_assoc = function Obj kvs -> kvs | _ -> Alcotest.fail "expected object"
let obj_field j k =
  match List.assoc_opt k (obj_assoc j) with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" k
let as_num = function Num f -> f | _ -> Alcotest.fail "expected number"
let as_str = function Str s -> s | _ -> Alcotest.fail "expected string"
let as_int j = int_of_float (as_num j)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  go []

let with_temp_file f =
  let path = Filename.temp_file "anonet-obs" ".ndjson" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* ---------- metrics registry ---------- *)

let test_counter_basics () =
  let t = Metrics.create () in
  let c = Metrics.counter t "executor.rounds" in
  Metrics.incr c;
  Metrics.incr ~by:5 c;
  check_int "value" 6 (Metrics.counter_value c);
  (* registration is idempotent: same name = same metric *)
  let c' = Metrics.counter t "executor.rounds" in
  Metrics.incr c';
  check_int "shared" 7 (Metrics.counter_value c);
  let snap = Metrics.snapshot t in
  check_int "one counter" 1 (List.length snap.Metrics.counters);
  check_int "snapshot agrees" 7 (List.assoc "executor.rounds" snap.Metrics.counters)

let test_gauge_last_write () =
  let t = Metrics.create () in
  let g = Metrics.gauge t "frontier" in
  Metrics.set g 10;
  Metrics.set g 3;
  check_int "last write wins" 3 (Metrics.gauge_value g);
  check_int "snapshot" 3 (List.assoc "frontier" (Metrics.snapshot t).Metrics.gauges)

let test_histogram_stats () =
  let t = Metrics.create () in
  let h = Metrics.histogram t "lat" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3 ];
  let s = List.assoc "lat" (Metrics.snapshot t).Metrics.histograms in
  check_int "count" 4 s.Metrics.count;
  check_int "sum" 6 s.Metrics.sum;
  check_int "min" 0 s.Metrics.min;
  check_int "max" 3 s.Metrics.max;
  (* bucket b holds samples of bit width b: 0 -> 0, 1 -> 1, {2,3} -> 2 *)
  check "buckets" true (s.Metrics.buckets = [ (0, 1); (1, 1); (2, 2) ])

let test_snapshot_sorted () =
  let t = Metrics.create () in
  Metrics.incr (Metrics.counter t "zeta");
  Metrics.incr (Metrics.counter t "alpha");
  Metrics.incr (Metrics.counter t "mid");
  let names = List.map fst (Metrics.snapshot t).Metrics.counters in
  check "sorted" true (names = [ "alpha"; "mid"; "zeta" ])

let test_sharded_counters () =
  (* The headline concurrency property: per-domain shards merge to the
     exact total, with racing writers. *)
  let t = Metrics.create () in
  let c = Metrics.counter t "hits" in
  let per_domain = 10_000 in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  List.iter Domain.join workers;
  check_int "merged across shards" (4 * per_domain) (Metrics.counter_value c)

let test_render_json () =
  let t = Metrics.create () in
  Metrics.incr ~by:42 (Metrics.counter t "lv.rounds");
  Metrics.set (Metrics.gauge t "faults.spent") 7;
  Metrics.observe (Metrics.histogram t "span.run.ns") 1000;
  let line = Metrics.render_json (Metrics.snapshot t) in
  check "newline-terminated" true (String.length line > 0 && line.[String.length line - 1] = '\n');
  check "single line" true
    (not (String.contains (String.sub line 0 (String.length line - 1)) '\n'));
  let j = parse_json (String.trim line) in
  check_string "schema" "anonet-metrics/1" (as_str (obj_field j "schema"));
  check_int "counter" 42 (as_int (obj_field (obj_field j "counters") "lv.rounds"));
  check_int "gauge" 7 (as_int (obj_field (obj_field j "gauges") "faults.spent"));
  let h = obj_field (obj_field j "histograms") "span.run.ns" in
  check_int "hist count" 1 (as_int (obj_field h "count"));
  check_int "hist sum" 1000 (as_int (obj_field h "sum"))

let test_render_text () =
  let t = Metrics.create () in
  Metrics.incr ~by:9 (Metrics.counter t "executor.rounds");
  let txt = Metrics.render_text (Metrics.snapshot t) in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check "stats header" true (contains "stats:" txt);
  check "counter line" true (contains "executor.rounds" txt);
  check "value" true (contains "9" txt)

(* ---------- event sink ---------- *)

let test_null_sink () =
  check "not live" false (Events.live Events.null);
  (* emitting on the null sink is a no-op, not an error *)
  Events.emit Events.null "round" [ ("round", Events.Int 1) ];
  Events.flush Events.null

let test_ndjson_schema () =
  with_temp_file @@ fun path ->
  let oc = open_out path in
  let sink = Events.ndjson oc in
  check "live" true (Events.live sink);
  Events.emit sink "round" [ ("round", Events.Int 3); ("ok", Events.Bool true) ];
  Events.emit sink "attempt.done"
    [ ("outcome", Events.String "quote\"back\\slash\nnewline"); ("ratio", Events.Float 0.5) ];
  Events.emit sink "bare" [];
  Events.flush sink;
  close_out oc;
  let lines = read_lines path in
  check_int "three lines" 3 (List.length lines);
  let parsed = List.map parse_json lines in
  (* the reserved fields come first, in order, on every line *)
  List.iteri
    (fun i j ->
      match obj_assoc j with
      | ("ts", Num ts) :: ("seq", Num seq) :: ("event", Str _) :: _ ->
        check "ts >= 0" true (ts >= 0.0);
        check_int (Printf.sprintf "seq %d" i) i (int_of_float seq)
      | _ -> Alcotest.fail "ts/seq/event must lead every line")
    parsed;
  let second = List.nth parsed 1 in
  check_string "event name" "attempt.done" (as_str (obj_field second "event"));
  check_string "string field round-trips" "quote\"back\\slash\nnewline"
    (as_str (obj_field second "outcome"));
  check "float field" true (Float.abs (as_num (obj_field second "ratio") -. 0.5) < 1e-9);
  let first = List.nth parsed 0 in
  check "bool field" true (obj_field first "ok" = Bool true);
  check_int "int field" 3 (as_int (obj_field first "round"))

let test_human_sink () =
  with_temp_file @@ fun path ->
  let oc = open_out path in
  let sink = Events.human oc in
  Events.emit sink "attempt.start" [ ("attempt", Events.Int 1) ];
  Events.flush sink;
  close_out oc;
  match read_lines path with
  | [ line ] ->
    check "bracketed prefix" true (String.length line > 0 && line.[0] = '[');
    let contains needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    check "name" true (contains "attempt.start" line);
    check "field" true (contains "attempt=1" line)
  | lines -> Alcotest.failf "expected one line, got %d" (List.length lines)

(* ---------- obs handle and spans ---------- *)

let test_null_handle () =
  check "not live" false (Obs.live Obs.null);
  check "no metrics" true (Obs.metrics Obs.null = None);
  check "no counter handle" true (Obs.counter Obs.null "x" = None);
  Obs.incr (Obs.counter Obs.null "x");
  Obs.set (Obs.gauge Obs.null "y") 3;
  Obs.observe (Obs.histogram Obs.null "z") 9;
  Obs.event Obs.null "e" [];
  Obs.eventf Obs.null "e" (fun () -> Alcotest.fail "eventf must be lazy on null");
  check_int "span is transparent" 42 (Obs.span Obs.null "s" (fun () -> 42))

let test_span_records () =
  with_temp_file @@ fun path ->
  let oc = open_out path in
  let registry = Metrics.create () in
  let obs = Obs.make ~metrics:registry ~events:(Events.ndjson oc) () in
  let result = Obs.span obs "outer" (fun () -> Obs.span obs "inner" (fun () -> 7)) in
  close_out oc;
  check_int "result" 7 result;
  let snap = Metrics.snapshot registry in
  let stats name = List.assoc ("span." ^ name ^ ".ns") snap.Metrics.histograms in
  check_int "outer count" 1 (stats "outer").Metrics.count;
  check_int "inner count" 1 (stats "inner").Metrics.count;
  check "durations nest" true ((stats "inner").Metrics.sum <= (stats "outer").Metrics.sum);
  let events = List.map parse_json (read_lines path) in
  let of_kind k =
    List.filter (fun j -> as_str (obj_field j "event") = k) events
  in
  (* open/open/close/close, inner closing first *)
  check "nesting order" true
    (List.map (fun j -> (as_str (obj_field j "event"), as_str (obj_field j "span"))) events
     = [ ("span.open", "outer"); ("span.open", "inner");
         ("span.close", "inner"); ("span.close", "outer") ]);
  List.iter
    (fun j ->
      check "ok" true (obj_field j "ok" = Bool true);
      check "ns >= 0" true (as_int (obj_field j "ns") >= 0))
    (of_kind "span.close")

let test_span_exception_safety () =
  with_temp_file @@ fun path ->
  let oc = open_out path in
  let registry = Metrics.create () in
  let obs = Obs.make ~metrics:registry ~events:(Events.ndjson oc) () in
  (match Obs.span obs "failing" (fun () -> raise Exit) with
   | () -> Alcotest.fail "exception swallowed"
   | exception Exit -> ());
  close_out oc;
  let snap = Metrics.snapshot registry in
  check_int "span still timed" 1
    (List.assoc "span.failing.ns" snap.Metrics.histograms).Metrics.count;
  let close =
    List.find
      (fun j -> as_str (obj_field j "event") = "span.close")
      (List.map parse_json (read_lines path))
  in
  check "closed with ok=false" true (obj_field close "ok" = Bool false)

(* ---------- acceptance: counters match the runtime's own reports ---------- *)

let live_ctx () =
  let registry = Metrics.create () in
  registry, Run_ctx.make ~obs:(Obs.make ~metrics:registry ()) ()

let counter_of registry name =
  match List.assoc_opt name (Metrics.snapshot registry).Metrics.counters with
  | Some v -> v
  | None -> Alcotest.failf "counter %S not in snapshot" name

(* Scenario 1 (fault-free): executor.{rounds,messages} = Executor.outcome. *)
let test_counters_fault_free_run () =
  let registry, ctx = live_ctx () in
  match
    Executor.run ~ctx Anonet_algorithms.Rand_mis.algorithm (Gen.petersen ())
      ~tape:(Tape.random ~seed:3) ~max_rounds:1_000
  with
  | Error f -> Alcotest.failf "run failed: %a" Executor.pp_failure f
  | Ok o ->
    check_int "executor.rounds" o.Executor.rounds (counter_of registry "executor.rounds");
    check_int "executor.messages" o.Executor.messages
      (counter_of registry "executor.messages")

(* Scenario 2 (20% loss + retransmission): lv.* = the Las-Vegas report,
   and the fault injections show up under faults.*. *)
let test_counters_lossy_solve () =
  let g = Gen.cycle 6 in
  let registry = Metrics.create () in
  let ctx =
    Run_ctx.make
      ~faults:(Faults.with_loss 0.2 ~seed:21)
      ~obs:(Obs.make ~metrics:registry ())
      ()
  in
  match
    Las_vegas.solve ~ctx
      (Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm)
      g ~seed:5 ()
  with
  | Error f -> Alcotest.fail f.Las_vegas.message
  | Ok r ->
    check_int "lv.attempts" r.Las_vegas.attempts (counter_of registry "lv.attempts");
    check_int "lv.rounds_spent" r.Las_vegas.rounds_spent
      (counter_of registry "lv.rounds_spent");
    check_int "lv.rounds" r.Las_vegas.outcome.Executor.rounds
      (counter_of registry "lv.rounds");
    check_int "lv.messages" r.Las_vegas.outcome.Executor.messages
      (counter_of registry "lv.messages");
    check "output valid under loss" true
      (Catalog.two_hop_coloring.Problem.is_valid_output g
         r.Las_vegas.outcome.Executor.outputs)

(* Scenario 3 (node-major search): search.states_explored = found record. *)
let test_counters_node_major_search () =
  let registry, ctx = live_ctx () in
  match
    Min_search.minimal_successful ~ctx
      ~solver:Anonet_algorithms.Rand_coloring.algorithm (Gen.complete 2)
      ~base:(Bit_assignment.empty 2) ~order:Min_search.Node_major
      ~len:(Min_search.At_most 8) ()
  with
  | None -> Alcotest.fail "search found nothing"
  | Some f ->
    check_int "search.states_explored" f.Min_search.states_explored
      (counter_of registry "search.states_explored");
    check "span present" true
      (List.mem_assoc "span.min_search.node_major.ns"
         (Metrics.snapshot registry).Metrics.histograms)

(* ---------- acceptance: live handles are byte-identical to null ---------- *)

let test_executor_obs_identity () =
  let g = Gen.petersen () in
  let plan = Faults.with_loss 0.3 ~seed:4 in
  let via_ctx =
    Executor.run
      ~ctx:(Run_ctx.make ~faults:plan ~scramble_seed:7 ())
      Anonet_algorithms.Rand_mis.algorithm g ~tape:(Tape.random ~seed:3)
      ~max_rounds:1_000
  in
  (* a live-metrics context never changes the result *)
  let _, live = live_ctx () in
  let observed =
    Executor.run
      ~ctx:{ live with Run_ctx.faults = Some plan; scramble_seed = Some 7 }
      Anonet_algorithms.Rand_mis.algorithm g ~tape:(Tape.random ~seed:3)
      ~max_rounds:1_000
  in
  check "instrumented run agrees" true (via_ctx = observed)

let test_las_vegas_obs_identity () =
  let g = Gen.cycle 6 in
  let plan = Faults.with_loss 0.2 ~seed:21 in
  let algo = Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm in
  let solve_with ?pool () =
    Las_vegas.solve ~ctx:(Run_ctx.make ~faults:plan ?pool ()) algo g ~seed:5 ()
  in
  let sequential = solve_with () in
  (* byte-identity across jobs 1 and 4 *)
  Pool.with_pool ~domains:4 (fun pool ->
      let raced = solve_with ~pool () in
      check "jobs=4 agrees with jobs=1" true (sequential = raced))

(* ---------- acceptance: NDJSON stream of a seed-fixed faulty solve ---------- *)

let test_ndjson_golden_solve () =
  with_temp_file @@ fun path ->
  let oc = open_out path in
  let registry = Metrics.create () in
  let result =
    Pool.with_pool ~domains:2 (fun pool ->
        let ctx =
          Run_ctx.make
            ~faults:(Faults.with_loss 0.2 ~seed:21)
            ~pool
            ~obs:(Obs.make ~metrics:registry ~events:(Events.ndjson oc) ())
            ()
        in
        Las_vegas.solve ~ctx
          (Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm)
          (Gen.cycle 6) ~seed:5 ())
  in
  close_out oc;
  (match result with
  | Error f -> Alcotest.fail f.Las_vegas.message
  | Ok _ -> ());
  let events = List.map parse_json (read_lines path) in
  check "stream non-empty" true (events <> []);
  let allowed =
    [ "span.open"; "span.close"; "attempt.start"; "attempt.done";
      "attempt.cancel"; "attempt.win"; "lv.fail" ]
  in
  List.iteri
    (fun i j ->
      (* schema: ts/seq/event lead every object; seq is dense from 0 *)
      (match obj_assoc j with
       | ("ts", Num _) :: ("seq", Num seq) :: ("event", Str name) :: _ ->
         check_int "seq dense" i (int_of_float seq);
         check ("known event: " ^ name) true (List.mem name allowed)
       | _ -> Alcotest.fail "ts/seq/event must lead every line"))
    events;
  let named k = List.filter (fun j -> as_str (obj_field j "event") = k) events in
  check_int "exactly one winner" 1 (List.length (named "attempt.win"));
  check_int "solve span opened once" 1 (List.length (named "span.open"));
  check_int "solve span closed once" 1 (List.length (named "span.close"));
  check "span is the solve" true
    (as_str (obj_field (List.hd (named "span.open")) "span") = "las_vegas.solve");
  (* every started attempt is resolved: done or cancelled *)
  check "attempts resolved" true
    (List.length (named "attempt.start")
     = List.length (named "attempt.done") + List.length (named "attempt.cancel"))

(* ---------- acceptance: null-handle overhead stays within noise ---------- *)

let test_null_overhead_guard () =
  (* The null handle must keep the executor's hot loop cheap: a
     live-metrics run of the same fixed workload may not be wildly slower
     than the null-handle run (generous 10x bound — this is a regression
     tripwire for accidental allocation on the hot path, not a benchmark). *)
  let workload ctx =
    for seed = 1 to 30 do
      match
        Executor.run ~ctx Anonet_algorithms.Rand_mis.algorithm (Gen.petersen ())
          ~tape:(Tape.random ~seed) ~max_rounds:1_000
      with
      | Ok _ -> ()
      | Error f -> Alcotest.failf "workload failed: %a" Executor.pp_failure f
    done
  in
  let time ctx =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      workload ctx;
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let null_t = time Run_ctx.default in
  let _, live = live_ctx () in
  let live_t = time live in
  check "live within 10x of null (+1ms grace)" true (live_t <= (null_t *. 10.) +. 0.001)

(* ---------- experiments return structured rows ---------- *)

let test_experiments_structured () =
  with_temp_file @@ fun path ->
  let oc = open_out path in
  let registry = Metrics.create () in
  let ctx =
    Run_ctx.make ~obs:(Obs.make ~metrics:registry ~events:(Events.ndjson oc) ()) ()
  in
  let out =
    match Experiments.run ~ctx "lemmas" with
    | Ok out -> out
    | Error m -> Alcotest.fail m
  in
  close_out oc;
  check_string "id" "lemmas" out.Experiments.id;
  check "has rows" true (out.Experiments.rows <> []);
  check "banner prelude" true
    (String.length out.Experiments.prelude > 4
     && String.sub out.Experiments.prelude 0 4 = "\n===");
  check "coda present" true (out.Experiments.coda <> "");
  List.iter
    (fun r ->
      let line = r.Experiments.line in
      check "row is one line" true
        (String.length line > 0 && line.[String.length line - 1] = '\n'))
    out.Experiments.rows;
  (* one experiment.row event per structured row *)
  let rows_emitted =
    List.filter
      (fun j -> as_str (obj_field j "event") = "experiment.row")
      (List.map parse_json (read_lines path))
  in
  check_int "row events" (List.length out.Experiments.rows) (List.length rows_emitted);
  List.iter
    (fun j -> check_string "tagged" "lemmas" (as_str (obj_field j "experiment")))
    rows_emitted;
  (* the run is timed under experiment.<id> *)
  check "span recorded" true
    (List.mem_assoc "span.experiment.lemmas.ns"
       (Metrics.snapshot registry).Metrics.histograms);
  check_int "unknown id is an error" 1
    (match Experiments.run "nope" with Ok _ -> 0 | Error _ -> 1)

(* ---------- runner ---------- *)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "metrics",
        [ t "counter basics" test_counter_basics;
          t "gauge last write" test_gauge_last_write;
          t "histogram stats" test_histogram_stats;
          t "snapshot sorted" test_snapshot_sorted;
          t "sharded counters merge exactly" test_sharded_counters;
          t "render json" test_render_json;
          t "render text" test_render_text;
        ] );
      ( "events",
        [ t "null sink" test_null_sink;
          t "ndjson schema" test_ndjson_schema;
          t "human sink" test_human_sink;
        ] );
      ( "spans",
        [ t "null handle" test_null_handle;
          t "span records" test_span_records;
          t "span exception safety" test_span_exception_safety;
        ] );
      ( "acceptance",
        [ t "counters: fault-free run" test_counters_fault_free_run;
          t "counters: lossy retransmitted solve" test_counters_lossy_solve;
          t "counters: node-major search" test_counters_node_major_search;
          t "obs identity: executor" test_executor_obs_identity;
          t "obs identity: las-vegas, jobs 1 and 4" test_las_vegas_obs_identity;
          t "ndjson golden solve" test_ndjson_golden_solve;
          t "null-handle overhead guard" test_null_overhead_guard;
        ] );
      ( "experiments",
        [ t "structured rows" test_experiments_structured ] );
    ]
