(* Tests for the view-interning subsystem (Interned), the sharing-aware
   View traversals, the canonical-encoding cache, and their agreement with
   naive structural references — including under the domain pool. *)

open Anonet_graph
open Anonet_views
module Pool = Anonet_parallel.Pool
module Knowledge = Anonet.Knowledge

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

(* ---------- naive structural references (the pre-interning algorithms) ---------- *)

(* The old View.of_graph: memoized on (node, depth), children sorted by
   structural compare.  Kept here as the reference the interned fast path
   must reproduce byte for byte. *)
let naive_of_graph g ~root ~depth =
  let memo = Hashtbl.create 64 in
  let rec build v d =
    match Hashtbl.find_opt memo (v, d) with
    | Some t -> t
    | None ->
      let t =
        if d = 1 then { View.mark = Graph.label g v; children = [] }
        else begin
          let children =
            Array.to_list (Array.map (fun u -> build u (d - 1)) (Graph.neighbors g v))
            |> List.sort View.compare
          in
          { View.mark = Graph.label g v; children }
        end
      in
      Hashtbl.add memo (v, d) t;
      t
  in
  build root depth

let rec naive_truncate (t : View.t) ~depth =
  if depth = 1 then { t with View.children = [] }
  else begin
    let children = List.map (fun c -> naive_truncate c ~depth:(depth - 1)) t.View.children in
    { t with View.children = List.sort View.compare children }
  end

(* The old Universal_cover.classes_at_depth: structural trees, sort_uniq,
   linear find per node. *)
let naive_uc_classes g d =
  let truncation ~root =
    let memo = Hashtbl.create 64 in
    let rec subtree v ~parent d =
      match Hashtbl.find_opt memo (v, parent, d) with
      | Some t -> t
      | None ->
        let t =
          if d = 1 then { View.mark = Graph.label g v; children = [] }
          else begin
            let children =
              Array.to_list (Graph.neighbors g v)
              |> List.filter (fun u -> u <> parent)
              |> List.map (fun u -> subtree u ~parent:v (d - 1))
              |> List.sort View.compare
            in
            { View.mark = Graph.label g v; children }
          end
        in
        Hashtbl.add memo (v, parent, d) t;
        t
    in
    if d = 1 then { View.mark = Graph.label g root; children = [] }
    else begin
      let children =
        Array.to_list (Graph.neighbors g root)
        |> List.map (fun u -> subtree u ~parent:root (d - 1))
        |> List.sort View.compare
      in
      { View.mark = Graph.label g root; children }
    end
  in
  let n = Graph.n g in
  let trees = Array.init n (fun v -> truncation ~root:v) in
  let distinct = List.sort_uniq View.compare (Array.to_list trees) in
  let index t =
    let rec find i = function
      | [] -> assert false
      | x :: rest -> if View.compare x t = 0 then i else find (i + 1) rest
    in
    find 0 distinct
  in
  Array.map index trees

let sign c = Stdlib.compare c 0

(* ---------- interning basics ---------- *)

let test_intern_identity () =
  let a = Interned.node (Label.Int 1) [ Interned.leaf (Label.Int 2) ] in
  let b = Interned.node (Label.Int 1) [ Interned.leaf (Label.Int 2) ] in
  check "same id" true (Interned.id a = Interned.id b);
  check "physically equal" true (a == b);
  check "equal" true (Interned.equal a b);
  check_int "compare 0" 0 (Interned.compare a b);
  let c1 = Interned.leaf (Label.Int 1) and c2 = Interned.leaf (Label.Int 2) in
  check "sorted children" true
    (Interned.equal (Interned.node Label.Unit [ c1; c2 ])
       (Interned.node Label.Unit [ c2; c1 ]))

let test_intern_size_depth () =
  let g = Gen.c6_figure1 () in
  let i = Interned.of_graph g ~root:0 ~depth:3 in
  check_int "size 1+2+4" 7 (Interned.size i);
  check_int "depth" 3 (Interned.depth i);
  check_int "leaf size" 1 (Interned.size (Interned.leaf Label.Unit));
  check_int "leaf depth" 1 (Interned.depth (Interned.leaf Label.Unit))

let test_intern_stats_move () =
  let before = Interned.stats () in
  (* A fresh structure (unique marks) must miss; re-interning it must hit. *)
  let mk () =
    Interned.node (Label.Str "stats-probe")
      [ Interned.leaf (Label.Int 123456); Interned.leaf (Label.Int 654321) ]
  in
  let a = mk () in
  let b = mk () in
  check "re-intern is the same node" true (a == b);
  let after = Interned.stats () in
  check "misses advanced" true (after.Interned.misses > before.Interned.misses);
  check "hits advanced" true (after.Interned.hits > before.Interned.hits);
  check "nodes grew" true (after.Interned.nodes > before.Interned.nodes)

let test_knowledge_shares_table () =
  (* Knowledge is the same interned representation: values built through
     either API are physically identical. *)
  let g = Gen.label_with_ints (Gen.petersen ()) in
  let k = Knowledge.view_of_graph g ~root:3 ~depth:5 in
  let i = Interned.of_graph g ~root:3 ~depth:5 in
  check_int "same id across APIs" (Knowledge.id k) (Interned.id i)

(* ---------- View fast path vs naive reference ---------- *)

let test_of_graph_matches_naive () =
  List.iter
    (fun g ->
      for d = 1 to 6 do
        let fast = View.of_graph g ~root:0 ~depth:d in
        let naive = naive_of_graph g ~root:0 ~depth:d in
        check "of_graph = naive (structural)" true (View.equal fast naive);
        check_string "of_graph = naive (bytes)" (View.to_string naive)
          (View.to_string fast)
      done)
    [ Gen.path 5; Gen.c6_figure1 (); Gen.label_with_ints (Gen.petersen ());
      Gen.grid 3 3; Gen.star 4 ]

let test_truncate_matches_naive () =
  let g = Gen.label_with_ints (Gen.petersen ()) in
  let v = View.of_graph g ~root:0 ~depth:7 in
  for d = 1 to 7 do
    check_string "truncate = naive truncate"
      (View.to_string (naive_truncate v ~depth:d))
      (View.to_string (View.truncate v ~depth:d))
  done

let test_size_k8_depth16_closed_form () =
  (* Satellite regression: before interning this walked the unfolded tree
     (~5.5e12 vertices) and never finished; now it is O(|DAG|). *)
  let k8 = Gen.label_with_ints (Gen.complete 8) in
  let v = View.of_graph k8 ~root:0 ~depth:16 in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  (* Every node of K8 has degree 7: size = 1 + 7 + ... + 7^15. *)
  check_int "closed form (7^16 - 1) / 6" ((pow 7 16 - 1) / 6) (View.size v);
  check_int "depth 16" 16 (View.depth v);
  check_int "interned size agrees" ((pow 7 16 - 1) / 6)
    (Interned.size (Interned.of_graph k8 ~root:0 ~depth:16))

(* ---------- Universal_cover on the existing families ---------- *)

let test_uc_classes_match_naive () =
  List.iter
    (fun g ->
      for d = 1 to 6 do
        let fast = Universal_cover.classes_at_depth g d in
        let naive = naive_uc_classes g d in
        check "UC classes = naive" true (fast = naive)
      done)
    [ Gen.path 5; Gen.c6_figure1 (); Gen.petersen (); Gen.grid 3 3;
      Gen.star 4; Gen.random_connected ~seed:8 8 0.3 ]

(* ---------- encoding cache ---------- *)

let test_encode_canonical () =
  let g = Gen.label_with_ints (Gen.petersen ()) in
  let direct = Encode.to_string g ~order:(Array.init (Graph.n g) (fun i -> i)) in
  check_string "canonical = to_string(identity)" direct (Encode.canonical g);
  let before = Encode.cache_stats () in
  check_string "canonical again" direct (Encode.canonical g);
  let after = Encode.cache_stats () in
  check "second call is a cache hit" true (after.Encode.hits > before.Encode.hits);
  (* A functional update gets a fresh id, hence a fresh cache entry. *)
  let g' = Graph.map_labels g (fun l -> l) in
  check "fresh id after update" false (Graph.id g = Graph.id g');
  check_string "updated graph encodes identically (same structure)" direct
    (Encode.canonical g')

(* ---------- domain-pool safety ---------- *)

let test_parallel_interning_matches_sequential () =
  let g = Gen.label_with_ints (Gen.petersen ()) in
  let n = Graph.n g in
  let roots = Array.init (4 * n) (fun i -> i mod n) in
  let seq = Array.map (fun v -> Interned.of_graph g ~root:v ~depth:8) roots in
  let seq_strings = Array.map (fun i -> View.to_string (View.of_interned i)) seq in
  Pool.with_pool ~domains:4 (fun p ->
      let par = Pool.map p (fun v -> Interned.of_graph g ~root:v ~depth:8) roots in
      Array.iteri
        (fun i t ->
          check "same id as sequential" true (Interned.id t = Interned.id seq.(i));
          check "physically equal across domains" true (t == seq.(i));
          check_string "byte-identical rendering" seq_strings.(i)
            (View.to_string (View.of_interned t)))
        par)

let test_parallel_uc_classes_match_sequential () =
  let graphs =
    [| Gen.path 5; Gen.c6_figure1 (); Gen.petersen (); Gen.grid 3 3;
       Gen.random_connected ~seed:21 9 0.3; Gen.star 4; Gen.cycle 7;
       Gen.label_with_ints (Gen.petersen ()) |]
  in
  let seq = Array.map (fun g -> Universal_cover.classes_at_depth g 6) graphs in
  Pool.with_pool ~domains:4 (fun p ->
      let par = Pool.map p (fun g -> Universal_cover.classes_at_depth g 6) graphs in
      Array.iteri (fun i c -> check "pool classes = sequential" true (c = seq.(i))) par)

(* ---------- qcheck properties ---------- *)

let arb_seeded =
  QCheck.make
    ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%f" s n p)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 2 10) (float_bound_inclusive 0.5))

let prop_interned_compare_agrees =
  QCheck.Test.make ~name:"Interned.compare = View.compare (sign)" ~count:80
    arb_seeded (fun (seed, n, p) ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed n p) in
      let d = 1 + (seed mod 5) in
      let u = seed mod Graph.n g and v = (seed / 7) mod Graph.n g in
      let iu = Interned.of_graph g ~root:u ~depth:d in
      let iv = Interned.of_graph g ~root:v ~depth:d in
      let nu = naive_of_graph g ~root:u ~depth:d in
      let nv = naive_of_graph g ~root:v ~depth:d in
      sign (Interned.compare iu iv) = sign (View.compare nu nv)
      && sign (Interned.compare iv iu) = sign (View.compare nv nu))

let prop_roundtrip_identity =
  QCheck.Test.make ~name:"View -> Interned -> View round-trip" ~count:80
    arb_seeded (fun (seed, n, p) ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed n p) in
      let d = 1 + (seed mod 6) in
      let t = naive_of_graph g ~root:(seed mod Graph.n g) ~depth:d in
      let t' = View.of_interned (View.intern t) in
      View.equal t t' && String.equal (View.to_string t) (View.to_string t'))

let prop_intern_of_graph_consistent =
  QCheck.Test.make ~name:"intern (naive of_graph) = Interned.of_graph" ~count:80
    arb_seeded (fun (seed, n, p) ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed n p) in
      let d = 1 + (seed mod 5) in
      let root = seed mod Graph.n g in
      Interned.equal
        (View.intern (naive_of_graph g ~root ~depth:d))
        (Interned.of_graph g ~root ~depth:d))

let prop_truncate_coherent =
  QCheck.Test.make ~name:"Interned.truncate = of_graph at lower depth" ~count:60
    arb_seeded (fun (seed, n, p) ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed n p) in
      let deep = Interned.of_graph g ~root:(seed mod Graph.n g) ~depth:7 in
      let d = 1 + (seed mod 7) in
      Interned.equal
        (Interned.truncate deep ~depth:d)
        (Interned.of_graph g ~root:(seed mod Graph.n g) ~depth:(min d 7)))

let prop_parallel_byte_identical =
  QCheck.Test.make ~name:"4-domain interning byte-identical to sequential" ~count:15
    arb_seeded (fun (seed, n, p) ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed n p) in
      let gn = Graph.n g in
      let roots = Array.init gn (fun v -> v) in
      let seq =
        Array.map
          (fun v -> View.to_string (View.of_interned (Interned.of_graph g ~root:v ~depth:6)))
          roots
      in
      Pool.with_pool ~domains:4 (fun pool ->
          let par =
            Pool.map pool
              (fun v -> View.to_string (View.of_interned (Interned.of_graph g ~root:v ~depth:6)))
              roots
          in
          Array.for_all2 String.equal seq par))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_interned_compare_agrees; prop_roundtrip_identity;
      prop_intern_of_graph_consistent; prop_truncate_coherent;
      prop_parallel_byte_identical ]

let () =
  Alcotest.run "anonet_interned"
    [
      ( "intern",
        [
          Alcotest.test_case "identity & canonicalization" `Quick test_intern_identity;
          Alcotest.test_case "memoized size/depth" `Quick test_intern_size_depth;
          Alcotest.test_case "stats counters" `Quick test_intern_stats_move;
          Alcotest.test_case "knowledge shares the table" `Quick
            test_knowledge_shares_table;
        ] );
      ( "view-fast-path",
        [
          Alcotest.test_case "of_graph = naive" `Quick test_of_graph_matches_naive;
          Alcotest.test_case "truncate = naive" `Quick test_truncate_matches_naive;
          Alcotest.test_case "K8 depth-16 size closed form" `Quick
            test_size_k8_depth16_closed_form;
        ] );
      ( "universal-cover",
        [ Alcotest.test_case "classes = naive on families" `Quick
            test_uc_classes_match_naive ] );
      ( "encode-cache",
        [ Alcotest.test_case "canonical = to_string, hits counted" `Quick
            test_encode_canonical ] );
      ( "pool",
        [
          Alcotest.test_case "4-domain interning = sequential" `Quick
            test_parallel_interning_matches_sequential;
          Alcotest.test_case "4-domain UC classes = sequential" `Quick
            test_parallel_uc_classes_match_sequential;
        ] );
      "properties", qcheck_tests;
    ]
