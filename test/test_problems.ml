(* Tests for the problems library: problem specs, validity checkers
   (positive and negative cases), colored variants, decision problems,
   and GRAN bundles. *)

open Anonet_graph
open Anonet_problems

let check = Alcotest.(check bool)

let labels_of_ints xs = Array.of_list (List.map (fun i -> Label.Int i) xs)

let labels_of_bools xs = Array.of_list (List.map (fun b -> Label.Bool b) xs)

(* ---------- coloring ---------- *)

let test_coloring_validity () =
  let g = Gen.cycle 4 in
  check "proper 2-coloring accepted" true
    (Catalog.coloring.Problem.is_valid_output g (labels_of_ints [ 0; 1; 0; 1 ]));
  check "monochromatic rejected" false
    (Catalog.coloring.Problem.is_valid_output g (labels_of_ints [ 0; 0; 0; 0 ]));
  check "one conflict rejected" false
    (Catalog.coloring.Problem.is_valid_output g (labels_of_ints [ 0; 1; 0; 0 ]));
  (* colors may be any labels *)
  check "string colors fine" true
    (Catalog.coloring.Problem.is_valid_output g
       [| Label.Str "a"; Label.Str "b"; Label.Str "a"; Label.Str "b" |])

let test_two_hop_validity () =
  let g = Gen.cycle 6 in
  check "1-hop-only coloring rejected" false
    (Catalog.two_hop_coloring.Problem.is_valid_output g
       (labels_of_ints [ 0; 1; 0; 1; 0; 1 ]));
  check "3 colors accepted" true
    (Catalog.two_hop_coloring.Problem.is_valid_output g
       (labels_of_ints [ 0; 1; 2; 0; 1; 2 ]))

let test_k_hop_validity () =
  let g = Gen.cycle 6 in
  let three = Catalog.k_hop_coloring 3 in
  check "3 colors fail 3-hop" false
    (three.Problem.is_valid_output g (labels_of_ints [ 0; 1; 2; 0; 1; 2 ]));
  check "all distinct pass 3-hop" true
    (three.Problem.is_valid_output g (labels_of_ints [ 0; 1; 2; 3; 4; 5 ]));
  (* 1-hop agrees with coloring *)
  let one = Catalog.k_hop_coloring 1 in
  check "1-hop = coloring" true
    (one.Problem.is_valid_output g (labels_of_ints [ 0; 1; 0; 1; 0; 1 ]));
  Alcotest.check_raises "k >= 1 enforced"
    (Invalid_argument "Catalog.k_hop_coloring: need k >= 1") (fun () ->
      ignore (Catalog.k_hop_coloring 0))

(* ---------- MIS ---------- *)

let test_mis_validity () =
  let g = Gen.path 4 in
  check "alternating accepted" true
    (Catalog.mis.Problem.is_valid_output g (labels_of_bools [ true; false; true; false ]));
  check "ends accepted" true
    (Catalog.mis.Problem.is_valid_output g (labels_of_bools [ true; false; false; true ]));
  check "adjacent members rejected" false
    (Catalog.mis.Problem.is_valid_output g (labels_of_bools [ true; true; false; false ]));
  check "non-maximal rejected" false
    (Catalog.mis.Problem.is_valid_output g (labels_of_bools [ true; false; false; false ]));
  check "wrong type rejected" false
    (Catalog.mis.Problem.is_valid_output g (labels_of_ints [ 1; 0; 1; 0 ]))

(* ---------- matching ---------- *)

let test_matching_validity () =
  let g = Gen.path 4 in
  (* nodes: 0-1-2-3; ports are sorted by neighbor index.
     match 0-1 and 2-3: node 0 port 0 -> 1; node 1 port 0 -> 0;
     node 2 port 1 -> 3; node 3 port 0 -> 2. *)
  let good = [| Label.Int 0; Label.Int 0; Label.Int 1; Label.Int 0 |] in
  check "perfect matching accepted" true
    (Catalog.maximal_matching.Problem.is_valid_output g good);
  (* middle edge matched, ends unmatched: maximal *)
  let middle = [| Label.Unit; Label.Int 1; Label.Int 0; Label.Unit |] in
  check "middle matching accepted" true
    (Catalog.maximal_matching.Problem.is_valid_output g middle);
  (* asymmetric claim rejected *)
  let asym = [| Label.Int 0; Label.Unit; Label.Int 1; Label.Int 0 |] in
  check "asymmetric rejected" false
    (Catalog.maximal_matching.Problem.is_valid_output g asym);
  (* empty matching not maximal *)
  let empty = Array.make 4 Label.Unit in
  check "empty rejected" false
    (Catalog.maximal_matching.Problem.is_valid_output g empty);
  (* out-of-range port rejected *)
  let bad = [| Label.Int 5; Label.Int 0; Label.Unit; Label.Unit |] in
  check "bad port rejected" false
    (Catalog.maximal_matching.Problem.is_valid_output g bad)

(* ---------- decision problems ---------- *)

let test_decision_validity () =
  let has_triangle g =
    List.exists
      (fun (u, v) ->
        List.exists
          (fun w -> w <> u && w <> v && Graph.has_edge g u w && Graph.has_edge g v w)
          (List.init (Graph.n g) Fun.id))
      (Graph.edges g)
  in
  let p = Catalog.decision ~name:"triangle" has_triangle in
  let k3 = Gen.complete 3 and c4 = Gen.cycle 4 in
  check "yes-instance: all true ok" true
    (p.Problem.is_valid_output k3 (labels_of_bools [ true; true; true ]));
  check "yes-instance: one false bad" false
    (p.Problem.is_valid_output k3 (labels_of_bools [ true; false; true ]));
  check "no-instance: one false ok" true
    (p.Problem.is_valid_output c4 (labels_of_bools [ true; false; true; true ]));
  check "no-instance: all true bad" false
    (p.Problem.is_valid_output c4 (labels_of_bools [ true; true; true; true ]))

(* ---------- colored variants ---------- *)

let test_colored_variant_membership () =
  let pc = Problem.colored_variant Catalog.mis in
  let g = Gen.cycle 6 in
  let good = Problem.attach_coloring g (labels_of_ints [ 0; 1; 2; 0; 1; 2 ]) in
  let bad = Problem.attach_coloring g (labels_of_ints [ 0; 1; 0; 1; 0; 1 ]) in
  check "valid coloring in" true (pc.Problem.is_instance good);
  check "1-hop-only coloring out" false (pc.Problem.is_instance bad);
  check "missing pair labels out" false (pc.Problem.is_instance g);
  (* validity delegates to the base problem on the stripped instance *)
  check "output validity delegated" true
    (pc.Problem.is_valid_output good
       (labels_of_bools [ true; false; false; true; false; false ]))

let test_strip_and_coloring_roundtrip () =
  let g = Graph.relabel (Gen.path 3) (fun v -> Label.Str (string_of_int v)) in
  let colors = labels_of_ints [ 5; 6; 7 ] in
  let inst = Problem.attach_coloring g colors in
  let stripped = Problem.strip_coloring inst in
  check "inputs preserved" true
    (Array.for_all2 Label.equal (Graph.labels g) (Graph.labels stripped));
  check "colors recovered" true
    (Array.for_all2 Label.equal colors (Problem.coloring_of inst))

(* ---------- GRAN bundles ---------- *)

let test_gran_decide () =
  let g = Gen.cycle 5 in
  List.iter
    (fun bundle ->
      match Gran.decide bundle g ~seed:3 with
      | Ok true -> ()
      | Ok false -> Alcotest.fail "decider rejected a valid instance"
      | Error m -> Alcotest.fail m)
    Anonet_algorithms.Bundles.all

let test_gran_check_solved () =
  let g = Gen.path 2 in
  check "good solution" true
    (Gran.check_solved Anonet_algorithms.Bundles.mis g
       (labels_of_bools [ true; false ]));
  check "bad solution" false
    (Gran.check_solved Anonet_algorithms.Bundles.mis g
       (labels_of_bools [ true; true ]))

(* ---------- qcheck ---------- *)

let arb_graph =
  QCheck.make
    ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%f" s n p)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 2 10) (float_bound_inclusive 0.5))

let prop_unique_labels_always_k_hop =
  QCheck.Test.make ~name:"unique labels satisfy every k-hop coloring" ~count:50
    arb_graph (fun (seed, n, p) ->
      let g = Gen.random_connected ~seed n p in
      let unique = Array.init n (fun v -> Label.Int v) in
      List.for_all
        (fun k -> (Catalog.k_hop_coloring k).Problem.is_valid_output g unique)
        [ 1; 2; 3 ])

let prop_colored_variant_iff =
  QCheck.Test.make ~name:"colored variant membership iff proper 2-hop" ~count:50
    arb_graph (fun (seed, n, p) ->
      let g = Gen.random_connected ~seed n p in
      let colors = Array.init n (fun v -> Label.Int (v mod max 1 (n - 1))) in
      let inst = Problem.attach_coloring g colors in
      let proper = Props.is_k_hop_coloring g 2 (fun v -> colors.(v)) in
      (Problem.colored_variant Catalog.mis).Problem.is_instance inst = proper)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_unique_labels_always_k_hop; prop_colored_variant_iff ]

let () =
  Alcotest.run "anonet_problems"
    [
      ( "catalog",
        [
          Alcotest.test_case "coloring" `Quick test_coloring_validity;
          Alcotest.test_case "2-hop coloring" `Quick test_two_hop_validity;
          Alcotest.test_case "k-hop coloring" `Quick test_k_hop_validity;
          Alcotest.test_case "mis" `Quick test_mis_validity;
          Alcotest.test_case "matching" `Quick test_matching_validity;
          Alcotest.test_case "decision" `Quick test_decision_validity;
        ] );
      ( "colored-variant",
        [
          Alcotest.test_case "membership" `Quick test_colored_variant_membership;
          Alcotest.test_case "strip/attach roundtrip" `Quick
            test_strip_and_coloring_roundtrip;
        ] );
      ( "gran",
        [
          Alcotest.test_case "deciders accept instances" `Quick test_gran_decide;
          Alcotest.test_case "check_solved" `Quick test_gran_check_solved;
        ] );
      "properties", qcheck_tests;
    ]
