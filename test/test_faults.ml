(* Tests for the fault-injection subsystem: the plan grammar, the seeded
   injector, crash semantics in the synchronous executor, the
   retransmission wrapper (including the headline property: correct 2-hop
   colorings under 20% message loss), and the exit-code mapping. *)

open Anonet_graph
open Anonet_runtime
module Catalog = Anonet_problems.Catalog
module Problem = Anonet_problems.Problem

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Echo: round 1 send own label; round 2 output the multiset received. *)
let gossip : Algorithm.t =
  (module struct
    type state = {
      degree : int;
      input : Label.t;
      round_no : int;
      out : Label.t option;
    }

    let name = "gossip"

    let init ~input ~degree = { degree; input; round_no = 0; out = None }

    let round s ~bit:_ ~inbox =
      let s = { s with round_no = s.round_no + 1 } in
      if s.round_no = 1 then s, Algorithm.broadcast ~degree:s.degree s.input
      else begin
        (* Set-once: outputs are irrevocable, and under crash-recovery a
           node can keep executing rounds after deciding. *)
        let s =
          if s.out <> None then s
          else
            let received =
              List.sort Label.compare
                (List.filter_map Fun.id (Array.to_list inbox))
            in
            { s with out = Some (Label.List received) }
        in
        s, Algorithm.silence ~degree:s.degree
      end

    let output s = s.out
  end)

(* Bit collector: outputs its first three random bits. *)
let bit_collector : Algorithm.t =
  (module struct
    type state = {
      degree : int;
      bits : Bits.t;
      out : Label.t option;
    }

    let name = "bit-collector"

    let init ~input:_ ~degree = { degree; bits = Bits.empty; out = None }

    let round s ~bit ~inbox:_ =
      let bits = Bits.append s.bits bit in
      let s = { s with bits } in
      let s =
        if Bits.length bits = 3 then { s with out = Some (Label.Bits bits) } else s
      in
      s, Algorithm.silence ~degree:s.degree

    let output s = s.out
  end)

let labeled_path3 () = Graph.relabel (Gen.path 3) (fun v -> Label.Int (10 * v))

(* ---------- plan grammar ---------- *)

let test_plan_grammar_roundtrip () =
  let plans =
    [ Faults.no_faults;
      Faults.with_loss 0.25 ~seed:7;
      {
        Faults.seed = 3;
        loss = 0.1;
        duplicate = 0.05;
        corrupt = 0.01;
        dead_links = [ 0, 1; 4, 2 ];
        crashes =
          [ { Faults.node = 2; from_round = 4; until_round = None };
            { Faults.node = 0; from_round = 1; until_round = Some 6 };
          ];
        budget = Some 12;
      };
    ]
  in
  List.iter
    (fun p ->
      let s = Faults.plan_to_string p in
      match Faults.plan_of_string s with
      | Error m -> Alcotest.failf "re-parse of %S failed: %s" s m
      | Ok p' -> check (Printf.sprintf "round-trip %S" s) true (p = p'))
    plans

let test_plan_grammar_parses () =
  match Faults.plan_of_string "loss=0.2,dup=0.05,seed=7,crash=3@5..9,droplink=0-1" with
  | Error m -> Alcotest.fail m
  | Ok p ->
    check "loss" true (p.Faults.loss = 0.2);
    check "dup" true (p.Faults.duplicate = 0.05);
    check_int "seed" 7 p.Faults.seed;
    check "crash" true
      (p.Faults.crashes
       = [ { Faults.node = 3; from_round = 5; until_round = Some 9 } ]);
    check "link" true (p.Faults.dead_links = [ 0, 1 ])

let test_plan_grammar_rejects () =
  List.iter
    (fun s ->
      match Faults.plan_of_string s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error _ -> ())
    [ "loss=2.0";           (* probability out of range *)
      "loss=x";             (* not a float *)
      "warp=0.1";           (* unknown key *)
      "crash=3";            (* missing @round *)
      "crash=3@0";          (* rounds are 1-based *)
      "crash=3@9..4";       (* recovery before crash *)
      "droplink=5";         (* missing endpoint *)
      "budget=-1";          (* negative budget *)
    ]

(* ---------- injector determinism and budget ---------- *)

let exercise f =
  (* A fixed sequence of sends, returning the decisions. *)
  let out = ref [] in
  for round = 1 to 20 do
    for src = 0 to 3 do
      let dst = (src + 1) mod 4 in
      out :=
        Faults.on_send_sync f ~src ~dst ~port:0 ~round (Label.Int (round + src))
        :: !out
    done
  done;
  List.rev !out

let test_injector_deterministic () =
  let plan =
    { (Faults.with_loss 0.3 ~seed:11) with Faults.duplicate = 0.2; corrupt = 0.1 }
  in
  let a = exercise (Faults.make plan) and b = exercise (Faults.make plan) in
  check "same plan, same fate" true (a = b);
  let c = exercise (Faults.make { plan with Faults.seed = 12 }) in
  check "different seed differs" true (a <> c)

let test_budget_zero_is_reliable () =
  let plan = { (Faults.with_loss 1.0 ~seed:1) with Faults.budget = Some 0 } in
  let f = Faults.make plan in
  check "all delivered" true
    (List.for_all Option.is_some (exercise f));
  check_int "nothing spent" 0 (Faults.spent f);
  check_int "no events" 0 (List.length (Faults.events f))

let test_budget_caps_spending () =
  let plan = { (Faults.with_loss 1.0 ~seed:1) with Faults.budget = Some 3 } in
  let f = Faults.make plan in
  let decisions = exercise f in
  check_int "exactly 3 drops" 3
    (List.length (List.filter Option.is_none decisions));
  check_int "spent = budget" 3 (Faults.spent f);
  (* the first three sends are dropped, everything after flows *)
  check "drops are the first sends" true
    (match decisions with
     | None :: None :: None :: rest -> List.for_all Option.is_some rest
     | _ -> false)

(* ---------- synchronous loss / duplication / links ---------- *)

let test_sync_loss_silently_nulls () =
  (* Under total loss the executor still runs: receivers just see empty
     inboxes, so gossip hears nothing at all. *)
  let g = labeled_path3 () in
  let ctx = Run_ctx.make ~faults:(Faults.with_loss 1.0 ~seed:5) () in
  match Executor.run ~ctx gossip g ~tape:Tape.zero ~max_rounds:5 with
  | Error e -> Alcotest.failf "should finish: %a" Executor.pp_failure e
  | Ok { outputs; messages; _ } ->
    check "everyone hears silence" true
      (Array.for_all (Label.equal (Label.List [])) outputs);
    check_int "no message ever delivered" 0 messages

let test_sync_dead_link () =
  let g = labeled_path3 () in
  let plan = { Faults.no_faults with Faults.dead_links = [ 1, 0 ] } in
  match
    Executor.run ~ctx:(Run_ctx.make ~faults:plan ()) gossip g ~tape:Tape.zero
      ~max_rounds:5
  with
  | Error e -> Alcotest.failf "should finish: %a" Executor.pp_failure e
  | Ok { outputs; _ } ->
    check "node 0 cut off" true (Label.equal outputs.(0) (Label.List []));
    check "node 1 hears only node 2" true
      (Label.equal outputs.(1) (Label.List [ Label.Int 20 ]));
    check "node 2 unaffected" true
      (Label.equal outputs.(2) (Label.List [ Label.Int 10 ]))

let test_sync_stale_duplicate_queued () =
  let plan = { (Faults.with_loss 0.0 ~seed:2) with Faults.duplicate = 1.0 } in
  let f = Faults.make plan in
  (match Faults.on_send_sync f ~src:0 ~dst:1 ~port:3 ~round:4 (Label.Int 9) with
   | None -> Alcotest.fail "duplication must still deliver the original"
   | Some m -> check "original payload intact" true (Label.equal m (Label.Int 9)));
  check "stale copy due two rounds after the send" true
    (Faults.stale_sync f ~dst:1 ~round:6 = [ 3, Label.Int 9 ]);
  check "drained only once" true (Faults.stale_sync f ~dst:1 ~round:6 = [])

let test_corrupt_label () =
  let rng = Prng.create 99 in
  List.iter
    (fun l ->
      for _ = 1 to 20 do
        let l' = Faults.corrupt_label rng l in
        check
          (Printf.sprintf "corruption of %s changes it" (Label.to_string l))
          false (Label.equal l l')
      done)
    [ Label.Int 5;
      Label.Bool true;
      Label.Bits (Bits.of_string "1011");
      Label.List [ Label.Int 1; Label.Int 2 ];
      Label.Pair (Label.Int 1, Label.Bool false);
      Label.List [];
    ];
  (* the outer constructor survives where it can *)
  let survives_int =
    match Faults.corrupt_label rng (Label.Int 7) with Label.Int _ -> true | _ -> false
  in
  check "Int stays Int" true survives_int

(* ---------- crashes ---------- *)

let test_crash_recovery_resumes_with_state () =
  (* Node 0 naps through rounds 1-3 and recovers at round 4: it then
     collects the tape bits of rounds 4-6 (state intact, rounds skipped),
     while node 1 collects rounds 1-3 undisturbed. *)
  let g = Gen.path 2 in
  let tape = Tape.fixed [| Bits.of_string "000111"; Bits.of_string "010101" |] in
  let plan =
    {
      Faults.no_faults with
      Faults.crashes = [ { Faults.node = 0; from_round = 1; until_round = Some 4 } ];
    }
  in
  match
    Executor.run ~ctx:(Run_ctx.make ~faults:plan ()) bit_collector g ~tape
      ~max_rounds:10
  with
  | Error e -> Alcotest.failf "should finish: %a" Executor.pp_failure e
  | Ok { outputs; rounds; _ } ->
    check "recovered node reads rounds 4-6" true
      (Label.equal outputs.(0) (Label.Bits (Bits.of_string "111")));
    check "healthy node reads rounds 1-3" true
      (Label.equal outputs.(1) (Label.Bits (Bits.of_string "010")));
    check_int "run extends to the late finisher" 6 rounds

let test_crash_stop_starves () =
  (* A crash-stopped node never outputs: the run exhausts its budget. *)
  let g = Gen.path 2 in
  let plan =
    {
      Faults.no_faults with
      Faults.crashes = [ { Faults.node = 1; from_round = 2; until_round = None } ];
    }
  in
  match
    Executor.run ~ctx:(Run_ctx.make ~faults:plan ()) bit_collector g
      ~tape:(Tape.random ~seed:1) ~max_rounds:8
  with
  | Error (Executor.Max_rounds_exceeded 8) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected the run to starve"

let test_all_nodes_crashed () =
  let g = Gen.path 2 in
  let plan =
    {
      Faults.no_faults with
      Faults.crashes =
        [ { Faults.node = 0; from_round = 1; until_round = None };
          { Faults.node = 1; from_round = 2; until_round = None };
        ];
    }
  in
  match
    Executor.run ~ctx:(Run_ctx.make ~faults:plan ()) bit_collector g
      ~tape:(Tape.random ~seed:1) ~max_rounds:50
  with
  | Error (Executor.All_nodes_crashed { round } as f) ->
    check "detected as soon as the last node is down" true (round <= 2);
    check_int "distinct exit code" 4 (Run_error.exit_code (Run_error.Sync f))
  | Ok _ | Error _ -> Alcotest.fail "expected All_nodes_crashed"

let test_crash_events_logged () =
  let g = Gen.path 2 in
  let plan =
    {
      Faults.no_faults with
      Faults.crashes = [ { Faults.node = 0; from_round = 1; until_round = Some 4 } ];
    }
  in
  match
    Trace.record ~ctx:(Run_ctx.make ~faults:plan ()) bit_collector g
      ~tape:(Tape.random ~seed:3) ~max_rounds:10
  with
  | Error (_, e) -> Alcotest.failf "should finish: %a" Executor.pp_failure e
  | Ok (t, _) ->
    let kinds = List.map (fun e -> e.Faults.kind) (Trace.fault_events t) in
    check "crash logged" true (List.mem (Faults.Crashed 0) kinds);
    check "recovery logged" true (List.mem (Faults.Recovered 0) kinds)

(* ---------- trace integration ---------- *)

let test_trace_shows_faults () =
  let g = Gen.cycle 5 in
  let algo = Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm in
  match
    Trace.record
      ~ctx:(Run_ctx.make ~faults:(Faults.with_loss 0.3 ~seed:4) ())
      algo g ~tape:(Tape.random ~seed:8) ~max_rounds:2000
  with
  | Error (_, e) -> Alcotest.failf "should finish: %a" Executor.pp_failure e
  | Ok (t, _) ->
    check "events captured" true (Trace.fault_events t <> []);
    let r = Trace.render t in
    let contains needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    check "render lists the events" true (contains "fault events" r);
    check "render shows drops" true (contains "drop" r)

let test_trace_detects_doom () =
  (* The trace recorder performs the same all-crashed check as the plain
     executor, so `solve --trace` exits with the same code. *)
  let g = Gen.path 2 in
  let plan =
    {
      Faults.no_faults with
      Faults.crashes =
        [ { Faults.node = 0; from_round = 1; until_round = None };
          { Faults.node = 1; from_round = 1; until_round = None };
        ];
    }
  in
  match
    Trace.record ~ctx:(Run_ctx.make ~faults:plan ()) bit_collector g
      ~tape:(Tape.random ~seed:1) ~max_rounds:50
  with
  | Error (_, (Executor.All_nodes_crashed _ as f)) ->
    check_int "exit code 4" 4 (Run_error.exit_code (Run_error.Sync f))
  | Ok _ | Error _ -> Alcotest.fail "expected All_nodes_crashed from the recorder"

(* ---------- retransmission wrapper ---------- *)

let test_retransmit_transparent_without_faults () =
  (* On a reliable network the wrapper is invisible: same outputs and the
     same round count as the unwrapped run, tape for tape. *)
  let cases =
    [ "2hop/c5", Anonet_algorithms.Rand_two_hop.algorithm, Gen.cycle 5,
      Tape.random ~seed:2;
      "mis/petersen", Anonet_algorithms.Rand_mis.algorithm, Gen.petersen (),
      Tape.random ~seed:3;
      "gossip/path4", gossip, Graph.relabel (Gen.path 4) (fun v -> Label.Int v),
      Tape.zero;
    ]
  in
  List.iter
    (fun (name, algo, g, tape) ->
      let plain =
        match Executor.run algo g ~tape ~max_rounds:3000 with
        | Ok o -> o
        | Error e -> Alcotest.failf "plain %s: %a" name Executor.pp_failure e
      in
      match Executor.run (Retransmit.wrap algo) g ~tape ~max_rounds:3000 with
      | Error e -> Alcotest.failf "wrapped %s: %a" name Executor.pp_failure e
      | Ok o ->
        check (name ^ ": same outputs") true
          (Array.for_all2 Label.equal plain.Executor.outputs o.Executor.outputs);
        check_int (name ^ ": same rounds") plain.Executor.rounds o.Executor.rounds)
    cases

(* The headline acceptance property: with the wrapper, randomized 2-hop
   coloring reaches a correct coloring on C6 and Petersen under 20% seeded
   message loss — 50 seeds each. *)
let test_retransmit_survives_loss () =
  let graphs = [ "cycle6", Gen.cycle 6; "petersen", Gen.petersen () ] in
  let algo = Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm in
  List.iter
    (fun (name, g) ->
      for seed = 1 to 50 do
        match
          Executor.run
            ~ctx:(Run_ctx.make ~faults:(Faults.with_loss 0.2 ~seed) ())
            algo g
            ~tape:(Tape.random ~seed:(Prng.hash2 seed 77))
            ~max_rounds:(64 * (Graph.n g + 4))
        with
        | Error e ->
          Alcotest.failf "%s seed %d: %a" name seed Executor.pp_failure e
        | Ok { outputs; _ } ->
          check
            (Printf.sprintf "%s seed %d: valid 2-hop coloring" name seed)
            true
            (Catalog.two_hop_coloring.Problem.is_valid_output g outputs)
      done)
    graphs

let test_retransmit_survives_duplication_and_corruption_free_loss () =
  (* Loss and duplication together: the dedup-by-round logic absorbs the
     extra copies. *)
  let g = Gen.cycle 6 in
  let algo = Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm in
  for seed = 1 to 10 do
    let plan = { (Faults.with_loss 0.2 ~seed) with Faults.duplicate = 0.3 } in
    match
      Executor.run
        ~ctx:(Run_ctx.make ~faults:plan ())
        algo g
        ~tape:(Tape.random ~seed:(Prng.hash2 seed 78))
        ~max_rounds:2000
    with
    | Error e -> Alcotest.failf "seed %d: %a" seed Executor.pp_failure e
    | Ok { outputs; _ } ->
      check
        (Printf.sprintf "seed %d: valid under loss+dup" seed)
        true
        (Catalog.two_hop_coloring.Problem.is_valid_output g outputs)
  done

(* Regression for the documented gap the checksummed wire closed: with
   corrupt > 0 the old wrapper took perturbed frames at face value (a
   flipped ack bit could discard window entries and stall the link); the
   checksum + plausibility window turns corruption into loss, which the
   every-round resend absorbs. *)
let test_retransmit_survives_corruption () =
  let g = Gen.cycle 6 in
  let algo = Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm in
  for seed = 1 to 10 do
    let plan = { (Faults.with_loss 0.1 ~seed) with Faults.corrupt = 0.3 } in
    match
      Executor.run
        ~ctx:(Run_ctx.make ~faults:plan ())
        algo g
        ~tape:(Tape.random ~seed:(Prng.hash2 seed 80))
        ~max_rounds:4000
    with
    | Error e -> Alcotest.failf "seed %d: %a" seed Executor.pp_failure e
    | Ok { outputs; _ } ->
      check
        (Printf.sprintf "seed %d: valid under 30%% corruption" seed)
        true
        (Catalog.two_hop_coloring.Problem.is_valid_output g outputs)
  done

(* budget=0 plans — faulty and adversarial alike — must be byte-identical
   to the reliable network on BOTH executors, not merely injector-level
   no-ops: the executors' control flow (stale-duplicate drains, tamper
   taps) must not perturb a run whose budget never lets a fault land. *)
let test_budget_zero_executors_identical () =
  let g = Gen.cycle 5 in
  let algo = Anonet_algorithms.Rand_two_hop.algorithm in
  let heavy =
    { (Faults.with_loss 0.5 ~seed:9) with Faults.duplicate = 0.3; corrupt = 0.3 }
  in
  let ctx =
    Run_ctx.make
      ~faults:{ heavy with Faults.budget = Some 0 }
      ~adversary:
        { (Adversary.eavesdropper 2 ~strength:1.0 ~seed:5) with
          Adversary.budget = Some 0 }
      ()
  in
  let tape = Tape.random ~seed:7 in
  (match
     ( Executor.run algo g ~tape ~max_rounds:2000,
       Executor.run ~ctx algo g ~tape ~max_rounds:2000 )
   with
  | Ok plain, Ok gated ->
    check "sync: identical outcome records" true (plain = gated)
  | (Error e, _ | _, Error e) ->
    Alcotest.failf "sync should finish: %a" Executor.pp_failure e);
  match
    ( Async.run algo g ~tape ~scheduler:Async.Fifo ~max_events:200_000,
      Async.run ~ctx algo g ~tape ~scheduler:Async.Fifo ~max_events:200_000 )
  with
  | Ok plain, Ok gated ->
    check "async: identical outcome records" true (plain = gated)
  | (Error e, _ | _, Error e) ->
    Alcotest.failf "async should finish: %a" Async.pp_failure e

(* Crash-recovery loses the outage's messages: state survives the nap,
   mail does not.  On a 2-path with node 0 napping through rounds 1-3,
   node 1's round-1 broadcast arrives while 0 is down (lost), and by the
   time 0 re-runs its own schedule node 1 has gone silent — BOTH end up
   gossiping the empty multiset, where the healthy run exchanges labels. *)
let test_crash_recovery_loses_outage_messages () =
  let g = Graph.relabel (Gen.path 2) (fun v -> Label.Int (10 * (v + 1))) in
  let healthy =
    match Executor.run gossip g ~tape:Tape.zero ~max_rounds:10 with
    | Ok { outputs; _ } -> outputs
    | Error e -> Alcotest.failf "healthy run: %a" Executor.pp_failure e
  in
  check "healthy nodes hear each other" true
    (Label.equal healthy.(0) (Label.List [ Label.Int 20 ])
    && Label.equal healthy.(1) (Label.List [ Label.Int 10 ]));
  let plan =
    {
      Faults.no_faults with
      Faults.crashes = [ { Faults.node = 0; from_round = 1; until_round = Some 4 } ];
    }
  in
  match
    Executor.run ~ctx:(Run_ctx.make ~faults:plan ()) gossip g ~tape:Tape.zero
      ~max_rounds:10
  with
  | Error e -> Alcotest.failf "should finish: %a" Executor.pp_failure e
  | Ok { outputs; _ } ->
    check "node 1 heard nothing (0 was down in round 1)" true
      (Label.equal outputs.(1) (Label.List []));
    check "node 0 heard nothing (1's broadcast died during the outage)" true
      (Label.equal outputs.(0) (Label.List []))

let test_alpha_synchronizer_breaks_under_loss () =
  (* The flip side, and the reason the wrapper exists: the α-synchronizer
     without retransmission does NOT terminate under the same 20% loss —
     one lost message starves its receiver forever. *)
  let g = Gen.cycle 6 in
  for seed = 1 to 5 do
    match
      Async.run
        ~ctx:(Run_ctx.make ~faults:(Faults.with_loss 0.2 ~seed) ())
        Anonet_algorithms.Rand_two_hop.algorithm g
        ~tape:(Tape.random ~seed:(Prng.hash2 seed 79))
        ~scheduler:Async.Fifo ~max_events:200_000
    with
    | Ok _ -> Alcotest.failf "seed %d: expected the synchronizer to deadlock" seed
    | Error (Async.Stalled _) | Error (Async.Event_limit_exceeded _) -> ()
    | Error e -> Alcotest.failf "seed %d: wrong failure %a" seed Async.pp_failure e
  done

let test_async_crash_stops_forever () =
  (* A crashed node stalls the synchronizer even at loss 0. *)
  let g = Gen.cycle 4 in
  let plan =
    {
      Faults.no_faults with
      Faults.crashes = [ { Faults.node = 2; from_round = 1; until_round = Some 3 } ];
    }
  in
  match
    Async.run
      ~ctx:(Run_ctx.make ~faults:plan ())
      Anonet_algorithms.Rand_two_hop.algorithm g
      ~tape:(Tape.random ~seed:5) ~scheduler:Async.Fifo ~max_events:100_000
  with
  | Error (Async.Stalled _) -> ()  (* recovery is ignored: crash-stop reading *)
  | Ok _ -> Alcotest.fail "expected a stall: async crashes never recover"
  | Error e -> Alcotest.failf "wrong failure: %a" Async.pp_failure e

(* ---------- Las-Vegas under faults ---------- *)

let test_las_vegas_with_faults () =
  let g = Gen.cycle 6 in
  let plan = Faults.with_loss 0.2 ~seed:21 in
  match
    Las_vegas.solve_msg ~ctx:(Run_ctx.make ~faults:plan ())
      (Retransmit.wrap Anonet_algorithms.Rand_two_hop.algorithm)
      g ~seed:5 ()
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
    check "valid under loss" true
      (Catalog.two_hop_coloring.Problem.is_valid_output g
         r.Las_vegas.outcome.Executor.outputs)

let test_las_vegas_rejects_total_crash () =
  let g = Gen.path 2 in
  let plan =
    {
      Faults.no_faults with
      Faults.crashes =
        [ { Faults.node = 0; from_round = 1; until_round = None };
          { Faults.node = 1; from_round = 1; until_round = None };
        ];
    }
  in
  match
    Las_vegas.solve_msg ~ctx:(Run_ctx.make ~faults:plan ())
      Anonet_algorithms.Rand_mis.algorithm g ~seed:1 ()
  with
  | Ok _ -> Alcotest.fail "expected immediate failure"
  | Error m ->
    let contains needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    check "mentions the crash" true (contains "crash" m)

(* ---------- exit codes ---------- *)

let test_exit_codes_distinct () =
  let sync_codes =
    List.map
      (fun f -> Run_error.exit_code (Run_error.Sync f))
      [ Executor.Max_rounds_exceeded 9;
        Executor.Tape_exhausted { round = 3 };
        Executor.All_nodes_crashed { round = 2 };
      ]
  in
  let async_codes =
    List.map
      (fun f -> Run_error.exit_code (Run_error.Async f))
      [ Async.Event_limit_exceeded 9;
        Async.Tape_exhausted { round = 3 };
        Async.Stalled { events = 5 };
      ]
  in
  Alcotest.(check (list int)) "sync mapping" [ 2; 3; 4 ] sync_codes;
  Alcotest.(check (list int)) "async mapping" [ 5; 3; 6 ] async_codes;
  List.iter
    (fun c -> check "non-zero" true (c <> 0))
    (sync_codes @ async_codes);
  (* distinct within each executor; Tape_exhausted deliberately shares its
     code across the two (same meaning) *)
  let distinct l = List.length (List.sort_uniq Int.compare l) = List.length l in
  check "sync distinct" true (distinct sync_codes);
  check "async distinct" true (distinct async_codes)

let test_run_error_consolidates () =
  (* The consolidated numbering pins the documented per-executor codes... *)
  List.iter
    (fun (f, code) ->
      check_int "sync code" code (Run_error.exit_code (Run_error.Sync f)))
    [ Executor.Max_rounds_exceeded 9, 2;
      Executor.Tape_exhausted { round = 3 }, 3;
      Executor.All_nodes_crashed { round = 2 }, 4;
    ];
  List.iter
    (fun (f, code) ->
      check_int "async code" code (Run_error.exit_code (Run_error.Async f)))
    [ Async.Event_limit_exceeded 9, 5;
      Async.Tape_exhausted { round = 3 }, 3;
      Async.Stalled { events = 5 }, 6;
    ];
  (* ...give the Las-Vegas harness's structured failures the documented
     codes (Network_dead shares 4 with All_nodes_crashed: both mean the
     fault plan leaves no node running)... *)
  List.iter
    (fun (reason, code) ->
      check_int "las-vegas code" code
        (Run_error.exit_code
           (Run_error.Las_vegas { Las_vegas.reason; message = "m" })))
    [ Las_vegas.No_success, 7;
      Las_vegas.Gave_up, 8;
      Las_vegas.Diverged, 9;
      Las_vegas.Network_dead, 4;
    ];
  (* ...give the wire layer's failures the 10..12 band... *)
  List.iter
    (fun (f, code) ->
      check_int "net code" code (Run_error.exit_code (Run_error.Net f)))
    [ Run_error.Protocol { message = "m" }, 10;
      Run_error.Rejected { message = "m" }, 11;
      Run_error.Connection { message = "m" }, 12;
    ];
  (* ...and round-trip: every representative maps to a code that
     [of_exit_code] resolves back to the same code.  [Run_error.all]
     covers every constructor of all four failure types, so this is
     exhaustive over the numbering. *)
  List.iter
    (fun e ->
      let c = Run_error.exit_code e in
      check "code in the reserved 2..12 band" true (c >= 2 && c <= 12);
      match Run_error.of_exit_code c with
      | None -> Alcotest.failf "code %d does not resolve" c
      | Some e' -> check_int "round-trips" c (Run_error.exit_code e'))
    Run_error.all;
  (* the pretty-printer delegates to the per-executor ones *)
  check "pp sync" true
    (Format.asprintf "%a" Run_error.pp
       (Run_error.Sync (Executor.Max_rounds_exceeded 9))
    = Format.asprintf "%a" Executor.pp_failure (Executor.Max_rounds_exceeded 9));
  check "unknown codes resolve to nothing" true
    (Run_error.of_exit_code 0 = None
    && Run_error.of_exit_code 1 = None
    && Run_error.of_exit_code 13 = None)

let () =
  Alcotest.run "anonet_faults"
    [
      ( "grammar",
        [
          Alcotest.test_case "round-trip" `Quick test_plan_grammar_roundtrip;
          Alcotest.test_case "parses the README example" `Quick test_plan_grammar_parses;
          Alcotest.test_case "rejects malformed specs" `Quick test_plan_grammar_rejects;
        ] );
      ( "injector",
        [
          Alcotest.test_case "seeded determinism" `Quick test_injector_deterministic;
          Alcotest.test_case "budget 0 = reliable" `Quick test_budget_zero_is_reliable;
          Alcotest.test_case "budget caps spending" `Quick test_budget_caps_spending;
          Alcotest.test_case "corrupt_label perturbs" `Quick test_corrupt_label;
        ] );
      ( "sync-faults",
        [
          Alcotest.test_case "total loss = silence" `Quick test_sync_loss_silently_nulls;
          Alcotest.test_case "dead link" `Quick test_sync_dead_link;
          Alcotest.test_case "stale duplicate queue" `Quick test_sync_stale_duplicate_queued;
          Alcotest.test_case "crash-recovery naps" `Quick test_crash_recovery_resumes_with_state;
          Alcotest.test_case "crash-recovery loses outage mail" `Quick
            test_crash_recovery_loses_outage_messages;
          Alcotest.test_case "budget 0 = reliable on both executors" `Quick
            test_budget_zero_executors_identical;
          Alcotest.test_case "crash-stop starves" `Quick test_crash_stop_starves;
          Alcotest.test_case "all nodes crashed" `Quick test_all_nodes_crashed;
          Alcotest.test_case "crash events logged" `Quick test_crash_events_logged;
          Alcotest.test_case "trace shows faults" `Quick test_trace_shows_faults;
          Alcotest.test_case "trace detects all-crashed" `Quick test_trace_detects_doom;
        ] );
      ( "retransmit",
        [
          Alcotest.test_case "transparent without faults" `Quick
            test_retransmit_transparent_without_faults;
          Alcotest.test_case "2-hop coloring survives 20% loss (50 seeds)" `Slow
            test_retransmit_survives_loss;
          Alcotest.test_case "survives loss + duplication" `Quick
            test_retransmit_survives_duplication_and_corruption_free_loss;
          Alcotest.test_case "survives 30% corruption (10 seeds)" `Quick
            test_retransmit_survives_corruption;
          Alcotest.test_case "α-synchronizer breaks without it" `Quick
            test_alpha_synchronizer_breaks_under_loss;
          Alcotest.test_case "async crashes are crash-stop" `Quick
            test_async_crash_stops_forever;
        ] );
      ( "las-vegas",
        [
          Alcotest.test_case "solves under loss" `Quick test_las_vegas_with_faults;
          Alcotest.test_case "total crash fails fast" `Quick
            test_las_vegas_rejects_total_crash;
        ] );
      ( "exit-codes",
        [
          Alcotest.test_case "distinct non-zero mapping" `Quick test_exit_codes_distinct;
          Alcotest.test_case "Run_error consolidation round-trips" `Quick
            test_run_error_consolidates;
        ] );
    ]
