(* Tests for the randomized anonymous algorithms and the deterministic
   given-a-2-hop-coloring algorithms. *)

open Anonet_graph
open Anonet_runtime
open Anonet_problems
open Anonet_algorithms

let check = Alcotest.(check bool)

let solve algo g seed =
  match Las_vegas.solve_msg algo g ~seed () with
  | Error m -> Alcotest.failf "las vegas failed: %s" m
  | Ok r -> r.Las_vegas.outcome.Executor.outputs

let test_families =
  [ "p1", Gen.path 1;
    "p2", Gen.path 2;
    "p5", Gen.path 5;
    "c3", Gen.cycle 3;
    "c6", Gen.cycle 6;
    "k4", Gen.complete 4;
    "star5", Gen.star 5;
    "petersen", Gen.petersen ();
    "grid33", Gen.grid 3 3;
    "bipartite", Gen.complete_bipartite 2 3;
    "rand1", Gen.random_connected ~seed:100 9 0.3;
    "rand2", Gen.random_connected ~seed:101 11 0.2;
  ]

let validity_test problem algo () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let o = solve algo g seed in
          check
            (Printf.sprintf "%s on %s (seed %d)" problem.Problem.name name seed)
            true
            (problem.Problem.is_valid_output g o))
        [ 1; 2; 3 ])
    test_families

(* ---------- 2-hop coloring specifics ---------- *)

let test_two_hop_on_symmetric_graph () =
  (* Symmetric graphs are the hard case: all nodes start identical. *)
  List.iter
    (fun seed ->
      let g = Gen.cycle 8 in
      let o = solve Rand_two_hop.algorithm g seed in
      check "valid 2-hop coloring of C8" true
        (Props.is_k_hop_coloring g 2 (fun v -> o.(v))))
    [ 1; 2; 3; 4; 5 ]

let test_two_hop_colors_are_bits () =
  let g = Gen.petersen () in
  let o = solve Rand_two_hop.algorithm g 7 in
  Array.iter
    (fun l -> match l with Label.Bits _ -> () | _ -> Alcotest.fail "expected Bits")
    o

(* ---------- MIS specifics ---------- *)

let test_mis_on_complete_graph () =
  (* On K_n the MIS is a single node. *)
  List.iter
    (fun seed ->
      let g = Gen.complete 5 in
      let o = solve Rand_mis.algorithm g seed in
      let members =
        Array.to_list o |> List.filter (Label.equal (Label.Bool true)) |> List.length
      in
      Alcotest.(check int) "single member" 1 members)
    [ 1; 2; 3 ]

let test_mis_on_star () =
  (* On a star, either the hub alone or all leaves. *)
  let g = Gen.star 6 in
  let o = solve Rand_mis.algorithm g 5 in
  let hub = Label.equal o.(0) (Label.Bool true) in
  let leaves = Array.sub o 1 6 in
  if hub then
    Array.iter (fun l -> check "leaves out" true (Label.equal l (Label.Bool false))) leaves
  else
    Array.iter (fun l -> check "leaves in" true (Label.equal l (Label.Bool true))) leaves

(* ---------- matching specifics ---------- *)

let test_matching_even_path () =
  (* P2: the unique maximal matching matches both nodes. *)
  let g = Gen.path 2 in
  let o = solve Rand_matching.algorithm g 3 in
  check "0 matched" true (Label.equal o.(0) (Label.Int 0));
  check "1 matched" true (Label.equal o.(1) (Label.Int 0))

let test_matching_single_node () =
  let g = Gen.path 1 in
  let o = solve Rand_matching.algorithm g 3 in
  check "unmatched" true (Label.equal o.(0) Label.Unit)

(* ---------- deterministic algorithms given a 2-hop coloring ---------- *)

let with_two_hop_coloring g seed =
  let colors = solve Rand_two_hop.algorithm g seed in
  Problem.attach_coloring g colors

let test_det_mis_valid () =
  List.iter
    (fun (name, g) ->
      let gc = with_two_hop_coloring g 11 in
      match Executor.run Det_from_two_hop.mis gc ~tape:Tape.zero
              ~max_rounds:(8 * (Graph.n g + 2)) with
      | Error e -> Alcotest.failf "det mis on %s: %a" name Executor.pp_failure e
      | Ok { outputs; _ } ->
        check (Printf.sprintf "det MIS valid on %s" name) true
          (Catalog.mis.Problem.is_valid_output g outputs))
    test_families

let test_det_coloring_valid () =
  List.iter
    (fun (name, g) ->
      let gc = with_two_hop_coloring g 13 in
      match Executor.run Det_from_two_hop.coloring gc ~tape:Tape.zero
              ~max_rounds:(8 * (Graph.n g + 2)) with
      | Error e -> Alcotest.failf "det coloring on %s: %a" name Executor.pp_failure e
      | Ok { outputs; _ } ->
        check (Printf.sprintf "det coloring valid on %s" name) true
          (Catalog.coloring.Problem.is_valid_output g outputs);
        (* at most Δ+1 integer colors *)
        Array.iter
          (fun l ->
            match l with
            | Label.Int k -> check "color small" true (k <= Graph.max_degree g)
            | _ -> Alcotest.fail "expected Int color")
          outputs)
    test_families

let test_det_matching_valid () =
  List.iter
    (fun (name, g) ->
      let gc = with_two_hop_coloring g 37 in
      match Executor.run Det_from_two_hop.matching gc ~tape:Tape.zero
              ~max_rounds:(24 * (Graph.n g + 2)) with
      | Error e -> Alcotest.failf "det matching on %s: %a" name Executor.pp_failure e
      | Ok { outputs; _ } ->
        check (Printf.sprintf "det matching valid on %s" name) true
          (Catalog.maximal_matching.Problem.is_valid_output g outputs))
    test_families

let test_det_matching_deterministic () =
  let g = Gen.grid 3 3 in
  let gc = with_two_hop_coloring g 41 in
  let run tape =
    match Executor.run Det_from_two_hop.matching gc ~tape ~max_rounds:500 with
    | Error _ -> Alcotest.fail "should finish"
    | Ok { outputs; _ } -> outputs
  in
  check "tape independent" true
    (Array.for_all2 Label.equal (run Tape.zero) (run (Tape.random ~seed:77)))

let test_two_hop_recoloring () =
  List.iter
    (fun (name, g) ->
      let gc = with_two_hop_coloring g 29 in
      match Executor.run Det_from_two_hop.two_hop_recoloring gc ~tape:Tape.zero
              ~max_rounds:(16 * (Graph.n g + 2)) with
      | Error e -> Alcotest.failf "recoloring on %s: %a" name Executor.pp_failure e
      | Ok { outputs; _ } ->
        check (Printf.sprintf "recoloring valid on %s" name) true
          (Catalog.two_hop_coloring.Problem.is_valid_output g outputs);
        (* palette bound: at most Δ² + 1 integer colors *)
        let dd = Graph.max_degree g * Graph.max_degree g in
        Array.iter
          (fun l ->
            match l with
            | Label.Int k ->
              check "palette bound" true (k >= 0 && k <= dd)
            | _ -> Alcotest.fail "expected Int color")
          outputs)
    test_families

let test_recoloring_pipeline () =
  (* End-to-end: random bitstring coloring reduced to a small palette —
     the practical decoupled 2-hop coloring pipeline. *)
  let g = Gen.petersen () in
  match
    Anonet.Decouple.solve ~gran:Bundles.two_hop_coloring g ~seed:31
      ~stage_two:(Anonet.Decouple.Specific Det_from_two_hop.two_hop_recoloring) ()
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
    check "pipeline output valid" true
      (Catalog.two_hop_coloring.Problem.is_valid_output g r.Anonet.Decouple.outputs);
    let distinct =
      Array.to_list r.Anonet.Decouple.outputs
      |> List.sort_uniq Label.compare |> List.length
    in
    check "palette is small" true (distinct <= 10)

let test_det_is_deterministic () =
  (* Same colored instance, different tapes: identical outputs. *)
  let g = Gen.petersen () in
  let gc = with_two_hop_coloring g 17 in
  let run tape =
    match Executor.run Det_from_two_hop.mis gc ~tape ~max_rounds:200 with
    | Error _ -> Alcotest.fail "should finish"
    | Ok { outputs; _ } -> outputs
  in
  let o1 = run Tape.zero in
  let o2 = run (Tape.random ~seed:99) in
  check "tape-independent" true (Array.for_all2 Label.equal o1 o2)

(* ---------- Monte-Carlo leader election (mock-anonymous case) ---------- *)

let with_size_labels g = Graph.relabel g (fun _ -> Label.Int (Graph.n g))

let test_monte_carlo_leader_whp () =
  (* With 32-bit identifiers ties are (practically) impossible. *)
  let algo = Monte_carlo_leader.make ~id_bits:32 in
  List.iter
    (fun (name, g) ->
      let gi = with_size_labels g in
      check (name ^ " instance") true (Monte_carlo_leader.problem.Problem.is_instance gi);
      List.iter
        (fun seed ->
          match Executor.run algo gi ~tape:(Tape.random ~seed)
                  ~max_rounds:(40 + Graph.n g) with
          | Error e -> Alcotest.failf "leader on %s: %a" name Executor.pp_failure e
          | Ok { outputs; _ } ->
            check
              (Printf.sprintf "unique leader on %s (seed %d)" name seed)
              true
              (Monte_carlo_leader.problem.Problem.is_valid_output gi outputs))
        [ 1; 2; 3 ])
    test_families

let test_monte_carlo_failure_mode () =
  (* With 1-bit identifiers on 5 nodes, the pigeonhole guarantees ties:
     either several nodes drew the maximum (several leaders) — the
     Monte-Carlo failure — or, if all drew equal bits, everyone leads. *)
  let g = with_size_labels (Gen.cycle 5) in
  let algo = Monte_carlo_leader.make ~id_bits:1 in
  let failures = ref 0 in
  for seed = 1 to 10 do
    match Executor.run algo g ~tape:(Tape.random ~seed) ~max_rounds:50 with
    | Error _ -> Alcotest.fail "must terminate (Monte Carlo always halts)"
    | Ok { outputs; _ } ->
      let leaders =
        Array.to_list outputs |> List.filter (Label.equal (Label.Bool true))
        |> List.length
      in
      check "at least one claimant" true (leaders >= 1);
      if leaders > 1 then incr failures
  done;
  check "ties happen (Monte Carlo, not Las Vegas)" true (!failures > 0)

let test_monte_carlo_rejects_wrong_size () =
  (* The instance predicate is what keeps this problem out of GRAN: a
     lifted instance carries the wrong size label and is excluded. *)
  let c3 = Graph.relabel (Gen.cycle 3) (fun _ -> Label.Int 3) in
  let lifted = Lift.cyclic c3 ~k:2 ~shift:(fun (u, v) ->
      if (u = 0 && v = 2) || (u = 2 && v = 0) then 1 else 0) in
  check "base is an instance" true
    (Monte_carlo_leader.problem.Problem.is_instance c3);
  check "lift is NOT an instance" false
    (Monte_carlo_leader.problem.Problem.is_instance lifted.Lift.graph)

(* ---------- deciders ---------- *)

let test_decider_two_hop_variant_yes () =
  let g = Gen.petersen () in
  let gc = with_two_hop_coloring g 19 in
  match Executor.run Deciders.two_hop_colored_variant gc ~tape:Tape.zero ~max_rounds:10 with
  | Error _ -> Alcotest.fail "should finish"
  | Ok { outputs; _ } ->
    check "all yes" true (Array.for_all (Label.equal (Label.Bool true)) outputs)

let test_decider_two_hop_variant_no () =
  (* A 1-hop-proper but not 2-hop-proper coloring must be rejected. *)
  let g = Gen.cycle 6 in
  let colors = Array.init 6 (fun v -> Label.Int (v mod 2)) in
  let gc = Problem.attach_coloring g colors in
  match Executor.run Deciders.two_hop_colored_variant gc ~tape:Tape.zero ~max_rounds:10 with
  | Error _ -> Alcotest.fail "should finish"
  | Ok { outputs; _ } ->
    check "some no" true (Array.exists (Label.equal (Label.Bool false)) outputs)

let test_decider_malformed_labels () =
  let g = Gen.cycle 3 in
  (* labels are not pairs *)
  match Executor.run Deciders.two_hop_colored_variant g ~tape:Tape.zero ~max_rounds:10 with
  | Error _ -> Alcotest.fail "should finish"
  | Ok { outputs; _ } ->
    check "rejected" true (Array.exists (Label.equal (Label.Bool false)) outputs)

(* ---------- hard symmetric instances ---------- *)

let test_vertex_transitive_hard_cases () =
  (* Vertex-transitive and mirror-symmetric graphs are the adversarial
     inputs for anonymous computation: every node starts with an identical
     view, so only the random bits break symmetry. *)
  let hard =
    [ "circulant-8(1,3)", Gen.circulant 8 [ 1; 3 ];
      "circulant-9(1,2)", Gen.circulant 9 [ 1; 2 ];
      "torus-3x3", Gen.torus 3 3;
      "barbell-4", Gen.barbell 4;
      "hypercube-3", Gen.hypercube 3;
      "complete-bipartite-3x3", Gen.complete_bipartite 3 3;
    ]
  in
  List.iter
    (fun (name, g) ->
      (* all nodes genuinely look alike *)
      List.iter
        (fun seed ->
          let o2 = solve Rand_two_hop.algorithm g seed in
          check (Printf.sprintf "2-hop on %s" name) true
            (Catalog.two_hop_coloring.Problem.is_valid_output g o2);
          let om = solve Rand_mis.algorithm g seed in
          check (Printf.sprintf "mis on %s" name) true
            (Catalog.mis.Problem.is_valid_output g om);
          let ox = solve Rand_matching.algorithm g seed in
          check (Printf.sprintf "matching on %s" name) true
            (Catalog.maximal_matching.Problem.is_valid_output g ox))
        [ 1; 2 ])
    hard;
  (* and the full decoupling survives them too *)
  List.iter
    (fun (name, g) ->
      match
        Anonet.Decouple.solve ~gran:Bundles.mis g ~seed:9
          ~stage_two:(Anonet.Decouple.Specific Det_from_two_hop.mis) ()
      with
      | Error m -> Alcotest.failf "decouple on %s: %s" name m
      | Ok r ->
        check (Printf.sprintf "decoupled mis on %s" name) true
          (Catalog.mis.Problem.is_valid_output g r.Anonet.Decouple.outputs))
    hard

(* ---------- round complexity sanity ---------- *)

let test_round_counts_reasonable () =
  let g = Gen.cycle 6 in
  match Las_vegas.solve_msg Rand_two_hop.algorithm g ~seed:2 () with
  | Error m -> Alcotest.fail m
  | Ok r ->
    check "rounds bounded" true (r.Las_vegas.outcome.Executor.rounds <= 200)

(* ---------- qcheck: validity on random graphs ---------- *)

let arb_instance =
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%f" seed n p)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 1 12) (float_bound_inclusive 0.4))

let prop_valid bundle =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s solver valid on random graphs" bundle.Gran.problem.Problem.name)
    ~count:60 arb_instance
    (fun (seed, n, p) ->
      let g = Gen.random_connected ~seed n p in
      let o = solve bundle.Gran.solver g (seed + 1) in
      bundle.Gran.problem.Problem.is_valid_output g o)

let qcheck_tests = List.map (fun b -> QCheck_alcotest.to_alcotest (prop_valid b)) Bundles.all

let () =
  Alcotest.run "anonet_algorithms"
    [
      ( "validity",
        [
          Alcotest.test_case "rand 2-hop coloring" `Quick
            (validity_test Catalog.two_hop_coloring Rand_two_hop.algorithm);
          Alcotest.test_case "rand coloring" `Quick
            (validity_test Catalog.coloring Rand_coloring.algorithm);
          Alcotest.test_case "rand mis" `Quick
            (validity_test Catalog.mis Rand_mis.algorithm);
          Alcotest.test_case "rand matching" `Quick
            (validity_test Catalog.maximal_matching Rand_matching.algorithm);
        ] );
      ( "two-hop",
        [
          Alcotest.test_case "symmetric graphs" `Quick test_two_hop_on_symmetric_graph;
          Alcotest.test_case "outputs are bitstrings" `Quick test_two_hop_colors_are_bits;
        ] );
      ( "mis",
        [
          Alcotest.test_case "complete graph" `Quick test_mis_on_complete_graph;
          Alcotest.test_case "star" `Quick test_mis_on_star;
        ] );
      ( "matching",
        [
          Alcotest.test_case "P2" `Quick test_matching_even_path;
          Alcotest.test_case "single node" `Quick test_matching_single_node;
        ] );
      ( "deterministic-from-coloring",
        [
          Alcotest.test_case "MIS valid" `Quick test_det_mis_valid;
          Alcotest.test_case "coloring valid" `Quick test_det_coloring_valid;
          Alcotest.test_case "matching valid" `Quick test_det_matching_valid;
          Alcotest.test_case "matching deterministic" `Quick
            test_det_matching_deterministic;
          Alcotest.test_case "2-hop recoloring valid + small palette" `Quick
            test_two_hop_recoloring;
          Alcotest.test_case "recoloring pipeline end-to-end" `Quick
            test_recoloring_pipeline;
          Alcotest.test_case "tape independent" `Quick test_det_is_deterministic;
        ] );
      ( "monte-carlo-leader",
        [
          Alcotest.test_case "unique leader w.h.p." `Quick test_monte_carlo_leader_whp;
          Alcotest.test_case "failure mode with tiny ids" `Quick
            test_monte_carlo_failure_mode;
          Alcotest.test_case "lifted instances excluded" `Quick
            test_monte_carlo_rejects_wrong_size;
        ] );
      ( "deciders",
        [
          Alcotest.test_case "accepts valid Π^c" `Quick test_decider_two_hop_variant_yes;
          Alcotest.test_case "rejects bad coloring" `Quick test_decider_two_hop_variant_no;
          Alcotest.test_case "rejects malformed labels" `Quick test_decider_malformed_labels;
        ] );
      ( "hard-instances",
        [
          Alcotest.test_case "vertex-transitive & mirror-symmetric" `Quick
            test_vertex_transitive_hard_cases;
        ] );
      "complexity", [ Alcotest.test_case "round counts" `Quick test_round_counts_reasonable ];
      "properties", qcheck_tests;
    ]
