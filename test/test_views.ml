(* Tests for the view machinery: View, Refinement, View_graph, Factor,
   Prime, Norris — the constructions of Sections 2 and 3. *)

open Anonet_graph
open Anonet_views

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* ---------- View (Figure 1) ---------- *)

let test_view_figure1 () =
  (* Figure 1: the depth-3 local view of u0 in the labeled C6 is a root
     marked 1 with two children marked 2 and 3, each with two
     grandchildren. *)
  let c6 = Gen.c6_figure1 () in
  let v = View.of_graph c6 ~root:0 ~depth:3 in
  check "root mark" true (Label.equal v.View.mark (Label.Int 1));
  check_int "two children" 2 (List.length v.View.children);
  let marks = List.map (fun c -> c.View.mark) v.View.children in
  check "children marks 2 and 3" true
    (List.exists (Label.equal (Label.Int 2)) marks
     && List.exists (Label.equal (Label.Int 3)) marks);
  check_int "depth" 3 (View.depth v);
  check_int "size 1+2+4" 7 (View.size v)

let test_view_depth1 () =
  let c6 = Gen.c6_figure1 () in
  let v = View.of_graph c6 ~root:2 ~depth:1 in
  check "leaf" true (v.View.children = []);
  check "mark" true (Label.equal v.View.mark (Label.Int 3))

let test_view_symmetric_nodes_equal () =
  (* In Figure 1's C6, nodes u0 and u3 have the same color and the same
     view at every depth. *)
  let c6 = Gen.c6_figure1 () in
  for d = 1 to 8 do
    check "u0 = u3" true
      (View.equal (View.of_graph c6 ~root:0 ~depth:d) (View.of_graph c6 ~root:3 ~depth:d));
    check "u0 <> u1" false
      (View.equal (View.of_graph c6 ~root:0 ~depth:d) (View.of_graph c6 ~root:1 ~depth:d))
  done

let test_view_truncate () =
  let c6 = Gen.c6_figure1 () in
  let v5 = View.of_graph c6 ~root:0 ~depth:5 in
  let v3 = View.of_graph c6 ~root:0 ~depth:3 in
  check "truncate 5 to 3" true (View.equal (View.truncate v5 ~depth:3) v3)

let test_view_equal_nodes_cross_graph () =
  (* A node of C6 and its image in C3 under the Figure-2 factor have equal
     views at all depths (Fact 1). *)
  let l = Lift.c6_over_c3 () in
  let c6 = l.Lift.graph and c3 = l.Lift.base in
  Graph.iter_nodes c6 ~f:(fun v ->
      check "view equals image view" true
        (View.equal_nodes (c6, v) (c3, l.Lift.map.(v)) ~depth:12));
  (* and distinctly-colored nodes differ *)
  check "distinct colors differ" false (View.equal_nodes (c6, 0) (c3, 1) ~depth:3)

let test_view_explicit_vs_refinement () =
  (* Cross-check: explicit tree equality matches refinement-based equality
     on a random graph at several depths. *)
  let g = Gen.random_connected ~seed:11 8 0.3 in
  for d = 1 to 6 do
    Graph.iter_nodes g ~f:(fun u ->
        Graph.iter_nodes g ~f:(fun v ->
            let tree_eq =
              View.equal (View.of_graph g ~root:u ~depth:d)
                (View.of_graph g ~root:v ~depth:d)
            in
            let ref_eq = View.equal_nodes (g, u) (g, v) ~depth:d in
            check "tree equality = refinement equality" tree_eq ref_eq))
  done

let test_view_to_string () =
  let c6 = Gen.c6_figure1 () in
  let s = View.to_string (View.of_graph c6 ~root:0 ~depth:2) in
  check "renders root" true (String.length s > 0 && s.[0] = '1')

(* ---------- Refinement ---------- *)

let test_refinement_c6_colored () =
  (* Figure 1's C6 collapses to 3 classes (one per color). *)
  let r = Refinement.run (Gen.c6_figure1 ()) in
  check_int "3 classes" 3 r.Refinement.num_classes;
  (* nodes 0 and 3 same class, 0 and 1 different *)
  check "0 ~ 3" true (r.Refinement.classes.(0) = r.Refinement.classes.(3));
  check "0 !~ 1" false (r.Refinement.classes.(0) = r.Refinement.classes.(1))

let test_refinement_unlabeled_cycle () =
  (* All nodes of an unlabeled cycle look alike. *)
  let r = Refinement.run (Gen.cycle 7) in
  check_int "1 class" 1 r.Refinement.num_classes;
  check_int "stable immediately" 1 r.Refinement.stable_view_depth

let test_refinement_path () =
  (* On a path, views distinguish nodes by distance to the ends; P5 has 3
     classes: {0,4}, {1,3}, {2}. *)
  let r = Refinement.run (Gen.path 5) in
  check_int "3 classes" 3 r.Refinement.num_classes;
  check "ends equal" true (r.Refinement.classes.(0) = r.Refinement.classes.(4));
  check "middle distinct" false (r.Refinement.classes.(0) = r.Refinement.classes.(2))

let test_refinement_classes_at_depth () =
  let g = Gen.path 5 in
  (* depth 1: partition by label+nothing = all same label... the initial
     partition is by label only; P5 unlabeled => 1 class *)
  let c1 = Refinement.classes_at_depth g 1 in
  check_int "depth 1 one class" 1 (1 + Array.fold_left max (-1) c1);
  (* depth 2 = label + neighbor multiset: separates by degree *)
  let c2 = Refinement.classes_at_depth g 2 in
  check "depth 2 separates ends" false (c2.(0) = c2.(2))

let test_refinement_matches_views () =
  (* Partition at depth d = equality of depth-d views (random graphs). *)
  let g = Gen.random_connected ~seed:3 7 0.4 in
  for d = 1 to 5 do
    let classes = Refinement.classes_at_depth g d in
    Graph.iter_nodes g ~f:(fun u ->
        Graph.iter_nodes g ~f:(fun v ->
            let tree_eq =
              View.equal (View.of_graph g ~root:u ~depth:d)
                (View.of_graph g ~root:v ~depth:d)
            in
            check "class eq = view eq" tree_eq (classes.(u) = classes.(v))))
  done

(* ---------- View_graph ---------- *)

let test_view_graph_c6 () =
  (* Figure 2: the view graph of the colored C6 is the colored C3. *)
  let vg = View_graph.of_graph_exn (Gen.c6_figure1 ()) in
  check_int "3 nodes" 3 (Graph.n vg.View_graph.graph);
  check_int "3 edges" 3 (Graph.num_edges vg.View_graph.graph);
  check "factor map valid" true
    (Factor.is_factorizing ~product:(Gen.c6_figure1 ()) ~factor:vg.View_graph.graph
       ~map:vg.View_graph.map)

let test_view_graph_of_prime_is_identity () =
  (* A graph with all labels distinct is prime: its view graph is itself. *)
  let g = Gen.label_with_ints (Gen.petersen ()) in
  let vg = View_graph.of_graph_exn g in
  check_int "same size" (Graph.n g) (Graph.n vg.View_graph.graph);
  check "isomorphic to itself" true (Iso.equal g vg.View_graph.graph)

let test_view_graph_rejects_uncolored () =
  (* The unlabeled C4 collapses to one class with a loop: rejected. *)
  match View_graph.of_graph (Gen.cycle 4) with
  | Ok _ -> Alcotest.fail "expected Error for unlabeled C4"
  | Error _ -> ()

let test_view_graph_idempotent () =
  (* The view graph of a view graph is itself (it is prime). *)
  let vg = View_graph.of_graph_exn (Gen.c6_figure1 ()) in
  let vg2 = View_graph.of_graph_exn vg.View_graph.graph in
  check "idempotent" true (Iso.equal vg.View_graph.graph vg2.View_graph.graph)

let test_view_graph_of_lift () =
  (* Lemma 3: a lift of a 2-hop colored graph has the same view graph as
     the base (the unique prime factor). *)
  let base = Gen.label_with_ints (Gen.cycle 5) in
  let lift = Lift.random ~seed:5 base ~k:3 in
  let vg_base = View_graph.of_graph_exn base in
  let vg_lift = View_graph.of_graph_exn lift.Lift.graph in
  check "same prime factor" true
    (Iso.equal vg_base.View_graph.graph vg_lift.View_graph.graph)

(* ---------- Factor ---------- *)

let test_factor_figure2_maps () =
  (* Figure 2's explicit factorizing maps: C12 -> C6 (mod 6) and
     C6 -> C3 (mod 3) on consistently labeled cycles. *)
  let label_mod3 g = Graph.relabel g (fun v -> Label.Int ((v mod 3) + 1)) in
  let c12 = label_mod3 (Gen.cycle 12)
  and c6 = label_mod3 (Gen.cycle 6)
  and c3 = label_mod3 (Gen.cycle 3) in
  let f = Array.init 12 (fun v -> v mod 6) in
  let gmap = Array.init 6 (fun v -> v mod 3) in
  check "C6 factor of C12" true (Factor.is_factorizing ~product:c12 ~factor:c6 ~map:f);
  check "C3 factor of C6" true (Factor.is_factorizing ~product:c6 ~factor:c3 ~map:gmap);
  Alcotest.(check (option int)) "multiplicity 2" (Some 2)
    (Factor.multiplicity ~product:c12 ~factor:c6);
  (* composed map: C3 is a factor of C12 *)
  let composed = Array.init 12 (fun v -> gmap.(f.(v))) in
  check "composition" true (Factor.is_factorizing ~product:c12 ~factor:c3 ~map:composed)

let test_factor_rejections () =
  let c6 = Gen.cycle 6 and c3 = Gen.cycle 3 in
  (* wrong map: constant map is not a local isomorphism *)
  check "constant map rejected" false
    (Factor.is_factorizing ~product:c6 ~factor:c3 ~map:(Array.make 6 0));
  (* non-surjective map detected *)
  let c6' = Graph.relabel c6 (fun _ -> Label.Unit) in
  let p2 = Graph.unlabeled ~n:2 ~edges:[ 0, 1 ] in
  check "cycle onto edge not local iso" false
    (Factor.is_factorizing ~product:c6' ~factor:p2 ~map:(Array.init 6 (fun v -> v mod 2)));
  (* label mismatch *)
  let c3_labeled = Gen.label_with_ints c3 in
  check "labels must match" false
    (Factor.is_factorizing ~product:c6 ~factor:c3_labeled
       ~map:(Array.init 6 (fun v -> v mod 3)))

let test_factor_induced_ports () =
  let l = Lift.random ~seed:9 (Gen.label_with_ints (Gen.cycle 5)) ~k:2 in
  let perms =
    Factor.induced_port_permutations ~product:l.Lift.graph ~factor:l.Lift.base
      ~map:l.Lift.map
  in
  (* After permuting, port j of v leads to a node mapping to the factor
     neighbor at port j of f(v). *)
  let g' = Graph.permute_ports l.Lift.graph perms in
  Graph.iter_nodes g' ~f:(fun v ->
      Array.iteri
        (fun j u ->
          check_int "aligned ports"
            (Graph.neighbor l.Lift.base l.Lift.map.(v) j)
            l.Lift.map.(u))
        (Graph.neighbors g' v))

(* ---------- Prime ---------- *)

let test_prime_detection () =
  check "C3 colored is prime" true (Prime.is_prime (Gen.label_with_ints (Gen.cycle 3)));
  check "C6 figure1 is not prime" false (Prime.is_prime (Gen.c6_figure1 ()));
  check "uniquely labeled petersen prime" true
    (Prime.is_prime (Gen.label_with_ints (Gen.petersen ())))

let test_prime_requires_coloring () =
  Alcotest.check_raises "uncolored rejected"
    (Invalid_argument "Prime.prime_factor: graph is not 2-hop colored")
    (fun () -> ignore (Prime.prime_factor (Gen.cycle 6)))

let test_prime_aliases () =
  (* Corollary 1: in a prime 2-hop colored graph, depth-n views are
     pairwise distinct. *)
  check "aliases faithful" true
    (Prime.aliases_faithful (Gen.label_with_ints (Gen.petersen ())))

(* ---------- Norris (Theorem 3) ---------- *)

let test_norris_bound_families () =
  let families =
    [ "c6-figure1", Gen.c6_figure1 ();
      "path7", Gen.path 7;
      "petersen", Gen.petersen ();
      "grid", Gen.grid 3 3;
      "star", Gen.star 5;
      "colored-c12", Graph.relabel (Gen.cycle 12) (fun v -> Label.Int ((v mod 3) + 1));
    ]
  in
  List.iter
    (fun (name, g) -> check (name ^ " norris bound") true (Norris.bound_holds g))
    families

let test_norris_exact_path () =
  (* On P5 the partition stabilizes at view depth 3 ({ends},{next},{mid}). *)
  check_int "P5 stable depth" 3 (Norris.stable_view_depth (Gen.path 5))

(* ---------- Fibrations (Section 4) ---------- *)

let test_directed_representation () =
  let g = Gen.c6_figure1 () in
  let h = Fibration.directed_representation g in
  check_int "two arcs per edge" (2 * Graph.num_edges g) (Digraph.num_arcs h);
  check "symmetric with swap involution" true
    (Digraph.is_symmetric h ~mate:Fibration.swap_mate);
  check "deterministic coloring" true (Digraph.is_deterministic h);
  (* arcs carry the endpoint colors *)
  check "arc color" true
    (Digraph.has_arc h 0 1 (Label.Pair (Label.Int 1, Label.Int 2)))

let test_directed_representation_needs_coloring () =
  Alcotest.check_raises "uncolored rejected"
    (Invalid_argument "Fibration.directed_representation: graph is not 2-hop colored")
    (fun () -> ignore (Fibration.directed_representation (Gen.cycle 6)))

let test_fibration_correspondence_positive () =
  (* Figure 2 maps: factorizing map <=> fibration of the representations. *)
  let label_mod3 g = Graph.relabel g (fun v -> Label.Int ((v mod 3) + 1)) in
  let c12 = label_mod3 (Gen.cycle 12) and c6 = label_mod3 (Gen.cycle 6) in
  let map = Array.init 12 (fun v -> v mod 6) in
  let factorizing, fibration =
    Fibration.check_correspondence ~product:c12 ~factor:c6 ~map
  in
  check "factorizing" true factorizing;
  check "fibration" true fibration

let test_fibration_correspondence_negative () =
  let label_mod3 g = Graph.relabel g (fun v -> Label.Int ((v mod 3) + 1)) in
  let c12 = label_mod3 (Gen.cycle 12) and c6 = label_mod3 (Gen.cycle 6) in
  (* a wrong map: constant-block map is neither *)
  let bad = Array.init 12 (fun v -> v mod 2) in
  let factorizing, fibration =
    Fibration.check_correspondence ~product:c12 ~factor:c6 ~map:bad
  in
  check "not factorizing" false factorizing;
  check "not fibration" false fibration

let test_fibration_correspondence_random_lifts () =
  List.iter
    (fun seed ->
      let base = Gen.label_with_ints (Gen.random_hamiltonian ~seed 5 0.4) in
      let l = Lift.random ~seed:(seed * 3 + 1) base ~k:2 in
      let factorizing, fibration =
        Fibration.check_correspondence ~product:l.Lift.graph ~factor:base
          ~map:l.Lift.map
      in
      check "factorizing" true factorizing;
      check "agree" factorizing fibration)
    [ 1; 2; 3; 4; 5 ]

(* ---------- Universal cover (Section 1.3, Norris's setting) ---------- *)

let test_universal_cover_shapes () =
  (* On the path a-b-c, the depth-3 UC truncation at an end prunes the
     backtracking branch that the local view keeps. *)
  let g = Gen.label_with_ints (Gen.path 3) in
  let uc = Universal_cover.truncation g ~root:0 ~depth:3 in
  let lv = View.of_graph g ~root:0 ~depth:3 in
  check_int "UC: root has one child" 1 (List.length uc.View.children);
  let b = List.hd uc.View.children in
  check_int "UC: b keeps only the non-parent child" 1 (List.length b.View.children);
  let b' = List.hd lv.View.children in
  check_int "view: b keeps both neighbors" 2 (List.length b'.View.children)

let test_universal_cover_partition_agrees () =
  (* At depth >= n, UC truncations and local views induce the same
     partition (both stable = the L_inf partition). *)
  List.iter
    (fun g ->
      check "UC/view partitions agree at depth n" true
        (Universal_cover.agrees_with_views g ~depth:(Graph.n g)))
    [ Gen.path 5; Gen.c6_figure1 (); Gen.petersen ();
      Gen.random_connected ~seed:8 8 0.3; Gen.star 4 ]

let test_universal_cover_norris_bound () =
  (* Norris: depth n-1 suffices for UC truncations (n >= 2). *)
  List.iter
    (fun g ->
      let d = Universal_cover.stable_depth g in
      check "UC stable depth <= max(1, n-1)" true (d <= max 1 (Graph.n g - 1)))
    [ Gen.path 6; Gen.cycle 7; Gen.c6_figure1 (); Gen.grid 3 3;
      Gen.random_connected ~seed:21 9 0.3 ]

(* ---------- qcheck properties ---------- *)

let arb_seeded =
  QCheck.make
    ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%f" s n p)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 2 12) (float_bound_inclusive 0.5))

let prop_norris =
  QCheck.Test.make ~name:"Norris bound on random graphs" ~count:100 arb_seeded
    (fun (seed, n, p) -> Norris.bound_holds (Gen.random_connected ~seed n p))

let prop_view_graph_is_factor =
  QCheck.Test.make ~name:"view graph is a factor (2-hop colored inputs)" ~count:60
    arb_seeded (fun (seed, n, p) ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed n p) in
      let vg = View_graph.of_graph_exn g in
      Factor.is_factorizing ~product:g ~factor:vg.View_graph.graph ~map:vg.View_graph.map)

let prop_lift_preserves_view_graph =
  QCheck.Test.make ~name:"lift has same prime factor as base (Lemma 3)" ~count:40
    (QCheck.make QCheck.Gen.(pair (int_bound 10_000) (int_range 2 3)))
    (fun (seed, k) ->
      let base = Gen.label_with_ints (Gen.random_hamiltonian ~seed:(seed + 77) 6 0.4) in
      let lift = Lift.random ~seed base ~k in
      let vg_base = View_graph.of_graph_exn base in
      let vg_lift = View_graph.of_graph_exn lift.Lift.graph in
      Iso.equal vg_base.View_graph.graph vg_lift.View_graph.graph)

let prop_multiplicity_divides =
  QCheck.Test.make ~name:"|V| = m |V*| for view graphs" ~count:60 arb_seeded
    (fun (seed, n, p) ->
      let n = max 3 n in
      let g = Gen.label_with_ints (Gen.random_hamiltonian ~seed n p) in
      let lift = Lift.random ~seed:(seed + 1) g ~k:2 in
      let vg = View_graph.of_graph_exn lift.Lift.graph in
      Graph.n lift.Lift.graph mod Graph.n vg.View_graph.graph = 0)

let prop_fibration_correspondence =
  QCheck.Test.make ~name:"fibration = factorizing map on random lifts (Section 4)"
    ~count:40
    (QCheck.make QCheck.Gen.(pair (int_bound 10_000) (int_range 2 3)))
    (fun (seed, k) ->
      let base = Gen.label_with_ints (Gen.random_hamiltonian ~seed:(seed + 31) 5 0.3) in
      let l = Lift.random ~seed base ~k in
      let factorizing, fibration =
        Fibration.check_correspondence ~product:l.Lift.graph ~factor:base
          ~map:l.Lift.map
      in
      factorizing && fibration)

let prop_universal_cover_agrees =
  QCheck.Test.make ~name:"UC truncations agree with views at depth n" ~count:40
    arb_seeded (fun (seed, n, p) ->
      let g = Gen.random_connected ~seed n p in
      Universal_cover.agrees_with_views g ~depth:(max 1 (Graph.n g)))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_norris; prop_view_graph_is_factor; prop_lift_preserves_view_graph;
      prop_multiplicity_divides; prop_fibration_correspondence;
      prop_universal_cover_agrees ]

let () =
  Alcotest.run "anonet_views"
    [
      ( "view",
        [
          Alcotest.test_case "figure 1" `Quick test_view_figure1;
          Alcotest.test_case "depth 1" `Quick test_view_depth1;
          Alcotest.test_case "symmetric nodes" `Quick test_view_symmetric_nodes_equal;
          Alcotest.test_case "truncate" `Quick test_view_truncate;
          Alcotest.test_case "cross-graph equality (Fact 1)" `Quick
            test_view_equal_nodes_cross_graph;
          Alcotest.test_case "tree vs refinement equality" `Quick
            test_view_explicit_vs_refinement;
          Alcotest.test_case "rendering" `Quick test_view_to_string;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "colored C6" `Quick test_refinement_c6_colored;
          Alcotest.test_case "unlabeled cycle" `Quick test_refinement_unlabeled_cycle;
          Alcotest.test_case "path" `Quick test_refinement_path;
          Alcotest.test_case "classes at depth" `Quick test_refinement_classes_at_depth;
          Alcotest.test_case "matches explicit views" `Quick test_refinement_matches_views;
        ] );
      ( "view_graph",
        [
          Alcotest.test_case "C6 -> C3 (Figure 2)" `Quick test_view_graph_c6;
          Alcotest.test_case "prime is identity" `Quick test_view_graph_of_prime_is_identity;
          Alcotest.test_case "rejects uncolored" `Quick test_view_graph_rejects_uncolored;
          Alcotest.test_case "idempotent" `Quick test_view_graph_idempotent;
          Alcotest.test_case "lift invariance" `Quick test_view_graph_of_lift;
        ] );
      ( "factor",
        [
          Alcotest.test_case "figure 2 maps" `Quick test_factor_figure2_maps;
          Alcotest.test_case "rejections" `Quick test_factor_rejections;
          Alcotest.test_case "induced port permutations" `Quick test_factor_induced_ports;
        ] );
      ( "prime",
        [
          Alcotest.test_case "detection" `Quick test_prime_detection;
          Alcotest.test_case "requires coloring" `Quick test_prime_requires_coloring;
          Alcotest.test_case "aliases (Corollary 1)" `Quick test_prime_aliases;
        ] );
      ( "norris",
        [
          Alcotest.test_case "bound on families" `Quick test_norris_bound_families;
          Alcotest.test_case "exact on path" `Quick test_norris_exact_path;
        ] );
      ( "fibration",
        [
          Alcotest.test_case "directed representation" `Quick test_directed_representation;
          Alcotest.test_case "needs 2-hop coloring" `Quick
            test_directed_representation_needs_coloring;
          Alcotest.test_case "correspondence (positive)" `Quick
            test_fibration_correspondence_positive;
          Alcotest.test_case "correspondence (negative)" `Quick
            test_fibration_correspondence_negative;
          Alcotest.test_case "correspondence (random lifts)" `Quick
            test_fibration_correspondence_random_lifts;
        ] );
      ( "universal-cover",
        [
          Alcotest.test_case "prunes parents" `Quick test_universal_cover_shapes;
          Alcotest.test_case "agrees with views when stable" `Quick
            test_universal_cover_partition_agrees;
          Alcotest.test_case "Norris depth n-1" `Quick test_universal_cover_norris_bound;
        ] );
      "properties", qcheck_tests;
    ]
