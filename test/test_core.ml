(* Tests for the derandomization core: Knowledge, Bit_assignment,
   Simulation, Min_search, Candidates, A_infinity, A_star, Lifting,
   Decouple — the constructive content of Theorems 1 and 2. *)

open Anonet_graph
open Anonet
module Problem = Anonet_problems.Problem
module Gran = Anonet_problems.Gran
module Catalog = Anonet_problems.Catalog
module Bundles = Anonet_algorithms.Bundles
module Executor = Anonet_runtime.Executor

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* A Π^c-style instance: plain inputs zipped with a 2-hop coloring. *)
let colored_instance g colors = Problem.attach_coloring g colors

let c6_instance () =
  colored_instance (Gen.cycle 6) (Array.init 6 (fun v -> Label.Int ((v mod 3) + 1)))

let prime_instance g = colored_instance g (Array.init (Graph.n g) (fun v -> Label.Int v))

(* ---------- Knowledge ---------- *)

let test_knowledge_hashcons () =
  let a = Knowledge.node (Label.Int 1) [ Knowledge.leaf (Label.Int 2) ] in
  let b = Knowledge.node (Label.Int 1) [ Knowledge.leaf (Label.Int 2) ] in
  check "same id" true (Knowledge.id a = Knowledge.id b);
  check "equal" true (Knowledge.equal a b);
  (* children are canonicalized *)
  let c1 = Knowledge.leaf (Label.Int 1) and c2 = Knowledge.leaf (Label.Int 2) in
  let x = Knowledge.node Label.Unit [ c1; c2 ] in
  let y = Knowledge.node Label.Unit [ c2; c1 ] in
  check "sorted children" true (Knowledge.equal x y)

let test_knowledge_view_matches_view_module () =
  let g = Gen.c6_figure1 () in
  for d = 1 to 6 do
    let k = Knowledge.view_of_graph g ~root:0 ~depth:d in
    let v = Anonet_views.View.of_graph g ~root:0 ~depth:d in
    (* Compare shapes via a common rendering: mark sequence of a canonical
       preorder walk. *)
    let rec flat_k (t : Knowledge.t) =
      Label.encode (Knowledge.mark t)
      :: List.concat_map flat_k (Knowledge.children t)
    in
    let rec flat_v (t : Anonet_views.View.t) =
      Label.encode t.Anonet_views.View.mark
      :: List.concat_map flat_v t.Anonet_views.View.children
    in
    Alcotest.(check (list string))
      (Printf.sprintf "depth %d" d) (flat_v v) (flat_k k)
  done

let test_knowledge_label_roundtrip () =
  let g = Gen.petersen () in
  let k = Knowledge.view_of_graph (Gen.label_with_ints g) ~root:3 ~depth:5 in
  let k' = Knowledge.of_label (Knowledge.to_label k) in
  check "roundtrip" true (Knowledge.equal k k');
  check_int "same id (hash-consed)" (Knowledge.id k) (Knowledge.id k')

let test_knowledge_truncate_depth () =
  let g = Gen.c6_figure1 () in
  let k = Knowledge.view_of_graph g ~root:0 ~depth:6 in
  check_int "depth" 6 (Knowledge.depth k);
  let t = Knowledge.truncate k ~depth:3 in
  check_int "truncated depth" 3 (Knowledge.depth t);
  check "truncate = direct view" true
    (Knowledge.equal t (Knowledge.view_of_graph g ~root:0 ~depth:3))

let test_knowledge_subtrees_shared () =
  (* C6-figure1 has 3 view classes, so each level contributes at most 3
     distinct subtrees: the DAG stays linear in depth. *)
  let g = Gen.c6_figure1 () in
  let k = Knowledge.view_of_graph g ~root:0 ~depth:10 in
  let count = List.length (Knowledge.subtrees k) in
  check "DAG is small" true (count <= 3 * 10)

(* ---------- Bit_assignment ---------- *)

let b s = Bits.of_string s

let test_assignment_orders () =
  let a1 = [| b "0"; b "1" |] and a2 = [| b "1"; b "0" |] in
  check "node-major" true (Bit_assignment.compare_node_major a1 a2 < 0);
  check "round-major agrees here" true (Bit_assignment.compare_round_major a1 a2 < 0);
  (* length dominates *)
  let short = [| b "1"; b "1" |] and long = [| b "00"; b "00" |] in
  check "shorter first (node-major)" true (Bit_assignment.compare_node_major short long < 0);
  check "shorter first (round-major)" true
    (Bit_assignment.compare_round_major short long < 0);
  (* the two orders genuinely differ: a = (01, 10), b = (10, 00).
     node-major: a < b (01 < 10).  round-major: round1 = (0,1) vs (1,0):
     a < b too... pick a = (01,00), b = (00,10): node-major: a > b;
     round-major: round1 (0,0) vs (0,1): a < b. *)
  let x = [| b "01"; b "00" |] and y = [| b "00"; b "10" |] in
  check "orders differ (node-major)" true (Bit_assignment.compare_node_major x y > 0);
  check "orders differ (round-major)" true (Bit_assignment.compare_round_major x y < 0)

let test_assignment_extensions () =
  let base = [| b "1"; Bits.empty |] in
  let exts = List.of_seq (Bit_assignment.extensions base ~len:2) in
  check_int "2^3 extensions" 8 (List.length exts);
  List.iter
    (fun e ->
      check "extends base" true (Bit_assignment.is_extension ~base e);
      check "uniform" true (Bit_assignment.is_uniform e);
      check_int "length" 2 (Bit_assignment.max_length e))
    exts;
  (* enumeration is sorted node-major *)
  let sorted = List.sort Bit_assignment.compare_node_major exts in
  check "sorted" true (List.equal (fun x y -> Bit_assignment.compare_node_major x y = 0) exts sorted);
  (* first extension is all-zero completion *)
  check "first is zero-fill" true
    (Bit_assignment.compare_node_major (List.hd exts) [| b "10"; b "00" |] = 0)

let test_assignment_lift () =
  let map = [| 0; 1; 0; 1 |] in
  let bits = [| b "01"; b "10" |] in
  let lifted = Bit_assignment.lift ~map bits in
  check "lift" true
    (Bit_assignment.compare_node_major lifted [| b "01"; b "10"; b "01"; b "10" |] = 0)

(* ---------- Simulation ---------- *)

let test_simulation_length_semantics () =
  (* rand_coloring on K2 finishes in 4 rounds iff the two bit strings
     differ at round 2 (the first Decide round). *)
  let g = Gen.complete 2 in
  let solver = Anonet_algorithms.Rand_coloring.algorithm in
  let good = Simulation.run ~solver g ~bits:[| b "0010"; b "0110" |] in
  check "distinct bits succeed" true good.Simulation.successful;
  let tie = Simulation.run ~solver g ~bits:[| b "0000"; b "0000" |] in
  check "identical bits never split" false tie.Simulation.successful;
  (* too short a tape: conflict unresolved within l rounds *)
  let short = Simulation.run ~solver g ~bits:[| b "0"; b "1" |] in
  check "too short" false short.Simulation.successful

(* ---------- Min_search ---------- *)

let test_min_search_cross_check_orders () =
  (* On tiny instances, exhaustively verify that the BFS (round-major)
     result equals the brute-force minimum under the round-major order,
     and that the node-major search returns the brute-force node-major
     minimum. *)
  let g = Gen.complete 2 in
  let solver = Anonet_algorithms.Rand_coloring.algorithm in
  let base = Bit_assignment.empty 2 in
  let brute_force order_cmp len =
    Seq.fold_left
      (fun acc a ->
        let sim = Simulation.run ~solver g ~bits:a in
        if not sim.Simulation.successful then acc
        else
          match acc with
          | None -> Some a
          | Some current -> if order_cmp a current < 0 then Some a else Some current)
      None
      (Bit_assignment.extensions base ~len)
  in
  (* find minimal length with any success *)
  let rec first_len l =
    if l > 8 then Alcotest.fail "no success within 8 rounds"
    else
      match brute_force Bit_assignment.compare_round_major l with
      | Some a -> l, a
      | None -> first_len (l + 1)
  in
  let len, brute_rm = first_len 1 in
  (match
     Min_search.minimal_successful ~solver g ~base ~order:Min_search.Round_major
       ~len:(Min_search.At_most 8) ()
   with
   | None -> Alcotest.fail "BFS found nothing"
   | Some f ->
     check_int "same minimal length" len
       (Bit_assignment.max_length f.Min_search.assignment);
     check "BFS = brute force (round-major)" true
       (Bit_assignment.compare_round_major f.Min_search.assignment brute_rm = 0));
  let brute_nm = Option.get (brute_force Bit_assignment.compare_node_major len) in
  (match
     Min_search.minimal_successful ~solver g ~base ~order:Min_search.Node_major
       ~len:(Min_search.At_most 8) ()
   with
   | None -> Alcotest.fail "node-major found nothing"
   | Some f ->
     check "node-major = brute force" true
       (Bit_assignment.compare_node_major f.Min_search.assignment brute_nm = 0))

let test_min_search_exact_mode () =
  let g = Gen.complete 2 in
  let solver = Anonet_algorithms.Rand_coloring.algorithm in
  let base = Bit_assignment.empty 2 in
  (* exact length 6: compare BFS against brute force *)
  let len = 6 in
  let brute =
    Seq.fold_left
      (fun acc a ->
        let sim = Simulation.run ~solver g ~bits:a in
        if not sim.Simulation.successful then acc
        else
          match acc with
          | None -> Some a
          | Some c ->
            if Bit_assignment.compare_round_major a c < 0 then Some a else Some c)
      None
      (Bit_assignment.extensions base ~len)
  in
  match
    Min_search.minimal_successful ~solver g ~base ~len:(Min_search.Exactly len) ()
  with
  | None -> Alcotest.fail "exact search found nothing"
  | Some f ->
    check "exact = brute force" true
      (Bit_assignment.compare_round_major f.Min_search.assignment (Option.get brute) = 0);
    check "is extension" true
      (Bit_assignment.is_extension ~base f.Min_search.assignment)

let test_min_search_respects_base () =
  (* With node 0 pinned to all-zeros, the search must keep it. *)
  let g = Gen.complete 2 in
  let solver = Anonet_algorithms.Rand_coloring.algorithm in
  let base = [| b "0000"; Bits.empty |] in
  match
    Min_search.minimal_successful ~solver g ~base ~len:(Min_search.Exactly 4) ()
  with
  | None -> Alcotest.fail "should find an extension"
  | Some f ->
    check "base preserved" true
      (Bits.equal f.Min_search.assignment.(0) (b "0000"));
    check "successful" true f.Min_search.sim.Simulation.successful

let test_min_search_none_when_impossible () =
  (* 2-hop coloring needs at least 2 rounds per phase; within 1 round
     nothing can terminate. *)
  let g = Gen.complete 2 in
  let solver = Anonet_algorithms.Rand_two_hop.algorithm in
  check "no 1-round success" true
    (Min_search.minimal_successful ~solver g ~base:(Bit_assignment.empty 2)
       ~len:(Min_search.At_most 1) ()
     = None)

(* ---------- Candidates (Update-Graph) ---------- *)

let test_candidates_select_view_graph_at_large_phase () =
  (* Lemma 7: for p >= 2n the selected candidate is the finite view graph
     of the gathered instance. *)
  let inst = c6_instance () in
  let with_b = Graph.map_labels inst (fun l -> Label.Pair (l, Label.Bits Bits.empty)) in
  let p = 2 * 6 in
  let k = Knowledge.view_of_graph with_b ~root:0 ~depth:p in
  let is_instance = (Problem.colored_variant Catalog.mis).Problem.is_instance in
  match Candidates.from_knowledge k ~phase:p ~is_instance with
  | [] -> Alcotest.fail "no candidates at phase 2n"
  | selected :: _ ->
    let vg = Anonet_views.View_graph.of_graph_exn with_b in
    check "selected = true view graph" true
      (Iso.equal selected.Candidates.graph vg.Anonet_views.View_graph.graph);
    check_int "selected has 3 nodes" 3 (Graph.n selected.Candidates.graph);
    (* my alias maps back to my class *)
    check_int "alias" vg.Anonet_views.View_graph.map.(0) selected.Candidates.me

let test_candidates_singleton () =
  let g = Graph.create ~n:1 ~edges:[]
      ~labels:[| Label.Pair (Label.Pair (Label.Unit, Label.Int 0), Label.Bits Bits.empty) |]
  in
  let k = Knowledge.view_of_graph g ~root:0 ~depth:1 in
  let is_instance = (Problem.colored_variant Catalog.mis).Problem.is_instance in
  match Candidates.from_knowledge k ~phase:1 ~is_instance with
  | [ c ] ->
    check_int "one node" 1 (Graph.n c.Candidates.graph);
    check_int "me" 0 c.Candidates.me
  | l -> Alcotest.failf "expected exactly one candidate, got %d" (List.length l)

let test_candidates_respect_c1 () =
  (* At a phase smaller than the view graph, the true quotient violates C1
     and must not be offered. *)
  let inst = prime_instance (Gen.cycle 5) in
  let with_b = Graph.map_labels inst (fun l -> Label.Pair (l, Label.Bits Bits.empty)) in
  let p = 3 in
  let k = Knowledge.view_of_graph with_b ~root:0 ~depth:p in
  let is_instance = (Problem.colored_variant Catalog.mis).Problem.is_instance in
  List.iter
    (fun c -> check "C1 holds" true (Graph.n c.Candidates.graph <= p))
    (Candidates.from_knowledge k ~phase:p ~is_instance)

(* ---------- A_infinity (Theorem 2) ---------- *)

let a_inf_instances =
  [ "c6/3colors", c6_instance ();
    "c3-prime", prime_instance (Gen.cycle 3);
    "p4-prime", prime_instance (Gen.path 4);
    "star4-prime", prime_instance (Gen.star 4);
    "k4-prime", prime_instance (Gen.complete 4);
    "c8/4colors",
    colored_instance (Gen.cycle 8) (Array.init 8 (fun v -> Label.Int (v mod 4)));
  ]

(* The 2-hop coloring solver needs long successful simulations (three
   rounds per phase, several phases), and the minimal-simulation search is
   exponential in the view graph size — the inherent cost of the generic
   construction, charted by the `ablate-bits` bench.  Restrict that bundle
   to instances whose view graphs have at most 4 nodes. *)
let instances_for bundle =
  if bundle == Bundles.two_hop_coloring then
    List.filter
      (fun (name, _) ->
        List.mem name [ "c6/3colors"; "c3-prime"; "p4-prime" ])
      a_inf_instances
  else a_inf_instances

let test_a_infinity_valid_outputs () =
  List.iter
    (fun bundle ->
      List.iter
        (fun (name, inst) ->
          match A_infinity.solve ~gran:bundle inst () with
          | Error m ->
            Alcotest.failf "A_inf %s on %s: %s"
              bundle.Gran.problem.Problem.name name m
          | Ok r ->
            check
              (Printf.sprintf "A_inf %s on %s valid"
                 bundle.Gran.problem.Problem.name name)
              true
              (bundle.Gran.problem.Problem.is_valid_output
                 (Problem.strip_coloring inst) r.A_infinity.outputs))
        (instances_for bundle))
    [ Bundles.mis; Bundles.coloring; Bundles.two_hop_coloring;
      Bundles.maximal_matching ]

let test_a_infinity_deterministic () =
  let inst = c6_instance () in
  let run () =
    match A_infinity.solve ~gran:Bundles.mis inst () with
    | Error m -> Alcotest.fail m
    | Ok r -> r.A_infinity.outputs
  in
  check "two runs agree" true (Array.for_all2 Label.equal (run ()) (run ()))

let test_a_infinity_respects_symmetry () =
  (* Nodes with equal views must output equal values. *)
  let inst = c6_instance () in
  match A_infinity.solve ~gran:Bundles.coloring inst () with
  | Error m -> Alcotest.fail m
  | Ok r ->
    let o = r.A_infinity.outputs in
    check "0 = 3" true (Label.equal o.(0) o.(3));
    check "1 = 4" true (Label.equal o.(1) o.(4));
    check "2 = 5" true (Label.equal o.(2) o.(5))

let test_a_infinity_rejects_bad_instance () =
  (* Missing coloring component *)
  match A_infinity.solve ~gran:Bundles.mis (Gen.cycle 6) () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection of uncolored instance"

let test_a_infinity_node_major_also_valid () =
  let inst = c6_instance () in
  match A_infinity.solve ~gran:Bundles.mis inst ~order:Min_search.Node_major
          ~max_len:6 () with
  | Error m -> Alcotest.fail m
  | Ok r ->
    check "node-major valid" true
      (Catalog.mis.Problem.is_valid_output (Problem.strip_coloring inst)
         r.A_infinity.outputs)

(* ---------- Lifting lemma ---------- *)

let test_lifting_on_figure2 () =
  let l = Lift.c12_over_c6 () in
  let solver = Anonet_algorithms.Rand_mis.algorithm in
  (* any assignment on the factor lifts to an execution with matching
     outputs *)
  List.iter
    (fun bits ->
      let r =
        Lifting.run ~solver ~product:l.Lift.graph ~factor:l.Lift.base
          ~map:l.Lift.map ~bits
      in
      check "lifting lemma" true r.Lifting.agree)
    [ Array.init 6 (fun v -> Bits.of_int ~width:6 (v * 7 mod 64));
      Array.make 6 (b "10110");
      Array.init 6 (fun v -> Bits.of_int ~width:8 (v * 37 mod 256));
    ]

let test_lifting_on_random_lifts () =
  let base = Gen.label_with_ints (Gen.random_hamiltonian ~seed:5 5 0.3) in
  let l = Lift.random ~seed:6 base ~k:3 in
  let solver = Anonet_algorithms.Rand_coloring.algorithm in
  let bits = Array.init 5 (fun v -> Bits.of_int ~width:10 (v * 131 mod 1024)) in
  let r =
    Lifting.run ~solver ~product:l.Lift.graph ~factor:l.Lift.base ~map:l.Lift.map
      ~bits
  in
  check "lifting lemma on random lift" true r.Lifting.agree

(* ---------- A_star (Theorem 1) ---------- *)

let a_star_instances =
  [ "c6/3colors", c6_instance ();
    "c3-prime", prime_instance (Gen.cycle 3);
    "p3-prime", prime_instance (Gen.path 3);
    "p1", prime_instance (Gen.path 1);
    "star3-prime", prime_instance (Gen.star 3);
  ]

let test_a_star_valid_outputs () =
  List.iter
    (fun bundle ->
      List.iter
        (fun (name, inst) ->
          match A_star.solve ~gran:bundle inst () with
          | Error m ->
            Alcotest.failf "A* %s on %s: %s" bundle.Gran.problem.Problem.name name m
          | Ok outcome ->
            check
              (Printf.sprintf "A* %s on %s valid" bundle.Gran.problem.Problem.name name)
              true
              (bundle.Gran.problem.Problem.is_valid_output
                 (Problem.strip_coloring inst) outcome.Executor.outputs))
        a_star_instances)
    [ Bundles.mis; Bundles.coloring ]

let test_a_star_two_hop_solver () =
  (* Derandomizing the 2-hop coloring solver itself: the deep case, since
     its successful simulations are long. *)
  let inst = c6_instance () in
  match A_star.solve ~gran:Bundles.two_hop_coloring inst () with
  | Error m -> Alcotest.fail m
  | Ok outcome ->
    check "valid 2-hop coloring" true
      (Catalog.two_hop_coloring.Problem.is_valid_output
         (Problem.strip_coloring inst) outcome.Executor.outputs)

let test_a_star_deterministic_and_symmetric () =
  let inst = c6_instance () in
  let run () =
    match A_star.solve ~gran:Bundles.mis inst () with
    | Error m -> Alcotest.fail m
    | Ok o -> o.Executor.outputs
  in
  let o1 = run () and o2 = run () in
  check "deterministic" true (Array.for_all2 Label.equal o1 o2);
  check "symmetric outputs" true (Label.equal o1.(0) o1.(3))

let test_a_star_matches_validity_on_matching () =
  let inst = prime_instance (Gen.path 4) in
  match A_star.solve ~gran:Bundles.maximal_matching inst () with
  | Error m -> Alcotest.fail m
  | Ok outcome ->
    check "valid matching" true
      (Catalog.maximal_matching.Problem.is_valid_output
         (Problem.strip_coloring inst) outcome.Executor.outputs)

let test_port_outputs_translated () =
  (* Port-valued outputs must survive the alias indirection even when the
     view graph's port numbering disagrees with the instance's — the
     collapsed instances are where verbatim lifting would produce an
     asymmetric "matching".  (Matching on an instance whose view graph
     collapses too much may be unsolvable by ANY view-based rule — e.g.
     nodes of a 6-cycle with 3 colors pair ambiguously — so we use
     instances that are matchable yet have non-identity alias orders.) *)
  List.iter
    (fun (name, inst) ->
      (* A_infinity *)
      (match A_infinity.solve ~gran:Bundles.maximal_matching inst () with
       | Error m -> Alcotest.failf "A_inf matching on %s: %s" name m
       | Ok r ->
         check (Printf.sprintf "A_inf matching valid on %s" name) true
           (Catalog.maximal_matching.Problem.is_valid_output
              (Problem.strip_coloring inst) r.A_infinity.outputs));
      (* A_star *)
      match A_star.solve ~gran:Bundles.maximal_matching inst () with
      | Error m -> Alcotest.failf "A* matching on %s: %s" name m
      | Ok outcome ->
        check (Printf.sprintf "A* matching valid on %s" name) true
          (Catalog.maximal_matching.Problem.is_valid_output
             (Problem.strip_coloring inst) outcome.Executor.outputs))
    [ (* reversed unique labels: the canonical class order differs from the
         node order, so alias ports differ from own ports *)
      "p4-reversed",
      colored_instance (Gen.path 4) (Array.init 4 (fun v -> Label.Int (10 - v)));
      "star3-reversed",
      colored_instance (Gen.star 3) (Array.init 4 (fun v -> Label.Int (20 - v)));
      "c5-reversed",
      colored_instance (Gen.cycle 5) (Array.init 5 (fun v -> Label.Int (30 - v)));
    ]

(* ---------- Decouple ---------- *)

let test_a_star_node_major_order () =
  (* The analysis is order-agnostic: A* with the paper's node-major order
     must also solve Π^c (on a tiny instance, since that order is searched
     exhaustively). *)
  let inst = prime_instance (Gen.cycle 3) in
  match A_star.solve ~gran:Bundles.mis inst ~order:Min_search.Node_major () with
  | Error m -> Alcotest.fail m
  | Ok outcome ->
    check "node-major A* valid" true
      (Catalog.mis.Problem.is_valid_output (Problem.strip_coloring inst)
         outcome.Executor.outputs)

let test_decouple_all_stages () =
  let g = Gen.cycle 6 in
  List.iter
    (fun (name, stage) ->
      match Decouple.solve ~gran:Bundles.mis g ~seed:21 ~stage_two:stage () with
      | Error m -> Alcotest.failf "decouple (%s): %s" name m
      | Ok r ->
        check (Printf.sprintf "decoupled MIS valid via %s" name) true
          (Catalog.mis.Problem.is_valid_output g r.Decouple.outputs);
        check "coloring stage valid" true
          (Props.is_k_hop_coloring g 2 (fun v -> r.Decouple.coloring.(v))))
    [ "a-star", Decouple.Generic_a_star;
      "a-infinity", Decouple.Generic_a_infinity;
      "specific", Decouple.Specific Anonet_algorithms.Det_from_two_hop.mis;
    ]

let test_decouple_coloring_specific () =
  let g = Gen.petersen () in
  match
    Decouple.solve ~gran:Bundles.coloring g ~seed:23
      ~stage_two:(Decouple.Specific Anonet_algorithms.Det_from_two_hop.coloring) ()
  with
  | Error m -> Alcotest.fail m
  | Ok r ->
    check "decoupled coloring valid" true
      (Catalog.coloring.Problem.is_valid_output g r.Decouple.outputs)

(* ---------- literal candidate enumeration (DESIGN.md cross-check) ----- *)

let test_literal_candidates_cross_check () =
  (* On the colored triangle (prime, 3 nodes), at a phase where the
     minimality argument applies (p >= 2n = 6... the literal enumerator
     caps graphs at 4 nodes, fine since the true view graph has 3), the
     literal Figure-3 candidate set and the quotient construction must
     select the same graph. *)
  let inst = prime_instance (Gen.cycle 3) in
  let with_b = Graph.map_labels inst (fun l -> Label.Pair (l, Label.Bits Bits.empty)) in
  let p = 6 in
  let k = Knowledge.view_of_graph with_b ~root:0 ~depth:p in
  let is_instance = (Problem.colored_variant Catalog.mis).Problem.is_instance in
  let alphabet =
    List.sort_uniq Label.compare
      (List.map Knowledge.mark (Knowledge.subtrees k))
  in
  let quotient_based = Candidates.from_knowledge k ~phase:p ~is_instance in
  let literal = Candidates.literal_candidates k ~phase:p ~alphabet ~is_instance in
  (match quotient_based, literal with
   | q :: _, l :: _ ->
     Alcotest.(check string) "same selection" l.Candidates.encoding q.Candidates.encoding;
     check_int "same alias" l.Candidates.me q.Candidates.me
   | _, _ -> Alcotest.fail "both constructions must produce candidates");
  (* every quotient candidate (of size <= 4) appears in the literal set *)
  List.iter
    (fun (q : Candidates.t) ->
      if Graph.n q.Candidates.graph <= 4 then
        check "quotient candidate in literal set" true
          (List.exists
             (fun (l : Candidates.t) -> String.equal l.Candidates.encoding q.Candidates.encoding)
             literal))
    quotient_based

let test_literal_candidates_small_phase () =
  (* At tiny phases the literal set can contain graphs the quotient
     construction does not generate; both must still satisfy C1-C3, and
     the quotient set must be a subset. *)
  let inst = c6_instance () in
  let with_b = Graph.map_labels inst (fun l -> Label.Pair (l, Label.Bits Bits.empty)) in
  let p = 3 in
  let k = Knowledge.view_of_graph with_b ~root:0 ~depth:p in
  let is_instance = (Problem.colored_variant Catalog.mis).Problem.is_instance in
  let alphabet =
    List.sort_uniq Label.compare
      (List.map Knowledge.mark (Knowledge.subtrees k))
  in
  let quotient_based = Candidates.from_knowledge k ~phase:p ~is_instance in
  let literal = Candidates.literal_candidates k ~phase:p ~alphabet ~is_instance in
  List.iter
    (fun (q : Candidates.t) ->
      check "subset" true
        (List.exists
           (fun (l : Candidates.t) -> String.equal l.Candidates.encoding q.Candidates.encoding)
           literal))
    quotient_based;
  List.iter
    (fun (c : Candidates.t) -> check "C1" true (Graph.n c.Candidates.graph <= p))
    literal

(* ---------- the Section 3.2 lemmas, phase by phase --------------------- *)

let test_a_star_phase_lemmas () =
  (* Re-derive A*'s phase evolution centrally and check the analysis:
     Observation 1 (the b labels never split view classes), Lemma 6 (from
     phase n on, the candidate set contains I*^p), and Lemma 7 (from phase
     2n on, the selection *is* I*^p). *)
  let inst = c6_instance () in
  let is_instance = (Problem.colored_variant Catalog.mis).Problem.is_instance in
  let vg_c = Anonet_views.View_graph.of_graph_exn inst in
  let n_star = Graph.n vg_c.Anonet_views.View_graph.graph in
  let n = Graph.n inst in
  let b = ref (Array.make n Bits.empty) in
  for p = 1 to (2 * n_star) + 4 do
    let ip = Graph.zip_labels inst (Array.map (fun x -> Label.Bits x) !b) in
    (* Observation 1: the view classes of I^p (with b) match those of I^c. *)
    let vg_p = Anonet_views.View_graph.of_graph_exn ip in
    check
      (Printf.sprintf "Observation 1 at phase %d" p)
      true
      (Iso.equal
         (Graph.map_labels vg_p.Anonet_views.View_graph.graph Label.fst)
         vg_c.Anonet_views.View_graph.graph);
    let target_encoding =
      Encode.to_string vg_p.Anonet_views.View_graph.graph
        ~order:(Array.init (Graph.n vg_p.Anonet_views.View_graph.graph) Fun.id)
    in
    let new_b = Array.copy !b in
    Graph.iter_nodes inst ~f:(fun v ->
        let k = Knowledge.view_of_graph ip ~root:v ~depth:p in
        let candidates = Candidates.from_knowledge k ~phase:p ~is_instance in
        (* Lemma 6: I*^p is a candidate from phase n_star on (our quotient
           construction sees the whole graph once p covers it). *)
        if p >= 2 * n_star then begin
          check
            (Printf.sprintf "Lemma 6 at phase %d node %d" p v)
            true
            (List.exists
               (fun (c : Candidates.t) -> String.equal c.Candidates.encoding target_encoding)
               candidates);
          (* Lemma 7: and it is the selection. *)
          match candidates with
          | [] -> Alcotest.fail "no candidates at a large phase"
          | selected :: _ ->
            Alcotest.(check string)
              (Printf.sprintf "Lemma 7 at phase %d node %d" p v)
              target_encoding selected.Candidates.encoding
        end;
        (* Update-Bits, as A* would perform it. *)
        match candidates with
        | [] -> ()
        | selected :: _ ->
          let j = Graph.map_labels selected.Candidates.graph (fun l -> Label.fst (Label.fst l)) in
          let base = Candidates.assignment_of selected.Candidates.graph in
          (match
             Min_search.minimal_successful ~solver:Bundles.mis.Gran.solver j ~base
               ~len:(Min_search.Exactly p) ()
           with
           | Some f -> new_b.(v) <- f.Min_search.assignment.(selected.Candidates.me)
           | None -> ()));
    (* prefix property of Update-Bits (used by Lemma 9) *)
    Array.iteri
      (fun v nb ->
        check
          (Printf.sprintf "b prefix property at phase %d node %d" p v)
          true
          (Bits.is_prefix ~prefix:!b.(v) nb))
      new_b;
    b := new_b
  done

(* ---------- k > 2: the lifting impossibility (Section 1.2) ------------ *)

let test_three_hop_coloring_not_gran () =
  (* The executable version of the paper's claim that the k-hop variant of
     coloring for k > 2 is not genuinely solvable: any Las-Vegas algorithm
     would have to produce, on C3, an output valid for C3; lifting that
     execution to the 2-lift C6 is a possible execution on C6 whose output
     repeats at distance 3 — invalid.  We check the combinatorial core:
     every output lifted through the covering map violates 3-hop validity
     on C6, regardless of what it is. *)
  let l = Lift.c6_over_c3 () in
  let three_hop = Catalog.k_hop_coloring 3 in
  let all_c3_outputs =
    (* all functions from 3 nodes to a palette of 6 colors suffices: a
       violation occurs for *any* output, valid-on-C3 or not *)
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b -> List.map (fun c -> [| Label.Int a; Label.Int b; Label.Int c |])
              [ 0; 1; 2; 3; 4; 5 ])
          [ 0; 1; 2; 3; 4; 5 ])
      [ 0; 1; 2; 3; 4; 5 ]
  in
  List.iter
    (fun o ->
      let lifted = Lifting.lift_outputs ~map:l.Lift.map o in
      check "lifted output invalid for 3-hop on C6" false
        (three_hop.Problem.is_valid_output l.Lift.graph lifted))
    all_c3_outputs;
  (* contrast: 2-hop validity on C6 is achievable by lifting a C3 output *)
  let two_hop_ok =
    Lifting.lift_outputs ~map:l.Lift.map [| Label.Int 0; Label.Int 1; Label.Int 2 |]
  in
  check "2-hop coloring lifts fine" true
    (Catalog.two_hop_coloring.Problem.is_valid_output l.Lift.graph two_hop_ok)

(* ---------- port obliviousness (Section 1.3 remark) ------------------- *)

let test_port_scrambling_multiset_algorithms_survive () =
  (* Multiset-style algorithms do not need port numbers. *)
  let g = Gen.petersen () in
  List.iter
    (fun (name, algo, problem) ->
      match
        Executor.run ~ctx:(Anonet_runtime.Run_ctx.make ~scramble_seed:7 ()) algo g
          ~tape:(Anonet_runtime.Tape.random ~seed:5) ~max_rounds:2000
      with
      | Error e -> Alcotest.failf "%s under scrambling: %a" name Executor.pp_failure e
      | Ok { outputs; _ } ->
        check (name ^ " valid under scrambling") true
          (problem.Anonet_problems.Problem.is_valid_output g outputs))
    [ "rand-2hop", Anonet_algorithms.Rand_two_hop.algorithm, Catalog.two_hop_coloring;
      "rand-coloring", Anonet_algorithms.Rand_coloring.algorithm, Catalog.coloring;
      "rand-mis", Anonet_algorithms.Rand_mis.algorithm, Catalog.mis;
    ]

let test_port_scrambling_breaks_matching () =
  (* Maximal matching genuinely uses ports (its output is a port): under
     scrambled delivery some run must fail or produce an invalid
     matching. *)
  let g = Gen.cycle 5 in
  let broken = ref false in
  for seed = 1 to 10 do
    match
      Executor.run ~ctx:(Anonet_runtime.Run_ctx.make ~scramble_seed:seed ())
        Anonet_algorithms.Rand_matching.algorithm g
        ~tape:(Anonet_runtime.Tape.random ~seed) ~max_rounds:400
    with
    | Error _ -> broken := true
    | Ok { outputs; _ } ->
      if not (Catalog.maximal_matching.Problem.is_valid_output g outputs) then
        broken := true
  done;
  check "matching breaks without ports" true !broken

(* ---------- qcheck properties ---------- *)

let arb_colored_instance =
  (* random small graph + 2-hop coloring computed via the solver *)
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%f" seed n p)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 2 7) (float_bound_inclusive 0.4))

let colored_of (seed, n, p) =
  let g = Gen.random_connected ~seed n p in
  match
    Anonet_runtime.Las_vegas.solve_msg Anonet_algorithms.Rand_two_hop.algorithm g
      ~seed:(seed + 13) ()
  with
  | Error m -> failwith m
  | Ok r ->
    g, colored_instance g r.Anonet_runtime.Las_vegas.outcome.Executor.outputs

let prop_a_infinity_valid =
  QCheck.Test.make ~name:"A_infinity valid on random colored instances" ~count:30
    arb_colored_instance (fun params ->
      let g, inst = colored_of params in
      match A_infinity.solve ~gran:Bundles.mis inst () with
      | Error m -> QCheck.Test.fail_report m
      | Ok r -> Catalog.mis.Problem.is_valid_output g r.A_infinity.outputs)

let prop_lifting_lemma =
  QCheck.Test.make ~name:"lifting lemma on random lifts" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_bound 10_000) (int_range 2 3)))
    (fun (seed, k) ->
      let base = Gen.label_with_ints (Gen.random_hamiltonian ~seed:(seed + 3) 5 0.3) in
      let l = Lift.random ~seed base ~k in
      let bits =
        Array.init 5 (fun v -> Bits.of_int ~width:8 ((seed + (v * 37)) mod 256))
      in
      let r =
        Lifting.run ~solver:Anonet_algorithms.Rand_mis.algorithm
          ~product:l.Lift.graph ~factor:l.Lift.base ~map:l.Lift.map ~bits
      in
      r.Lifting.agree)

let prop_decouple_valid =
  QCheck.Test.make ~name:"decoupled pipeline valid (specific stage 2)" ~count:30
    arb_colored_instance (fun (seed, n, p) ->
      let g = Gen.random_connected ~seed n p in
      match
        Decouple.solve ~gran:Bundles.mis g ~seed:(seed + 7)
          ~stage_two:(Decouple.Specific Anonet_algorithms.Det_from_two_hop.mis) ()
      with
      | Error m -> QCheck.Test.fail_report m
      | Ok r -> Catalog.mis.Problem.is_valid_output g r.Decouple.outputs)

let prop_knowledge_roundtrip =
  QCheck.Test.make ~name:"Knowledge label roundtrip on random views" ~count:50
    arb_colored_instance (fun (seed, n, p) ->
      let g = Gen.random_connected ~seed n p in
      let depth = 1 + (seed mod (n + 2)) in
      let k = Knowledge.view_of_graph (Gen.label_with_ints g) ~root:0 ~depth in
      let k' = Knowledge.of_label (Knowledge.to_label k) in
      Knowledge.equal k k')

let prop_knowledge_truncate_coherent =
  QCheck.Test.make ~name:"Knowledge truncate = direct shallow view" ~count:50
    arb_colored_instance (fun (seed, n, p) ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed n p) in
      let deep = Knowledge.view_of_graph g ~root:(seed mod n) ~depth:(n + 2) in
      let d = 1 + (seed mod (n + 1)) in
      Knowledge.equal
        (Knowledge.truncate deep ~depth:d)
        (Knowledge.view_of_graph g ~root:(seed mod n) ~depth:d))

let prop_min_search_orders_same_length =
  (* Both orders find a successful assignment of the same minimal length
     (the orders differ only in the lexicographic tiebreak). *)
  QCheck.Test.make ~name:"round-major and node-major agree on minimal length"
    ~count:20
    (QCheck.make QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let g = Gen.label_with_ints (if seed mod 2 = 0 then Gen.path 2 else Gen.cycle 3) in
      let base = Bit_assignment.empty (Graph.n g) in
      let solver = Anonet_algorithms.Rand_mis.algorithm in
      let len order =
        match Min_search.minimal_successful ~solver g ~base ~order
                ~len:(Min_search.At_most 10) () with
        | Some f -> Bit_assignment.max_length f.Min_search.assignment
        | None -> -1
      in
      len Min_search.Round_major = len Min_search.Node_major)

let prop_a_star_random_instances =
  QCheck.Test.make ~name:"A* valid on random colored instances (small)" ~count:8
    (QCheck.make
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
       QCheck.Gen.(pair (int_bound 10_000) (int_range 2 5)))
    (fun (seed, n) ->
      let g = Gen.random_connected ~seed n 0.4 in
      match
        Decouple.solve ~gran:Bundles.mis g ~seed:(seed + 5)
          ~stage_two:Decouple.Generic_a_star ()
      with
      | Error m -> QCheck.Test.fail_report m
      | Ok r -> Catalog.mis.Problem.is_valid_output g r.Decouple.outputs)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_a_infinity_valid; prop_lifting_lemma; prop_decouple_valid;
      prop_knowledge_roundtrip; prop_knowledge_truncate_coherent;
      prop_min_search_orders_same_length; prop_a_star_random_instances ]

let () =
  Alcotest.run "anonet_core"
    [
      ( "knowledge",
        [
          Alcotest.test_case "hash-consing" `Quick test_knowledge_hashcons;
          Alcotest.test_case "matches View module" `Quick
            test_knowledge_view_matches_view_module;
          Alcotest.test_case "label roundtrip" `Quick test_knowledge_label_roundtrip;
          Alcotest.test_case "truncate/depth" `Quick test_knowledge_truncate_depth;
          Alcotest.test_case "DAG sharing" `Quick test_knowledge_subtrees_shared;
        ] );
      ( "bit-assignment",
        [
          Alcotest.test_case "orders" `Quick test_assignment_orders;
          Alcotest.test_case "extensions" `Quick test_assignment_extensions;
          Alcotest.test_case "lift" `Quick test_assignment_lift;
        ] );
      ( "simulation",
        [ Alcotest.test_case "length semantics" `Quick test_simulation_length_semantics ] );
      ( "min-search",
        [
          Alcotest.test_case "cross-check vs brute force" `Quick
            test_min_search_cross_check_orders;
          Alcotest.test_case "exact mode" `Quick test_min_search_exact_mode;
          Alcotest.test_case "respects base" `Quick test_min_search_respects_base;
          Alcotest.test_case "none when impossible" `Quick
            test_min_search_none_when_impossible;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "Lemma 7 selection" `Quick
            test_candidates_select_view_graph_at_large_phase;
          Alcotest.test_case "singleton graph" `Quick test_candidates_singleton;
          Alcotest.test_case "C1 respected" `Quick test_candidates_respect_c1;
        ] );
      ( "a-infinity",
        [
          Alcotest.test_case "valid outputs" `Quick test_a_infinity_valid_outputs;
          Alcotest.test_case "deterministic" `Quick test_a_infinity_deterministic;
          Alcotest.test_case "respects symmetry" `Quick test_a_infinity_respects_symmetry;
          Alcotest.test_case "rejects bad instance" `Quick
            test_a_infinity_rejects_bad_instance;
          Alcotest.test_case "node-major order" `Quick test_a_infinity_node_major_also_valid;
        ] );
      ( "lifting",
        [
          Alcotest.test_case "figure 2" `Quick test_lifting_on_figure2;
          Alcotest.test_case "random lifts" `Quick test_lifting_on_random_lifts;
        ] );
      ( "a-star",
        [
          Alcotest.test_case "valid outputs" `Slow test_a_star_valid_outputs;
          Alcotest.test_case "derandomized 2-hop coloring" `Slow test_a_star_two_hop_solver;
          Alcotest.test_case "deterministic & symmetric" `Slow
            test_a_star_deterministic_and_symmetric;
          Alcotest.test_case "matching" `Slow test_a_star_matches_validity_on_matching;
          Alcotest.test_case "port outputs translated" `Slow
            test_port_outputs_translated;
          Alcotest.test_case "node-major order" `Slow test_a_star_node_major_order;
        ] );
      ( "decouple",
        [
          Alcotest.test_case "all stage-2 variants" `Quick test_decouple_all_stages;
          Alcotest.test_case "coloring, petersen" `Quick test_decouple_coloring_specific;
        ] );
      ( "literal-candidates",
        [
          Alcotest.test_case "agrees at large phase" `Slow
            test_literal_candidates_cross_check;
          Alcotest.test_case "superset at small phase" `Slow
            test_literal_candidates_small_phase;
        ] );
      ( "phase-lemmas",
        [
          Alcotest.test_case "Observation 1, Lemmas 6-7, prefix property" `Slow
            test_a_star_phase_lemmas;
        ] );
      ( "impossibility",
        [
          Alcotest.test_case "3-hop coloring not in GRAN" `Quick
            test_three_hop_coloring_not_gran;
        ] );
      ( "port-obliviousness",
        [
          Alcotest.test_case "multiset algorithms survive scrambling" `Quick
            test_port_scrambling_multiset_algorithms_survive;
          Alcotest.test_case "matching needs ports" `Quick
            test_port_scrambling_breaks_matching;
        ] );
      "properties", qcheck_tests;
    ]
