(* Tests for the wire layer: the frame codec (round-trips, truncation,
   bad-magic/version/type rejection, the payload size cap), the job spec
   codecs (binary and job-file text), address parsing, and the acceptance
   bar of the service mode — a loopback server over a Unix socket running
   two concurrent jobs whose streamed events, result text and exit code
   are byte-identical (modulo wall-clock fields) to the same jobs run
   in-process through the same runner. *)

module Frame = Anonet_net.Frame
module Job = Anonet_net.Job
module Addr = Anonet_net.Addr
module Runner = Anonet_net.Runner
module Server = Anonet_net.Server
module Client = Anonet_net.Client
module Obs = Anonet_obs.Obs
module Events = Anonet_obs.Events
module Run_error = Anonet_runtime.Run_error

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------- frame codec ---------- *)

let frame typ stream payload = { Frame.typ; stream; payload }

let frame_equal a b =
  a.Frame.typ = b.Frame.typ
  && a.Frame.stream = b.Frame.stream
  && String.equal a.Frame.payload b.Frame.payload

let test_frame_roundtrip_basic () =
  List.iter
    (fun f ->
      let s = Frame.encode f in
      match Frame.decode s ~off:0 with
      | Frame.Decoded (f', n) ->
        check "frame round-trips" true (frame_equal f f');
        check_int "consumed everything" (String.length s) n
      | Frame.Need_more _ | Frame.Malformed _ ->
        Alcotest.fail "expected a decoded frame")
    [ frame Frame.Submit 1 "payload";
      frame Frame.Cancel 0xFFFF_FFFF "";
      frame Frame.Event 7 "{\"ts\":1}";
      frame Frame.Result 2 "\x00text";
      frame Frame.Error 3 "\x09diverged";
    ]

let test_frame_decode_at_offset () =
  let a = Frame.encode (frame Frame.Event 1 "first") in
  let b = Frame.encode (frame Frame.Result 2 "\x00second") in
  match Frame.decode (a ^ b) ~off:(String.length a) with
  | Frame.Decoded (f, n) ->
    check "decodes the second frame" true
      (frame_equal f (frame Frame.Result 2 "\x00second"));
    check_int "consumed b" (String.length b) n
  | _ -> Alcotest.fail "expected the second frame"

let test_frame_rejections () =
  let good = Frame.encode (frame Frame.Submit 1 "x") in
  let patch i c =
    let b = Bytes.of_string good in
    Bytes.set b i c;
    Bytes.unsafe_to_string b
  in
  (match Frame.decode (patch 0 'B') ~off:0 with
  | Frame.Malformed Frame.Bad_magic -> ()
  | _ -> Alcotest.fail "bad magic not rejected");
  (match Frame.decode (patch 4 '\x02') ~off:0 with
  | Frame.Malformed (Frame.Bad_version 2) -> ()
  | _ -> Alcotest.fail "bad version not rejected");
  (match Frame.decode (patch 5 '\x63') ~off:0 with
  | Frame.Malformed (Frame.Bad_type 0x63) -> ()
  | _ -> Alcotest.fail "bad type not rejected");
  (* a declared length over the cap is rejected from the header alone,
     before any payload arrives *)
  let b = Bytes.of_string good in
  Bytes.set_int32_be b 10 (Int32.of_int (Frame.max_payload + 1));
  (match Frame.decode (Bytes.unsafe_to_string b) ~off:0 with
  | Frame.Malformed (Frame.Oversized n) ->
    check_int "reports the declared size" (Frame.max_payload + 1) n
  | _ -> Alcotest.fail "oversized frame not rejected");
  match Frame.encode (frame Frame.Submit 1 (String.make (Frame.max_payload + 1) 'a')) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode accepted an oversized payload"

let qcheck_frame_roundtrip =
  QCheck.Test.make ~name:"frame encode/decode round-trips" ~count:300
    QCheck.(triple (int_range 1 5) (int_range 0 0xFFFF) string)
    (fun (t, stream, payload) ->
      let typ =
        match t with
        | 1 -> Frame.Submit
        | 2 -> Frame.Cancel
        | 3 -> Frame.Event
        | 4 -> Frame.Result
        | _ -> Frame.Error
      in
      let f = frame typ stream payload in
      let s = Frame.encode f in
      match Frame.decode s ~off:0 with
      | Frame.Decoded (f', n) -> frame_equal f f' && n = String.length s
      | _ -> false)

let qcheck_frame_truncation =
  (* No strict prefix of a valid frame ever decodes or errors: the decoder
     always asks for more bytes, and never more than the true size. *)
  QCheck.Test.make ~name:"truncated frames ask for more, never decode"
    ~count:300
    QCheck.(pair small_string (int_range 0 1000))
    (fun (payload, cut) ->
      let s = Frame.encode (frame Frame.Event 3 payload) in
      let cut = cut mod String.length s in
      match Frame.decode (String.sub s 0 cut) ~off:0 with
      | Frame.Need_more n -> n <= String.length s
      | Frame.Decoded _ | Frame.Malformed _ -> false)

(* ---------- job codec ---------- *)

let test_job_roundtrip () =
  let job =
    {
      Job.kind = Job.Solve;
      pairs =
        [ "graph", "cycle:6"; "problem", "2hop"; "seed", "5";
          "faults", "loss=0.2,seed=21"; "empty", ""; "binary", "\x00\xff=\n";
        ];
    }
  in
  (match Job.decode (Job.encode job) with
  | Ok job' -> check "binary round-trip" true (job = job')
  | Error m -> Alcotest.fail m);
  match Job.of_text (Job.to_text job) with
  | Ok job' ->
    check "text round-trip (text-safe pairs)" true
      (List.filter (fun (k, _) -> k <> "binary" && k <> "empty") job'.Job.pairs
      = List.filter (fun (k, _) -> k <> "binary" && k <> "empty") job.Job.pairs)
  | Error m -> Alcotest.fail m

let test_job_text_parses () =
  match
    Job.of_text
      "# a job\nkind=solve\n\nproblem = 2hop\ngraph=cycle:6\nfaults=loss=0.2,seed=1\n"
  with
  | Error m -> Alcotest.fail m
  | Ok job ->
    check "kind" true (job.Job.kind = Job.Solve);
    check_string "spaces trimmed" "2hop" (Option.get (Job.get job "problem"));
    check_string "value keeps its own '='" "loss=0.2,seed=1"
      (Option.get (Job.get job "faults"))

let test_job_rejects () =
  check "missing kind" true (Result.is_error (Job.of_text "problem=mis\n"));
  check "unknown kind" true (Result.is_error (Job.of_text "kind=frobnicate\n"));
  check "no equals" true (Result.is_error (Job.of_text "kind=solve\nnonsense\n"));
  check "empty binary" true (Result.is_error (Job.decode ""));
  check "bad kind code" true (Result.is_error (Job.decode "\x7f\x00\x00"));
  let s = Job.encode { Job.kind = Job.Solve; pairs = [ "a", "b" ] } in
  check "truncated binary" true
    (Result.is_error (Job.decode (String.sub s 0 (String.length s - 1))));
  check "trailing garbage" true (Result.is_error (Job.decode (s ^ "x")))

let qcheck_job_roundtrip =
  QCheck.Test.make ~name:"job binary codec round-trips" ~count:200
    QCheck.(small_list (pair small_string string))
    (fun pairs ->
      let job = { Job.kind = Job.Experiment; pairs } in
      match Job.decode (Job.encode job) with
      | Ok job' -> job = job'
      | Error _ -> false)

(* ---------- addresses ---------- *)

let test_addr_parse () =
  check "unix" true
    (Addr.of_string "unix:/tmp/x.sock" = Ok (Addr.Unix_sock "/tmp/x.sock"));
  check "tcp" true
    (Addr.of_string "tcp:127.0.0.1:9000" = Ok (Addr.Tcp ("127.0.0.1", 9000)));
  check "bad scheme" true (Result.is_error (Addr.of_string "http:x"));
  check "bad port" true (Result.is_error (Addr.of_string "tcp:h:notaport"));
  check "empty unix path" true (Result.is_error (Addr.of_string "unix:"))

(* ---------- run error net band ---------- *)

let test_net_error_codes () =
  check_int "protocol = 10" 10
    (Run_error.exit_code (Run_error.Net (Run_error.Protocol { message = "m" })));
  check_int "rejected = 11" 11
    (Run_error.exit_code (Run_error.Net (Run_error.Rejected { message = "m" })));
  check_int "connection = 12" 12
    (Run_error.exit_code (Run_error.Net (Run_error.Connection { message = "m" })))

(* ---------- loopback integration ---------- *)

(* Strip the wall-clock fields ("ts" timestamps, "ns" span durations)
   from an NDJSON line; everything else must match byte for byte. *)
let scrub line =
  let drop_num_field key line =
    let pat = Printf.sprintf "\"%s\":" key in
    let plen = String.length pat and n = String.length line in
    let rec find i =
      if i + plen > n then None
      else if String.sub line i plen = pat then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> line
    | Some i ->
      let j = ref (i + plen) in
      while
        !j < n && (match line.[!j] with '0' .. '9' | '-' | '.' -> true | _ -> false)
      do
        incr j
      done;
      let i, j =
        if !j < n && line.[!j] = ',' then (i, !j + 1) (* leading field *)
        else if i > 0 && line.[i - 1] = ',' then (i - 1, !j)
        else (i, !j)
      in
      String.sub line 0 i ^ String.sub line j (n - j)
  in
  drop_num_field "ts" (drop_num_field "ns" line)

let solve_job seed =
  {
    Job.kind = Job.Solve;
    pairs =
      [ "problem", "2hop"; "graph", "cycle:6"; "seed", string_of_int seed;
        "faults", "loss=0.2,seed=21"; "retransmit", "true";
      ];
  }

let run_local job =
  let lines = ref [] in
  let obs = Obs.make ~events:(Events.ndjson_lines (fun l -> lines := l :: !lines)) () in
  let outcome = Runner.execute ~obs job in
  (outcome, List.rev_map scrub !lines)

let with_server ?(domains = 2) ?max_queue f =
  let path = Filename.temp_file "anonet-test" ".sock" in
  Sys.remove path;
  match Server.start ~domains ?max_queue (Addr.Unix_sock path) with
  | Error m -> Alcotest.fail ("server did not start: " ^ m)
  | Ok server ->
    Fun.protect
      ~finally:(fun () -> Server.stop server)
      (fun () -> f (Addr.Unix_sock path))

let submit_collecting addr job =
  let lines = ref [] in
  let outcome = Client.submit addr job ~on_event:(fun l -> lines := l :: !lines) in
  (outcome, List.rev_map scrub !lines)

let test_loopback_two_concurrent_jobs () =
  let job_a = solve_job 5 and job_b = solve_job 42 in
  let expected_a = run_local job_a and expected_b = run_local job_b in
  with_server @@ fun addr ->
  (* two clients in flight at once, each on its own connection *)
  let result_b = ref None in
  let thread =
    Thread.create (fun () -> result_b := Some (submit_collecting addr job_b)) ()
  in
  let got_a = submit_collecting addr job_a in
  Thread.join thread;
  let got_b = Option.get !result_b in
  let check_job name (expected_outcome, expected_lines) (outcome, lines) =
    check_int (name ^ ": exit code") expected_outcome.Runner.code
      outcome.Runner.code;
    check_string (name ^ ": stdout text") expected_outcome.Runner.out
      outcome.Runner.out;
    check_int (name ^ ": event count") (List.length expected_lines)
      (List.length lines);
    List.iter2 (check_string (name ^ ": event line")) expected_lines lines
  in
  check_job "job a" expected_a got_a;
  check_job "job b" expected_b got_b

let test_loopback_failure_code () =
  (* a diverging job must come back with the same structured exit code the
     in-process run maps to (9) *)
  let job =
    {
      Job.kind = Job.Solve;
      pairs =
        [ "problem", "2hop"; "graph", "cycle:6"; "seed", "5";
          "faults", "loss=1.0,seed=3"; "retransmit", "true"; "divergence", "2.";
        ];
    }
  in
  let expected, _ = run_local job in
  check_int "local run diverges" 9 expected.Runner.code;
  with_server @@ fun addr ->
  let outcome, _ = submit_collecting addr job in
  check_int "remote exit code" expected.Runner.code outcome.Runner.code;
  check_string "remote diagnostic" expected.Runner.err outcome.Runner.err

let test_loopback_bad_job_rejected () =
  with_server @@ fun addr ->
  let outcome, _ =
    submit_collecting addr
      { Job.kind = Job.Solve; pairs = [ "problem", "mis"; "graph", "nope:1" ] }
  in
  check_int "rejected code" 11 outcome.Runner.code;
  check "message names the spec" true
    (let m = outcome.Runner.err in
     String.length m > 0 && m <> "cancelled")

let test_loopback_queue_full () =
  (* max_queue 0 rejects every submit before it reaches a worker *)
  with_server ~max_queue:0 @@ fun addr ->
  let outcome, _ = submit_collecting addr (solve_job 5) in
  check_int "busy code" 11 outcome.Runner.code

(* A raw client socket, for tests that speak frames directly. *)
let with_raw_conn addr f =
  let domain, sa = Result.get_ok (Addr.resolve addr) in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd sa;
      f fd)

let test_loopback_garbage_rejected () =
  with_server @@ fun addr ->
  with_raw_conn addr @@ fun fd ->
  let garbage = "GET / HTTP/1.1\r\n\r\n" in
  ignore (Unix.write_substring fd garbage 0 (String.length garbage));
  match Frame.read fd with
  | Ok (Some { Frame.typ = Frame.Error; payload; _ }) ->
    check_int "protocol error code" 10 (Char.code payload.[0])
  | _ -> Alcotest.fail "expected an error frame for garbage bytes"

(* Skips event frames; returns the result/error frame closing [stream]. *)
let await_final fd stream =
  let rec go () =
    match Frame.read fd with
    | Ok (Some { Frame.typ = Frame.Event; _ }) -> go ()
    | Ok (Some ({ Frame.typ = Frame.Result | Frame.Error; stream = s; _ } as f))
      when s = stream -> f
    | _ -> Alcotest.fail "connection died before the stream's final frame"
  in
  go ()

let test_stream_reuse_after_stale_cancel () =
  (* cancels for streams that never existed, or that already finished,
     must be no-ops: they must not poison a later submit reusing the id *)
  with_server @@ fun addr ->
  with_raw_conn addr @@ fun fd ->
  Frame.write fd { Frame.typ = Frame.Cancel; stream = 7; payload = "" };
  Frame.write fd
    { Frame.typ = Frame.Submit; stream = 7; payload = Job.encode (solve_job 5) };
  let first = await_final fd 7 in
  check "pre-submit cancel did not poison the stream" true
    (first.Frame.typ = Frame.Result);
  Frame.write fd { Frame.typ = Frame.Cancel; stream = 7; payload = "" };
  Frame.write fd
    { Frame.typ = Frame.Submit; stream = 7; payload = Job.encode (solve_job 42) };
  let second = await_final fd 7 in
  check "stream id is reusable after its final frame" true
    (second.Frame.typ = Frame.Result)

let test_duplicate_stream_rejected () =
  (* two submits on the same still-in-flight stream: the second is a
     protocol error, the first still completes normally *)
  with_server @@ fun addr ->
  with_raw_conn addr @@ fun fd ->
  let submit seed =
    Frame.write fd
      { Frame.typ = Frame.Submit; stream = 3; payload = Job.encode (solve_job seed) }
  in
  submit 5;
  submit 42;
  (* per-connection frames are FIFO: the duplicate's rejection (enqueued
     by the reader) precedes the first job's result (enqueued later by a
     worker) *)
  let saw_dup = ref false in
  let rec go () =
    match Frame.read fd with
    | Ok (Some { Frame.typ = Frame.Error; stream = 3; payload }) ->
      check_int "duplicate rejected as protocol error" 10
        (Char.code payload.[0]);
      saw_dup := true;
      go ()
    | Ok (Some { Frame.typ = Frame.Result; stream = 3; _ }) -> ()
    | Ok (Some _) -> go ()
    | _ -> Alcotest.fail "connection died before the job's result"
  in
  go ();
  check "saw the duplicate-stream rejection" true !saw_dup

let test_client_connection_refused () =
  let outcome =
    Client.submit
      (Addr.Unix_sock "/tmp/anonet-no-such-socket.sock")
      (solve_job 1)
      ~on_event:(fun _ -> ())
  in
  check_int "connection code" 12 outcome.Runner.code

(* ---------- suite ---------- *)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "anonet_net"
    [
      ( "frame",
        [ t "round-trips" test_frame_roundtrip_basic;
          t "decodes at an offset" test_frame_decode_at_offset;
          t "rejects bad magic/version/type/size" test_frame_rejections;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ qcheck_frame_roundtrip; qcheck_frame_truncation ] );
      ( "job",
        [ t "round-trips" test_job_roundtrip;
          t "parses job files" test_job_text_parses;
          t "rejects malformed specs" test_job_rejects;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ qcheck_job_roundtrip ] );
      ("addr", [ t "parses" test_addr_parse ]);
      ("run-error", [ t "net band codes" test_net_error_codes ]);
      ( "loopback",
        [ t "two concurrent jobs byte-identical" test_loopback_two_concurrent_jobs;
          t "failure code survives the wire" test_loopback_failure_code;
          t "bad job rejected" test_loopback_bad_job_rejected;
          t "queue full rejected" test_loopback_queue_full;
          t "garbage bytes rejected" test_loopback_garbage_rejected;
          t "stale cancel does not poison stream reuse"
            test_stream_reuse_after_stale_cancel;
          t "duplicate in-flight stream rejected" test_duplicate_stream_rejected;
          t "connection refused reported" test_client_connection_refused;
        ] );
    ]
