(* Tests for the graph substrate: Bits, Label, Graph, Gen, Lift, Iso,
   Encode, Props. *)

open Anonet_graph

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* ---------- Bits ---------- *)

let test_bits_roundtrip () =
  let b = Bits.of_string "10110" in
  Alcotest.(check string) "to_string" "10110" (Bits.to_string b);
  check_int "length" 5 (Bits.length b);
  check "get 0" true (Bits.get b 0);
  check "get 1" false (Bits.get b 1);
  Alcotest.(check (list bool))
    "to_list" [ true; false; true; true; false ] (Bits.to_list b);
  Alcotest.(check string)
    "of_list" "10110"
    (Bits.to_string (Bits.of_list [ true; false; true; true; false ]))

let test_bits_order () =
  let b s = Bits.of_string s in
  check "shorter first" true (Bits.compare (b "11") (b "000") < 0);
  check "lex within length" true (Bits.compare (b "01") (b "10") < 0);
  check "equal" true (Bits.compare (b "0101") (b "0101") = 0);
  check "lex order prefix" true (Bits.compare_lex (b "01") (b "011") < 0);
  check "lex order" true (Bits.compare_lex (b "011") (b "10") < 0)

let test_bits_prefix () =
  let b s = Bits.of_string s in
  check "empty prefix" true (Bits.is_prefix ~prefix:Bits.empty (b "01"));
  check "proper prefix" true (Bits.is_prefix ~prefix:(b "01") (b "0110"));
  check "not prefix" false (Bits.is_prefix ~prefix:(b "11") (b "0110"));
  check "longer not prefix" false (Bits.is_prefix ~prefix:(b "0110") (b "01"))

let test_bits_int () =
  check_int "to_int" 5 (Bits.to_int (Bits.of_string "101"));
  Alcotest.(check string) "of_int" "0101" (Bits.to_string (Bits.of_int ~width:4 5));
  let all = List.of_seq (Bits.enumerate 3) in
  check_int "enumerate count" 8 (List.length all);
  Alcotest.(check string) "enumerate first" "000" (Bits.to_string (List.hd all));
  Alcotest.(check string)
    "enumerate last" "111"
    (Bits.to_string (List.nth all 7));
  (* enumerate is sorted in lexicographic order *)
  let sorted = List.sort Bits.compare_lex all in
  check "enumerate sorted" true (List.equal Bits.equal all sorted)

let test_bits_concat_take () =
  let b s = Bits.of_string s in
  Alcotest.(check string) "concat" "0110" (Bits.to_string (Bits.concat (b "01") (b "10")));
  Alcotest.(check string) "take" "01" (Bits.to_string (Bits.take (b "0110") 2));
  Alcotest.(check string) "zero" "000" (Bits.to_string (Bits.zero 3))

(* ---------- Label ---------- *)

let test_label_order_and_encode () =
  let open Label in
  let labels =
    [ Unit; Bool false; Bool true; Int (-1); Int 7; Str "a"; Str "b";
      Bits (Anonet_graph.Bits.of_string "01"); Pair (Int 1, Str "x");
      List [ Int 1; Int 2 ] ]
  in
  (* compare is a total order: antisymmetric and transitive on this sample *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = compare a b and c2 = compare b a in
          check "antisymmetry" true (Stdlib.compare (c1 > 0) (c2 < 0) = 0 || c1 = 0))
        labels)
    labels;
  (* encode is injective on this sample *)
  let encodings = List.map encode labels in
  check_int "encodings distinct" (List.length labels)
    (List.length (List.sort_uniq String.compare encodings));
  (* encode respects equality *)
  check "equal encode" true
    (String.equal (encode (Pair (Int 1, Str "x"))) (encode (Pair (Int 1, Str "x"))))

let test_label_projections () =
  let open Label in
  let p = pair (Int 1) (Str "s") in
  check "fst" true (equal (fst p) (Int 1));
  check "snd" true (equal (snd p) (Str "s"));
  check_int "to_int" 3 (to_int (Int 3));
  check "to_bool" true (to_bool (Bool true));
  Alcotest.check_raises "fst of non-pair"
    (Invalid_argument "Label.fst: not a pair: 3") (fun () -> ignore (fst (Int 3)))

(* ---------- Graph ---------- *)

let test_graph_basics () =
  let g = Gen.cycle 5 in
  check_int "n" 5 (Graph.n g);
  check_int "edges" 5 (Graph.num_edges g);
  check_int "degree" 2 (Graph.degree g 0);
  check "has_edge" true (Graph.has_edge g 0 1);
  check "has_edge wrap" true (Graph.has_edge g 0 4);
  check "no self edge" false (Graph.has_edge g 0 0);
  check "no chord" false (Graph.has_edge g 0 2)

let test_graph_ports () =
  let g = Gen.cycle 5 in
  (* Ports are sorted by neighbor index. *)
  check_int "port 0 of node 0" 1 (Graph.neighbor g 0 0);
  check_int "port 1 of node 0" 4 (Graph.neighbor g 0 1);
  check_int "port_to" 1 (Graph.port_to g 0 4);
  (* port/reverse-port consistency *)
  Graph.iter_nodes g ~f:(fun v ->
      Array.iteri
        (fun p u ->
          let q = Graph.port_to g u v in
          check_int "reverse port round-trip" v (Graph.neighbor g u q);
          check_int "forward port" u (Graph.neighbor g v p))
        (Graph.neighbors g v))

let test_graph_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "self loop rejected" true
    (raises (fun () -> Graph.unlabeled ~n:2 ~edges:[ 0, 0 ]));
  check "duplicate rejected" true
    (raises (fun () -> Graph.unlabeled ~n:2 ~edges:[ 0, 1; 1, 0 ]));
  check "out of range rejected" true
    (raises (fun () -> Graph.unlabeled ~n:2 ~edges:[ 0, 5 ]));
  check "bad label count rejected" true
    (raises (fun () -> Graph.create ~n:2 ~edges:[] ~labels:[| Label.Unit |]))

let test_graph_relabel () =
  let g = Gen.cycle 3 in
  let g' = Graph.relabel g (fun v -> Label.Int v) in
  check "label" true (Label.equal (Graph.label g' 2) (Label.Int 2));
  let z = Graph.zip_labels g' [| Label.Str "a"; Label.Str "b"; Label.Str "c" |] in
  check "zip" true
    (Label.equal (Graph.label z 1) (Label.Pair (Label.Int 1, Label.Str "b")))

let test_permute_ports () =
  let g = Gen.cycle 4 in
  let perms = Array.init 4 (fun _ -> [| 1; 0 |]) in
  let g' = Graph.permute_ports g perms in
  check_int "swapped port" (Graph.neighbor g 0 1) (Graph.neighbor g' 0 0);
  check_int "swapped port other" (Graph.neighbor g 0 0) (Graph.neighbor g' 0 1)

(* ---------- Gen ---------- *)

let connected_simple name g =
  check (name ^ " connected") true (Props.is_connected g)

let test_generators () =
  connected_simple "cycle" (Gen.cycle 7);
  connected_simple "path" (Gen.path 6);
  connected_simple "complete" (Gen.complete 5);
  connected_simple "star" (Gen.star 4);
  connected_simple "wheel" (Gen.wheel 5);
  connected_simple "bipartite" (Gen.complete_bipartite 2 3);
  connected_simple "grid" (Gen.grid 3 4);
  connected_simple "torus" (Gen.torus 3 3);
  connected_simple "hypercube" (Gen.hypercube 3);
  connected_simple "petersen" (Gen.petersen ());
  connected_simple "binary tree" (Gen.binary_tree 4);
  check_int "petersen regular" 3 (Graph.max_degree (Gen.petersen ()));
  check_int "grid size" 12 (Graph.n (Gen.grid 3 4));
  check_int "hypercube edges" 12 (Graph.num_edges (Gen.hypercube 3))

let test_new_families () =
  let circ = Gen.circulant 8 [ 1; 3 ] in
  check "circulant connected" true (Props.is_connected circ);
  check_int "circulant 4-regular" 4 (Graph.max_degree circ);
  (* circulants are vertex-transitive: a single view class when unlabeled *)
  check_int "circulant one view class" 1
    (Anonet_views.Refinement.run circ).Anonet_views.Refinement.num_classes;
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "disconnected circulant rejected" true
    (raises (fun () -> Gen.circulant 8 [ 2 ]));
  let lolli = Gen.lollipop 4 3 in
  check "lollipop connected" true (Props.is_connected lolli);
  check_int "lollipop size" 7 (Graph.n lolli);
  (* classes: the three non-attachment clique nodes are mutually symmetric;
     everything else is distinguished — 5 classes for lollipop 4 3 *)
  check_int "lollipop view classes" 5
    (Anonet_views.Refinement.run lolli).Anonet_views.Refinement.num_classes;
  let cat = Gen.caterpillar ~seed:3 9 in
  check "caterpillar connected" true (Props.is_connected cat);
  check_int "caterpillar is a tree" 8 (Graph.num_edges cat);
  let bar = Gen.barbell 4 in
  check "barbell connected" true (Props.is_connected bar);
  check_int "barbell size" 8 (Graph.n bar);
  (* mirror symmetry: the two bridge endpoints share a view class *)
  let r = Anonet_views.Refinement.run bar in
  check "bridge endpoints symmetric" true
    (r.Anonet_views.Refinement.classes.(3) = r.Anonet_views.Refinement.classes.(4))

let test_random_generators () =
  for seed = 0 to 4 do
    let t = Gen.random_tree ~seed 12 in
    check "tree connected" true (Props.is_connected t);
    check_int "tree edges" 11 (Graph.num_edges t);
    let r = Gen.random_connected ~seed 15 0.15 in
    check "gnp connected" true (Props.is_connected r);
    let reg = Gen.random_regular ~seed 10 3 in
    check "regular connected" true (Props.is_connected reg);
    Graph.iter_nodes reg ~f:(fun v -> check_int "regular degree" 3 (Graph.degree reg v))
  done

let test_determinism () =
  let g1 = Gen.random_connected ~seed:42 10 0.3 in
  let g2 = Gen.random_connected ~seed:42 10 0.3 in
  Alcotest.(check (list (pair int int))) "same edges" (Graph.edges g1) (Graph.edges g2)

(* ---------- Lift ---------- *)

let test_lift_figure2 () =
  (* Figure 2: C12 is a product of C6, which is a product of C3. *)
  let l12 = Lift.c12_over_c6 () in
  check_int "C12 size" 12 (Graph.n l12.Lift.graph);
  check "C12 connected" true (Props.is_connected l12.Lift.graph);
  check_int "C12 is a cycle" 2 (Graph.max_degree l12.Lift.graph);
  let l6 = Lift.c6_over_c3 () in
  check_int "C6 size" 6 (Graph.n l6.Lift.graph);
  check "C6 connected" true (Props.is_connected l6.Lift.graph);
  check_int "C6 is a cycle" 2 (Graph.max_degree l6.Lift.graph)

let test_lift_is_product () =
  let base = Gen.petersen () in
  let lift = Lift.random ~seed:7 base ~k:3 in
  check "factorizing map" true
    (Anonet_views.Factor.is_factorizing ~product:lift.Lift.graph ~factor:base
       ~map:lift.Lift.map)

let test_identity_lift_disconnected () =
  let l = Lift.identity (Gen.cycle 4) ~k:2 in
  check "disjoint copies" false (Props.is_connected l.Lift.graph)

(* ---------- Iso ---------- *)

let test_iso_positive () =
  let g = Gen.petersen () in
  (* relabel nodes by a permutation *)
  let perm = [| 3; 1; 4; 0; 5; 9; 2; 6; 8; 7 |] in
  let edges = List.map (fun (u, v) -> perm.(u), perm.(v)) (Graph.edges g) in
  let h = Graph.unlabeled ~n:10 ~edges in
  (match Iso.find g h with
   | None -> Alcotest.fail "petersen should be isomorphic to its permutation"
   | Some f -> check "verified" true (Iso.is_isomorphism g h f));
  check "equal" true (Iso.equal g h)

let test_iso_negative () =
  check "cycle vs path" false (Iso.equal (Gen.cycle 6) (Gen.path 6));
  check "different labels" false
    (Iso.equal (Gen.c6_figure1 ()) (Gen.cycle 6));
  (* same degree sequence, not isomorphic: C6 vs two triangles is out of
     scope (disconnected); use C6 vs K_{3,3}? different edge counts. Use
     prism vs Möbius–Kantor-like: C6 with chords *)
  let prism = Graph.unlabeled ~n:6 ~edges:[ 0,1; 1,2; 2,0; 3,4; 4,5; 5,3; 0,3; 1,4; 2,5 ] in
  let mobius = Graph.unlabeled ~n:6 ~edges:[ 0,1; 1,2; 2,3; 3,4; 4,5; 5,0; 0,3; 1,4; 2,5 ] in
  check "prism vs mobius" false (Iso.equal prism mobius)

let test_iso_labels_respected () =
  let g = Graph.relabel (Gen.cycle 4) (fun v -> Label.Int (v mod 2)) in
  let h = Graph.relabel (Gen.cycle 4) (fun v -> Label.Int ((v + 1) mod 2)) in
  (* rotation by 1 is a label-respecting isomorphism *)
  check "rotated labels iso" true (Iso.equal g h)

(* ---------- Encode ---------- *)

let test_encode_injective () =
  let g1 = Gen.cycle 4 in
  let g2 = Gen.path 4 in
  let id = [| 0; 1; 2; 3 |] in
  check "distinct graphs distinct encodings" false
    (String.equal (Encode.to_string g1 ~order:id) (Encode.to_string g2 ~order:id));
  check "same graph same encoding" true
    (String.equal (Encode.to_string g1 ~order:id) (Encode.to_string g1 ~order:id))

let test_encode_order_sensitivity () =
  let g = Gen.path 3 in
  let e1 = Encode.to_string g ~order:[| 0; 1; 2 |] in
  let e2 = Encode.to_string g ~order:[| 2; 1; 0 |] in
  (* path is symmetric: reversing the order gives the same encoding *)
  Alcotest.(check string) "symmetric order" e1 e2;
  let e3 = Encode.to_string g ~order:[| 1; 0; 2 |] in
  check "asymmetric order differs" false (String.equal e1 e3)

(* ---------- Props ---------- *)

let test_props_distances () =
  let g = Gen.cycle 6 in
  let d = Props.bfs_distances g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 2; 1 |] d;
  check_int "diameter" 3 (Props.diameter g);
  Alcotest.(check (list int)) "2-hop neighbors" [ 1; 2; 4; 5 ]
    (Props.k_hop_neighbors g 0 2)

let test_props_coloring_checks () =
  let c6 = Gen.c6_figure1 () in
  check "figure1 is 2-hop colored" true (Props.is_two_hop_colored c6);
  check "figure1 is not 3-hop colored" false
    (Props.is_k_hop_coloring c6 3 (Graph.label c6));
  let bad = Graph.relabel (Gen.cycle 6) (fun v -> Label.Int (v mod 2)) in
  check "2-coloring of C6 is not 2-hop" false (Props.is_two_hop_colored bad);
  check "but is 1-hop" true (Props.is_k_hop_coloring bad 1 (Graph.label bad))

let test_props_histogram () =
  Alcotest.(check (list (pair int int)))
    "star histogram" [ 1, 4; 4, 1 ]
    (Props.degree_histogram (Gen.star 4));
  Alcotest.(check int) "distinct labels" 3 (Props.distinct_labels (Gen.c6_figure1 ()))

(* ---------- Dot export ---------- *)

let test_dot_export () =
  let g = Gen.c6_figure1 () in
  let dot = Dot.of_graph ~name:"c6" g in
  let contains needle hay =
    let ln = String.length needle and lh = String.length hay in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  check "graph header" true (contains "graph c6 {" dot);
  check "node with label" true (contains "v0 [label=\"1\"]" dot);
  check "edge" true (contains "v0 -- v1;" dot);
  let l = Lift.c6_over_c3 () in
  let fdot =
    Dot.of_factorization ~product:l.Lift.graph ~factor:l.Lift.base ~map:l.Lift.map ()
  in
  check "product cluster" true (contains "cluster_product" fdot);
  check "factor cluster" true (contains "cluster_factor" fdot);
  check "map arrow" true (contains "p0 -- f0 [style=dashed" fdot)

(* ---------- Graph_io ---------- *)

let test_graph_io_roundtrip () =
  let g =
    Graph.create ~n:4
      ~edges:[ 0, 1; 1, 2; 2, 3; 3, 0 ]
      ~labels:
        [| Label.Int 7; Label.Unit; Label.Str "x"; Label.Bits (Bits.of_string "01") |]
  in
  let g' = Graph_io.of_string (Graph_io.to_string g) in
  check_int "same n" (Graph.n g) (Graph.n g');
  Alcotest.(check (list (pair int int))) "same edges" (Graph.edges g) (Graph.edges g');
  check "same labels" true (Array.for_all2 Label.equal (Graph.labels g) (Graph.labels g'))

let test_graph_io_parsing () =
  let g = Graph_io.of_string "# a square\nn 4\n\nnode 1 bool:true\nedge 0 1\nedge 1 2\nedge 2 3\nedge 0 3\n" in
  check_int "n" 4 (Graph.n g);
  check_int "edges" 4 (Graph.num_edges g);
  check "label parsed" true (Label.equal (Graph.label g 1) (Label.Bool true));
  check "default unit" true (Label.equal (Graph.label g 0) Label.Unit);
  let raises s = try ignore (Graph_io.of_string s); false with Invalid_argument _ -> true in
  check "missing n" true (raises "edge 0 1\n");
  check "bad directive" true (raises "n 2\nfoo\n");
  check "bad label" true (raises "n 2\nnode 0 frob:3\n");
  check "bad edge" true (raises "n 2\nedge 0 x\n")

let test_graph_io_files () =
  let path = Filename.temp_file "anonet" ".graph" in
  let g = Gen.c6_figure1 () in
  Graph_io.save path g;
  let g' = Graph_io.load path in
  Sys.remove path;
  check "file roundtrip" true (Iso.equal g g')

(* ---------- qcheck properties ---------- *)

let arb_small_graph =
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%f" seed n p)
    QCheck.Gen.(
      triple (int_bound 1000) (int_range 2 14) (float_bound_inclusive 0.5))

let prop_random_connected_simple =
  QCheck.Test.make ~name:"random_connected is connected and simple" ~count:100
    arb_small_graph (fun (seed, n, p) ->
      let g = Gen.random_connected ~seed n p in
      Props.is_connected g
      && List.for_all (fun (u, v) -> u <> v) (Graph.edges g)
      && Graph.n g = n)

let prop_lift_always_product =
  QCheck.Test.make ~name:"random lift is a product of its base" ~count:50
    QCheck.(pair (QCheck.make QCheck.Gen.(int_bound 1000)) (QCheck.make QCheck.Gen.(int_range 2 3)))
    (fun (seed, k) ->
      let base = Gen.random_hamiltonian ~seed:(seed + 1) 6 0.4 in
      let lift = Lift.random ~seed base ~k in
      Anonet_views.Factor.is_factorizing ~product:lift.Lift.graph ~factor:base
        ~map:lift.Lift.map)

let prop_bits_order_total =
  QCheck.Test.make ~name:"Bits.compare is a total order" ~count:200
    QCheck.(triple (list bool) (list bool) (list bool))
    (fun (a, b, c) ->
      let ba = Bits.of_list a and bb = Bits.of_list b and bc = Bits.of_list c in
      let sgn x = Stdlib.compare x 0 in
      (* antisymmetry *)
      sgn (Bits.compare ba bb) = -sgn (Bits.compare bb ba)
      (* transitivity spot check *)
      && (not (Bits.compare ba bb <= 0 && Bits.compare bb bc <= 0)
          || Bits.compare ba bc <= 0))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_connected_simple; prop_lift_always_product; prop_bits_order_total ]

let () =
  Alcotest.run "anonet_graph"
    [
      ( "bits",
        [
          Alcotest.test_case "roundtrip" `Quick test_bits_roundtrip;
          Alcotest.test_case "order" `Quick test_bits_order;
          Alcotest.test_case "prefix" `Quick test_bits_prefix;
          Alcotest.test_case "ints" `Quick test_bits_int;
          Alcotest.test_case "concat/take" `Quick test_bits_concat_take;
        ] );
      ( "label",
        [
          Alcotest.test_case "order & encode" `Quick test_label_order_and_encode;
          Alcotest.test_case "projections" `Quick test_label_projections;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "ports" `Quick test_graph_ports;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "relabel" `Quick test_graph_relabel;
          Alcotest.test_case "permute ports" `Quick test_permute_ports;
        ] );
      ( "gen",
        [
          Alcotest.test_case "deterministic families" `Quick test_generators;
          Alcotest.test_case "circulant/lollipop/caterpillar/barbell" `Quick
            test_new_families;
          Alcotest.test_case "random families" `Quick test_random_generators;
          Alcotest.test_case "seeded determinism" `Quick test_determinism;
        ] );
      ( "lift",
        [
          Alcotest.test_case "figure 2 cycles" `Quick test_lift_figure2;
          Alcotest.test_case "lift is product" `Quick test_lift_is_product;
          Alcotest.test_case "identity lift disconnected" `Quick
            test_identity_lift_disconnected;
        ] );
      ( "iso",
        [
          Alcotest.test_case "positive" `Quick test_iso_positive;
          Alcotest.test_case "negative" `Quick test_iso_negative;
          Alcotest.test_case "labels respected" `Quick test_iso_labels_respected;
        ] );
      ( "encode",
        [
          Alcotest.test_case "injective" `Quick test_encode_injective;
          Alcotest.test_case "order sensitivity" `Quick test_encode_order_sensitivity;
        ] );
      "dot", [ Alcotest.test_case "exports" `Quick test_dot_export ];
      ( "graph-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_graph_io_roundtrip;
          Alcotest.test_case "parsing" `Quick test_graph_io_parsing;
          Alcotest.test_case "files" `Quick test_graph_io_files;
        ] );
      ( "props",
        [
          Alcotest.test_case "distances" `Quick test_props_distances;
          Alcotest.test_case "coloring checks" `Quick test_props_coloring_checks;
          Alcotest.test_case "histogram" `Quick test_props_histogram;
        ] );
      "properties", qcheck_tests;
    ]
