(* Flat-path equivalence suite: the executor's flat (arena) representation,
   the probe/commit stepping API and the flat simulation fast path must be
   byte-identical to the boxed reference — same outputs, rounds, message
   counts, dedup keys and search results — on fixed and random graphs,
   sequentially and under pools, and must fall back to (identical) boxed
   execution whenever fault or adversary plans are in play.  This is the
   contract [Algorithm.register_flat] documents. *)

module Gen = Anonet_graph.Gen
module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Bits = Anonet_graph.Bits
module Bitvec = Anonet_graph.Bitvec
module Algorithm = Anonet_runtime.Algorithm
module Executor = Anonet_runtime.Executor
module Run_ctx = Anonet_runtime.Run_ctx
module Faults = Anonet_runtime.Faults
module Adversary = Anonet_runtime.Adversary
module Pool = Anonet_parallel.Pool
open Anonet

let check = Alcotest.check

(* [find_flat] matches companions by the algorithm module's physical
   identity, so re-packing the same module is an exact boxed twin: same
   transition function, no flat companion. *)
let boxed_variant (algo : Algorithm.t) : Algorithm.t =
  let module A = (val algo) in
  (module struct
    include A
  end)

let algorithms =
  [ "rand-mis", Anonet_algorithms.Rand_mis.algorithm;
    "rand-2hop", Anonet_algorithms.Rand_two_hop.algorithm ]

let fixed_graphs () =
  [ "path2", Gen.label_with_ints (Gen.path 2);
    "cycle3", Gen.label_with_ints (Gen.cycle 3);
    "cycle5", Gen.label_with_ints (Gen.cycle 5);
    "petersen", Gen.label_with_ints (Gen.petersen ()) ]

(* Deterministic per-(seed, round, node) bits — a tiny splitmix so both
   executions see the same randomness without sharing state. *)
let bit_of ~seed ~round v =
  let z = ((seed * 747796405) + (round * 2891336453) + (v * 62089911)) land max_int in
  let z = z lxor (z lsr 17) in
  z land 1 = 1

let bits_vec ~seed ~round n =
  let vec = Bitvec.create n in
  for v = 0 to n - 1 do
    Bitvec.set vec v (bit_of ~seed ~round v)
  done;
  vec

let label_opt = Alcotest.testable (Fmt.option Label.pp) (Option.equal Label.equal)

let check_state_equal ~name flat boxed =
  check Alcotest.int (name ^ ": round") (Executor.Incremental.round boxed)
    (Executor.Incremental.round flat);
  check Alcotest.int (name ^ ": messages")
    (Executor.Incremental.messages boxed)
    (Executor.Incremental.messages flat);
  check Alcotest.bool (name ^ ": all_output")
    (Executor.Incremental.all_output boxed)
    (Executor.Incremental.all_output flat);
  check (Alcotest.array label_opt) (name ^ ": outputs")
    (Executor.Incremental.outputs boxed)
    (Executor.Incremental.outputs flat)

(* ---------- lockstep executor equivalence ---------- *)

let lockstep ~name ~seed ~rounds algo g =
  let n = Graph.n g in
  let flat = ref (Executor.Incremental.start algo g) in
  let boxed = ref (Executor.Incremental.start ~use_flat:false algo g) in
  check Alcotest.bool (name ^ ": flat path engaged") true
    (Executor.Incremental.is_flat !flat);
  check Alcotest.bool (name ^ ": boxed reference stayed boxed") false
    (Executor.Incremental.is_flat !boxed);
  check_state_equal ~name:(name ^ " r0") !flat !boxed;
  for r = 1 to rounds do
    let bits = bits_vec ~seed ~round:r n in
    flat := Executor.Incremental.step_vec !flat ~bits;
    boxed := Executor.Incremental.step_vec !boxed ~bits;
    check_state_equal ~name:(Printf.sprintf "%s r%d" name r) !flat !boxed
  done

let test_lockstep_fixed () =
  List.iter
    (fun (aname, algo) ->
      List.iter
        (fun (gname, g) ->
          lockstep ~name:(aname ^ "/" ^ gname) ~seed:11 ~rounds:8 algo g)
        (fixed_graphs ()))
    algorithms

let prop_lockstep_random =
  QCheck.Test.make ~name:"flat = boxed lockstep on random graphs" ~count:25
    (QCheck.make
       ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%f" seed n p)
       QCheck.Gen.(
         triple (int_bound 10_000) (int_range 2 6) (float_bound_inclusive 0.6)))
    (fun (seed, n, p) ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed n p) in
      List.iter
        (fun (aname, algo) ->
          lockstep
            ~name:(Printf.sprintf "%s/seed=%d" aname seed)
            ~seed ~rounds:6 algo g)
        algorithms;
      true)

(* ---------- probe/commit = step_vec ---------- *)

let probe_matches_step ~name ~seed ~rounds algo g =
  let n = Graph.n g in
  let exec = ref (Executor.Incremental.start algo g) in
  for r = 1 to rounds do
    let bits = bits_vec ~seed ~round:r n in
    let stepped = Executor.Incremental.step_vec !exec ~bits in
    let probe = Executor.Incremental.probe_vec !exec ~bits in
    (* The transient key must already identify the stepped state... *)
    check Alcotest.bool
      (Printf.sprintf "%s r%d: probe key = stepped key" name r)
      true
      (Executor.Incremental.Key.equal
         (Executor.Incremental.probe_key probe)
         (Executor.Incremental.dedup_key stepped));
    (* ...and committing must materialize that exact state, with a key
       that survives the next probe overwriting the shared buffer. *)
    let committed, stable = Executor.Incremental.probe_commit probe in
    check Alcotest.string
      (Printf.sprintf "%s r%d: committed fingerprint" name r)
      (Executor.Incremental.fingerprint stepped)
      (Executor.Incremental.fingerprint committed);
    let _ = Executor.Incremental.probe_vec !exec ~bits:(bits_vec ~seed:(seed + 1) ~round:r n) in
    check Alcotest.bool
      (Printf.sprintf "%s r%d: stable key survives next probe" name r)
      true
      (Executor.Incremental.Key.equal stable
         (Executor.Incremental.dedup_key stepped));
    check_state_equal ~name:(Printf.sprintf "%s r%d (commit)" name r) committed
      stepped;
    exec := stepped
  done

let test_probe_fixed () =
  List.iter
    (fun (aname, algo) ->
      List.iter
        (fun (gname, g) ->
          probe_matches_step
            ~name:(aname ^ "/" ^ gname)
            ~seed:23 ~rounds:6 algo g)
        (fixed_graphs ()))
    algorithms

let prop_probe_random =
  QCheck.Test.make ~name:"probe/commit = step_vec on random graphs" ~count:25
    (QCheck.make
       ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%f" seed n p)
       QCheck.Gen.(
         triple (int_bound 10_000) (int_range 2 6) (float_bound_inclusive 0.6)))
    (fun (seed, n, p) ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed n p) in
      List.iter
        (fun (aname, algo) ->
          probe_matches_step
            ~name:(Printf.sprintf "%s/seed=%d" aname seed)
            ~seed ~rounds:5 algo g)
        algorithms;
      true)

(* ---------- simulation fast path = boxed reference ---------- *)

let random_assignment ~seed n ~len =
  Array.init n (fun v ->
      Bits.of_list (List.init len (fun r -> bit_of ~seed ~round:r v)))

let check_sim_equal ~name flat_r boxed_r =
  check Alcotest.bool (name ^ ": successful")
    boxed_r.Simulation.successful flat_r.Simulation.successful;
  check Alcotest.int (name ^ ": rounds_run") boxed_r.Simulation.rounds_run
    flat_r.Simulation.rounds_run;
  check (Alcotest.array label_opt) (name ^ ": outputs") boxed_r.Simulation.outputs
    flat_r.Simulation.outputs

let prop_simulation_random =
  QCheck.Test.make ~name:"Simulation.run flat = boxed on random graphs"
    ~count:30
    (QCheck.make
       ~print:(fun (seed, n, len) -> Printf.sprintf "seed=%d n=%d len=%d" seed n len)
       QCheck.Gen.(triple (int_bound 10_000) (int_range 2 6) (int_range 1 8)))
    (fun (seed, n, len) ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed n 0.5) in
      let bits = random_assignment ~seed (Graph.n g) ~len in
      List.iter
        (fun (aname, algo) ->
          let flat_r = Simulation.run ~solver:algo g ~bits in
          let boxed_r = Simulation.run ~solver:(boxed_variant algo) g ~bits in
          check_sim_equal
            ~name:(Printf.sprintf "%s/seed=%d" aname seed)
            flat_r boxed_r)
        algorithms;
      true)

(* ---------- fault / adversary plans pin the boxed path ---------- *)

let injection_plans =
  [ ( "loss",
      (fun () -> Run_ctx.make ~faults:(Faults.with_loss 0.4 ~seed:7) ()),
      fun () -> Some (Faults.make (Faults.with_loss 0.4 ~seed:7)), None );
    ( "byzantine",
      (fun () ->
        Run_ctx.make ~adversary:(Adversary.byzantine [ 0 ] ~strength:0.5 ~seed:9) ()),
      fun () ->
        None, Some (Adversary.make (Adversary.byzantine [ 0 ] ~strength:0.5 ~seed:9))
    ) ]

(* A ctx carrying injection hooks must (a) force the boxed representation
   even for algorithms with flat companions and (b) behave exactly like
   explicit per-step injection with an injector built from the same plan —
   plans are pure descriptions with reproducible schedules.  Only rand-mis
   here: rand-2hop assumes reliable delivery and rejects lossy inboxes by
   design, in both representations. *)
let test_injection_pins_boxed () =
  let g = Gen.label_with_ints (Gen.cycle 5) in
  let n = Graph.n g in
  List.iter
    (fun (pname, make_ctx, make_hooks) ->
      List.iter
        (fun (aname, algo) ->
          let name = aname ^ "/" ^ pname in
          let via_ctx = ref (Executor.Incremental.start ~ctx:(make_ctx ()) algo g) in
          check Alcotest.bool (name ^ ": ctx run falls back to boxed") false
            (Executor.Incremental.is_flat !via_ctx);
          let faults, adversary = make_hooks () in
          let explicit =
            ref (Executor.Incremental.start ~use_flat:false algo g)
          in
          for r = 1 to 6 do
            let bits = Array.init n (bit_of ~seed:31 ~round:r) in
            via_ctx := Executor.Incremental.step !via_ctx ~bits;
            explicit :=
              Executor.Incremental.step ?faults ?adversary !explicit ~bits;
            check_state_equal
              ~name:(Printf.sprintf "%s r%d" name r)
              !via_ctx !explicit
          done)
        [ "rand-mis", Anonet_algorithms.Rand_mis.algorithm ])
    injection_plans

let test_flat_rejects_injection () =
  let g = Gen.label_with_ints (Gen.cycle 3) in
  let exec = Executor.Incremental.start Anonet_algorithms.Rand_mis.algorithm g in
  check Alcotest.bool "flat without hooks" true (Executor.Incremental.is_flat exec);
  Alcotest.check_raises "flat step refuses late injection"
    (Invalid_argument
       "Executor.step: faults/scramble/adversary require the boxed execution \
        path — pass them via the ctx given to start (or start ~use_flat:false)")
    (fun () ->
      ignore
        (Executor.Incremental.step
           ~faults:(Faults.make (Faults.with_loss 0.5 ~seed:3))
           exec
           ~bits:(Array.make 3 false)))

(* ---------- search results across pools 1/2/4 ---------- *)

let check_found_equal ~name flat_f boxed_f =
  match flat_f, boxed_f with
  | None, None -> ()
  | Some (ff : Min_search.found), Some (bf : Min_search.found) ->
    check Alcotest.int (name ^ ": assignment order") 0
      (Bit_assignment.compare_round_major ff.assignment bf.assignment);
    check Alcotest.int (name ^ ": states_explored") bf.states_explored
      ff.states_explored;
    check_sim_equal ~name ff.sim bf.sim
  | Some _, None | None, Some _ ->
    Alcotest.failf "%s: flat and boxed searches disagree on existence" name

let min_search_found ~ctx algo g =
  Min_search.minimal_successful ?ctx ~solver:algo g
    ~base:(Bit_assignment.empty (Graph.n g))
    ~len:(Min_search.At_most 8) ()

let test_search_pools () =
  let graphs =
    [ "path2", Gen.label_with_ints (Gen.path 2);
      "cycle4", Gen.label_with_ints (Gen.cycle 4);
      "cycle5", Gen.label_with_ints (Gen.cycle 5) ]
  in
  let algo = Anonet_algorithms.Rand_mis.algorithm in
  List.iter
    (fun (gname, g) ->
      let reference = min_search_found ~ctx:None (boxed_variant algo) g in
      let sequential = min_search_found ~ctx:None algo g in
      check_found_equal ~name:(gname ^ "/seq") sequential reference;
      List.iter
        (fun domains ->
          Pool.with_pool ~domains (fun p ->
              let ctx = Some (Run_ctx.make ~pool:p ()) in
              check_found_equal
                ~name:(Printf.sprintf "%s/pool%d" gname domains)
                (min_search_found ~ctx algo g)
                reference;
              check_found_equal
                ~name:(Printf.sprintf "%s/pool%d-boxed" gname domains)
                (min_search_found ~ctx (boxed_variant algo) g)
                reference))
        [ 1; 2; 4 ])
    graphs

let prop_search_random =
  QCheck.Test.make ~name:"flat search = boxed search on random graphs"
    ~count:10
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed 4 0.5) in
      let algo = Anonet_algorithms.Rand_mis.algorithm in
      let reference = min_search_found ~ctx:None (boxed_variant algo) g in
      check_found_equal
        ~name:(Printf.sprintf "seed=%d/seq" seed)
        (min_search_found ~ctx:None algo g)
        reference;
      Pool.with_pool ~domains:2 (fun p ->
          let ctx = Some (Run_ctx.make ~pool:p ()) in
          check_found_equal
            ~name:(Printf.sprintf "seed=%d/pool2" seed)
            (min_search_found ~ctx algo g)
            reference);
      true)

let () =
  Alcotest.run "flat"
    [
      ( "lockstep",
        [
          Alcotest.test_case "flat = boxed on fixed graphs" `Quick
            test_lockstep_fixed;
          QCheck_alcotest.to_alcotest prop_lockstep_random;
        ] );
      ( "probe",
        [
          Alcotest.test_case "probe/commit = step_vec on fixed graphs" `Quick
            test_probe_fixed;
          QCheck_alcotest.to_alcotest prop_probe_random;
        ] );
      ( "simulation",
        [ QCheck_alcotest.to_alcotest prop_simulation_random ] );
      ( "injection",
        [
          Alcotest.test_case "fault/adversary plans pin the boxed path" `Quick
            test_injection_pins_boxed;
          Alcotest.test_case "flat rejects late injection" `Quick
            test_flat_rejects_injection;
        ] );
      ( "search",
        [
          Alcotest.test_case "pools 1/2/4, flat = boxed" `Quick test_search_pools;
          QCheck_alcotest.to_alcotest prop_search_random;
        ] );
    ]
