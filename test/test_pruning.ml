(* Core-guided pruning: value-preservation and budget-parity tests.

   The pruned round-major search must be an *optimization*, never an
   approximation: the returned [found] record — assignment and
   simulation — is identical to the exhaustive search's on every
   instance, while [states_explored] only shrinks.  These tests pin that
   contract on fixed fixtures, on random connected graphs, across
   domain pools of 1/2/4, for both [At_most] and [Exactly] targets, and
   cross-check the minimal length against the node-major reference
   enumeration.  The budget-exhaustion scan additionally asserts the
   PR's truncation semantics: for every budget value, the pooled and
   sequential searches either both raise [Search_limit_exceeded] or
   both return the same minimal assignment (the in-budget lexicographic
   prefix is expanded identically at any [--jobs]). *)

open Anonet_graph
open Anonet
module Pool = Anonet_parallel.Pool
module Run_ctx = Anonet_runtime.Run_ctx
module Obs = Anonet_obs.Obs
module Metrics = Anonet_obs.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let pool_sizes = [ 1; 2; 4 ]

let assignment_equal a b =
  Array.length a = Array.length b && Array.for_all2 Bits.equal a b

(* Full identity, states included — for sequential-vs-pooled checks. *)
let found_equal (a : Min_search.found) (b : Min_search.found) =
  a.Min_search.states_explored = b.Min_search.states_explored
  && assignment_equal a.Min_search.assignment b.Min_search.assignment
  && a.Min_search.sim.Simulation.successful
     = b.Min_search.sim.Simulation.successful
  && a.Min_search.sim.Simulation.rounds_run
     = b.Min_search.sim.Simulation.rounds_run

(* Value identity, states ignored — for pruned-vs-exhaustive checks,
   where the whole point is that the state counts differ. *)
let found_value_equal (a : Min_search.found) (b : Min_search.found) =
  assignment_equal a.Min_search.assignment b.Min_search.assignment
  && a.Min_search.sim.Simulation.successful
     = b.Min_search.sim.Simulation.successful
  && a.Min_search.sim.Simulation.rounds_run
     = b.Min_search.sim.Simulation.rounds_run

let search ?pool ?max_states ~solver ~pruning ~len g =
  Min_search.minimal_successful ~solver g
    ~base:(Bit_assignment.empty (Graph.n g))
    ~order:Min_search.Round_major ?max_states ~pruning
    ~ctx:(Run_ctx.make ?pool ()) ~len ()

(* Asserts the pruned search's value identity and effort reduction on
   one (graph, solver, len) point; returns (pruned, exhaustive) state
   counts when the search succeeded. *)
let check_pruned_vs_exhaustive name ~solver ~len g =
  let pruned = search ~solver ~pruning:true ~len g in
  let exhaustive = search ~solver ~pruning:false ~len g in
  match pruned, exhaustive with
  | None, None -> None
  | Some p, Some e ->
    check (name ^ ": pruned value = exhaustive value") true
      (found_value_equal p e);
    check
      (Printf.sprintf "%s: pruned states (%d) <= exhaustive states (%d)" name
         p.Min_search.states_explored e.Min_search.states_explored)
      true
      (p.Min_search.states_explored <= e.Min_search.states_explored);
    Some (p.Min_search.states_explored, e.Min_search.states_explored)
  | Some _, None ->
    Alcotest.fail (name ^ ": pruned found an assignment exhaustive missed")
  | None, Some _ ->
    Alcotest.fail (name ^ ": pruning lost the minimal assignment")

let fixtures =
  [ "path-2", Gen.label_with_ints (Gen.path 2);
    "cycle-3", Gen.label_with_ints (Gen.cycle 3);
    "cycle-4", Gen.label_with_ints (Gen.cycle 4);
    "cycle-5", Gen.label_with_ints (Gen.cycle 5);
    "random-5", Gen.label_with_ints (Gen.random_connected ~seed:3 5 0.5);
  ]

let test_pruned_equals_exhaustive_rand_mis () =
  List.iter
    (fun (name, g) ->
      match
        check_pruned_vs_exhaustive ("rand-mis/" ^ name)
          ~solver:Anonet_algorithms.Rand_mis.algorithm
          ~len:(Min_search.At_most 16) g
      with
      | Some (p, e) ->
        (* The dead-coin canonicalization makes decided nodes provably
           insensitive, so every fixture must show a real reduction. *)
        check (Printf.sprintf "rand-mis/%s: strict reduction" name) true (p < e)
      | None -> Alcotest.fail ("rand-mis/" ^ name ^ ": no assignment found"))
    fixtures

let test_pruned_equals_exhaustive_two_hop () =
  List.iter
    (fun (name, g) ->
      ignore
        (check_pruned_vs_exhaustive ("two-hop/" ^ name)
           ~solver:Anonet_algorithms.Rand_two_hop.algorithm
           ~len:(Min_search.At_most 8) g))
    [ "path-2", Gen.label_with_ints (Gen.path 2);
      "cycle-3", Gen.label_with_ints (Gen.cycle 3);
      "cycle-4", Gen.label_with_ints (Gen.cycle 4) ]

let test_pruned_exactly () =
  (* [Exactly] disables the cross-level subsumption table but keeps the
     sensitivity cores; the value contract is the same.  Scan the exact
     lengths around the minimal one so both Some and None outcomes are
     exercised. *)
  let g = Gen.label_with_ints (Gen.cycle 4) in
  for l = 1 to 6 do
    ignore
      (check_pruned_vs_exhaustive
         (Printf.sprintf "rand-mis/cycle-4/exactly-%d" l)
         ~solver:Anonet_algorithms.Rand_mis.algorithm
         ~len:(Min_search.Exactly l) g)
  done

let test_pruned_vs_node_major () =
  (* The node-major enumeration uses a different total order, so only
     the minimal length is comparable — but it is exhaustive by
     construction, making it the reference the pruned search must not
     undershoot or overshoot. *)
  List.iter
    (fun (name, g) ->
      let rm =
        search ~solver:Anonet_algorithms.Rand_mis.algorithm ~pruning:true
          ~len:(Min_search.At_most 4) g
      in
      let nm =
        Min_search.minimal_successful
          ~solver:Anonet_algorithms.Rand_mis.algorithm g
          ~base:(Bit_assignment.empty (Graph.n g))
          ~order:Min_search.Node_major ~len:(Min_search.At_most 4) ()
      in
      match rm, nm with
      | Some rm, Some nm ->
        check_int
          (name ^ ": pruned minimal length = node-major minimal length")
          (Bit_assignment.max_length nm.Min_search.assignment)
          (Bit_assignment.max_length rm.Min_search.assignment)
      | None, None -> ()
      | _ -> Alcotest.fail (name ^ ": presence differs from node-major"))
    [ "path-2", Gen.label_with_ints (Gen.path 2);
      "cycle-3", Gen.label_with_ints (Gen.cycle 3);
      "cycle-4", Gen.label_with_ints (Gen.cycle 4) ]

let test_pruned_pools_identical () =
  (* The pooled pruned search must be bit-identical to the sequential
     pruned search — found record, states_explored included. *)
  List.iter
    (fun (name, g) ->
      let sequential =
        search ~solver:Anonet_algorithms.Rand_mis.algorithm ~pruning:true
          ~len:(Min_search.At_most 16) g
      in
      List.iter
        (fun domains ->
          Pool.with_pool ~domains (fun p ->
              let pooled =
                search ~pool:p ~solver:Anonet_algorithms.Rand_mis.algorithm
                  ~pruning:true ~len:(Min_search.At_most 16) g
              in
              match sequential, pooled with
              | Some a, Some b ->
                check
                  (Printf.sprintf "%s: pooled pruned identical (%d domains)"
                     name domains)
                  true (found_equal a b)
              | None, None -> ()
              | _ ->
                Alcotest.fail
                  (Printf.sprintf "%s: presence differs at %d domains" name
                     domains)))
        pool_sizes)
    fixtures

let prop_pruned_random =
  QCheck.Test.make ~name:"pruned = exhaustive on random graphs" ~count:12
    (QCheck.make
       ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%f" seed n p)
       QCheck.Gen.(
         triple (int_bound 10_000) (int_range 2 5) (float_bound_inclusive 0.6)))
    (fun (seed, n, p) ->
      let g = Gen.label_with_ints (Gen.random_connected ~seed n p) in
      let name = Printf.sprintf "random/seed=%d" seed in
      ignore
        (check_pruned_vs_exhaustive name
           ~solver:Anonet_algorithms.Rand_mis.algorithm
           ~len:(Min_search.At_most 8) g);
      let sequential =
        search ~solver:Anonet_algorithms.Rand_mis.algorithm ~pruning:true
          ~len:(Min_search.At_most 8) g
      in
      Pool.with_pool ~domains:2 (fun pl ->
          let pooled =
            search ~pool:pl ~solver:Anonet_algorithms.Rand_mis.algorithm
              ~pruning:true ~len:(Min_search.At_most 8) g
          in
          match sequential, pooled with
          | Some a, Some b ->
            check (name ^ ": pooled identical") true (found_equal a b)
          | None, None -> ()
          | _ -> Alcotest.fail (name ^ ": pooled presence differs"));
      true)

(* ---------- budget exhaustion: pooled = sequential at every budget --- *)

type budget_outcome =
  | Found of Min_search.found
  | Limit

let outcome_equal a b =
  match a, b with
  | Limit, Limit -> true
  | Found a, Found b -> found_equal a b
  | _ -> false

let budget_scan ~pruning ~budgets g =
  (* The reference: the unlimited minimal assignment.  Every in-budget
     success the scan returns must be exactly this assignment. *)
  let unlimited =
    match
      search ~solver:Anonet_algorithms.Rand_mis.algorithm ~pruning
        ~len:(Min_search.At_most 16) g
    with
    | Some f -> f
    | None -> Alcotest.fail "budget scan: unlimited search found nothing"
  in
  let run ?pool budget =
    match
      search ?pool ~max_states:budget
        ~solver:Anonet_algorithms.Rand_mis.algorithm ~pruning
        ~len:(Min_search.At_most 16) g
    with
    | Some f -> Found f
    | None -> Alcotest.fail "budget scan: lost the assignment"
    | exception Min_search.Search_limit_exceeded -> Limit
  in
  let truncated_returns = ref 0 in
  let limits = ref 0 in
  Pool.with_pool ~domains:1 @@ fun p1 ->
  Pool.with_pool ~domains:2 @@ fun p2 ->
  Pool.with_pool ~domains:4 @@ fun p4 ->
  List.iter
    (fun budget ->
      let sequential = run budget in
      (match sequential with
       | Limit -> incr limits
       | Found f ->
         check
           (Printf.sprintf "budget %d: returned the minimal assignment" budget)
           true
           (assignment_equal f.Min_search.assignment
              unlimited.Min_search.assignment);
         if budget < unlimited.Min_search.states_explored then begin
           (* The budget bit mid-level yet the in-budget prefix already
              held the winner: the early return must record the
              overflowing probe, exactly [budget + 1]. *)
           incr truncated_returns;
           check_int
             (Printf.sprintf "budget %d: truncated states accounting" budget)
             (budget + 1) f.Min_search.states_explored
         end);
      List.iter
        (fun (domains, p) ->
          check
            (Printf.sprintf "budget %d: pooled outcome identical (%d domains)"
               budget domains)
            true
            (outcome_equal sequential (run ~pool:p budget)))
        [ 1, p1; 2, p2; 4, p4 ])
    budgets;
  !truncated_returns, !limits

let test_budget_parity_scan_pruned () =
  (* cycle-3's pruned search explores 72 states; scanning every budget
     from 1 up crosses the raise region, the truncated-return region
     (minimal assignment inside the final partial level — the PR 9
     regression fixture), and the untruncated region. *)
  let g = Gen.label_with_ints (Gen.cycle 3) in
  let budgets = List.init 80 (fun i -> i + 1) in
  let truncated, limits = budget_scan ~pruning:true ~budgets g in
  check "scan exercised the raise region" true (limits > 0);
  check "scan exercised the truncated-return region" true (truncated > 0)

let test_budget_parity_scan_exhaustive () =
  (* Same scan with pruning off: the truncation semantics is a property
     of the search skeleton, not of the pruner. *)
  let g = Gen.label_with_ints (Gen.cycle 3) in
  let budgets = List.init 50 (fun i -> (5 * i) + 1) in
  let truncated, limits = budget_scan ~pruning:false ~budgets g in
  check "scan exercised the raise region" true (limits > 0);
  check "scan exercised the truncated-return region" true (truncated > 0)

let test_budget_exactly_always_raises () =
  (* [Exactly] targets never take the early return: an unexplored
     same-level completion could still be round-major smaller once
     padded, so only the exception is sound. *)
  let g = Gen.label_with_ints (Gen.cycle 4) in
  let run ?pool () =
    match
      search ?pool ~max_states:40
        ~solver:Anonet_algorithms.Rand_mis.algorithm ~pruning:true
        ~len:(Min_search.Exactly 6) g
    with
    | (Some _ | None) -> Alcotest.fail "Exactly under budget did not raise"
    | exception Min_search.Search_limit_exceeded -> ()
  in
  run ();
  List.iter
    (fun domains -> Pool.with_pool ~domains (fun p -> run ~pool:p ()))
    pool_sizes

(* ---------- Resumable: floor hardening ---------- *)

let resumable_handle () =
  Min_search.Resumable.create ~solver:Anonet_algorithms.Rand_mis.algorithm
    (Gen.label_with_ints (Gen.cycle 4))
    ~base:(Bit_assignment.empty 4) ()

let minimal_len () =
  let g = Gen.label_with_ints (Gen.cycle 4) in
  match
    search ~solver:Anonet_algorithms.Rand_mis.algorithm ~pruning:true
      ~len:(Min_search.At_most 16) g
  with
  | Some f -> Bit_assignment.max_length f.Min_search.assignment
  | None -> Alcotest.fail "no minimal assignment on cycle-4"

let test_resumable_floor_monotone () =
  let l = minimal_len () in
  check "fixture minimal length >= 2" true (l >= 2);
  let t = resumable_handle () in
  check_int "fresh floor" (-1) (Min_search.Resumable.floor t);
  for len = 0 to l - 1 do
    (match Min_search.Resumable.extend t ~len with
     | None -> ()
     | Some _ -> Alcotest.fail (Printf.sprintf "success below minimal (%d)" len));
    check_int
      (Printf.sprintf "floor raised to %d" len)
      len (Min_search.Resumable.floor t)
  done;
  let states_before = Min_search.Resumable.states_explored t in
  (* Floor-answered queries are free: no frontier work, no states. *)
  for len = 0 to l - 1 do
    (match Min_search.Resumable.extend t ~len with
     | None -> ()
     | Some _ -> Alcotest.fail "floor query returned a success")
  done;
  check_int "floor answers cost no states" states_before
    (Min_search.Resumable.states_explored t);
  (match Min_search.Resumable.extend t ~len:l with
   | Some f ->
     (* Identical to the cold Exactly search, cumulative states included. *)
     (match
        search ~solver:Anonet_algorithms.Rand_mis.algorithm ~pruning:true
          ~len:(Min_search.Exactly l)
          (Gen.label_with_ints (Gen.cycle 4))
      with
      | Some cold -> check "extend = cold Exactly search" true (found_equal f cold)
      | None -> Alcotest.fail "cold Exactly search found nothing")
   | None -> Alcotest.fail "extend at minimal length found nothing");
  (* A success does not raise the floor. *)
  check_int "floor unchanged by success" (l - 1) (Min_search.Resumable.floor t)

let test_resumable_floor_gap () =
  (* Jumping straight past several levels proves them all at once:
     every length at or below the proven floor answers None, even
     though the frontier never stopped at those levels. *)
  let l = minimal_len () in
  let t = resumable_handle () in
  (match Min_search.Resumable.extend t ~len:(l - 1) with
   | None -> ()
   | Some _ -> Alcotest.fail "success below minimal");
  check_int "floor covers the jumped levels" (l - 1)
    (Min_search.Resumable.floor t);
  for len = 0 to l - 1 do
    match Min_search.Resumable.extend t ~len with
    | None -> ()
    | Some _ -> Alcotest.fail "floor query returned a success"
  done

let test_resumable_below_level_without_floor () =
  (* Without a floor proof, a target strictly below the frontier is
     still unanswerable — the Invalid_argument contract is unchanged. *)
  let l = minimal_len () in
  let t = resumable_handle () in
  (match Min_search.Resumable.extend t ~len:l with
   | Some _ -> ()
   | None -> Alcotest.fail "extend at minimal length found nothing");
  check_int "no floor from a successful extend" (-1)
    (Min_search.Resumable.floor t);
  Alcotest.check_raises "below-level target rejected"
    (Invalid_argument "Min_search.Resumable.extend: target below explored level")
    (fun () -> ignore (Min_search.Resumable.extend t ~len:(l - 1)))

(* ---------- observability: gauge reset and the new counters ---------- *)

let test_frontier_gauge_reset () =
  let g = Gen.label_with_ints (Gen.cycle 4) in
  let runs =
    [ "success",
      (fun ctx ->
        ignore
          (Min_search.minimal_successful
             ~solver:Anonet_algorithms.Rand_mis.algorithm g
             ~base:(Bit_assignment.empty 4) ~ctx ~len:(Min_search.At_most 16)
             ()));
      "no-success",
      (fun ctx ->
        ignore
          (Min_search.minimal_successful
             ~solver:Anonet_algorithms.Rand_mis.algorithm g
             ~base:(Bit_assignment.empty 4) ~ctx ~len:(Min_search.At_most 1)
             ()));
      "limit",
      (fun ctx ->
        match
          Min_search.minimal_successful
            ~solver:Anonet_algorithms.Rand_mis.algorithm g
            ~base:(Bit_assignment.empty 4) ~ctx ~max_states:5
            ~len:(Min_search.Exactly 6) ()
        with
        | (Some _ | None) -> Alcotest.fail "expected Search_limit_exceeded"
        | exception Min_search.Search_limit_exceeded -> ());
    ]
  in
  List.iter
    (fun (name, run) ->
      let m = Metrics.create () in
      run (Run_ctx.make ~obs:(Obs.make ~metrics:m ()) ());
      check_int
        (name ^ ": frontier gauge reset on exit")
        0
        (Metrics.gauge_value (Metrics.gauge m "search.frontier")))
    runs

let test_pruning_counters () =
  let g = Gen.label_with_ints (Gen.cycle 4) in
  let run ~pruning =
    let m = Metrics.create () in
    let f =
      Min_search.minimal_successful
        ~solver:Anonet_algorithms.Rand_mis.algorithm g
        ~base:(Bit_assignment.empty 4) ~pruning
        ~ctx:(Run_ctx.make ~obs:(Obs.make ~metrics:m ()) ())
        ~len:(Min_search.At_most 16) ()
    in
    m, f
  in
  let m, f = run ~pruning:true in
  (match f with
   | Some f ->
     check_int "states counter mirrors the found record"
       f.Min_search.states_explored
       (Metrics.counter_value (Metrics.counter m "search.states_explored"))
   | None -> Alcotest.fail "no assignment found");
  check "pruned counter counts the skipped work" true
    (Metrics.counter_value (Metrics.counter m "search.pruned") > 0);
  check "sensitivity probes counted" true
    (Metrics.counter_value (Metrics.counter m "search.core_probes") > 0);
  let m, _ = run ~pruning:false in
  check_int "pruning off: nothing pruned" 0
    (Metrics.counter_value (Metrics.counter m "search.pruned"));
  check_int "pruning off: no probes" 0
    (Metrics.counter_value (Metrics.counter m "search.core_probes"))

let () =
  Alcotest.run "pruning"
    [ ( "value-preservation",
        [ Alcotest.test_case "rand-mis fixtures" `Quick
            test_pruned_equals_exhaustive_rand_mis;
          Alcotest.test_case "two-hop fixtures" `Quick
            test_pruned_equals_exhaustive_two_hop;
          Alcotest.test_case "Exactly targets" `Quick test_pruned_exactly;
          Alcotest.test_case "node-major reference" `Quick
            test_pruned_vs_node_major;
          Alcotest.test_case "pools identical" `Quick
            test_pruned_pools_identical;
          QCheck_alcotest.to_alcotest prop_pruned_random ] );
      ( "budget-parity",
        [ Alcotest.test_case "scan, pruned" `Quick
            test_budget_parity_scan_pruned;
          Alcotest.test_case "scan, exhaustive" `Quick
            test_budget_parity_scan_exhaustive;
          Alcotest.test_case "Exactly always raises" `Quick
            test_budget_exactly_always_raises ] );
      ( "resumable-floor",
        [ Alcotest.test_case "monotone floor" `Quick
            test_resumable_floor_monotone;
          Alcotest.test_case "floor gap" `Quick test_resumable_floor_gap;
          Alcotest.test_case "below level without floor" `Quick
            test_resumable_below_level_without_floor ] );
      ( "observability",
        [ Alcotest.test_case "frontier gauge reset" `Quick
            test_frontier_gauge_reset;
          Alcotest.test_case "pruning counters" `Quick test_pruning_counters ]
      ) ]
