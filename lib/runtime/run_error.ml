type net_failure =
  | Protocol of { message : string }
  | Rejected of { message : string }
  | Connection of { message : string }

type t =
  | Sync of Executor.failure
  | Async of Async.failure
  | Las_vegas of Las_vegas.failure
  | Net of net_failure

(* One numbering for both executors, the Las-Vegas harness, and the wire
   layer.  The synchronous and asynchronous tape exhaustions share a code
   on purpose: they mean the same thing (the prescribed tape ended before
   every node output) on different substrates.  Likewise
   [Las_vegas Network_dead] shares 4 with [All_nodes_crashed]: both mean
   the fault plan leaves no node running. *)
let exit_code = function
  | Sync (Executor.Max_rounds_exceeded _) -> 2
  | Sync (Executor.Tape_exhausted _) | Async (Async.Tape_exhausted _) -> 3
  | Sync (Executor.All_nodes_crashed _)
  | Las_vegas { Las_vegas.reason = Las_vegas.Network_dead; _ } -> 4
  | Async (Async.Event_limit_exceeded _) -> 5
  | Async (Async.Stalled _) -> 6
  | Las_vegas { Las_vegas.reason = Las_vegas.No_success; _ } -> 7
  | Las_vegas { Las_vegas.reason = Las_vegas.Gave_up; _ } -> 8
  | Las_vegas { Las_vegas.reason = Las_vegas.Diverged; _ } -> 9
  | Net (Protocol _) -> 10
  | Net (Rejected _) -> 11
  | Net (Connection _) -> 12

let pp fmt = function
  | Sync f -> Executor.pp_failure fmt f
  | Async f -> Async.pp_failure fmt f
  | Las_vegas f -> Las_vegas.pp_failure fmt f
  | Net (Protocol { message } | Rejected { message } | Connection { message }) ->
    Format.pp_print_string fmt message

let lv reason message = { Las_vegas.reason; message }

let all =
  [
    Sync (Executor.Max_rounds_exceeded 0);
    Sync (Executor.Tape_exhausted { round = 0 });
    Sync (Executor.All_nodes_crashed { round = 0 });
    Async (Async.Event_limit_exceeded 0);
    Async (Async.Tape_exhausted { round = 0 });
    Async (Async.Stalled { events = 0 });
    Las_vegas (lv Las_vegas.No_success "no success within the attempt budget");
    Las_vegas (lv Las_vegas.Gave_up "gave up at the round cap");
    Las_vegas (lv Las_vegas.Diverged "divergence detected");
    Las_vegas (lv Las_vegas.Network_dead "fault plan leaves no node running");
    Net (Protocol { message = "malformed frame" });
    Net (Rejected { message = "job rejected" });
    Net (Connection { message = "connection lost" });
  ]

let of_exit_code = function
  | 2 -> Some (Sync (Executor.Max_rounds_exceeded 0))
  | 3 -> Some (Sync (Executor.Tape_exhausted { round = 0 }))
  | 4 -> Some (Sync (Executor.All_nodes_crashed { round = 0 }))
  | 5 -> Some (Async (Async.Event_limit_exceeded 0))
  | 6 -> Some (Async (Async.Stalled { events = 0 }))
  | 7 ->
    Some (Las_vegas (lv Las_vegas.No_success "no success within the attempt budget"))
  | 8 -> Some (Las_vegas (lv Las_vegas.Gave_up "gave up at the round cap"))
  | 9 -> Some (Las_vegas (lv Las_vegas.Diverged "divergence detected"))
  | 10 -> Some (Net (Protocol { message = "malformed frame" }))
  | 11 -> Some (Net (Rejected { message = "job rejected" }))
  | 12 -> Some (Net (Connection { message = "connection lost" }))
  | _ -> None
