type t = Sync of Executor.failure | Async of Async.failure

(* One numbering for both executors.  The synchronous and asynchronous
   tape exhaustions share a code on purpose: they mean the same thing (the
   prescribed tape ended before every node output) on different substrates. *)
let exit_code = function
  | Sync (Executor.Max_rounds_exceeded _) -> 2
  | Sync (Executor.Tape_exhausted _) | Async (Async.Tape_exhausted _) -> 3
  | Sync (Executor.All_nodes_crashed _) -> 4
  | Async (Async.Event_limit_exceeded _) -> 5
  | Async (Async.Stalled _) -> 6

let pp fmt = function
  | Sync f -> Executor.pp_failure fmt f
  | Async f -> Async.pp_failure fmt f

let all =
  [
    Sync (Executor.Max_rounds_exceeded 0);
    Sync (Executor.Tape_exhausted { round = 0 });
    Sync (Executor.All_nodes_crashed { round = 0 });
    Async (Async.Event_limit_exceeded 0);
    Async (Async.Tape_exhausted { round = 0 });
    Async (Async.Stalled { events = 0 });
  ]

let of_exit_code = function
  | 2 -> Some (Sync (Executor.Max_rounds_exceeded 0))
  | 3 -> Some (Sync (Executor.Tape_exhausted { round = 0 }))
  | 4 -> Some (Sync (Executor.All_nodes_crashed { round = 0 }))
  | 5 -> Some (Async (Async.Event_limit_exceeded 0))
  | 6 -> Some (Async (Async.Stalled { events = 0 }))
  | _ -> None
