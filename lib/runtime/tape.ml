module Bits = Anonet_graph.Bits
module Prng = Anonet_graph.Prng

type t =
  | Random of int
  | Fixed of Bits.t array
  | Zero

let random ~seed = Random seed

let fixed bits = Fixed (Array.copy bits)

let zero = Zero

let bit t ~node ~round =
  match t with
  | Zero -> Some false
  | Random seed ->
    (* Counter-mode splitmix: derive the bit from (seed, node, round) so the
       tape supports random access and is reproducible. *)
    let mixed = Prng.create ((seed * 1_000_003) + (node * 7_919) + round) in
    Some (Prng.bool mixed)
  | Fixed bits ->
    if node >= Array.length bits then None
    else begin
      let b = bits.(node) in
      if round <= Bits.length b then Some (Bits.get b (round - 1)) else None
    end

let horizon t ~nodes =
  match t with
  | Zero | Random _ -> max_int
  | Fixed bits ->
    let h = ref max_int in
    for v = 0 to nodes - 1 do
      let len = if v < Array.length bits then Bits.length bits.(v) else 0 in
      if len < !h then h := len
    done;
    !h
