module Graph = Anonet_graph.Graph

type t = {
  n : int;
  output_rounds : int option array;
  messages_by_round : int list;  (* reversed while recording *)
  rounds : int;
}

let record algo g ~tape ~max_rounds =
  let n = Graph.n g in
  let output_rounds = Array.make n None in
  let note exec round =
    Array.iteri
      (fun v o ->
        if o <> None && output_rounds.(v) = None then output_rounds.(v) <- Some round)
      (Executor.Incremental.outputs exec)
  in
  let rec loop exec messages_acc prev_messages =
    let finish_trace () =
      {
        n;
        output_rounds = Array.copy output_rounds;
        messages_by_round = List.rev messages_acc;
        rounds = Executor.Incremental.round exec;
      }
    in
    if Executor.Incremental.all_output exec then begin
      let outcome =
        {
          Executor.outputs = Array.map Option.get (Executor.Incremental.outputs exec);
          rounds = Executor.Incremental.round exec;
          messages = Executor.Incremental.messages exec;
        }
      in
      Ok (finish_trace (), outcome)
    end
    else begin
      let round = Executor.Incremental.round exec + 1 in
      if round > max_rounds then
        Error (finish_trace (), Executor.Max_rounds_exceeded max_rounds)
      else begin
        let exhausted = ref false in
        let bits =
          Array.init n (fun v ->
              match Tape.bit tape ~node:v ~round with
              | Some b -> b
              | None ->
                exhausted := true;
                false)
        in
        if !exhausted then Error (finish_trace (), Executor.Tape_exhausted { round })
        else begin
          let exec = Executor.Incremental.step exec ~bits in
          note exec round;
          let total = Executor.Incremental.messages exec in
          loop exec ((total - prev_messages) :: messages_acc) total
        end
      end
    end
  in
  let exec = Executor.Incremental.start algo g in
  note exec 0;
  loop exec [] 0

let output_rounds t = Array.copy t.output_rounds

let messages_by_round t = t.messages_by_round

let rounds t = t.rounds

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "rounds: %d (columns); nodes: %d (rows); '#' = output set\n"
       t.rounds t.n);
  for v = 0 to t.n - 1 do
    Buffer.add_string buf (Printf.sprintf "node %2d " v);
    let decided = t.output_rounds.(v) in
    for r = 1 to t.rounds do
      let mark =
        match decided with
        | Some d when r >= d -> '#'
        | Some _ | None -> '.'
      in
      Buffer.add_char buf mark
    done;
    (match decided with
     | Some d -> Buffer.add_string buf (Printf.sprintf "  (output at round %d)" d)
     | None -> Buffer.add_string buf "  (no output)");
    Buffer.add_char buf '\n'
  done;
  let total = List.fold_left ( + ) 0 t.messages_by_round in
  Buffer.add_string buf (Printf.sprintf "messages per round: %s (total %d)\n"
                           (String.concat " "
                              (List.map string_of_int t.messages_by_round))
                           total);
  Buffer.contents buf
