module Graph = Anonet_graph.Graph
module Obs = Anonet_obs.Obs

type t = {
  n : int;
  output_rounds : int option array;
  messages_by_round : int list;  (* reversed while recording *)
  rounds : int;
  fault_events : Faults.event list;
  adversary_events : Adversary.event list;
  crashed : int -> round:int -> bool;  (* node crashed in the given round? *)
}

let record_with ~scramble ~faults ~adversary ~obs algo g ~tape ~max_rounds =
  let n = Graph.n g in
  let rounds_c = Obs.counter obs "executor.rounds" in
  let msgs_c = Obs.counter obs "executor.messages" in
  let output_rounds = Array.make n None in
  let note exec round =
    Array.iteri
      (fun v o ->
        if o <> None && output_rounds.(v) = None then output_rounds.(v) <- Some round)
      (Executor.Incremental.outputs exec)
  in
  let rec loop exec messages_acc prev_messages =
    let finish_trace () =
      {
        n;
        output_rounds = Array.copy output_rounds;
        messages_by_round = List.rev messages_acc;
        rounds = Executor.Incremental.round exec;
        fault_events =
          (match faults with None -> [] | Some f -> Faults.events f);
        adversary_events =
          (match adversary with None -> [] | Some a -> Adversary.events a);
        crashed =
          (match faults with
           | None -> fun _ ~round:_ -> false
           | Some f -> fun v ~round -> not (Faults.active f ~node:v ~round));
      }
    in
    if Executor.Incremental.all_output exec then begin
      let outcome =
        {
          Executor.outputs = Array.map Option.get (Executor.Incremental.outputs exec);
          rounds = Executor.Incremental.round exec;
          messages = Executor.Incremental.messages exec;
        }
      in
      Ok (finish_trace (), outcome)
    end
    else begin
      let round = Executor.Incremental.round exec + 1 in
      if round > max_rounds then
        Error (finish_trace (), Executor.Max_rounds_exceeded max_rounds)
      else if
        match faults with
        | None -> false
        | Some f -> Faults.doomed f ~round ~nodes:n
      then Error (finish_trace (), Executor.All_nodes_crashed { round })
      else begin
        let exhausted = ref false in
        let bits =
          Array.init n (fun v ->
              match Tape.bit tape ~node:v ~round with
              | Some b -> b
              | None ->
                exhausted := true;
                false)
        in
        if !exhausted then Error (finish_trace (), Executor.Tape_exhausted { round })
        else begin
          let exec =
            Executor.Incremental.step exec ?scramble ?faults ?adversary ~bits
          in
          note exec round;
          let total = Executor.Incremental.messages exec in
          Obs.incr rounds_c;
          Obs.incr ~by:(total - prev_messages) msgs_c;
          loop exec ((total - prev_messages) :: messages_acc) total
        end
      end
    end
  in
  (* The per-step injection arguments below only type-check against the
     boxed representation; a hook-free recording may use the flat one
     (traces read just outputs/rounds/messages, which both provide). *)
  let use_flat =
    Option.is_none scramble && Option.is_none faults && Option.is_none adversary
  in
  let result =
    Obs.span obs "trace.record" (fun () ->
        let exec = Executor.Incremental.start ~use_flat algo g in
        note exec 0;
        loop exec [] 0)
  in
  (match faults with Some f -> Run_ctx.observe_faults obs f | None -> ());
  (match adversary with Some a -> Run_ctx.observe_adversary obs a | None -> ());
  result

let record ?(ctx = Run_ctx.default) algo g ~tape ~max_rounds =
  record_with ~scramble:(Run_ctx.scramble ctx) ~faults:(Run_ctx.injector ctx)
    ~adversary:(Run_ctx.adversary_instance ctx) ~obs:(Run_ctx.obs ctx) algo g
    ~tape ~max_rounds


let output_rounds t = Array.copy t.output_rounds

let messages_by_round t = t.messages_by_round

let rounds t = t.rounds

let fault_events t = t.fault_events

let adversary_events t = t.adversary_events

let render t =
  let buf = Buffer.create 256 in
  let legend =
    if t.fault_events = [] then "'#' = output set"
    else "'#' = output set; 'x' = crashed"
  in
  Buffer.add_string buf
    (Printf.sprintf "rounds: %d (columns); nodes: %d (rows); %s\n" t.rounds t.n
       legend);
  for v = 0 to t.n - 1 do
    Buffer.add_string buf (Printf.sprintf "node %2d " v);
    let decided = t.output_rounds.(v) in
    for r = 1 to t.rounds do
      let mark =
        if t.crashed v ~round:r then 'x'
        else
          match decided with
          | Some d when r >= d -> '#'
          | Some _ | None -> '.'
      in
      Buffer.add_char buf mark
    done;
    (match decided with
     | Some d -> Buffer.add_string buf (Printf.sprintf "  (output at round %d)" d)
     | None -> Buffer.add_string buf "  (no output)");
    Buffer.add_char buf '\n'
  done;
  let total = List.fold_left ( + ) 0 t.messages_by_round in
  Buffer.add_string buf (Printf.sprintf "messages per round: %s (total %d)\n"
                           (String.concat " "
                              (List.map string_of_int t.messages_by_round))
                           total);
  if t.fault_events <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "fault events (%d):\n" (List.length t.fault_events));
    List.iter
      (fun e ->
        Buffer.add_string buf (Format.asprintf "  %a\n" Faults.pp_event e))
      t.fault_events
  end;
  if t.adversary_events <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "adversary events (%d):\n"
         (List.length t.adversary_events));
    List.iter
      (fun e ->
        Buffer.add_string buf (Format.asprintf "  %a\n" Adversary.pp_event e))
      t.adversary_events
  end;
  Buffer.contents buf
