(** Fault injection: an adversarial, seeded, budgeted fault model for both
    executors.

    The paper's model (Section 1.1) assumes a perfectly reliable network:
    every message sent in round [r] arrives in round [r+1], and nodes never
    fail.  This module breaks those assumptions on purpose, so that the
    constructions can be probed empirically on an unreliable substrate:

    - {e message loss}: a sent message silently disappears;
    - {e message duplication}: a message is delivered twice — in the
      synchronous executor the stale copy arrives one round late (and only
      if the port is otherwise idle, since a port carries at most one
      message per round); in the asynchronous executor both copies are
      scheduled with independent delays;
    - {e message corruption}: the payload is structurally perturbed (a
      flipped bit, an off-by-one integer, a mangled list element) — the
      constructor is preserved where possible so decoders fail late, like
      real bit rot;
    - {e dead links}: every message crossing a given undirected edge is
      swallowed;
    - {e node crashes}: crash-stop (the node permanently stops executing
      rounds, sends nothing, and loses arriving messages) and
      crash-recovery (it resumes, with its state intact but all messages
      from the outage lost).  The asynchronous executor honors only the
      crash-stop reading (there is no global clock to schedule a wake-up).

    All randomness is drawn from a splitmix generator seeded by the plan,
    so a fault schedule is exactly reproducible: equal plans and equal
    executions inject equal faults.  A {e budget} caps the adversary: once
    [budget] probabilistic faults (and crash onsets) have been spent, the
    network becomes reliable again.  Dead links are structural, not
    budgeted.

    A {!plan} is a pure description; {!make} instantiates the stateful
    injector threaded through one execution.  Injectors must not be shared
    between runs (they carry the PRNG, the budget counter, the stale-
    duplicate queue, and the event log). *)

type crash = {
  node : int;
  from_round : int;  (** first round the node is down (1-based) *)
  until_round : int option;
      (** first round it is back up; [None] = crash-stop forever *)
}

type plan = {
  seed : int;
  loss : float;  (** per-message drop probability, in [0,1] *)
  duplicate : float;  (** per-message duplication probability *)
  corrupt : float;  (** per-message corruption probability *)
  dead_links : (int * int) list;  (** undirected edges that swallow traffic *)
  crashes : crash list;
  budget : int option;  (** max faults the adversary may spend; [None] = ∞ *)
}

(** The reliable network: all probabilities 0, no crashes, no dead links. *)
val no_faults : plan

(** [with_loss p seed] is [no_faults] with loss probability [p]. *)
val with_loss : float -> seed:int -> plan

type event_kind =
  | Dropped of { src : int; dst : int }
  | Duplicated of { src : int; dst : int }
  | Corrupted of { src : int; dst : int }
  | Link_dead of { src : int; dst : int }
  | Crashed of int
  | Recovered of int

type event = {
  round : int;  (** the round the fault was injected (message faults: the
                    sending round) *)
  kind : event_kind;
}

val pp_event : Format.formatter -> event -> unit

type t

(** [make plan] instantiates a fresh injector.  Crash onsets are charged
    against the budget immediately (in order of [from_round]); a crash the
    budget cannot afford never happens.
    @raise Invalid_argument if a probability is outside [0,1] or a crash
    round is < 1. *)
val make : plan -> t

val plan : t -> plan

(** Faults injected so far, in round order (stable within a round). *)
val events : t -> event list

(** Budget spent so far. *)
val spent : t -> int

(** {2 Hooks for the synchronous executor} *)

(** [active t ~node ~round] is false while [node] is crashed in [round]. *)
val active : t -> node:int -> round:int -> bool

(** [doomed t ~round ~nodes] holds when every node is crash-stopped (no
    recovery pending) at [round] — the execution can never complete. *)
val doomed : t -> round:int -> nodes:int -> bool

(** [on_send_sync t ~src ~dst ~port ~round msg] decides the fate of a
    message sent by [src] in [round] toward [dst]'s port [port]:
    [None] = dropped, [Some m] = deliver [m] next round ([m] may be a
    corrupted copy).  Duplication queues a stale copy for one round later,
    surfaced by {!stale_sync}. *)
val on_send_sync :
  t -> src:int -> dst:int -> port:int -> round:int -> Anonet_graph.Label.t ->
  Anonet_graph.Label.t option

(** [stale_sync t ~dst ~round] drains the stale duplicates due to arrive at
    [dst] in [round], as [(port, payload)] pairs.  The executor delivers
    them only on otherwise-idle ports. *)
val stale_sync : t -> dst:int -> round:int -> (int * Anonet_graph.Label.t) list

(** {2 Hook for the asynchronous executor} *)

type async_delivery =
  | Async_drop
  | Async_deliver of Anonet_graph.Label.t option
  | Async_duplicate of Anonet_graph.Label.t option
      (** deliver two copies, independently delayed *)

(** [on_send_async t ~src ~dst ~round payload] decides the fate of an
    asynchronous message ([payload = None] is the synchronizer's explicit
    null, which is still a real message on the wire and can be lost). *)
val on_send_async :
  t -> src:int -> dst:int -> round:int -> Anonet_graph.Label.t option ->
  async_delivery

(** [crashed_forever t ~node ~round] — the crash-stop reading used by the
    asynchronous executor: true from the earliest [from_round] on,
    recoveries ignored. *)
val crashed_forever : t -> node:int -> round:int -> bool

(** {2 The fault-spec grammar}

    Comma-separated items (used by [anonet solve --faults]):

    {v
    loss=P          per-message loss probability       (float in [0,1])
    dup=P           per-message duplication probability
    corrupt=P       per-message corruption probability
    seed=N          adversary PRNG seed                (default 0)
    budget=K        adversary fault budget             (default unlimited)
    crash=V@R       crash-stop node V from round R
    crash=V@R1..R2  crash node V at R1, recover at R2
    droplink=U-V    kill the undirected link {U,V}
    v}

    Example: ["loss=0.2,dup=0.05,seed=7,crash=3@5..9,droplink=0-1"]. *)

val plan_of_string : string -> (plan, string) result

(** [plan_to_string p] renders [p] in the grammar above;
    [plan_of_string (plan_to_string p)] re-reads it exactly. *)
val plan_to_string : plan -> string

(** [corrupt_label rng l] structurally perturbs [l] (exposed for tests):
    the result differs from [l] but keeps the outer constructor where the
    type has more than one inhabitant of it. *)
val corrupt_label : Anonet_graph.Prng.t -> Anonet_graph.Label.t -> Anonet_graph.Label.t
