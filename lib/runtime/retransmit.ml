module Label = Anonet_graph.Label
module Obs = Anonet_obs.Obs
module IntMap = Map.Make (Int)

(* Wire format, one message per port per outer round:
     Pair (Int checksum,
           Pair (Int cumulative_ack,
                 List [Pair (Int inner_round, List payload_opt); ...]))
   where payload_opt is [] for an explicit null (the inner algorithm sent
   nothing on that port that round) and [l] for a real payload [l].  The
   list carries the whole unacknowledged window — retransmission is simply
   "send the window again".

   [checksum] is an FNV-1a hash of the body's canonical encoding: a frame
   whose checksum does not match its body is dropped whole, and since the
   window is resent every outer round anyway, the next clean copy recovers
   it — corruption degrades into loss, which the protocol already survives.
   Defense in depth against checksum collisions (and adversaries that
   recompute it): receivers also validate the round tags and the ack
   against the plausible window [0 .. outer_round] — an honest peer can
   never be ahead of the receiver's own outer round, so a corrupted tag or
   ack outside that window is rejected without ever being "taken at face
   value" (the pre-checksum protocol let a single flipped ack bit discard
   unacknowledged window entries and stall the link forever). *)

exception Reject

let checksum body =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x0100_0193 land 0x3FFF_FFFF)
    (Label.encode body);
  !h

let encode_payload = function
  | None -> Label.List []
  | Some l -> Label.List [ l ]

let decode_payload = function
  | Label.List [] -> None
  | Label.List [ l ] -> Some l
  | _ -> raise Reject

(* [decode_wire ~outer msg] is [Some (ack, window)] for an intact,
   plausible frame received at outer round [outer], [None] otherwise. *)
let decode_wire ~outer = function
  | Label.Pair (Label.Int sum, body) when sum = checksum body -> begin
      match body with
      | Label.Pair (Label.Int ack, Label.List items)
        when ack >= 0 && ack <= outer -> begin
          try
            Some
              ( ack,
                List.map
                  (function
                    | Label.Pair (Label.Int r, p) when r >= 1 && r <= outer ->
                      r, decode_payload p
                    | _ -> raise Reject)
                  items )
          with Reject -> None
        end
      | _ -> None
    end
  | _ -> None

type port_state = {
  pending : (int * Label.t option) list;
      (* unacknowledged data, ascending inner round *)
  got : Label.t option IntMap.t;  (* received data by inner round *)
  recv_upto : int;  (* gap-free prefix received — the cumulative ack we send *)
}

let fresh_port = { pending = []; got = IntMap.empty; recv_upto = 0 }

let wrap ?(obs = Obs.null) (module A : Algorithm.S) : Algorithm.t =
  (* Handles resolved once at wrap time and shared by every node of the
     wrapped run — counting only, never part of the protocol. *)
  let resent_c = Obs.counter obs "retransmit.resent" in
  let rejected_c = Obs.counter obs "retransmit.rejected" in
  let window_h = Obs.histogram obs "retransmit.window" in
  (module struct
    type state = {
      degree : int;
      inner : A.state;
      inner_round : int;  (* inner rounds executed so far *)
      outer_round : int;  (* outer rounds executed so far *)
      ports : port_state array;  (* treated as immutable: copied on update *)
    }

    let name = Printf.sprintf "retransmit(%s)" A.name

    let init ~input ~degree =
      {
        degree;
        inner = A.init ~input ~degree;
        inner_round = 0;
        outer_round = 0;
        ports = Array.init degree (fun _ -> fresh_port);
      }

    let output s = A.output s.inner

    (* Rejected (corrupted or implausible) frames leave the port state
       untouched: the peer resends its window every round, so the next
       intact copy carries everything this one did. *)
    let absorb ~outer port_state msg =
      match decode_wire ~outer msg with
      | None ->
        Obs.incr rejected_c;
        port_state
      | Some (ack, items) ->
        let pending =
          List.filter (fun (r, _) -> r > ack) port_state.pending
        in
        let got =
          List.fold_left
            (fun got (r, payload) ->
              if r > port_state.recv_upto && not (IntMap.mem r got) then
                IntMap.add r payload got
              else got)
            port_state.got items
        in
        let rec catch_up upto = if IntMap.mem (upto + 1) got then catch_up (upto + 1) else upto in
        { pending; got; recv_upto = catch_up port_state.recv_upto }

    let round s ~bit ~inbox =
      let s = { s with outer_round = s.outer_round + 1 } in
      (* 1. Absorb this outer round's wire traffic. *)
      let ports =
        Array.mapi
          (fun p ps ->
            match inbox.(p) with
            | None -> ps
            | Some m -> absorb ~outer:s.outer_round ps m)
          s.ports
      in
      (* 2. Execute at most one inner round, when its inbox is complete:
         round 1 needs nothing; round r+1 needs round-r data on every
         port.  One inner round per outer round keeps the inner algorithm
         on fresh tape bits. *)
      let can_execute =
        (* Nodes keep running their inner rounds after producing their own
           output, exactly like the plain executor: neighbors may still
           need their messages to decide. *)
        s.inner_round = 0
        || Array.for_all (fun ps -> ps.recv_upto >= s.inner_round) ports
      in
      let s, executed_now =
        if not can_execute then { s with ports }, false
        else begin
          let inner_inbox =
            if s.inner_round = 0 then Array.make s.degree None
            else Array.map (fun ps -> IntMap.find s.inner_round ps.got) ports
          in
          let inner, sends = A.round s.inner ~bit ~inbox:inner_inbox in
          if Array.length sends <> s.degree then
            invalid_arg "retransmit: inner algorithm sent on wrong port count";
          let executed = s.inner_round + 1 in
          let ports =
            Array.mapi
              (fun p ps ->
                {
                  ps with
                  pending = ps.pending @ [ executed, sends.(p) ];
                  (* data at or below the consumed round is never read again *)
                  got = IntMap.filter (fun r _ -> r > s.inner_round) ps.got;
                })
              ports
          in
          { s with inner; inner_round = executed; ports }, true
        end
      in
      (* A port's window beyond this round's freshly appended entry (one per
         port iff the inner round executed) is being sent again. *)
      (match resent_c with
       | None -> ()
       | Some c ->
         let total =
           Array.fold_left (fun acc ps -> acc + List.length ps.pending) 0 s.ports
         in
         let fresh = if executed_now then s.degree else 0 in
         if total > fresh then Anonet_obs.Metrics.incr ~by:(total - fresh) c;
         Array.iter
           (fun ps -> Obs.observe window_h (List.length ps.pending))
           s.ports);
      (* 3. Send the window + cumulative ack on every port, every round. *)
      let wire ps =
        let body =
          Label.Pair
            ( Label.Int ps.recv_upto,
              Label.List
                (List.map
                   (fun (r, payload) ->
                     Label.Pair (Label.Int r, encode_payload payload))
                   ps.pending) )
        in
        Some (Label.Pair (Label.Int (checksum body), body))
      in
      s, Array.map wire s.ports
  end)
