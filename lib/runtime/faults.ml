module Label = Anonet_graph.Label
module Bits = Anonet_graph.Bits
module Prng = Anonet_graph.Prng

type crash = {
  node : int;
  from_round : int;
  until_round : int option;
}

type plan = {
  seed : int;
  loss : float;
  duplicate : float;
  corrupt : float;
  dead_links : (int * int) list;
  crashes : crash list;
  budget : int option;
}

let no_faults =
  {
    seed = 0;
    loss = 0.0;
    duplicate = 0.0;
    corrupt = 0.0;
    dead_links = [];
    crashes = [];
    budget = None;
  }

let with_loss loss ~seed = { no_faults with loss; seed }

type event_kind =
  | Dropped of { src : int; dst : int }
  | Duplicated of { src : int; dst : int }
  | Corrupted of { src : int; dst : int }
  | Link_dead of { src : int; dst : int }
  | Crashed of int
  | Recovered of int

type event = {
  round : int;
  kind : event_kind;
}

let pp_event fmt { round; kind } =
  let msg verb src dst = Format.fprintf fmt "round %3d: %s %d -> %d" round verb src dst in
  match kind with
  | Dropped { src; dst } -> msg "drop" src dst
  | Duplicated { src; dst } -> msg "duplicate" src dst
  | Corrupted { src; dst } -> msg "corrupt" src dst
  | Link_dead { src; dst } -> msg "dead link" src dst
  | Crashed v -> Format.fprintf fmt "round %3d: crash node %d" round v
  | Recovered v -> Format.fprintf fmt "round %3d: recover node %d" round v

type t = {
  plan : plan;
  rng : Prng.t;
  (* crashes that survived the budget, by node *)
  live_crashes : crash list;
  dead : (int * int, unit) Hashtbl.t;  (* normalized link -> () *)
  stale : (int * int, (int * Label.t) list) Hashtbl.t;  (* (dst, round) -> deliveries *)
  mutable spent : int;
  mutable events : event list;  (* reversed *)
}

let record t round kind = t.events <- { round; kind } :: t.events

(* [charge t] spends one unit of budget; false when exhausted. *)
let charge t =
  match t.plan.budget with
  | None ->
    t.spent <- t.spent + 1;
    true
  | Some k ->
    if t.spent >= k then false
    else begin
      t.spent <- t.spent + 1;
      true
    end

let check_probability name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Faults.make: %s=%g outside [0,1]" name p)

let make plan =
  check_probability "loss" plan.loss;
  check_probability "dup" plan.duplicate;
  check_probability "corrupt" plan.corrupt;
  List.iter
    (fun c ->
      if c.from_round < 1 then invalid_arg "Faults.make: crash round < 1";
      match c.until_round with
      | Some u when u <= c.from_round ->
        invalid_arg "Faults.make: crash recovery must be after the crash"
      | _ -> ())
    plan.crashes;
  let dead = Hashtbl.create 4 in
  List.iter
    (fun (u, v) -> Hashtbl.replace dead (min u v, max u v) ())
    plan.dead_links;
  let t =
    {
      plan;
      rng = Prng.create (Prng.hash2 plan.seed 0xFA017);
      live_crashes = [];
      dead;
      stale = Hashtbl.create 8;
      spent = 0;
      events = [];
    }
  in
  (* Charge crash onsets up front, earliest first, so the budget is spent
     deterministically regardless of execution order. *)
  let ordered =
    List.stable_sort (fun a b -> compare a.from_round b.from_round) plan.crashes
  in
  let live =
    List.filter
      (fun c ->
        if charge t then begin
          record t c.from_round (Crashed c.node);
          (match c.until_round with
           | Some u -> record t u (Recovered c.node)
           | None -> ());
          true
        end
        else false)
      ordered
  in
  { t with live_crashes = live }

let plan t = t.plan

let spent t = t.spent

let events t =
  List.stable_sort (fun a b -> compare a.round b.round) (List.rev t.events)

let active t ~node ~round =
  not
    (List.exists
       (fun c ->
         c.node = node && round >= c.from_round
         && match c.until_round with None -> true | Some u -> round < u)
       t.live_crashes)

let crashed_forever t ~node ~round =
  List.exists (fun c -> c.node = node && round >= c.from_round) t.live_crashes

let doomed t ~round ~nodes =
  nodes > 0
  && List.for_all
       (fun v ->
         List.exists
           (fun c -> c.node = v && round >= c.from_round && c.until_round = None)
           t.live_crashes)
       (List.init nodes Fun.id)

let link_dead t u v = Hashtbl.mem t.dead (min u v, max u v)

(* Structural perturbation: keep the outer constructor where it has more
   than one inhabitant, so decoders accept the message and read garbage. *)
let rec corrupt_label rng = function
  | Label.Unit -> Label.Bool (Prng.bool rng)
  | Label.Bool b -> Label.Bool (not b)
  | Label.Int n -> Label.Int (n lxor (1 lsl Prng.int rng 8))
  | Label.Str s -> Label.Str (s ^ "\x00")
  | Label.Bits b ->
    if Bits.is_empty b then Label.Bits (Bits.append b (Prng.bool rng))
    else begin
      let i = Prng.int rng (Bits.length b) in
      Label.Bits
        (Bits.of_list (List.mapi (fun j x -> if j = i then not x else x) (Bits.to_list b)))
    end
  | Label.Pair (a, b) ->
    if Prng.bool rng then Label.Pair (corrupt_label rng a, b)
    else Label.Pair (a, corrupt_label rng b)
  | Label.List [] -> Label.List [ Label.Unit ]
  | Label.List xs ->
    let i = Prng.int rng (List.length xs) in
    Label.List (List.mapi (fun j x -> if j = i then corrupt_label rng x else x) xs)

let hit t p = p > 0.0 && Prng.float t.rng < p

(* The shared per-message decision: what happens to a payload crossing
   src -> dst in [round].  [`Drop], [`Deliver], or [`Duplicate], with the
   (possibly corrupted) payload. *)
let decide t ~src ~dst ~round payload =
  if link_dead t src dst then begin
    record t round (Link_dead { src; dst });
    `Drop payload
  end
  else if hit t t.plan.loss && charge t then begin
    record t round (Dropped { src; dst });
    `Drop payload
  end
  else begin
    let payload, dup =
      if hit t t.plan.duplicate && charge t then begin
        record t round (Duplicated { src; dst });
        payload, true
      end
      else payload, false
    in
    let payload =
      match payload with
      | Some l when hit t t.plan.corrupt && charge t ->
        record t round (Corrupted { src; dst });
        Some (corrupt_label t.rng l)
      | p -> p
    in
    if dup then `Duplicate payload else `Deliver payload
  end

let on_send_sync t ~src ~dst ~port ~round msg =
  match decide t ~src ~dst ~round (Some msg) with
  | `Drop _ -> None
  | `Deliver p -> p
  | `Duplicate p ->
    (* Original arrives at round+1 as usual; the stale copy one round
       later, competing with fresh traffic for the port. *)
    (match p with
     | Some l ->
       let key = (dst, round + 2) in
       let prev = Option.value ~default:[] (Hashtbl.find_opt t.stale key) in
       Hashtbl.replace t.stale key ((port, l) :: prev)
     | None -> ());
    p

let stale_sync t ~dst ~round =
  let key = (dst, round) in
  match Hashtbl.find_opt t.stale key with
  | None -> []
  | Some l ->
    Hashtbl.remove t.stale key;
    List.rev l

type async_delivery =
  | Async_drop
  | Async_deliver of Label.t option
  | Async_duplicate of Label.t option

let on_send_async t ~src ~dst ~round payload =
  match decide t ~src ~dst ~round payload with
  | `Drop _ -> Async_drop
  | `Deliver p -> Async_deliver p
  | `Duplicate p -> Async_duplicate p

(* ---------- the fault-spec grammar ---------- *)

let plan_to_string p =
  let b = Buffer.create 64 in
  let add fmt = Printf.ksprintf (fun s ->
      if Buffer.length b > 0 then Buffer.add_char b ',';
      Buffer.add_string b s) fmt
  in
  if p.loss > 0.0 then add "loss=%g" p.loss;
  if p.duplicate > 0.0 then add "dup=%g" p.duplicate;
  if p.corrupt > 0.0 then add "corrupt=%g" p.corrupt;
  (* always emitted, so even [no_faults] renders to a re-parsable spec *)
  add "seed=%d" p.seed;
  (match p.budget with Some k -> add "budget=%d" k | None -> ());
  List.iter
    (fun c ->
      match c.until_round with
      | None -> add "crash=%d@%d" c.node c.from_round
      | Some u -> add "crash=%d@%d..%d" c.node c.from_round u)
    p.crashes;
  List.iter (fun (u, v) -> add "droplink=%d-%d" u v) p.dead_links;
  Buffer.contents b

(* Parse "R" (crash-stop) or "R1..R2" (crash-recovery). *)
let parse_crash_rounds s =
  match Option.bind (String.index_opt s '.') (fun i ->
      if i + 1 < String.length s && s.[i + 1] = '.' then Some i else None)
  with
  | None -> Option.map (fun r -> r, None) (int_of_string_opt s)
  | Some i ->
    let a = String.sub s 0 i in
    let b = String.sub s (i + 2) (String.length s - i - 2) in
    (match int_of_string_opt a, int_of_string_opt b with
     | Some a, Some b when b > a -> Some (a, Some b)
     | _ -> None)

let plan_of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_item plan item =
    match plan with
    | Error _ as e -> e
    | Ok plan ->
      let key, value =
        match String.index_opt item '=' with
        | Some i ->
          ( String.sub item 0 i,
            String.sub item (i + 1) (String.length item - i - 1) )
        | None -> item, ""
      in
      let prob () =
        match float_of_string_opt value with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok p
        | _ -> fail "faults: %s=%S is not a probability in [0,1]" key value
      in
      let int_v () =
        match int_of_string_opt value with
        | Some n -> Ok n
        | None -> fail "faults: %s=%S is not an integer" key value
      in
      let ( let* ) = Result.bind in
      match key with
      | "loss" ->
        let* p = prob () in
        Ok { plan with loss = p }
      | "dup" ->
        let* p = prob () in
        Ok { plan with duplicate = p }
      | "corrupt" ->
        let* p = prob () in
        Ok { plan with corrupt = p }
      | "seed" ->
        let* n = int_v () in
        Ok { plan with seed = n }
      | "budget" ->
        let* n = int_v () in
        if n < 0 then fail "faults: budget=%d is negative" n
        else Ok { plan with budget = Some n }
      | "crash" -> begin
          match String.index_opt value '@' with
          | None -> fail "faults: crash needs NODE@ROUND, got %S" value
          | Some i ->
            let node = String.sub value 0 i in
            let rounds = String.sub value (i + 1) (String.length value - i - 1) in
            let* node =
              match int_of_string_opt node with
              | Some n when n >= 0 -> Ok n
              | _ -> fail "faults: crash node %S" node
            in
            let* from_round, until_round =
              match parse_crash_rounds rounds with
              | Some (a, b) -> Ok (a, b)
              | None -> fail "faults: crash rounds %S (want R or R1..R2)" rounds
            in
            if from_round < 1 then fail "faults: crash round %d < 1" from_round
            else
              Ok
                {
                  plan with
                  crashes = plan.crashes @ [ { node; from_round; until_round } ];
                }
        end
      | "droplink" -> begin
          match String.split_on_char '-' value with
          | [ u; v ] -> begin
              match int_of_string_opt u, int_of_string_opt v with
              | Some u, Some v ->
                Ok { plan with dead_links = plan.dead_links @ [ u, v ] }
              | _ -> fail "faults: droplink %S (want U-V)" value
            end
          | _ -> fail "faults: droplink %S (want U-V)" value
        end
      | _ -> fail "faults: unknown item %S" item
  in
  if String.trim s = "" then Error "faults: empty spec"
  else
    List.fold_left parse_item (Ok no_faults)
      (List.map String.trim (String.split_on_char ',' s))
