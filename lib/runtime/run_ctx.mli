(** The run context: one record carrying every cross-cutting concern a run
    can be configured with, threaded through the runtime and search entry
    points as [?ctx] (defaulting to {!default}).

    Before this module, each concern was a separate optional argument
    ([?scramble_seed ?faults ?pool ...]) threaded inconsistently through
    [Executor], [Async], [Las_vegas], [Min_search], [A_infinity] and
    [Experiments]; every new concern multiplied signatures.  A [Run_ctx.t]
    is built once (typically by the CLI or the serve frontend) and passed
    down whole; the legacy labelled-argument shims are gone.

    The context is a pure description: it holds a fault {e plan}, not a
    stateful injector, so one context can be reused across runs and
    attempts — each run instantiates its own injector via {!injector}. *)

(** How an entry point that needs a round budget derives it from the graph
    size: [Scaled { per_node; slack }] gives [per_node * (n + slack)] —
    {!default} uses [64 * (n + 4)], the Las-Vegas default budget — while
    [Fixed r] is [r] regardless of the graph. *)
type max_rounds_policy =
  | Scaled of { per_node : int; slack : int }
  | Fixed of int

type t = {
  faults : Faults.plan option;  (** fault plan applied to (each) run *)
  adversary : Adversary.plan option;
      (** adaptive adversary layered on top of the faults (see {!Adversary}) *)
  pool : Anonet_parallel.Pool.t option;  (** domain pool for parallel paths *)
  obs : Anonet_obs.Obs.t;  (** metrics + event sink; [Obs.null] = off *)
  scramble_seed : int option;
      (** per-round inbox scrambling (see [Executor.run]) *)
  max_rounds_policy : max_rounds_policy;
}

val default : t
(** No faults, no pool, null observability, no scrambling,
    [Scaled { per_node = 64; slack = 4 }]. *)

val make :
  ?faults:Faults.plan ->
  ?adversary:Adversary.plan ->
  ?pool:Anonet_parallel.Pool.t ->
  ?obs:Anonet_obs.Obs.t ->
  ?scramble_seed:int ->
  ?max_rounds_policy:max_rounds_policy ->
  unit ->
  t

val obs : t -> Anonet_obs.Obs.t
val pool : t -> Anonet_parallel.Pool.t option
val faults : t -> Faults.plan option
val adversary : t -> Adversary.plan option

val parallel : t -> Anonet_parallel.Pool.t option
(** The pool, but only when it actually runs more than one domain — the
    guard every parallel path uses before choosing its racing/sharding
    strategy over the sequential one. *)

val max_rounds : t -> n:int -> int
(** Apply {!max_rounds_policy} to an [n]-node graph. *)

val injector : t -> Faults.t option
(** A {e fresh} stateful injector for the context's fault plan.  Injectors
    must not be shared between runs; call this once per run. *)

val adversary_instance : t -> Adversary.t option
(** A {e fresh} stateful adversary for the context's adversary plan; same
    one-per-run contract as {!injector}. *)

val scramble_of_seed :
  int -> node:int -> degree:int -> round:int -> int array
(** The canonical scramble derivation (the seed mixing is pinned by
    regression tests). *)

val scramble :
  t -> (node:int -> degree:int -> round:int -> int array) option

val observe_faults : Anonet_obs.Obs.t -> Faults.t -> unit
(** Fold a (finished) injector's event log into the observability handle:
    one [faults.<kind>] counter increment and one ["fault"] event per
    injection, plus the [faults.spent] gauge.  Used by both executors after
    a run; a no-op on a null handle. *)

val observe_adversary : Anonet_obs.Obs.t -> Adversary.t -> unit
(** The adversary counterpart of {!observe_faults}: one
    [adversary.<kind>] counter increment and one ["adversary"] event per
    action (substituted / corrupted / targeted), plus the
    [adversary.spent] and [adversary.observed] gauges. *)
