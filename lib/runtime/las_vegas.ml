module Graph = Anonet_graph.Graph
module Prng = Anonet_graph.Prng

type report = {
  outcome : Executor.outcome;
  attempts : int;
  seed_used : int;
  rounds_spent : int;
}

let solve algo g ~seed ?max_rounds ?(attempts = 20) ?(backoff = 2.0) ?giveup
    ?faults () =
  if backoff < 1.0 then invalid_arg "Las_vegas.solve: backoff < 1";
  let base_rounds =
    match max_rounds with Some r -> r | None -> 64 * (Graph.n g + 4)
  in
  let budget_for i =
    (* Exponential backoff: unlucky (or faulted) attempts escalate their
       round budget instead of burning the same one [attempts] times. *)
    int_of_float (float_of_int base_rounds *. (backoff ** float_of_int (i - 1)))
  in
  let rec go i ~spent ~last_failure =
    let describe_last () =
      match last_failure with
      | None -> ""
      | Some (f, seed_used, budget) ->
        Format.asprintf " (last attempt: %a; budget %d; seed %d)"
          Executor.pp_failure f budget seed_used
    in
    if i > attempts then
      Error
        (Printf.sprintf
           "Las_vegas.solve: no success in %d attempts (%d rounds spent)%s"
           attempts spent (describe_last ()))
    else begin
      let budget = budget_for i in
      match giveup with
      | Some cap when spent + budget > cap && i > 1 ->
        Error
          (Printf.sprintf
             "Las_vegas.solve: giving up after %d attempts: next budget of %d \
              rounds would exceed the %d-round cap (%d spent)%s"
             (i - 1) budget cap spent (describe_last ()))
      | _ ->
        (* Splitmix-style hash of (seed, attempt): attempts draw unrelated
           tapes even for adjacent or arithmetically related seeds. *)
        let seed_used = Prng.hash2 seed i in
        let faults = Option.map Faults.make faults in
        (match
           Executor.run ?faults algo g ~tape:(Tape.random ~seed:seed_used)
             ~max_rounds:budget
         with
         | Ok outcome ->
           Ok { outcome; attempts = i; seed_used; rounds_spent = spent + outcome.rounds }
         | Error (Executor.Tape_exhausted _) ->
           (* Random tapes never exhaust. *)
           assert false
         | Error (Executor.All_nodes_crashed _ as f) ->
           (* The fault plan is deterministic: retrying cannot help. *)
           Error
             (Format.asprintf
                "Las_vegas.solve: %a on attempt %d (seed %d) — fault plan \
                 leaves no node running"
                Executor.pp_failure f i seed_used)
         | Error (Executor.Max_rounds_exceeded _ as f) ->
           go (i + 1) ~spent:(spent + budget)
             ~last_failure:(Some (f, seed_used, budget)))
    end
  in
  go 1 ~spent:0 ~last_failure:None
