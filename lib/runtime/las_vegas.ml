module Graph = Anonet_graph.Graph

type report = {
  outcome : Executor.outcome;
  attempts : int;
  seed_used : int;
}

let solve algo g ~seed ?max_rounds ?(attempts = 20) () =
  let max_rounds =
    match max_rounds with Some r -> r | None -> 64 * (Graph.n g + 4)
  in
  let rec go i =
    if i > attempts then
      Error
        (Printf.sprintf "Las_vegas.solve: no success in %d attempts of %d rounds"
           attempts max_rounds)
    else begin
      let seed_used = seed + (1_000_003 * (i - 1)) in
      match Executor.run algo g ~tape:(Tape.random ~seed:seed_used) ~max_rounds with
      | Ok outcome -> Ok { outcome; attempts = i; seed_used }
      | Error (Executor.Max_rounds_exceeded _) -> go (i + 1)
      | Error (Executor.Tape_exhausted _) ->
        (* Random tapes never exhaust. *)
        assert false
    end
  in
  go 1
