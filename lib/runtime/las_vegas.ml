module Graph = Anonet_graph.Graph
module Prng = Anonet_graph.Prng
module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs
module Events = Anonet_obs.Events

type report = {
  outcome : Executor.outcome;
  attempts : int;
  seed_used : int;
  rounds_spent : int;
}

type failure_reason = No_success | Gave_up | Diverged | Network_dead

type failure = { reason : failure_reason; message : string }

let fail reason message = { reason; message }

let failure_reason_name = function
  | No_success -> "no_success"
  | Gave_up -> "gave_up"
  | Diverged -> "diverged"
  | Network_dead -> "network_dead"

let pp_failure fmt f = Format.pp_print_string fmt f.message

(* Saturating addition: round budgets are clamped at [max_int / 2], so
   totals across attempts can still approach [max_int]. *)
let ( ++ ) a b = if a > max_int - b then max_int else a + b

(* ---------- shared between the sequential and racing paths ----------
   The racing path reconstructs the sequential run's reports and error
   strings exactly, so both paths format through the same helpers. *)

let describe_last = function
  | None -> ""
  | Some (f, seed_used, budget) ->
    Format.asprintf " (last attempt: %a; budget %d; seed %d)"
      Executor.pp_failure f budget seed_used

let no_success_msg ~attempts ~spent ~last =
  Printf.sprintf "Las_vegas.solve: no success in %d attempts (%d rounds spent)%s"
    attempts spent (describe_last last)

let giveup_msg ~attempts_done ~budget ~cap ~spent ~last =
  Printf.sprintf
    "Las_vegas.solve: giving up after %d attempts: next budget of %d rounds \
     would exceed the %d-round cap (%d spent)%s"
    attempts_done budget cap spent (describe_last last)

let crash_msg f i seed_used =
  Format.asprintf
    "Las_vegas.solve: %a on attempt %d (seed %d) — fault plan leaves no node \
     running"
    Executor.pp_failure f i seed_used

let diverged_msg ~attempt ~budget ~threshold ~spent ~seed_used =
  Printf.sprintf
    "Las_vegas.solve: divergence detected on attempt %d: no output within %d \
     rounds (threshold %d; %d rounds spent; seed %d)"
    attempt budget threshold spent seed_used

(* ---------- one attempt ---------- *)

type attempt_outcome =
  | Done of Executor.outcome
  | Crashed of Executor.failure  (** [All_nodes_crashed]: retrying cannot help *)
  | Out_of_rounds of Executor.failure

let attempt_outcome_name = function
  | Done _ -> "success"
  | Crashed _ -> "crashed"
  | Out_of_rounds _ -> "out_of_rounds"

let attempt ~obs algo g ~seed ~faults ~adversary i ~budget =
  (* Splitmix-style hash of (seed, attempt): attempts draw unrelated tapes
     even for adjacent or arithmetically related seeds. *)
  let seed_used = Prng.hash2 seed i in
  Obs.eventf obs "attempt.start" (fun () ->
      [
        ("attempt", Events.Int i);
        ("budget", Events.Int budget);
        ("seed", Events.Int seed_used);
      ]);
  (* Each attempt gets its own context with a fresh injector (instantiated
     inside [Executor.run]) and a *null* observability handle: a failed
     speculative attempt must not pollute the run's counters, so attempts
     surface only as events and the solve-level [lv.*] counters are posted
     from the final report. *)
  let ctx = Run_ctx.make ?faults ?adversary () in
  let outcome =
    match
      Executor.run ~ctx algo g ~tape:(Tape.random ~seed:seed_used)
        ~max_rounds:budget
    with
    | Ok outcome -> Done outcome
    | Error (Executor.Tape_exhausted _) ->
      (* Random tapes never exhaust. *)
      assert false
    | Error (Executor.All_nodes_crashed _ as f) -> Crashed f
    | Error (Executor.Max_rounds_exceeded _ as f) -> Out_of_rounds f
  in
  Obs.eventf obs "attempt.done" (fun () ->
      [
        ("attempt", Events.Int i);
        ("outcome", Events.String (attempt_outcome_name outcome));
      ]);
  outcome

(* ---------- sequential ---------- *)

let solve_sequential ~obs algo g ~seed ~budget_for ~attempts ~giveup ~threshold
    ~faults ~adversary =
  let rec go i ~spent ~last_failure =
    if i > attempts then
      Error (fail No_success (no_success_msg ~attempts ~spent ~last:last_failure))
    else begin
      let budget = budget_for i in
      match giveup with
      | Some cap when spent ++ budget > cap && i > 1 ->
        Error
          (fail Gave_up
             (giveup_msg ~attempts_done:(i - 1) ~budget ~cap ~spent
                ~last:last_failure))
      | _ ->
        let seed_used = Prng.hash2 seed i in
        (match attempt ~obs algo g ~seed ~faults ~adversary i ~budget with
         | Done outcome ->
           Ok
             {
               outcome;
               attempts = i;
               seed_used;
               rounds_spent = spent ++ outcome.rounds;
             }
         | Crashed f ->
           (* The fault plan is deterministic: retrying cannot help. *)
           Error (fail Network_dead (crash_msg f i seed_used))
         | Out_of_rounds _ when budget >= threshold ->
           (* An attempt this generous failing is divergence, not bad luck:
              the run is systematically prevented from stabilizing (e.g. an
              unbounded adversary re-corrupting every round).  Terminal —
              escalating the budget further cannot help. *)
           Error
             (fail Diverged
                (diverged_msg ~attempt:i ~budget ~threshold
                   ~spent:(spent ++ budget) ~seed_used))
         | Out_of_rounds f ->
           go (i + 1) ~spent:(spent ++ budget)
             ~last_failure:(Some (f, seed_used, budget)))
    end
  in
  go 1 ~spent:0 ~last_failure:None

(* ---------- racing ----------

   Attempt outcomes are pure functions of (seed, attempt index, budget), so
   the attempt the sequential loop would have stopped at — the lowest index
   with a terminal (success or crash) outcome — is well defined without
   running attempts in order.  [Pool.race] computes exactly that index,
   running waves of speculative attempts concurrently and cancelling
   attempts that already lost, and the report is reassembled from arithmetic
   the sequential loop would have done: spent rounds are the (deterministic)
   budgets of the failed lower attempts. *)

let solve_racing ~obs pool algo g ~seed ~budget_for ~attempts ~giveup ~threshold
    ~faults ~adversary =
  (* Rounds the sequential loop has spent before attempt [i]: every lower
     attempt failed and burned its whole budget. *)
  let spent_before i =
    let rec go j acc = if j >= i then acc else go (j + 1) (acc ++ budget_for j) in
    go 1 0
  in
  (* The attempts the sequential loop would ever start: the give-up cap
     truncates the schedule at a point that depends only on the budgets. *)
  let planned, giveup_at =
    match giveup with
    | None -> attempts, None
    | Some cap ->
      let rec scan i spent =
        if i > attempts then attempts, None
        else begin
          let b = budget_for i in
          if i > 1 && spent ++ b > cap then i - 1, Some (cap, b, spent)
          else scan (i + 1) (spent ++ b)
        end
      in
      scan 1 0
  in
  let task ~stop idx =
    let i = idx + 1 in
    (* A lower-indexed attempt already won: this attempt's outcome cannot
       affect the (lowest-terminal-index) result, so skip the work.  Racing
       and sequential results stay identical — only the wasted speculation
       is cut short. *)
    if stop () then begin
      Obs.eventf obs "attempt.cancel" (fun () -> [ ("attempt", Events.Int i) ]);
      None
    end
    else begin
      match attempt ~obs algo g ~seed ~faults ~adversary i ~budget:(budget_for i) with
      | Done _ | Crashed _ as terminal -> Some terminal
      | Out_of_rounds _ as t when budget_for i >= threshold ->
        (* Divergence is terminal, and budgets grow monotonically with the
           attempt index, so the lowest terminal index is still exactly
           where the sequential loop stops. *)
        Some t
      | Out_of_rounds _ -> None
    end
  in
  match Pool.race pool ~n:planned task with
  | Some (idx, Done outcome) ->
    let i = idx + 1 in
    Ok
      {
        outcome;
        attempts = i;
        seed_used = Prng.hash2 seed i;
        rounds_spent = spent_before i ++ outcome.rounds;
      }
  | Some (idx, Crashed f) ->
    let i = idx + 1 in
    Error (fail Network_dead (crash_msg f i (Prng.hash2 seed i)))
  | Some (idx, Out_of_rounds _) ->
    let i = idx + 1 in
    let budget = budget_for i in
    Error
      (fail Diverged
         (diverged_msg ~attempt:i ~budget ~threshold
            ~spent:(spent_before i ++ budget) ~seed_used:(Prng.hash2 seed i)))
  | None ->
    (* Every planned attempt ran out of rounds — reconstruct the failure
       the last attempt would have reported. *)
    let last =
      if planned = 0 then None
      else begin
        let b = budget_for planned in
        Some (Executor.Max_rounds_exceeded b, Prng.hash2 seed planned, b)
      end
    in
    (match giveup_at with
     | Some (cap, budget, spent) ->
       Error
         (fail Gave_up (giveup_msg ~attempts_done:planned ~budget ~cap ~spent ~last))
     | None ->
       Error
         (fail No_success
            (no_success_msg ~attempts ~spent:(spent_before (attempts + 1)) ~last)))

let solve_with ~obs ~faults ~adversary ~pool algo g ~seed ?max_rounds
    ?(attempts = 20) ?(backoff = 2.0) ?giveup ?divergence () =
  if backoff < 1.0 then invalid_arg "Las_vegas.solve: backoff < 1";
  (match divergence with
   | Some d when d <= 0.0 -> invalid_arg "Las_vegas.solve: divergence <= 0"
   | _ -> ());
  let base_rounds =
    match max_rounds with Some r -> r | None -> 64 * (Graph.n g + 4)
  in
  let clamp f = if f >= float_of_int (max_int / 2) then max_int / 2 else int_of_float f in
  let budget_for i =
    (* Exponential backoff: unlucky (or faulted) attempts escalate their
       round budget instead of burning the same one [attempts] times.
       Clamped at [max_int / 2]: [backoff ** (i-1)] overflows the integer
       range for moderate attempt counts already, and an unclamped
       [int_of_float] would wrap the budget negative. *)
    clamp (float_of_int base_rounds *. (backoff ** float_of_int (i - 1)))
  in
  (* Divergence threshold: an attempt whose budget reached
     [divergence * base_rounds] and still ran out of rounds is declared
     diverged rather than retried.  [max_int] (never reached — budgets are
     clamped below it) disables the check. *)
  let threshold =
    match divergence with
    | None -> max_int
    | Some d -> clamp (d *. float_of_int base_rounds)
  in
  let result =
    Obs.span obs "las_vegas.solve" (fun () ->
        match pool with
        | Some p when Pool.domains p > 1 ->
          solve_racing ~obs p algo g ~seed ~budget_for ~attempts ~giveup
            ~threshold ~faults ~adversary
        | Some _ | None ->
          solve_sequential ~obs algo g ~seed ~budget_for ~attempts ~giveup
            ~threshold ~faults ~adversary)
  in
  (* The [lv.*] counters mirror the report exactly — the acceptance tests
     compare them field by field — so they are posted from it rather than
     accumulated along the way (speculative attempts would over-count). *)
  (match result with
   | Ok r ->
     Obs.incr ~by:r.attempts (Obs.counter obs "lv.attempts");
     Obs.incr ~by:r.rounds_spent (Obs.counter obs "lv.rounds_spent");
     Obs.incr ~by:r.outcome.rounds (Obs.counter obs "lv.rounds");
     Obs.incr ~by:r.outcome.messages (Obs.counter obs "lv.messages");
     Obs.eventf obs "attempt.win" (fun () ->
         [
           ("attempt", Events.Int r.attempts);
           ("rounds", Events.Int r.outcome.rounds);
           ("seed", Events.Int r.seed_used);
         ])
   | Error f ->
     Obs.eventf obs "lv.fail" (fun () ->
         [
           ("error", Events.String f.message);
           ("reason", Events.String (failure_reason_name f.reason));
         ]));
  result

let solve ?(ctx = Run_ctx.default) algo g ~seed ?max_rounds ?attempts
    ?backoff ?giveup ?divergence () =
  (* The context's policy supplies the base budget unless the caller pins
     one explicitly; the default policy reproduces the historical
     [64 * (n + 4)]. *)
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None -> Run_ctx.max_rounds ctx ~n:(Graph.n g)
  in
  solve_with ~obs:(Run_ctx.obs ctx) ~faults:(Run_ctx.faults ctx)
    ~adversary:(Run_ctx.adversary ctx) ~pool:(Run_ctx.pool ctx) algo g ~seed
    ~max_rounds ?attempts ?backoff ?giveup ?divergence ()

let solve_msg ?ctx algo g ~seed ?max_rounds ?attempts ?backoff ?giveup
    ?divergence () =
  Result.map_error
    (fun f -> f.message)
    (solve ?ctx algo g ~seed ?max_rounds ?attempts ?backoff ?giveup
       ?divergence ())
