module Graph = Anonet_graph.Graph
module Prng = Anonet_graph.Prng
module Pool = Anonet_parallel.Pool

type report = {
  outcome : Executor.outcome;
  attempts : int;
  seed_used : int;
  rounds_spent : int;
}

(* Saturating addition: round budgets are clamped at [max_int / 2], so
   totals across attempts can still approach [max_int]. *)
let ( ++ ) a b = if a > max_int - b then max_int else a + b

(* ---------- shared between the sequential and racing paths ----------
   The racing path reconstructs the sequential run's reports and error
   strings exactly, so both paths format through the same helpers. *)

let describe_last = function
  | None -> ""
  | Some (f, seed_used, budget) ->
    Format.asprintf " (last attempt: %a; budget %d; seed %d)"
      Executor.pp_failure f budget seed_used

let no_success_msg ~attempts ~spent ~last =
  Printf.sprintf "Las_vegas.solve: no success in %d attempts (%d rounds spent)%s"
    attempts spent (describe_last last)

let giveup_msg ~attempts_done ~budget ~cap ~spent ~last =
  Printf.sprintf
    "Las_vegas.solve: giving up after %d attempts: next budget of %d rounds \
     would exceed the %d-round cap (%d spent)%s"
    attempts_done budget cap spent (describe_last last)

let crash_msg f i seed_used =
  Format.asprintf
    "Las_vegas.solve: %a on attempt %d (seed %d) — fault plan leaves no node \
     running"
    Executor.pp_failure f i seed_used

(* ---------- one attempt ---------- *)

type attempt_outcome =
  | Done of Executor.outcome
  | Crashed of Executor.failure  (** [All_nodes_crashed]: retrying cannot help *)
  | Out_of_rounds of Executor.failure

let attempt algo g ~seed ~faults i ~budget =
  (* Splitmix-style hash of (seed, attempt): attempts draw unrelated tapes
     even for adjacent or arithmetically related seeds. *)
  let seed_used = Prng.hash2 seed i in
  let faults = Option.map Faults.make faults in
  match
    Executor.run ?faults algo g ~tape:(Tape.random ~seed:seed_used)
      ~max_rounds:budget
  with
  | Ok outcome -> Done outcome
  | Error (Executor.Tape_exhausted _) ->
    (* Random tapes never exhaust. *)
    assert false
  | Error (Executor.All_nodes_crashed _ as f) -> Crashed f
  | Error (Executor.Max_rounds_exceeded _ as f) -> Out_of_rounds f

(* ---------- sequential ---------- *)

let solve_sequential algo g ~seed ~budget_for ~attempts ~giveup ~faults =
  let rec go i ~spent ~last_failure =
    if i > attempts then
      Error (no_success_msg ~attempts ~spent ~last:last_failure)
    else begin
      let budget = budget_for i in
      match giveup with
      | Some cap when spent ++ budget > cap && i > 1 ->
        Error
          (giveup_msg ~attempts_done:(i - 1) ~budget ~cap ~spent
             ~last:last_failure)
      | _ ->
        let seed_used = Prng.hash2 seed i in
        (match attempt algo g ~seed ~faults i ~budget with
         | Done outcome ->
           Ok
             {
               outcome;
               attempts = i;
               seed_used;
               rounds_spent = spent ++ outcome.rounds;
             }
         | Crashed f ->
           (* The fault plan is deterministic: retrying cannot help. *)
           Error (crash_msg f i seed_used)
         | Out_of_rounds f ->
           go (i + 1) ~spent:(spent ++ budget)
             ~last_failure:(Some (f, seed_used, budget)))
    end
  in
  go 1 ~spent:0 ~last_failure:None

(* ---------- racing ----------

   Attempt outcomes are pure functions of (seed, attempt index, budget), so
   the attempt the sequential loop would have stopped at — the lowest index
   with a terminal (success or crash) outcome — is well defined without
   running attempts in order.  [Pool.race] computes exactly that index,
   running waves of speculative attempts concurrently and cancelling
   attempts that already lost, and the report is reassembled from arithmetic
   the sequential loop would have done: spent rounds are the (deterministic)
   budgets of the failed lower attempts. *)

let solve_racing pool algo g ~seed ~budget_for ~attempts ~giveup ~faults =
  (* Rounds the sequential loop has spent before attempt [i]: every lower
     attempt failed and burned its whole budget. *)
  let spent_before i =
    let rec go j acc = if j >= i then acc else go (j + 1) (acc ++ budget_for j) in
    go 1 0
  in
  (* The attempts the sequential loop would ever start: the give-up cap
     truncates the schedule at a point that depends only on the budgets. *)
  let planned, giveup_at =
    match giveup with
    | None -> attempts, None
    | Some cap ->
      let rec scan i spent =
        if i > attempts then attempts, None
        else begin
          let b = budget_for i in
          if i > 1 && spent ++ b > cap then i - 1, Some (cap, b, spent)
          else scan (i + 1) (spent ++ b)
        end
      in
      scan 1 0
  in
  let task ~stop:_ idx =
    let i = idx + 1 in
    match attempt algo g ~seed ~faults i ~budget:(budget_for i) with
    | Done _ | Crashed _ as terminal -> Some terminal
    | Out_of_rounds _ -> None
  in
  match Pool.race pool ~n:planned task with
  | Some (idx, Done outcome) ->
    let i = idx + 1 in
    Ok
      {
        outcome;
        attempts = i;
        seed_used = Prng.hash2 seed i;
        rounds_spent = spent_before i ++ outcome.rounds;
      }
  | Some (idx, Crashed f) ->
    let i = idx + 1 in
    Error (crash_msg f i (Prng.hash2 seed i))
  | Some (_, Out_of_rounds _) -> assert false
  | None ->
    (* Every planned attempt ran out of rounds — reconstruct the failure
       the last attempt would have reported. *)
    let last =
      if planned = 0 then None
      else begin
        let b = budget_for planned in
        Some (Executor.Max_rounds_exceeded b, Prng.hash2 seed planned, b)
      end
    in
    (match giveup_at with
     | Some (cap, budget, spent) ->
       Error (giveup_msg ~attempts_done:planned ~budget ~cap ~spent ~last)
     | None ->
       Error (no_success_msg ~attempts ~spent:(spent_before (attempts + 1)) ~last))

let solve algo g ~seed ?max_rounds ?(attempts = 20) ?(backoff = 2.0) ?giveup
    ?faults ?pool () =
  if backoff < 1.0 then invalid_arg "Las_vegas.solve: backoff < 1";
  let base_rounds =
    match max_rounds with Some r -> r | None -> 64 * (Graph.n g + 4)
  in
  let budget_for i =
    (* Exponential backoff: unlucky (or faulted) attempts escalate their
       round budget instead of burning the same one [attempts] times.
       Clamped at [max_int / 2]: [backoff ** (i-1)] overflows the integer
       range for moderate attempt counts already, and an unclamped
       [int_of_float] would wrap the budget negative. *)
    let f = float_of_int base_rounds *. (backoff ** float_of_int (i - 1)) in
    if f >= float_of_int (max_int / 2) then max_int / 2 else int_of_float f
  in
  match pool with
  | Some p when Pool.domains p > 1 ->
    solve_racing p algo g ~seed ~budget_for ~attempts ~giveup ~faults
  | Some _ | None -> solve_sequential algo g ~seed ~budget_for ~attempts ~giveup ~faults
