module Label = Anonet_graph.Label
module Prng = Anonet_graph.Prng

type strategy =
  | Byzantine of int list
  | Link_sniper of int
  | Eavesdropper of int

type plan = {
  seed : int;
  strength : float;
  strategy : strategy;
  budget : int option;
}

let byzantine nodes ~strength ~seed =
  { seed; strength; strategy = Byzantine nodes; budget = None }

let sniper k ~strength ~seed =
  { seed; strength; strategy = Link_sniper k; budget = None }

let eavesdropper k ~strength ~seed =
  { seed; strength; strategy = Eavesdropper k; budget = None }

type event_kind =
  | Substituted of { src : int; dst : int }
  | Corrupted of { src : int; dst : int }
  | Targeted of { src : int; dst : int }

type event = {
  round : int;
  kind : event_kind;
}

let pp_event fmt { round; kind } =
  let msg verb src dst =
    Format.fprintf fmt "round %3d: %s %d -> %d" round verb src dst
  in
  match kind with
  | Substituted { src; dst } -> msg "substitute" src dst
  | Corrupted { src; dst } -> msg "corrupt" src dst
  | Targeted { src; dst } -> msg "target" src dst

(* Per-link observation tables all key on the directed link (src, dst).
   [distinct] bounds its per-link payload set: entropy scoring only needs
   "more diverse than the other links", not an exact cardinality, and the
   cap keeps a long chatty run from accumulating unbounded encodings. *)
let distinct_cap = 256

type t = {
  plan : plan;
  rng : Prng.t;
  byz : (int, unit) Hashtbl.t;
  last_seen : (int * int, Label.t) Hashtbl.t;  (* link -> last honest payload *)
  recent : (int * int, int) Hashtbl.t;  (* traffic since the last boundary *)
  distinct : (int * int, (string, unit) Hashtbl.t) Hashtbl.t;
  targets : (int * int, unit) Hashtbl.t;  (* links targeted this round *)
  mutable cur_round : int;
  mutable observed : int;
  mutable spent : int;
  mutable events : event list;  (* reversed *)
}

let record t round kind = t.events <- { round; kind } :: t.events

let charge t =
  match t.plan.budget with
  | None ->
    t.spent <- t.spent + 1;
    true
  | Some k ->
    if t.spent >= k then false
    else begin
      t.spent <- t.spent + 1;
      true
    end

let make plan =
  if not (plan.strength >= 0.0 && plan.strength <= 1.0) then
    invalid_arg
      (Printf.sprintf "Adversary.make: strength=%g outside [0,1]" plan.strength);
  (match plan.budget with
   | Some k when k < 0 -> invalid_arg "Adversary.make: negative budget"
   | _ -> ());
  let byz = Hashtbl.create 4 in
  (match plan.strategy with
   | Byzantine nodes ->
     List.iter
       (fun v ->
         if v < 0 then invalid_arg "Adversary.make: negative Byzantine node";
         Hashtbl.replace byz v ())
       nodes
   | Link_sniper k | Eavesdropper k ->
     if k < 0 then invalid_arg "Adversary.make: negative link count");
  {
    plan;
    rng = Prng.create (Prng.hash2 plan.seed 0xADF0E);
    byz;
    last_seen = Hashtbl.create 16;
    recent = Hashtbl.create 16;
    distinct = Hashtbl.create 16;
    targets = Hashtbl.create 4;
    cur_round = 0;
    observed = 0;
    spent = 0;
    events = [];
  }

let plan t = t.plan
let spent t = t.spent
let observed t = t.observed

let events t =
  List.stable_sort (fun a b -> compare a.round b.round) (List.rev t.events)

let hit t = t.plan.strength > 0.0 && Prng.float t.rng < t.plan.strength

(* Round boundary: re-pick the target links from the observations so far.
   Scores are per-link scalars, fully ordered by (score desc, link asc), so
   the selection is independent of hash-table iteration order. *)
let adapt t ~round =
  t.cur_round <- round;
  let pick k score =
    let scored =
      Hashtbl.fold
        (fun key _ acc ->
          let s = score key in
          if s > 0 then (key, s) :: acc else acc)
        t.last_seen []
    in
    let sorted =
      List.sort
        (fun (k1, a) (k2, b) -> if a <> b then compare b a else compare k1 k2)
        scored
    in
    Hashtbl.reset t.targets;
    List.iteri
      (fun i ((src, dst), _) ->
        if i < k then begin
          Hashtbl.replace t.targets (src, dst) ();
          record t round (Targeted { src; dst })
        end)
      sorted
  in
  (match t.plan.strategy with
   | Byzantine _ -> ()
   | Link_sniper k ->
     pick k (fun key -> Option.value ~default:0 (Hashtbl.find_opt t.recent key))
   | Eavesdropper k ->
     pick k (fun key ->
         match Hashtbl.find_opt t.distinct key with
         | Some set -> Hashtbl.length set
         | None -> 0));
  Hashtbl.reset t.recent

(* A Byzantine sender's crafted payload: replay an earlier (different)
   message seen on the same link when the coin says so — a well-formed lie —
   otherwise perturb the honest payload structurally. *)
let craft t ~src ~dst payload =
  match Hashtbl.find_opt t.last_seen (src, dst) with
  | Some prev when not (Label.equal prev payload) && Prng.bool t.rng -> prev
  | _ -> Faults.corrupt_label t.rng payload

let observe t ~src ~dst payload =
  t.observed <- t.observed + 1;
  let key = (src, dst) in
  (match t.plan.strategy with
   | Eavesdropper _ ->
     let set =
       match Hashtbl.find_opt t.distinct key with
       | Some s -> s
       | None ->
         let s = Hashtbl.create 8 in
         Hashtbl.add t.distinct key s;
         s
     in
     if Hashtbl.length set < distinct_cap then
       Hashtbl.replace set (Label.encode payload) ()
   | Byzantine _ | Link_sniper _ -> ());
  Hashtbl.replace t.recent key
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.recent key));
  Hashtbl.replace t.last_seen key payload

let tamper t ~src ~dst ~round payload =
  if round > t.cur_round then adapt t ~round;
  let substituted =
    match t.plan.strategy with
    | Byzantine _ when Hashtbl.mem t.byz src ->
      if hit t && charge t then begin
        let crafted = craft t ~src ~dst payload in
        record t round (Substituted { src; dst });
        Some crafted
      end
      else None
    | (Link_sniper _ | Eavesdropper _) when Hashtbl.mem t.targets (src, dst) ->
      if hit t && charge t then begin
        record t round (Corrupted { src; dst });
        Some (Faults.corrupt_label t.rng payload)
      end
      else None
    | Byzantine _ | Link_sniper _ | Eavesdropper _ -> None
  in
  (* The observation tables record the honest payload: the adversary knows
     what it substituted and learns nothing from its own lies. *)
  observe t ~src ~dst payload;
  match substituted with Some p -> p | None -> payload

(* ---------- the adversary-spec grammar ---------- *)

let plan_to_string p =
  let b = Buffer.create 48 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        if Buffer.length b > 0 then Buffer.add_char b ',';
        Buffer.add_string b s)
      fmt
  in
  (match p.strategy with
   | Byzantine nodes ->
     add "byzantine=%s" (String.concat "+" (List.map string_of_int nodes))
   | Link_sniper k -> add "sniper=%d" k
   | Eavesdropper k -> add "eavesdropper=%d" k);
  add "strength=%g" p.strength;
  add "seed=%d" p.seed;
  (match p.budget with Some k -> add "budget=%d" k | None -> ());
  Buffer.contents b

let plan_of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_item acc item =
    match acc with
    | Error _ as e -> e
    | Ok (strategy, partial) ->
      let key, value =
        match String.index_opt item '=' with
        | Some i ->
          ( String.sub item 0 i,
            String.sub item (i + 1) (String.length item - i - 1) )
        | None -> item, ""
      in
      let int_v () =
        match int_of_string_opt value with
        | Some n -> Ok n
        | None -> fail "adversary: %s=%S is not an integer" key value
      in
      let link_count () =
        Result.bind (int_v ()) (fun k ->
            if k < 0 then fail "adversary: %s=%d is negative" key k else Ok k)
      in
      let one strat =
        match strategy with
        | None -> Ok (Some strat, partial)
        | Some _ -> fail "adversary: more than one strategy item"
      in
      let ( let* ) = Result.bind in
      match key with
      | "byzantine" ->
        let* nodes =
          List.fold_left
            (fun acc part ->
              let* acc = acc in
              match int_of_string_opt part with
              | Some v when v >= 0 -> Ok (acc @ [ v ])
              | _ -> fail "adversary: byzantine node %S" part)
            (Ok [])
            (String.split_on_char '+' value)
        in
        one (Byzantine nodes)
      | "sniper" ->
        let* k = link_count () in
        one (Link_sniper k)
      | "eavesdropper" ->
        let* k = link_count () in
        one (Eavesdropper k)
      | "strength" -> begin
          match float_of_string_opt value with
          | Some p when p >= 0.0 && p <= 1.0 ->
            Ok (strategy, { partial with strength = p })
          | _ -> fail "adversary: strength=%S is not a probability in [0,1]" value
        end
      | "seed" ->
        let* n = int_v () in
        Ok (strategy, { partial with seed = n })
      | "budget" ->
        let* n = int_v () in
        if n < 0 then fail "adversary: budget=%d is negative" n
        else Ok (strategy, { partial with budget = Some n })
      | _ -> fail "adversary: unknown item %S" item
  in
  if String.trim s = "" then Error "adversary: empty spec"
  else begin
    let start =
      { seed = 0; strength = 1.0; strategy = Byzantine []; budget = None }
    in
    match
      List.fold_left parse_item
        (Ok (None, start))
        (List.map String.trim (String.split_on_char ',' s))
    with
    | Error _ as e -> e
    | Ok (None, _) ->
      Error "adversary: missing strategy item (byzantine=, sniper= or eavesdropper=)"
    | Ok (Some strategy, partial) -> Ok { partial with strategy }
  end
