(** One failure type — and one process exit-code numbering — for both
    executors, the Las-Vegas harness, and the wire protocol.

    Historically [Executor.exit_code] owned codes 2–4 and [Async.exit_code]
    continued at 5, and the CLI pattern-matched two failure types to pick
    one.  This module consolidates them (the per-executor functions are
    gone).

    Codes: [Max_rounds_exceeded] = 2, [Tape_exhausted] = 3 (shared — the
    synchronous and synchronizer-round variants mean the same thing),
    [All_nodes_crashed] = 4 (shared with [Las_vegas Network_dead]: both
    mean the fault plan leaves no node running), [Event_limit_exceeded] =
    5, [Stalled] = 6, [Las_vegas No_success] = 7, [Las_vegas Gave_up] = 8,
    [Las_vegas Diverged] = 9.  The [Net] band covers the service mode's
    wire protocol: [Protocol] = 10 (a malformed frame — bad magic, bad
    version, oversized or truncated payload), [Rejected] = 11 (a
    well-formed frame carrying an unacceptable job spec), [Connection] =
    12 (the transport failed mid-conversation).  Code 1 is the CLI's
    generic error; 0 is success. *)

(** Failures of the wire layer ([anonet serve] / [anonet client]).  The
    type lives here rather than in [lib/net] so that the one exit-code
    numbering stays a closed catalog next to the codes it owns. *)
type net_failure =
  | Protocol of { message : string }
      (** the peer sent bytes that do not parse as a frame *)
  | Rejected of { message : string }
      (** the frame parsed but the server refused it (unknown job field,
          duplicate stream id, cancelled job) *)
  | Connection of { message : string }
      (** the connection failed before every stream completed *)

type t =
  | Sync of Executor.failure
  | Async of Async.failure
  | Las_vegas of Las_vegas.failure
  | Net of net_failure

val exit_code : t -> int

val pp : Format.formatter -> t -> unit
(** Delegates to the executors' and harness's [pp_failure]; prints the
    [Net] band's messages directly. *)

val all : t list
(** One representative per failure variant (payloads zeroed) — exhaustive,
    for round-trip tests over the numbering. *)

val of_exit_code : int -> t option
(** The canonical representative for a code ([None] for codes the runtime
    never produces, including 0 and 1).  For every [e] in {!all},
    [of_exit_code (exit_code e)] maps back to a value with the same
    [exit_code]. *)
