module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Bitvec = Anonet_graph.Bitvec
module Obs = Anonet_obs.Obs
module Events = Anonet_obs.Events

type failure =
  | Max_rounds_exceeded of int
  | Tape_exhausted of { round : int }
  | All_nodes_crashed of { round : int }

let pp_failure fmt = function
  | Max_rounds_exceeded r -> Format.fprintf fmt "no output after %d rounds" r
  | Tape_exhausted { round } -> Format.fprintf fmt "tape exhausted at round %d" round
  | All_nodes_crashed { round } ->
    Format.fprintf fmt "every node crash-stopped by round %d" round

type outcome = {
  outputs : Label.t array;
  rounds : int;
  messages : int;
}

(* Branchless whole-array compare: the dedup tables call this almost
   exclusively on arrays whose 62-bit hashes already matched, i.e. on
   genuine duplicates, where an early-exit loop pays its per-word branch
   on every word and never exits early.  OR-accumulating the XOR of each
   word pair pipelines at ~1 word/cycle instead. *)
let int_array_equal a b =
  let la = Array.length a in
  la = Array.length b
  &&
  let acc = ref 0 in
  for i = 0 to la - 1 do
    acc := !acc lor (Array.unsafe_get a i lxor Array.unsafe_get b i)
  done;
  !acc = 0

(* Two independent accumulator lanes halve the serial multiply-chain
   latency that dominates a one-lane [h*31+x] fold; the lanes are combined
   at the end.  Only dedup-key quality depends on this function — the
   values never leave the process — so the formula is free to change. *)
let hash_int_array seed a =
  let n = Array.length a in
  let h1 = ref seed and h2 = ref (seed lxor 0x9e3779b9) in
  let i = ref 0 in
  while !i + 1 < n do
    h1 := (!h1 * 31) + Array.unsafe_get a !i;
    h2 := (!h2 * 31) + Array.unsafe_get a (!i + 1);
    i := !i + 2
  done;
  if !i < n then h1 := (!h1 * 31) + Array.unsafe_get a !i;
  ((!h1 * 31) + !h2) land max_int

module Incremental = struct
  (* Existentially packed execution state.  [inboxes.(v).(p)] holds the
     message node [v] will receive on port [p] this round (sent by its
     neighbor last round).  [reverse.(v).(p)] is the pair [(u, q)] such
     that port [p] of [v] reaches [u] whose port [q] comes back to [v]. *)
  type boxed =
    | Pack : {
        algo : (module Algorithm.S with type state = 's);
        graph : Graph.t;
        reverse : (int * int) array array;
        states : 's array;
        inboxes : Label.t option array array;
        outputs : Label.t option array;
        round : int;
        messages : int;
        (* Context defaults captured at [start ?ctx]; explicit [step]
           arguments override them.  [None] for pre-context callers. *)
        d_scramble : (node:int -> degree:int -> round:int -> int array) option;
        d_faults : Faults.t option;
        d_adversary : Adversary.t option;
      }
        -> boxed

  (* Graph-shaped immutable geometry shared by every flat state of one
     execution (and, via [Scratch], across many executions on the same
     graph).  [slot_off.(v)] is the first directed-edge slot of node [v]
     (its port [p] is slot [slot_off.(v) + p]); [src.(s)] is the neighbor
     whose broadcast lands in slot [s]. *)
  type layout = {
    n : int;
    degrees : int array;
    state_words : int;
    msg_words : int;
    total_slots : int;
    slot_off : int array;
    src : int array;
    inst : Algorithm.Flat.instance;
  }

  (* Flat execution state: one int arena holds the whole network — node
     states first ([state_words] ints per node), then the inbox
     ([msg_words] ints per directed-edge slot, first word 0 when empty).
     The arena is immutable once the state is built, so the persistence
     contract is the same as the boxed path's — a step allocates exactly
     one array regardless of message structure, and the arena itself is
     the dedup key. *)
  type flat = {
    lay : layout;
    arena : int array;
    fout : int;  (* nodes with output (irrevocable, so a plain count) *)
    fround : int;
    fmessages : int;
  }

  let state_size lay = lay.n * lay.state_words

  let arena_size lay = state_size lay + (lay.total_slots * lay.msg_words)

  type t =
    | Boxed of boxed
    | Flat of flat

  let reverse_ports g =
    Array.init (Graph.n g) (fun v ->
        Array.init (Graph.degree g v) (fun p ->
            let u = Graph.neighbor g v p in
            u, Graph.port_to g u v))

  let layout_of (flat : Algorithm.Flat.t) g =
    match flat.plan g with
    | None -> None
    | Some inst ->
      let n = Graph.n g in
      (* The graph already stores its adjacency as exactly this CSR shape:
         [Graph.offsets] is the slot-offset array (port [p] of node [v] is
         directed slot [offsets.(v) + p]) and [Graph.adjacency] is the
         per-slot source node.  Alias both — the layout never mutates
         them, and sharing makes layout construction O(n) (the degree
         diff) instead of re-walking every edge through the accessor
         API. *)
      let slot_off = Graph.offsets g in
      let degrees = Array.init n (fun v -> slot_off.(v + 1) - slot_off.(v)) in
      Some
        {
          n;
          degrees;
          state_words = inst.state_words;
          msg_words = inst.msg_words;
          total_slots = slot_off.(n);
          slot_off;
          src = Graph.adjacency g;
          inst;
        }

  let count_outputs lay states =
    let out = ref 0 in
    for v = 0 to lay.n - 1 do
      if lay.inst.has_output ~state:states ~off:(v * lay.state_words) then
        incr out
    done;
    !out

  let init_flat_states lay g states =
    for v = 0 to lay.n - 1 do
      lay.inst.init ~node:v ~input:(Graph.label g v) ~degree:lay.degrees.(v)
        ~state:states ~off:(v * lay.state_words)
    done

  let start_flat algo g =
    match Algorithm.find_flat algo with
    | None -> None
    | Some flat ->
      (match layout_of flat g with
       | None -> None
       | Some lay ->
         let arena = Array.make (arena_size lay) 0 in
         init_flat_states lay g arena;
         Some
           {
             lay;
             arena;
             fout = count_outputs lay arena;
             fround = 0;
             fmessages = 0;
           })

  let start_boxed ~d_scramble ~d_faults ~d_adversary (module A : Algorithm.S) g =
    let n = Graph.n g in
    let states =
      Array.init n (fun v ->
          A.init ~input:(Graph.label g v) ~degree:(Graph.degree g v))
    in
    Pack
      {
        algo = (module A);
        graph = g;
        reverse = reverse_ports g;
        states;
        inboxes = Array.init n (fun v -> Array.make (Graph.degree g v) None);
        outputs = Array.init n (fun v -> A.output states.(v));
        round = 0;
        messages = 0;
        d_scramble;
        d_faults;
        d_adversary;
      }

  let start ?(ctx = Run_ctx.default) ?(use_flat = true) algo g =
    let d_scramble = Run_ctx.scramble ctx in
    let d_faults = Run_ctx.injector ctx in
    let d_adversary = Run_ctx.adversary_instance ctx in
    let flat =
      (* Faults, adversaries and scrambles operate on boxed [Label.t]
         payloads (and their observable event streams are defined over
         them), so any injection hook pins the boxed representation. *)
      if
        use_flat && Option.is_none d_scramble && Option.is_none d_faults
        && Option.is_none d_adversary
      then start_flat algo g
      else None
    in
    match flat with
    | Some f -> Flat f
    | None -> Boxed (start_boxed ~d_scramble ~d_faults ~d_adversary algo g)

  (* Per-domain scratch for the persistent flat step: the send buffer and
     sent flags live only within one [step] call, and the probe buffer
     only until the next probe, so one growable record per domain serves
     every concurrent search shard without locking. *)
  type step_scratch = {
    mutable ss_send : int array;
    mutable ss_sent : Bytes.t;
    mutable ss_probe : int array;  (* probe child arena, exact [arena_size] *)
    mutable ss_sense : int array;  (* two (state span, send span) micro-runs *)
  }

  let step_scratch_key =
    Domain.DLS.new_key (fun () ->
        { ss_send = [||]; ss_sent = Bytes.empty; ss_probe = [||]; ss_sense = [||] })

  let get_step_scratch ~send_len ~n =
    let s = Domain.DLS.get step_scratch_key in
    if Array.length s.ss_send < send_len then s.ss_send <- Array.make send_len 0;
    if Bytes.length s.ss_sent < n then s.ss_sent <- Bytes.make n '\000';
    s

  (* One persistent flat round into a caller-provided [child] arena
     (exactly [arena_size], inbox section already zeroed): copy the
     parent's states into it, run every node's transition in place, then
     route broadcasts into the child's inbox section — the parent arena
     supplies this round's arrivals.  [bits] holds each node's random bit
     this round.  Takes the packed vector directly (not a [get_bit]
     closure) so the hot search loops pay neither a closure allocation nor
     an indirect call per node.  Returns the child's (output count,
     cumulative message count). *)
  let flat_step_into f scratch ~(bits : Bitvec.t) child =
    let lay = f.lay in
    let inst = lay.inst in
    let sw = lay.state_words and mw = lay.msg_words in
    let n = lay.n in
    let ssize = state_size lay in
    (* Manual word loops rather than [Array.blit]: arenas are a few dozen
       words, far below where memmove's call overhead pays for itself. *)
    let parent0 = f.arena in
    for i = 0 to ssize - 1 do
      Array.unsafe_set child i (Array.unsafe_get parent0 i)
    done;
    let send = scratch.ss_send and sent = scratch.ss_sent in
    let parent = f.arena in
    let out = ref 0 in
    for v = 0 to n - 1 do
      let broadcast =
        inst.round ~node:v ~bit:(Bitvec.unsafe_get bits v)
          ~degree:(Array.unsafe_get lay.degrees v)
          ~state:child ~off:(v * sw) ~inbox:parent
          ~ioff:(ssize + (Array.unsafe_get lay.slot_off v * mw))
          ~send ~soff:(v * mw)
      in
      Bytes.unsafe_set sent v (if broadcast then '\001' else '\000');
      if inst.has_output ~state:child ~off:(v * sw) then incr out
    done;
    let messages = ref f.fmessages in
    for s = 0 to lay.total_slots - 1 do
      let u = Array.unsafe_get lay.src s in
      if Bytes.unsafe_get sent u = '\001' then begin
        let src_off = u * mw and dst_off = ssize + (s * mw) in
        for k = 0 to mw - 1 do
          Array.unsafe_set child (dst_off + k) (Array.unsafe_get send (src_off + k))
        done;
        incr messages
      end
    done;
    !out, !messages

  let flat_step f ~bits =
    let scratch =
      get_step_scratch ~send_len:(f.lay.n * f.lay.msg_words) ~n:f.lay.n
    in
    let child = Array.make (arena_size f.lay) 0 in
    let out, messages = flat_step_into f scratch ~bits child in
    { f with arena = child; fout = out; fround = f.fround + 1; fmessages = messages }

  let boxed_step ?scramble ?faults ?adversary (Pack e) ~get_bit =
    let scramble = match scramble with Some _ as s -> s | None -> e.d_scramble in
    let faults = match faults with Some _ as f -> f | None -> e.d_faults in
    let adversary =
      match adversary with Some _ as a -> a | None -> e.d_adversary
    in
    let module A = (val e.algo) in
    let g = e.graph in
    let n = Graph.n g in
    let round = e.round + 1 in
    let states = Array.copy e.states in
    let next_inboxes = Array.init n (fun v -> Array.make (Graph.degree g v) None) in
    let messages = ref e.messages in
    let outputs = Array.copy e.outputs in
    for v = 0 to n - 1 do
      let crashed =
        match faults with
        | None -> false
        | Some f -> not (Faults.active f ~node:v ~round)
      in
      (* A crashed node neither computes nor sends; its round's inbox is
         lost (the per-round inbox array is simply not read). *)
      if not crashed then begin
        let state', sends = A.round states.(v) ~bit:(get_bit v) ~inbox:e.inboxes.(v) in
        if Array.length sends <> Graph.degree g v then
          invalid_arg
            (Printf.sprintf "Executor.step: %s sent on %d ports at a degree-%d node"
               A.name (Array.length sends) (Graph.degree g v));
        states.(v) <- state';
        Array.iteri
          (fun p msg ->
            match msg with
            | None -> ()
            | Some m ->
              let u, q = e.reverse.(v).(p) in
              let delivered =
                match faults with
                | None -> Some m
                | Some f -> Faults.on_send_sync f ~src:v ~dst:u ~port:q ~round m
              in
              (match delivered with
               | None -> ()
               | Some d ->
                 (* The adversary taps the wire after the fault layer: it
                    observes (and may tamper with) what actually crosses —
                    dropped messages are invisible to it. *)
                 let d =
                   match adversary with
                   | None -> d
                   | Some a -> Adversary.tamper a ~src:v ~dst:u ~round d
                 in
                 next_inboxes.(u).(q) <- Some d;
                 incr messages))
          sends;
        (match outputs.(v), A.output state' with
         | None, o -> outputs.(v) <- o
         | Some prev, Some cur when Label.equal prev cur -> ()
         | Some _, _ ->
           invalid_arg
             (Printf.sprintf "Executor.step: %s revoked an irrevocable output" A.name))
      end
    done;
    (* Stale duplicates land one round behind the original, on ports that
       would otherwise be idle (a port carries one message per round). *)
    (match faults with
     | None -> ()
     | Some f ->
       for v = 0 to n - 1 do
         List.iter
           (fun (p, payload) ->
             if p < Array.length next_inboxes.(v) && next_inboxes.(v).(p) = None
             then begin
               next_inboxes.(v).(p) <- Some payload;
               incr messages
             end)
           (Faults.stale_sync f ~dst:v ~round:(round + 1))
       done);
    let next_inboxes =
      match scramble with
      | None -> next_inboxes
      | Some permutation ->
        Array.mapi
          (fun v inbox ->
            let d = Array.length inbox in
            let p = permutation ~node:v ~degree:d ~round:(e.round + 1) in
            if Array.length p <> d then
              invalid_arg "Executor.step: scramble returned wrong-size permutation";
            Array.init d (fun j -> inbox.(p.(j))))
          next_inboxes
    in
    Pack
      {
        e with
        states;
        inboxes = next_inboxes;
        outputs;
        round = e.round + 1;
        messages = !messages;
      }

  let reject_injection () =
    invalid_arg
      "Executor.step: faults/scramble/adversary require the boxed execution \
       path — pass them via the ctx given to start (or start ~use_flat:false)"

  let step ?scramble ?faults ?adversary t ~bits =
    match t with
    | Boxed (Pack e as b) ->
      if Array.length bits <> Graph.n e.graph then
        invalid_arg "Executor.step: wrong bits length";
      Boxed
        (boxed_step ?scramble ?faults ?adversary b
           ~get_bit:(fun v -> Array.unsafe_get bits v))
    | Flat f ->
      (match scramble, faults, adversary with
       | None, None, None ->
         if Array.length bits <> f.lay.n then
           invalid_arg "Executor.step: wrong bits length";
         Flat (flat_step f ~bits:(Bitvec.of_bool_array bits))
       | _ -> reject_injection ())

  let step_vec t ~bits =
    match t with
    | Boxed (Pack e as b) ->
      if Bitvec.length bits <> Graph.n e.graph then
        invalid_arg "Executor.step_vec: wrong bits length";
      Boxed (boxed_step b ~get_bit:(fun v -> Bitvec.unsafe_get bits v))
    | Flat f ->
      if Bitvec.length bits <> f.lay.n then
        invalid_arg "Executor.step_vec: wrong bits length";
      Flat (flat_step f ~bits)

  let outputs = function
    | Boxed (Pack e) -> Array.copy e.outputs
    | Flat f ->
      Array.init f.lay.n (fun v ->
          f.lay.inst.output ~state:f.arena ~off:(v * f.lay.state_words))

  let all_output = function
    | Boxed (Pack e) -> Array.for_all Option.is_some e.outputs
    | Flat f -> f.fout = f.lay.n

  let round = function Boxed (Pack e) -> e.round | Flat f -> f.fround

  let messages = function Boxed (Pack e) -> e.messages | Flat f -> f.fmessages

  let is_flat = function Flat _ -> true | Boxed _ -> false

  let fingerprint = function
    | Boxed (Pack e) ->
      (* Marshal bytes determine structure, so equal digests mean equal
         states; differing sharing can only cause false negatives. *)
      Marshal.to_string (e.states, e.inboxes, e.outputs) []
    | Flat f ->
      (* The arena *is* the whole state (outputs derive from states). *)
      Marshal.to_string f.arena []

  (* Dedup keys: what the fingerprint is for, minus the serialization.  A
     flat key aliases the state's own (immutable) arena, so taking one
     costs a single hash walk over ints instead of a Marshal round-trip —
     which was ~45% of per-state cost in the search loops.  The hash is
     precomputed so the usual membership-check-then-insert sequence walks
     the arena once, not three times. *)
  type key =
    | Kboxed of string
    | Kflat of {
        khash : int;
        karena : int array;
      }

  let dedup_key = function
    | Boxed _ as t -> Kboxed (fingerprint t)
    | Flat f -> Kflat { khash = hash_int_array 17 f.arena; karena = f.arena }

  module Key = struct
    type t = key

    let equal a b =
      match a, b with
      | Kboxed x, Kboxed y -> String.equal x y
      | Kflat x, Kflat y ->
        x.khash = y.khash && int_array_equal x.karena y.karena
      | Kboxed _, Kflat _ | Kflat _, Kboxed _ -> false

    let hash = function Kboxed s -> Hashtbl.hash s | Kflat k -> k.khash
  end

  (* Probe/commit stepping: the branch searches discard most children as
     duplicates, so stepping into a reusable per-domain buffer and only
     materializing a fresh arena when the caller's seen-set misses makes
     the common (duplicate) case allocation-free.  A probe — and the key
     [probe_key] returns for it — is valid until the next [probe_vec] on
     the same domain; [probe_commit] yields a stable state and key. *)
  type probe =
    | Pboxed of t * key
    | Pflat of {
        pf : flat;
        pbuf : int array;  (* per-domain buffer, exactly [arena_size] *)
        phash : int;
        pout : int;
        pmessages : int;
      }

  let probe_vec t ~bits =
    match t with
    | Boxed _ ->
      let t' = step_vec t ~bits in
      Pboxed (t', dedup_key t')
    | Flat f ->
      if Bitvec.length bits <> f.lay.n then
        invalid_arg "Executor.probe_vec: wrong bits length";
      let scratch =
        get_step_scratch ~send_len:(f.lay.n * f.lay.msg_words) ~n:f.lay.n
      in
      let ssize = state_size f.lay in
      let asize = arena_size f.lay in
      let buf =
        (* Key equality compares whole arrays, so the buffer must be the
           exact arena size; only the inbox section needs re-zeroing (the
           states prefix is fully overwritten by the parent copy). *)
        if Array.length scratch.ss_probe = asize then begin
          Array.fill scratch.ss_probe ssize (asize - ssize) 0;
          scratch.ss_probe
        end
        else begin
          let b = Array.make asize 0 in
          scratch.ss_probe <- b;
          b
        end
      in
      let out, messages = flat_step_into f scratch ~bits buf in
      Pflat
        {
          pf = f;
          pbuf = buf;
          phash = hash_int_array 17 buf;
          pout = out;
          pmessages = messages;
        }

  let probe_key = function
    | Pboxed (_, k) -> k
    | Pflat p -> Kflat { khash = p.phash; karena = p.pbuf }

  (* Per-node bit sensitivity: in one synchronous round a node's random
     bit can only influence that node's own successor state and the
     messages it emits — never another node's transition within the same
     round — so sensitivity factors per node.  Each node's transition is
     re-run with both bit values against the *same* parent state and the
     results compared; a clear bit certifies that every setting of that
     node's bit yields the identical successor execution state, so a
     search may pin it without losing any outcome.  Conservative in the
     sound direction only: a set bit may be a false positive (the boxed
     path compares serialized bytes, where sharing differences can mask
     equality), a clear bit is always a proof. *)
  let flat_sensitivity f =
    let lay = f.lay in
    let inst = lay.inst in
    let sw = lay.state_words and mw = lay.msg_words in
    let span = sw + mw in
    let scratch = get_step_scratch ~send_len:(lay.n * mw) ~n:lay.n in
    if Array.length scratch.ss_sense < 2 * span then
      scratch.ss_sense <- Array.make (2 * span) 0;
    let buf = scratch.ss_sense in
    let ssize = state_size lay in
    let sens = Bitvec.create lay.n in
    for v = 0 to lay.n - 1 do
      let ioff = ssize + (Array.unsafe_get lay.slot_off v * mw) in
      let degree = Array.unsafe_get lay.degrees v in
      let run ~bit off =
        for k = 0 to sw - 1 do
          Array.unsafe_set buf (off + k) (Array.unsafe_get f.arena ((v * sw) + k))
        done;
        inst.round ~node:v ~bit ~degree ~state:buf ~off ~inbox:f.arena ~ioff
          ~send:buf ~soff:(off + sw)
      in
      let b0 = run ~bit:false 0 in
      let b1 = run ~bit:true span in
      let equal =
        b0 = b1
        &&
        let acc = ref 0 in
        (* Send words only count when the node broadcasts: a silent
           node's send span is scratch garbage by contract. *)
        let words = if b0 then span else sw in
        for k = 0 to words - 1 do
          acc := !acc lor (Array.unsafe_get buf k lxor Array.unsafe_get buf (span + k))
        done;
        !acc = 0
      in
      if not equal then Bitvec.set sens v true
    done;
    sens

  let boxed_sensitivity (Pack e) =
    let module A = (val e.algo) in
    let n = Graph.n e.graph in
    let sens = Bitvec.create n in
    for v = 0 to n - 1 do
      let run bit = A.round e.states.(v) ~bit ~inbox:e.inboxes.(v) in
      let enc r = Marshal.to_string r [] in
      if not (String.equal (enc (run false)) (enc (run true))) then
        Bitvec.set sens v true
    done;
    sens

  let bit_sensitivity = function
    | Flat f -> flat_sensitivity f
    | Boxed b -> boxed_sensitivity b

  let probe_commit = function
    | Pboxed (t, k) -> t, k
    | Pflat p ->
      let arena = Array.copy p.pbuf in
      ( Flat
          {
            p.pf with
            arena;
            fout = p.pout;
            fround = p.pf.fround + 1;
            fmessages = p.pmessages;
          },
        Kflat { khash = p.phash; karena = arena } )
end

(* Reusable whole-run scratch: lets [simulate_flat] run a complete
   simulation with zero per-round allocation by double-buffering the inbox
   arena in place.  Also memoizes the layout of the last (algorithm, graph)
   pair — batched candidate searches simulate the same graph millions of
   times — including negative answers (no flat companion / plan declined). *)
module Scratch = struct
  type t = {
    mutable c_algo : Algorithm.t option;
    mutable c_gid : int;
    mutable c_lay : Incremental.layout option;
    mutable states : int array;
    mutable inbox_a : int array;
    mutable inbox_b : int array;
    mutable send : int array;
    mutable sent : Bytes.t;
  }

  let create () =
    {
      c_algo = None;
      c_gid = -1;
      c_lay = None;
      states = [||];
      inbox_a = [||];
      inbox_b = [||];
      send = [||];
      sent = Bytes.empty;
    }

  let layout t algo g =
    let gid = Graph.id g in
    match t.c_algo with
    | Some a when a == algo && t.c_gid = gid -> t.c_lay
    | _ ->
      let lay =
        match Algorithm.find_flat algo with
        | None -> None
        | Some flat -> Incremental.layout_of flat g
      in
      t.c_algo <- Some algo;
      t.c_gid <- gid;
      t.c_lay <- lay;
      lay

  let ensure_ints arr len = if Array.length arr < len then Array.make len 0 else arr
end

let simulate_flat ~(scratch : Scratch.t) algo g ~bit ~len =
  match Scratch.layout scratch algo g with
  | None -> None
  | Some lay ->
    let open Incremental in
    let inst = lay.inst in
    let n = lay.n and sw = lay.state_words and mw = lay.msg_words in
    let inbox_len = lay.total_slots * mw in
    let states = Scratch.ensure_ints scratch.states (n * sw) in
    scratch.states <- states;
    let inbox_a = Scratch.ensure_ints scratch.inbox_a inbox_len in
    scratch.inbox_a <- inbox_a;
    let inbox_b = Scratch.ensure_ints scratch.inbox_b inbox_len in
    scratch.inbox_b <- inbox_b;
    let send = Scratch.ensure_ints scratch.send (n * mw) in
    scratch.send <- send;
    if Bytes.length scratch.sent < n then scratch.sent <- Bytes.make n '\000';
    let sent = scratch.sent in
    Array.fill states 0 (n * sw) 0;
    Array.fill inbox_a 0 inbox_len 0;
    init_flat_states lay g states;
    let out = ref (count_outputs lay states) in
    let cur = ref inbox_a and nxt = ref inbox_b in
    let rec loop r =
      if !out = n then (true, r - 1)
      else if r > len then (false, r - 1)
      else begin
        let inbox = !cur in
        for v = 0 to n - 1 do
          let broadcast =
            inst.round ~node:v ~bit:(bit ~node:v ~round:r)
              ~degree:(Array.unsafe_get lay.degrees v)
              ~state:states ~off:(v * sw) ~inbox
              ~ioff:(Array.unsafe_get lay.slot_off v * mw)
              ~send ~soff:(v * mw)
          in
          Bytes.unsafe_set sent v (if broadcast then '\001' else '\000')
        done;
        let next = !nxt in
        Array.fill next 0 inbox_len 0;
        for s = 0 to lay.total_slots - 1 do
          let u = Array.unsafe_get lay.src s in
          if Bytes.unsafe_get sent u = '\001' then begin
            let src_off = u * mw and dst_off = s * mw in
            for k = 0 to mw - 1 do
              Array.unsafe_set next (dst_off + k)
                (Array.unsafe_get send (src_off + k))
            done
          end
        done;
        cur := next;
        nxt := inbox;
        out := count_outputs lay states;
        loop (r + 1)
      end
    in
    let successful, rounds_run = loop 1 in
    let outputs =
      Array.init n (fun v -> inst.output ~state:states ~off:(v * sw))
    in
    Some (outputs, rounds_run, successful)

let run_with ~scramble ~faults ~adversary ~obs algo g ~tape ~max_rounds =
  let n = Graph.n g in
  let rounds_c = Obs.counter obs "executor.rounds" in
  let msgs_c = Obs.counter obs "executor.messages" in
  let use_flat =
    Option.is_none scramble && Option.is_none faults && Option.is_none adversary
  in
  let result =
    Obs.span obs "executor.run" (fun () ->
        let rec loop exec =
          if Incremental.all_output exec then begin
            let outputs = Array.map Option.get (Incremental.outputs exec) in
            Ok
              {
                outputs;
                rounds = Incremental.round exec;
                messages = Incremental.messages exec;
              }
          end
          else begin
            let round = Incremental.round exec + 1 in
            if round > max_rounds then Error (Max_rounds_exceeded max_rounds)
            else begin
              match faults with
              | Some f when Faults.doomed f ~round ~nodes:n ->
                Error (All_nodes_crashed { round })
              | _ ->
                let exhausted = ref false in
                let bits =
                  Array.init n (fun v ->
                      match Tape.bit tape ~node:v ~round with
                      | Some b -> b
                      | None ->
                        exhausted := true;
                        false)
                in
                if !exhausted then Error (Tape_exhausted { round })
                else begin
                  let exec' =
                    Incremental.step exec ?scramble ?faults ?adversary ~bits
                  in
                  Obs.incr rounds_c;
                  Obs.incr ~by:(Incremental.messages exec' - Incremental.messages exec)
                    msgs_c;
                  Obs.eventf obs "round" (fun () ->
                      [
                        ("round", Events.Int round);
                        ( "messages",
                          Events.Int
                            (Incremental.messages exec' - Incremental.messages exec) );
                      ]);
                  loop exec'
                end
            end
          end
        in
        loop (Incremental.start ~use_flat algo g))
  in
  (match faults with Some f -> Run_ctx.observe_faults obs f | None -> ());
  (match adversary with Some a -> Run_ctx.observe_adversary obs a | None -> ());
  result

let run ?(ctx = Run_ctx.default) algo g ~tape ~max_rounds =
  run_with ~scramble:(Run_ctx.scramble ctx) ~faults:(Run_ctx.injector ctx)
    ~adversary:(Run_ctx.adversary_instance ctx) ~obs:(Run_ctx.obs ctx) algo g
    ~tape ~max_rounds

