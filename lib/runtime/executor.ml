module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Obs = Anonet_obs.Obs
module Events = Anonet_obs.Events

type failure =
  | Max_rounds_exceeded of int
  | Tape_exhausted of { round : int }
  | All_nodes_crashed of { round : int }

let pp_failure fmt = function
  | Max_rounds_exceeded r -> Format.fprintf fmt "no output after %d rounds" r
  | Tape_exhausted { round } -> Format.fprintf fmt "tape exhausted at round %d" round
  | All_nodes_crashed { round } ->
    Format.fprintf fmt "every node crash-stopped by round %d" round

let exit_code = function
  | Max_rounds_exceeded _ -> 2
  | Tape_exhausted _ -> 3
  | All_nodes_crashed _ -> 4

type outcome = {
  outputs : Label.t array;
  rounds : int;
  messages : int;
}

module Incremental = struct
  (* Existentially packed execution state.  [inboxes.(v).(p)] holds the
     message node [v] will receive on port [p] this round (sent by its
     neighbor last round).  [reverse.(v).(p)] is the pair [(u, q)] such
     that port [p] of [v] reaches [u] whose port [q] comes back to [v]. *)
  type t =
    | Pack : {
        algo : (module Algorithm.S with type state = 's);
        graph : Graph.t;
        reverse : (int * int) array array;
        states : 's array;
        inboxes : Label.t option array array;
        outputs : Label.t option array;
        round : int;
        messages : int;
        (* Context defaults captured at [start ?ctx]; explicit [step]
           arguments override them.  [None] for pre-context callers. *)
        d_scramble : (node:int -> degree:int -> round:int -> int array) option;
        d_faults : Faults.t option;
        d_adversary : Adversary.t option;
      }
        -> t

  let reverse_ports g =
    Array.init (Graph.n g) (fun v ->
        Array.init (Graph.degree g v) (fun p ->
            let u = Graph.neighbor g v p in
            u, Graph.port_to g u v))

  let start ?(ctx = Run_ctx.default) (module A : Algorithm.S) g =
    let n = Graph.n g in
    let states =
      Array.init n (fun v ->
          A.init ~input:(Graph.label g v) ~degree:(Graph.degree g v))
    in
    Pack
      {
        algo = (module A);
        graph = g;
        reverse = reverse_ports g;
        states;
        inboxes = Array.init n (fun v -> Array.make (Graph.degree g v) None);
        outputs = Array.init n (fun v -> A.output states.(v));
        round = 0;
        messages = 0;
        d_scramble = Run_ctx.scramble ctx;
        d_faults = Run_ctx.injector ctx;
        d_adversary = Run_ctx.adversary_instance ctx;
      }

  let step ?scramble ?faults ?adversary (Pack e) ~bits =
    let scramble = match scramble with Some _ as s -> s | None -> e.d_scramble in
    let faults = match faults with Some _ as f -> f | None -> e.d_faults in
    let adversary =
      match adversary with Some _ as a -> a | None -> e.d_adversary
    in
    let module A = (val e.algo) in
    let g = e.graph in
    let n = Graph.n g in
    if Array.length bits <> n then invalid_arg "Executor.step: wrong bits length";
    let round = e.round + 1 in
    let states = Array.copy e.states in
    let next_inboxes = Array.init n (fun v -> Array.make (Graph.degree g v) None) in
    let messages = ref e.messages in
    let outputs = Array.copy e.outputs in
    for v = 0 to n - 1 do
      let crashed =
        match faults with
        | None -> false
        | Some f -> not (Faults.active f ~node:v ~round)
      in
      (* A crashed node neither computes nor sends; its round's inbox is
         lost (the per-round inbox array is simply not read). *)
      if not crashed then begin
        let state', sends = A.round states.(v) ~bit:bits.(v) ~inbox:e.inboxes.(v) in
        if Array.length sends <> Graph.degree g v then
          invalid_arg
            (Printf.sprintf "Executor.step: %s sent on %d ports at a degree-%d node"
               A.name (Array.length sends) (Graph.degree g v));
        states.(v) <- state';
        Array.iteri
          (fun p msg ->
            match msg with
            | None -> ()
            | Some m ->
              let u, q = e.reverse.(v).(p) in
              let delivered =
                match faults with
                | None -> Some m
                | Some f -> Faults.on_send_sync f ~src:v ~dst:u ~port:q ~round m
              in
              (match delivered with
               | None -> ()
               | Some d ->
                 (* The adversary taps the wire after the fault layer: it
                    observes (and may tamper with) what actually crosses —
                    dropped messages are invisible to it. *)
                 let d =
                   match adversary with
                   | None -> d
                   | Some a -> Adversary.tamper a ~src:v ~dst:u ~round d
                 in
                 next_inboxes.(u).(q) <- Some d;
                 incr messages))
          sends;
        (match outputs.(v), A.output state' with
         | None, o -> outputs.(v) <- o
         | Some prev, Some cur when Label.equal prev cur -> ()
         | Some _, _ ->
           invalid_arg
             (Printf.sprintf "Executor.step: %s revoked an irrevocable output" A.name))
      end
    done;
    (* Stale duplicates land one round behind the original, on ports that
       would otherwise be idle (a port carries one message per round). *)
    (match faults with
     | None -> ()
     | Some f ->
       for v = 0 to n - 1 do
         List.iter
           (fun (p, payload) ->
             if p < Array.length next_inboxes.(v) && next_inboxes.(v).(p) = None
             then begin
               next_inboxes.(v).(p) <- Some payload;
               incr messages
             end)
           (Faults.stale_sync f ~dst:v ~round:(round + 1))
       done);
    let next_inboxes =
      match scramble with
      | None -> next_inboxes
      | Some permutation ->
        Array.mapi
          (fun v inbox ->
            let d = Array.length inbox in
            let p = permutation ~node:v ~degree:d ~round:(e.round + 1) in
            if Array.length p <> d then
              invalid_arg "Executor.step: scramble returned wrong-size permutation";
            Array.init d (fun j -> inbox.(p.(j))))
          next_inboxes
    in
    Pack
      {
        e with
        states;
        inboxes = next_inboxes;
        outputs;
        round = e.round + 1;
        messages = !messages;
      }

  let outputs (Pack e) = Array.copy e.outputs

  let all_output (Pack e) = Array.for_all Option.is_some e.outputs

  let round (Pack e) = e.round

  let messages (Pack e) = e.messages

  let fingerprint (Pack e) =
    (* Marshal bytes determine structure, so equal digests mean equal
       states; differing sharing can only cause false negatives. *)
    Marshal.to_string (e.states, e.inboxes, e.outputs) []
end

let run_with ~scramble ~faults ~adversary ~obs algo g ~tape ~max_rounds =
  let n = Graph.n g in
  let rounds_c = Obs.counter obs "executor.rounds" in
  let msgs_c = Obs.counter obs "executor.messages" in
  let result =
    Obs.span obs "executor.run" (fun () ->
        let rec loop exec =
          if Incremental.all_output exec then begin
            let outputs = Array.map Option.get (Incremental.outputs exec) in
            Ok
              {
                outputs;
                rounds = Incremental.round exec;
                messages = Incremental.messages exec;
              }
          end
          else begin
            let round = Incremental.round exec + 1 in
            if round > max_rounds then Error (Max_rounds_exceeded max_rounds)
            else begin
              match faults with
              | Some f when Faults.doomed f ~round ~nodes:n ->
                Error (All_nodes_crashed { round })
              | _ ->
                let exhausted = ref false in
                let bits =
                  Array.init n (fun v ->
                      match Tape.bit tape ~node:v ~round with
                      | Some b -> b
                      | None ->
                        exhausted := true;
                        false)
                in
                if !exhausted then Error (Tape_exhausted { round })
                else begin
                  let exec' =
                    Incremental.step exec ?scramble ?faults ?adversary ~bits
                  in
                  Obs.incr rounds_c;
                  Obs.incr ~by:(Incremental.messages exec' - Incremental.messages exec)
                    msgs_c;
                  Obs.eventf obs "round" (fun () ->
                      [
                        ("round", Events.Int round);
                        ( "messages",
                          Events.Int
                            (Incremental.messages exec' - Incremental.messages exec) );
                      ]);
                  loop exec'
                end
            end
          end
        in
        loop (Incremental.start algo g))
  in
  (match faults with Some f -> Run_ctx.observe_faults obs f | None -> ());
  (match adversary with Some a -> Run_ctx.observe_adversary obs a | None -> ());
  result

let run ?(ctx = Run_ctx.default) algo g ~tape ~max_rounds =
  run_with ~scramble:(Run_ctx.scramble ctx) ~faults:(Run_ctx.injector ctx)
    ~adversary:(Run_ctx.adversary_instance ctx) ~obs:(Run_ctx.obs ctx) algo g
    ~tape ~max_rounds

let run_legacy ?scramble_seed ?faults algo g ~tape ~max_rounds =
  run_with
    ~scramble:(Option.map Run_ctx.scramble_of_seed scramble_seed)
    ~faults ~adversary:None ~obs:Obs.null algo g ~tape ~max_rounds
