(** Asynchronous execution and the α-synchronizer.

    The paper's model (Section 1.1) is synchronous.  Real networks are
    not, and much of the related work the paper engages with (k-local
    election [37], population protocols [7]) lives in asynchronous
    models.  This module provides:

    - an event-driven {e asynchronous executor}: messages experience
      per-message delivery delays chosen by a {!scheduler} (an adversary);
      a node is activated whenever a message arrives;
    - the classic {e α-synchronizer}: a wrapper turning any synchronous
      algorithm of {!Algorithm.S} into an asynchronous one by tagging
      messages with round numbers and buffering until every neighbor's
      round-[r] message (an explicit [null] when the algorithm sends
      nothing) has arrived.

    The synchronizer preserves the synchronous semantics exactly: with the
    same tape, the asynchronous run produces the same outputs as
    {!Executor.run} under {e every} scheduler — a property the test suite
    checks against random and adversarial schedules. *)

(** How the adversary delays messages. *)
type scheduler =
  | Fifo  (** deliver in send order (delay 1 each) *)
  | Random_delay of { seed : int; max_delay : int }
      (** each message independently delayed by 1..max_delay ticks *)
  | Skewed of { seed : int; max_delay : int; slow_node : int }
      (** like [Random_delay] but every message {e from} [slow_node]
          always takes the maximum delay — an adversary starving one
          node *)

type outcome = {
  outputs : Anonet_graph.Label.t array;
  events : int;  (** messages delivered *)
  virtual_rounds : int;  (** synchronizer rounds completed *)
}

type failure =
  | Event_limit_exceeded of int
  | Tape_exhausted of { round : int }

val pp_failure : Format.formatter -> failure -> unit

(** [run algo g ~tape ~scheduler ~max_events] executes the synchronous
    algorithm [algo] on the asynchronous substrate through the
    α-synchronizer. *)
val run :
  Algorithm.t ->
  Anonet_graph.Graph.t ->
  tape:Tape.t ->
  scheduler:scheduler ->
  max_events:int ->
  (outcome, failure) result
