(** Asynchronous execution and the α-synchronizer.

    The paper's model (Section 1.1) is synchronous.  Real networks are
    not, and much of the related work the paper engages with (k-local
    election [37], population protocols [7]) lives in asynchronous
    models.  This module provides:

    - an event-driven {e asynchronous executor}: messages experience
      per-message delivery delays chosen by a {!scheduler} (an adversary);
      a node is activated whenever a message arrives;
    - the classic {e α-synchronizer}: a wrapper turning any synchronous
      algorithm of {!Algorithm.S} into an asynchronous one by tagging
      messages with round numbers and buffering until every neighbor's
      round-[r] message (an explicit [null] when the algorithm sends
      nothing) has arrived.

    The synchronizer preserves the synchronous semantics exactly: with the
    same tape, the asynchronous run produces the same outputs as
    {!Executor.run} under {e every} scheduler — a property the test suite
    checks against random and adversarial schedules. *)

(** How the adversary delays messages. *)
type scheduler =
  | Fifo  (** deliver in send order (delay 1 each) *)
  | Random_delay of { seed : int; max_delay : int }
      (** each message independently delayed by 1..max_delay ticks *)
  | Skewed of { seed : int; max_delay : int; slow_node : int }
      (** like [Random_delay] but every message {e from} [slow_node]
          always takes the maximum delay — an adversary starving one
          node *)

type outcome = {
  outputs : Anonet_graph.Label.t array;
  events : int;  (** messages delivered *)
  virtual_rounds : int;  (** synchronizer rounds completed *)
}

type failure =
  | Event_limit_exceeded of int
  | Tape_exhausted of { round : int }
  | Stalled of { events : int }
      (** no messages in flight, nodes still undecided: a fault starved the
          synchronizer, which deadlocks by design (no retransmission) —
          only reachable with [?faults]; see {!Retransmit} for the cure *)

val pp_failure : Format.formatter -> failure -> unit

(** [sample_delay scheduler rng ~source] draws one delivery delay — the
    deterministic core of the adversary, exposed so tests can pin the
    documented range: every scheduler draws from [1..max_delay], with
    [Skewed] pinning messages from [slow_node] to exactly [max_delay]. *)
val sample_delay : scheduler -> Anonet_graph.Prng.t -> source:int -> int

(** [run ?ctx algo g ~tape ~scheduler ~max_events] executes the synchronous
    algorithm [algo] on the asynchronous substrate through the
    α-synchronizer.

    [ctx.faults], when set, filters every scheduled message through a fresh
    {!Faults} injector (loss, duplication, corruption, dead links — nulls
    included, they are real messages on the wire) and crash-stops failed
    nodes (the asynchronous substrate has no global clock, so the
    crash-recovery reading is not available here).  Because the
    α-synchronizer waits for {e every} neighbor's round-[r] message, a
    single lost message deadlocks its receiver: expect {!Stalled} under any
    positive loss rate unless the algorithm is wrapped in {!Retransmit}.

    [ctx.adversary], when set, taps every payload the fault layer lets
    through with a fresh {!Adversary} instance ({!Adversary.tamper} keyed
    by the message's synchronizer round); the synchronizer's explicit nulls
    carry no payload and pass untouched.

    [ctx.obs], when live, posts the [async.events] counter and
    [async.virtual_rounds] gauge (equal to the outcome's fields by
    construction), the [faults.*] tallies, the [async.run] span, and one
    ["async.done"] event.  [ctx.pool], [ctx.scramble_seed] and
    [ctx.max_rounds_policy] are not consulted (the event budget is the
    explicit [max_events]; the asynchronous wire has no port rounds to
    scramble). *)
val run :
  ?ctx:Run_ctx.t ->
  Algorithm.t ->
  Anonet_graph.Graph.t ->
  tape:Tape.t ->
  scheduler:scheduler ->
  max_events:int ->
  (outcome, failure) result
