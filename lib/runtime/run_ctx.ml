module Graph = Anonet_graph.Graph
module Prng = Anonet_graph.Prng
module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs
module Events = Anonet_obs.Events

type max_rounds_policy =
  | Scaled of { per_node : int; slack : int }
  | Fixed of int

type t = {
  faults : Faults.plan option;
  adversary : Adversary.plan option;
  pool : Pool.t option;
  obs : Obs.t;
  scramble_seed : int option;
  max_rounds_policy : max_rounds_policy;
}

let default_policy = Scaled { per_node = 64; slack = 4 }

let default =
  {
    faults = None;
    adversary = None;
    pool = None;
    obs = Obs.null;
    scramble_seed = None;
    max_rounds_policy = default_policy;
  }

let make ?faults ?adversary ?pool ?(obs = Obs.null) ?scramble_seed
    ?(max_rounds_policy = default_policy) () =
  { faults; adversary; pool; obs; scramble_seed; max_rounds_policy }

let obs t = t.obs
let pool t = t.pool
let faults t = t.faults
let adversary t = t.adversary

let parallel t =
  match t.pool with Some p when Pool.domains p > 1 -> Some p | Some _ | None -> None

let max_rounds t ~n =
  match t.max_rounds_policy with
  | Scaled { per_node; slack } -> per_node * (n + slack)
  | Fixed r -> r

let injector t = Option.map Faults.make t.faults
let adversary_instance t = Option.map Adversary.make t.adversary

(* The seed mixing must stay exactly as the original Executor.run derived
   it: scrambled-run regression tests pin per-(node, round) permutations. *)
let scramble_of_seed seed ~node ~degree ~round =
  let rng = Prng.create ((seed * 92_821) + (node * 613) + round) in
  let p = Array.init degree (fun i -> i) in
  Prng.shuffle rng p;
  p

let scramble t = Option.map scramble_of_seed t.scramble_seed

(* Shared by both executors: fold an injector's event log into counters and
   (when a sink is attached) one "fault" event per injection. *)
let observe_faults obs f =
  if Obs.live obs then begin
    let count name = Obs.counter obs ("faults." ^ name) in
    let dropped = count "dropped"
    and duplicated = count "duplicated"
    and corrupted = count "corrupted"
    and link_dead = count "link_dead"
    and crashed = count "crashed"
    and recovered = count "recovered" in
    List.iter
      (fun (e : Faults.event) ->
        let kind, fields =
          match e.kind with
          | Faults.Dropped { src; dst } ->
            Obs.incr dropped;
            ("dropped", [ ("src", Events.Int src); ("dst", Events.Int dst) ])
          | Faults.Duplicated { src; dst } ->
            Obs.incr duplicated;
            ("duplicated", [ ("src", Events.Int src); ("dst", Events.Int dst) ])
          | Faults.Corrupted { src; dst } ->
            Obs.incr corrupted;
            ("corrupted", [ ("src", Events.Int src); ("dst", Events.Int dst) ])
          | Faults.Link_dead { src; dst } ->
            Obs.incr link_dead;
            ("link_dead", [ ("src", Events.Int src); ("dst", Events.Int dst) ])
          | Faults.Crashed node ->
            Obs.incr crashed;
            ("crashed", [ ("node", Events.Int node) ])
          | Faults.Recovered node ->
            Obs.incr recovered;
            ("recovered", [ ("node", Events.Int node) ])
        in
        Obs.event obs "fault"
          (("round", Events.Int e.round) :: ("kind", Events.String kind) :: fields))
      (Faults.events f);
    Obs.set (Obs.gauge obs "faults.spent") (Faults.spent f)
  end

(* Same shape for a finished adversary: its action log becomes adversary.*
   counters plus one "adversary" event per action. *)
let observe_adversary obs a =
  if Obs.live obs then begin
    let count name = Obs.counter obs ("adversary." ^ name) in
    let substituted = count "substituted"
    and corrupted = count "corrupted"
    and targeted = count "targeted" in
    List.iter
      (fun (e : Adversary.event) ->
        let kind, fields =
          match e.kind with
          | Adversary.Substituted { src; dst } ->
            Obs.incr substituted;
            ("substituted", [ ("src", Events.Int src); ("dst", Events.Int dst) ])
          | Adversary.Corrupted { src; dst } ->
            Obs.incr corrupted;
            ("corrupted", [ ("src", Events.Int src); ("dst", Events.Int dst) ])
          | Adversary.Targeted { src; dst } ->
            Obs.incr targeted;
            ("targeted", [ ("src", Events.Int src); ("dst", Events.Int dst) ])
        in
        Obs.event obs "adversary"
          (("round", Events.Int e.round) :: ("kind", Events.String kind) :: fields))
      (Adversary.events a);
    Obs.set (Obs.gauge obs "adversary.spent") (Adversary.spent a);
    Obs.set (Obs.gauge obs "adversary.observed") (Adversary.observed a)
  end
