(** Retransmission: loss-tolerant execution of any synchronous algorithm.

    [wrap algo] turns an {!Algorithm.t} into one that computes the same
    thing over a network that loses and duplicates messages.  It is the
    recovery-side counterpart of the α-synchronizer ({!Async}): where the
    synchronizer tags messages with round numbers to survive {e delays},
    the wrapper additionally {e resends} them until acknowledged to survive
    {e loss}, and deduplicates by round number to survive {e duplication}.

    Protocol, per link and per outer round (one wire message per port per
    round, so acks piggyback on data):

    - each node keeps, per port, the window of inner-round messages not yet
      cumulatively acknowledged by the peer, and retransmits the whole
      window every outer round together with its own cumulative ack;
    - received data is stored by inner round (duplicates are ignored), and
      the cumulative ack advances over the gap-free prefix;
    - the node executes inner round [r+1] as soon as every port has
      delivered its round-[r] data — at most one inner round per outer
      round, so each inner round consumes a fresh tape bit, preserving the
      model's one-bit-per-round discipline.

    On a fault-free network the wrapper is transparent: inner round [r]
    executes exactly at outer round [r] with the same tape bit, so outputs
    {e and round counts} equal the unwrapped run's — the only cost is
    message volume (every port carries a message every round).  Under any
    loss rate [p < 1] every inner round eventually completes with
    probability 1.

    Corruption is recovered from as well: every frame carries a checksum
    of its body, and receivers additionally validate the round tags and
    the cumulative ack against the plausible window (an honest peer can
    never be ahead of the receiver's own outer round).  A frame failing
    either check is dropped whole — never "taken at face value" — and
    since the window is resent every outer round, the next intact copy
    recovers it: corruption degrades into loss, which the protocol already
    survives.  Under any corruption rate [p < 1] every inner round still
    eventually completes with probability 1.

    What it does {e not} recover from: crashed nodes (a crash-stopped
    neighbor stalls its links forever, like any synchronous algorithm) and
    a Byzantine peer that speaks the protocol — a well-formed frame with a
    valid checksum and plausible tags is trusted; see {!Adversary} for
    exercising that case. *)

(** [wrap ?obs algo] is the loss-tolerant version of [algo]; its outputs
    are [algo]'s outputs and its name is ["retransmit(<name>)"].

    [obs], when live, counts [retransmit.resent] — window entries sent
    {e again} (beyond the round's fresh sends), summed across all nodes of
    the wrapped run — counts [retransmit.rejected] — frames dropped for a
    checksum mismatch or an implausible round tag or ack — and observes the
    per-node window length each round in the [retransmit.window] histogram.
    Counting is passive: the wire traffic is byte-identical with or without
    [obs]. *)
val wrap : ?obs:Anonet_obs.Obs.t -> Algorithm.t -> Algorithm.t
