module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Prng = Anonet_graph.Prng
module Obs = Anonet_obs.Obs
module Events = Anonet_obs.Events

type scheduler =
  | Fifo
  | Random_delay of { seed : int; max_delay : int }
  | Skewed of { seed : int; max_delay : int; slow_node : int }

type outcome = {
  outputs : Label.t array;
  events : int;
  virtual_rounds : int;
}

type failure =
  | Event_limit_exceeded of int
  | Tape_exhausted of { round : int }
  | Stalled of { events : int }

let pp_failure fmt = function
  | Event_limit_exceeded n -> Format.fprintf fmt "no output after %d events" n
  | Tape_exhausted { round } ->
    Format.fprintf fmt "tape exhausted at synchronizer round %d" round
  | Stalled { events } ->
    Format.fprintf fmt "stalled after %d events: no messages in flight" events

let sample_delay scheduler rng ~source =
  match scheduler with
  | Fifo -> 1
  | Random_delay { max_delay; _ } -> 1 + Prng.int rng (max 1 max_delay)
  | Skewed { max_delay; slow_node; _ } ->
    if source = slow_node then max 1 max_delay
    else 1 + Prng.int rng (max 1 max_delay)

(* A message in flight: [round] is the synchronous round it belongs to;
   [payload = None] is the synchronizer's explicit null. *)
type message = {
  target : int;
  port : int;  (* the target's port on which it arrives *)
  round : int;
  payload : Label.t option;
}

module Timeline = Map.Make (Int)

exception Tape_out of int

let run_mod (type s) ?faults ?adversary ~obs
    (module A : Algorithm.S with type state = s) g ~tape ~scheduler ~max_events =
  let n = Graph.n g in
  (* reverse.(v).(p) = (u, q): port p of v reaches u, arriving on u's q. *)
  let reverse =
    Array.init n (fun v ->
        Array.init (Graph.degree g v) (fun p ->
            let u = Graph.neighbor g v p in
            u, Graph.port_to g u v))
  in
  let delay_rng = Prng.create (Hashtbl.hash scheduler) in
  let delay ~source = sample_delay scheduler delay_rng ~source in
  (* Per-node synchronizer state. *)
  let states = Array.make n None in
  let next_round = Array.make n 1 in
  (* buffers.(v) maps a round to (messages per port, count received). *)
  let buffers = Array.init n (fun _ -> Hashtbl.create 8) in
  let outputs = Array.make n None in
  let timeline = ref Timeline.empty in
  let now = ref 0 in
  let seq = ref 0 in
  let events = ref 0 in
  let max_round = ref 0 in
  let schedule_raw msg ~source =
    let t = !now + delay ~source in
    incr seq;
    timeline :=
      Timeline.update t
        (fun q -> Some ((!seq, msg) :: Option.value ~default:[] q))
        !timeline
  in
  (* The wire is where faults live: every scheduled message passes through
     the injector — including the synchronizer's explicit nulls, which are
     real messages and can be lost (stalling the receiver forever).  The
     adversary taps what the fault layer lets through; the synchronizer's
     nulls carry no payload to tamper with, but the adversary still cannot
     see dropped messages.  Duplicates are tampered once — both copies are
     the same wire message. *)
  let adversary_tap ~source ~target ~round payload =
    match adversary, payload with
    | Some a, Some l -> Some (Adversary.tamper a ~src:source ~dst:target ~round l)
    | _ -> payload
  in
  let schedule msg ~source =
    let tap payload =
      adversary_tap ~source ~target:msg.target ~round:msg.round payload
    in
    match faults with
    | None -> schedule_raw { msg with payload = tap msg.payload } ~source
    | Some f ->
      (match
         Faults.on_send_async f ~src:source ~dst:msg.target ~round:msg.round
           msg.payload
       with
       | Faults.Async_drop -> ()
       | Faults.Async_deliver payload ->
         schedule_raw { msg with payload = tap payload } ~source
       | Faults.Async_duplicate payload ->
         let payload = tap payload in
         schedule_raw { msg with payload } ~source;
         schedule_raw { msg with payload } ~source)
  in
  let record_output v state =
    match outputs.(v), A.output state with
    | None, o -> outputs.(v) <- o
    | Some prev, Some cur when Label.equal prev cur -> ()
    | Some _, _ ->
      invalid_arg (Printf.sprintf "Async.run: %s revoked an irrevocable output" A.name)
  in
  let buffer_for v round =
    match Hashtbl.find_opt buffers.(v) round with
    | Some b -> b
    | None ->
      let b = Array.make (Graph.degree g v) None, ref 0 in
      Hashtbl.add buffers.(v) round b;
      b
  in
  (* Node activation passes through the fault injector: a crashed node
     never executes again (the asynchronous substrate has no global clock
     to schedule a recovery, so crashes are crash-stop here). *)
  let crashed v =
    match faults with
    | None -> false
    | Some f -> Faults.crashed_forever f ~node:v ~round:next_round.(v)
  in
  (* Execute node [v]'s next synchronous round with the given inbox. *)
  let execute v ~inbox =
    let r = next_round.(v) in
    let bit =
      match Tape.bit tape ~node:v ~round:r with
      | Some b -> b
      | None -> raise (Tape_out r)
    in
    let state =
      match states.(v) with
      | Some s -> s
      | None -> assert false
    in
    let state', sends = A.round state ~bit ~inbox in
    if Array.length sends <> Graph.degree g v then
      invalid_arg "Async.run: wrong send-array length";
    states.(v) <- Some state';
    record_output v state';
    next_round.(v) <- r + 1;
    if r > !max_round then max_round := r;
    (* Send every port an explicit (possibly null) round-r message. *)
    Array.iteri
      (fun p payload ->
        let u, q = reverse.(v).(p) in
        schedule { target = u; port = q; round = r; payload } ~source:v)
      sends
  in
  (* A node may advance when the inbox of its next round is complete; the
     inbox of round r is the set of round-(r-1) messages. *)
  let rec advance v =
    let r = next_round.(v) in
    let d = Graph.degree g v in
    if crashed v then ()
    else if d = 0 then begin
      (* isolated node: free-running until it outputs *)
      if outputs.(v) = None then begin
        incr events;
        if !events > max_events then raise Exit;
        execute v ~inbox:[||];
        advance v
      end
    end
    else if r = 1 then ()
    else begin
      match Hashtbl.find_opt buffers.(v) (r - 1) with
      | Some (inbox, count) when !count = d ->
        Hashtbl.remove buffers.(v) (r - 1);
        execute v ~inbox;
        advance v
      | Some _ | None -> ()
    end
  in
  let all_output () = Array.for_all Option.is_some outputs in
  let finish result =
    (* Counters are posted once, after the event loop: the totals equal the
       outcome's [events]/[virtual_rounds] by construction, and the hot loop
       stays untouched. *)
    Obs.incr ~by:!events (Obs.counter obs "async.events");
    Obs.set (Obs.gauge obs "async.virtual_rounds") !max_round;
    (match faults with Some f -> Run_ctx.observe_faults obs f | None -> ());
    (match adversary with
     | Some a -> Run_ctx.observe_adversary obs a
     | None -> ());
    Obs.eventf obs "async.done" (fun () ->
        [
          ("events", Events.Int !events);
          ("virtual_rounds", Events.Int !max_round);
          ("ok", Events.Bool (Result.is_ok result));
        ]);
    result
  in
  finish @@ Obs.span obs "async.run" @@ fun () ->
  try
    (* Initialize and run round 1 everywhere (empty inboxes). *)
    for v = 0 to n - 1 do
      states.(v) <- Some (A.init ~input:(Graph.label g v) ~degree:(Graph.degree g v));
      record_output v (Option.get states.(v))
    done;
    for v = 0 to n - 1 do
      if not (crashed v) then begin
        execute v ~inbox:(Array.make (Graph.degree g v) None);
        advance v
      end
    done;
    let finished = ref (all_output ()) in
    while (not !finished) && not (Timeline.is_empty !timeline) do
      let t, batch = Timeline.min_binding !timeline in
      timeline := Timeline.remove t !timeline;
      now := t;
      let batch = List.sort (fun (a, _) (b, _) -> Int.compare a b) batch in
      List.iter
        (fun (_, msg) ->
          incr events;
          if !events > max_events then raise Exit;
          let inbox, count = buffer_for msg.target msg.round in
          inbox.(msg.port) <- msg.payload;
          incr count;
          advance msg.target)
        batch;
      if all_output () then finished := true
    done;
    if all_output () then
      Ok
        {
          outputs = Array.map Option.get outputs;
          events = !events;
          virtual_rounds = !max_round;
        }
    else if Timeline.is_empty !timeline then
      (* Nothing in flight and nodes still undecided: a dropped message (or
         a crashed sender) starved the synchronizer — it deadlocks, by
         design, because it has no retransmission. *)
      Error (Stalled { events = !events })
    else Error (Event_limit_exceeded max_events)
  with
  | Exit -> Error (Event_limit_exceeded max_events)
  | Tape_out round -> Error (Tape_exhausted { round })

let run ?(ctx = Run_ctx.default) algo g ~tape ~scheduler ~max_events =
  let (module A : Algorithm.S) = algo in
  run_mod
    ?faults:(Run_ctx.injector ctx)
    ?adversary:(Run_ctx.adversary_instance ctx)
    ~obs:(Run_ctx.obs ctx)
    (module A) g ~tape ~scheduler ~max_events

