(** Sources of the per-round random bit.

    The model gives every node access to one fresh random bit per round.
    A tape abstracts where those bits come from:

    - {!random} draws them pseudo-randomly from a seed (reproducible);
    - {!fixed} replays a prescribed bitstring per node — exactly the
      "simulation induced by the assignment [b]" of Section 2.2, where the
      simulation lasts as many rounds as the shortest prescribed string;
    - {!zero} feeds constant zeros (for deterministic algorithms, which
      ignore their bits anyway). *)

type t

(** [random ~seed] draws bit [(node, round)] deterministically from
    [seed]; equal seeds give equal tapes. *)
val random : seed:int -> t

(** [fixed bits] replays [bits.(node)]; the tape is exhausted for [node]
    after [length bits.(node)] rounds. *)
val fixed : Anonet_graph.Bits.t array -> t

(** The all-zero, never-exhausted tape. *)
val zero : t

(** [bit t ~node ~round] is the bit for the given 1-based round, or [None]
    if the tape is exhausted there. *)
val bit : t -> node:int -> round:int -> bool option

(** [horizon t ~nodes] is the number of whole rounds the tape can feed for
    all of nodes [0 .. nodes-1]: the minimum prescribed length for fixed
    tapes, [max_int] otherwise. *)
val horizon : t -> nodes:int -> int
