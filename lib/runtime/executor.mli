(** Synchronous execution of an anonymous algorithm on a labeled graph.

    The executor realizes the model of Section 1.1: in every round each
    node consumes one tape bit, receives the messages its neighbors sent in
    the previous round (port-addressed), computes, and sends at most one
    message per port.  Execution stops when every node has produced its
    irrevocable output, when the tape is exhausted, or at [max_rounds].

    {!Incremental} exposes a persistent (copy-on-step) execution state so
    that searches over bit assignments can branch cheaply — the
    derandomization's minimal-simulation search explores a tree of
    executions and backtracks without re-simulating shared prefixes.

    Two interchangeable representations back an execution.  The {e boxed}
    one holds each node's state as an OCaml value and messages as
    [Label.t option]s; it supports the full model (faults, adversaries,
    port scrambles).  The {e flat} one — used automatically whenever the
    algorithm registered an {!Algorithm.Flat} companion and the run is
    free of injection hooks — packs all node states into one int array and
    all in-flight messages into one inbox arena, making a step two array
    allocations and a state key an alias instead of a Marshal round-trip.
    The two are observably identical (outputs, rounds, message counts,
    search results); the qcheck suite in [test/test_flat.ml] enforces it. *)

type failure =
  | Max_rounds_exceeded of int
  | Tape_exhausted of { round : int }
      (** the tape could not feed the given round; for fixed tapes this
          means the prescribed simulation ended before all nodes output *)
  | All_nodes_crashed of { round : int }
      (** a fault plan crash-stopped every node with no recovery pending —
          the execution can never complete (only reachable with [?faults]) *)

val pp_failure : Format.formatter -> failure -> unit

type outcome = {
  outputs : Anonet_graph.Label.t array;
  rounds : int;
  messages : int;  (** total messages delivered *)
}

(** [run ?ctx algo g ~tape ~max_rounds] executes to completion.

    The context ({!Run_ctx.t}, default {!Run_ctx.default}) supplies the
    cross-cutting configuration:

    - [ctx.scramble_seed], when set, delivers every node's incoming
      messages in a fresh pseudo-random port order each round — modelling
      a network {e without} consistent port numbering.  The paper remarks
      (Section 1.3) that randomized anonymous algorithms do not need port
      numbers: algorithms that treat their inbox as a multiset (the 2-hop
      coloring, coloring, and MIS solvers here) are unaffected, while
      port-dependent protocols (maximal matching, whose very output is a
      port) genuinely need the ports — the test suite demonstrates both.
    - [ctx.faults], when set, subjects the run to the adversary of
      {!Faults}: sent messages may be dropped, duplicated (the stale copy
      arrives one round late on an otherwise-idle port), or corrupted;
      crashed nodes skip their rounds entirely (state frozen, nothing
      sent, arriving messages lost).  A fresh injector is instantiated for
      this run from the plan.
    - [ctx.adversary], when set, layers the adaptive adversary of
      {!Adversary} on top: every payload the fault layer delivers passes
      through {!Adversary.tamper}, which may substitute or corrupt it
      (Byzantine senders, targeted links) based on the traffic observed in
      earlier rounds.  A fresh adversary is instantiated per run, so equal
      plans give byte-identical adversarial runs.
    - [ctx.obs], when live, counts [executor.rounds] and
      [executor.messages], tallies [faults.*] counters from the injector's
      event log, times the run under the [executor.run] span, and emits
      per-round ["round"] events.  With the null handle (the default) the
      run's result is byte-identical and the overhead is a few branches
      per round.

    [ctx.pool] and [ctx.max_rounds_policy] are not consulted (the round
    budget is the explicit [max_rounds]).

    @raise Invalid_argument if the algorithm revokes or changes an output
    (a model violation — a bug in the algorithm). *)
val run :
  ?ctx:Run_ctx.t ->
  Algorithm.t ->
  Anonet_graph.Graph.t ->
  tape:Tape.t ->
  max_rounds:int ->
  (outcome, failure) result
(** Callers that need the injector's event log after a run should record
    through {!Trace.record} (whose trace captures [fault_events]) rather
    than run with a shared injector instance. *)

module Incremental : sig
  (** Values of type [t] are persistent: {!step} copies what it changes
      and never mutates its argument, so a [t] may be retained, branched
      from, and stepped again arbitrarily later.  This retention contract
      is load-bearing for [Min_search.Resumable]-style incremental
      searches, which park whole BFS frontiers of executions between
      [A*] phases and resume them; the one caveat is stateful injection
      ([ctx.faults] captured by {!start}, or per-{!step} [faults]), which
      makes replays of a retained state diverge — branching or resuming
      searches must run fault-free. *)
  type t

  (** [start ?ctx ?use_flat algo g] is the execution before round 1.  The
      context's scramble seed, fault plan and adversary plan (an
      injector/adversary is instantiated here) become the defaults that
      every subsequent {!step} applies; the default context supplies none
      of them, preserving the plain executor.

      The flat representation is chosen when [use_flat] (default [true]),
      the algorithm has a registered {!Algorithm.Flat} companion whose
      plan accepts [g], {e and} the context supplies no scramble, faults
      or adversary — injection hooks are defined over boxed payloads.
      Pass [~use_flat:false] to pin the boxed path (the equivalence tests
      do; so does {!Trace.record}, which replays boxed inboxes). *)
  val start :
    ?ctx:Run_ctx.t -> ?use_flat:bool -> Algorithm.t -> Anonet_graph.Graph.t -> t

  (** [step t ~bits] advances one round; [bits.(v)] is node [v]'s bit.
      [scramble], if given, permutes each node's freshly delivered inbox:
      [scramble ~node ~degree ~round] must return a permutation of
      [0 .. degree-1] (see {!run}'s [scramble_seed]).  [faults], if given,
      filters message delivery and node activation (see {!run});
      [adversary] taps delivered payloads after it (see {!run}).  Explicit
      arguments override the defaults captured by [start ?ctx].
      Persistent: [t] remains valid — but note a [Faults.t] (and an
      [Adversary.t]) is itself stateful, so branching searches should not
      inject faults or adversaries.
      @raise Invalid_argument on wrong array length or output revocation,
      or if injection arguments are passed to a flat-representation state
      (start boxed — [~use_flat:false] or a ctx carrying the hooks —
      when a run needs them). *)
  val step :
    ?scramble:(node:int -> degree:int -> round:int -> int array) ->
    ?faults:Faults.t ->
    ?adversary:Adversary.t ->
    t ->
    bits:bool array ->
    t

  (** [step_vec t ~bits] is [step] taking the round's bits as a packed
      {!Anonet_graph.Bitvec.t} — the search loops fill one preallocated
      vector per round instead of boxing a [bool array] per branch.
      Applies the defaults captured at [start] (no per-call overrides).
      @raise Invalid_argument on wrong vector length. *)
  val step_vec : t -> bits:Anonet_graph.Bitvec.t -> t

  val outputs : t -> Anonet_graph.Label.t option array

  (** [all_output t] holds when every node has produced its output —
      the "successful simulation" condition of Section 2.2. *)
  val all_output : t -> bool

  val round : t -> int

  val messages : t -> int

  (** Whether [t] uses the flat representation (observably equivalent;
      exposed for tests and diagnostics). *)
  val is_flat : t -> bool

  (** [fingerprint t] is a digest of the whole execution state (node
      states, in-flight messages, outputs).  Equal fingerprints imply
      structurally equal states — two executions with equal fingerprints
      behave identically under equal future inputs — so searches over bit
      assignments can deduplicate branches.  (Unequal fingerprints do not
      imply unequal states; missing a duplicate only costs time.
      Fingerprints are only comparable between states of the same
      representation — searches never mix the two.) *)
  val fingerprint : t -> string

  (** A dedup key with the same contract as {!fingerprint} (equal keys
      imply structurally equal states) but cheaper to build: for flat
      states it aliases the state's own immutable arenas instead of
      marshaling them to a string.  Hash with {!module-Key}. *)
  type key

  val dedup_key : t -> key

  module Key : Hashtbl.HashedType with type t = key

  (** Probe/commit stepping for dedup-heavy searches.  [probe_vec t ~bits]
      performs the round of {!step_vec} but, for flat states, writes the
      child arena into a reusable per-domain buffer instead of a fresh
      allocation; {!probe_key} then gives a dedup key for a seen-set
      membership test, and {!probe_commit} materializes the stable child
      state (plus a stable key safe to retain) only when the caller
      decides to keep it.  A probe — and its [probe_key] — is invalidated
      by the next [probe_vec] call on the same domain, so check membership
      before probing again and never store a probe key in a table.
      Duplicate children (the common case on symmetric graphs) thus cost
      no allocation at all.  For boxed states a probe is simply the fully
      stepped state. *)
  type probe

  val probe_vec : t -> bits:Anonet_graph.Bitvec.t -> probe

  (** Transient key aliasing the per-domain probe buffer — valid for
      membership tests only, until the next [probe_vec] on this domain. *)
  val probe_key : probe -> key

  (** The stable child state and a stable (retainable) dedup key for it. *)
  val probe_commit : probe -> t * key

  (** Per-node sensitivity of the *next* round to each node's random bit:
      bit [v] of the result is clear iff both settings of node [v]'s bit
      — all other bits held fixed — provably yield the identical successor
      execution state (same successor state for [v] and the same messages
      on [v]'s out-ports; within one synchronous round a node's bit cannot
      influence any other node's transition, so sensitivity factors per
      node).  A search may therefore pin every clear bit to a canonical
      value without losing any reachable outcome.  Conservative in the
      sound direction only: a set bit may be a false positive (the boxed
      path compares serialized representations), a clear bit is always a
      proof.  Defined over the fault-free synchronous semantics — do not
      use it to prune executions driven by fault/scramble/adversary
      hooks.  Cost: two single-node transition re-runs per node into
      per-domain scratch (≈ one full {!step_vec} per call). *)
  val bit_sensitivity : t -> Anonet_graph.Bitvec.t
end

(** Reusable whole-run scratch for {!simulate_flat}: owns the state arena,
    a double-buffered pair of inbox arenas and the send buffer, and
    memoizes the flat layout of the last (algorithm, graph) pair — batched
    candidate searches simulate the same graph millions of times.  Not
    thread-safe; use one per domain (see [Simulation]'s per-domain
    default).  Buffers only grow, so one scratch serves mixed workloads. *)
module Scratch : sig
  type t

  val create : unit -> t
end

(** [simulate_flat ~scratch algo g ~bit ~len] runs a complete fault-free
    simulation in place over [scratch], mutating arenas instead of
    allocating per round: [bit ~node ~round] feeds node bits (rounds are
    1-based), the run stops as soon as every node has output or after
    [len] rounds.  Returns [Some (outputs, rounds_run, successful)] —
    exactly the boxed loop's result — or [None] when the algorithm has no
    flat companion (or its plan declines [g]); callers fall back to the
    persistent path. *)
val simulate_flat :
  scratch:Scratch.t ->
  Algorithm.t ->
  Anonet_graph.Graph.t ->
  bit:(node:int -> round:int -> bool) ->
  len:int ->
  (Anonet_graph.Label.t option array * int * bool) option
