(** Synchronous execution of an anonymous algorithm on a labeled graph.

    The executor realizes the model of Section 1.1: in every round each
    node consumes one tape bit, receives the messages its neighbors sent in
    the previous round (port-addressed), computes, and sends at most one
    message per port.  Execution stops when every node has produced its
    irrevocable output, when the tape is exhausted, or at [max_rounds].

    {!Incremental} exposes a persistent (copy-on-step) execution state so
    that searches over bit assignments can branch cheaply — the
    derandomization's minimal-simulation search explores a tree of
    executions and backtracks without re-simulating shared prefixes. *)

type failure =
  | Max_rounds_exceeded of int
  | Tape_exhausted of { round : int }
      (** the tape could not feed the given round; for fixed tapes this
          means the prescribed simulation ended before all nodes output *)
  | All_nodes_crashed of { round : int }
      (** a fault plan crash-stopped every node with no recovery pending —
          the execution can never complete (only reachable with [?faults]) *)

val pp_failure : Format.formatter -> failure -> unit

val exit_code : failure -> int
[@@deprecated "use Run_error.exit_code (Run_error.Sync f) — one numbering \
               for both executors"]

type outcome = {
  outputs : Anonet_graph.Label.t array;
  rounds : int;
  messages : int;  (** total messages delivered *)
}

(** [run ?ctx algo g ~tape ~max_rounds] executes to completion.

    The context ({!Run_ctx.t}, default {!Run_ctx.default}) supplies the
    cross-cutting configuration:

    - [ctx.scramble_seed], when set, delivers every node's incoming
      messages in a fresh pseudo-random port order each round — modelling
      a network {e without} consistent port numbering.  The paper remarks
      (Section 1.3) that randomized anonymous algorithms do not need port
      numbers: algorithms that treat their inbox as a multiset (the 2-hop
      coloring, coloring, and MIS solvers here) are unaffected, while
      port-dependent protocols (maximal matching, whose very output is a
      port) genuinely need the ports — the test suite demonstrates both.
    - [ctx.faults], when set, subjects the run to the adversary of
      {!Faults}: sent messages may be dropped, duplicated (the stale copy
      arrives one round late on an otherwise-idle port), or corrupted;
      crashed nodes skip their rounds entirely (state frozen, nothing
      sent, arriving messages lost).  A fresh injector is instantiated for
      this run from the plan.
    - [ctx.adversary], when set, layers the adaptive adversary of
      {!Adversary} on top: every payload the fault layer delivers passes
      through {!Adversary.tamper}, which may substitute or corrupt it
      (Byzantine senders, targeted links) based on the traffic observed in
      earlier rounds.  A fresh adversary is instantiated per run, so equal
      plans give byte-identical adversarial runs.
    - [ctx.obs], when live, counts [executor.rounds] and
      [executor.messages], tallies [faults.*] counters from the injector's
      event log, times the run under the [executor.run] span, and emits
      per-round ["round"] events.  With the null handle (the default) the
      run's result is byte-identical and the overhead is a few branches
      per round.

    [ctx.pool] and [ctx.max_rounds_policy] are not consulted (the round
    budget is the explicit [max_rounds]).

    @raise Invalid_argument if the algorithm revokes or changes an output
    (a model violation — a bug in the algorithm). *)
val run :
  ?ctx:Run_ctx.t ->
  Algorithm.t ->
  Anonet_graph.Graph.t ->
  tape:Tape.t ->
  max_rounds:int ->
  (outcome, failure) result

val run_legacy :
  ?scramble_seed:int ->
  ?faults:Faults.t ->
  Algorithm.t ->
  Anonet_graph.Graph.t ->
  tape:Tape.t ->
  max_rounds:int ->
  (outcome, failure) result
[@@deprecated "use run ?ctx — pass scramble_seed/faults via Run_ctx.make. \
               (Unlike the ctx path, this shim takes an instantiated \
               injector, which callers inspecting the event log after the \
               run still need.)"]

module Incremental : sig
  (** Values of type [t] are persistent: {!step} copies what it changes
      and never mutates its argument, so a [t] may be retained, branched
      from, and stepped again arbitrarily later.  This retention contract
      is load-bearing for [Min_search.Resumable]-style incremental
      searches, which park whole BFS frontiers of executions between
      [A*] phases and resume them; the one caveat is stateful injection
      ([ctx.faults] captured by {!start}, or per-{!step} [faults]), which
      makes replays of a retained state diverge — branching or resuming
      searches must run fault-free. *)
  type t

  (** [start ?ctx algo g] is the execution before round 1.  The context's
      scramble seed, fault plan and adversary plan (an injector/adversary is
      instantiated here) become the defaults that every subsequent {!step}
      applies; the default context supplies none of them, preserving the
      plain executor. *)
  val start : ?ctx:Run_ctx.t -> Algorithm.t -> Anonet_graph.Graph.t -> t

  (** [step t ~bits] advances one round; [bits.(v)] is node [v]'s bit.
      [scramble], if given, permutes each node's freshly delivered inbox:
      [scramble ~node ~degree ~round] must return a permutation of
      [0 .. degree-1] (see {!run}'s [scramble_seed]).  [faults], if given,
      filters message delivery and node activation (see {!run});
      [adversary] taps delivered payloads after it (see {!run}).  Explicit
      arguments override the defaults captured by [start ?ctx].
      Persistent: [t] remains valid — but note a [Faults.t] (and an
      [Adversary.t]) is itself stateful, so branching searches should not
      inject faults or adversaries.
      @raise Invalid_argument on wrong array length or output revocation. *)
  val step :
    ?scramble:(node:int -> degree:int -> round:int -> int array) ->
    ?faults:Faults.t ->
    ?adversary:Adversary.t ->
    t ->
    bits:bool array ->
    t

  val outputs : t -> Anonet_graph.Label.t option array

  (** [all_output t] holds when every node has produced its output —
      the "successful simulation" condition of Section 2.2. *)
  val all_output : t -> bool

  val round : t -> int

  val messages : t -> int

  (** [fingerprint t] is a digest of the whole execution state (node
      states, in-flight messages, outputs).  Equal fingerprints imply
      structurally equal states — two executions with equal fingerprints
      behave identically under equal future inputs — so searches over bit
      assignments can deduplicate branches.  (Unequal fingerprints do not
      imply unequal states; missing a duplicate only costs time.) *)
  val fingerprint : t -> string
end
