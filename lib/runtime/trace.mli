(** Execution traces: round-by-round observation of a run.

    Records, for every round, the cumulative message count and which nodes
    have produced their irrevocable outputs — enough to see an anonymous
    algorithm's convergence pattern without breaking the abstraction of
    node-local state.  Used by the CLI ([anonet solve --trace]) and handy
    when debugging new algorithms. *)

type t

(** [record ?ctx algo g ~tape ~max_rounds] executes while recording.  On
    failure the partial trace is still returned alongside the failure.

    [ctx.faults], when set, instantiates an injector threaded to
    {!Executor.Incremental.step}; its event log and crash schedule are
    captured in the trace and shown by {!render}.  [ctx.scramble_seed]
    scrambles inbox port orders as in {!Executor.run}.  [ctx.obs] gets the
    same [executor.rounds]/[executor.messages] counters and [faults.*]
    tallies as a plain run, under a [trace.record] span. *)
val record :
  ?ctx:Run_ctx.t ->
  Algorithm.t ->
  Anonet_graph.Graph.t ->
  tape:Tape.t ->
  max_rounds:int ->
  (t * Executor.outcome, t * Executor.failure) result

(** [output_rounds t] maps each node to the round at which it produced its
    output ([None] if it never did). *)
val output_rounds : t -> int option array

(** [messages_by_round t] is the number of messages delivered in each
    round, round 1 first. *)
val messages_by_round : t -> int list

(** [rounds t] is the number of rounds recorded. *)
val rounds : t -> int

(** [fault_events t] is the injector's event log, in injection order
    (empty when the run was recorded without [?faults]). *)
val fault_events : t -> Faults.event list

(** [adversary_events t] is the adversary's action log, in round order
    (empty when the run was recorded without [ctx.adversary]). *)
val adversary_events : t -> Adversary.event list

(** [render t] draws an ASCII timeline: one row per node, one column per
    round; ['.'] while undecided, ['#'] from the output round on, ['x']
    while crashed.  Fault events, if any, are listed below the grid. *)
val render : t -> string
