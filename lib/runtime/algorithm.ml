(** The anonymous message-passing algorithm interface (Section 1.1).

    Every node runs the same algorithm.  A node's whole input is its input
    label (which by convention includes anything the problem wants it to
    know — the model assumes the degree is always available) and its
    degree.  Nodes have no identifiers and no knowledge of global
    parameters.

    Execution is synchronous: in every round a node consumes exactly one
    random bit (deterministic algorithms simply ignore it — accessing
    finitely many bits per round is equivalent, Section 1.1), reads the
    messages that arrived on its ports, and emits at most one message per
    port.  Outputs are irrevocable: once {!val-S.output} returns [Some o]
    it must keep returning [Some o] forever; the executor enforces this. *)

module type S = sig
  type state

  val name : string

  (** [init ~input ~degree] is the state before round 1. *)
  val init : input:Anonet_graph.Label.t -> degree:int -> state

  (** [round state ~bit ~inbox] consumes one synchronous round.
      [inbox.(p)] is the message received on port [p] ([None] if the
      neighbor sent nothing last round; in round 1 the inbox is all
      [None]).  Returns the new state and the messages to send, one slot
      per port. *)
  val round :
    state ->
    bit:bool ->
    inbox:Anonet_graph.Label.t option array ->
    state * Anonet_graph.Label.t option array

  (** The node's irrevocable local output, if already produced. *)
  val output : state -> Anonet_graph.Label.t option
end

type t = (module S)

(** [broadcast ~degree msg] fills every port with [msg] — the common case
    for port-oblivious algorithms. *)
let broadcast ~degree msg = Array.make degree (Some msg)

(** [silence ~degree] sends nothing on any port. *)
let silence ~degree : Anonet_graph.Label.t option array = Array.make degree None
