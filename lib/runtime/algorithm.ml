(** The anonymous message-passing algorithm interface (Section 1.1).

    Every node runs the same algorithm.  A node's whole input is its input
    label (which by convention includes anything the problem wants it to
    know — the model assumes the degree is always available) and its
    degree.  Nodes have no identifiers and no knowledge of global
    parameters.

    Execution is synchronous: in every round a node consumes exactly one
    random bit (deterministic algorithms simply ignore it — accessing
    finitely many bits per round is equivalent, Section 1.1), reads the
    messages that arrived on its ports, and emits at most one message per
    port.  Outputs are irrevocable: once {!val-S.output} returns [Some o]
    it must keep returning [Some o] forever; the executor enforces this. *)

module type S = sig
  type state

  val name : string

  (** [init ~input ~degree] is the state before round 1. *)
  val init : input:Anonet_graph.Label.t -> degree:int -> state

  (** [round state ~bit ~inbox] consumes one synchronous round.
      [inbox.(p)] is the message received on port [p] ([None] if the
      neighbor sent nothing last round; in round 1 the inbox is all
      [None]).  Returns the new state and the messages to send, one slot
      per port. *)
  val round :
    state ->
    bit:bool ->
    inbox:Anonet_graph.Label.t option array ->
    state * Anonet_graph.Label.t option array

  (** The node's irrevocable local output, if already produced. *)
  val output : state -> Anonet_graph.Label.t option
end

type t = (module S)

(** [broadcast ~degree msg] fills every port with [msg] — the common case
    for port-oblivious algorithms. *)
let broadcast ~degree msg = Array.make degree (Some msg)

(** [silence ~degree] sends nothing on any port. *)
let silence ~degree : Anonet_graph.Label.t option array = Array.make degree None

(** Flat-machine companions: an unboxed rendering of the same algorithm.

    A flat instance stores every node's state as [state_words] consecutive
    ints in one shared arena and every in-flight message as [msg_words]
    consecutive ints in one shared inbox arena (one slot per directed
    edge; a slot whose first word is [0] carries no message).  [round]
    mutates the node's state span in place and, when it returns [true],
    broadcasts the [msg_words]-span it wrote into the send buffer on
    every port.  Algorithms register a flat companion with
    {!register_flat}; the executor switches to the flat representation
    whenever one is available, the run is free of faults/adversary/
    scramble hooks (those operate on boxed [Label.t] payloads), and
    {!Flat.plan} accepts the graph.

    The contract mirrors the boxed path bit for bit: a flat companion
    must be an {e injective} encoding of the boxed states and messages —
    equal flat arenas if and only if the boxed execution states are
    structurally equal — and must keep outputs irrevocable (the flat
    path trusts it instead of re-checking every round).  The qcheck
    equivalence suite ([test/test_flat.ml]) holds registered companions
    to exactly this: byte-identical outputs, rounds, message counts and
    search results against the boxed path on fixed and random graphs. *)
module Flat = struct
  type instance = {
    state_words : int;  (** ints per node in the state arena *)
    msg_words : int;  (** ints per directed-edge slot; word 0 = 0 when empty *)
    init :
      node:int ->
      input:Anonet_graph.Label.t ->
      degree:int ->
      state:int array ->
      off:int ->
      unit;
        (** fill the node's span (pre-zeroed) with the initial state *)
    round :
      node:int ->
      bit:bool ->
      degree:int ->
      state:int array ->
      off:int ->
      inbox:int array ->
      ioff:int ->
      send:int array ->
      soff:int ->
      bool;
        (** one synchronous round: read inbox slots [ioff + p*msg_words]
            for ports [p < degree], mutate the state span at [off], and
            either write a message into the send span at [soff] and
            return [true] (broadcast) or return [false] (silence).  A
            [true] return must leave {e every} word of the send span
            deterministic — unused trailing words zeroed — because the
            routed inbox arena doubles as a search dedup key. *)
    output : state:int array -> off:int -> Anonet_graph.Label.t option;
    has_output : state:int array -> off:int -> bool;
        (** allocation-free [output <> None] *)
  }

  type t = {
    plan : Anonet_graph.Graph.t -> instance option;
        (** size the arenas for this graph, or decline ([None]) when the
            flat encoding cannot represent the run (e.g. packed fields
            would overflow) — the executor then stays on the boxed path *)
  }
end

(* Flat companions are registered against the algorithm's first-class
   module value (physical identity): wrappers such as Retransmit.wrap
   produce fresh module values and therefore — correctly — stay boxed.
   The list is tiny (a handful of library algorithms) and read-mostly;
   registration CASes so concurrent domain start-up is safe. *)
let flat_registry : (t * Flat.t) list Atomic.t = Atomic.make []

let register_flat algo flat =
  let rec add () =
    let old = Atomic.get flat_registry in
    if not (Atomic.compare_and_set flat_registry old ((algo, flat) :: old)) then
      add ()
  in
  add ()

let find_flat (algo : t) =
  List.find_map
    (fun (a, f) -> if a == algo then Some f else None)
    (Atomic.get flat_registry)
