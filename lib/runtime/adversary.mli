(** Adaptive adversaries: strategy-driven message tampering layered on top
    of {!Faults}.

    {!Faults} models {e oblivious} failures — each message is dropped,
    duplicated or corrupted by an independent coin flip fixed in the plan.
    This module models the stronger adversary of the secured-algorithms
    literature: one that {e observes} every delivered message and {e adapts}
    its next actions to the traffic it has seen.  Three strategies:

    - [Byzantine nodes]: the listed nodes are compromised.  Every message
      they send may be substituted with a crafted payload — either a replay
      of an earlier message observed on the same link (well-formed, stale,
      maximally confusing to decoders) or a structural perturbation
      ({!Faults.corrupt_label});
    - [Link_sniper k]: a targeted-link corruption schedule.  At each round
      boundary the adversary picks the [k] links that carried the most
      traffic since the last boundary and corrupts messages crossing them
      in the coming round;
    - [Eavesdropper k]: records the payloads crossing every link (the
      observable image of each node's random bits) and targets the [k]
      links with the highest empirical payload entropy — the links whose
      traffic is most diverse, i.e. most likely to carry the random choices
      the Las-Vegas algorithms depend on.

    Determinism and budget are contractual, exactly as for {!Faults}: all
    randomness comes from a splitmix generator seeded by the plan, the
    adversary's choices are a pure function of the plan and the observed
    message sequence (which the executors produce deterministically), and
    every substitution or corruption spends one unit of the optional
    budget — an exhausted adversary observes but no longer acts.  Equal
    plans on equal executions therefore tamper identically, so adversarial
    runs are exactly reproducible (including across [--jobs 1/2/4]: the
    racing harness instantiates a fresh adversary per attempt).

    A {!plan} is a pure description; {!make} instantiates the stateful
    adversary threaded through one execution.  Instances must not be shared
    between runs (they carry the PRNG, the budget counter, the observation
    tables and the event log) — {!Run_ctx.adversary_instance} makes a fresh
    one per run. *)

type strategy =
  | Byzantine of int list  (** compromised nodes (senders), deduplicated *)
  | Link_sniper of int  (** corrupt the [k] busiest links of the last round *)
  | Eavesdropper of int  (** corrupt the [k] highest-entropy links *)

type plan = {
  seed : int;
  strength : float;
      (** probability an {e eligible} message (sent by a Byzantine node, or
          crossing a targeted link) is actually tampered with, in [0,1] *)
  strategy : strategy;
  budget : int option;  (** max tamperings; [None] = unlimited *)
}

(** [byzantine nodes ~strength ~seed] is a convenience constructor with an
    unlimited budget; likewise {!sniper} and {!eavesdropper}. *)
val byzantine : int list -> strength:float -> seed:int -> plan

val sniper : int -> strength:float -> seed:int -> plan
val eavesdropper : int -> strength:float -> seed:int -> plan

type event_kind =
  | Substituted of { src : int; dst : int }
      (** a Byzantine sender's payload was replaced *)
  | Corrupted of { src : int; dst : int }
      (** a targeted link's payload was perturbed *)
  | Targeted of { src : int; dst : int }
      (** the link entered the target set at this round boundary *)

type event = {
  round : int;
  kind : event_kind;
}

val pp_event : Format.formatter -> event -> unit

type t

(** [make plan] instantiates a fresh adversary.
    @raise Invalid_argument if [strength] is outside [0,1], a Byzantine
    node id is negative, a link count is negative, or the budget is
    negative. *)
val make : plan -> t

val plan : t -> plan

(** Tamperings (substitutions + corruptions) so far — what the budget
    meters. *)
val spent : t -> int

(** Messages observed so far (every delivered message, tampered or not). *)
val observed : t -> int

(** Actions taken, in round order (stable within a round). *)
val events : t -> event list

(** [tamper t ~src ~dst ~round payload] is the adversary's wire tap: it
    observes the (post-{!Faults}) delivered payload crossing [src -> dst]
    in [round] and returns the payload to actually deliver — the original,
    or a substituted/corrupted copy when the strategy elects to act and the
    budget allows.  The first call with a [round] beyond any seen so far is
    a round boundary: the adaptive strategies re-pick their target links
    from the traffic observed up to that point (so round-[r] targeting
    depends only on rounds [< r], in both executors). *)
val tamper :
  t -> src:int -> dst:int -> round:int -> Anonet_graph.Label.t ->
  Anonet_graph.Label.t

(** {2 The adversary-spec grammar}

    Comma-separated items (used by [anonet solve --adversary]); exactly one
    strategy item is required:

    {v
    byzantine=V1+V2+..  compromise the listed nodes
    sniper=K            target the K busiest links each round
    eavesdropper=K      target the K highest-entropy links each round
    strength=P          tamper probability per eligible message (default 1)
    seed=N              adversary PRNG seed                     (default 0)
    budget=K            tampering budget              (default unlimited)
    v}

    Example: ["eavesdropper=2,strength=0.5,seed=7,budget=40"]. *)

val plan_of_string : string -> (plan, string) result

(** [plan_to_string p] renders [p] in the grammar above;
    [plan_of_string (plan_to_string p)] re-reads it exactly. *)
val plan_to_string : plan -> string
