(** Harness for running Las-Vegas algorithms to completion.

    The paper's algorithms terminate with probability 1, so a sufficiently
    generous round budget almost always suffices; this harness retries with
    fresh derived seeds in the (measure-zero in the limit, merely unlucky
    in practice) event the budget runs out, and reports how many attempts
    were needed. *)

type report = {
  outcome : Executor.outcome;
  attempts : int;  (** 1 when the first run already finished *)
  seed_used : int;
}

(** [solve algo g ~seed ?max_rounds ?attempts ()] runs [algo] with random
    tapes derived from [seed], retrying up to [attempts] times
    (default 20) with a budget of [max_rounds] (default [64 * (n + 4)])
    rounds per attempt. *)
val solve :
  Algorithm.t ->
  Anonet_graph.Graph.t ->
  seed:int ->
  ?max_rounds:int ->
  ?attempts:int ->
  unit ->
  (report, string) result
