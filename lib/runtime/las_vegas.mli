(** Harness for running Las-Vegas algorithms to completion.

    The paper's algorithms terminate with probability 1, so a sufficiently
    generous round budget almost always suffices; this harness retries with
    fresh derived seeds in the (measure-zero in the limit, merely unlucky
    in practice) event the budget runs out, and reports how many attempts
    were needed.

    Each attempt [i] draws its tape from [Prng.hash2 seed i] — a
    splitmix-style hash, so attempt seeds are pairwise unrelated even for
    adjacent user seeds — and runs with an exponentially backed-off round
    budget [max_rounds * backoff^(i-1)]: unlucky or fault-injected runs
    escalate instead of burning the same fixed budget every time.  A
    [giveup] cap bounds the total rounds spent across attempts.

    Because an attempt's outcome is a pure function of [(seed, i, budget)],
    attempts can also be raced speculatively across a domain pool
    ({!solve}'s [?pool]): the harness reports the lowest attempt index with
    a terminal outcome, which is exactly the attempt the sequential loop
    would have stopped at, so parallel and sequential runs return
    identical reports and identical error strings. *)

type report = {
  outcome : Executor.outcome;
  attempts : int;  (** 1 when the first run already finished *)
  seed_used : int;
  rounds_spent : int;
      (** total rounds consumed across all attempts, failed ones included *)
}

(** Why a solve gave up — structured, so callers (the CLI, {!Run_error})
    can react without parsing the message. *)
type failure_reason =
  | No_success  (** every attempt ran out of rounds *)
  | Gave_up  (** the [giveup] cap stopped the escalation *)
  | Diverged
      (** divergence detected: an attempt with a budget at or above the
          [divergence] threshold still failed to stabilize — escalating
          further cannot help (see {!solve_detailed}) *)
  | Network_dead
      (** the fault plan crash-stops every node; retrying cannot help *)

type failure = {
  reason : failure_reason;
  message : string;
      (** the exact string {!solve} returns — byte-identical between the
          sequential and racing paths *)
}

val pp_failure : Format.formatter -> failure -> unit
(** Prints [message]. *)

(** [solve ?ctx algo g ~seed ?max_rounds ?attempts ?backoff ?giveup ()]
    runs [algo] with random tapes derived from [seed], retrying up to
    [attempts] times (default 20), and reports failures {e structured}:
    the [Error] case is a {!failure} whose [reason] distinguishes giving
    up from divergence from a dead network (so callers can pick an exit
    code via {!Run_error.exit_code} without parsing text) and whose
    [message] is the full diagnostic string.  Callers that only want the
    text can use {!solve_msg}.  Attempt [i] gets a budget of
    [max_rounds * backoff^(i-1)] rounds ([max_rounds] defaults to the
    context's {!Run_ctx.max_rounds_policy}, i.e. [64 * (n + 4)] for the
    default context; [backoff] to [2.0]; pass [~backoff:1.0] for the old
    fixed-budget behavior).  When [giveup] is set, the harness stops as
    soon as the next attempt's budget would push the total rounds spent
    past the cap.  Error strings include the last attempt's failure,
    budget, and seed, so diagnosing does not require re-running.

    Per-attempt budgets are clamped at [max_int / 2] — with a large
    [backoff] the exponential escalation exceeds the integer range after a
    few dozen attempts, and an unclamped conversion would wrap the budget
    negative (and sail past a [giveup] cap).

    When [divergence] is set, an attempt whose budget has escalated to at
    least [divergence *. max_rounds] and that {e still} runs out of rounds
    is declared diverged ({!Diverged}) instead of retried: past that point
    the failure is systematic — typically an adversary or fault plan
    re-corrupting the run every round — and escalating further cannot
    help.  Divergence is terminal in both the sequential and racing paths;
    because budgets grow monotonically, the racing path still stops at
    exactly the attempt the sequential loop would have.

    From the context: [ctx.faults] subjects every attempt to a fresh
    injector for the plan (see {!Faults}); a plan that crash-stops all
    nodes fails immediately without retrying.  [ctx.adversary] likewise
    subjects every attempt to a fresh {!Adversary} instance — attempts
    stay pure functions of [(seed, i, budget)].  [ctx.pool], when sized
    above one domain, races waves of speculative attempts across the
    pool's domains, cancelling attempts that already lost via a shared
    atomic flag.  The result — report or error string — is byte-identical
    to the sequential run's: the harness selects the lowest attempt index
    with a terminal outcome and charges the deterministic budgets of the
    failed attempts below it.

    [ctx.obs] receives [attempt.start]/[attempt.done]/[attempt.cancel]/
    [attempt.win] events, a [las_vegas.solve] span, and — posted from the
    final report so they match it exactly in both sequential and racing
    modes — the [lv.attempts], [lv.rounds_spent], [lv.rounds] and
    [lv.messages] counters.  The executor runs inside attempts are {e not}
    individually instrumented: speculative attempts must not pollute the
    counters.
    @raise Invalid_argument if [backoff < 1] or [divergence <= 0]. *)
val solve :
  ?ctx:Run_ctx.t ->
  Algorithm.t ->
  Anonet_graph.Graph.t ->
  seed:int ->
  ?max_rounds:int ->
  ?attempts:int ->
  ?backoff:float ->
  ?giveup:int ->
  ?divergence:float ->
  unit ->
  (report, failure) result

(** [solve_msg] is {!solve} with the failure erased to its [message] — a
    thin convenience wrapper for callers (scripts, examples, deciders)
    that only propagate the diagnostic text and never branch on the
    reason.  [solve_msg ... = Result.map_error (fun f -> f.message)
    (solve ...)], argument for argument. *)
val solve_msg :
  ?ctx:Run_ctx.t ->
  Algorithm.t ->
  Anonet_graph.Graph.t ->
  seed:int ->
  ?max_rounds:int ->
  ?attempts:int ->
  ?backoff:float ->
  ?giveup:int ->
  ?divergence:float ->
  unit ->
  (report, string) result
