(** A small work-distributing domain pool for the embarrassingly parallel
    workloads of the derandomization: independent Las-Vegas attempts,
    disjoint subtrees of the bit-assignment search, independent
    graph-family experiment rows.

    The pool owns [domains - 1] worker domains (the caller of {!map},
    {!run} or {!race} is always the remaining worker, so a pool of size
    [d] computes on [d] domains).  Work items are indexed [0 .. n-1] and
    distributed dynamically — each participant repeatedly claims the next
    unclaimed index — so uneven item costs balance automatically.  Results
    are merged in {e index order}, never in completion order: every
    combinator is deterministic given deterministic tasks.

    Sequential fallback: a pool created with [~domains:1] (or without
    [~domains] on a machine where [Domain.recommended_domain_count () = 1])
    spawns no domains at all; every combinator then degenerates to a plain
    in-order loop.  Callers can thread [?pool] unconditionally and let the
    pool decide.

    Pools are not reentrant: do not call {!run}, {!map} or {!race} from
    inside a task of the same pool. *)

type t

(** [create ~domains ()] spawns [domains - 1] worker domains.  [domains]
    defaults to [Domain.recommended_domain_count ()]; an explicit value is
    honored even beyond the core count (useful for testing the parallel
    paths and for oversubscription experiments).

    [obs], when live, gives the pool a [pool.tasks] counter and
    [pool.task.run_ns] / [pool.task.wait_ns] histograms (wait = time from
    job post to claim, recorded only on the parallel path where queueing
    exists).  An uninstrumented pool pays one branch per handle per task.
    @raise Invalid_argument if [domains < 1]. *)
val create : ?obs:Anonet_obs.Obs.t -> ?domains:int -> unit -> t

(** Number of domains the pool computes on (workers + caller), [>= 1]. *)
val domains : t -> int

(** [shutdown t] joins the worker domains.  Idempotent.  Using the pool
    after shutdown raises [Invalid_argument]. *)
val shutdown : t -> unit

(** [with_pool ~domains f] runs [f] on a fresh pool and always shuts it
    down, including on exceptions. *)
val with_pool : ?obs:Anonet_obs.Obs.t -> ?domains:int -> (t -> 'a) -> 'a

(** [run t ~n body] executes [body i] for every [i] in [0 .. n-1], in
    parallel across the pool's domains.  Every index is executed exactly
    once.  If some [body i] raises, the remaining unclaimed indices are
    skipped (claimed but not run) and the first recorded exception is
    re-raised in the caller once all participants have drained. *)
val run : t -> n:int -> (int -> unit) -> unit

(** [map t f arr] is [Array.map f arr] computed in parallel.  The result
    array is in input order ([(map t f arr).(i) = f arr.(i)]) — the
    deterministic reduction order downstream merges rely on. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [race t ~n task] races the speculative tasks [0 .. n-1] and returns
    [Some (i, v)] for the {e lowest} index whose task returned [Some v],
    or [None] when every task returned [None].

    The guarantee is exactly the sequential first-success semantics: every
    task with an index below the winner was run to completion and returned
    [None].  Losers are cancelled via a shared atomic flag: a task whose
    index already lost (some lower index succeeded) is skipped if not yet
    started, and its [~stop] callback starts answering [true] so running
    tasks can abandon work cooperatively ([stop] never answers [true]
    for a task all of whose lower-indexed rivals may still fail).

    With a sequential pool this is literally the first-success loop: tasks
    run in index order and nothing after the winner is started. *)
val race : t -> n:int -> (stop:(unit -> bool) -> int -> 'a option) -> (int * 'a) option
