(* A persistent pool of worker domains draining a shared index counter.

   Each job is a self-contained record (body, size, claim/finish counters,
   first-failure slot): workers grab the *current* job under the lock but
   drain it through the job record only, so a worker that wakes up late —
   after the caller already finished the job and moved on — finds the
   stale record's counter exhausted and harmlessly loops back to sleep.
   Completion is "every index finished", tracked in the job itself; the
   caller owns the job and is always one of the drainers. *)

module Obs = Anonet_obs.Obs
module Metrics = Anonet_obs.Metrics

type job =
  | Job : {
      body : int -> unit;
      size : int;
      next : int Atomic.t;  (** next unclaimed index *)
      finished : int Atomic.t;  (** indices fully processed (run or skipped) *)
      failure : exn option Atomic.t;  (** first exception, by wall clock *)
      posted_ns : int;  (** post time, 0 when the pool is uninstrumented *)
    }
      -> job

type t = {
  domains : int;
  mutable workers : unit Domain.t list;
  lock : Mutex.t;
  wake : Condition.t;  (** new job posted, or shutdown *)
  idle : Condition.t;  (** some job just finished its last index *)
  mutable generation : int;  (** bumped per posted job *)
  mutable job : job option;
  mutable stopped : bool;
  (* Metric handles resolved at creation; [None] on an uninstrumented pool
     keeps the claim loop at one branch per handle. *)
  tasks_c : Metrics.counter option;
  run_h : Metrics.histogram option;
  wait_h : Metrics.histogram option;
}

let domains t = t.domains

(* Drain [j]: claim indices until exhausted.  After a failure is recorded,
   remaining indices are claimed but their bodies skipped, so the job
   still terminates promptly and deterministically reaches [finished =
   size].  Whoever finishes the last index signals the caller. *)
let run_body t (Job j) i =
  (match t.wait_h with
   | None -> ()
   | Some h -> Metrics.observe h (max 0 (Obs.now_ns () - j.posted_ns)));
  (match t.tasks_c with None -> () | Some c -> Metrics.incr c);
  match t.run_h with
  | None ->
    (try j.body i
     with e -> ignore (Atomic.compare_and_set j.failure None (Some e)))
  | Some h ->
    let t0 = Obs.now_ns () in
    (try j.body i
     with e -> ignore (Atomic.compare_and_set j.failure None (Some e)));
    Metrics.observe h (Obs.now_ns () - t0)

let drain t (Job j) =
  let rec go () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.size then begin
      (if Atomic.get j.failure = None then run_body t (Job j) i);
      let f = 1 + Atomic.fetch_and_add j.finished 1 in
      if f = j.size then begin
        Mutex.lock t.lock;
        Condition.broadcast t.idle;
        Mutex.unlock t.lock
      end;
      go ()
    end
  in
  go ()

let rec worker t ~seen =
  Mutex.lock t.lock;
  while (not t.stopped) && t.generation = seen do
    Condition.wait t.wake t.lock
  done;
  let seen = t.generation in
  let job = t.job in
  let stopped = t.stopped in
  Mutex.unlock t.lock;
  if not stopped then begin
    (match job with None -> () | Some j -> drain t j);
    worker t ~seen
  end

let create ?(obs = Obs.null) ?domains () =
  let domains =
    match domains with
    | Some d -> if d < 1 then invalid_arg "Pool.create: domains < 1" else d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      domains;
      workers = [];
      lock = Mutex.create ();
      wake = Condition.create ();
      idle = Condition.create ();
      generation = 0;
      job = None;
      stopped = false;
      tasks_c = Obs.counter obs "pool.tasks";
      run_h = Obs.histogram obs "pool.task.run_ns";
      wait_h = Obs.histogram obs "pool.task.wait_ns";
    }
  in
  if domains > 1 then
    t.workers <-
      List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t ~seen:0));
  t

let shutdown t =
  Mutex.lock t.lock;
  if t.stopped then Mutex.unlock t.lock
  else begin
    t.stopped <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?obs ?domains f =
  let t = create ?obs ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run t ~n body =
  if n > 0 then begin
    if t.domains = 1 then
      (* Sequential fallback: in order, first exception propagates.  Tasks
         are still counted and timed (there is no queueing wait to speak
         of, so [pool.task.wait_ns] stays untouched). *)
      for i = 0 to n - 1 do
        (match t.tasks_c with None -> () | Some c -> Metrics.incr c);
        match t.run_h with
        | None -> body i
        | Some h ->
          let t0 = Obs.now_ns () in
          Fun.protect
            ~finally:(fun () -> Metrics.observe h (Obs.now_ns () - t0))
            (fun () -> body i)
      done
    else begin
      let j =
        Job
          {
            body;
            size = n;
            next = Atomic.make 0;
            finished = Atomic.make 0;
            failure = Atomic.make None;
            posted_ns = (if Option.is_none t.wait_h then 0 else Obs.now_ns ());
          }
      in
      Mutex.lock t.lock;
      if t.stopped then begin
        Mutex.unlock t.lock;
        invalid_arg "Pool.run: pool is shut down"
      end;
      t.job <- Some j;
      t.generation <- t.generation + 1;
      Condition.broadcast t.wake;
      Mutex.unlock t.lock;
      drain t j;
      let (Job { finished; failure; size; _ }) = j in
      Mutex.lock t.lock;
      while Atomic.get finished < size do
        Condition.wait t.idle t.lock
      done;
      t.job <- None;
      Mutex.unlock t.lock;
      match Atomic.get failure with Some e -> raise e | None -> ()
    end
  end

let map t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run t ~n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let race t ~n task =
  if n <= 0 then None
  else if t.domains = 1 then begin
    (* The literal sequential first-success loop: nothing past the winner
       is ever started. *)
    let stop () = false in
    let rec go i =
      if i >= n then None
      else begin
        match task ~stop i with Some v -> Some (i, v) | None -> go (i + 1)
      end
    in
    go 0
  end
  else begin
    let best = Atomic.make max_int in
    let results = Array.make n None in
    let body i =
      (* Skip tasks that already lost; [best] only ever decreases, so a
         skipped index is always above the final winner. *)
      if Atomic.get best > i then begin
        let stop () = Atomic.get best < i in
        match task ~stop i with
        | None -> ()
        | Some v ->
          results.(i) <- Some v;
          let rec lower () =
            let cur = Atomic.get best in
            if i < cur && not (Atomic.compare_and_set best cur i) then lower ()
          in
          lower ()
      end
    in
    run t ~n body;
    match Atomic.get best with
    | b when b = max_int -> None
    | b -> (match results.(b) with Some v -> Some (b, v) | None -> assert false)
  end
