(** Primality of labeled graphs (Section 2.3.1, Lemmas 3 and 4).

    A labeled graph is {e prime} when all its factors are isomorphic to it.
    For 2-hop colored graphs the infinite view graph is the unique prime
    factor (Lemma 3), so primality is decidable by comparing [|V*|] with
    [|V|], and in a prime 2-hop colored graph the local view is a faithful
    alias for the node (Lemma 4 / Corollary 1). *)

(** [is_prime g] decides whether the 2-hop colored graph [g] is prime,
    i.e. whether distinct nodes always have distinct depth-infinity views.
    @raise Invalid_argument if [g] is not 2-hop colored. *)
val is_prime : Anonet_graph.Graph.t -> bool

(** [prime_factor g] is the unique prime factor of the 2-hop colored graph
    [g] — its finite view graph — together with the factorizing map.
    @raise Invalid_argument if [g] is not 2-hop colored. *)
val prime_factor : Anonet_graph.Graph.t -> View_graph.t

(** [aliases_faithful g] checks Corollary 1 on a prime 2-hop colored
    [g]: depth-[n] views are pairwise distinct across nodes. *)
val aliases_faithful : Anonet_graph.Graph.t -> bool
