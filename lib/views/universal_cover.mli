(** The universal cover [U(G)] (Section 1.3, cf. Angluin [5] and
    Norris [39]).

    [U(G)] is the (possibly infinite) tree obtained from the depth-infinity
    local view [L_∞(v)] by pruning, at every non-root vertex, the child
    that corresponds to the vertex's parent, and forgetting edge
    directions: its branches are the {e non-backtracking} walks of [G].
    Norris' theorem is originally stated for universal covers —
    isomorphism of depth-(n-1) truncations implies isomorphism to all
    depths — and translates to the depth-n statement about local views
    used in Section 3 (footnote 4 of the paper).

    Truncations are returned as {!View.t} trees (rooted, canonical). *)

(** [truncation g ~root ~depth] is the depth-[depth] truncation of [U(g)]
    rooted at [root]'s copy: level 2 lists all neighbors; deeper levels
    omit the walk's predecessor.
    @raise Invalid_argument if [depth < 1]. *)
val truncation : Anonet_graph.Graph.t -> root:int -> depth:int -> View.t

(** [classes_at_depth g d] partitions nodes by equality of their depth-[d]
    universal-cover truncations (canonical class numbering). *)
val classes_at_depth : Anonet_graph.Graph.t -> int -> int array

(** [stable_depth g] is the smallest [d] at which the truncation partition
    equals the [L_∞] partition of {!Refinement}.  Norris: at most [n-1]
    on graphs with at least 2 nodes (and 1 on the singleton). *)
val stable_depth : Anonet_graph.Graph.t -> int

(** [agrees_with_views g ~depth] checks, for every pair of nodes, that
    depth-[depth] universal-cover truncations and depth-[depth] local
    views induce the same equivalence whenever both are stable — i.e.
    at any [depth >= n] the two partitions coincide (both equal the
    [L_∞] partition). *)
val agrees_with_views : Anonet_graph.Graph.t -> depth:int -> bool
