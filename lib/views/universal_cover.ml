module Graph = Anonet_graph.Graph

let truncation g ~root ~depth =
  if depth < 1 then invalid_arg "Universal_cover.truncation: need depth >= 1";
  (* Memoize the non-backtracking subtrees on (node, parent, depth). *)
  let memo = Hashtbl.create 64 in
  let rec subtree v ~parent d =
    match Hashtbl.find_opt memo (v, parent, d) with
    | Some t -> t
    | None ->
      let t =
        if d = 1 then { View.mark = Graph.label g v; children = [] }
        else begin
          let children =
            Array.to_list (Graph.neighbors g v)
            |> List.filter (fun u -> u <> parent)
            |> List.map (fun u -> subtree u ~parent:v (d - 1))
            |> List.sort View.compare
          in
          { View.mark = Graph.label g v; children }
        end
      in
      Hashtbl.add memo (v, parent, d) t;
      t
  in
  if depth = 1 then { View.mark = Graph.label g root; children = [] }
  else begin
    let children =
      Array.to_list (Graph.neighbors g root)
      |> List.map (fun u -> subtree u ~parent:root (depth - 1))
      |> List.sort View.compare
    in
    { View.mark = Graph.label g root; children }
  end

let classes_at_depth g d =
  let n = Graph.n g in
  let trees = Array.init n (fun v -> truncation g ~root:v ~depth:d) in
  let distinct =
    List.sort_uniq View.compare (Array.to_list trees)
  in
  let index t =
    let rec find i = function
      | [] -> assert false
      | x :: rest -> if View.compare x t = 0 then i else find (i + 1) rest
    in
    find 0 distinct
  in
  Array.map index trees

let stable_depth g =
  let target = (Refinement.run g).Refinement.classes in
  let same_partition a b =
    let n = Array.length a in
    let ok = ref true in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if a.(u) = a.(v) <> (b.(u) = b.(v)) then ok := false
      done
    done;
    !ok
  in
  let rec search d =
    if d > max 1 (Graph.n g) then d (* should not happen; Norris bounds it *)
    else if same_partition (classes_at_depth g d) target then d
    else search (d + 1)
  in
  search 1

let agrees_with_views g ~depth =
  let uc = classes_at_depth g depth in
  let views = Refinement.classes_at_depth g depth in
  let n = Graph.n g in
  if depth < max 1 n then invalid_arg "Universal_cover.agrees_with_views: need depth >= n";
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if uc.(u) = uc.(v) <> (views.(u) = views.(v)) then ok := false
    done
  done;
  !ok
