module Graph = Anonet_graph.Graph

(* Non-backtracking subtrees interned on (node, parent, depth).  The memo is
   shared across every root of one builder, so [classes_at_depth] builds all
   n truncations in O(n * depth * Δ) interning steps total. *)
let truncation_builder g =
  let memo = Hashtbl.create 64 in
  let rec subtree v ~parent d =
    match Hashtbl.find_opt memo (v, parent, d) with
    | Some t -> t
    | None ->
      let t =
        if d = 1 then Interned.leaf (Graph.label g v)
        else
          Array.to_list (Graph.neighbors g v)
          |> List.filter (fun u -> u <> parent)
          |> List.map (fun u -> subtree u ~parent:v (d - 1))
          |> Interned.node (Graph.label g v)
      in
      Hashtbl.add memo (v, parent, d) t;
      t
  in
  fun ~root ~depth ->
    if depth < 1 then invalid_arg "Universal_cover.truncation: need depth >= 1";
    if depth = 1 then Interned.leaf (Graph.label g root)
    else
      Array.to_list (Graph.neighbors g root)
      |> List.map (fun u -> subtree u ~parent:root (depth - 1))
      |> Interned.node (Graph.label g root)

let truncation g ~root ~depth = View.of_interned (truncation_builder g ~root ~depth)

let classes_at_depth g d =
  let build = truncation_builder g in
  let n = Graph.n g in
  let trees = Array.init n (fun v -> build ~root:v ~depth:d) in
  let distinct = List.sort_uniq Interned.compare (Array.to_list trees) in
  (* Interning makes each tree physically equal to its representative in
     [distinct], so a table keyed by interned id replaces the former linear
     scan per node. *)
  let index : (int, int) Hashtbl.t = Hashtbl.create (List.length distinct) in
  List.iteri (fun i t -> Hashtbl.replace index (Interned.id t) i) distinct;
  Array.map (fun t -> Hashtbl.find index (Interned.id t)) trees

let stable_depth g =
  let target = (Refinement.run g).Refinement.classes in
  let same_partition a b =
    let n = Array.length a in
    let ok = ref true in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if a.(u) = a.(v) <> (b.(u) = b.(v)) then ok := false
      done
    done;
    !ok
  in
  let rec search d =
    if d > max 1 (Graph.n g) then d (* should not happen; Norris bounds it *)
    else if same_partition (classes_at_depth g d) target then d
    else search (d + 1)
  in
  search 1

let agrees_with_views g ~depth =
  let uc = classes_at_depth g depth in
  let views = Refinement.classes_at_depth g depth in
  let n = Graph.n g in
  if depth < max 1 n then invalid_arg "Universal_cover.agrees_with_views: need depth >= n";
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if uc.(u) = uc.(v) <> (views.(u) = views.(v)) then ok := false
    done
  done;
  !ok
