(** Fibrations and 2-hop colorings (Section 4 of the paper).

    Boldi and Vigna [13] study {e fibrations} of edge-colored directed
    graphs — roughly, factorizing maps generalized to arcs.  Section 4
    observes a two-way bridge to this library's undirected world:

    - every 2-hop colored undirected graph [G = (V, E, c)] has a
      {e directed (edge-colored) representation} [H]: same nodes, each
      undirected edge [(u, v)] becomes two arcs [(u, v)] and [(v, u)]
      colored [<c u, c v>] and [<c v, c u>] respectively.  [H] is
      symmetric (with the pair-swap as color involution) and its coloring
      is {e deterministic} — out-arcs of a node have pairwise distinct
      colors — precisely because [c] is a 2-hop coloring;
    - a fibration between directed representations is the same thing as a
      factorizing map between the underlying 2-hop colored graphs.

    This module constructs the representation and checks both directions
    of the correspondence executable-ly. *)

(** [directed_representation g] is [H] above.
    @raise Invalid_argument if [g] is not 2-hop colored (the construction
    is defined for arbitrary labeled graphs, but the paper's properties —
    and this library's uses — need the coloring). *)
val directed_representation : Anonet_graph.Graph.t -> Digraph.t

(** [swap_mate color] is the color involution [<a, b> -> <b, a>]. *)
val swap_mate : Anonet_graph.Label.t -> Anonet_graph.Label.t

(** [is_fibration ~total ~base ~map] checks that [map] is a surjective
    (epimorphic) fibration from [total] to [base] in the
    deterministic-coloring setting: it preserves arcs with their colors,
    and for every node [v] of [total], the out-arcs of [v] biject onto the
    out-arcs of [map v] color-for-color (the unique-lifting property
    specialized to deterministic colorings).  Surjectivity is required so
    that fibrations correspond exactly to factorizing maps. *)
val is_fibration : total:Digraph.t -> base:Digraph.t -> map:int array -> bool

(** [check_correspondence ~product ~factor ~map] verifies Section 4's
    claim on a concrete pair: [map] is a factorizing map between the
    2-hop colored graphs iff it is a fibration between their directed
    representations.  Returns the two booleans (they must agree). *)
val check_correspondence :
  product:Anonet_graph.Graph.t ->
  factor:Anonet_graph.Graph.t ->
  map:int array ->
  bool * bool
