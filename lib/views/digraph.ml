module Label = Anonet_graph.Label

type t = {
  n : int;
  out : (int * Label.t) list array;
  into : (int * Label.t) list array;
}

let create ~n ~arcs =
  if n < 0 then invalid_arg "Digraph.create: negative node count";
  let out = Array.make n [] and into = Array.make n [] in
  let seen = Hashtbl.create (List.length arcs) in
  List.iter
    (fun (u, v, c) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Digraph.create: arc endpoint out of range";
      if u = v then invalid_arg "Digraph.create: self-loop";
      let key = u, v, Label.encode c in
      if Hashtbl.mem seen key then invalid_arg "Digraph.create: duplicate arc";
      Hashtbl.add seen key ();
      out.(u) <- (v, c) :: out.(u);
      into.(v) <- (u, c) :: into.(v))
    arcs;
  { n; out; into }

let n g = g.n

let num_arcs g = Array.fold_left (fun acc l -> acc + List.length l) 0 g.out

let out_arcs g v = g.out.(v)

let in_arcs g v = g.into.(v)

let has_arc g u v color =
  List.exists (fun (w, c) -> w = v && Label.equal c color) g.out.(u)

let is_symmetric g ~mate =
  let ok = ref true in
  Array.iteri
    (fun u arcs ->
      List.iter (fun (v, c) -> if not (has_arc g v u (mate c)) then ok := false) arcs)
    g.out;
  !ok

let is_deterministic g =
  Array.for_all
    (fun arcs ->
      let colors = List.sort Label.compare (List.map snd arcs) in
      let rec distinct = function
        | a :: (b :: _ as rest) -> (not (Label.equal a b)) && distinct rest
        | _ -> true
      in
      distinct colors)
    g.out
