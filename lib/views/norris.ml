module Graph = Anonet_graph.Graph

let stable_view_depth g = (Refinement.run g).Refinement.stable_view_depth

let bound_holds g = stable_view_depth g <= max 1 (Graph.n g)

let determination_depth g =
  let stable = Refinement.run g in
  let final = stable.Refinement.classes in
  let n = Graph.n g in
  if n <= 1 then 1
  else begin
    (* For each depth d, check which pairs are already separated; the answer
       is the depth at which the partition last changed, found by scanning
       the refinement history. *)
    let rec scan depth classes =
      if classes = final then depth
      else scan (depth + 1) (Refinement.refine_once g classes)
    in
    scan 1 (Refinement.initial g)
  end
