module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Encode = Anonet_graph.Encode
module Obs = Anonet_obs.Obs

(* A view node is an integer handle [slot lsl shard_bits lor shard]; all node
   attributes (mark, size, depth, children) live in flat per-shard column
   arrays instead of per-node records.  Two wins over the former record
   representation: no box per view node (the whole store is a handful of
   arrays the GC scans as units), and the intern table splits into
   [shard_count] independently locked shards, so concurrent interning by
   pool workers contends only when two structures hash to the same shard. *)

type t = int

let equal (a : t) (b : t) = Int.equal a b

let hash (t : t) = t

let id (t : t) = t

(* Unfolded-tree sizes grow like Δ^depth; saturate instead of wrapping so the
   stored count stays a valid sort key at any depth. *)
let sat_add a b =
  let s = a + b in
  if s < 0 then max_int else s

(* ---------- the sharded intern arena ---------- *)

(* The shard of a node is chosen by its intern key's hash, so the id space
   stays process-global: equal structures land in the same shard and receive
   the same handle no matter which domain interns them first.  Each shard's
   column arrays are published through an [Atomic.t] snapshot — writers
   mutate under the shard lock and swap in a grown copy when full, readers
   take the current snapshot without locking.  A handle only escapes after
   its columns are fully written under the lock, and handles travel between
   domains through synchronized channels (pool queues), so a reader's
   snapshot always covers every handle it can name. *)

let shard_bits = 4

let shard_count = 1 lsl shard_bits

let shard_mask = shard_count - 1

module Key = struct
  type t = Label.t * int list (* root mark, child ids in canonical order *)

  let equal (m1, c1) (m2, c2) = List.equal Int.equal c1 c2 && Label.equal m1 m2

  let hash (m, cs) =
    List.fold_left (fun h i -> (h * 31) + i + 1) (Label.hash m) cs land max_int
end

module Tbl = Hashtbl.Make (Key)

type store = {
  marks : Label.t array;
  sizes : int array;
  depths : int array;
  coff : int array;  (* [coff.(slot) .. coff.(slot+1)) delimits [cids] *)
  cids : int array;  (* flat concatenation of child handles *)
}

type shard = {
  index : int;
  lock : Mutex.t;
  tbl : int Tbl.t;  (* intern key -> handle *)
  mutable count : int;  (* slots in use; guarded by [lock] *)
  mutable cfill : int;  (* [cids] words in use; guarded by [lock] *)
  store : store Atomic.t;
}

let empty_store cap ccap =
  {
    marks = Array.make cap Label.Unit;
    sizes = Array.make cap 0;
    depths = Array.make cap 0;
    coff = Array.make (cap + 1) 0;
    cids = Array.make ccap 0;
  }

let shards =
  Array.init shard_count (fun index ->
      {
        index;
        lock = Mutex.create ();
        tbl = Tbl.create 512;
        count = 0;
        cfill = 0;
        store = Atomic.make (empty_store 256 1024);
      })

let store_of (t : t) = Atomic.get shards.(t land shard_mask).store

let slot (t : t) = t lsr shard_bits

let mark t = (store_of t).marks.(slot t)

let size t = (store_of t).sizes.(slot t)

let depth t = (store_of t).depths.(slot t)

let children t =
  let s = store_of t in
  let i = slot t in
  let a = s.coff.(i) in
  List.init (s.coff.(i + 1) - a) (fun j -> s.cids.(a + j))

let intern_hits = Atomic.make 0

let intern_misses = Atomic.make 0

(* Guarded by [sh.lock]. *)
let grow_locked sh ~slots ~words =
  let st = Atomic.get sh.store in
  let cap = Array.length st.marks in
  let ccap = Array.length st.cids in
  if slots > cap || words > ccap then begin
    let rec fit c need = if c >= need then c else fit (2 * c) need in
    let st' = empty_store (fit cap slots) (fit ccap words) in
    Array.blit st.marks 0 st'.marks 0 sh.count;
    Array.blit st.sizes 0 st'.sizes 0 sh.count;
    Array.blit st.depths 0 st'.depths 0 sh.count;
    Array.blit st.coff 0 st'.coff 0 (sh.count + 1);
    Array.blit st.cids 0 st'.cids 0 sh.cfill;
    Atomic.set sh.store st'
  end

(* [child_ids] must already be in canonical sibling order; [node] sorts,
   [truncate] and [of_graph] go through [node]. *)
let intern mark child_ids =
  let key = mark, child_ids in
  let sh = shards.(Key.hash key land shard_mask) in
  Mutex.lock sh.lock;
  let t =
    match Tbl.find_opt sh.tbl key with
    | Some t ->
      Atomic.incr intern_hits;
      t
    | None ->
      Atomic.incr intern_misses;
      let nc = List.length child_ids in
      grow_locked sh ~slots:(sh.count + 1) ~words:(sh.cfill + nc);
      let st = Atomic.get sh.store in
      let i = sh.count in
      st.marks.(i) <- mark;
      st.sizes.(i) <- List.fold_left (fun s c -> sat_add s (size c)) 1 child_ids;
      st.depths.(i) <- 1 + List.fold_left (fun m c -> max m (depth c)) 0 child_ids;
      st.coff.(i) <- sh.cfill;
      let j = ref sh.cfill in
      List.iter
        (fun c ->
          st.cids.(!j) <- c;
          incr j)
        child_ids;
      st.coff.(i + 1) <- !j;
      sh.cfill <- !j;
      sh.count <- i + 1;
      let t = (i lsl shard_bits) lor sh.index in
      Tbl.add sh.tbl key t;
      t
  in
  Mutex.unlock sh.lock;
  t

(* ---------- canonical order ---------- *)

(* Structural compare decided over ids: each distinct (id, id) pair is
   resolved once per domain and memoized.  The memo is domain-local
   (Domain.DLS) so the hot comparison path never takes a lock; the answers
   are pure, so recomputing one per domain is only a constant-factor cost.
   The child walk runs directly over the flat [cids] columns — no sibling
   lists are materialized. *)

let compare_memo_key =
  Domain.DLS.new_key (fun () : (int * int, int) Hashtbl.t -> Hashtbl.create 4096)

let rec compare_memoized memo (a : t) (b : t) =
  if a = b then 0
  else begin
    match Hashtbl.find_opt memo (a, b) with
    | Some c -> c
    | None ->
      let c =
        let cm = Label.compare (mark a) (mark b) in
        if cm <> 0 then cm
        else begin
          let sa = store_of a and sb = store_of b in
          let ia = slot a and ib = slot b in
          let a1 = sa.coff.(ia + 1) and b1 = sb.coff.(ib + 1) in
          let rec go i j =
            if i >= a1 then if j >= b1 then 0 else -1
            else if j >= b1 then 1
            else
              let c = compare_memoized memo sa.cids.(i) sb.cids.(j) in
              if c <> 0 then c else go (i + 1) (j + 1)
          in
          go sa.coff.(ia) sb.coff.(ib)
        end
      in
      Hashtbl.add memo (a, b) c;
      Hashtbl.add memo (b, a) (-c);
      c
  end

let compare a b =
  if a = b then 0 else compare_memoized (Domain.DLS.get compare_memo_key) a b

let leaf mark = intern mark []

let node mark children = intern mark (List.sort compare children)

(* ---------- construction and truncation ---------- *)

let of_graph g ~root ~depth =
  if depth < 1 then invalid_arg "Interned.of_graph: need depth >= 1";
  (* Level by level: level d reuses every level-(d-1) node, so the whole
     construction interns O(n * depth) nodes regardless of how large the
     unfolded trees are. *)
  let n = Graph.n g in
  let current = ref (Array.init n (fun v -> leaf (Graph.label g v))) in
  for _ = 2 to depth do
    let prev = !current in
    current :=
      Array.init n (fun v ->
          node (Graph.label g v)
            (Array.to_list (Array.map (fun u -> prev.(u)) (Graph.neighbors g v))))
  done;
  !current.(root)

let truncate_memo_key =
  Domain.DLS.new_key (fun () : (int * int, t) Hashtbl.t -> Hashtbl.create 4096)

let truncate t ~depth:d0 =
  if d0 < 1 then invalid_arg "Interned.truncate: need depth >= 1";
  let memo = Domain.DLS.get truncate_memo_key in
  let rec go t d =
    if d >= depth t then t
    else begin
      match Hashtbl.find_opt memo (t, d) with
      | Some t' -> t'
      | None ->
        let t' =
          if d = 1 then leaf (mark t)
            (* [node] re-sorts: truncation can reorder siblings that only
               differed below the cut. *)
          else node (mark t) (List.map (fun c -> go c (d - 1)) (children t))
        in
        Hashtbl.add memo (t, d) t';
        t'
    end
  in
  go t d0

let subtrees t =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec visit t =
    if not (Hashtbl.mem seen t) then begin
      Hashtbl.add seen t ();
      acc := t :: !acc;
      let s = store_of t in
      let i = slot t in
      for j = s.coff.(i) to s.coff.(i + 1) - 1 do
        visit s.cids.(j)
      done
    end
  in
  visit t;
  !acc

(* ---------- statistics ---------- *)

type stats = {
  hits : int;
  misses : int;
  nodes : int;
}

let stats () =
  let nodes = ref 0 in
  Array.iter
    (fun sh ->
      Mutex.lock sh.lock;
      nodes := !nodes + sh.count;
      Mutex.unlock sh.lock)
    shards;
  { hits = Atomic.get intern_hits; misses = Atomic.get intern_misses; nodes = !nodes }

let publish_metrics obs =
  if Obs.live obs then begin
    let s = stats () in
    Obs.incr ~by:s.hits (Obs.counter obs "cache.view.hits");
    Obs.incr ~by:s.misses (Obs.counter obs "cache.view.misses");
    Obs.set (Obs.gauge obs "cache.view.nodes") s.nodes;
    let e = Encode.cache_stats () in
    Obs.incr ~by:e.Encode.hits (Obs.counter obs "cache.encode.hits");
    Obs.incr ~by:e.Encode.misses (Obs.counter obs "cache.encode.misses");
    Obs.incr ~by:e.Encode.evictions (Obs.counter obs "cache.encode.evictions");
    Obs.set (Obs.gauge obs "cache.encode.entries") e.Encode.entries
  end
