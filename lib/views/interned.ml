module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Encode = Anonet_graph.Encode
module Obs = Anonet_obs.Obs

type t = {
  id : int;
  mark : Label.t;
  children : t list;
  size : int;
  depth : int;
}

let equal a b = a.id = b.id

let hash t = t.id

let id t = t.id

let mark t = t.mark

let children t = t.children

let size t = t.size

let depth t = t.depth

(* Unfolded-tree sizes grow like Δ^depth; saturate instead of wrapping so the
   stored count stays a valid sort key at any depth. *)
let sat_add a b =
  let s = a + b in
  if s < 0 then max_int else s

(* ---------- the intern table ---------- *)

(* One process-wide table guarded by one mutex.  A single shared table (as
   opposed to per-domain tables) is what makes ids meaningful across
   domains: views built by different pool workers for the same structure are
   physically equal, so results merged in the main domain compare in O(1).
   Interning is a pure function cache, so the sharing leaks nothing between
   simulated nodes.  The table only grows; ids are never reused. *)

module Key = struct
  type t = Label.t * int list (* root mark, sorted child ids *)

  let equal (m1, c1) (m2, c2) = List.equal Int.equal c1 c2 && Label.equal m1 m2

  let hash (m, cs) =
    List.fold_left (fun h i -> (h * 31) + i + 1) (Label.hash m) cs land max_int
end

module Tbl = Hashtbl.Make (Key)

let table : t Tbl.t = Tbl.create 4096

let table_mutex = Mutex.create ()

let next_id = ref 0

let intern_hits = Atomic.make 0

let intern_misses = Atomic.make 0

(* [children] must already be in canonical order; [node] sorts, [truncate]
   and [of_graph] go through [node]. *)
let intern mark children =
  let key = mark, List.map (fun c -> c.id) children in
  Mutex.lock table_mutex;
  let t =
    match Tbl.find_opt table key with
    | Some t ->
      Atomic.incr intern_hits;
      t
    | None ->
      Atomic.incr intern_misses;
      let size = List.fold_left (fun s c -> sat_add s c.size) 1 children in
      let depth = 1 + List.fold_left (fun m c -> max m c.depth) 0 children in
      let t = { id = !next_id; mark; children; size; depth } in
      incr next_id;
      Tbl.add table key t;
      t
  in
  Mutex.unlock table_mutex;
  t

(* ---------- canonical order ---------- *)

(* Structural compare decided over ids: each distinct (id, id) pair is
   resolved once per domain and memoized.  The memo is domain-local
   (Domain.DLS) so the hot comparison path never takes a lock; the answers
   are pure, so recomputing one per domain is only a constant-factor cost. *)

let compare_memo_key =
  Domain.DLS.new_key (fun () : (int * int, int) Hashtbl.t -> Hashtbl.create 4096)

let rec compare_memoized memo a b =
  if a.id = b.id then 0
  else begin
    match Hashtbl.find_opt memo (a.id, b.id) with
    | Some c -> c
    | None ->
      let c =
        let cm = Label.compare a.mark b.mark in
        if cm <> 0 then cm
        else List.compare (compare_memoized memo) a.children b.children
      in
      Hashtbl.add memo (a.id, b.id) c;
      Hashtbl.add memo (b.id, a.id) (-c);
      c
  end

let compare a b =
  if a.id = b.id then 0
  else compare_memoized (Domain.DLS.get compare_memo_key) a b

let leaf mark = intern mark []

let node mark children = intern mark (List.sort compare children)

(* ---------- construction and truncation ---------- *)

let of_graph g ~root ~depth =
  if depth < 1 then invalid_arg "Interned.of_graph: need depth >= 1";
  (* Level by level: level d reuses every level-(d-1) node, so the whole
     construction interns O(n * depth) nodes regardless of how large the
     unfolded trees are. *)
  let n = Graph.n g in
  let current = ref (Array.init n (fun v -> leaf (Graph.label g v))) in
  for _ = 2 to depth do
    let prev = !current in
    current :=
      Array.init n (fun v ->
          node (Graph.label g v)
            (Array.to_list (Array.map (fun u -> prev.(u)) (Graph.neighbors g v))))
  done;
  !current.(root)

let truncate_memo_key =
  Domain.DLS.new_key (fun () : (int * int, t) Hashtbl.t -> Hashtbl.create 4096)

let truncate t ~depth =
  if depth < 1 then invalid_arg "Interned.truncate: need depth >= 1";
  let memo = Domain.DLS.get truncate_memo_key in
  let rec go t d =
    if d >= t.depth then t
    else begin
      match Hashtbl.find_opt memo (t.id, d) with
      | Some t' -> t'
      | None ->
        let t' =
          if d = 1 then leaf t.mark
          (* [node] re-sorts: truncation can reorder siblings that only
             differed below the cut. *)
          else node t.mark (List.map (fun c -> go c (d - 1)) t.children)
        in
        Hashtbl.add memo (t.id, d) t';
        t'
    end
  in
  go t depth

let subtrees t =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec visit t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      acc := t :: !acc;
      List.iter visit t.children
    end
  in
  visit t;
  !acc

(* ---------- statistics ---------- *)

type stats = {
  hits : int;
  misses : int;
  nodes : int;
}

let stats () =
  Mutex.lock table_mutex;
  let nodes = Tbl.length table in
  Mutex.unlock table_mutex;
  { hits = Atomic.get intern_hits; misses = Atomic.get intern_misses; nodes }

let publish_metrics obs =
  if Obs.live obs then begin
    let s = stats () in
    Obs.incr ~by:s.hits (Obs.counter obs "cache.view.hits");
    Obs.incr ~by:s.misses (Obs.counter obs "cache.view.misses");
    Obs.set (Obs.gauge obs "cache.view.nodes") s.nodes;
    let e = Encode.cache_stats () in
    Obs.incr ~by:e.Encode.hits (Obs.counter obs "cache.encode.hits");
    Obs.incr ~by:e.Encode.misses (Obs.counter obs "cache.encode.misses");
    Obs.set (Obs.gauge obs "cache.encode.entries") e.Encode.entries
  end
