(** Edge-colored directed graphs — the setting of Boldi-Vigna fibrations
    (Section 4 of the paper).

    A directed graph here is finite, with colored arcs; parallel arcs with
    distinct colors are allowed (they arise naturally from the directed
    representation of undirected graphs), but duplicate (source, target,
    color) triples are not. *)

type t

(** [create ~n ~arcs] builds a digraph on nodes [0 .. n-1]; each arc is
    [(source, target, color)].
    @raise Invalid_argument on out-of-range endpoints, self-loops, or
    duplicate arcs. *)
val create : n:int -> arcs:(int * int * Anonet_graph.Label.t) list -> t

val n : t -> int

val num_arcs : t -> int

(** [out_arcs g v] is the list of [(target, color)] pairs leaving [v]. *)
val out_arcs : t -> int -> (int * Anonet_graph.Label.t) list

(** [in_arcs g v] is the list of [(source, color)] pairs entering [v]. *)
val in_arcs : t -> int -> (int * Anonet_graph.Label.t) list

(** [has_arc g u v color] tests arc membership. *)
val has_arc : t -> int -> int -> Anonet_graph.Label.t -> bool

(** [is_symmetric g ~mate] checks that for every arc [(u, v, c)] there is
    an arc [(v, u, mate c)] — the paper's symmetry with color involution
    ("c' respects the edge symmetries"). *)
val is_symmetric : t -> mate:(Anonet_graph.Label.t -> Anonet_graph.Label.t) -> bool

(** [is_deterministic g] checks the paper's deterministic-coloring
    condition: all out-arcs of every node carry pairwise distinct
    colors. *)
val is_deterministic : t -> bool
