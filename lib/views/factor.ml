module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label

let check ~product ~factor ~map =
  let n = Graph.n product and n' = Graph.n factor in
  if Array.length map <> n then Error "map has wrong length"
  else if Array.exists (fun w -> w < 0 || w >= n') map then
    Error "map image out of range"
  else begin
    (* (1) surjectivity *)
    let hit = Array.make n' false in
    Array.iter (fun w -> hit.(w) <- true) map;
    if not (Array.for_all Fun.id hit) then Error "map is not surjective"
    else begin
      (* (2) labels respected *)
      let bad_label = ref None in
      Graph.iter_nodes product ~f:(fun v ->
          if not (Label.equal (Graph.label product v) (Graph.label factor map.(v)))
          then bad_label := Some v);
      match !bad_label with
      | Some v -> Error (Printf.sprintf "label not respected at node %d" v)
      | None ->
        (* (3) local isomorphism *)
        let bad = ref None in
        Graph.iter_nodes product ~f:(fun v ->
            let images =
              Array.to_list
                (Array.map (fun u -> map.(u)) (Graph.neighbors product v))
            in
            let targets =
              Array.to_list (Graph.neighbors factor map.(v))
            in
            if List.sort Int.compare images <> List.sort Int.compare targets then
              bad := Some v);
        (match !bad with
         | Some v ->
           Error
             (Printf.sprintf
                "map is not a local isomorphism at node %d (images of Γ(%d) do \
                 not biject onto Γ(f(%d)))"
                v v v)
         | None -> Ok ())
    end
  end

let is_factorizing ~product ~factor ~map =
  match check ~product ~factor ~map with Ok () -> true | Error _ -> false

let multiplicity ~product ~factor =
  let n = Graph.n product and n' = Graph.n factor in
  if n' > 0 && n mod n' = 0 then Some (n / n') else None

let induced_port_permutations ~product ~factor ~map =
  (match check ~product ~factor ~map with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Factor.induced_port_permutations: " ^ msg));
  let permutation v =
    let fv = map.(v) in
    let d = Graph.degree factor fv in
    Array.init d (fun j ->
        let target = Graph.neighbor factor fv j in
        (* Unique since f|Γ(v) is a bijection onto Γ(f(v)). *)
        let rec find p =
          if map.(Graph.neighbor product v p) = target then p else find (p + 1)
        in
        find 0)
  in
  Array.init (Graph.n product) permutation
