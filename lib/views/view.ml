module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label

type t = {
  mark : Label.t;
  children : t list;
}

let rec compare a b =
  if a == b then 0
  else begin
    let c = Label.compare a.mark b.mark in
    if c <> 0 then c else List.compare compare a.children b.children
  end

let equal a b = compare a b = 0

(* Views built by [of_graph] / [truncate] share subtrees: the value in
   memory is a DAG even when the unfolded tree is exponential.  The
   traversals below therefore memoize on {e physical} identity, so they run
   in the size of the DAG.  (Hashtbl.hash traverses a bounded prefix of the
   value, which is a legitimate — if weak — hash for physical equality;
   collisions are resolved by [==].) *)
module Phys = Hashtbl.Make (struct
  type nonrec t = t

  let equal = ( == )

  let hash = Hashtbl.hash
end)

let sat_add a b =
  let s = a + b in
  if s < 0 then max_int else s

(* ---------- conversions to/from the interned representation ---------- *)

let intern t =
  let memo = Phys.create 64 in
  let rec go t =
    match Phys.find_opt memo t with
    | Some i -> i
    | None ->
      (* [node] re-canonicalizes the sibling order, so [intern] is total on
         arbitrary (even unsorted) trees. *)
      let i = Interned.node t.mark (List.map go t.children) in
      Phys.add memo t i;
      i
  in
  go t

let of_interned i =
  (* Memoize on interned ids so the structural value reproduces the DAG
     sharing of the interned one — crucial for [size]/[depth]/[compare] on
     the result. *)
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go i =
    match Hashtbl.find_opt memo (Interned.id i) with
    | Some t -> t
    | None ->
      (* Interned children are sorted under [Interned.compare], which
         realizes the same total order as [compare]. *)
      let t = { mark = Interned.mark i; children = List.map go (Interned.children i) } in
      Hashtbl.add memo (Interned.id i) t;
      t
  in
  go i

let of_graph g ~root ~depth =
  if depth < 1 then invalid_arg "View.of_graph: need depth >= 1";
  of_interned (Interned.of_graph g ~root ~depth)

let depth t =
  let memo = Phys.create 64 in
  let rec go t =
    match Phys.find_opt memo t with
    | Some d -> d
    | None ->
      let d =
        match t.children with
        | [] -> 1
        | cs -> 1 + List.fold_left (fun m c -> max m (go c)) 0 cs
      in
      Phys.add memo t d;
      d
  in
  go t

let size t =
  let memo = Phys.create 64 in
  let rec go t =
    match Phys.find_opt memo t with
    | Some s -> s
    | None ->
      let s = List.fold_left (fun s c -> sat_add s (go c)) 1 t.children in
      Phys.add memo t s;
      s
  in
  go t

let truncate t ~depth =
  if depth < 1 then invalid_arg "View.truncate: need depth >= 1";
  of_interned (Interned.truncate (intern t) ~depth)

let disjoint_union g1 g2 =
  let n1 = Graph.n g1 and n2 = Graph.n g2 in
  let edges =
    Graph.edges g1 @ List.map (fun (u, v) -> u + n1, v + n1) (Graph.edges g2)
  in
  let labels =
    Array.init (n1 + n2) (fun v ->
        if v < n1 then Graph.label g1 v else Graph.label g2 (v - n1))
  in
  (* The union is disconnected, which [Graph.create] allows; only the model
     requires connectivity, and this graph is internal to the comparison. *)
  Graph.create ~n:(n1 + n2) ~edges ~labels

let equal_nodes (g1, v1) (g2, v2) ~depth =
  if depth < 1 then invalid_arg "View.equal_nodes: need depth >= 1";
  let u = disjoint_union g1 g2 in
  let classes = Refinement.classes_at_depth u depth in
  classes.(v1) = classes.(Graph.n g1 + v2)

let to_string t =
  let buf = Buffer.create 256 in
  let rec render ~prefix ~child_prefix t =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (Label.to_string t.mark);
    Buffer.add_char buf '\n';
    let rec each = function
      | [] -> ()
      | [ c ] ->
        render ~prefix:(child_prefix ^ "└── ") ~child_prefix:(child_prefix ^ "    ") c
      | c :: rest ->
        render ~prefix:(child_prefix ^ "├── ") ~child_prefix:(child_prefix ^ "│   ") c;
        each rest
    in
    each t.children
  in
  render ~prefix:"" ~child_prefix:"" t;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
