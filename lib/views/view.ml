module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label

type t = {
  mark : Label.t;
  children : t list;
}

let rec compare a b =
  let c = Label.compare a.mark b.mark in
  if c <> 0 then c else List.compare compare a.children b.children

let equal a b = compare a b = 0

let of_graph g ~root ~depth =
  if depth < 1 then invalid_arg "View.of_graph: need depth >= 1";
  (* Memoize on (node, depth): subtrees are shared across the whole
     construction, so the result is a DAG in memory even when the unfolded
     tree is exponential. *)
  let memo = Hashtbl.create 64 in
  let rec build v d =
    match Hashtbl.find_opt memo (v, d) with
    | Some t -> t
    | None ->
      let t =
        if d = 1 then { mark = Graph.label g v; children = [] }
        else begin
          let children =
            Array.to_list (Array.map (fun u -> build u (d - 1)) (Graph.neighbors g v))
            |> List.sort compare
          in
          { mark = Graph.label g v; children }
        end
      in
      Hashtbl.add memo (v, d) t;
      t
  in
  build root depth

let rec depth t =
  match t.children with
  | [] -> 1
  | cs -> 1 + List.fold_left (fun m c -> max m (depth c)) 0 cs

let rec size t = 1 + List.fold_left (fun s c -> s + size c) 0 t.children

let rec truncate t ~depth =
  if depth < 1 then invalid_arg "View.truncate: need depth >= 1";
  if depth = 1 then { t with children = [] }
  else begin
    let children = List.map (fun c -> truncate c ~depth:(depth - 1)) t.children in
    { t with children = List.sort compare children }
  end

let disjoint_union g1 g2 =
  let n1 = Graph.n g1 and n2 = Graph.n g2 in
  let edges =
    Graph.edges g1 @ List.map (fun (u, v) -> u + n1, v + n1) (Graph.edges g2)
  in
  let labels =
    Array.init (n1 + n2) (fun v ->
        if v < n1 then Graph.label g1 v else Graph.label g2 (v - n1))
  in
  (* The union is disconnected, which [Graph.create] allows; only the model
     requires connectivity, and this graph is internal to the comparison. *)
  Graph.create ~n:(n1 + n2) ~edges ~labels

let equal_nodes (g1, v1) (g2, v2) ~depth =
  if depth < 1 then invalid_arg "View.equal_nodes: need depth >= 1";
  let u = disjoint_union g1 g2 in
  let classes = Refinement.classes_at_depth u depth in
  classes.(v1) = classes.(Graph.n g1 + v2)

let to_string t =
  let buf = Buffer.create 256 in
  let rec render ~prefix ~child_prefix t =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (Label.to_string t.mark);
    Buffer.add_char buf '\n';
    let rec each = function
      | [] -> ()
      | [ c ] ->
        render ~prefix:(child_prefix ^ "└── ") ~child_prefix:(child_prefix ^ "    ") c
      | c :: rest ->
        render ~prefix:(child_prefix ^ "├── ") ~child_prefix:(child_prefix ^ "│   ") c;
        each rest
    in
    each t.children
  in
  render ~prefix:"" ~child_prefix:"" t;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
