module Graph = Anonet_graph.Graph
module Props = Anonet_graph.Props

let require_two_hop_colored fn g =
  if not (Props.is_two_hop_colored g) then
    invalid_arg (fn ^ ": graph is not 2-hop colored")

let prime_factor g =
  require_two_hop_colored "Prime.prime_factor" g;
  View_graph.of_graph_exn g

let is_prime g =
  let vg = prime_factor g in
  Graph.n vg.View_graph.graph = Graph.n g

let aliases_faithful g =
  require_two_hop_colored "Prime.aliases_faithful" g;
  let n = Graph.n g in
  let classes = Refinement.classes_at_depth g n in
  let distinct = List.sort_uniq Int.compare (Array.to_list classes) in
  List.length distinct = n
