module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Props = Anonet_graph.Props

let directed_representation g =
  if not (Props.is_two_hop_colored g) then
    invalid_arg "Fibration.directed_representation: graph is not 2-hop colored";
  let arcs =
    List.concat_map
      (fun (u, v) ->
        let cu = Graph.label g u and cv = Graph.label g v in
        [ u, v, Label.Pair (cu, cv); v, u, Label.Pair (cv, cu) ])
      (Graph.edges g)
  in
  Digraph.create ~n:(Graph.n g) ~arcs

let swap_mate = function
  | Label.Pair (a, b) -> Label.Pair (b, a)
  | l -> invalid_arg ("Fibration.swap_mate: not a pair color: " ^ Label.to_string l)

let is_fibration ~total ~base ~map =
  Digraph.n base > 0
  && Array.length map = Digraph.n total
  && Array.for_all (fun w -> w >= 0 && w < Digraph.n base) map
  && begin
       (* Surjectivity: we check for epimorphic fibrations, the ones that
          correspond to factorizing maps. *)
       let hit = Array.make (Digraph.n base) false in
       Array.iter (fun w -> hit.(w) <- true) map;
       Array.for_all Fun.id hit
     end
  && begin
       let ok = ref true in
       for v = 0 to Digraph.n total - 1 do
         let out_here =
           List.sort compare
             (List.map (fun (u, c) -> map.(u), Label.encode c) (Digraph.out_arcs total v))
         in
         let out_there =
           List.sort compare
             (List.map (fun (u, c) -> u, Label.encode c) (Digraph.out_arcs base map.(v)))
         in
         (* With deterministic colorings, the unique-lifting property of a
            fibration amounts to: the projected out-arcs of [v] coincide
            (as a set, color-for-color) with the out-arcs of [map v]. *)
         if out_here <> out_there then ok := false
       done;
       !ok
     end

let check_correspondence ~product ~factor ~map =
  let factorizing = Factor.is_factorizing ~product ~factor ~map in
  let fibration =
    try
      let total = directed_representation product in
      let base = directed_representation factor in
      is_fibration ~total ~base ~map
    with Invalid_argument _ -> false
  in
  factorizing, fibration
