module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label

type result = {
  classes : int array;
  num_classes : int;
  stable_view_depth : int;
  history : int array list;
}

(* Assign canonical class numbers: sort the distinct keys under the given
   (explicit, monomorphic) order, number them in order, and map each node to
   its key's number. *)
let number_by_sorted_keys ~compare keys =
  let distinct = List.sort_uniq compare (Array.to_list keys) in
  let table = Hashtbl.create (List.length distinct) in
  List.iteri (fun i k -> Hashtbl.replace table k i) distinct;
  Array.map (fun k -> Hashtbl.find table k) keys

let initial g =
  (* Numbering encoded labels under String.compare coincides with the former
     numbering of singleton encoding lists under polymorphic compare. *)
  number_by_sorted_keys ~compare:String.compare
    (Array.init (Graph.n g) (fun v -> Label.encode (Graph.label g v)))

let refine_once g classes =
  let signature v =
    let nbr =
      Array.to_list (Array.map (fun u -> classes.(u)) (Graph.neighbors g v))
      |> List.sort Int.compare
    in
    classes.(v) :: nbr
  in
  (* Prefixing the old class makes the new partition refine the old one. *)
  number_by_sorted_keys ~compare:(List.compare Int.compare)
    (Array.init (Graph.n g) signature)

let count_classes classes =
  1 + Array.fold_left max (-1) classes

let run g =
  if Graph.n g = 0 then
    { classes = [||]; num_classes = 0; stable_view_depth = 1; history = [] }
  else begin
    let rec go classes history rounds =
      let next = refine_once g classes in
      if next = classes then
        {
          classes;
          num_classes = count_classes classes;
          (* Partition after round r equals depth-(r+1) views; it was
             already stable at round [rounds], i.e. at view depth
             [rounds + 1]. *)
          stable_view_depth = rounds + 1;
          history = List.rev history;
        }
      else go next (next :: history) (rounds + 1)
    in
    let c0 = initial g in
    go c0 [ c0 ] 0
  end

let classes_at_depth g d =
  if d < 1 then invalid_arg "Refinement.classes_at_depth: need depth >= 1";
  let rec go classes r = if r = 0 then classes else go (refine_once g classes) (r - 1) in
  go (initial g) (d - 1)
