module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label

type result = {
  classes : int array;
  num_classes : int;
  stable_view_depth : int;
  history : int array list;
}

(* Assign canonical class numbers: sort the distinct keys under the given
   (explicit, monomorphic) order, number them in order, and map each node to
   its key's number. *)
let number_by_sorted_keys ~compare keys =
  let distinct = List.sort_uniq compare (Array.to_list keys) in
  let table = Hashtbl.create (List.length distinct) in
  List.iteri (fun i k -> Hashtbl.replace table k i) distinct;
  Array.map (fun k -> Hashtbl.find table k) keys

let initial g =
  (* Numbering encoded labels under String.compare coincides with the former
     numbering of singleton encoding lists under polymorphic compare. *)
  number_by_sorted_keys ~compare:String.compare
    (Array.init (Graph.n g) (fun v -> Label.encode (Graph.label g v)))

(* Element-wise with shorter-prefix-first ties: exactly the order
   [List.compare Int.compare] induced on the former list signatures, so
   class numbering is unchanged. *)
let compare_int_arrays (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la then if i >= lb then 0 else -1
    else if i >= lb then 1
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let refine_once g classes =
  (* Flat sorted-int-array signatures (old class first, then the sorted
     neighbor classes): this path runs once per quotient depth per phase
     in candidate construction, so the per-element list cells added up. *)
  let signature v =
    let d = Graph.degree g v in
    let nbr = Array.init d (fun j -> classes.(Graph.neighbor g v j)) in
    Array.sort Int.compare nbr;
    let s = Array.make (d + 1) classes.(v) in
    (* Prefixing the old class makes the new partition refine the old one. *)
    Array.blit nbr 0 s 1 d;
    s
  in
  number_by_sorted_keys ~compare:compare_int_arrays
    (Array.init (Graph.n g) signature)

let count_classes classes =
  1 + Array.fold_left max (-1) classes

let run g =
  if Graph.n g = 0 then
    { classes = [||]; num_classes = 0; stable_view_depth = 1; history = [] }
  else begin
    let n = Graph.n g in
    let rec go classes history rounds =
      (* A discrete partition is a fixpoint: every signature leads with
         its node's unique class, so renumbering reproduces [classes]
         exactly — skip the confirming refinement round. *)
      if count_classes classes = n then
        {
          classes;
          num_classes = n;
          stable_view_depth = rounds + 1;
          history = List.rev history;
        }
      else
        let next = refine_once g classes in
        if next = classes then
          {
            classes;
            num_classes = count_classes classes;
            (* Partition after round r equals depth-(r+1) views; it was
               already stable at round [rounds], i.e. at view depth
               [rounds + 1]. *)
            stable_view_depth = rounds + 1;
            history = List.rev history;
          }
        else go next (next :: history) (rounds + 1)
    in
    let c0 = initial g in
    go c0 [ c0 ] 0
  end

let classes_at_depth g d =
  if d < 1 then invalid_arg "Refinement.classes_at_depth: need depth >= 1";
  let n = Graph.n g in
  let rec go classes r =
    (* Discrete partitions are fixpoints of [refine_once]: stop early. *)
    if r = 0 || count_classes classes = n then classes
    else go (refine_once g classes) (r - 1)
  in
  go (initial g) (d - 1)
