(** Empirical interface to Norris' theorem (Theorem 3 in the paper):
    in an [n]-node labeled graph, the depth-[n] local view [L_n(v)] fully
    determines [L_∞(v)]. *)

(** [stable_view_depth g] is the smallest [d] such that the partition of
    nodes by depth-[d] views equals the partition by depth-infinity views. *)
val stable_view_depth : Anonet_graph.Graph.t -> int

(** [bound_holds g] checks [stable_view_depth g <= n] — the claim of
    Theorem 3 instantiated on [g]. *)
val bound_holds : Anonet_graph.Graph.t -> bool

(** [determination_depth g] returns, for each pair of distinct nodes with
    distinct infinite views, the depth at which their views first differ,
    as a maximum over pairs; [1] when all nodes look alike or [n <= 1]. *)
val determination_depth : Anonet_graph.Graph.t -> int
