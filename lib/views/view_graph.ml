module Graph = Anonet_graph.Graph
module Encode = Anonet_graph.Encode

type t = {
  graph : Graph.t;
  map : int array;
  stable_view_depth : int;
}

let of_graph g =
  let r = Refinement.run g in
  let k = r.num_classes in
  let classes = r.classes in
  (* Pick one representative per class (canonical: smallest node index). *)
  let rep = Array.make k (-1) in
  Graph.iter_nodes g ~f:(fun v -> if rep.(classes.(v)) = -1 then rep.(classes.(v)) <- v);
  (* Build quotient edges from representatives and validate the quotient is
     a well-defined simple graph: every node's neighbors must lie in
     pairwise distinct classes, none equal to its own, and the neighbor
     class set must agree across each class. *)
  let exception Bad of string in
  try
    let neighbor_classes v =
      let cs =
        Array.to_list (Array.map (fun u -> classes.(u)) (Graph.neighbors g v))
      in
      let sorted = List.sort Int.compare cs in
      let rec distinct = function
        | a :: (b :: _ as rest) ->
          if a = b then
            raise
              (Bad
                 (Printf.sprintf
                    "two neighbors of node %d share a view class: the quotient \
                     has parallel edges (input is not 2-hop colored)"
                    v));
          distinct rest
        | _ -> ()
      in
      distinct sorted;
      if List.exists (fun c -> c = classes.(v)) sorted then
        raise
          (Bad
             (Printf.sprintf
                "node %d is adjacent to its own view class: the quotient has a \
                 loop (input is not 2-hop colored)"
                v));
      sorted
    in
    (* Consistency across class members. *)
    Graph.iter_nodes g ~f:(fun v ->
        let expected = neighbor_classes rep.(classes.(v)) in
        if neighbor_classes v <> expected then
          raise (Bad "inconsistent neighbor classes within a view class"));
    let edges =
      List.concat_map
        (fun c ->
          List.filter_map
            (fun c' -> if c < c' then Some (c, c') else None)
            (neighbor_classes rep.(c)))
        (List.init k (fun c -> c))
    in
    let labels = Array.init k (fun c -> Graph.label g rep.(c)) in
    let graph = Graph.create ~n:k ~edges ~labels in
    Ok { graph; map = Array.copy classes; stable_view_depth = r.stable_view_depth }
  with Bad msg -> Error msg

let of_graph_exn g =
  match of_graph g with
  | Ok t -> t
  | Error msg -> invalid_arg ("View_graph.of_graph_exn: " ^ msg)

let encoding t = Encode.canonical t.graph
