(** Factor / product relations between labeled graphs (Section 2.3.1).

    [G'] is a {e factor} of [G] (and [G] a {e product} of [G']), written
    [G' ⪯_f G], when the map [f : V -> V'] is: (1) surjective; (2)
    label-respecting; and (3) a local isomorphism — for every [v], the
    restriction of [f] to [Γ(v)] is a bijection onto [Γ(f(v))]. *)

(** [check ~product ~factor ~map] verifies the three factorizing-map
    properties, reporting the first violation. *)
val check :
  product:Anonet_graph.Graph.t ->
  factor:Anonet_graph.Graph.t ->
  map:int array ->
  (unit, string) result

(** [is_factorizing ~product ~factor ~map] is [check] as a predicate. *)
val is_factorizing :
  product:Anonet_graph.Graph.t -> factor:Anonet_graph.Graph.t -> map:int array -> bool

(** [multiplicity ~product ~factor] is the integer [m] with
    [|V| = m * |V'|] (well defined whenever a factorizing map exists —
    see [24]); [None] if the sizes do not divide. *)
val multiplicity :
  product:Anonet_graph.Graph.t -> factor:Anonet_graph.Graph.t -> int option

(** [induced_port_permutations ~product ~factor ~map] computes, for every
    product node [v], the permutation aligning [v]'s ports with the ports
    of [f(v)]: entry [j] of the result for [v] is the port of [v] whose
    neighbor maps to [factor]'s neighbor at port [j] of [f(v)].  Used to
    lift executions from a factor to a product (the lifting lemma [5, 12])
    with exact port correspondence.
    @raise Invalid_argument if [map] is not a factorizing map. *)
val induced_port_permutations :
  product:Anonet_graph.Graph.t ->
  factor:Anonet_graph.Graph.t ->
  map:int array ->
  int array array
