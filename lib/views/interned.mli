(** Hash-consed (interned) local-view trees, stored in a flat arena.

    A depth-[d] view of a dense graph unfolds to a tree with up to [Δ^d]
    vertices, but has at most [n] {e distinct} subtrees per level (one per
    view-equivalence class, Section 2.1).  This module interns view nodes in
    a process-wide hash-cons arena: structurally equal trees receive the
    same integer handle, so

    - {!equal} and {!hash} are O(1) (handle comparison),
    - {!compare} is the canonical structural order of {!View.compare},
      memoized over handle pairs (amortized O(1) on repeated comparisons),
    - {!size} and {!depth} are O(1) (stored per node at construction),

    and every algorithm that walks views — sorting truncations, counting
    tree vertices, the [(size, encoding)] candidate order — runs in the size
    of the shared DAG instead of the unfolded tree.

    {2 Representation}

    A value of type {!t} is the node's arena handle; marks, sizes, depths
    and child lists live in flat per-shard column arrays (marks, sizes,
    depths, child offsets into one concatenated child-handle array).  There
    is no box per view node: the store is a handful of arrays the GC scans
    as units, and the child walks of {!compare}/{!subtrees} run directly
    over the flat columns.

    {2 Domain safety}

    The intern table is split into key-hash shards, each guarded by its own
    mutex (interning is a pure function cache, so sharing it across
    simulated nodes and domains leaks no information between them).
    Handles are process-global — equal structures hash to the same shard
    and receive the same handle no matter which domain interns them first —
    so construction under [Anonet_parallel.Pool] is safe: two domains
    interning the same structure race only for who inserts first; both
    receive the unique representative.  Reads (accessors, {!compare},
    {!truncate}) never take a lock: each shard publishes its column arrays
    through an [Atomic.t] snapshot, and the {!compare}/{!truncate} memo
    tables are {e per-domain} ([Domain.DLS]).

    Invalidation: none.  Interned nodes are pure values; the arena only
    grows (it implements a function cache keyed by handles that are never
    reused), and lives for the process.  See DESIGN.md, "Memory layout &
    scratch arenas". *)

type t
(** An arena handle.  Equal trees have equal handles. *)

(** [leaf mark] is the depth-1 view with the given mark. *)
val leaf : Anonet_graph.Label.t -> t

(** [node mark children] interns an internal vertex, canonicalizing the
    sibling order under {!compare}. *)
val node : Anonet_graph.Label.t -> t list -> t

(** O(1): interning makes structural equality a handle comparison. *)
val equal : t -> t -> bool

(** The canonical total order of {!View.compare} — root marks first, then
    child lists lexicographically — decided via handles and a per-domain
    memo table.  [compare a b = 0] iff [equal a b]. *)
val compare : t -> t -> int

(** [hash t] is [t]'s handle — a perfect hash for interned values. *)
val hash : t -> int

(** [id t] is the interning identity: equal trees have equal ids. *)
val id : t -> int

(** [mark t] is the root mark. *)
val mark : t -> Anonet_graph.Label.t

(** [children t] lists the sub-views, sorted under {!compare}. *)
val children : t -> t list

(** [size t] is the vertex count of the unfolded tree, O(1) (saturating at
    [max_int] for astronomically deep views). *)
val size : t -> int

(** [depth t] is the number of levels (a leaf has depth 1), O(1). *)
val depth : t -> int

(** [of_graph g ~root ~depth] is [L_depth(root, g)] interned — the same
    object {!View.of_graph} describes, built level by level in
    O(n·depth·Δ) interning steps.
    @raise Invalid_argument if [depth < 1]. *)
val of_graph : Anonet_graph.Graph.t -> root:int -> depth:int -> t

(** [truncate t ~depth] prunes to the given depth (memoized per domain);
    [t] itself when [depth >= depth t].
    @raise Invalid_argument if [depth < 1]. *)
val truncate : t -> depth:int -> t

(** [subtrees t] lists every distinct subtree occurring in [t] (including
    [t] itself), each once. *)
val subtrees : t -> t list

(** {2 Cache statistics} *)

type stats = {
  hits : int;  (** interning requests answered by an existing node *)
  misses : int;  (** interning requests that allocated a new node *)
  nodes : int;  (** current intern-arena population *)
}

(** Process-lifetime totals for the intern arena. *)
val stats : unit -> stats

(** [publish_metrics obs] records the interning totals ({!stats}) and the
    canonical-encoding cache totals ({!Anonet_graph.Encode.cache_stats}) in
    [obs]'s metrics registry: counters [cache.view.hits], [cache.view.misses],
    [cache.encode.hits], [cache.encode.misses], [cache.encode.evictions] and
    gauges [cache.view.nodes], [cache.encode.entries].  The counters carry
    process-lifetime totals — call this once per registry, just before
    taking its snapshot (the CLI metrics trailer and [bench-json] do exactly
    that).  A no-op on {!Anonet_obs.Obs.null}. *)
val publish_metrics : Anonet_obs.Obs.t -> unit
