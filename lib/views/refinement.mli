(** Color refinement: the equivalence classes of depth-[d] local views.

    Round 0 partitions nodes by label; round [r] refines by the multiset of
    neighbors' round-[r-1] classes.  The round-[r] partition is exactly the
    partition by equality of depth-[r+1] local views, so the stable
    partition is the partition by [L_∞] — the node set [V_∞] of the
    infinite view graph (Definition 1).  Since each round strictly refines
    or stabilizes, the process stops within [n] rounds: this is the
    effective content of Norris' theorem (Theorem 3) that this library
    leans on to replace depth-infinity views with depth-[n] views.

    Class identifiers are canonical: at every round, classes are numbered
    by the sorted order of their signatures, so isomorphic graphs receive
    identical class arrays up to the isomorphism, and the class numbering
    induces the predetermined total order on [V_∞] used in Section 2.1. *)

type result = {
  classes : int array;  (** stable class of each node, in [0 .. num_classes-1] *)
  num_classes : int;
  stable_view_depth : int;
      (** smallest [d] such that the depth-[d] view partition equals the
          [L_∞] partition; Norris guarantees [stable_view_depth <= n] *)
  history : int array list;
      (** per-round class arrays, round 0 first (depth-1 views) *)
}

(** [run g] refines to the stable partition. *)
val run : Anonet_graph.Graph.t -> result

(** [classes_at_depth g d] is the partition of nodes by equality of
    depth-[d] views, [d >= 1], with canonical class numbering. *)
val classes_at_depth : Anonet_graph.Graph.t -> int -> int array

(** [refine_once g classes] is one refinement round: partitions by
    [(classes.(v), sorted multiset of classes of v's neighbors)], with
    canonical renumbering.  Exposed for incremental uses. *)
val refine_once : Anonet_graph.Graph.t -> int array -> int array

(** [initial g] is the round-0 partition (by label), canonically numbered. *)
val initial : Anonet_graph.Graph.t -> int array
