(** The finite view graph [G*] (Section 3) — equivalently, by Corollary 2,
    a finite representation of the infinite view graph [G∞] (Definition 1).

    For a 2-hop colored graph [G], the nodes of [G*] are the equivalence
    classes of depth-infinity local views (computed by {!Refinement}); two
    classes are adjacent iff some (equivalently, every) member of one has a
    member of the other as a neighbor; each class keeps its members' label.
    The projection [f∞ : v -> class of v] is a factorizing map (Lemma 2),
    [G*] is the unique prime factor of [G] (Lemma 3), and nodes of [G*] are
    ordered canonically so that the encoding [s(G)] of Section 3.1 is
    well defined. *)

type t = {
  graph : Anonet_graph.Graph.t;  (** [G*]; node [i] is the class numbered [i] *)
  map : int array;  (** the infinite view map [f∞ : V(G) -> V(G✱)] *)
  stable_view_depth : int;
      (** the depth at which views stabilized (Norris: at most [n]) *)
}

(** [of_graph g] computes the finite view graph.

    The quotient of an arbitrary labeled graph by view equivalence can have
    loops or parallel edges (e.g. the unlabeled [C_4] collapses to a single
    class); such quotients fall outside the paper's simple-graph setting
    and yield [Error].  On 2-hop colored inputs the quotient is always a
    simple graph and [Ok] is guaranteed (Lemma 2's proof: neighbors of a
    node lie in pairwise distinct classes). *)
val of_graph : Anonet_graph.Graph.t -> (t, string) result

(** [of_graph_exn g] is [of_graph], raising [Invalid_argument] on [Error]. *)
val of_graph_exn : Anonet_graph.Graph.t -> t

(** [encoding vg] is the canonical bitstring [s(G)] under the canonical
    class order. *)
val encoding : t -> string
