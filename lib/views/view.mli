(** Depth-[d] local views [L_d(v, G)] (Section 1.1, Figure 1).

    The depth-d local view of node [v] is a rooted tree: [L_1(v)] is a
    single vertex marked with [v]'s label, and [L_{d+1}(v)] attaches the
    root of [L_d(u)] as a child for every neighbor [u] of [v].  The view
    captures everything a deterministic anonymous algorithm at [v] can
    learn in [d - 1] communication rounds.

    Views here are {e canonical}: the children of every vertex are sorted
    under {!compare}.  On 2-hop colored graphs siblings carry distinct
    marks (Section 2.1), so the sorted form is a faithful canonical
    representation; on arbitrary graphs it canonicalizes the sibling
    multiset, which is exactly the information an anonymous (port-oblivious)
    observer has. *)

type t = {
  mark : Anonet_graph.Label.t;
  children : t list;  (** sorted under {!compare}; empty at depth 1 *)
}

(** [of_graph g ~root ~depth] computes [L_depth(root, g)].
    @raise Invalid_argument if [depth < 1]. *)
val of_graph : Anonet_graph.Graph.t -> root:int -> depth:int -> t

(** Canonical total order on views — the "level by level" order of
    Section 2.1 realized structurally: first the root marks, then the
    (sorted) child lists, lexicographically. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [depth v] is the number of levels ([L_d] has depth [d]).  Memoized on
    physical identity, so it costs O(|shared DAG|), not O(|unfolded tree|). *)
val depth : t -> int

(** [size v] is the number of vertices of the unfolded tree (saturating at
    [max_int]).  Memoized on physical identity: O(|shared DAG|) even when
    the count itself is astronomical. *)
val size : t -> int

(** [intern v] is the hash-consed form of [v] (see {!Interned}); total on
    arbitrary trees — sibling order is re-canonicalized if needed. *)
val intern : t -> Interned.t

(** [of_interned i] converts back to a structural tree, reproducing the
    interned DAG's sharing, so [intern] and [of_interned] round-trip without
    unfolding.  [compare (of_interned a) (of_interned b)] agrees with
    [Interned.compare a b]. *)
val of_interned : Interned.t -> t

(** [truncate v ~depth] prunes [v] to the given depth — the depth-n
    truncating function [f_n] of Section 3 applied to explicit trees.
    @raise Invalid_argument if [depth < 1]. *)
val truncate : t -> depth:int -> t

(** [equal_nodes (g1, v1) (g2, v2) ~depth] decides
    [L_depth(v1, g1) = L_depth(v2, g2)] without materializing trees, by
    color refinement on the disjoint union — exact and polynomial even at
    depths where the trees are exponentially large. *)
val equal_nodes :
  Anonet_graph.Graph.t * int -> Anonet_graph.Graph.t * int -> depth:int -> bool

(** ASCII rendering of the tree, one vertex per line (root first), as in
    Figure 1. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
