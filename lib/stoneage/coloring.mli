(** Stone-age (1-hop) graph coloring over a fixed finite palette.

    A node draws a uniform random palette color, waits one round for its
    display to become visible (so that simultaneous identical draws see
    each other), and finalizes if no neighbor shows the same color.
    Las-Vegas-terminates whenever the palette exceeds the maximum degree;
    with a too-small palette the machine livelocks (finite machines cannot
    magic up more colors) — the executor's round budget turns that into an
    error, and the tests exhibit it.

    Output: [Label.Int color]. *)

(** [make ~palette] uses colors [0 .. palette-1] ([palette >= 1]). *)
val make : palette:int -> Machine.t
