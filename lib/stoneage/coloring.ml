module Label = Anonet_graph.Label

type state =
  | Start
  | Drawn of int  (* just drew; display not yet visible to neighbors *)
  | Checking of int
  | Final of int

let make ~palette : Machine.t =
  if palette < 1 then invalid_arg "Stoneage.Coloring.make: need palette >= 1";
  (module struct
    type nonrec state = state

    let name = Printf.sprintf "stoneage-coloring-%d" palette

    let blank = Label.Str "blank"

    let letter c = Label.Int c

    let alphabet = blank :: List.init palette letter

    let randomness = palette

    let init () = Start

    let output = function
      | Final c -> Some (Label.Int c)
      | Start | Drawn _ | Checking _ -> None

    let transition state ~counts ~random =
      match state with
      | Start -> Drawn random, letter random
      | Drawn c -> Checking c, letter c
      | Checking c ->
        if Machine.at_least_one (counts (letter c)) then Drawn random, letter random
        else Final c, letter c
      | Final c -> Final c, letter c
  end)
