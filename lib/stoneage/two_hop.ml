module Label = Anonet_graph.Label

type state = {
  k : int;  (* the global round index mod palette (all nodes agree) *)
  color : int;
  clean : int;  (* evidence-free transitions since the last draw *)
  started : bool;
  final : bool;
}

let make ~palette : Machine.t =
  if palette < 1 then invalid_arg "Stoneage.Two_hop.make: need palette >= 1";
  let p = palette in
  (module struct
    type nonrec state = state

    let name = Printf.sprintf "stoneage-2hop-%d" p

    let blank = Label.Str "blank"

    let letter c flag = Label.Pair (Label.Int c, Label.Bool flag)

    let alphabet =
      blank
      :: List.concat_map (fun c -> [ letter c false; letter c true ]) (List.init p Fun.id)

    let randomness = p

    let init () = { k = 0; color = 0; clean = 0; started = false; final = false }

    let output s = if s.final then Some (Label.Int s.color) else None

    (* one-two-many over a color regardless of its flag bit *)
    let color_seen counts c =
      Machine.at_least_one (counts (letter c false))
      || Machine.at_least_one (counts (letter c true))

    let color_seen_twice counts c =
      Machine.at_least_two (counts (letter c false))
      || Machine.at_least_two (counts (letter c true))
      || (Machine.at_least_one (counts (letter c false))
          && Machine.at_least_one (counts (letter c true)))

    let any_flag counts =
      List.exists
        (fun c -> Machine.at_least_one (counts (letter c true)))
        (List.init p Fun.id)

    (* Finalize after a window long enough that (a) the fresh display has
       been visible to the common neighbor, (b) the dedicated flag round
       for our color has come and gone, and (c) the flag has reached us:
       p + 4 evidence-free transitions suffice. *)
    let window = p + 4

    let transition s ~counts ~random =
      let k = (s.k + 1) mod p in
      (* The flag this display carries concerns the next round's color. *)
      let flag_out = color_seen_twice counts ((k + 1) mod p) in
      if not s.started then begin
        let s = { k; color = random; clean = 0; started = true; final = false } in
        s, letter s.color flag_out
      end
      else if s.final then { s with k }, letter s.color flag_out
      else begin
        let direct = color_seen counts s.color in
        let relayed = k = s.color mod p && any_flag counts in
        if direct || relayed then begin
          let s = { s with k; color = random; clean = 0 } in
          s, letter s.color flag_out
        end
        else begin
          let clean = s.clean + 1 in
          let final = clean >= window in
          { s with k; clean; final }, letter s.color flag_out
        end
      end
  end)
