module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Prng = Anonet_graph.Prng

type outcome = {
  outputs : Label.t array;
  rounds : int;
}

type failure = Max_rounds_exceeded of int

let pp_failure fmt (Max_rounds_exceeded r) =
  Format.fprintf fmt "no output after %d rounds" r

let run (type s) (module M : Machine.S with type state = s) g ~seed ~max_rounds =
  let n = Graph.n g in
  let alphabet = M.alphabet in
  (match alphabet with
   | [] -> invalid_arg "Stoneage.Engine.run: empty alphabet"
   | _ -> ());
  let initial_display = List.hd alphabet in
  let in_alphabet l = List.exists (Label.equal l) alphabet in
  let states = Array.init n (fun _ -> M.init ()) in
  let displays = Array.make n initial_display in
  let outputs = Array.make n None in
  let record v state =
    match outputs.(v), M.output state with
    | None, o -> outputs.(v) <- o
    | Some prev, Some cur when Label.equal prev cur -> ()
    | Some _, _ ->
      invalid_arg
        (Printf.sprintf "Stoneage.Engine.run: %s revoked an irrevocable output" M.name)
  in
  Array.iteri (fun v s -> record v s) states;
  let all_output () = Array.for_all Option.is_some outputs in
  let counts_for v =
    (* one-two-many counting of neighbor displays, per letter *)
    let table = Hashtbl.create 8 in
    Array.iter
      (fun u ->
        let key = Label.encode displays.(u) in
        let c = Option.value ~default:0 (Hashtbl.find_opt table key) in
        Hashtbl.replace table key (min 2 (c + 1)))
      (Graph.neighbors g v);
    fun l ->
      match Hashtbl.find_opt table (Label.encode l) with
      | None | Some 0 -> Machine.Zero
      | Some 1 -> Machine.One
      | Some _ -> Machine.Many
  in
  let rec loop round =
    if all_output () then
      Ok { outputs = Array.map Option.get outputs; rounds = round - 1 }
    else if round > max_rounds then Error (Max_rounds_exceeded max_rounds)
    else begin
      (* Snapshot count observers before any display changes. *)
      let observers = Array.init n counts_for in
      let next_displays = Array.copy displays in
      for v = 0 to n - 1 do
        let random =
          if M.randomness <= 1 then 0
          else Prng.int (Prng.create ((seed * 48_271) + (v * 2_531) + round)) M.randomness
        in
        let state', display = M.transition states.(v) ~counts:observers.(v) ~random in
        if not (in_alphabet display) then
          invalid_arg
            (Printf.sprintf "Stoneage.Engine.run: %s displayed a letter outside \
                             its alphabet" M.name);
        states.(v) <- state';
        next_displays.(v) <- display;
        record v state'
      done;
      Array.blit next_displays 0 displays 0 n;
      loop (round + 1)
    end
  in
  loop 1

let run machine g ~seed ~max_rounds =
  let (module M : Machine.S) = machine in
  run (module M) g ~seed ~max_rounds
