(** Stone-age 2-hop coloring over a fixed finite palette — the paper's
    Section 1.3 claim ("a solution to the 2-hop coloring problem can
    already be found in the weak model of [19]") made constructive for
    degree-bounded graphs.

    The difficulty: with one-two-many counting a node can spot a
    {e 1-hop} color collision directly, but a collision between two of
    its neighbors ({e its} evidence of a 2-hop collision elsewhere) must
    be relayed.  The machine time-multiplexes that relay: rounds cycle
    through the palette, and in the round dedicated to color [l] every
    node raises a {e flag} bit iff two-or-many of its neighbors display
    [l] — so a node with color [l] watching for flags in [l]'s round
    learns of any collision at distance two.  A node finalizes after a
    full flag cycle (plus pipeline slack) with no evidence; finalized
    colors never move, and of any colliding pair the later-drawn side is
    always still mobile, so finalized outputs are sound.

    Termination with probability 1 needs the palette to exceed the number
    of 2-hop neighbors anywhere, i.e. [palette >= Δ² + 1]; the machine is
    a finite automaton, so some such bound is unavoidable.

    Output: [Label.Int color], a proper 2-hop coloring. *)

(** [make ~palette] uses colors [0 .. palette-1] ([palette >= 1]). *)
val make : palette:int -> Machine.t
