(** Stone-age maximal independent set.

    A four-state machine: an undecided node tosses a coin to become a
    {e candidate}; a candidate seeing no other candidate joins the MIS; a
    node seeing an MIS member leaves.  All decisions read only
    zero/one/many counts — no degrees, no identifiers, no unbounded
    messages — demonstrating that the symmetry breaking at the heart of
    GRAN problems needs almost no machinery beyond randomness.

    Output: [Label.Bool in_mis]. *)

val machine : Machine.t
