(** Synchronous executor for stone-age machines (see {!Machine}).

    Every node starts in the uniform initial state displaying the
    alphabet's first letter; each round, every node observes one-two-many
    counts of its neighbors' displays and transitions.  Execution stops
    when every node has produced its irrevocable output. *)

type outcome = {
  outputs : Anonet_graph.Label.t array;
  rounds : int;
}

type failure = Max_rounds_exceeded of int

val pp_failure : Format.formatter -> failure -> unit

(** [run machine g ~seed ~max_rounds] executes; [seed] drives the bounded
    random choices reproducibly.
    @raise Invalid_argument if the machine displays a letter outside its
    alphabet or revokes an output. *)
val run :
  Machine.t ->
  Anonet_graph.Graph.t ->
  seed:int ->
  max_rounds:int ->
  (outcome, failure) result
