(** The stone-age computation model (Emek-Wattenhofer [19], cited in
    Section 1.3 of the paper).

    Nodes are anonymous {e finite state machines} — strictly weaker than
    the message-passing model of Section 1.1:

    - each node continuously {e displays} one letter from a finite
      alphabet (its only outward communication);
    - in every synchronous round a node observes, for each letter, only
      whether {e zero}, {e one}, or {e many} (two or more) of its
      neighbors currently display it — "one-two-many" counting, the
      weakest nontrivial counting;
    - nodes do not know their degree, receive no input, and have a
      constant number of states;
    - transitions may consume one bounded uniform random choice per round
      (the bounded-randomness analogue of the one-bit-per-round
      convention; grouping rounds converts between the two).

    The paper cites this model to stress how little power 2-hop coloring
    needs; {!Two_hop} realizes that claim constructively for
    degree-bounded graphs (finite machines cannot name unboundedly many
    colors, so a degree bound is information-theoretically necessary). *)

(** Observed multiplicity of a letter among the neighbors. *)
type count =
  | Zero
  | One
  | Many

(** [at_least_one c] and [at_least_two c] are the usable comparisons. *)
let at_least_one = function Zero -> false | One | Many -> true

let at_least_two = function Zero | One -> false | Many -> true

module type S = sig
  type state

  val name : string

  (** The display alphabet; the head of the list is the initial display
      (shown during round 1, before the first transition takes effect). *)
  val alphabet : Anonet_graph.Label.t list

  (** Number of equiprobable random choices per round (>= 1; 1 means the
      machine is deterministic). *)
  val randomness : int

  (** The uniform initial state — no inputs, no identifiers, no degree. *)
  val init : unit -> state

  (** [transition state ~counts ~random] consumes one round: [counts l]
      observes the letter [l] among the neighbors' current displays;
      [random] is uniform in [0 .. randomness-1].  Returns the new state
      and the letter to display from the next round on. *)
  val transition :
    state ->
    counts:(Anonet_graph.Label.t -> count) ->
    random:int ->
    state * Anonet_graph.Label.t

  (** The irrevocable local output, if produced. *)
  val output : state -> Anonet_graph.Label.t option
end

type t = (module S)
