module Label = Anonet_graph.Label

let l_undecided = Label.Str "u"

let l_candidate = Label.Str "c"

let l_in = Label.Str "in"

let l_out = Label.Str "out"

type state =
  | Undecided
  | Candidate
  | In_mis
  | Out_mis

let machine : Machine.t =
  (module struct
    type nonrec state = state

    let name = "stoneage-mis"

    let alphabet = [ l_undecided; l_candidate; l_in; l_out ]

    let randomness = 2

    let init () = Undecided

    let output = function
      | In_mis -> Some (Label.Bool true)
      | Out_mis -> Some (Label.Bool false)
      | Undecided | Candidate -> None

    let transition state ~counts ~random =
      match state with
      | In_mis -> In_mis, l_in
      | Out_mis -> Out_mis, l_out
      | Undecided ->
        if Machine.at_least_one (counts l_in) then Out_mis, l_out
        else if random = 1 then Candidate, l_candidate
        else Undecided, l_undecided
      | Candidate ->
        if Machine.at_least_one (counts l_in) then Out_mis, l_out
        else if counts l_candidate = Machine.Zero then In_mis, l_in
        else Undecided, l_undecided
  end)
