(* Bitstrings are stored as strings of '0'/'1' characters.  At the scales of
   this library (tapes and colors of at most a few hundred bits) this is both
   simple and fast, and it makes the lexicographic orders coincide with
   [String.compare]. *)

type t = string

let empty = ""

let length = String.length

let is_empty b = String.length b = 0

let char_of_bit x = if x then '1' else '0'

let bit_of_char = function
  | '0' -> false
  | '1' -> true
  | c -> invalid_arg (Printf.sprintf "Bits.of_string: invalid character %C" c)

let append b x = b ^ String.make 1 (char_of_bit x)

let get b i =
  if i < 0 || i >= String.length b then invalid_arg "Bits.get: out of bounds";
  b.[i] = '1'

let of_list xs = String.init (List.length xs) (fun i -> char_of_bit (List.nth xs i))

let to_list b = List.init (String.length b) (fun i -> b.[i] = '1')

let of_string s =
  String.iter (fun c -> ignore (bit_of_char c)) s;
  s

let to_string b = b

let concat a b = a ^ b

let take b n =
  if n < 0 || n > String.length b then invalid_arg "Bits.take: out of bounds";
  String.sub b 0 n

let is_prefix ~prefix b =
  let lp = String.length prefix in
  lp <= String.length b && String.sub b 0 lp = prefix

let compare_lex = String.compare

let compare a b =
  let c = Int.compare (String.length a) (String.length b) in
  if c <> 0 then c else String.compare a b

let equal = String.equal

let hash = Hashtbl.hash

let zero n = String.make n '0'

let of_int ~width x =
  if x < 0 || (width < 62 && x lsr width <> 0) then
    invalid_arg "Bits.of_int: value does not fit";
  String.init width (fun i -> char_of_bit (x lsr (width - 1 - i) land 1 = 1))

let to_int b =
  if String.length b > 62 then invalid_arg "Bits.to_int: too long";
  String.fold_left (fun acc c -> (acc lsl 1) lor (if c = '1' then 1 else 0)) 0 b

let enumerate n =
  if n > 30 then invalid_arg "Bits.enumerate: too long";
  let limit = 1 lsl n in
  let rec from i () =
    if i >= limit then Seq.Nil else Seq.Cons (of_int ~width:n i, from (i + 1))
  in
  from 0

let pp fmt b = Format.pp_print_string fmt (if b = "" then "ε" else b)
