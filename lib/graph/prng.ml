(* Splitmix64: tiny, fast, and statistically fine for simulation purposes.
   Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let bool t = Int64.logand (bits64 t) 1L = 1L

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  (* Rejection sampling on the low 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let x = Int64.to_int (bits64 t) land mask in
    let r = x mod bound in
    if x - r + (bound - 1) >= 0 then r else draw ()
  in
  draw ()

let float t =
  (* 53 uniform bits over [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. 0x1p-53

let hash2 a b =
  (* One splitmix step per word: mix the first seed, advance by the second
     scaled by the golden ratio, and mix again — a proper avalanche over
     both inputs, unlike the arithmetic [seed + c * i] it replaces. *)
  let z = Int64.add (mix (Int64.of_int a)) (Int64.mul (Int64.of_int b) golden) in
  (* Drop to 62 bits: [to_int] of a 63-bit value can wrap negative on
     OCaml's 63-bit native ints. *)
  Int64.to_int (Int64.shift_right_logical (mix z) 2)

let split t = { state = mix (Int64.add (bits64 t) golden) }

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
