let label_to_string = function
  | Label.Unit -> "unit"
  | Label.Int k -> Printf.sprintf "int:%d" k
  | Label.Str s -> Printf.sprintf "str:%s" s
  | Label.Bits b -> Printf.sprintf "bits:%s" (Bits.to_string b)
  | Label.Bool b -> Printf.sprintf "bool:%b" b
  | (Label.Pair _ | Label.List _) as l ->
    invalid_arg ("Graph_io: composite label not representable: " ^ Label.to_string l)

let label_of_string s =
  match String.index_opt s ':' with
  | None ->
    if s = "unit" then Label.Unit
    else invalid_arg (Printf.sprintf "Graph_io: bad label %S" s)
  | Some i ->
    let kind = String.sub s 0 i in
    let payload = String.sub s (i + 1) (String.length s - i - 1) in
    (match kind with
     | "int" -> Label.Int (int_of_string payload)
     | "str" -> Label.Str payload
     | "bits" -> Label.Bits (Bits.of_string payload)
     | "bool" -> Label.Bool (bool_of_string payload)
     | _ -> invalid_arg (Printf.sprintf "Graph_io: bad label kind %S" kind))

let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  Graph.iter_nodes g ~f:(fun v ->
      let l = Graph.label g v in
      if not (Label.equal l Label.Unit) then
        Buffer.add_string buf (Printf.sprintf "node %d %s\n" v (label_to_string l)));
  Graph.iter_edges g ~f:(fun u v ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v));
  Buffer.contents buf

(* Streaming parser state: edges land in two growable flat int arrays (the
   'edge' directive may legally precede 'n', so the endpoint store cannot
   be a [Graph.Builder] yet) and are drained into a builder once the node
   count is known — no edge list, no per-edge boxing, so a million-edge
   file loads with the same footprint it occupies loaded. *)
type parse_state = {
  mutable pn : int option;
  plabels : (int, Label.t) Hashtbl.t;
  mutable peu : int array;
  mutable pev : int array;
  mutable pm : int;
}

let new_parse_state () =
  {
    pn = None;
    plabels = Hashtbl.create 16;
    peu = Array.make 64 0;
    pev = Array.make 64 0;
    pm = 0;
  }

let push_edge st u v =
  if st.pm = Array.length st.peu then begin
    let cap' = 2 * st.pm in
    let eu' = Array.make cap' 0 and ev' = Array.make cap' 0 in
    Array.blit st.peu 0 eu' 0 st.pm;
    Array.blit st.pev 0 ev' 0 st.pm;
    st.peu <- eu';
    st.pev <- ev'
  end;
  st.peu.(st.pm) <- u;
  st.pev.(st.pm) <- v;
  st.pm <- st.pm + 1

let parse_line st line_no line =
  let fail msg = invalid_arg (Printf.sprintf "Graph_io: line %d: %s" line_no msg) in
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ()
  else begin
    match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
    | [ "n"; count ] -> begin
        match int_of_string_opt count with
        | Some c when c >= 0 -> st.pn <- Some c
        | Some _ | None -> fail "bad node count"
      end
    | [ "node"; v; label ] -> begin
        match int_of_string_opt v with
        | None -> fail "bad node index"
        | Some v ->
          (try Hashtbl.replace st.plabels v (label_of_string label)
           with Invalid_argument m -> fail m)
      end
    | [ "edge"; u; v ] -> begin
        match int_of_string_opt u, int_of_string_opt v with
        | Some u, Some v -> push_edge st u v
        | _, _ -> fail "bad edge endpoints"
      end
    | _ -> fail (Printf.sprintf "unrecognized directive %S" line)
  end

let finish st =
  match st.pn with
  | None -> invalid_arg "Graph_io: missing 'n <count>' directive"
  | Some n ->
    let labels =
      Array.init n (fun v ->
          Option.value ~default:Label.Unit (Hashtbl.find_opt st.plabels v))
    in
    let b = Graph.Builder.create ~edges_hint:st.pm ~n () in
    for i = 0 to st.pm - 1 do
      Graph.Builder.add_edge b st.peu.(i) st.pev.(i)
    done;
    Graph.Builder.build b ~labels

let of_string s =
  let st = new_parse_state () in
  List.iteri (fun i line -> parse_line st (i + 1) line) (String.split_on_char '\n' s);
  finish st

let load path =
  In_channel.with_open_text path (fun ic ->
      let st = new_parse_state () in
      let rec go line_no =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
          parse_line st line_no line;
          go (line_no + 1)
      in
      go 1;
      finish st)

(* [save] streams directly to the channel — same bytes as
   [output_string oc (to_string g)] without ever holding the whole
   rendering (or an edge list) in memory. *)
let save path g =
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc "n %d\n" (Graph.n g);
      Graph.iter_nodes g ~f:(fun v ->
          let l = Graph.label g v in
          if not (Label.equal l Label.Unit) then
            Printf.fprintf oc "node %d %s\n" v (label_to_string l));
      Graph.iter_edges g ~f:(fun u v -> Printf.fprintf oc "edge %d %d\n" u v))
