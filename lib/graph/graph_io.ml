let label_to_string = function
  | Label.Unit -> "unit"
  | Label.Int k -> Printf.sprintf "int:%d" k
  | Label.Str s -> Printf.sprintf "str:%s" s
  | Label.Bits b -> Printf.sprintf "bits:%s" (Bits.to_string b)
  | Label.Bool b -> Printf.sprintf "bool:%b" b
  | (Label.Pair _ | Label.List _) as l ->
    invalid_arg ("Graph_io: composite label not representable: " ^ Label.to_string l)

let label_of_string s =
  match String.index_opt s ':' with
  | None ->
    if s = "unit" then Label.Unit
    else invalid_arg (Printf.sprintf "Graph_io: bad label %S" s)
  | Some i ->
    let kind = String.sub s 0 i in
    let payload = String.sub s (i + 1) (String.length s - i - 1) in
    (match kind with
     | "int" -> Label.Int (int_of_string payload)
     | "str" -> Label.Str payload
     | "bits" -> Label.Bits (Bits.of_string payload)
     | "bool" -> Label.Bool (bool_of_string payload)
     | _ -> invalid_arg (Printf.sprintf "Graph_io: bad label kind %S" kind))

let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  Graph.iter_nodes g ~f:(fun v ->
      let l = Graph.label g v in
      if not (Label.equal l Label.Unit) then
        Buffer.add_string buf (Printf.sprintf "node %d %s\n" v (label_to_string l)));
  Graph.iter_edges g ~f:(fun u v ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v));
  Buffer.contents buf

let of_string s =
  let n = ref None in
  let labels = Hashtbl.create 16 in
  let edges = ref [] in
  let fail line_no msg =
    invalid_arg (Printf.sprintf "Graph_io: line %d: %s" line_no msg)
  in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else begin
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ "n"; count ] -> begin
            match int_of_string_opt count with
            | Some c when c >= 0 -> n := Some c
            | Some _ | None -> fail line_no "bad node count"
          end
        | [ "node"; v; label ] -> begin
            match int_of_string_opt v with
            | None -> fail line_no "bad node index"
            | Some v ->
              (try Hashtbl.replace labels v (label_of_string label)
               with Invalid_argument m -> fail line_no m)
          end
        | [ "edge"; u; v ] -> begin
            match int_of_string_opt u, int_of_string_opt v with
            | Some u, Some v -> edges := (u, v) :: !edges
            | _, _ -> fail line_no "bad edge endpoints"
          end
        | _ -> fail line_no (Printf.sprintf "unrecognized directive %S" line)
      end)
    (String.split_on_char '\n' s);
  match !n with
  | None -> invalid_arg "Graph_io: missing 'n <count>' directive"
  | Some n ->
    let label_array =
      Array.init n (fun v ->
          Option.value ~default:Label.Unit (Hashtbl.find_opt labels v))
    in
    Graph.create ~n ~edges:(List.rev !edges) ~labels:label_array

let load path = of_string (In_channel.with_open_text path In_channel.input_all)

let save path g = Out_channel.with_open_text path (fun oc -> output_string oc (to_string g))
