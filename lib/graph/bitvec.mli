(** Mutable packed bit vectors ([Bytes]-backed).

    The flat representation of per-round random bits: one bit per node,
    8x denser than [bool array], copied with [Bytes.blit], and reusable
    in place — search loops fill one preallocated vector per round
    instead of boxing a fresh array per explored state.  Unused padding
    bits are kept zero, so the underlying bytes double as a canonical
    dedup/hash key. *)

type t

(** [create len] is an all-zero vector of [len] bits. *)
val create : int -> t

val length : t -> int

(** @raise Invalid_argument when out of bounds. *)
val get : t -> int -> bool

(** @raise Invalid_argument when out of bounds. *)
val set : t -> int -> bool -> unit

(** No bounds check — for loops that already guarantee the range. *)
val unsafe_get : t -> int -> bool

val unsafe_set : t -> int -> bool -> unit

(** Reset every bit to zero (the vector is reusable scratch). *)
val clear : t -> unit

val copy : t -> t

(** [blit ~src ~dst] overwrites [dst] with [src]'s bits.
    @raise Invalid_argument on length mismatch. *)
val blit : src:t -> dst:t -> unit

val of_bool_array : bool array -> t

val to_bool_array : t -> bool array

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
