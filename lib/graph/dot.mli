(** Graphviz (DOT) export, for inspecting graphs, view graphs, and
    factorizing maps produced by the examples. *)

(** [of_graph ?name g] renders [g] in DOT syntax with labels shown. *)
val of_graph : ?name:string -> Graph.t -> string

(** [of_factorization ?name ~product ~factor ~map ()] renders product and
    factor side by side, with dashed arrows depicting the factorizing map
    (cf. Figure 2). *)
val of_factorization :
  ?name:string -> product:Graph.t -> factor:Graph.t -> map:int array -> unit -> string
