(** Structured node labels.

    The paper treats all labels as finite bitstrings and composes several
    labeling functions into one by tupling: a graph labeled by
    [l1, ..., lk] is treated as labeled by [v -> <l1 v, ..., lk v>].
    This module provides that composition as a typed, recursively structured
    label with a canonical total order and an injective string encoding —
    the encoding realizes the paper's "labels are finite bitstrings"
    convention while keeping composite labelings first-class.

    Labels also serve as message payloads in the runtime. *)

type t =
  | Unit  (** the anonymous label: no information *)
  | Bool of bool
  | Int of int
  | Str of string
  | Bits of Bits.t
  | Pair of t * t
  | List of t list

(** Canonical total order (structural, constructor-tagged). *)
val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

(** Injective encoding as a self-delimiting string; equal labels have equal
    encodings and distinct labels have distinct encodings.  Used for the
    canonical graph encodings [s(G)] of Section 3.1. *)
val encode : t -> string

(** Human-readable rendering. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {2 Composition helpers} *)

(** [pair a b] is [Pair (a, b)]. *)
val pair : t -> t -> t

(** [fst l] projects the first component of a pair.
    @raise Invalid_argument if [l] is not a pair. *)
val fst : t -> t

(** [snd l] projects the second component of a pair.
    @raise Invalid_argument if [l] is not a pair. *)
val snd : t -> t

(** [to_int l] extracts an [Int] payload.
    @raise Invalid_argument otherwise. *)
val to_int : t -> int

(** [to_bits l] extracts a [Bits] payload.
    @raise Invalid_argument otherwise. *)
val to_bits : t -> Bits.t

(** [to_bool l] extracts a [Bool] payload.
    @raise Invalid_argument otherwise. *)
val to_bool : t -> bool

(** [to_pair l] extracts both components of a pair.
    @raise Invalid_argument otherwise. *)
val to_pair : t -> t * t

(** [to_list l] extracts a [List] payload.
    @raise Invalid_argument otherwise. *)
val to_list : t -> t list
