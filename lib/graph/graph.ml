type t = {
  id : int; (* process-unique identity token, see [id] in the interface *)
  n : int;
  adj : int array array; (* adj.(v).(port) = neighbor of v at that port *)
  labels : Label.t array;
}

(* Every construction — including the functional updates below — allocates a
   fresh id: derived graphs carry different labels/ports, so an identity
   keyed cache must never see them share a key. *)
let id_counter = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add id_counter 1

let id g = g.id

let validate_edges ~n edges =
  let seen = Hashtbl.create (List.length edges) in
  let canonical (u, v) = if u < v then u, v else v, u in
  let check (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.create: edge (%d, %d) out of range" u v);
    if u = v then invalid_arg (Printf.sprintf "Graph.create: self-loop at %d" u);
    let e = canonical (u, v) in
    if Hashtbl.mem seen e then
      invalid_arg (Printf.sprintf "Graph.create: duplicate edge (%d, %d)" u v);
    Hashtbl.add seen e ()
  in
  List.iter check edges

let create ~n ~edges ~labels =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  if Array.length labels <> n then
    invalid_arg "Graph.create: label array length differs from n";
  validate_edges ~n edges;
  let buckets = Array.make n [] in
  let add (u, v) =
    buckets.(u) <- v :: buckets.(u);
    buckets.(v) <- u :: buckets.(v)
  in
  List.iter add edges;
  let adj =
    Array.map (fun nbrs -> Array.of_list (List.sort Int.compare nbrs)) buckets
  in
  { id = fresh_id (); n; adj; labels = Array.copy labels }

let unlabeled ~n ~edges = create ~n ~edges ~labels:(Array.make n Label.Unit)

let n g = g.n

let degree g v = Array.length g.adj.(v)

let max_degree g = Array.fold_left (fun m a -> max m (Array.length a)) 0 g.adj

let neighbor g v j = g.adj.(v).(j)

let neighbors g v = g.adj.(v)

let port_to g v u =
  let a = g.adj.(v) in
  let rec loop j =
    if j >= Array.length a then raise Not_found
    else if a.(j) = u then j
    else loop (j + 1)
  in
  loop 0

let label g v = g.labels.(v)

let labels g = Array.copy g.labels

let has_edge g u v = Array.exists (fun w -> w = v) g.adj.(u)

let edges g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    Array.iter (fun u -> if v < u then acc := (v, u) :: !acc) g.adj.(v)
  done;
  !acc

let num_edges g =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 g.adj / 2

let relabel g f = { g with id = fresh_id (); labels = Array.init g.n f }

let with_labels g labels =
  if Array.length labels <> g.n then
    invalid_arg "Graph.with_labels: wrong label array length";
  { g with id = fresh_id (); labels = Array.copy labels }

let map_labels g f = { g with id = fresh_id (); labels = Array.map f g.labels }

let zip_labels g extra =
  if Array.length extra <> g.n then
    invalid_arg "Graph.zip_labels: wrong array length";
  { g with id = fresh_id (); labels = Array.mapi (fun v l -> Label.Pair (l, extra.(v))) g.labels }

let permute_ports g perms =
  if Array.length perms <> g.n then
    invalid_arg "Graph.permute_ports: wrong outer array length";
  let permute v =
    let d = Array.length g.adj.(v) in
    let p = perms.(v) in
    if Array.length p <> d then
      invalid_arg "Graph.permute_ports: wrong permutation length";
    let hit = Array.make d false in
    Array.iter
      (fun j ->
        if j < 0 || j >= d || hit.(j) then
          invalid_arg "Graph.permute_ports: not a permutation";
        hit.(j) <- true)
      p;
    Array.init d (fun j -> g.adj.(v).(p.(j)))
  in
  { g with id = fresh_id (); adj = Array.init g.n permute }

let fold_nodes g ~init ~f =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f !acc v
  done;
  !acc

let iter_nodes g ~f =
  for v = 0 to g.n - 1 do
    f v
  done

let iter_edges g ~f = List.iter (fun (u, v) -> f u v) (edges g)

let pp fmt g =
  Format.fprintf fmt "@[<v>graph on %d nodes, %d edges@," g.n (num_edges g);
  iter_nodes g ~f:(fun v ->
      Format.fprintf fmt "  %d [%a] ->" v Label.pp g.labels.(v);
      Array.iter (fun u -> Format.fprintf fmt " %d" u) g.adj.(v);
      Format.fprintf fmt "@,");
  Format.fprintf fmt "@]"
