(* CSR (compressed sparse row) adjacency: one offsets array (length n+1)
   plus one flat neighbor array.  Port [p] of node [v] is
   [nbr.(offsets.(v) + p)]; the slice for [v] is [offsets.(v) ..
   offsets.(v+1) - 1].  Builders emit canonically sorted ports, so
   [sorted] is true for every graph except those rebuilt by
   [permute_ports] — lookups ([port_to], [has_edge]) binary-search when
   they can and fall back to a linear scan when they cannot. *)
type t = {
  id : int; (* process-unique identity token, see [id] in the interface *)
  n : int;
  offsets : int array; (* length n + 1; offsets.(n) = total directed slots *)
  nbr : int array; (* flat neighbor array, nbr.(offsets.(v) + port) *)
  sorted : bool; (* every port slice sorted ascending? *)
  labels : Label.t array;
}

(* Every construction — including the functional updates below — allocates a
   fresh id: derived graphs carry different labels/ports, so an identity
   keyed cache must never see them share a key. *)
let id_counter = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add id_counter 1

let id g = g.id

(* In-place sort of nbr.[lo, hi): insertion sort for the short slices that
   dominate (sparse graphs), median-of-three quicksort above that.  The
   stdlib has no subrange sort and copying every slice out would rebuild
   the per-node-array representation this module just dropped. *)
let rec sort_range (a : int array) lo hi =
  let len = hi - lo in
  if len <= 16 then
    for i = lo + 1 to hi - 1 do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  else begin
    let swap i j =
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    in
    let mid = lo + (len / 2) in
    if a.(mid) < a.(lo) then swap mid lo;
    if a.(hi - 1) < a.(lo) then swap (hi - 1) lo;
    if a.(hi - 1) < a.(mid) then swap (hi - 1) mid;
    let pivot = a.(mid) in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while a.(!i) < pivot do
        incr i
      done;
      while a.(!j) > pivot do
        decr j
      done;
      if !i <= !j then begin
        swap !i !j;
        incr i;
        decr j
      end
    done;
    sort_range a lo (!j + 1);
    sort_range a !i hi
  end

module Builder = struct
  (* Streamed edges land in two growable flat int arrays — no tuple, no
     list cell, no Hashtbl entry per edge.  [build] then runs the classic
     two-pass CSR fill: count degrees, prefix-sum into offsets, scatter
     endpoints, sort each slice, and reject duplicates as adjacent equal
     entries of the sorted slice.  Validation errors format their message
     only on the failing edge. *)
  type builder = {
    bn : int;
    mutable eu : int array;
    mutable ev : int array;
    mutable m : int;
  }

  let create ?(edges_hint = 64) ~n () =
    if n < 0 then invalid_arg "Graph.create: negative node count";
    let cap = max 4 edges_hint in
    { bn = n; eu = Array.make cap 0; ev = Array.make cap 0; m = 0 }

  let grow b =
    let cap' = 2 * Array.length b.eu in
    let eu' = Array.make cap' 0 and ev' = Array.make cap' 0 in
    Array.blit b.eu 0 eu' 0 b.m;
    Array.blit b.ev 0 ev' 0 b.m;
    b.eu <- eu';
    b.ev <- ev'

  let add_edge b u v =
    if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
      invalid_arg (Printf.sprintf "Graph.create: edge (%d, %d) out of range" u v);
    if u = v then invalid_arg (Printf.sprintf "Graph.create: self-loop at %d" u);
    if b.m = Array.length b.eu then grow b;
    b.eu.(b.m) <- u;
    b.ev.(b.m) <- v;
    b.m <- b.m + 1

  let edges_added b = b.m

  let build_with_labels b labels =
    let n = b.bn in
    let off = Array.make (n + 1) 0 in
    for i = 0 to b.m - 1 do
      off.(b.eu.(i)) <- off.(b.eu.(i)) + 1;
      off.(b.ev.(i)) <- off.(b.ev.(i)) + 1
    done;
    let total = ref 0 in
    for v = 0 to n - 1 do
      let d = off.(v) in
      off.(v) <- !total;
      total := !total + d
    done;
    off.(n) <- !total;
    let nbr = Array.make !total 0 in
    let pos = Array.sub off 0 (max n 1) in
    for i = 0 to b.m - 1 do
      let u = b.eu.(i) and v = b.ev.(i) in
      nbr.(pos.(u)) <- v;
      pos.(u) <- pos.(u) + 1;
      nbr.(pos.(v)) <- u;
      pos.(v) <- pos.(v) + 1
    done;
    for v = 0 to n - 1 do
      let lo = off.(v) and hi = off.(v + 1) in
      sort_range nbr lo hi;
      for k = lo to hi - 2 do
        if nbr.(k) = nbr.(k + 1) then
          invalid_arg
            (Printf.sprintf "Graph.create: duplicate edge (%d, %d)" v nbr.(k))
      done
    done;
    { id = fresh_id (); n; offsets = off; nbr; sorted = true; labels }

  let build b ~labels =
    if Array.length labels <> b.bn then
      invalid_arg "Graph.create: label array length differs from n";
    build_with_labels b (Array.copy labels)

  let build_unlabeled b = build_with_labels b (Array.make b.bn Label.Unit)
end

let create ~n ~edges ~labels =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  if Array.length labels <> n then
    invalid_arg "Graph.create: label array length differs from n";
  let b = Builder.create ~edges_hint:(List.length edges) ~n () in
  List.iter (fun (u, v) -> Builder.add_edge b u v) edges;
  Builder.build b ~labels

let unlabeled ~n ~edges = create ~n ~edges ~labels:(Array.make n Label.Unit)

let n g = g.n

let degree g v = g.offsets.(v + 1) - g.offsets.(v)

let max_degree g =
  let m = ref 0 in
  for v = 0 to g.n - 1 do
    let d = g.offsets.(v + 1) - g.offsets.(v) in
    if d > !m then m := d
  done;
  !m

let neighbor g v j = g.nbr.(g.offsets.(v) + j)

let neighbors g v = Array.sub g.nbr g.offsets.(v) (degree g v)

let offsets g = g.offsets

let adjacency g = g.nbr

let ports_sorted g = g.sorted

let iter_neighbors g v ~f =
  for k = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    f g.nbr.(k)
  done

let fold_neighbors g v ~init ~f =
  let acc = ref init in
  for k = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    acc := f !acc g.nbr.(k)
  done;
  !acc

(* Binary search for [u] in the sorted slice of [v]; returns the port or
   -1.  Only valid when [g.sorted]. *)
let find_sorted g v u =
  let lo = ref g.offsets.(v) and hi = ref (g.offsets.(v + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.nbr.(mid) in
    if w = u then found := mid - g.offsets.(v)
    else if w < u then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let find_linear g v u =
  let base = g.offsets.(v) in
  let d = g.offsets.(v + 1) - base in
  let rec loop j =
    if j >= d then -1 else if g.nbr.(base + j) = u then j else loop (j + 1)
  in
  loop 0

let port_to g v u =
  let j = if g.sorted then find_sorted g v u else find_linear g v u in
  if j < 0 then raise Not_found else j

let label g v = g.labels.(v)

let labels g = Array.copy g.labels

let has_edge g u v =
  (if g.sorted then find_sorted g u v else find_linear g u v) >= 0

let edges g =
  (* Matches the historical per-node-array iteration order: node index
     descending, ports ascending within a node, each edge prepended. *)
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    for k = g.offsets.(v) to g.offsets.(v + 1) - 1 do
      let u = g.nbr.(k) in
      if v < u then acc := (v, u) :: !acc
    done
  done;
  !acc

let num_edges g = g.offsets.(g.n) / 2

let relabel g f = { g with id = fresh_id (); labels = Array.init g.n f }

let with_labels g labels =
  if Array.length labels <> g.n then
    invalid_arg "Graph.with_labels: wrong label array length";
  { g with id = fresh_id (); labels = Array.copy labels }

let map_labels g f = { g with id = fresh_id (); labels = Array.map f g.labels }

let zip_labels g extra =
  if Array.length extra <> g.n then
    invalid_arg "Graph.zip_labels: wrong array length";
  {
    g with
    id = fresh_id ();
    labels = Array.mapi (fun v l -> Label.Pair (l, extra.(v))) g.labels;
  }

let permute_ports g perms =
  if Array.length perms <> g.n then
    invalid_arg "Graph.permute_ports: wrong outer array length";
  let nbr' = Array.make (Array.length g.nbr) 0 in
  let hit = Array.make (max (max_degree g) 1) false in
  let still_sorted = ref true in
  for v = 0 to g.n - 1 do
    let base = g.offsets.(v) in
    let d = g.offsets.(v + 1) - base in
    let p = perms.(v) in
    if Array.length p <> d then
      invalid_arg "Graph.permute_ports: wrong permutation length";
    Array.fill hit 0 d false;
    for j = 0 to d - 1 do
      let pj = p.(j) in
      if pj < 0 || pj >= d || hit.(pj) then
        invalid_arg "Graph.permute_ports: not a permutation";
      hit.(pj) <- true;
      nbr'.(base + j) <- g.nbr.(base + pj);
      if j > 0 && nbr'.(base + j) < nbr'.(base + j - 1) then
        still_sorted := false
    done
  done;
  { g with id = fresh_id (); nbr = nbr'; sorted = g.sorted && !still_sorted }

let fold_nodes g ~init ~f =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f !acc v
  done;
  !acc

let iter_nodes g ~f =
  for v = 0 to g.n - 1 do
    f v
  done

let iter_edges g ~f =
  (* Same order as [List.iter f (edges g)] historically produced: node
     index ascending, ports descending within a node. *)
  for v = 0 to g.n - 1 do
    for k = g.offsets.(v + 1) - 1 downto g.offsets.(v) do
      let u = g.nbr.(k) in
      if v < u then f v u
    done
  done

let pp fmt g =
  Format.fprintf fmt "@[<v>graph on %d nodes, %d edges@," g.n (num_edges g);
  iter_nodes g ~f:(fun v ->
      Format.fprintf fmt "  %d [%a] ->" v Label.pp g.labels.(v);
      iter_neighbors g v ~f:(fun u -> Format.fprintf fmt " %d" u);
      Format.fprintf fmt "@,");
  Format.fprintf fmt "@]"
