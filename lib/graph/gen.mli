(** Generators for the graph families used across tests, examples, and the
    experiment harness.

    All generated graphs are finite, connected and simple, as required by
    the model (Section 1.1).  Unless stated otherwise, nodes carry the
    anonymous label [Label.Unit].  Deterministic families take no seed;
    random families take an explicit integer seed. *)

(** [cycle n] is the [n]-cycle [C_n] ([n >= 3]). *)
val cycle : int -> Graph.t

(** [path n] is the path on [n] nodes ([n >= 1]). *)
val path : int -> Graph.t

(** [complete n] is [K_n] ([n >= 1]). *)
val complete : int -> Graph.t

(** [star n] is the star with one hub and [n] leaves ([n >= 1]). *)
val star : int -> Graph.t

(** [wheel n] is a hub joined to every node of [C_n] ([n >= 3]). *)
val wheel : int -> Graph.t

(** [complete_bipartite a b] is [K_{a,b}] ([a, b >= 1]). *)
val complete_bipartite : int -> int -> Graph.t

(** [grid w h] is the [w x h] grid ([w, h >= 1], [w * h >= 1]). *)
val grid : int -> int -> Graph.t

(** [torus w h] is the [w x h] torus ([w, h >= 3]). *)
val torus : int -> int -> Graph.t

(** [hypercube d] is the [d]-dimensional hypercube ([0 <= d <= 20]). *)
val hypercube : int -> Graph.t

(** [petersen ()] is the Petersen graph. *)
val petersen : unit -> Graph.t

(** [binary_tree depth] is the complete binary tree with [depth] levels
    ([depth >= 1]). *)
val binary_tree : int -> Graph.t

(** [random_tree ~seed n] is a uniform random labeled-shape tree on [n]
    nodes ([n >= 1]), via a random Prüfer-like attachment process. *)
val random_tree : seed:int -> int -> Graph.t

(** [random_connected ~seed n p] samples G(n, p) and, if disconnected, adds
    uniformly chosen edges between components until connected ([n >= 1],
    [0 <= p <= 1]).  Sampling draws geometric skips over the ordered pair
    space — O(n + edges) work, not O(n^2) — and streams edges straight
    into a {!Graph.Builder}, so million-node sparse graphs build in one
    pass. *)
val random_connected : seed:int -> int -> float -> Graph.t

(** [random_regular ~seed n d] samples a connected [d]-regular graph on [n]
    nodes by the pairing model: stubs are shuffled and paired, and the
    expected-O(d^2) self-loops/duplicate pairs are repaired by random edge
    swaps (restart-until-simple has success probability ~exp(-(d^2-1)/4)
    per shuffle, unusable beyond small d).  A full restart only happens on
    swap-budget exhaustion or a disconnected result.
    @raise Invalid_argument if [n * d] is odd or [d >= n]. *)
val random_regular : seed:int -> int -> int -> Graph.t

(** [random_hamiltonian ~seed n p] is the cycle [0 .. n-1] plus each chord
    independently with probability [p] ([n >= 3]).  Useful as a lift base:
    unlike trees (whose lifts are never connected), Hamiltonian graphs
    admit connected lifts. *)
val random_hamiltonian : seed:int -> int -> float -> Graph.t

(** [circulant n offsets] is the circulant graph: node [v] adjacent to
    [v ± o mod n] for each offset [o].  Circulants are vertex-transitive,
    so the unlabeled circulant has a single view class — the maximal view
    collapse ([|V✱| = 1] needs... a single class), making them the
    canonical hard inputs for anonymous computation.
    @raise Invalid_argument on empty or out-of-range offsets, or if the
    result is disconnected. *)
val circulant : int -> int list -> Graph.t

(** [lollipop clique tail] is [K_clique] with a [tail]-node path attached
    ([clique >= 3], [tail >= 1]) — highly asymmetric, every node its own
    view class. *)
val lollipop : int -> int -> Graph.t

(** [caterpillar ~seed n] is a random caterpillar tree: a path spine with
    random legs, [n >= 2] nodes total. *)
val caterpillar : seed:int -> int -> Graph.t

(** [barbell k] is two [K_k] cliques joined by a single edge
    ([k >= 3]) — symmetric across the bridge: exactly the kind of
    mirror symmetry views cannot break. *)
val barbell : int -> Graph.t

(** [c6_figure1 ()] is the labeled 6-cycle of Figure 1 of the paper: nodes
    [u0..u5] colored with the 2-hop coloring (1, 2, 3, 1, 2, 3) — colors
    rendered as integer labels. *)
val c6_figure1 : unit -> Graph.t

(** [label_with_ints g] relabels [g] so node [v] gets [Label.Int v] — a
    convenient unique labeling for factor-graph demonstrations. *)
val label_with_ints : Graph.t -> Graph.t
