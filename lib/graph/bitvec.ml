(* Packed bit vectors over [Bytes] — the flat representation of "one random
   bit per node per round".  Compared to [bool array] this is 8x denser and
   copies with [Bytes.blit]; compared to [Bits.t] (a '0'/'1' string) it is
   mutable, so search loops can fill one preallocated vector per round
   instead of allocating per state.  Little-endian within a byte: bit [i]
   lives in byte [i lsr 3] at weight [1 lsl (i land 7)]. *)

type t = {
  len : int;
  data : Bytes.t;
}

let bytes_for len = (len + 7) lsr 3

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; data = Bytes.make (bytes_for len) '\000' }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec.get: out of bounds";
  Char.code (Bytes.unsafe_get t.data (i lsr 3)) lsr (i land 7) land 1 = 1

(* Bounds-unchecked variant for loops that already know the range. *)
let unsafe_get t i =
  Char.code (Bytes.unsafe_get t.data (i lsr 3)) lsr (i land 7) land 1 = 1

let set t i b =
  if i < 0 || i >= t.len then invalid_arg "Bitvec.set: out of bounds";
  let j = i lsr 3 in
  let mask = 1 lsl (i land 7) in
  let c = Char.code (Bytes.unsafe_get t.data j) in
  Bytes.unsafe_set t.data j
    (Char.unsafe_chr (if b then c lor mask else c land lnot mask))

let unsafe_set t i b =
  let j = i lsr 3 in
  let mask = 1 lsl (i land 7) in
  let c = Char.code (Bytes.unsafe_get t.data j) in
  Bytes.unsafe_set t.data j
    (Char.unsafe_chr (if b then c lor mask else c land lnot mask))

let clear t = Bytes.fill t.data 0 (Bytes.length t.data) '\000'

let copy t = { len = t.len; data = Bytes.copy t.data }

let blit ~src ~dst =
  if src.len <> dst.len then invalid_arg "Bitvec.blit: length mismatch";
  Bytes.blit src.data 0 dst.data 0 (Bytes.length src.data)

let of_bool_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i b -> if b then unsafe_set t i true) a;
  t

let to_bool_array t = Array.init t.len (fun i -> unsafe_get t i)

let equal a b = a.len = b.len && Bytes.equal a.data b.data

(* The padding bits above [len] are kept zero by construction, so the raw
   bytes are a canonical key for hashing/dedup. *)
let hash t = Hashtbl.hash t.data

let pp fmt t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char fmt (if unsafe_get t i then '1' else '0')
  done
