(** Compact textual graph specs, e.g. [cycle:6], [petersen],
    [random:10,0.3,7], [gnp:1000000,8,1], [grid:3x4], [file:PATH].  One
    grammar shared by every frontend — the CLI subcommands and the wire
    layer's job specs parse through this module, so a graph description
    means the same thing locally and over a socket.  [gnp:n,avgdeg,seed]
    is connected G(n, p) parameterized by average degree rather than p —
    the natural knob for huge sparse ensembles. *)

(** [graph spec] builds the described graph.
    @raise Failure on an unknown or malformed spec. *)
val graph : string -> Graph.t
