(** Labeled graphs with port numbering.

    A graph is finite, simple (undirected, no loops, no parallel edges) and
    labeled: every node [v] carries a label [label g v].  Following the
    message-passing model of Section 1.1, every node distinguishes the ports
    corresponding to its incident edges: the neighbors of [v] are an ordered
    array, and port [j] of [v] is the edge to [neighbor g v j].

    Nodes are identified by dense integers [0 .. n-1] {e for the purposes of
    this library's bookkeeping only} — the simulated algorithms never see
    node identities, only labels, degrees and ports. *)

type t

(** {2 Construction} *)

(** Streaming construction.  A builder accepts edges one at a time — O(1)
    amortized per edge, two flat int arrays of endpoints, no intermediate
    list and no per-edge hashing — and [build] assembles the CSR adjacency
    in two passes (degree count, prefix-sum scatter) followed by a per-node
    sort that yields canonical ports and detects duplicates as adjacent
    equal entries.  This is the only construction path: [create] is a thin
    wrapper that drains its edge list into a builder.  Validation errors
    raise [Invalid_argument] with the same ["Graph.create: ..."] messages
    as {!create}, and the message string is formatted only on failure. *)
module Builder : sig
  type builder

  (** [create ~n ()] starts a builder for a graph on nodes [0..n-1].
      [edges_hint] presizes the endpoint arrays (they grow by doubling
      regardless).
      @raise Invalid_argument if [n < 0]. *)
  val create : ?edges_hint:int -> n:int -> unit -> builder

  (** [add_edge b u v] records the undirected edge [(u, v)].
      @raise Invalid_argument on out-of-range endpoints or a self-loop
      (duplicates are detected at {!build} time). *)
  val add_edge : builder -> int -> int -> unit

  (** [edges_added b] is the number of edges recorded so far. *)
  val edges_added : builder -> int

  (** [build b ~labels] assembles the graph.  The builder stays usable.
      @raise Invalid_argument on duplicate edges or a label array of the
      wrong length. *)
  val build : builder -> labels:Label.t array -> t

  (** [build_unlabeled b] is [build] with all labels [Label.Unit]. *)
  val build_unlabeled : builder -> t
end

(** [create ~n ~edges ~labels] builds a graph on nodes [0..n-1].
    Ports are assigned canonically: the neighbors of each node are sorted by
    node index.  Self-loops and duplicate edges are rejected.
    @raise Invalid_argument on loops, duplicates, out-of-range endpoints, or
    a label array of the wrong length. *)
val create : n:int -> edges:(int * int) list -> labels:Label.t array -> t

(** [unlabeled ~n ~edges] is [create] with all labels [Label.Unit]. *)
val unlabeled : n:int -> edges:(int * int) list -> t

(** [relabel g f] is [g] with node [v] relabeled to [f v]. *)
val relabel : t -> (int -> Label.t) -> t

(** [with_labels g labels] replaces the whole labeling.
    @raise Invalid_argument if the array length differs from [n g]. *)
val with_labels : t -> Label.t array -> t

(** [map_labels g f] applies [f] to every label. *)
val map_labels : t -> (Label.t -> Label.t) -> t

(** [zip_labels g extra] pairs each node's label with [extra.(v)], producing
    the composite labeling [<l(v), extra(v)>] of Section 1.1. *)
val zip_labels : t -> Label.t array -> t

(** [permute_ports g perms] renumbers ports: the new port [j] of node [v]
    is the old port [perms.(v).(j)].  Each [perms.(v)] must be a permutation
    of [0 .. degree g v - 1].
    @raise Invalid_argument otherwise. *)
val permute_ports : t -> int array array -> t

(** {2 Accessors} *)

(** [id g] is a process-unique identity token: every construction — including
    the functional updates [relabel], [with_labels], [map_labels],
    [zip_labels] and [permute_ports] — returns a graph with a fresh id.
    Structurally equal graphs built separately have {e distinct} ids.  Meant
    for identity-keyed caches (see {!Encode.canonical}); it carries no
    structural information and the simulated algorithms never see it. *)
val id : t -> int

val n : t -> int

val num_edges : t -> int

val degree : t -> int -> int

val max_degree : t -> int

(** [neighbor g v j] is the node at port [j] of [v]. *)
val neighbor : t -> int -> int -> int

(** [neighbors g v] is the ordered neighbor array of [v].  The array is a
    fresh copy of the node's CSR slice; prefer {!iter_neighbors},
    {!fold_neighbors} or the raw {!offsets}/{!adjacency} pair on hot
    paths — this accessor allocates. *)
val neighbors : t -> int -> int array

(** {2 Flat (CSR) access}

    The adjacency is stored as one [offsets] array (length [n + 1]) plus
    one flat [adjacency] array: port [p] of node [v] is
    [(adjacency g).(​(offsets g).(v) + p)], and [(offsets g).(n g)] is the
    total number of directed edge slots.  Both arrays are the graph's own
    storage — do not mutate them. *)

(** [offsets g] is the CSR offset array, length [n g + 1] (do not mutate). *)
val offsets : t -> int array

(** [adjacency g] is the flat neighbor array (do not mutate). *)
val adjacency : t -> int array

(** [ports_sorted g] holds iff every node's ports are sorted by neighbor
    index — true for every constructed graph, possibly false after
    {!permute_ports}.  Sorted graphs answer {!port_to}/{!has_edge} by
    binary search. *)
val ports_sorted : t -> bool

(** [iter_neighbors g v ~f] applies [f] to each neighbor of [v] in port
    order, without allocating. *)
val iter_neighbors : t -> int -> f:(int -> unit) -> unit

(** [fold_neighbors g v ~init ~f] folds [f] over the neighbors of [v] in
    port order, without allocating. *)
val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

(** [port_to g v u] is the port of [v] leading to [u].
    @raise Not_found if [u] is not a neighbor of [v]. *)
val port_to : t -> int -> int -> int

val label : t -> int -> Label.t

val labels : t -> Label.t array

(** [has_edge g u v] holds iff [(u, v)] is an edge. *)
val has_edge : t -> int -> int -> bool

(** [edges g] lists every edge once, as [(u, v)] with [u < v]. *)
val edges : t -> (int * int) list

val fold_nodes : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val iter_nodes : t -> f:(int -> unit) -> unit

val iter_edges : t -> f:(int -> int -> unit) -> unit

val pp : Format.formatter -> t -> unit
