(** Structural predicates and measures on labeled graphs. *)

(** [is_connected g] holds iff [g] is connected (the empty graph is). *)
val is_connected : Graph.t -> bool

(** [bfs_distances g v] is the array of hop distances from [v];
    unreachable nodes get [max_int]. *)
val bfs_distances : Graph.t -> int -> int array

(** [diameter g] is the largest finite hop distance.
    @raise Invalid_argument if [g] is disconnected or empty. *)
val diameter : Graph.t -> int

(** [k_hop_neighbors g v k] is the sorted list of nodes at distance
    [1 .. k] from [v] (excluding [v] itself). *)
val k_hop_neighbors : Graph.t -> int -> int -> int list

(** [is_k_hop_coloring g k labeling] checks the defining property of
    Section 1.1: any two distinct nodes at distance at most [k] have
    different labels under [labeling]. *)
val is_k_hop_coloring : Graph.t -> int -> (int -> Label.t) -> bool

(** [is_two_hop_colored g] checks that [g]'s own labeling is a 2-hop
    coloring. *)
val is_two_hop_colored : Graph.t -> bool

(** [distinct_labels g] is the number of distinct labels in [g]. *)
val distinct_labels : Graph.t -> int

(** [degree_histogram g] maps each occurring degree to its multiplicity,
    as a sorted association list. *)
val degree_histogram : Graph.t -> (int * int) list
