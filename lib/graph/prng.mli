(** Deterministic pseudo-random number generator (splitmix64).

    The whole library avoids OCaml's global [Random] state so that every
    randomized run is reproducible from an explicit integer seed: random
    graph generators, random tapes, and the Las-Vegas harness all thread a
    [Prng.t] explicitly. *)

type t

(** [create seed] makes a generator; equal seeds give equal streams. *)
val create : int -> t

(** [bool t] draws one fair bit. *)
val bool : t -> bool

(** [int t bound] draws a uniform integer in [0 .. bound-1].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [bits64 t] draws 64 fresh bits. *)
val bits64 : t -> int64

(** [float t] draws a uniform float in [0, 1) (53 bits of precision). *)
val float : t -> float

(** [hash2 a b] mixes two integers into one non-negative integer with full
    avalanche (splitmix finalizer applied to both words) — for deriving
    independent seeds from [(seed, index)] pairs. *)
val hash2 : int -> int -> int

(** [split t] derives an independent generator (for per-node streams). *)
val split : t -> t

(** [shuffle t arr] permutes [arr] in place, uniformly. *)
val shuffle : t -> 'a array -> unit
