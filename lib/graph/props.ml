let bfs_distances g v =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(v) <- 0;
  Queue.add v queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u ~f:(fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(u) + 1;
          Queue.add w queue
        end)
  done;
  dist

let is_connected g =
  let n = Graph.n g in
  n = 0 || Array.for_all (fun d -> d < max_int) (bfs_distances g 0)

let diameter g =
  if Graph.n g = 0 then invalid_arg "Props.diameter: empty graph";
  let diam = ref 0 in
  Graph.iter_nodes g ~f:(fun v ->
      Array.iter
        (fun d ->
          if d = max_int then invalid_arg "Props.diameter: disconnected graph";
          if d > !diam then diam := d)
        (bfs_distances g v));
  !diam

let k_hop_neighbors g v k =
  let dist = bfs_distances g v in
  Graph.fold_nodes g ~init:[] ~f:(fun acc u ->
      if u <> v && dist.(u) <= k then u :: acc else acc)
  |> List.sort Int.compare

let is_k_hop_coloring g k labeling =
  let ok = ref true in
  Graph.iter_nodes g ~f:(fun v ->
      List.iter
        (fun u -> if Label.equal (labeling u) (labeling v) then ok := false)
        (k_hop_neighbors g v k));
  !ok

let is_two_hop_colored g = is_k_hop_coloring g 2 (Graph.label g)

let distinct_labels g =
  let seen = Hashtbl.create 16 in
  Graph.iter_nodes g ~f:(fun v ->
      Hashtbl.replace seen (Label.encode (Graph.label g v)) ());
  Hashtbl.length seen

let degree_histogram g =
  let table = Hashtbl.create 8 in
  Graph.iter_nodes g ~f:(fun v ->
      let d = Graph.degree g v in
      let c = Option.value ~default:0 (Hashtbl.find_opt table d) in
      Hashtbl.replace table d (c + 1));
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
