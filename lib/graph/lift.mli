(** Graph lifts (covering graphs / products).

    A [k]-lift of a base graph [G] replaces every node [v] by [k] copies
    [(v, 0) .. (v, k-1)] and every edge [(u, v)] by a perfect matching
    between the copies of [u] and the copies of [v], described by a
    permutation of [0 .. k-1].  Labels are pulled back from the base.

    The projection [(v, i) -> v] is a factorizing map in the sense of
    Section 2.3.1 (surjective, label-respecting, a local isomorphism), so
    every lift is a product of its base — lifts are how tests and
    experiments manufacture non-prime graphs with known factors
    (cf. Figure 2 and the lifting lemma [5, 12]). *)

type t = {
  graph : Graph.t;  (** the lifted graph; node [(v, i)] has index [i * n + v] *)
  map : int array;  (** the covering (factorizing) map onto the base *)
  base : Graph.t;
}

(** [make base ~k ~perm] builds the [k]-lift where edge [(u, v)] (with
    [u < v]) uses the permutation [perm (u, v)]: copy [(u, i)] is joined to
    [(v, (perm (u, v)).(i))].
    @raise Invalid_argument if some [perm e] is not a permutation of
    [0 .. k-1]. *)
val make : Graph.t -> k:int -> perm:(int * int -> int array) -> t

(** [identity base ~k] is the trivial lift: [k] disjoint copies. *)
val identity : Graph.t -> k:int -> t

(** [cyclic base ~k ~shift] uses the rotation [i -> (i + shift (u, v)) mod k]
    on every edge. *)
val cyclic : Graph.t -> k:int -> shift:(int * int -> int) -> t

(** [random ~seed base ~k] draws each edge permutation uniformly and retries
    until the lift is connected.  A connected lift requires the base to
    contain cycles — every lift of a tree is a forest with [k] times the
    nodes but fewer than the required edges, hence disconnected — so use
    bases such as {!Gen.random_hamiltonian}, cycles, or other non-trees.
    @raise Failure after 10000 disconnected attempts (e.g. on tree bases). *)
val random : seed:int -> Graph.t -> k:int -> t

(** [c12_over_c6 ()] reconstructs the product chain of Figure 2: returns
    the 2-lift of the labeled 6-cycle that is a 12-cycle, together with its
    factorizing map.  The base carries the 2-hop coloring (1, 2, 3, ...) of
    the figure. *)
val c12_over_c6 : unit -> t

(** [c6_over_c3 ()] is Figure 2's inner product: the labeled 6-cycle as a
    2-lift of the labeled triangle. *)
val c6_over_c3 : unit -> t
