let parse_ints s = List.map int_of_string (String.split_on_char ',' s)

let graph spec =
  let fail () = failwith (Printf.sprintf "unknown graph spec %S" spec) in
  match String.split_on_char ':' spec with
  | [ "file"; path ] -> Graph_io.load path
  | [ "petersen" ] -> Gen.petersen ()
  | [ "cycle"; n ] -> Gen.cycle (int_of_string n)
  | [ "path"; n ] -> Gen.path (int_of_string n)
  | [ "complete"; n ] -> Gen.complete (int_of_string n)
  | [ "star"; n ] -> Gen.star (int_of_string n)
  | [ "wheel"; n ] -> Gen.wheel (int_of_string n)
  | [ "hypercube"; d ] -> Gen.hypercube (int_of_string d)
  | [ "bintree"; d ] -> Gen.binary_tree (int_of_string d)
  | [ "grid"; wh ] | [ "torus"; wh ] -> begin
      match String.split_on_char 'x' wh with
      | [ w; h ] ->
        let w = int_of_string w and h = int_of_string h in
        if String.length spec > 0 && spec.[0] = 'g' then Gen.grid w h
        else Gen.torus w h
      | _ -> fail ()
    end
  | [ "random"; args ] -> begin
      match String.split_on_char ',' args with
      | [ n; p; seed ] ->
        Gen.random_connected ~seed:(int_of_string seed) (int_of_string n)
          (float_of_string p)
      | _ -> fail ()
    end
  | [ "gnp"; args ] -> begin
      (* G(n, p) parameterized by average degree instead of p — the
         natural knob for huge sparse ensembles, where writing p itself
         (e.g. 8e-6 at n = 10^6) invites precision slips. *)
      match String.split_on_char ',' args with
      | [ n; deg; seed ] ->
        let n = int_of_string n in
        let p =
          if n <= 1 then 0.0 else float_of_string deg /. float_of_int (n - 1)
        in
        Gen.random_connected ~seed:(int_of_string seed) n p
      | _ -> fail ()
    end
  | [ "hamiltonian"; args ] -> begin
      match String.split_on_char ',' args with
      | [ n; p; seed ] ->
        Gen.random_hamiltonian ~seed:(int_of_string seed) (int_of_string n)
          (float_of_string p)
      | _ -> fail ()
    end
  | [ "regular"; args ] -> begin
      match parse_ints args with
      | [ n; d; seed ] -> Gen.random_regular ~seed n d
      | _ -> fail ()
    end
  | _ -> fail ()
