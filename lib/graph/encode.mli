(** Canonical finite encodings of labeled graphs.

    Section 3.1 orders finite view graphs by size and then by a canonical
    bitstring representation [s(G)] derived from a predetermined total
    order on the nodes.  [to_string] realizes [s(·)]: given a node order it
    encodes the node count, every node's label in order, and every edge as
    an ordered pair of ordinals — an injective encoding, so two graphs with
    compatible node orders are equal iff their encodings are. *)

(** [to_string g ~order] encodes [g] using the bijection
    [ordinal i -> node order.(i)].
    @raise Invalid_argument if [order] is not a permutation of the nodes. *)
val to_string : Graph.t -> order:int array -> string

(** [compare_sized (n1, s1) (n2, s2)] is the paper's order on encoded
    graphs: first by node count, then lexicographically by encoding. *)
val compare_sized : int * string -> int * string -> int

(** [canonical g] is [to_string g ~order:identity], memoized by {!Graph.id}.
    This is the encoding the [(size, encoding)] candidate order of
    Section 3.1 consumes; the cache makes repeated candidate comparisons of
    the same graph value O(1) after the first.  Domain-safe (mutex-guarded);
    entries are invalidation-free because ids are process-unique and never
    reused — at the size cap the least-recently-used quartile is evicted in
    one amortized scan (counted in {!cache_stats}[.evictions]), so the hot
    working set stays resident. *)
val canonical : Graph.t -> string

type cache_stats = {
  hits : int;  (** [canonical] calls answered from the cache *)
  misses : int;  (** [canonical] calls that encoded *)
  entries : int;  (** current table size *)
  evictions : int;  (** entries dropped at the size cap (LRU-quartile victims) *)
}

(** Process-lifetime totals for the {!canonical} cache (reported as
    [cache.encode.*] in the metrics registry, see
    {!Anonet_views.Interned.publish_metrics}). *)
val cache_stats : unit -> cache_stats
