(** Finite bitstrings.

    The paper represents node labels, random tapes, and candidate colors as
    finite bitstrings.  This module provides an immutable bitstring type with
    the total orders used throughout:

    - {!compare_lex}: plain lexicographic order (only meaningful between
      strings of equal length, but total on all strings);
    - {!compare}: length-first order (shorter strings come first, equal
      lengths compared lexicographically), matching the convention of
      Section 2.2 of the paper where assignments of smaller length [t]
      precede longer ones. *)

type t

val empty : t

val length : t -> int

val is_empty : t -> bool

(** [append b x] is [b] with bit [x] appended at the end. *)
val append : t -> bool -> t

(** [get b i] is the [i]-th bit of [b] (0-based).
    @raise Invalid_argument if [i] is out of bounds. *)
val get : t -> int -> bool

val of_list : bool list -> t

val to_list : t -> bool list

(** [of_string s] parses a string of ['0'] and ['1'] characters.
    @raise Invalid_argument on any other character. *)
val of_string : string -> t

(** [to_string b] renders [b] as a string of ['0'] and ['1'] characters. *)
val to_string : t -> string

(** [concat a b] is the concatenation of [a] followed by [b]. *)
val concat : t -> t -> t

(** [take b n] is the prefix of [b] of length [n].
    @raise Invalid_argument if [n > length b]. *)
val take : t -> int -> t

(** [is_prefix ~prefix b] holds iff [prefix] is a prefix of [b]. *)
val is_prefix : prefix:t -> t -> bool

(** Length-first total order: shorter strings are smaller; strings of equal
    length are compared lexicographically with [false < true]. *)
val compare : t -> t -> int

(** Plain lexicographic order on the underlying bit sequences, with the
    shorter string smaller when it is a prefix of the longer. *)
val compare_lex : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

(** [zero n] is the all-zero bitstring of length [n]. *)
val zero : int -> t

(** [of_int ~width x] is the [width]-bit big-endian encoding of [x].
    @raise Invalid_argument if [x] does not fit in [width] bits. *)
val of_int : width:int -> int -> t

(** [to_int b] decodes [b] as a big-endian natural number.
    @raise Invalid_argument if [length b > 62]. *)
val to_int : t -> int

(** [enumerate n] is the sequence of all [2^n] bitstrings of length [n] in
    lexicographic (equivalently, big-endian numeric) order. *)
val enumerate : int -> t Seq.t

val pp : Format.formatter -> t -> unit
