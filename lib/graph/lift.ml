type t = {
  graph : Graph.t;
  map : int array;
  base : Graph.t;
}

let check_perm ~k p =
  if Array.length p <> k then invalid_arg "Lift.make: permutation of wrong size";
  let hit = Array.make k false in
  Array.iter
    (fun j ->
      if j < 0 || j >= k || hit.(j) then invalid_arg "Lift.make: not a permutation";
      hit.(j) <- true)
    p

let make base ~k ~perm =
  if k < 1 then invalid_arg "Lift.make: need k >= 1";
  let n = Graph.n base in
  let node v i = (i * n) + v in
  let edges = ref [] in
  let add_edge (u, v) =
    let p = perm (u, v) in
    check_perm ~k p;
    for i = 0 to k - 1 do
      edges := (node u i, node v p.(i)) :: !edges
    done
  in
  Graph.iter_edges base ~f:(fun u v -> add_edge (u, v));
  let labels = Array.init (n * k) (fun x -> Graph.label base (x mod n)) in
  let graph = Graph.create ~n:(n * k) ~edges:!edges ~labels in
  let map = Array.init (n * k) (fun x -> x mod n) in
  { graph; map; base }

let identity base ~k = make base ~k ~perm:(fun _ -> Array.init k (fun i -> i))

let cyclic base ~k ~shift =
  make base ~k ~perm:(fun e ->
      let s = ((shift e mod k) + k) mod k in
      Array.init k (fun i -> (i + s) mod k))

let random ~seed base ~k =
  let rng = Prng.create seed in
  let attempt () =
    let draw _ =
      let p = Array.init k (fun i -> i) in
      Prng.shuffle rng p;
      p
    in
    (* Permutations must be consistent per call: memoize per edge. *)
    let table = Hashtbl.create 16 in
    let perm e =
      match Hashtbl.find_opt table e with
      | Some p -> p
      | None ->
        let p = draw e in
        Hashtbl.add table e p;
        p
    in
    make base ~k ~perm
  in
  let connected g =
    (* Local BFS; [Props] depends on nothing here, but avoid a cycle by
       inlining the check. *)
    let n = Graph.n g in
    if n = 0 then true
    else begin
      let seen = Array.make n false in
      let queue = Queue.create () in
      Queue.add 0 queue;
      seen.(0) <- true;
      let count = ref 1 in
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Array.iter
          (fun u ->
            if not seen.(u) then begin
              seen.(u) <- true;
              incr count;
              Queue.add u queue
            end)
          (Graph.neighbors g v)
      done;
      !count = n
    end
  in
  let rec retry i =
    if i > 10_000 then failwith "Lift.random: too many disconnected attempts";
    let l = attempt () in
    if connected l.graph then l else retry (i + 1)
  in
  retry 0

(* Figure 2: a single "twist" on one edge of the cyclic 2-lift of C_m yields
   the 2m-cycle; with zero twists the lift splits into two disjoint copies. *)
let twisted_double_cycle m =
  (* (v mod 3) + 1 is the 2-hop coloring of the figure; valid since 3 | m. *)
  let base = Graph.relabel (Gen.cycle m) (fun v -> Label.Int ((v mod 3) + 1)) in
  cyclic base ~k:2 ~shift:(fun (u, v) ->
      (* The wrap-around edge (0, m-1) twists; all others do not. *)
      if (u = 0 && v = m - 1) || (v = 0 && u = m - 1) then 1 else 0)

let c12_over_c6 () = twisted_double_cycle 6

let c6_over_c3 () = twisted_double_cycle 3
