let to_string g ~order =
  let n = Graph.n g in
  if Array.length order <> n then invalid_arg "Encode.to_string: wrong order length";
  let position = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n || position.(v) <> -1 then
        invalid_arg "Encode.to_string: not a permutation";
      position.(v) <- i)
    order;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n%d;" n);
  Array.iter
    (fun v -> Buffer.add_string buf (Label.encode (Graph.label g v) ^ ";"))
    order;
  let edges =
    List.map
      (fun (u, v) ->
        let a = position.(u) and b = position.(v) in
        min a b, max a b)
      (Graph.edges g)
    |> List.sort compare
  in
  List.iter (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "e%d,%d;" a b)) edges;
  Buffer.contents buf

let compare_sized (n1, s1) (n2, s2) =
  let c = Int.compare n1 n2 in
  if c <> 0 then c else String.compare s1 s2
