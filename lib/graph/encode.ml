(* Edges are encoded as ordered ordinal pairs; an explicit comparator keeps
   the hot sort monomorphic (no polymorphic-compare dispatch) and total even
   if the pair type ever grows non-comparable components. *)
let compare_edge (a1, b1) (a2, b2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c else Int.compare b1 b2

let to_string g ~order =
  let n = Graph.n g in
  if Array.length order <> n then invalid_arg "Encode.to_string: wrong order length";
  let position = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n || position.(v) <> -1 then
        invalid_arg "Encode.to_string: not a permutation";
      position.(v) <- i)
    order;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n%d;" n);
  Array.iter
    (fun v -> Buffer.add_string buf (Label.encode (Graph.label g v) ^ ";"))
    order;
  let edges =
    List.map
      (fun (u, v) ->
        let a = position.(u) and b = position.(v) in
        min a b, max a b)
      (Graph.edges g)
    |> List.sort compare_edge
  in
  List.iter (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "e%d,%d;" a b)) edges;
  Buffer.contents buf

let compare_sized (n1, s1) (n2, s2) =
  let c = Int.compare n1 n2 in
  if c <> 0 then c else String.compare s1 s2

(* The identity-order encoding, streamed straight off the CSR adjacency:
   with canonically sorted ports the traversal (v ascending, then ports
   ascending, keeping v < u) visits edges already in the lexicographic
   order [to_string] reaches by materializing and sorting the edge list —
   so the encoding of a million-node graph costs one buffer, no tuples.
   Byte-identical to [to_string ~order:identity]; graphs with permuted
   (unsorted) ports fall back to the sorting path. *)
let canonical_uncached g =
  let n = Graph.n g in
  if not (Graph.ports_sorted g) then
    to_string g ~order:(Array.init n (fun i -> i))
  else begin
    let buf = Buffer.create (16 * (n + 1)) in
    Buffer.add_char buf 'n';
    Buffer.add_string buf (string_of_int n);
    Buffer.add_char buf ';';
    for v = 0 to n - 1 do
      Buffer.add_string buf (Label.encode (Graph.label g v));
      Buffer.add_char buf ';'
    done;
    for v = 0 to n - 1 do
      Graph.iter_neighbors g v ~f:(fun u ->
          if v < u then begin
            Buffer.add_char buf 'e';
            Buffer.add_string buf (string_of_int v);
            Buffer.add_char buf ',';
            Buffer.add_string buf (string_of_int u);
            Buffer.add_char buf ';'
          end)
    done;
    Buffer.contents buf
  end

(* ---------- identity-keyed canonical-encoding cache ---------- *)

(* The candidate order of Section 3.1 re-encodes the same graph values many
   times ((size, encoding) comparisons in Candidates / A* / A∞).  Encoding is
   a pure function of the graph, so a cache keyed by Graph.id — process
   unique, never reused — can never go stale; the only policy needed is a
   size cap.  At the cap the least-recently-used {e quartile} is evicted in
   one scan (entries are stamped with a logical clock on every touch; the
   scan sorts by stamp and drops the oldest fourth).  Batch eviction keeps
   the hot working set resident — under the former epoch reset, a single
   insert past the cap forced every live candidate encoding to be
   recomputed — while amortizing the scan to O(log cap) per insert: graph
   ids are freshened at every candidate construction, so insert pressure is
   constant and a scan-per-insert policy would quadratically dominate the
   encode path.  The mutex makes the cache safe under the domain pool; the
   encoding itself is computed outside the lock, so a race at worst
   duplicates work. *)
type cache_entry = {
  enc : string;
  mutable stamp : int;  (* LRU clock tick of the last use; under the mutex *)
}

let cache : (int, cache_entry) Hashtbl.t = Hashtbl.create 256

let cache_mutex = Mutex.create ()

let cache_cap = 16_384

let cache_clock = ref 0

let cache_hits = Atomic.make 0

let cache_misses = Atomic.make 0

let cache_evictions = Atomic.make 0

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
}

let cache_stats () =
  Mutex.lock cache_mutex;
  let entries = Hashtbl.length cache in
  Mutex.unlock cache_mutex;
  {
    hits = Atomic.get cache_hits;
    misses = Atomic.get cache_misses;
    entries;
    evictions = Atomic.get cache_evictions;
  }

(* Must hold [cache_mutex]. *)
let evict_lru_locked () =
  let m = Hashtbl.length cache in
  if m > 0 then begin
    let arr = Array.make m (0, 0) in
    let i = ref 0 in
    Hashtbl.iter
      (fun key e ->
        arr.(!i) <- key, e.stamp;
        incr i)
      cache;
    Array.sort (fun (_, a) (_, b) -> Int.compare a b) arr;
    let drop = max 1 (m / 4) in
    for j = 0 to drop - 1 do
      Hashtbl.remove cache (fst arr.(j))
    done;
    ignore (Atomic.fetch_and_add cache_evictions drop)
  end

let canonical g =
  let key = Graph.id g in
  Mutex.lock cache_mutex;
  let cached =
    match Hashtbl.find_opt cache key with
    | Some e ->
      incr cache_clock;
      e.stamp <- !cache_clock;
      Some e.enc
    | None -> None
  in
  Mutex.unlock cache_mutex;
  match cached with
  | Some s ->
    Atomic.incr cache_hits;
    s
  | None ->
    Atomic.incr cache_misses;
    let s = canonical_uncached g in
    Mutex.lock cache_mutex;
    if not (Hashtbl.mem cache key) then begin
      if Hashtbl.length cache >= cache_cap then evict_lru_locked ();
      incr cache_clock;
      Hashtbl.replace cache key { enc = s; stamp = !cache_clock }
    end;
    Mutex.unlock cache_mutex;
    s
