(* Edges are encoded as ordered ordinal pairs; an explicit comparator keeps
   the hot sort monomorphic (no polymorphic-compare dispatch) and total even
   if the pair type ever grows non-comparable components. *)
let compare_edge (a1, b1) (a2, b2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c else Int.compare b1 b2

let to_string g ~order =
  let n = Graph.n g in
  if Array.length order <> n then invalid_arg "Encode.to_string: wrong order length";
  let position = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n || position.(v) <> -1 then
        invalid_arg "Encode.to_string: not a permutation";
      position.(v) <- i)
    order;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n%d;" n);
  Array.iter
    (fun v -> Buffer.add_string buf (Label.encode (Graph.label g v) ^ ";"))
    order;
  let edges =
    List.map
      (fun (u, v) ->
        let a = position.(u) and b = position.(v) in
        min a b, max a b)
      (Graph.edges g)
    |> List.sort compare_edge
  in
  List.iter (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "e%d,%d;" a b)) edges;
  Buffer.contents buf

let compare_sized (n1, s1) (n2, s2) =
  let c = Int.compare n1 n2 in
  if c <> 0 then c else String.compare s1 s2

(* ---------- identity-keyed canonical-encoding cache ---------- *)

(* The candidate order of Section 3.1 re-encodes the same graph values many
   times ((size, encoding) comparisons in Candidates / A* / A∞).  Encoding is
   a pure function of the graph, so a cache keyed by Graph.id — process
   unique, never reused — can never go stale; the only policy needed is a
   size cap.  When the table reaches [cache_cap] entries it is reset
   wholesale (epoch invalidation): ids are never reused, so a reset only
   costs recomputation, never correctness.  The mutex makes the cache safe
   under the domain pool; the encoding itself is computed outside the lock,
   so a race at worst duplicates work. *)
let cache : (int, string) Hashtbl.t = Hashtbl.create 256

let cache_mutex = Mutex.create ()

let cache_cap = 16_384

let cache_hits = Atomic.make 0

let cache_misses = Atomic.make 0

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
}

let cache_stats () =
  Mutex.lock cache_mutex;
  let entries = Hashtbl.length cache in
  Mutex.unlock cache_mutex;
  { hits = Atomic.get cache_hits; misses = Atomic.get cache_misses; entries }

let canonical g =
  let key = Graph.id g in
  Mutex.lock cache_mutex;
  let cached = Hashtbl.find_opt cache key in
  Mutex.unlock cache_mutex;
  match cached with
  | Some s ->
    Atomic.incr cache_hits;
    s
  | None ->
    Atomic.incr cache_misses;
    let s = to_string g ~order:(Array.init (Graph.n g) (fun i -> i)) in
    Mutex.lock cache_mutex;
    if Hashtbl.length cache >= cache_cap then Hashtbl.reset cache;
    Hashtbl.replace cache key s;
    Mutex.unlock cache_mutex;
    s
