let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.unlabeled ~n ~edges:(List.init n (fun i -> i, (i + 1) mod n))

let path n =
  if n < 1 then invalid_arg "Gen.path: need n >= 1";
  Graph.unlabeled ~n ~edges:(List.init (n - 1) (fun i -> i, i + 1))

let complete n =
  if n < 1 then invalid_arg "Gen.complete: need n >= 1";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.unlabeled ~n ~edges:!edges

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  Graph.unlabeled ~n:(n + 1) ~edges:(List.init n (fun i -> 0, i + 1))

let wheel n =
  if n < 3 then invalid_arg "Gen.wheel: need n >= 3";
  let rim = List.init n (fun i -> 1 + i, 1 + ((i + 1) mod n)) in
  let spokes = List.init n (fun i -> 0, 1 + i) in
  Graph.unlabeled ~n:(n + 1) ~edges:(rim @ spokes)

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Gen.complete_bipartite: need sides >= 1";
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = 0 to b - 1 do
      edges := (u, a + v) :: !edges
    done
  done;
  Graph.unlabeled ~n:(a + b) ~edges:!edges

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Gen.grid: need w, h >= 1";
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then edges := (id x y, id (x + 1) y) :: !edges;
      if y + 1 < h then edges := (id x y, id x (y + 1)) :: !edges
    done
  done;
  Graph.unlabeled ~n:(w * h) ~edges:!edges

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Gen.torus: need w, h >= 3";
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      edges := (id x y, id ((x + 1) mod w) y) :: !edges;
      edges := (id x y, id x ((y + 1) mod h)) :: !edges
    done
  done;
  Graph.unlabeled ~n:(w * h) ~edges:!edges

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Gen.hypercube: need 0 <= d <= 20";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for i = 0 to d - 1 do
      let u = v lxor (1 lsl i) in
      if v < u then edges := (v, u) :: !edges
    done
  done;
  Graph.unlabeled ~n ~edges:!edges

let petersen () =
  (* Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5. *)
  let outer = List.init 5 (fun i -> i, (i + 1) mod 5) in
  let inner = List.init 5 (fun i -> 5 + i, 5 + ((i + 2) mod 5)) in
  let spokes = List.init 5 (fun i -> i, i + 5) in
  Graph.unlabeled ~n:10 ~edges:(outer @ inner @ spokes)

let binary_tree depth =
  if depth < 1 then invalid_arg "Gen.binary_tree: need depth >= 1";
  let n = (1 lsl depth) - 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := ((v - 1) / 2, v) :: !edges
  done;
  Graph.unlabeled ~n ~edges:!edges

let random_tree ~seed n =
  if n < 1 then invalid_arg "Gen.random_tree: need n >= 1";
  let rng = Prng.create seed in
  (* Attach node v to a uniformly random earlier node: uniform over
     increasing trees, which covers all tree shapes. *)
  let edges = List.init (n - 1) (fun i -> i + 1, Prng.int rng (i + 1)) in
  Graph.unlabeled ~n ~edges

(* Union-find for connectivity patch-up in [random_connected]. *)
module Uf = struct
  let create n = Array.init n (fun i -> i)

  let rec find t x = if t.(x) = x then x else (t.(x) <- find t t.(x); t.(x))

  let union t x y =
    let rx = find t x and ry = find t y in
    if rx <> ry then t.(rx) <- ry

  let same t x y = find t x = find t y
end

let random_connected ~seed n p =
  if n < 1 then invalid_arg "Gen.random_connected: need n >= 1";
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.random_connected: need p in [0, 1]";
  let rng = Prng.create seed in
  let uf = Uf.create n in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let x = float_of_int (Prng.int rng 1_000_000) /. 1_000_000.0 in
      if x < p then begin
        edges := (u, v) :: !edges;
        Uf.union uf u v
      end
    done
  done;
  (* Patch connectivity: repeatedly join two random nodes from different
     components. *)
  let rec connect () =
    let roots = ref [] in
    for v = 0 to n - 1 do
      if Uf.find uf v = v then roots := v :: !roots
    done;
    match !roots with
    | [] | [ _ ] -> ()
    | _ ->
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v && not (Uf.same uf u v) then begin
        edges := ((min u v, max u v)) :: !edges;
        Uf.union uf u v
      end;
      connect ()
  in
  connect ();
  Graph.unlabeled ~n ~edges:!edges

let random_regular ~seed n d =
  if d >= n || d < 1 then invalid_arg "Gen.random_regular: need 1 <= d < n";
  if n * d mod 2 <> 0 then invalid_arg "Gen.random_regular: n * d must be even";
  let rng = Prng.create seed in
  (* Pairing model: n*d stubs, match uniformly, restart on loops/doubles or
     disconnectedness.  Expected O(1) restarts for modest n, d. *)
  let attempt () =
    let stubs = Array.init (n * d) (fun i -> i / d) in
    Prng.shuffle rng stubs;
    let seen = Hashtbl.create (n * d) in
    let uf = Uf.create n in
    let ok = ref true in
    let edges = ref [] in
    let m = n * d / 2 in
    for i = 0 to m - 1 do
      let u = stubs.(2 * i) and v = stubs.((2 * i) + 1) in
      let e = min u v, max u v in
      if u = v || Hashtbl.mem seen e then ok := false
      else begin
        Hashtbl.add seen e ();
        Uf.union uf u v;
        edges := e :: !edges
      end
    done;
    let connected =
      let r = Uf.find uf 0 in
      let all = ref true in
      for v = 1 to n - 1 do
        if Uf.find uf v <> r then all := false
      done;
      !all
    in
    if !ok && connected then Some !edges else None
  in
  let rec retry k =
    if k > 10_000 then failwith "Gen.random_regular: too many restarts";
    match attempt () with
    | Some edges -> Graph.unlabeled ~n ~edges
    | None -> retry (k + 1)
  in
  retry 0

let random_hamiltonian ~seed n p =
  if n < 3 then invalid_arg "Gen.random_hamiltonian: need n >= 3";
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.random_hamiltonian: need p in [0, 1]";
  let rng = Prng.create seed in
  let cycle_edges = List.init n (fun i -> i, (i + 1) mod n) in
  let chords = ref [] in
  for u = 0 to n - 1 do
    for v = u + 2 to n - 1 do
      let adjacent_on_cycle = (u = 0 && v = n - 1) || v = u + 1 in
      let x = float_of_int (Prng.int rng 1_000_000) /. 1_000_000.0 in
      if (not adjacent_on_cycle) && x < p then chords := (u, v) :: !chords
    done
  done;
  Graph.unlabeled ~n ~edges:(cycle_edges @ !chords)

let circulant n offsets =
  if n < 3 then invalid_arg "Gen.circulant: need n >= 3";
  if offsets = [] then invalid_arg "Gen.circulant: need at least one offset";
  List.iter
    (fun o ->
      if o < 1 || 2 * o > n then
        invalid_arg "Gen.circulant: offsets must satisfy 1 <= o <= n/2")
    offsets;
  let offsets = List.sort_uniq Int.compare offsets in
  let edges = ref [] in
  List.iter
    (fun o ->
      for v = 0 to n - 1 do
        let u = (v + o) mod n in
        let e = min v u, max v u in
        if not (List.mem e !edges) then edges := e :: !edges
      done)
    offsets;
  let g = Graph.unlabeled ~n ~edges:!edges in
  (* connectivity check without depending on Props (layering) *)
  let seen = Array.make n false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  seen.(0) <- true;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun u ->
        if not seen.(u) then begin
          seen.(u) <- true;
          incr count;
          Queue.add u queue
        end)
      (Graph.neighbors g v)
  done;
  if !count <> n then invalid_arg "Gen.circulant: disconnected (gcd of offsets and n > 1)";
  g

let lollipop clique tail =
  if clique < 3 then invalid_arg "Gen.lollipop: need clique >= 3";
  if tail < 1 then invalid_arg "Gen.lollipop: need tail >= 1";
  let n = clique + tail in
  let clique_edges = ref [] in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      clique_edges := (u, v) :: !clique_edges
    done
  done;
  let tail_edges = List.init tail (fun i -> clique - 1 + i, clique + i) in
  Graph.unlabeled ~n ~edges:(!clique_edges @ tail_edges)

let caterpillar ~seed n =
  if n < 2 then invalid_arg "Gen.caterpillar: need n >= 2";
  let rng = Prng.create seed in
  let spine = max 2 (n / 2) in
  let spine_edges = List.init (spine - 1) (fun i -> i, i + 1) in
  let leg_edges =
    List.init (n - spine) (fun i -> Prng.int rng spine, spine + i)
  in
  Graph.unlabeled ~n ~edges:(spine_edges @ leg_edges)

let barbell k =
  if k < 3 then invalid_arg "Gen.barbell: need k >= 3";
  let clique base =
    let edges = ref [] in
    for u = 0 to k - 1 do
      for v = u + 1 to k - 1 do
        edges := (base + u, base + v) :: !edges
      done
    done;
    !edges
  in
  Graph.unlabeled ~n:(2 * k) ~edges:((k - 1, k) :: (clique 0 @ clique k))

let c6_figure1 () =
  Graph.relabel (cycle 6) (fun v -> Label.Int ((v mod 3) + 1))

let label_with_ints g = Graph.relabel g (fun v -> Label.Int v)
