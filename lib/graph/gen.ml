(* Every generator streams its edges straight into a [Graph.Builder] —
   no intermediate edge list, so the peak footprint of a generated graph
   is the builder's two endpoint arrays plus the final CSR.  [build]
   wraps the common create/emit/finish cycle. *)
let build ?edges_hint ~n emit =
  let b = Graph.Builder.create ?edges_hint ~n () in
  emit (fun u v -> Graph.Builder.add_edge b u v);
  Graph.Builder.build_unlabeled b

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  build ~edges_hint:n ~n (fun e ->
      for i = 0 to n - 1 do
        e i ((i + 1) mod n)
      done)

let path n =
  if n < 1 then invalid_arg "Gen.path: need n >= 1";
  build ~edges_hint:(n - 1) ~n (fun e ->
      for i = 0 to n - 2 do
        e i (i + 1)
      done)

let complete n =
  if n < 1 then invalid_arg "Gen.complete: need n >= 1";
  build ~edges_hint:(n * (n - 1) / 2) ~n (fun e ->
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          e u v
        done
      done)

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  build ~edges_hint:n ~n:(n + 1) (fun e ->
      for i = 1 to n do
        e 0 i
      done)

let wheel n =
  if n < 3 then invalid_arg "Gen.wheel: need n >= 3";
  build ~edges_hint:(2 * n) ~n:(n + 1) (fun e ->
      for i = 0 to n - 1 do
        e (1 + i) (1 + ((i + 1) mod n));
        e 0 (1 + i)
      done)

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Gen.complete_bipartite: need sides >= 1";
  build ~edges_hint:(a * b) ~n:(a + b) (fun e ->
      for u = 0 to a - 1 do
        for v = 0 to b - 1 do
          e u (a + v)
        done
      done)

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Gen.grid: need w, h >= 1";
  let id x y = (y * w) + x in
  build ~edges_hint:(2 * w * h) ~n:(w * h) (fun e ->
      for y = 0 to h - 1 do
        for x = 0 to w - 1 do
          if x + 1 < w then e (id x y) (id (x + 1) y);
          if y + 1 < h then e (id x y) (id x (y + 1))
        done
      done)

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Gen.torus: need w, h >= 3";
  let id x y = (y * w) + x in
  build ~edges_hint:(2 * w * h) ~n:(w * h) (fun e ->
      for y = 0 to h - 1 do
        for x = 0 to w - 1 do
          e (id x y) (id ((x + 1) mod w) y);
          e (id x y) (id x ((y + 1) mod h))
        done
      done)

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Gen.hypercube: need 0 <= d <= 20";
  let n = 1 lsl d in
  build ~edges_hint:(n * d / 2) ~n (fun e ->
      for v = 0 to n - 1 do
        for i = 0 to d - 1 do
          let u = v lxor (1 lsl i) in
          if v < u then e v u
        done
      done)

let petersen () =
  (* Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5. *)
  build ~edges_hint:15 ~n:10 (fun e ->
      for i = 0 to 4 do
        e i ((i + 1) mod 5);
        e (5 + i) (5 + ((i + 2) mod 5));
        e i (i + 5)
      done)

let binary_tree depth =
  if depth < 1 then invalid_arg "Gen.binary_tree: need depth >= 1";
  let n = (1 lsl depth) - 1 in
  build ~edges_hint:(n - 1) ~n (fun e ->
      for v = 1 to n - 1 do
        e ((v - 1) / 2) v
      done)

let random_tree ~seed n =
  if n < 1 then invalid_arg "Gen.random_tree: need n >= 1";
  let rng = Prng.create seed in
  (* Attach node v to a uniformly random earlier node: uniform over
     increasing trees, which covers all tree shapes. *)
  build ~edges_hint:(n - 1) ~n (fun e ->
      for v = 1 to n - 1 do
        e v (Prng.int rng v)
      done)

(* Union-find for connectivity patch-up in the random generators. *)
module Uf = struct
  let create n = Array.init n (fun i -> i)

  let rec find t x = if t.(x) = x then x else (t.(x) <- find t t.(x); t.(x))

  let union t x y =
    let rx = find t x and ry = find t y in
    if rx <> ry then t.(rx) <- ry

  let same t x y = find t x = find t y
end

let random_connected ~seed n p =
  if n < 1 then invalid_arg "Gen.random_connected: need n >= 1";
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.random_connected: need p in [0, 1]";
  let rng = Prng.create seed in
  let expected = int_of_float (p *. float_of_int n *. float_of_int (n - 1) /. 2.0) in
  let b = Graph.Builder.create ~edges_hint:(max 64 (expected + (n / 8))) ~n () in
  let uf = Uf.create n in
  let components = ref n in
  let add u v =
    Graph.Builder.add_edge b u v;
    if not (Uf.same uf u v) then begin
      Uf.union uf u v;
      decr components
    end
  in
  (* Sample G(n, p) by geometric skips over the lexicographically ordered
     pair space: instead of one Bernoulli draw per pair (O(n^2) — hopeless
     at n = 10^6) draw the gap to the next present edge directly, which is
     O(edges) draws total.  Pair index k enumerates (0,1) (0,2) ...
     (0,n-1) (1,2) ...; [row]/[row_start] track the current node row so
     unranking k is amortized O(1) as k increases. *)
  if p >= 1.0 then
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        add u v
      done
    done
  else if p > 0.0 then begin
    let total = n * (n - 1) / 2 in
    let log1mp = log1p (-.p) in
    let row = ref 0 and row_start = ref 0 in
    let k = ref (-1) in
    let finished = ref false in
    while not !finished do
      let u = Prng.float rng in
      (* 1 + floor(log(1-u)/log(1-p)) is geometric with success prob p. *)
      let gap = log1p (-.u) /. log1mp in
      let skip = if gap >= 1e18 then max_int else int_of_float gap in
      (* The next edge index is k + 1 + skip; stop once it passes the
         last pair index total - 1. *)
      if skip >= total - 1 - !k then finished := true
      else begin
        k := !k + 1 + skip;
        while !k >= !row_start + (n - 1 - !row) do
          row_start := !row_start + (n - 1 - !row);
          incr row
        done;
        add !row (!row + 1 + (!k - !row_start))
      end
    done
  end;
  (* Patch connectivity: repeatedly join two random nodes from different
     components.  The component count is maintained incrementally, so the
     patch loop is O(joins α(n)) instead of re-scanning all roots per
     candidate pair. *)
  while !components > 1 do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (Uf.same uf u v) then add (min u v) (max u v)
  done;
  Graph.Builder.build_unlabeled b

let random_regular ~seed n d =
  if d >= n || d < 1 then invalid_arg "Gen.random_regular: need 1 <= d < n";
  if n * d mod 2 <> 0 then invalid_arg "Gen.random_regular: n * d must be even";
  let rng = Prng.create seed in
  let m = n * d / 2 in
  (* Pairing model with local repair: shuffle the n*d stubs, pair them up,
     then fix the (expected O(d^2), independent of n) self-loops and
     duplicate pairs by random edge swaps instead of restarting the whole
     shuffle — a full restart-until-simple loop has success probability
     ~exp(-(d^2-1)/4) per attempt, hopeless already at d = 8.  A restart
     only happens when the swap budget runs out or the repaired graph is
     disconnected (both vanishingly rare for d >= 3). *)
  let eu = Array.make m 0 and ev = Array.make m 0 in
  let registered = Array.make m false in
  let attempt () =
    let stubs = Array.init (n * d) (fun i -> i / d) in
    Prng.shuffle rng stubs;
    let seen = Hashtbl.create (4 * m) in
    let key u v = if u < v then (u * n) + v else (v * n) + u in
    Array.fill registered 0 m false;
    let bad = ref [] in
    for i = 0 to m - 1 do
      let u = stubs.(2 * i) and v = stubs.((2 * i) + 1) in
      eu.(i) <- u;
      ev.(i) <- v;
      if u <> v && not (Hashtbl.mem seen (key u v)) then begin
        Hashtbl.add seen (key u v) ();
        registered.(i) <- true
      end
      else bad := i :: !bad
    done;
    let budget = ref ((50 * (List.length !bad + 1)) + 1000) in
    let ok = ref true in
    while !bad <> [] && !ok do
      if !budget <= 0 then ok := false
      else begin
        decr budget;
        match !bad with
        | [] -> ()
        | i :: rest ->
          let j = Prng.int rng m in
          if j <> i && registered.(j) then begin
            (* Rewire (u_i,v_i),(u_j,v_j) -> (u_i,v_j),(u_j,v_i) iff both
               new pairs are loop-free, absent, and distinct. *)
            let ui = eu.(i) and vi = ev.(i) and uj = eu.(j) and vj = ev.(j) in
            let k1 = key ui vj and k2 = key uj vi in
            if
              ui <> vj && uj <> vi && k1 <> k2
              && (not (Hashtbl.mem seen k1))
              && not (Hashtbl.mem seen k2)
            then begin
              Hashtbl.remove seen (key uj vj);
              ev.(i) <- vj;
              ev.(j) <- vi;
              Hashtbl.add seen k1 ();
              Hashtbl.add seen k2 ();
              registered.(i) <- true;
              bad := rest
            end
          end
      end
    done;
    if not !ok then None
    else begin
      let uf = Uf.create n in
      for i = 0 to m - 1 do
        Uf.union uf eu.(i) ev.(i)
      done;
      let connected = ref true in
      let r = Uf.find uf 0 in
      for v = 1 to n - 1 do
        if Uf.find uf v <> r then connected := false
      done;
      if not !connected then None
      else begin
        let b = Graph.Builder.create ~edges_hint:m ~n () in
        for i = 0 to m - 1 do
          Graph.Builder.add_edge b eu.(i) ev.(i)
        done;
        Some (Graph.Builder.build_unlabeled b)
      end
    end
  in
  let rec retry k =
    if k > 10_000 then failwith "Gen.random_regular: too many restarts";
    match attempt () with
    | Some g -> g
    | None -> retry (k + 1)
  in
  retry 0

let random_hamiltonian ~seed n p =
  if n < 3 then invalid_arg "Gen.random_hamiltonian: need n >= 3";
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.random_hamiltonian: need p in [0, 1]";
  let rng = Prng.create seed in
  build ~edges_hint:n ~n (fun e ->
      for i = 0 to n - 1 do
        e i ((i + 1) mod n)
      done;
      for u = 0 to n - 1 do
        for v = u + 2 to n - 1 do
          let adjacent_on_cycle = (u = 0 && v = n - 1) || v = u + 1 in
          let x = float_of_int (Prng.int rng 1_000_000) /. 1_000_000.0 in
          if (not adjacent_on_cycle) && x < p then e u v
        done
      done)

let circulant n offsets =
  if n < 3 then invalid_arg "Gen.circulant: need n >= 3";
  if offsets = [] then invalid_arg "Gen.circulant: need at least one offset";
  List.iter
    (fun o ->
      if o < 1 || 2 * o > n then
        invalid_arg "Gen.circulant: offsets must satisfy 1 <= o <= n/2")
    offsets;
  let offsets = List.sort_uniq Int.compare offsets in
  (* Distinct offsets o <= n/2 generate disjoint edge sets except that the
     half-offset o = n/2 hits each edge from both endpoints — emit only the
     lower half of its orbit.  No membership scan needed. *)
  let g =
    build ~edges_hint:(n * List.length offsets) ~n (fun e ->
        List.iter
          (fun o ->
            if 2 * o = n then
              for v = 0 to (n / 2) - 1 do
                e v (v + o)
              done
            else
              for v = 0 to n - 1 do
                e v ((v + o) mod n)
              done)
          offsets)
  in
  (* connectivity check without depending on Props (layering) *)
  let seen = Array.make n false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  seen.(0) <- true;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Graph.iter_neighbors g v ~f:(fun u ->
        if not seen.(u) then begin
          seen.(u) <- true;
          incr count;
          Queue.add u queue
        end)
  done;
  if !count <> n then invalid_arg "Gen.circulant: disconnected (gcd of offsets and n > 1)";
  g

let lollipop clique tail =
  if clique < 3 then invalid_arg "Gen.lollipop: need clique >= 3";
  if tail < 1 then invalid_arg "Gen.lollipop: need tail >= 1";
  build ~n:(clique + tail) (fun e ->
      for u = 0 to clique - 1 do
        for v = u + 1 to clique - 1 do
          e u v
        done
      done;
      for i = 0 to tail - 1 do
        e (clique - 1 + i) (clique + i)
      done)

let caterpillar ~seed n =
  if n < 2 then invalid_arg "Gen.caterpillar: need n >= 2";
  let rng = Prng.create seed in
  let spine = max 2 (n / 2) in
  build ~edges_hint:n ~n (fun e ->
      for i = 0 to spine - 2 do
        e i (i + 1)
      done;
      for i = 0 to n - spine - 1 do
        e (Prng.int rng spine) (spine + i)
      done)

let barbell k =
  if k < 3 then invalid_arg "Gen.barbell: need k >= 3";
  build ~n:(2 * k) (fun e ->
      e (k - 1) k;
      for u = 0 to k - 1 do
        for v = u + 1 to k - 1 do
          e u v;
          e (k + u) (k + v)
        done
      done)

let c6_figure1 () =
  Graph.relabel (cycle 6) (fun v -> Label.Int ((v mod 3) + 1))

let label_with_ints g = Graph.relabel g (fun v -> Label.Int v)
