(** Label-respecting graph isomorphism.

    Two labeled graphs are isomorphic (written [G ≅ G'] in the paper) when
    some bijection between their node sets preserves both adjacency and
    labels — equivalently, a factorizing map with multiplicity 1
    (Section 2.3.1).  The search is a straightforward backtracking over
    candidate images pruned by label, degree, and adjacency consistency;
    adequate for the small graphs this library manipulates. *)

(** [find g1 g2] is [Some f] with [f] an isomorphism ([f.(v)] the image of
    [v]), or [None] if the graphs are not isomorphic. *)
val find : Graph.t -> Graph.t -> int array option

(** [equal g1 g2] holds iff the graphs are isomorphic. *)
val equal : Graph.t -> Graph.t -> bool

(** [is_isomorphism g1 g2 f] verifies that [f] is a label-respecting
    isomorphism from [g1] to [g2]. *)
val is_isomorphism : Graph.t -> Graph.t -> int array -> bool
