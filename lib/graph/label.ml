type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Bits of Bits.t
  | Pair of t * t
  | List of t list

let tag = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | Bits _ -> 4
  | Pair _ -> 5
  | List _ -> 6

let rec compare a b =
  match a, b with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bits x, Bits y -> Bits.compare x y
  | Pair (x1, x2), Pair (y1, y2) ->
    let c = compare x1 y1 in
    if c <> 0 then c else compare x2 y2
  | List xs, List ys -> List.compare compare xs ys
  | (Unit | Bool _ | Int _ | Str _ | Bits _ | Pair _ | List _), _ ->
    Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let hash = Hashtbl.hash

(* Self-delimiting encoding: every value is rendered with an unambiguous
   prefix and bracketing, so distinct labels cannot collide. *)
let rec encode = function
  | Unit -> "u"
  | Bool b -> if b then "b1" else "b0"
  | Int i -> Printf.sprintf "i%d;" i
  | Str s -> Printf.sprintf "s%d:%s" (String.length s) s
  | Bits b -> Printf.sprintf "t%d:%s" (Bits.length b) (Bits.to_string b)
  | Pair (a, b) -> Printf.sprintf "p(%s,%s)" (encode a) (encode b)
  | List xs -> Printf.sprintf "l[%s]" (String.concat ";" (List.map encode xs))

let rec to_string = function
  | Unit -> "·"
  | Bool b -> Bool.to_string b
  | Int i -> string_of_int i
  | Str s -> s
  | Bits b -> Bits.to_string b
  | Pair (a, b) -> Printf.sprintf "⟨%s, %s⟩" (to_string a) (to_string b)
  | List xs -> Printf.sprintf "[%s]" (String.concat "; " (List.map to_string xs))

let pp fmt l = Format.pp_print_string fmt (to_string l)

let pair a b = Pair (a, b)

let fst = function
  | Pair (a, _) -> a
  | l -> invalid_arg ("Label.fst: not a pair: " ^ to_string l)

let snd = function
  | Pair (_, b) -> b
  | l -> invalid_arg ("Label.snd: not a pair: " ^ to_string l)

let to_int = function
  | Int i -> i
  | l -> invalid_arg ("Label.to_int: not an int: " ^ to_string l)

let to_bits = function
  | Bits b -> b
  | l -> invalid_arg ("Label.to_bits: not bits: " ^ to_string l)

let to_bool = function
  | Bool b -> b
  | l -> invalid_arg ("Label.to_bool: not a bool: " ^ to_string l)

let to_pair = function
  | Pair (a, b) -> a, b
  | l -> invalid_arg ("Label.to_pair: not a pair: " ^ to_string l)

let to_list = function
  | List xs -> xs
  | l -> invalid_arg ("Label.to_list: not a list: " ^ to_string l)
