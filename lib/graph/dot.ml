let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let node_lines ?(prefix = "v") g =
  List.init (Graph.n g) (fun v ->
      Printf.sprintf "  %s%d [label=\"%s\"];" prefix v
        (escape (Label.to_string (Graph.label g v))))

let edge_lines ?(prefix = "v") g =
  List.map
    (fun (u, v) -> Printf.sprintf "  %s%d -- %s%d;" prefix u prefix v)
    (Graph.edges g)

let of_graph ?(name = "g") g =
  String.concat "\n"
    ((Printf.sprintf "graph %s {" name :: node_lines g) @ edge_lines g @ [ "}" ])

let of_factorization ?(name = "factorization") ~product ~factor ~map () =
  let lines =
    [ Printf.sprintf "graph %s {" name ]
    @ [ "  subgraph cluster_product { label=\"product\";" ]
    @ node_lines ~prefix:"p" product
    @ edge_lines ~prefix:"p" product
    @ [ "  }"; "  subgraph cluster_factor { label=\"factor\";" ]
    @ node_lines ~prefix:"f" factor
    @ edge_lines ~prefix:"f" factor
    @ [ "  }" ]
    @ List.init (Graph.n product) (fun v ->
          Printf.sprintf "  p%d -- f%d [style=dashed, constraint=false];" v map.(v))
    @ [ "}" ]
  in
  String.concat "\n" lines
