let signature g v = Label.encode (Graph.label g v), Graph.degree g v

let multiset_signatures g =
  List.sort compare (List.init (Graph.n g) (signature g))

let is_isomorphism g1 g2 f =
  let n = Graph.n g1 in
  n = Graph.n g2
  && Array.length f = n
  && begin
       let hit = Array.make n false in
       let bijective =
         Array.for_all
           (fun w ->
             if w < 0 || w >= n || hit.(w) then false
             else begin
               hit.(w) <- true;
               true
             end)
           f
       in
       bijective
       && List.for_all
            (fun (u, v) -> Graph.has_edge g2 f.(u) f.(v))
            (Graph.edges g1)
       && Graph.num_edges g1 = Graph.num_edges g2
       && begin
            let ok = ref true in
            Graph.iter_nodes g1 ~f:(fun v ->
                if not (Label.equal (Graph.label g1 v) (Graph.label g2 f.(v))) then
                  ok := false);
            !ok
          end
     end

let find g1 g2 =
  let n = Graph.n g1 in
  if n <> Graph.n g2
     || Graph.num_edges g1 <> Graph.num_edges g2
     || multiset_signatures g1 <> multiset_signatures g2
  then None
  else begin
    let image = Array.make n (-1) in
    let used = Array.make n false in
    (* Map nodes of g1 in decreasing-degree order: high-degree nodes are the
       most constrained, which prunes early. *)
    let order =
      List.init n (fun v -> v)
      |> List.sort (fun a b -> Int.compare (Graph.degree g1 b) (Graph.degree g1 a))
      |> Array.of_list
    in
    let consistent v w =
      signature g1 v = signature g2 w
      && Array.for_all
           (fun u ->
             image.(u) = -1 || Graph.has_edge g2 w image.(u))
           (Graph.neighbors g1 v)
      && begin
           (* Mapped neighbors of w in g2 must pull back to neighbors of v. *)
           let ok = ref true in
           Array.iteri
             (fun u wu ->
               if wu <> -1 && Graph.has_edge g2 w wu && not (Graph.has_edge g1 v u)
               then ok := false)
             image;
           !ok
         end
    in
    let rec assign i =
      if i = n then true
      else begin
        let v = order.(i) in
        let rec try_image w =
          if w >= n then false
          else if (not used.(w)) && consistent v w then begin
            image.(v) <- w;
            used.(w) <- true;
            if assign (i + 1) then true
            else begin
              image.(v) <- -1;
              used.(w) <- false;
              try_image (w + 1)
            end
          end
          else try_image (w + 1)
        in
        try_image 0
      end
    in
    if assign 0 then Some image else None
  end

let equal g1 g2 = Option.is_some (find g1 g2)
