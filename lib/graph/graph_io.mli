(** Plain-text serialization of labeled graphs.

    The format is line-oriented and human-editable:

    {v
    # comments and blank lines are ignored
    n 6
    node 0 int:1        # optional; default label is unit
    node 1 str:hello
    node 2 bits:0110
    edge 0 1
    edge 1 2
    v}

    Label syntax: [unit], [int:K], [str:S], [bits:B], [bool:true|false].
    Composite labels are not representable (attach colorings
    programmatically). *)

(** [to_string g] serializes. *)
val to_string : Graph.t -> string

(** [of_string s] parses.
    @raise Invalid_argument with a line-numbered message on bad input. *)
val of_string : string -> Graph.t

(** [load path] reads and parses a file. *)
val load : string -> Graph.t

(** [save path g] writes [g] to a file. *)
val save : string -> Graph.t -> unit
