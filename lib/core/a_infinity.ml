module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module View_graph = Anonet_views.View_graph
module Problem = Anonet_problems.Problem
module Gran = Anonet_problems.Gran
module Run_ctx = Anonet_runtime.Run_ctx
module Obs = Anonet_obs.Obs

type result = {
  outputs : Label.t array;
  view_graph : View_graph.t;
  found : Min_search.found;
  decider_confirmed : bool;
}

let solve ?(ctx = Run_ctx.default) ~gran g ?(order = Min_search.Round_major)
    ?(max_len = 64) ?(decider_seed = 1) ?pruning () =
  Obs.span (Run_ctx.obs ctx) "a_infinity.solve" @@ fun () ->
  let colored = Problem.colored_variant gran.Gran.problem in
  if not (colored.Problem.is_instance g) then
    Error
      (Printf.sprintf "input is not an instance of %s" colored.Problem.name)
  else begin
    let view_graph = View_graph.of_graph_exn g in
    (* J = (V_∞, E_∞, i_∞): the view graph with colors stripped. *)
    let j = Graph.map_labels view_graph.View_graph.graph Label.fst in
    match Gran.decide gran j ~seed:decider_seed with
    | Error m -> Error ("decider failed to terminate: " ^ m)
    | Ok false -> Error "decider rejected the view graph (not a GRAN bundle?)"
    | Ok true ->
      let base = Bit_assignment.empty (Graph.n j) in
      (match
         Min_search.minimal_successful ~ctx ~solver:gran.Gran.solver j ~base
           ~order ?pruning ~len:(Min_search.At_most max_len) ()
       with
       (* The search's typed limits degrade to ordinary errors here: the
          caller learns the instance is out of reach instead of eating an
          exception from four layers down. *)
       | exception Min_search.Search_limit_exceeded ->
         Error
           "minimal-simulation search exceeded its state budget \
            (Min_search.Search_limit_exceeded)"
       | exception Min_search.Branching_limit_exceeded { free_bits; limit } ->
         Error
           (Printf.sprintf
              "minimal-simulation search would branch on %d free bits at once \
               (limit %d) — the view graph is too large for the generic \
               derandomization"
              free_bits limit)
       | None ->
         Error
           (Printf.sprintf "no successful simulation within %d rounds" max_len)
       | Some found ->
         let sim_outputs = Simulation.outputs_exn found.Min_search.sim in
         let vg = view_graph.View_graph.graph in
         let color_of_instance_node v = Label.snd (Graph.label g v) in
         let color_of_alias_node a = Label.snd (Graph.label vg a) in
         (* Port-valued outputs are relative to the alias's port numbering;
            translate them through neighbor colors, which are unique within
            a neighborhood on 2-hop colored instances and agree between a
            node and its alias (Fact 1). *)
         let translate v output =
           match gran.Gran.output_encoding, output with
           | Gran.Label_output, o -> o
           | Gran.Port_output, Label.Int p ->
             let alias = view_graph.View_graph.map.(v) in
             if p < 0 || p >= Graph.degree vg alias then output
             else begin
               let partner_color = color_of_alias_node (Graph.neighbor vg alias p) in
               let rec find q =
                 if q >= Graph.degree g v then output (* cannot happen: views agree *)
                 else if
                   Label.equal partner_color
                     (color_of_instance_node (Graph.neighbor g v q))
                 then Label.Int q
                 else find (q + 1)
               in
               find 0
             end
           | Gran.Port_output, o -> o
         in
         let outputs =
           Array.mapi
             (fun v c -> translate v sim_outputs.(c))
             view_graph.View_graph.map
         in
         Ok { outputs; view_graph; found; decider_confirmed = true })
  end

