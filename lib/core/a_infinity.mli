(** The infinity-model algorithm [A_∞] (Theorem 2), made effective.

    In the infinity model each node's output is a function of its
    depth-infinity local view.  [A_∞] (i) reconstructs the infinite view
    graph [I_∞^c] from the view — here computed directly as the finite
    view graph, legitimate by Corollary 2 ([G* ≅ G_∞]); (ii) confirms via
    the problem's decider that the simulation input [J = (V_∞, E_∞, i_∞)]
    is an instance of [Π] (the lifting-lemma argument of Section 2.3.2
    guarantees it); (iii) selects the {e smallest successful simulation}
    of the randomized solver [A_R] on [J]; and (iv) lifts that simulation's
    outputs back through the infinite view map.

    This is the centralized ("oracle") form of the derandomization: it
    computes, for every node at once, exactly the value
    [A_∞(L_∞(v))] — no randomness, no communication beyond the view.
    The message-passing realization is {!A_star}. *)

type result = {
  outputs : Anonet_graph.Label.t array;
      (** deterministic valid outputs for the instance's nodes *)
  view_graph : Anonet_views.View_graph.t;  (** [I*^c ≅ I_∞^c] *)
  found : Min_search.found;
      (** the minimal successful simulation on [J] *)
  decider_confirmed : bool;
      (** the decider's verdict on [J] (always [true] for genuine GRAN
          bundles, by the lifting lemma) *)
}

(** [solve ?ctx ~gran g ()] derandomizes [gran.solver] on the
    [Π^c]-instance [g] (labels [<i, c>] with [c] a 2-hop coloring).

    The context is forwarded to the minimal-simulation search: [ctx.pool]
    shards it across a domain pool (identical results; see {!Min_search})
    and [ctx.obs] instruments it, with the whole derandomization timed
    under an [a_infinity.solve] span.

    @param order        total order for the minimal-simulation search
                        (default {!Min_search.Round_major})
    @param max_len      simulation length bound (default [64])
    @param decider_seed seed for the (randomized) decider run (default 1)
    @param pruning      core-guided pruning for the search (default
                        [true]; see {!Min_search.minimal_successful} —
                        value-identical either way, kept for ablation)
    @return [Error] if [g] is not an instance of [Π^c], if the decider
    rejects [J], if no successful simulation exists within [max_len], or
    if the search hits its state/branching limits
    ({!Min_search.Search_limit_exceeded} and
    {!Min_search.Branching_limit_exceeded} are caught and rendered). *)
val solve :
  ?ctx:Anonet_runtime.Run_ctx.t ->
  gran:Anonet_problems.Gran.t ->
  Anonet_graph.Graph.t ->
  ?order:Min_search.order ->
  ?max_len:int ->
  ?decider_seed:int ->
  ?pruning:bool ->
  unit ->
  (result, string) Stdlib.result
