module Graph = Anonet_graph.Graph
module Bits = Anonet_graph.Bits
module Executor = Anonet_runtime.Executor
module Obs = Anonet_obs.Obs

type result = {
  successful : bool;
  outputs : Anonet_graph.Label.t option array;
  rounds_run : int;
}

module Batch = struct
  type t = Executor.Scratch.t

  let create () = Executor.Scratch.create ()
end

(* Simulations that are not explicitly batched still deserve the in-place
   flat path: one scratch per domain (never shared, never locked) backs
   every [run] without a [?batch] argument. *)
let default_batch_key = Domain.DLS.new_key (fun () -> Executor.Scratch.create ())

let run ?(obs = Obs.null) ?batch ~solver g ~bits =
  let n = Graph.n g in
  if Array.length bits <> n then invalid_arg "Simulation.run: wrong assignment size";
  let l = Bit_assignment.min_length bits in
  let scratch =
    match batch with Some b -> b | None -> Domain.DLS.get default_batch_key
  in
  let result =
    match
      (* Flat fast path: the whole run executes in place over the scratch
         arenas — zero allocation per round — when the solver has a flat
         companion.  Byte-identical to the loop below (test_flat.ml). *)
      Executor.simulate_flat ~scratch solver g
        ~bit:(fun ~node ~round -> Bits.get bits.(node) (round - 1))
        ~len:l
    with
    | Some (outputs, rounds_run, successful) -> { successful; outputs; rounds_run }
    | None ->
      (* One bit buffer for the whole run: [step] consumes the bits before
         returning and never retains the array, so reusing it across rounds
         is safe and spares an allocation per round (visible in the
         ablate-bits bench group, where millions of short simulations run
         back to back). *)
      let round_bits = Array.make n false in
      let rec loop exec r =
        if Executor.Incremental.all_output exec then
          {
            successful = true;
            outputs = Executor.Incremental.outputs exec;
            rounds_run = Executor.Incremental.round exec;
          }
        else if r > l then
          {
            successful = false;
            outputs = Executor.Incremental.outputs exec;
            rounds_run = Executor.Incremental.round exec;
          }
        else begin
          for v = 0 to n - 1 do
            round_bits.(v) <- Bits.get bits.(v) (r - 1)
          done;
          loop (Executor.Incremental.step exec ~bits:round_bits) (r + 1)
        end
      in
      loop (Executor.Incremental.start solver g) 1
  in
  Obs.incr (Obs.counter obs "sim.runs");
  Obs.incr ~by:result.rounds_run (Obs.counter obs "sim.rounds");
  result

let outputs_exn r =
  if not r.successful then invalid_arg "Simulation.outputs_exn: not successful";
  Array.map Option.get r.outputs
