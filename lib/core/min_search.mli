(** Finding the minimal successful simulation (Sections 2.2 and 3.1).

    Update-Bits needs, deterministically and identically at every node, the
    smallest bit assignment (under a predetermined total order) whose
    induced simulation of [A_R] is successful.  The orders:

    - {!Round_major} (default): assignments of smaller length first, ties
      broken by the round-major lexicographic order of
      {!Bit_assignment.compare_round_major}.  This order admits an
      efficient search: executions form a tree branching on each round's
      bit vector, explored breadth-first in lexicographic order while
      {e deduplicating equal execution states} — two prefixes leading to
      the same global state have identical futures, and the
      lexicographically smaller prefix dominates, so the frontier is
      bounded by the algorithm's reachable state space rather than by
      [2^(t·k)].
    - {!Node_major}: the paper's literal order (Section 2.2), implemented
      by exhaustive enumeration; only viable for tiny instances, used to
      cross-check the efficient search.

    All the paper's lemmas are order-agnostic — they only need some
    predetermined total order shared by all nodes. *)

type order =
  | Round_major
  | Node_major

type length_constraint =
  | Exactly of int
      (** the [p]-extensions of Update-Bits: every string extended to
          exactly this length *)
  | At_most of int
      (** minimal-length successful assignment, searched up to this bound
          (the setting of Section 2.2 / [A_∞]) *)

type found = {
  assignment : Bit_assignment.t;
  sim : Simulation.result;
  states_explored : int;  (** search effort, for the benchmarks *)
}

exception Search_limit_exceeded

(** [minimal_successful ~solver g ~base ~len ()] finds the smallest
    assignment extending [base] (per the chosen order) whose induced
    simulation on [g] is successful, or [None] if none exists within the
    length constraint.

    @param max_states abort threshold for the breadth-first frontier
    (default [1_000_000]); raises {!Search_limit_exceeded} beyond it.
    @raise Invalid_argument if some [base] string already exceeds an
    [Exactly] target. *)
val minimal_successful :
  solver:Anonet_runtime.Algorithm.t ->
  Anonet_graph.Graph.t ->
  base:Bit_assignment.t ->
  ?order:order ->
  ?max_states:int ->
  len:length_constraint ->
  unit ->
  found option
