(** Finding the minimal successful simulation (Sections 2.2 and 3.1).

    Update-Bits needs, deterministically and identically at every node, the
    smallest bit assignment (under a predetermined total order) whose
    induced simulation of [A_R] is successful.  The orders:

    - {!Round_major} (default): assignments of smaller length first, ties
      broken by the round-major lexicographic order of
      {!Bit_assignment.compare_round_major}.  This order admits an
      efficient search: executions form a tree branching on each round's
      bit vector, explored breadth-first in lexicographic order while
      {e deduplicating equal execution states} — two prefixes leading to
      the same global state have identical futures, and the
      lexicographically smaller prefix dominates, so the frontier is
      bounded by the algorithm's reachable state space rather than by
      [2^(t·k)].
    - {!Node_major}: the paper's literal order (Section 2.2), implemented
      by exhaustive enumeration; only viable for tiny instances, used to
      cross-check the efficient search.

    All the paper's lemmas are order-agnostic — they only need some
    predetermined total order shared by all nodes.

    Both searches accept an optional domain {!Anonet_parallel.Pool}:
    round-major shards each level's frontier expansion by entry chunks
    (stepping and fingerprinting run on all domains; the order-sensitive
    dedup and the {!Bit_assignment.compare_round_major} tiebreak merge
    sequentially, in lexicographic order), node-major shards each length's
    enumeration by fixed bit-prefix and races the blocks for the lowest
    success.  The minimal assignment found — indeed the entire {!found}
    record, [states_explored] included — is identical to the sequential
    search's. *)

type order =
  | Round_major
  | Node_major

type length_constraint =
  | Exactly of int
      (** the [p]-extensions of Update-Bits: every string extended to
          exactly this length *)
  | At_most of int
      (** minimal-length successful assignment, searched up to this bound
          (the setting of Section 2.2 / [A_∞]) *)

type found = {
  assignment : Bit_assignment.t;
  sim : Simulation.result;
  states_explored : int;  (** search effort, for the benchmarks *)
}

exception Search_limit_exceeded

(** Raised (by either order, either execution mode) when a single
    branching step would have to enumerate more than [2^limit]
    alternatives at once: more than 24 free bits in one round
    (round-major), more than 30 free bits in one candidate length
    (node-major).  A typed error rather than [Invalid_argument] so that
    callers can degrade gracefully — report the instance as out of reach,
    fall back to a coarser base assignment — instead of dying on a
    stringly-typed assert. *)
exception Branching_limit_exceeded of { free_bits : int; limit : int }

(** [minimal_successful ?ctx ~solver g ~base ~len ()] finds the smallest
    assignment extending [base] (per the chosen order) whose induced
    simulation on [g] is successful, or [None] if none exists within the
    length constraint.

    From the context: [ctx.pool] shards the search across a domain pool
    (see above) — the result is bit-for-bit identical to the sequential
    search; [ctx.obs], when live, mirrors the search effort in the
    [search.states_explored] counter (equal to the returned
    [states_explored] within one call, in both execution modes), tracks the
    breadth-first frontier in the [search.frontier] gauge (reset to 0 on
    every exit, including raised limits), times the search under a
    [min_search.round_major] / [min_search.node_major] span, and emits
    ["search.level"] / ["search.length"] / ["search.block"] events.
    [ctx.faults] and [ctx.scramble_seed] are not consulted: the search
    semantics is the fault-free deterministic model (a stateful injector
    cannot be shared by branching executions).

    [pruning] (default [true], round-major only) enables core-guided
    pruning: per-round bit-sensitivity cores from
    {!Anonet_runtime.Executor.Incremental.bit_sensitivity} collapse
    sibling vectors that provably step an entry to the same child onto
    their lexicographically smallest representative, and — for [At_most]
    targets — a cross-level state table subsumes children whose execution
    state was already reached at an earlier (hence round-major smaller)
    level.  The search's value is unchanged — same [found] record as the
    exhaustive search, asserted against {!Node_major} in the test suite —
    while [states_explored] drops; the skipped siblings and subsumed
    children are counted in the [search.pruned] counter and the
    sensitivity probes in [search.core_probes].  See DESIGN.md
    "Core-guided pruning" for the soundness argument.

    @param max_states abort threshold for the breadth-first frontier
    (default [1_000_000]).  Exhausting it raises {!Search_limit_exceeded}
    — except when the in-budget lexicographic prefix of the truncated
    level already recorded a success that provably dominates every
    unexplored completion ([At_most] with the truncated level at or past
    the longest base string), in which case that success is returned with
    [states_explored = max_states + 1].  Identical at any [--jobs]: the
    pooled search expands the same in-budget prefix as the sequential
    one before deciding.
    @raise Branching_limit_exceeded if one branching step exceeds the
    enumeration limits above.
    @raise Invalid_argument if some [base] string already exceeds an
    [Exactly] target. *)
val minimal_successful :
  ?ctx:Anonet_runtime.Run_ctx.t ->
  solver:Anonet_runtime.Algorithm.t ->
  Anonet_graph.Graph.t ->
  base:Bit_assignment.t ->
  ?order:order ->
  ?max_states:int ->
  ?pruning:bool ->
  len:length_constraint ->
  unit ->
  found option

(** A warm-startable round-major search.

    For an [Exactly l] constraint, the breadth-first exploration —
    stepping, state dedup, all-output pruning, and the round-major
    tiebreak between successes — does not depend on [l]; only the
    completion of the winning prefix does.  A [Resumable.t] therefore
    owns the BFS frontier (entries, their {!Anonet_runtime.Executor.Incremental}
    states, the running best success) and extends it level by level on
    demand: [extend t ~len:l] returns exactly what
    [minimal_successful ~len:(Exactly l)] would on a cold start — the
    same [assignment], the same [sim], and the same {e cumulative}
    [states_explored] — while expanding only the levels not yet
    explored.  This is the engine behind [A*]'s incremental Update-Bits:
    phase [p+1]'s search over an unchanged selected candidate is the
    one-level extension of phase [p]'s (the prefix property of Lemma 9).

    The handle retains incremental executor states across calls; they
    are persistent values (see {!Anonet_runtime.Executor.Incremental}),
    so retention is safe but holds memory proportional to the frontier.
    A handle that raised {!Search_limit_exceeded} or
    {!Branching_limit_exceeded} is dead: its budget accounting has
    already recorded the aborted level and further [extend]s are
    unspecified. *)
module Resumable : sig
  type t

  (** [create ?ctx ?max_states ?pruning ~solver g ~base ()] opens a
      search at level 0.  [ctx] supplies the pool (sequential ≡ parallel
      byte-identity, as for {!minimal_successful}) and the observability
      handle; [max_states] bounds the {e cumulative} states explored
      over the handle's lifetime (default [1_000_000]).  [pruning]
      (default [true]) enables the per-round bit-sensitivity cores; the
      cross-level subsumption table never applies here (the handle
      serves [Exactly] targets, whose completion padding breaks the
      cross-level domination argument). *)
  val create :
    ?ctx:Anonet_runtime.Run_ctx.t ->
    ?max_states:int ->
    ?pruning:bool ->
    solver:Anonet_runtime.Algorithm.t ->
    Anonet_graph.Graph.t ->
    base:Bit_assignment.t ->
    unit ->
    t

  (** Fully expanded BFS levels so far. *)
  val level : t -> int

  (** Cumulative states explored over the handle's lifetime; after
      [extend t ~len] it equals the [states_explored] a cold
      [minimal_successful ~len:(Exactly len)] would report. *)
  val states_explored : t -> int

  (** Lower-bound hardening: the largest [len] for which this handle has
      proven [extend ~len = None] — every level up to it fully expanded
      with no success recorded.  [-1] when nothing is proven yet.
      Monotone over the handle's lifetime; [extend] targets at or below
      the floor are answered [None] without touching the frontier, even
      below [level t]. *)
  val floor : t -> int

  (** [extend t ~len] advances the frontier to level [len] (a no-op if
      already there) and returns the minimal successful [len]-extension,
      exactly as the cold [Exactly len] search would.  Timed under a
      [min_search.extend] span; the [search.frontier] gauge is reset on
      every exit.
      @raise Invalid_argument if [floor t < len < level t] (the frontier
      has advanced past a target the floor cannot answer), or if some
      [base] string is longer than [len].
      @raise Search_limit_exceeded / Branching_limit_exceeded as the
      cold search would; the handle is dead afterwards. *)
  val extend : t -> len:int -> found option
end
