(** Hash-consed local-view trees — the full-information "knowledge" that
    nodes of the deterministic algorithm [A*] gather and exchange.

    A depth-[d] local view unfolds to a tree with up to [Δ^d] vertices, but
    it only has as many {e distinct} subtrees per level as the graph has
    view-equivalence classes.  Knowledge values are therefore interned
    (see {!Anonet_views.Interned}, whose representation this module shares):
    structurally equal trees carry the same arena handle and [id], so
    equality is O(1), ordering is memoized, [size]/[depth] are stored per
    node, and a depth-[p] view costs O(n·p) memory instead of O(Δ^p).
    The intern arena is sharded and lock-guarded, shared across domains, so
    building knowledge inside [Anonet_parallel.Pool] tasks is safe — ids
    agree between workers.

    Children are kept sorted under {!compare}, which canonicalizes the
    sibling multiset — the same convention as {!Anonet_views.View} (on
    2-hop colored graphs siblings have distinct marks, making this a
    faithful canonical form, cf. Section 2.1).

    Trees serialize to {!Anonet_graph.Label.t} values as minimal DAGs, so
    exchanging knowledge costs messages polynomial in [n·p], not
    exponential. *)

type t = Anonet_views.Interned.t
(** An arena handle; marks, sizes, depths and child lists live in the
    interning arena's flat columns.  Use the accessors ({!id}, {!mark},
    {!children}, {!size}, {!depth}). *)

(** [id t] is the interning identity: equal trees have equal ids. *)
val id : t -> int

(** [mark t] is the root mark. *)
val mark : t -> Anonet_graph.Label.t

(** [children t] lists the sub-views, sorted under {!compare}. *)
val children : t -> t list

(** [size t] is the unfolded-tree vertex count (saturating); O(1). *)
val size : t -> int

(** [hash t] is [t]'s handle — a perfect hash for interned values. *)
val hash : t -> int

(** [leaf mark] is the depth-1 view with the given mark. *)
val leaf : Anonet_graph.Label.t -> t

(** [node mark children] builds (and canonicalizes) an internal vertex. *)
val node : Anonet_graph.Label.t -> t list -> t

(** O(1): interning makes structural and physical equality coincide. *)
val equal : t -> t -> bool

(** Canonical total order (mark, then children lexicographically);
    memoized over ids. *)
val compare : t -> t -> int

(** [depth t] is the number of levels (a leaf has depth 1); O(1). *)
val depth : t -> int

(** [truncate t ~depth] prunes to the given depth (and re-canonicalizes);
    memoized.
    @raise Invalid_argument if [depth < 1]. *)
val truncate : t -> depth:int -> t

(** [view_of_graph g ~root ~depth] is [L_depth(root, g)] as an interned
    tree — the same object {!Anonet_views.View.of_graph} describes, but
    shared. *)
val view_of_graph : Anonet_graph.Graph.t -> root:int -> depth:int -> t

(** [subtrees t] lists every distinct subtree occurring in [t] (including
    [t] itself), each once. *)
val subtrees : t -> t list

(** [to_label t] serializes as a minimal-DAG label; [of_label] inverts it.

    Both directions are cached per domain: [to_label] memoizes on the
    interned id (so re-broadcasting the same knowledge re-uses one label
    value, physically), and [of_label] keeps an identity-keyed cache —
    receivers that are handed the {e same} label value (the common case
    under the memoized [to_label]) skip the decode entirely.  Both caches
    are pure function caches; results are identical with or without them.
    @raise Invalid_argument on malformed input. *)
val to_label : t -> Anonet_graph.Label.t

val of_label : Anonet_graph.Label.t -> t
