module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Factor = Anonet_views.Factor

type lifted = {
  product_outputs : Label.t array;
  factor_outputs : Label.t array;
  agree : bool;
}

let lift_outputs ~map outputs = Array.map (fun c -> outputs.(c)) map

let run ~solver ~product ~factor ~map ~bits =
  let perms = Factor.induced_port_permutations ~product ~factor ~map in
  let aligned = Graph.permute_ports product perms in
  let lifted_bits = Bit_assignment.lift ~map bits in
  let factor_sim = Simulation.run ~solver factor ~bits in
  let product_sim = Simulation.run ~solver aligned ~bits:lifted_bits in
  let to_labels outputs =
    Array.map (function Some l -> l | None -> Label.Str "⊥") outputs
  in
  let factor_outputs = to_labels factor_sim.Simulation.outputs in
  let product_outputs = to_labels product_sim.Simulation.outputs in
  let agree =
    Array.length product_outputs = Array.length map
    && Array.for_all2 Label.equal product_outputs (lift_outputs ~map factor_outputs)
  in
  { product_outputs; factor_outputs; agree }
