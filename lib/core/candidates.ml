module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Encode = Anonet_graph.Encode
module Props = Anonet_graph.Props
module View_graph = Anonet_views.View_graph

type t = {
  graph : Graph.t;
  me : int;
  quotient_depth : int;
  encoding : string;
}

let strip_b g = Graph.map_labels g Label.fst

let assignment_of g =
  Array.map (fun l -> Label.to_bits (Label.snd l)) (Graph.labels g)

(* Quotient of the gathered view [k] by equality of depth-[q] truncations.
   Returns the quotient graph and the class index of [k]'s own root, or
   [None] when the quotient is not a well-defined simple connected graph. *)
let quotient k ~q =
  let witnesses =
    List.filter (fun sub -> Knowledge.depth sub >= q + 1) (Knowledge.subtrees k)
  in
  if witnesses = [] then None
  else begin
    (* Classes in canonical order of their truncated trees. *)
    let class_trees =
      List.sort_uniq Knowledge.compare
        (List.map (fun sub -> Knowledge.truncate sub ~depth:q) witnesses)
    in
    (* Interned ids make the class lookup O(1): equal trees have equal
       ids, so the id-keyed table is exactly the former linear
       [Knowledge.equal] scan.  [quotient] runs once per depth per phase
       and looks up every witness and every witness child. *)
    let index = Hashtbl.create 16 in
    List.iteri
      (fun i (t : Knowledge.t) -> Hashtbl.replace index (Knowledge.id t) i)
      class_trees;
    let class_index (tree : Knowledge.t) =
      Hashtbl.find_opt index (Knowledge.id tree)
    in
    let k_classes = List.length class_trees in
    let exception Reject in
    try
      let adjacency = Array.make k_classes None in
      List.iter
        (fun sub ->
          let c =
            match class_index (Knowledge.truncate sub ~depth:q) with
            | Some c -> c
            | None -> raise Reject
          in
          let nbrs =
            List.map
              (fun child ->
                match class_index (Knowledge.truncate child ~depth:q) with
                | Some c' -> c'
                | None -> raise Reject (* neighbor class has no witness *))
              (Knowledge.children sub)
          in
          let nbrs = List.sort Int.compare nbrs in
          (* simple graph: no loops, no parallel edges *)
          if List.exists (fun c' -> c' = c) nbrs then raise Reject;
          let rec has_dup = function
            | a :: (b :: _ as rest) -> a = b || has_dup rest
            | _ -> false
          in
          if has_dup nbrs then raise Reject;
          match adjacency.(c) with
          | None -> adjacency.(c) <- Some nbrs
          | Some existing -> if existing <> nbrs then raise Reject)
        witnesses;
      let adjacency =
        Array.map
          (function Some nbrs -> nbrs | None -> raise Reject)
          adjacency
      in
      let edges =
        List.concat
          (List.init k_classes (fun c ->
               List.filter_map
                 (fun c' -> if c < c' then Some (c, c') else None)
                 adjacency.(c)))
      in
      let labels =
        Array.of_list (List.map Knowledge.mark class_trees)
      in
      let g = Graph.create ~n:k_classes ~edges ~labels in
      if not (Props.is_connected g) then None
      else begin
        match class_index (Knowledge.truncate k ~depth:q) with
        | None -> None
        | Some me -> Some (g, me)
      end
    with Reject -> None
  end

(* Shared acceptance pipeline: literal C1/C2/C3 checks, then keep the
   candidate's finite view graph per Update-Graph. *)
let accept_candidate ~phase:p ~knowledge:k ~is_instance (g, me, q) =
  if Graph.n g > p then None (* C1 *)
  else if
    (* C2: the candidate's own depth-p view at [me] must reproduce the
       gathered view exactly. *)
    not (Knowledge.equal k (Knowledge.view_of_graph g ~root:me ~depth:p))
  then None
  else if not (is_instance (strip_b g)) then None (* C3 *)
  else begin
    match View_graph.of_graph g with
    | Error _ -> None
    | Ok vg ->
      let graph = vg.View_graph.graph in
      let me = vg.View_graph.map.(me) in
      let encoding = Encode.canonical graph in
      Some { graph; me; quotient_depth = q; encoding }
  end

let compare_candidates a b =
  Encode.compare_sized (Graph.n a.graph, a.encoding) (Graph.n b.graph, b.encoding)

let rec dedupe_sorted = function
  | a :: b :: rest when String.equal a.encoding b.encoding -> dedupe_sorted (a :: rest)
  | a :: rest -> a :: dedupe_sorted rest
  | [] -> []

let from_knowledge k ~phase ~is_instance =
  let p = phase in
  let depth_k = Knowledge.depth k in
  (* The single-node case: a degree-0 root has the whole graph in view. *)
  let singleton =
    if Knowledge.children k = [] then
      [ Graph.create ~n:1 ~edges:[] ~labels:[| Knowledge.mark k |], 0, 0 ]
    else []
  in
  let quotients =
    List.filter_map
      (fun q ->
        match quotient k ~q with
        | Some (g, me) -> Some (g, me, q)
        | None -> None)
      (List.init (max 0 (depth_k - 1)) (fun i -> i + 1))
  in
  let accepted =
    List.filter_map
      (accept_candidate ~phase:p ~knowledge:k ~is_instance)
      (singleton @ quotients)
  in
  (* Deduplicate by encoding (several quotient depths can yield the same
     finite view graph). *)
  dedupe_sorted (List.sort compare_candidates accepted)

(* ---------- literal enumeration (cross-check; see DESIGN.md) ---------- *)

(* Enumerate every connected labeled graph with at most [max_n] nodes over
   the given label alphabet — astronomically wasteful, exactly like the
   paper's candidate set, and therefore only usable for max_n <= 4 and
   tiny alphabets.  Used by the tests to validate the quotient
   construction against the letter of Figure 3. *)
let literal_candidates k ~phase ~alphabet ~is_instance =
  let p = phase in
  let max_n = min p 4 in
  let alphabet = Array.of_list alphabet in
  let a = Array.length alphabet in
  if a = 0 then invalid_arg "Candidates.literal_candidates: empty alphabet";
  let all_pairs n =
    List.concat (List.init n (fun u -> List.init (n - 1 - u) (fun j -> u, u + 1 + j)))
  in
  let candidates = ref [] in
  for n = 1 to max_n do
    let pairs = Array.of_list (all_pairs n) in
    let num_masks = 1 lsl Array.length pairs in
    let num_labelings =
      int_of_float (float_of_int a ** float_of_int n +. 0.5)
    in
    for mask = 0 to num_masks - 1 do
      let edges =
        List.filteri (fun i _ -> mask lsr i land 1 = 1) (Array.to_list pairs)
      in
      (* quick connectivity pre-check on the unlabeled shape *)
      let shape = Graph.unlabeled ~n ~edges in
      if Props.is_connected shape then begin
        for code = 0 to num_labelings - 1 do
          let labels =
            Array.init n (fun v ->
                let rec digit x i = if i = 0 then x mod a else digit (x / a) (i - 1) in
                alphabet.(digit code v))
          in
          let g = Graph.with_labels shape labels in
          (* C2 requires SOME node; try all. *)
          let rec try_nodes v =
            if v >= n then ()
            else begin
              (match
                 accept_candidate ~phase:p ~knowledge:k ~is_instance (g, v, 0)
               with
               | Some c -> candidates := c :: !candidates
               | None -> ());
              try_nodes (v + 1)
            end
          in
          try_nodes 0
        done
      end
    done
  done;
  dedupe_sorted (List.sort compare_candidates !candidates)
