module Bits = Anonet_graph.Bits

type t = Bits.t array

let make n ~len = Array.make n (Bits.zero len)

let empty n = Array.make n Bits.empty

let min_length b =
  Array.fold_left (fun m s -> min m (Bits.length s)) max_int b
  |> fun m -> if m = max_int then 0 else m

let max_length b = Array.fold_left (fun m s -> max m (Bits.length s)) 0 b

let is_uniform b = min_length b = max_length b

let is_extension ~base b =
  Array.length base = Array.length b
  && Array.for_all2 (fun p s -> Bits.is_prefix ~prefix:p s) base b

let compare_lengths a b =
  let lens x = List.sort Int.compare (Array.to_list (Array.map Bits.length x)) in
  List.compare Int.compare (lens a) (lens b)

let compare_node_major a b =
  let c = compare_lengths a b in
  if c <> 0 then c
  else begin
    let rec go i =
      if i >= Array.length a then 0
      else begin
        let c = Bits.compare_lex a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
      end
    in
    go 0
  end

let compare_round_major a b =
  let c = compare_lengths a b in
  if c <> 0 then c
  else begin
    let rounds = max_length a in
    let rec by_round r =
      if r >= rounds then 0
      else begin
        let rec by_node i =
          if i >= Array.length a then by_round (r + 1)
          else begin
            let bit x = if r < Bits.length x.(i) then Some (Bits.get x.(i) r) else None in
            match bit a, bit b with
            | Some x, Some y when x <> y -> Bool.compare x y
            | _, _ -> by_node (i + 1)
          end
        in
        by_node 0
      end
    in
    by_round 0
  end

let free_bits base ~len =
  Array.fold_left
    (fun acc s ->
      if Bits.length s > len then
        invalid_arg "Bit_assignment.free_bits: base longer than target length";
      acc + (len - Bits.length s))
    0 base

let extensions_range base ~len ~lo ~hi =
  Array.iter
    (fun s ->
      if Bits.length s > len then
        invalid_arg "Bit_assignment.extensions: base longer than target length")
    base;
  (* Free positions in node-major order: node 0's free suffix bits first. *)
  let free =
    Array.to_list base
    |> List.mapi (fun i s -> List.init (len - Bits.length s) (fun j -> i, j))
    |> List.concat
  in
  let f = List.length free in
  if f > 30 then invalid_arg "Bit_assignment.extensions: too many free bits";
  if lo < 0 || hi > 1 lsl f || lo > hi then
    invalid_arg "Bit_assignment.extensions_range: bad code range";
  let assignment_of code =
    let suffix = Array.make (Array.length base) [] in
    List.iteri
      (fun pos (i, _) ->
        let bit = code lsr (f - 1 - pos) land 1 = 1 in
        suffix.(i) <- bit :: suffix.(i))
      free;
    Array.mapi
      (fun i s -> Bits.concat s (Bits.of_list (List.rev suffix.(i))))
      base
  in
  Seq.map (fun i -> assignment_of (lo + i)) (Seq.init (hi - lo) Fun.id)

let extensions base ~len =
  extensions_range base ~len ~lo:0 ~hi:(1 lsl free_bits base ~len)

let lift ~map b = Array.map (fun c -> b.(c)) map

let pp fmt b =
  Format.fprintf fmt "@[<h>[%a]@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") Bits.pp)
    (Array.to_list b)
