(** Simulations of a randomized algorithm induced by a bit assignment
    (Section 2.2).

    The simulation induced by [b] executes [A_R] with node [i]'s random
    bits replaced by [b.(i)] and lasts [l = min_i length b.(i)] rounds —
    exactly the semantics of Update-Output in Figure 3.  The simulation is
    {e successful} when every node has produced its (irrevocable) output
    within those rounds. *)

type result = {
  successful : bool;
  outputs : Anonet_graph.Label.t option array;
  rounds_run : int;
      (** the round at which all nodes had output, or the full simulation
          length if some node never did *)
}

(** A reusable simulation scratch: one [Batch.t] owns the flat executor's
    state/inbox arenas plus a memo of the last (solver, graph) layout, so
    running all candidates of an [A*] phase (or any burst of simulations)
    through one batch reuses a single buffer instead of re-allocating
    executor state per candidate.  Purely an allocation vehicle — results
    are identical with or without it.  Not thread-safe: use one per
    domain (runs without [?batch] fall back to a per-domain default). *)
module Batch : sig
  type t

  val create : unit -> t
end

(** [run ?obs ?batch ~solver g ~bits] simulates.  Stops early once every
    node has output (continuing cannot change anything observable:
    outputs are irrevocable).  A live [obs] counts each call in
    [sim.runs] and the rounds executed in [sim.rounds] (default
    {!Anonet_obs.Obs.null}).  When the solver registered a flat companion
    ({!Anonet_runtime.Algorithm.Flat}) the run executes in place over
    [batch]'s arenas (or a per-domain default scratch) with zero per-round
    allocation. *)
val run :
  ?obs:Anonet_obs.Obs.t ->
  ?batch:Batch.t ->
  solver:Anonet_runtime.Algorithm.t ->
  Anonet_graph.Graph.t ->
  bits:Bit_assignment.t ->
  result

(** [outputs_exn r] unwraps the outputs of a successful simulation.
    @raise Invalid_argument if [r] is not successful. *)
val outputs_exn : result -> Anonet_graph.Label.t array
