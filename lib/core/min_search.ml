module Graph = Anonet_graph.Graph
module Bits = Anonet_graph.Bits
module Bitvec = Anonet_graph.Bitvec
module Executor = Anonet_runtime.Executor
module Run_ctx = Anonet_runtime.Run_ctx
module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs
module Metrics = Anonet_obs.Metrics
module Events = Anonet_obs.Events

type order =
  | Round_major
  | Node_major

type length_constraint =
  | Exactly of int
  | At_most of int

type found = {
  assignment : Bit_assignment.t;
  sim : Simulation.result;
  states_explored : int;
}

exception Search_limit_exceeded

exception Branching_limit_exceeded of { free_bits : int; limit : int }

(* Enumerating [2^f] branches at once is hopeless beyond a few dozen free
   bits; the limits below keep a runaway instance from looking like a
   hang.  Round-major branches once per round (on that round's free
   bits), node-major once per candidate length (on the whole extension). *)
let round_branching_limit = 24

let node_branching_limit = 30

let check_branching ~free_bits ~limit =
  if free_bits > limit then raise (Branching_limit_exceeded { free_bits; limit })

(* Dedup on execution-state keys (see [Executor.Incremental.dedup_key]):
   for flat-representation states a key aliases the state's own arenas —
   no Marshal round-trip, which used to be ~45% of per-state search cost. *)
module KeyTbl = Hashtbl.Make (Executor.Incremental.Key)

(* Split [0 .. size-1] into at most [4 * domains] contiguous chunks —
   enough slack for dynamic balancing without drowning in merge work. *)
let chunk_bounds ~size ~domains =
  let chunks = max 1 (min size (4 * domains)) in
  Array.init chunks (fun c -> c * size / chunks, (c + 1) * size / chunks)

(* ---------- round-major breadth-first search with state dedup ---------- *)

(* A frontier entry: the per-round bit vectors chosen so far (most recent
   first, packed — one bit per node per round) and the execution they
   induce.  Entries are kept in lexicographic order of their prefixes.
   The vectors are shared, not copied: every entry of a level aliases the
   level's preallocated vector table. *)
type entry = {
  rev_rounds : Bitvec.t list;
  exec : Executor.Incremental.t;
}

(* Complete a prefix of [level] rounds to a full assignment of length
   [len]: prescribed base bits where they exist, zeros elsewhere. *)
let complete ~base ~rev_rounds ~level ~len =
  let n = Array.length base in
  let rounds = Array.of_list (List.rev rev_rounds) in
  Array.init n (fun v ->
      let bit r =
        if r < level then Bitvec.get rounds.(r) v
        else if r < Bits.length base.(v) then Bits.get base.(v) r
        else false
      in
      Bits.of_list (List.init len bit))

(* Nodes whose base string does not prescribe a bit for round [r]
   (1-based) — the free bits of that round's branching. *)
let free_nodes ~base ~r =
  let n = Array.length base in
  List.filter (fun v -> Bits.length base.(v) < r) (List.init n (fun v -> v))

(* The bit vector prescribed for round [r] (1-based): base bits where
   they exist, zeros on the free nodes. *)
let prescribed_vec ~base ~r =
  let n = Array.length base in
  let prescribed = Bitvec.create n in
  for v = 0 to n - 1 do
    if Bits.length base.(v) >= r then
      Bitvec.unsafe_set prescribed v (Bits.get base.(v) (r - 1))
  done;
  prescribed

(* The round vector encoded by [code]: free node at position [pos] (in
   [free] order) carries bit [f - 1 - pos] of [code], so increasing codes
   enumerate the vectors in node-major lexicographic order. *)
let vector_of_code ~prescribed ~free ~f code =
  let bits = Bitvec.copy prescribed in
  List.iteri
    (fun pos v -> Bitvec.unsafe_set bits v (code lsr (f - 1 - pos) land 1 = 1))
    free;
  bits

(* The round-major BFS state, shared by the one-shot search and the
   resumable handle.  [level] counts fully expanded levels; [explored]
   is cumulative across every level expanded so far.

   [pruning] enables core-guided pruning (see DESIGN.md "Core-guided
   pruning"): per-entry bit-sensitivity cores collapse provably
   equivalent sibling vectors onto their lexicographically smallest
   representative, and — when [subsume] is [Some] — a cross-level table
   of execution states prunes any child whose state was already reached
   at an earlier level.  The cross-level table is sound only for
   [At_most] targets (length-first domination; completion padding breaks
   the argument for [Exactly]) and only at levels >= [max_base], where
   the set of allowed continuations no longer depends on the level. *)
type bfs = {
  base : Bit_assignment.t;
  max_states : int;
  obs : Obs.t;
  pool : Pool.t option;
  pruning : bool;
  subsume : unit KeyTbl.t option;
  max_base : int;
  states_c : Metrics.counter option;
  frontier_g : Metrics.gauge option;
  pruned_c : Metrics.counter option;
  probes_c : Metrics.counter option;
  mutable frontier : entry list;
  mutable level : int;
  mutable explored : int;
}

let bfs_start ~obs ~pool ~solver g ~base ~max_states ~pruning ~subsume
    ~consider =
  let start = { rev_rounds = []; exec = Executor.Incremental.start solver g } in
  let max_base = Bit_assignment.max_length base in
  let subsume =
    if pruning && subsume then begin
      let tbl = KeyTbl.create 256 in
      (* With no prescribed rounds at all the root itself subsumes: a
         child re-reaching the initial state restarts the search one
         level deeper and can only produce longer (dominated) successes. *)
      if max_base = 0 then
        KeyTbl.add tbl (Executor.Incremental.dedup_key start.exec) ();
      Some tbl
    end
    else None
  in
  {
    base;
    max_states;
    obs;
    pool;
    pruning;
    subsume;
    max_base;
    states_c = Obs.counter obs "search.states_explored";
    frontier_g = Obs.gauge obs "search.frontier";
    pruned_c = Obs.counter obs "search.pruned";
    probes_c = Obs.counter obs "search.core_probes";
    frontier = (if consider start 0 then [] else [ start ]);
    level = 0;
    explored = 0;
  }

(* Result of expanding one level: [Truncated] means the state budget ran
   out mid-level.  The in-budget lexicographic prefix of the level has
   then been fully absorbed — any success in it was recorded via
   [consider], and the explored counters hold [max_states + 1] at any
   [--jobs] — but [level]/[frontier] are left untouched; the caller
   decides whether truncation is fatal. *)
type level_outcome =
  | Complete
  | Truncated

exception Budget

(* Expand the frontier by one BFS level.  [consider entry level] must
   return [true] iff the entry has all-output (recording it as a success
   candidate as a side effect); such entries are pruned — their
   descendants cannot beat the entry's own completion. *)
let expand_level t ~consider =
  let r = t.level + 1 in
  (* Per-level constants, hoisted out of the per-entry loop: the free-node
     set, the prescribed bits and the vector tables are the same for
     every frontier entry. *)
  let free = free_nodes ~base:t.base ~r in
  let f = List.length free in
  check_branching ~free_bits:f ~limit:round_branching_limit;
  let frontier_size = List.length t.frontier in
  Obs.set t.frontier_g frontier_size;
  Obs.eventf t.obs "search.level" (fun () ->
      [
        ("level", Events.Int r);
        ("frontier", Events.Int frontier_size);
        ("free_bits", Events.Int f);
      ]);
  let prescribed = prescribed_vec ~base:t.base ~r in
  let vectors =
    Array.init (1 lsl f) (vector_of_code ~prescribed ~free ~f)
  in
  let nvec = Array.length vectors in
  (* Core-guided enumeration: an entry's sensitivity mask (sensitive free
     positions, in code-bit weights) partitions this round's [2^f]
     vectors into classes whose members provably step the entry to the
     same child; enumerating the subsets of the mask in increasing order
     visits exactly the lexicographically smallest representative of each
     class, so first-occurrence order — and hence the search's value — is
     preserved while [nvec - 2^sensitive] siblings per entry are skipped.
     Tables are memoized per distinct mask: frontier entries overwhelmingly
     share masks, so the common case builds one table per level. *)
  let full_mask = (1 lsl f) - 1 in
  let pruning = t.pruning && f > 0 in
  let mask_tables = Hashtbl.create 8 in
  let mask_of sens =
    let m = ref 0 in
    List.iteri
      (fun pos v -> if Bitvec.get sens v then m := !m lor (1 lsl (f - 1 - pos)))
      free;
    !m
  in
  let reps_of_mask mask =
    if mask = full_mask then vectors
    else
      match Hashtbl.find_opt mask_tables mask with
      | Some a -> a
      | None ->
        let acc = ref [] in
        let s = ref 0 in
        let continue = ref true in
        while !continue do
          acc := vector_of_code ~prescribed ~free ~f !s :: !acc;
          s := (!s - mask) land mask;
          if !s = 0 then continue := false
        done;
        let a = Array.of_list (List.rev !acc) in
        Hashtbl.add mask_tables mask a;
        a
  in
  (* Open an entry for expansion: probe its sensitivity core and account
     the collapsed siblings.  Shared by both paths so [search.core_probes]
     and [search.pruned] are identical at any [--jobs] — an entry counts
     exactly when the expansion loop reaches it within budget. *)
  let open_entry exec =
    if not pruning then vectors
    else begin
      Obs.incr t.probes_c;
      let reps =
        reps_of_mask (mask_of (Executor.Incremental.bit_sensitivity exec))
      in
      let collapsed = nvec - Array.length reps in
      if collapsed > 0 then Obs.incr ~by:collapsed t.pruned_c;
      reps
    end
  in
  let seen = KeyTbl.create (max 16 (min 4096 (frontier_size * nvec))) in
  let next = ref [] in
  (* Successors in lexicographic prefix order: entries outer (the
     frontier is sorted), this round's vectors inner.  The first
     occurrence of an execution state is its lexicographically smallest
     prefix, so deduplication must scan in exactly this order.
     [absorb_new] takes a child already known novel within this level:
     it registers the state, then either prunes it as cross-level
     subsumed, prunes it as a recorded success ([consider]), or pushes
     it onto the next frontier. *)
  let absorb_new entry bits exec fp =
    KeyTbl.add seen fp ();
    let subsumed =
      match t.subsume with
      | Some tbl when r >= t.max_base ->
        KeyTbl.mem tbl fp
        ||
        (KeyTbl.add tbl fp ();
         false)
      | _ -> false
    in
    if subsumed then Obs.incr t.pruned_c
    else begin
      let child = { rev_rounds = bits :: entry.rev_rounds; exec } in
      if not (consider child r) then next := child :: !next
    end
  in
  let outcome = ref Complete in
  (match t.pool with
   | Some p ->
     (* Shard the expensive work across domains in two waves — first the
        per-entry sensitivity probes, then the child steps — while all
        order-sensitive accounting (budget, probe/pruned counters,
        dedup/merge) stays sequential, in index order, mirroring the
        sequential path's per-child loop exactly.  Masks computed for
        entries beyond a budget cut are simply unused (and uncounted). *)
     let entries = Array.of_list t.frontier in
     let nent = Array.length entries in
     let masks =
       if not pruning then [||]
       else
         Array.concat
           (Array.to_list
              (Pool.map p
                 (fun (lo, hi) ->
                   Array.init (hi - lo) (fun i ->
                       mask_of
                         (Executor.Incremental.bit_sensitivity
                            entries.(lo + i).exec)))
                 (chunk_bounds ~size:nent ~domains:(Pool.domains p))))
     in
     let work = ref [] in
     (try
        for i = 0 to nent - 1 do
          let reps =
            if not pruning then vectors
            else begin
              Obs.incr t.probes_c;
              let reps = reps_of_mask masks.(i) in
              let collapsed = nvec - Array.length reps in
              if collapsed > 0 then Obs.incr ~by:collapsed t.pruned_c;
              reps
            end
          in
          Array.iter
            (fun bits ->
              t.explored <- t.explored + 1;
              Obs.incr t.states_c;
              if t.explored > t.max_states then raise_notrace Budget;
              work := (i, bits) :: !work)
            reps
        done
      with Budget -> outcome := Truncated);
     let work = Array.of_list (List.rev !work) in
     let stepped =
       Pool.map p
         (fun (lo, hi) ->
           Array.init (hi - lo) (fun k ->
               let i, bits = work.(lo + k) in
               let exec =
                 Executor.Incremental.step_vec entries.(i).exec ~bits
               in
               i, bits, exec, Executor.Incremental.dedup_key exec))
         (chunk_bounds ~size:(Array.length work) ~domains:(Pool.domains p))
     in
     Array.iter
       (Array.iter (fun (i, bits, exec, fp) ->
            if not (KeyTbl.mem seen fp) then
              absorb_new entries.(i) bits exec fp))
       stepped
   | None ->
     (* Probe/commit stepping: write the child into the per-domain probe
        buffer, test the seen-set against the transient key, and only
        materialize (allocate) the child when it is genuinely new —
        duplicates, the common case on symmetric graphs, cost nothing.
        Dedup semantics (and hence the explored count and first-occurrence
        order) are identical to the pooled path's step-then-absorb. *)
     (try
        List.iter
          (fun entry ->
            let reps = open_entry entry.exec in
            Array.iter
              (fun bits ->
                t.explored <- t.explored + 1;
                Obs.incr t.states_c;
                if t.explored > t.max_states then raise_notrace Budget;
                let probe = Executor.Incremental.probe_vec entry.exec ~bits in
                if
                  not (KeyTbl.mem seen (Executor.Incremental.probe_key probe))
                then begin
                  let exec, fp = Executor.Incremental.probe_commit probe in
                  absorb_new entry bits exec fp
                end)
              reps)
          t.frontier
      with Budget -> outcome := Truncated));
  (match !outcome with
   | Complete ->
     t.level <- r;
     t.frontier <- List.rev !next
   | Truncated -> ());
  !outcome

let search_round_major ?pool ~obs ~solver g ~base ~max_states ~pruning
    ~len_constraint =
  let max_base = Bit_assignment.max_length base in
  let hard_cap =
    match len_constraint with Exactly l -> l | At_most l -> l
  in
  (match len_constraint with
   | Exactly l when max_base > l ->
     invalid_arg "Min_search: base longer than exact target"
   | Exactly _ | At_most _ -> ());
  let best : (Bit_assignment.t * Simulation.result) option ref = ref None in
  let candidate_len level =
    match len_constraint with
    | Exactly l -> Some l
    | At_most l ->
      let cl = max level max_base in
      if cl <= l then Some cl else None
  in
  let consider entry level =
    if Executor.Incremental.all_output entry.exec then begin
      (match candidate_len level with
       | None -> ()
       | Some len ->
         let assignment =
           complete ~base ~rev_rounds:entry.rev_rounds ~level ~len
         in
         let sim =
           {
             Simulation.successful = true;
             outputs = Executor.Incremental.outputs entry.exec;
             rounds_run = level;
           }
         in
         let better =
           match !best with
           | None -> true
           | Some (a, _) -> Bit_assignment.compare_round_major assignment a < 0
         in
         if better then best := Some (assignment, sim));
      true (* prune: descendants cannot beat this entry's own completion *)
    end
    else false
  in
  let cap () =
    (* Once a candidate exists, no strictly longer assignment can win. *)
    match !best, len_constraint with
    | Some (a, _), At_most _ -> min hard_cap (Bit_assignment.max_length a)
    | _, _ -> hard_cap
  in
  let subsume = match len_constraint with At_most _ -> true | Exactly _ -> false in
  let t =
    bfs_start ~obs ~pool ~solver g ~base ~max_states ~pruning ~subsume
      ~consider
  in
  let truncated = ref false in
  (* The frontier gauge must not outlive the search: reset it on every
     exit path (success, exhaustion, raised limits) so later runs sharing
     the registry do not inherit a stale size. *)
  Fun.protect
    ~finally:(fun () -> Obs.set t.frontier_g 0)
    (fun () ->
      while (not !truncated) && t.frontier <> [] && t.level < cap () do
        if expand_level t ~consider = Truncated then truncated := true
      done);
  if !truncated then begin
    (* Budget exhaustion mid-level.  The in-budget lexicographic prefix
       of the truncated level [r] was expanded (identically at any
       [--jobs]), so a recorded best may already be the global minimum:
       for [At_most] with [max_base <= r], every unexplored completion is
       either strictly longer than the best (length-first domination) or
       a lex-later same-level prefix — in both cases round-major larger.
       A longer base keeps candidate lengths tied at [max_base], where
       unexplored lex-smaller completions could still exist, so only the
       budget exception is sound there (and for [Exactly], always). *)
    let sound =
      match len_constraint, !best with
      | At_most _, Some _ -> max_base <= t.level + 1
      | _, _ -> false
    in
    if not sound then raise Search_limit_exceeded
  end;
  match !best with
  | None -> None
  | Some (assignment, sim) ->
    Some { assignment; sim; states_explored = t.explored }

(* ---------- node-major exhaustive enumeration (the paper's order) ------ *)

let search_node_major ?pool ~obs ~solver g ~base ~max_states ~len_constraint =
  let states_c = Obs.counter obs "search.states_explored" in
  let max_base = Bit_assignment.max_length base in
  let lengths =
    match len_constraint with
    | Exactly l ->
      if max_base > l then invalid_arg "Min_search: base longer than exact target";
      Seq.return l
    | At_most l -> Seq.init (l - max_base + 1) (fun i -> max_base + i)
  in
  let explored = ref 0 in
  let simulate assignment =
    let sim = Simulation.run ~solver g ~bits:assignment in
    if sim.Simulation.successful then Some (assignment, sim) else None
  in
  let try_length_sequential len =
    let free_bits = Bit_assignment.free_bits base ~len in
    check_branching ~free_bits ~limit:node_branching_limit;
    Obs.eventf obs "search.length" (fun () ->
        [ ("len", Events.Int len); ("free_bits", Events.Int free_bits) ]);
    Seq.find_map
      (fun assignment ->
        incr explored;
        Obs.incr states_c;
        if !explored > max_states then raise Search_limit_exceeded;
        simulate assignment)
      (Bit_assignment.extensions base ~len)
  in
  (* Sharded by fixed bit-prefix: the [2^f] extension codes of one length
     split into contiguous blocks (equal high-order prefixes), raced for
     the lowest block holding a success — which, blocks being ordered,
     contains the node-major-least success overall.  The search stays
     sequential-equivalent including its state budget: the sequential loop
     simulates at most [max_states - explored] codes before raising, so
     only that prefix of the space is raced, and the winner's offset
     recovers the exact sequential [explored] count. *)
  let try_length_racing p len =
    let f = Bit_assignment.free_bits base ~len in
    check_branching ~free_bits:f ~limit:node_branching_limit;
    Obs.eventf obs "search.length" (fun () ->
        [ ("len", Events.Int len); ("free_bits", Events.Int f) ]);
    let space = 1 lsl f in
    let allowed = max_states - !explored in
    if allowed <= 0 then raise Search_limit_exceeded;
    let range = min space allowed in
    let bounds = chunk_bounds ~size:range ~domains:(Pool.domains p) in
    let task ~stop c =
      let lo, hi = bounds.(c) in
      (* Worker-side claim event only; counters are posted by the caller in
         the deterministic merge below. *)
      Obs.eventf obs "search.block" (fun () ->
          [
            ("len", Events.Int len);
            ("lo", Events.Int lo);
            ("hi", Events.Int hi);
          ]);
      let rec scan offset seq =
        if stop () then None
        else begin
          match Seq.uncons seq with
          | None -> None
          | Some (assignment, rest) ->
            (match simulate assignment with
             | Some found -> Some (lo + offset, found)
             | None -> scan (offset + 1) rest)
        end
      in
      scan 0 (Bit_assignment.extensions_range base ~len ~lo ~hi)
    in
    match Pool.race p ~n:(Array.length bounds) task with
    | Some (_, (code, found)) ->
      explored := !explored + code + 1;
      Obs.incr ~by:(code + 1) states_c;
      Some found
    | None ->
      if range < space then raise Search_limit_exceeded
      else begin
        explored := !explored + space;
        Obs.incr ~by:space states_c;
        None
      end
  in
  let try_length =
    match pool with
    | Some p -> try_length_racing p
    | None -> try_length_sequential
  in
  match Seq.find_map try_length lengths with
  | None -> None
  | Some (assignment, sim) ->
    Some { assignment; sim; states_explored = !explored }

let minimal_successful_with ~obs ~pool ~solver g ~base ?(order = Round_major)
    ?(max_states = 1_000_000) ?(pruning = true) ~len () =
  if Array.length base <> Graph.n g then
    invalid_arg "Min_search: assignment size differs from graph size";
  (* A one-domain pool computes nothing in parallel: take the sequential
     path outright so the two are trivially identical. *)
  let pool =
    match pool with Some p when Pool.domains p > 1 -> Some p | _ -> None
  in
  match order with
  | Round_major ->
    Obs.span obs "min_search.round_major" (fun () ->
        search_round_major ?pool ~obs ~solver g ~base ~max_states ~pruning
          ~len_constraint:len)
  | Node_major ->
    (* The paper's reference order stays an exhaustive enumeration —
       it is what the pruned search is asserted against. *)
    Obs.span obs "min_search.node_major" (fun () ->
        search_node_major ?pool ~obs ~solver g ~base ~max_states
          ~len_constraint:len)

let minimal_successful ?(ctx = Run_ctx.default) ~solver g ~base ?order
    ?max_states ?pruning ~len () =
  minimal_successful_with ~obs:(Run_ctx.obs ctx) ~pool:(Run_ctx.pool ctx)
    ~solver g ~base ?order ?max_states ?pruning ~len ()


(* ---------- resumable round-major search (incremental phase engine) ---- *)

module Resumable = struct
  (* A recorded success: the chosen prefix, the level it completed at,
     and the outputs it produced.  Its completion to any length [L >=
     max (found_level, max_length base)] appends only unprescribed zero
     bits, so round-major comparisons between successes are independent
     of the completion length — which is what lets one running best
     serve every future [extend] target. *)
  type success = {
    rev_rounds : Bitvec.t list;
    found_level : int;
    outputs : Anonet_graph.Label.t option array;
  }

  (* [floor] is the lower-bound hardening: the largest [len] for which
     [extend ~len] is known to return [None] (every level [<= floor] was
     fully expanded with no success recorded at the time).  Later
     [extend] targets at or below it short-circuit without touching the
     frontier — even after the frontier has advanced past them, where
     the pre-floor handle had to refuse the query. *)
  type t = {
    bfs : bfs;
    best : success option ref;
    consider : entry -> int -> bool;
    mutable floor : int;
  }

  let compare_success ~base a b =
    let len =
      max (Bit_assignment.max_length base) (max a.found_level b.found_level)
    in
    Bit_assignment.compare_round_major
      (complete ~base ~rev_rounds:a.rev_rounds ~level:a.found_level ~len)
      (complete ~base ~rev_rounds:b.rev_rounds ~level:b.found_level ~len)

  let create ?(ctx = Run_ctx.default) ?(max_states = 1_000_000)
      ?(pruning = true) ~solver g ~base () =
    if Array.length base <> Graph.n g then
      invalid_arg "Min_search: assignment size differs from graph size";
    let best = ref None in
    let consider entry level =
      if Executor.Incremental.all_output entry.exec then begin
        let s =
          {
            rev_rounds = entry.rev_rounds;
            found_level = level;
            outputs = Executor.Incremental.outputs entry.exec;
          }
        in
        (match !best with
         | None -> best := Some s
         | Some cur -> if compare_success ~base s cur < 0 then best := Some s);
        true
      end
      else false
    in
    let pool =
      match Run_ctx.pool ctx with
      | Some p when Pool.domains p > 1 -> Some p
      | _ -> None
    in
    let bfs =
      (* The handle serves [Exactly len] targets, whose completion
         padding breaks cross-level domination — only the per-round
         sensitivity cores apply here, never the subsumption table. *)
      bfs_start ~obs:(Run_ctx.obs ctx) ~pool ~solver g ~base ~max_states
        ~pruning ~subsume:false ~consider
    in
    { bfs; best; consider; floor = -1 }

  let level t = t.bfs.level

  let states_explored t = t.bfs.explored

  let floor t = t.floor

  let extend t ~len =
    let bfs = t.bfs in
    if Bit_assignment.max_length bfs.base > len then
      invalid_arg "Min_search: base longer than exact target";
    if len <= t.floor then None
    else if len < bfs.level then
      invalid_arg "Min_search.Resumable.extend: target below explored level"
    else
      Obs.span bfs.obs "min_search.extend" (fun () ->
        Fun.protect ~finally:(fun () -> Obs.set bfs.frontier_g 0) @@ fun () ->
        while bfs.frontier <> [] && bfs.level < len do
          if expand_level bfs ~consider:t.consider = Truncated then
            raise Search_limit_exceeded
        done;
        match !(t.best) with
        | None ->
          (* Every level up to [len] is now fully expanded with no
             success: harden the lower bound for later targets. *)
          t.floor <- max t.floor len;
          None
        | Some s ->
          let assignment =
            complete ~base:bfs.base ~rev_rounds:s.rev_rounds
              ~level:s.found_level ~len
          in
          Some
            {
              assignment;
              sim =
                {
                  Simulation.successful = true;
                  outputs = Array.copy s.outputs;
                  rounds_run = s.found_level;
                };
              states_explored = bfs.explored;
            })
end
