module Graph = Anonet_graph.Graph
module Bits = Anonet_graph.Bits
module Bitvec = Anonet_graph.Bitvec
module Executor = Anonet_runtime.Executor
module Run_ctx = Anonet_runtime.Run_ctx
module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs
module Metrics = Anonet_obs.Metrics
module Events = Anonet_obs.Events

type order =
  | Round_major
  | Node_major

type length_constraint =
  | Exactly of int
  | At_most of int

type found = {
  assignment : Bit_assignment.t;
  sim : Simulation.result;
  states_explored : int;
}

exception Search_limit_exceeded

exception Branching_limit_exceeded of { free_bits : int; limit : int }

(* Enumerating [2^f] branches at once is hopeless beyond a few dozen free
   bits; the limits below keep a runaway instance from looking like a
   hang.  Round-major branches once per round (on that round's free
   bits), node-major once per candidate length (on the whole extension). *)
let round_branching_limit = 24

let node_branching_limit = 30

let check_branching ~free_bits ~limit =
  if free_bits > limit then raise (Branching_limit_exceeded { free_bits; limit })

(* Dedup on execution-state keys (see [Executor.Incremental.dedup_key]):
   for flat-representation states a key aliases the state's own arenas —
   no Marshal round-trip, which used to be ~45% of per-state search cost. *)
module KeyTbl = Hashtbl.Make (Executor.Incremental.Key)

(* Split [0 .. size-1] into at most [4 * domains] contiguous chunks —
   enough slack for dynamic balancing without drowning in merge work. *)
let chunk_bounds ~size ~domains =
  let chunks = max 1 (min size (4 * domains)) in
  Array.init chunks (fun c -> c * size / chunks, (c + 1) * size / chunks)

(* ---------- round-major breadth-first search with state dedup ---------- *)

(* A frontier entry: the per-round bit vectors chosen so far (most recent
   first, packed — one bit per node per round) and the execution they
   induce.  Entries are kept in lexicographic order of their prefixes.
   The vectors are shared, not copied: every entry of a level aliases the
   level's preallocated vector table. *)
type entry = {
  rev_rounds : Bitvec.t list;
  exec : Executor.Incremental.t;
}

(* Complete a prefix of [level] rounds to a full assignment of length
   [len]: prescribed base bits where they exist, zeros elsewhere. *)
let complete ~base ~rev_rounds ~level ~len =
  let n = Array.length base in
  let rounds = Array.of_list (List.rev rev_rounds) in
  Array.init n (fun v ->
      let bit r =
        if r < level then Bitvec.get rounds.(r) v
        else if r < Bits.length base.(v) then Bits.get base.(v) r
        else false
      in
      Bits.of_list (List.init len bit))

(* Nodes whose base string does not prescribe a bit for round [r]
   (1-based) — the free bits of that round's branching. *)
let free_nodes ~base ~r =
  let n = Array.length base in
  List.filter (fun v -> Bits.length base.(v) < r) (List.init n (fun v -> v))

(* Enumerate the bit vectors for round [r] (1-based) in node-major
   lexicographic order, honoring prescribed base bits.  [free] must be
   [free_nodes ~base ~r] — passed in so callers can hoist it per level. *)
let round_vectors ~base ~free ~r =
  let n = Array.length base in
  let f = List.length free in
  let prescribed = Bitvec.create n in
  for v = 0 to n - 1 do
    if Bits.length base.(v) >= r then
      Bitvec.unsafe_set prescribed v (Bits.get base.(v) (r - 1))
  done;
  let vector code =
    let bits = Bitvec.copy prescribed in
    List.iteri
      (fun pos v -> Bitvec.unsafe_set bits v (code lsr (f - 1 - pos) land 1 = 1))
      free;
    bits
  in
  Seq.map vector (Seq.init (1 lsl f) Fun.id)

(* The round-major BFS state, shared by the one-shot search and the
   resumable handle.  [level] counts fully expanded levels; [explored]
   is cumulative across every level expanded so far. *)
type bfs = {
  base : Bit_assignment.t;
  max_states : int;
  obs : Obs.t;
  pool : Pool.t option;
  states_c : Metrics.counter option;
  frontier_g : Metrics.gauge option;
  mutable frontier : entry list;
  mutable level : int;
  mutable explored : int;
}

let bfs_start ~obs ~pool ~solver g ~base ~max_states ~consider =
  let start = { rev_rounds = []; exec = Executor.Incremental.start solver g } in
  {
    base;
    max_states;
    obs;
    pool;
    states_c = Obs.counter obs "search.states_explored";
    frontier_g = Obs.gauge obs "search.frontier";
    frontier = (if consider start 0 then [] else [ start ]);
    level = 0;
    explored = 0;
  }

(* Expand the frontier by one BFS level.  [consider entry level] must
   return [true] iff the entry has all-output (recording it as a success
   candidate as a side effect); such entries are pruned — their
   descendants cannot beat the entry's own completion. *)
let expand_level t ~consider =
  let r = t.level + 1 in
  (* Per-level constants, hoisted out of the per-entry loop: the free-node
     set and the vector table are the same for every frontier entry. *)
  let free = free_nodes ~base:t.base ~r in
  let f = List.length free in
  check_branching ~free_bits:f ~limit:round_branching_limit;
  Obs.set t.frontier_g (List.length t.frontier);
  Obs.eventf t.obs "search.level" (fun () ->
      [
        ("level", Events.Int r);
        ("frontier", Events.Int (List.length t.frontier));
        ("free_bits", Events.Int f);
      ]);
  let vectors = Array.of_seq (round_vectors ~base:t.base ~free ~r) in
  let nvec = Array.length vectors in
  let seen =
    KeyTbl.create (max 16 (min 4096 (List.length t.frontier * nvec)))
  in
  let next = ref [] in
  (* Successors in lexicographic prefix order: entries outer (the
     frontier is sorted), this round's vectors inner.  The first
     occurrence of an execution state is its lexicographically smallest
     prefix, so deduplication must scan in exactly this order. *)
  let absorb entry bits exec fp =
    if not (KeyTbl.mem seen fp) then begin
      KeyTbl.add seen fp ();
      let entry = { rev_rounds = bits :: entry.rev_rounds; exec } in
      if not (consider entry r) then next := entry :: !next
    end
  in
  (match t.pool with
   | Some p ->
     (* Shard the frontier expansion by entry chunks: stepping and
        fingerprinting (the expensive part) runs on all domains; the
        order-sensitive dedup/merge is sequential, in index order. *)
     let entries = Array.of_list t.frontier in
     let steps = Array.length entries * nvec in
     let remaining = t.max_states - t.explored in
     if steps > remaining then begin
       (* Match the sequential accounting exactly: it counts the remaining
          budget plus the one overshooting step before raising, so the
          [search.states_explored] counter at raise time is the same at
          any [--jobs]. *)
       t.explored <- t.explored + remaining + 1;
       Obs.incr ~by:(remaining + 1) t.states_c;
       raise Search_limit_exceeded
     end;
     t.explored <- t.explored + steps;
     Obs.incr ~by:steps t.states_c;
     let stepped =
       Pool.map p
         (fun (lo, hi) ->
           Array.init ((hi - lo) * nvec) (fun k ->
               let entry = entries.(lo + (k / nvec)) in
               let bits = vectors.(k mod nvec) in
               let exec = Executor.Incremental.step_vec entry.exec ~bits in
               entry, bits, exec, Executor.Incremental.dedup_key exec))
         (chunk_bounds ~size:(Array.length entries) ~domains:(Pool.domains p))
     in
     Array.iter
       (Array.iter (fun (entry, bits, exec, fp) -> absorb entry bits exec fp))
       stepped
   | None ->
     (* Probe/commit stepping: write the child into the per-domain probe
        buffer, test the seen-set against the transient key, and only
        materialize (allocate) the child when it is genuinely new —
        duplicates, the common case on symmetric graphs, cost nothing.
        Dedup semantics (and hence the explored count and first-occurrence
        order) are identical to the pooled path's step-then-absorb. *)
     List.iter
       (fun entry ->
         Array.iter
           (fun bits ->
             t.explored <- t.explored + 1;
             Obs.incr t.states_c;
             if t.explored > t.max_states then raise Search_limit_exceeded;
             let probe = Executor.Incremental.probe_vec entry.exec ~bits in
             if not (KeyTbl.mem seen (Executor.Incremental.probe_key probe))
             then begin
               let exec, fp = Executor.Incremental.probe_commit probe in
               KeyTbl.add seen fp ();
               let entry = { rev_rounds = bits :: entry.rev_rounds; exec } in
               if not (consider entry r) then next := entry :: !next
             end)
           vectors)
       t.frontier);
  t.level <- r;
  t.frontier <- List.rev !next

let search_round_major ?pool ~obs ~solver g ~base ~max_states ~len_constraint =
  let max_base = Bit_assignment.max_length base in
  let hard_cap =
    match len_constraint with Exactly l -> l | At_most l -> l
  in
  (match len_constraint with
   | Exactly l when max_base > l ->
     invalid_arg "Min_search: base longer than exact target"
   | Exactly _ | At_most _ -> ());
  let best : (Bit_assignment.t * Simulation.result) option ref = ref None in
  let candidate_len level =
    match len_constraint with
    | Exactly l -> Some l
    | At_most l ->
      let cl = max level max_base in
      if cl <= l then Some cl else None
  in
  let consider entry level =
    if Executor.Incremental.all_output entry.exec then begin
      (match candidate_len level with
       | None -> ()
       | Some len ->
         let assignment =
           complete ~base ~rev_rounds:entry.rev_rounds ~level ~len
         in
         let sim =
           {
             Simulation.successful = true;
             outputs = Executor.Incremental.outputs entry.exec;
             rounds_run = level;
           }
         in
         let better =
           match !best with
           | None -> true
           | Some (a, _) -> Bit_assignment.compare_round_major assignment a < 0
         in
         if better then best := Some (assignment, sim));
      true (* prune: descendants cannot beat this entry's own completion *)
    end
    else false
  in
  let cap () =
    (* Once a candidate exists, no strictly longer assignment can win. *)
    match !best, len_constraint with
    | Some (a, _), At_most _ -> min hard_cap (Bit_assignment.max_length a)
    | _, _ -> hard_cap
  in
  let t = bfs_start ~obs ~pool ~solver g ~base ~max_states ~consider in
  while t.frontier <> [] && t.level < cap () do
    expand_level t ~consider
  done;
  match !best with
  | None -> None
  | Some (assignment, sim) ->
    Some { assignment; sim; states_explored = t.explored }

(* ---------- node-major exhaustive enumeration (the paper's order) ------ *)

let search_node_major ?pool ~obs ~solver g ~base ~max_states ~len_constraint =
  let states_c = Obs.counter obs "search.states_explored" in
  let max_base = Bit_assignment.max_length base in
  let lengths =
    match len_constraint with
    | Exactly l ->
      if max_base > l then invalid_arg "Min_search: base longer than exact target";
      Seq.return l
    | At_most l -> Seq.init (l - max_base + 1) (fun i -> max_base + i)
  in
  let explored = ref 0 in
  let simulate assignment =
    let sim = Simulation.run ~solver g ~bits:assignment in
    if sim.Simulation.successful then Some (assignment, sim) else None
  in
  let try_length_sequential len =
    let free_bits = Bit_assignment.free_bits base ~len in
    check_branching ~free_bits ~limit:node_branching_limit;
    Obs.eventf obs "search.length" (fun () ->
        [ ("len", Events.Int len); ("free_bits", Events.Int free_bits) ]);
    Seq.find_map
      (fun assignment ->
        incr explored;
        Obs.incr states_c;
        if !explored > max_states then raise Search_limit_exceeded;
        simulate assignment)
      (Bit_assignment.extensions base ~len)
  in
  (* Sharded by fixed bit-prefix: the [2^f] extension codes of one length
     split into contiguous blocks (equal high-order prefixes), raced for
     the lowest block holding a success — which, blocks being ordered,
     contains the node-major-least success overall.  The search stays
     sequential-equivalent including its state budget: the sequential loop
     simulates at most [max_states - explored] codes before raising, so
     only that prefix of the space is raced, and the winner's offset
     recovers the exact sequential [explored] count. *)
  let try_length_racing p len =
    let f = Bit_assignment.free_bits base ~len in
    check_branching ~free_bits:f ~limit:node_branching_limit;
    Obs.eventf obs "search.length" (fun () ->
        [ ("len", Events.Int len); ("free_bits", Events.Int f) ]);
    let space = 1 lsl f in
    let allowed = max_states - !explored in
    if allowed <= 0 then raise Search_limit_exceeded;
    let range = min space allowed in
    let bounds = chunk_bounds ~size:range ~domains:(Pool.domains p) in
    let task ~stop c =
      let lo, hi = bounds.(c) in
      (* Worker-side claim event only; counters are posted by the caller in
         the deterministic merge below. *)
      Obs.eventf obs "search.block" (fun () ->
          [
            ("len", Events.Int len);
            ("lo", Events.Int lo);
            ("hi", Events.Int hi);
          ]);
      let rec scan offset seq =
        if stop () then None
        else begin
          match Seq.uncons seq with
          | None -> None
          | Some (assignment, rest) ->
            (match simulate assignment with
             | Some found -> Some (lo + offset, found)
             | None -> scan (offset + 1) rest)
        end
      in
      scan 0 (Bit_assignment.extensions_range base ~len ~lo ~hi)
    in
    match Pool.race p ~n:(Array.length bounds) task with
    | Some (_, (code, found)) ->
      explored := !explored + code + 1;
      Obs.incr ~by:(code + 1) states_c;
      Some found
    | None ->
      if range < space then raise Search_limit_exceeded
      else begin
        explored := !explored + space;
        Obs.incr ~by:space states_c;
        None
      end
  in
  let try_length =
    match pool with
    | Some p -> try_length_racing p
    | None -> try_length_sequential
  in
  match Seq.find_map try_length lengths with
  | None -> None
  | Some (assignment, sim) ->
    Some { assignment; sim; states_explored = !explored }

let minimal_successful_with ~obs ~pool ~solver g ~base ?(order = Round_major)
    ?(max_states = 1_000_000) ~len () =
  if Array.length base <> Graph.n g then
    invalid_arg "Min_search: assignment size differs from graph size";
  (* A one-domain pool computes nothing in parallel: take the sequential
     path outright so the two are trivially identical. *)
  let pool =
    match pool with Some p when Pool.domains p > 1 -> Some p | _ -> None
  in
  match order with
  | Round_major ->
    Obs.span obs "min_search.round_major" (fun () ->
        search_round_major ?pool ~obs ~solver g ~base ~max_states
          ~len_constraint:len)
  | Node_major ->
    Obs.span obs "min_search.node_major" (fun () ->
        search_node_major ?pool ~obs ~solver g ~base ~max_states
          ~len_constraint:len)

let minimal_successful ?(ctx = Run_ctx.default) ~solver g ~base ?order
    ?max_states ~len () =
  minimal_successful_with ~obs:(Run_ctx.obs ctx) ~pool:(Run_ctx.pool ctx)
    ~solver g ~base ?order ?max_states ~len ()


(* ---------- resumable round-major search (incremental phase engine) ---- *)

module Resumable = struct
  (* A recorded success: the chosen prefix, the level it completed at,
     and the outputs it produced.  Its completion to any length [L >=
     max (found_level, max_length base)] appends only unprescribed zero
     bits, so round-major comparisons between successes are independent
     of the completion length — which is what lets one running best
     serve every future [extend] target. *)
  type success = {
    rev_rounds : Bitvec.t list;
    found_level : int;
    outputs : Anonet_graph.Label.t option array;
  }

  type t = {
    bfs : bfs;
    best : success option ref;
    consider : entry -> int -> bool;
  }

  let compare_success ~base a b =
    let len =
      max (Bit_assignment.max_length base) (max a.found_level b.found_level)
    in
    Bit_assignment.compare_round_major
      (complete ~base ~rev_rounds:a.rev_rounds ~level:a.found_level ~len)
      (complete ~base ~rev_rounds:b.rev_rounds ~level:b.found_level ~len)

  let create ?(ctx = Run_ctx.default) ?(max_states = 1_000_000) ~solver g ~base
      () =
    if Array.length base <> Graph.n g then
      invalid_arg "Min_search: assignment size differs from graph size";
    let best = ref None in
    let consider entry level =
      if Executor.Incremental.all_output entry.exec then begin
        let s =
          {
            rev_rounds = entry.rev_rounds;
            found_level = level;
            outputs = Executor.Incremental.outputs entry.exec;
          }
        in
        (match !best with
         | None -> best := Some s
         | Some cur -> if compare_success ~base s cur < 0 then best := Some s);
        true
      end
      else false
    in
    let pool =
      match Run_ctx.pool ctx with
      | Some p when Pool.domains p > 1 -> Some p
      | _ -> None
    in
    let bfs =
      bfs_start ~obs:(Run_ctx.obs ctx) ~pool ~solver g ~base ~max_states
        ~consider
    in
    { bfs; best; consider }

  let level t = t.bfs.level

  let states_explored t = t.bfs.explored

  let extend t ~len =
    let bfs = t.bfs in
    if len < bfs.level then
      invalid_arg "Min_search.Resumable.extend: target below explored level";
    if Bit_assignment.max_length bfs.base > len then
      invalid_arg "Min_search: base longer than exact target";
    Obs.span bfs.obs "min_search.extend" (fun () ->
        while bfs.frontier <> [] && bfs.level < len do
          expand_level bfs ~consider:t.consider
        done;
        match !(t.best) with
        | None -> None
        | Some s ->
          let assignment =
            complete ~base:bfs.base ~rev_rounds:s.rev_rounds
              ~level:s.found_level ~len
          in
          Some
            {
              assignment;
              sim =
                {
                  Simulation.successful = true;
                  outputs = Array.copy s.outputs;
                  rounds_run = s.found_level;
                };
              states_explored = bfs.explored;
            })
end
