module Graph = Anonet_graph.Graph
module Bits = Anonet_graph.Bits
module Executor = Anonet_runtime.Executor

type order =
  | Round_major
  | Node_major

type length_constraint =
  | Exactly of int
  | At_most of int

type found = {
  assignment : Bit_assignment.t;
  sim : Simulation.result;
  states_explored : int;
}

exception Search_limit_exceeded

(* ---------- round-major breadth-first search with state dedup ---------- *)

(* A frontier entry: the per-round bit vectors chosen so far (most recent
   first) and the execution they induce.  Entries are kept in lexicographic
   order of their prefixes. *)
type entry = {
  rev_rounds : bool array list;
  exec : Executor.Incremental.t;
}

(* Complete a prefix of [level] rounds to a full assignment of length
   [len]: prescribed base bits where they exist, zeros elsewhere. *)
let complete ~base ~rev_rounds ~level ~len =
  let n = Array.length base in
  let rounds = Array.of_list (List.rev rev_rounds) in
  Array.init n (fun v ->
      let bit r =
        if r < level then rounds.(r).(v)
        else if r < Bits.length base.(v) then Bits.get base.(v) r
        else false
      in
      Bits.of_list (List.init len bit))

(* Enumerate the bit vectors for round [r] (1-based) in node-major
   lexicographic order, honoring prescribed base bits. *)
let round_vectors ~base ~r =
  let n = Array.length base in
  let free =
    List.filter (fun v -> Bits.length base.(v) < r) (List.init n (fun v -> v))
  in
  let f = List.length free in
  if f > 24 then invalid_arg "Min_search: too many free bits per round";
  let vector code =
    let bits = Array.init n (fun v ->
        if Bits.length base.(v) >= r then Bits.get base.(v) (r - 1) else false)
    in
    List.iteri (fun pos v -> bits.(v) <- code lsr (f - 1 - pos) land 1 = 1) free;
    bits
  in
  Seq.map vector (Seq.init (1 lsl f) Fun.id)

let search_round_major ~solver g ~base ~max_states ~len_constraint =
  let max_base = Bit_assignment.max_length base in
  let hard_cap =
    match len_constraint with Exactly l -> l | At_most l -> l
  in
  (match len_constraint with
   | Exactly l when max_base > l ->
     invalid_arg "Min_search: base longer than exact target"
   | Exactly _ | At_most _ -> ());
  let explored = ref 0 in
  let best : (Bit_assignment.t * Simulation.result) option ref = ref None in
  let candidate_len level =
    match len_constraint with
    | Exactly l -> Some l
    | At_most l ->
      let cl = max level max_base in
      if cl <= l then Some cl else None
  in
  let consider entry level =
    if Executor.Incremental.all_output entry.exec then begin
      (match candidate_len level with
       | None -> ()
       | Some len ->
         let assignment =
           complete ~base ~rev_rounds:entry.rev_rounds ~level ~len
         in
         let sim =
           {
             Simulation.successful = true;
             outputs = Executor.Incremental.outputs entry.exec;
             rounds_run = level;
           }
         in
         let better =
           match !best with
           | None -> true
           | Some (a, _) -> Bit_assignment.compare_round_major assignment a < 0
         in
         if better then best := Some (assignment, sim));
      true (* prune: descendants cannot beat this entry's own completion *)
    end
    else false
  in
  let cap () =
    (* Once a candidate exists, no strictly longer assignment can win. *)
    match !best, len_constraint with
    | Some (a, _), At_most _ -> min hard_cap (Bit_assignment.max_length a)
    | _, _ -> hard_cap
  in
  let start = { rev_rounds = []; exec = Executor.Incremental.start solver g } in
  let frontier = ref (if consider start 0 then [] else [ start ]) in
  let level = ref 0 in
  while !frontier <> [] && !level < cap () do
    incr level;
    let r = !level in
    let seen = Hashtbl.create 256 in
    let next = ref [] in
    List.iter
      (fun entry ->
        Seq.iter
          (fun bits ->
            incr explored;
            if !explored > max_states then raise Search_limit_exceeded;
            let exec = Executor.Incremental.step entry.exec ~bits in
            let fp = Executor.Incremental.fingerprint exec in
            if not (Hashtbl.mem seen fp) then begin
              Hashtbl.add seen fp ();
              let entry = { rev_rounds = bits :: entry.rev_rounds; exec } in
              if not (consider entry r) then next := entry :: !next
            end)
          (round_vectors ~base ~r))
      !frontier;
    frontier := List.rev !next
  done;
  match !best with
  | None -> None
  | Some (assignment, sim) ->
    Some { assignment; sim; states_explored = !explored }

(* ---------- node-major exhaustive enumeration (the paper's order) ------ *)

let search_node_major ~solver g ~base ~max_states ~len_constraint =
  let max_base = Bit_assignment.max_length base in
  let lengths =
    match len_constraint with
    | Exactly l ->
      if max_base > l then invalid_arg "Min_search: base longer than exact target";
      Seq.return l
    | At_most l -> Seq.init (l - max_base + 1) (fun i -> max_base + i)
  in
  let explored = ref 0 in
  let try_length len =
    Seq.find_map
      (fun assignment ->
        incr explored;
        if !explored > max_states then raise Search_limit_exceeded;
        let sim = Simulation.run ~solver g ~bits:assignment in
        if sim.Simulation.successful then Some (assignment, sim) else None)
      (Bit_assignment.extensions base ~len)
  in
  match Seq.find_map try_length lengths with
  | None -> None
  | Some (assignment, sim) ->
    Some { assignment; sim; states_explored = !explored }

let minimal_successful ~solver g ~base ?(order = Round_major)
    ?(max_states = 1_000_000) ~len () =
  if Array.length base <> Graph.n g then
    invalid_arg "Min_search: assignment size differs from graph size";
  match order with
  | Round_major -> search_round_major ~solver g ~base ~max_states ~len_constraint:len
  | Node_major -> search_node_major ~solver g ~base ~max_states ~len_constraint:len
