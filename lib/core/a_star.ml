module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Bits = Anonet_graph.Bits
module Algorithm = Anonet_runtime.Algorithm
module Executor = Anonet_runtime.Executor
module Tape = Anonet_runtime.Tape
module Problem = Anonet_problems.Problem
module Gran = Anonet_problems.Gran

(* The result of the end-of-phase local computation, a pure function of
   (gathered view, phase): memoized across nodes and executions. *)
type computation = {
  new_output : Label.t option;  (* from Update-Output, if successful *)
  partner_color : Label.t option;
      (* for Port_output bundles whose output names a port: the 2-hop
         color of the alias's partner, used to translate the port into
         the node's own numbering *)
  new_b : Bits.t option;  (* from Update-Bits, if some extension succeeds *)
}

let make ~gran ?(order = Min_search.Round_major) ?(max_search_states = 1_000_000)
    () : Algorithm.t =
  (module struct
    let name = "a-star:" ^ gran.Gran.problem.Anonet_problems.Problem.name

    type state = {
      degree : int;
      input : Label.t;  (* the Π^c label <i, c> *)
      b : Bits.t;
      phase : int;
      round_in_phase : int;  (* 1-based; phase p has p rounds *)
      knowledge : Knowledge.t;
      port_colors : Label.t array option;
          (* my neighbors' 2-hop colors, in my own port order — the key
             for translating port-valued alias outputs *)
      out : Label.t option;
    }

    let is_instance_colored =
      (Problem.colored_variant gran.Gran.problem).Problem.is_instance

    (* The simulation input [(V̂, Ê, î)]: candidate labels are
       <<i, c>, b>; the solver sees only i. *)
    let solver_input candidate_graph =
      Graph.map_labels candidate_graph (fun l -> Label.fst (Label.fst l))

    let memo : (int * int, computation) Hashtbl.t = Hashtbl.create 256

    let compute knowledge ~phase =
      let key = knowledge.Knowledge.id, phase in
      match Hashtbl.find_opt memo key with
      | Some c -> c
      | None ->
        let c =
          match
            Candidates.from_knowledge knowledge ~phase
              ~is_instance:is_instance_colored
          with
          | [] -> { new_output = None; partner_color = None; new_b = None }
          | selected :: _ ->
            let j = solver_input selected.Candidates.graph in
            let assignment = Candidates.assignment_of selected.Candidates.graph in
            let me = selected.Candidates.me in
            (* Update-Output *)
            let sim = Simulation.run ~solver:gran.Gran.solver j ~bits:assignment in
            let new_output =
              if sim.Simulation.successful then sim.Simulation.outputs.(me)
              else None
            in
            (* If the output names a port of the alias, record the color
               of the alias's neighbor at that port for translation. *)
            let partner_color =
              match gran.Gran.output_encoding, new_output with
              | Anonet_problems.Gran.Port_output, Some (Label.Int p)
                when p >= 0 && p < Graph.degree selected.Candidates.graph me ->
                let partner = Graph.neighbor selected.Candidates.graph me p in
                Some
                  (Label.snd
                     (Label.fst (Graph.label selected.Candidates.graph partner)))
              | (Anonet_problems.Gran.Port_output | Anonet_problems.Gran.Label_output), _
                -> None
            in
            (* Update-Bits *)
            let new_b =
              match
                Min_search.minimal_successful ~solver:gran.Gran.solver j
                  ~base:assignment ~order ~max_states:max_search_states
                  ~len:(Min_search.Exactly phase) ()
              with
              | Some found -> Some found.Min_search.assignment.(me)
              | None -> None
            in
            { new_output; partner_color; new_b }
        in
        Hashtbl.add memo key c;
        c

    let frozen_label s = Label.Pair (s.input, Label.Bits s.b)

    let init ~input ~degree =
      {
        degree;
        input;
        b = Bits.empty;
        phase = 1;
        round_in_phase = 1;
        knowledge = Knowledge.leaf Label.Unit (* replaced in round 1 *);
        port_colors = None;
        out = None;
      }

    let output s = s.out

    let round s ~bit:_ ~inbox =
      (* Build this round's knowledge layer. *)
      let children =
        if s.round_in_phase = 1 then [||]
        else
          Array.map
            (function
              | Some m -> Knowledge.of_label m
              | None -> invalid_arg "a-star: missing knowledge message")
            inbox
      in
      let knowledge =
        if s.round_in_phase = 1 then Knowledge.leaf (frozen_label s)
        else Knowledge.node s.knowledge.Knowledge.mark (Array.to_list children)
      in
      (* The first exchange round carries the neighbors' frozen labels in
         port order: harvest the 2-hop colors once. *)
      let s =
        if s.port_colors = None && s.round_in_phase = 2 then
          {
            s with
            port_colors =
              Some
                (Array.map
                   (fun (c : Knowledge.t) -> Label.snd (Label.fst c.Knowledge.mark))
                   children);
          }
        else s
      in
      if s.round_in_phase < s.phase then
        (* Exchange step: share the gathered view, one level deeper. *)
        ( { s with knowledge; round_in_phase = s.round_in_phase + 1 },
          Algorithm.broadcast ~degree:s.degree (Knowledge.to_label knowledge) )
      else begin
        (* Final round of the phase: run Update-Graph / Update-Output /
           Update-Bits on the gathered view L_p(v, I^p). *)
        let { new_output; partner_color; new_b } = compute knowledge ~phase:s.phase in
        (* Translate a port-valued alias output into this node's own port
           numbering via the partner's color (unique among neighbors). *)
        let translated =
          match new_output, partner_color, s.port_colors with
          | Some _, Some color, Some port_colors ->
            let rec find q =
              if q >= Array.length port_colors then new_output
              else if Label.equal port_colors.(q) color then Some (Label.Int q)
              else find (q + 1)
            in
            find 0
          | o, _, _ -> o
        in
        let out =
          match s.out, translated with
          | None, o -> o
          | (Some _ as o), _ -> o (* outputs are irrevocable *)
        in
        let b = Option.value ~default:s.b new_b in
        ( { s with knowledge; out; b; phase = s.phase + 1; round_in_phase = 1 },
          Algorithm.silence ~degree:s.degree )
      end
  end)

let solve ~gran g ?(order = Min_search.Round_major) ?max_rounds () =
  let n = Graph.n g in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 4 * (n + 4) * (n + 4)
  in
  let algo = make ~gran ~order () in
  match Executor.run algo g ~tape:Tape.zero ~max_rounds with
  | Ok outcome -> Ok outcome
  | Error failure -> Error (Format.asprintf "%a" Executor.pp_failure failure)
