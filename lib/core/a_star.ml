module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Bits = Anonet_graph.Bits
module Algorithm = Anonet_runtime.Algorithm
module Executor = Anonet_runtime.Executor
module Run_ctx = Anonet_runtime.Run_ctx
module Tape = Anonet_runtime.Tape
module Obs = Anonet_obs.Obs
module Events = Anonet_obs.Events
module Problem = Anonet_problems.Problem
module Gran = Anonet_problems.Gran

(* The result of the end-of-phase local computation, a pure function of
   (gathered view, phase): memoized across nodes and executions. *)
type computation = {
  new_output : Label.t option;  (* from Update-Output, if successful *)
  partner_color : Label.t option;
      (* for Port_output bundles whose output names a port: the 2-hop
         color of the alias's partner, used to translate the port into
         the node's own numbering *)
  new_b : Bits.t option;  (* from Update-Bits, if some extension succeeds *)
}

(* ---- process-wide candidate memo ------------------------------------
   [Candidates.from_knowledge] is a pure function of (gathered view,
   phase, problem): the quotient construction, the C1-C3 checks and the
   canonical encodings depend on nothing else.  Interned view ids are
   process-unique and never reused, so (view id, phase) keys a process-wide
   memo per problem — repeated solves over the same instance family (warm
   restarts, node classes sharing a view, benchmark sweeps) skip quotient
   construction entirely.  Tables are found by the problem value's physical
   identity (problems are top-level bundle constants) and capped with the
   same LRU-quartile policy as the encoding cache. *)
type cand_entry = {
  cands : Candidates.t list;
  mutable cstamp : int;  (* LRU clock tick of the last use; under [clock] *)
}

type cand_table = {
  cand_lock : Mutex.t;
  cand_tbl : (int * int, cand_entry) Hashtbl.t;  (* view id, phase *)
  mutable cand_clock : int;
}

let cand_cap = 8192

let cand_tables : (Problem.t * cand_table) list Atomic.t = Atomic.make []

let rec cand_table_for problem =
  let tables = Atomic.get cand_tables in
  match List.find_opt (fun (p, _) -> p == problem) tables with
  | Some (_, t) -> t
  | None ->
    let t =
      { cand_lock = Mutex.create (); cand_tbl = Hashtbl.create 256; cand_clock = 0 }
    in
    if Atomic.compare_and_set cand_tables tables ((problem, t) :: tables) then t
    else cand_table_for problem

(* Must hold [cand_lock]. *)
let cand_evict_locked t =
  let m = Hashtbl.length t.cand_tbl in
  if m > 0 then begin
    let arr = Array.make m ((0, 0), 0) in
    let i = ref 0 in
    Hashtbl.iter
      (fun key e ->
        arr.(!i) <- key, e.cstamp;
        incr i)
      t.cand_tbl;
    Array.sort (fun (_, a) (_, b) -> Int.compare a b) arr;
    for j = 0 to max 1 (m / 4) - 1 do
      Hashtbl.remove t.cand_tbl (fst arr.(j))
    done
  end

let make ?(ctx = Run_ctx.default) ~gran ?(order = Min_search.Round_major)
    ?(max_search_states = 1_000_000) ?(incremental = true)
    ?(search_cache_cap = 32) ?(pruning = true) () : Algorithm.t =
  (module struct
    let name = "a-star:" ^ gran.Gran.problem.Anonet_problems.Problem.name

    type state = {
      degree : int;
      input : Label.t;  (* the Π^c label <i, c> *)
      b : Bits.t;
      phase : int;
      round_in_phase : int;  (* 1-based; phase p has p rounds *)
      knowledge : Knowledge.t;
      port_colors : Label.t array option;
          (* my neighbors' 2-hop colors, in my own port order — the key
             for translating port-valued alias outputs *)
      out : Label.t option;
    }

    let is_instance_colored =
      (Problem.colored_variant gran.Gran.problem).Problem.is_instance

    (* The simulation input [(V̂, Ê, î)]: candidate labels are
       <<i, c>, b>; the solver sees only i. *)
    let solver_input candidate_graph =
      Graph.map_labels candidate_graph (fun l -> Label.fst (Label.fst l))

    let obs = Run_ctx.obs ctx

    let memo : (int * int, computation) Hashtbl.t = Hashtbl.create 256

    (* One scratch for every Update-Output simulation this solver ever
       runs: candidates are simulated in bursts each phase, and the batch
       reuses the flat executor's arenas across all of them. *)
    let batch = Simulation.Batch.create ()

    (* ---- incremental phase engine -------------------------------------
       When Update-Graph selects the same candidate as a previous phase —
       the steady state once Lemma 6–7 stabilization kicks in — the phase
       simulation (Update-Output) is identical work and the exactly-p bit
       search (Update-Bits) is a one-level extension of the previous
       phase's frontier (the prefix property behind Lemma 9).  Cache
       both, keyed by the candidate's canonical encoding: [Graph.id]s are
       freshened at every construction and candidates are rebuilt each
       phase, but the encoding pins the whole candidate — [n], the edge
       set, and the [<<i, c>, b>] labels, hence the base assignment too.
       One candidate entry serves every node class that selects it. *)
    type search_entry = {
      sim : Simulation.result;  (* Update-Output on the candidate *)
      search : Min_search.Resumable.t option;  (* Round_major only *)
      mutable stamp : int;  (* LRU clock tick of the last use *)
    }

    let search_cache : (string, search_entry) Hashtbl.t = Hashtbl.create 16

    let cache_clock = ref 0

    let cache_hits_c = Obs.counter obs "cache.search.hits"

    let cache_misses_c = Obs.counter obs "cache.search.misses"

    let cache_evictions_c = Obs.counter obs "cache.search.evictions"

    let cache_resumed_c = Obs.counter obs "cache.search.resumed_levels"

    let cache_floor_c = Obs.counter obs "cache.search.floor_hits"

    let touch e =
      incr cache_clock;
      e.stamp <- !cache_clock

    let evict_lru () =
      let victim =
        Hashtbl.fold
          (fun key e acc ->
            match acc with
            | Some (_, stamp) when stamp <= e.stamp -> acc
            | _ -> Some (key, e.stamp))
          search_cache None
      in
      match victim with
      | Some (key, _) ->
        Hashtbl.remove search_cache key;
        Obs.incr cache_evictions_c
      | None -> ()

    let fresh_entry j assignment =
      let sim =
        Simulation.run ~obs ~batch ~solver:gran.Gran.solver j ~bits:assignment
      in
      let search =
        match order with
        | Min_search.Round_major ->
          Some
            (Min_search.Resumable.create ~ctx ~max_states:max_search_states
               ~pruning ~solver:gran.Gran.solver j ~base:assignment ())
        | Min_search.Node_major -> None
      in
      { sim; search; stamp = 0 }

    (* A handle whose frontier already advanced beyond [phase] (the same
       algorithm value re-run from phase 1) cannot serve a shallower
       target — unless its hardened lower bound already answers it
       ([floor >= phase] proves the Exactly-[phase] search returns
       [None]): then the handle is kept instead of evicted and rebuilt.
       Otherwise: evict and rebuild. *)
    let lookup encoding j assignment ~phase =
      match Hashtbl.find_opt search_cache encoding with
      | Some e
        when (match e.search with
              | Some h ->
                Min_search.Resumable.level h <= phase
                || Min_search.Resumable.floor h >= phase
              | None -> true) ->
        Obs.incr cache_hits_c;
        (match e.search with
         | Some h ->
           if Min_search.Resumable.level h > phase then
             Obs.incr cache_floor_c
           else
             Obs.incr ~by:(Min_search.Resumable.level h) cache_resumed_c
         | None -> ());
        touch e;
        e
      | stale ->
        (match stale with
         | Some _ ->
           Hashtbl.remove search_cache encoding;
           Obs.incr cache_evictions_c
         | None -> ());
        Obs.incr cache_misses_c;
        if Hashtbl.length search_cache >= search_cache_cap then evict_lru ();
        let e = fresh_entry j assignment in
        touch e;
        Hashtbl.replace search_cache encoding e;
        e

    let cand_table = cand_table_for gran.Gran.problem

    let candidates knowledge ~phase =
      let key = Knowledge.id knowledge, phase in
      let t = cand_table in
      Mutex.lock t.cand_lock;
      let hit =
        match Hashtbl.find_opt t.cand_tbl key with
        | Some e ->
          t.cand_clock <- t.cand_clock + 1;
          e.cstamp <- t.cand_clock;
          Some e.cands
        | None -> None
      in
      Mutex.unlock t.cand_lock;
      match hit with
      | Some cands -> cands
      | None ->
        let cands =
          Candidates.from_knowledge knowledge ~phase
            ~is_instance:is_instance_colored
        in
        Mutex.lock t.cand_lock;
        if not (Hashtbl.mem t.cand_tbl key) then begin
          if Hashtbl.length t.cand_tbl >= cand_cap then cand_evict_locked t;
          t.cand_clock <- t.cand_clock + 1;
          Hashtbl.replace t.cand_tbl key { cands; cstamp = t.cand_clock }
        end;
        Mutex.unlock t.cand_lock;
        cands

    let compute knowledge ~phase =
      let key = Knowledge.id knowledge, phase in
      match Hashtbl.find_opt memo key with
      | Some c -> c
      | None ->
        let c =
          match candidates knowledge ~phase with
          | [] -> { new_output = None; partner_color = None; new_b = None }
          | selected :: _ ->
            let j = solver_input selected.Candidates.graph in
            let assignment = Candidates.assignment_of selected.Candidates.graph in
            let me = selected.Candidates.me in
            (* Update-Output and Update-Bits, warm (cached per candidate)
               or cold — value-identical either way. *)
            let sim, found =
              if incremental then begin
                let entry =
                  lookup selected.Candidates.encoding j assignment ~phase
                in
                let found =
                  match entry.search with
                  | Some handle -> Min_search.Resumable.extend handle ~len:phase
                  | None ->
                    Min_search.minimal_successful ~ctx ~solver:gran.Gran.solver
                      j ~base:assignment ~order ~max_states:max_search_states
                      ~pruning ~len:(Min_search.Exactly phase) ()
                in
                entry.sim, found
              end
              else
                ( Simulation.run ~obs ~batch ~solver:gran.Gran.solver j
                    ~bits:assignment,
                  Min_search.minimal_successful ~ctx ~solver:gran.Gran.solver j
                    ~base:assignment ~order ~max_states:max_search_states
                    ~pruning ~len:(Min_search.Exactly phase) () )
            in
            let new_output =
              if sim.Simulation.successful then sim.Simulation.outputs.(me)
              else None
            in
            (* If the output names a port of the alias, record the color
               of the alias's neighbor at that port for translation. *)
            let partner_color =
              match gran.Gran.output_encoding, new_output with
              | Anonet_problems.Gran.Port_output, Some (Label.Int p)
                when p >= 0 && p < Graph.degree selected.Candidates.graph me ->
                let partner = Graph.neighbor selected.Candidates.graph me p in
                Some
                  (Label.snd
                     (Label.fst (Graph.label selected.Candidates.graph partner)))
              | (Anonet_problems.Gran.Port_output | Anonet_problems.Gran.Label_output), _
                -> None
            in
            let new_b =
              match found with
              | Some found -> Some found.Min_search.assignment.(me)
              | None -> None
            in
            Obs.eventf obs "a_star.update_bits" (fun () ->
                [
                  ("phase", Events.Int phase);
                  ("candidate_nodes", Events.Int (Graph.n selected.Candidates.graph));
                  ( "found",
                    Events.String
                      (match new_b with
                       | None -> "-"
                       | Some b -> Bits.to_string b) );
                ]);
            { new_output; partner_color; new_b }
        in
        Hashtbl.add memo key c;
        c

    let frozen_label s = Label.Pair (s.input, Label.Bits s.b)

    let init ~input ~degree =
      {
        degree;
        input;
        b = Bits.empty;
        phase = 1;
        round_in_phase = 1;
        knowledge = Knowledge.leaf Label.Unit (* replaced in round 1 *);
        port_colors = None;
        out = None;
      }

    let output s = s.out

    let round s ~bit:_ ~inbox =
      (* Build this round's knowledge layer. *)
      let children =
        if s.round_in_phase = 1 then [||]
        else
          Array.map
            (function
              | Some m -> Knowledge.of_label m
              | None -> invalid_arg "a-star: missing knowledge message")
            inbox
      in
      let knowledge =
        if s.round_in_phase = 1 then Knowledge.leaf (frozen_label s)
        else Knowledge.node (Knowledge.mark s.knowledge) (Array.to_list children)
      in
      (* The first exchange round carries the neighbors' frozen labels in
         port order: harvest the 2-hop colors once. *)
      let s =
        if s.port_colors = None && s.round_in_phase = 2 then
          {
            s with
            port_colors =
              Some
                (Array.map
                   (fun (c : Knowledge.t) -> Label.snd (Label.fst (Knowledge.mark c)))
                   children);
          }
        else s
      in
      if s.round_in_phase < s.phase then
        (* Exchange step: share the gathered view, one level deeper. *)
        ( { s with knowledge; round_in_phase = s.round_in_phase + 1 },
          Algorithm.broadcast ~degree:s.degree (Knowledge.to_label knowledge) )
      else begin
        (* Final round of the phase: run Update-Graph / Update-Output /
           Update-Bits on the gathered view L_p(v, I^p). *)
        let { new_output; partner_color; new_b } = compute knowledge ~phase:s.phase in
        (* Translate a port-valued alias output into this node's own port
           numbering via the partner's color (unique among neighbors). *)
        let translated =
          match new_output, partner_color, s.port_colors with
          | Some _, Some color, Some port_colors ->
            let rec find q =
              if q >= Array.length port_colors then new_output
              else if Label.equal port_colors.(q) color then Some (Label.Int q)
              else find (q + 1)
            in
            find 0
          | o, _, _ -> o
        in
        let out =
          match s.out, translated with
          | None, o -> o
          | (Some _ as o), _ -> o (* outputs are irrevocable *)
        in
        let b = Option.value ~default:s.b new_b in
        ( { s with knowledge; out; b; phase = s.phase + 1; round_in_phase = 1 },
          Algorithm.silence ~degree:s.degree )
      end
  end)

let solve ?(ctx = Run_ctx.default) ~gran g ?(order = Min_search.Round_major)
    ?max_rounds ?incremental ?search_cache_cap ?pruning () =
  let n = Graph.n g in
  let max_rounds =
    match max_rounds with Some r -> r | None -> 4 * (n + 4) * (n + 4)
  in
  let algo = make ~ctx ~gran ~order ?incremental ?search_cache_cap ?pruning () in
  Obs.span (Run_ctx.obs ctx) "a_star.solve" (fun () ->
      match Executor.run ~ctx algo g ~tape:Tape.zero ~max_rounds with
      | Ok outcome -> Ok outcome
      | Error failure -> Error (Format.asprintf "%a" Executor.pp_failure failure))
