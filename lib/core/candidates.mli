(** Candidate construction for Update-Graph (Figure 3, Section 3.1).

    A {e candidate for phase p} at a node with gathered view
    [L = L_p(v, I^p)] is a labeled graph [Ĝ] with (C1) at most [p] nodes,
    (C2) some node [v̂] with [L_p(v̂, Ĝ) = L], and (C3) whose
    [(V̂, Ê, î, ĉ)] part is an instance of [Π^c].  The paper lets [Ĝ]
    range over {e all} labeled graphs and keeps the finite view graphs of
    the candidates; that set is astronomically large but is only used to
    prove that the true finite view graph [I*^p] is eventually selected
    (Lemmas 6-7).

    This module constructs candidates {e effectively}, as quotients of the
    gathered view: for each quotient depth [q], positions of [L] are merged
    when their depth-[q] truncations agree, giving a concrete labeled graph
    whose conditions C1-C3 are then checked {e literally} (C2 by computing
    the candidate's own depth-[p] view and comparing).  Every accepted
    quotient is a genuine candidate in the paper's sense; conversely the
    set contains [I*^p] whenever [p] is large enough (once [p] covers the
    whole graph and views have stabilized), so Lemma 7's minimality
    argument pins the selection to [I*^p] for [p >= 2n] exactly as in the
    paper.  Selections at earlier phases may differ from the literal
    algorithm's; they only influence the transient bitstrings [b^p], whose
    correctness (Lemma 9) relies solely on C2 and the prefix property of
    Update-Bits.  See DESIGN.md, "Substitutions". *)

type t = {
  graph : Anonet_graph.Graph.t;
      (** the finite view graph [Ĝ✱] of an accepted candidate, nodes in
          canonical order, labels of the composite form [<<i, c>, b>] *)
  me : int;  (** the node [v̂*] corresponding to the gathering node *)
  quotient_depth : int;  (** the [q] whose truncation classes produced it *)
  encoding : string;  (** canonical encoding [s(Ĝ✱)] used for the order *)
}

(** [from_knowledge k ~phase ~is_instance] constructs all accepted
    candidates from the gathered view [k = L_phase(v, I^p)], deduplicated
    and sorted by the paper's [(size, encoding)] order — the head of the
    list is Update-Graph's selection.  [is_instance] decides membership of
    [Π^c] on the [b]-stripped graph (condition C3). *)
val from_knowledge :
  Knowledge.t ->
  phase:int ->
  is_instance:(Anonet_graph.Graph.t -> bool) ->
  t list

(** [literal_candidates k ~phase ~alphabet ~is_instance] enumerates the
    paper's candidate set {e by the letter}: every connected labeled graph
    with at most [min phase 4] nodes over the given label alphabet is
    built and subjected to the same C1-C3 checks.  Astronomically wasteful
    by design — usable only for tiny phases and alphabets — this exists to
    cross-check {!from_knowledge} (the tests verify that both agree on the
    selection whenever the paper's minimality argument applies, and that
    every quotient candidate also appears in the literal set). *)
val literal_candidates :
  Knowledge.t ->
  phase:int ->
  alphabet:Anonet_graph.Label.t list ->
  is_instance:(Anonet_graph.Graph.t -> bool) ->
  t list

(** [strip_b g] removes the [b] component of the composite labels
    [<<i, c>, b>], recovering the [Π^c]-style instance. *)
val strip_b : Anonet_graph.Graph.t -> Anonet_graph.Graph.t

(** [assignment_of g] extracts the [b] components as a bit assignment.
    @raise Invalid_argument if labels are not of the composite form. *)
val assignment_of : Anonet_graph.Graph.t -> Bit_assignment.t
