(** The lifting lemma [5, 12], executable (Section 2.3.2).

    If [G' ⪯_f G], an execution of an anonymous algorithm on the factor
    [G'] lifts to an execution on the product [G]: give every product node
    [v] the random bits of [f(v)] and align its ports with [f(v)]'s
    through the local isomorphism; then [v] and [f(v)] step through
    identical states and produce identical outputs.  This is the bridge
    that makes simulating [A_R] on the view graph meaningful: the lifted
    simulation is a {e possible} execution of [A_R] on the original graph,
    so its outputs are valid.

    These functions both {e perform} the lift and {e verify} the lemma
    instance-by-instance (the test suite and the experiments call them on
    many factor/product pairs). *)

type lifted = {
  product_outputs : Anonet_graph.Label.t array;
      (** outputs of the lifted execution, indexed by product nodes *)
  factor_outputs : Anonet_graph.Label.t array;
      (** outputs of the original execution on the factor *)
  agree : bool;
      (** whether [product_outputs.(v) = factor_outputs.(map.(v))] for all
          [v] — the lifting lemma's claim; always [true] for genuine
          factorizing maps *)
}

(** [run ~solver ~product ~factor ~map ~bits] executes the simulation
    induced by [bits] on the factor, lifts it to the product (pulled-back
    bits, induced port alignment), executes there, and compares.

    @raise Invalid_argument if [map] is not a factorizing map. *)
val run :
  solver:Anonet_runtime.Algorithm.t ->
  product:Anonet_graph.Graph.t ->
  factor:Anonet_graph.Graph.t ->
  map:int array ->
  bits:Bit_assignment.t ->
  lifted

(** [lift_outputs ~map outputs] is the output labeling a lifted execution
    produces: product node [v] outputs [outputs.(map.(v))]. *)
val lift_outputs :
  map:int array -> Anonet_graph.Label.t array -> Anonet_graph.Label.t array
