module Label = Anonet_graph.Label

(* Knowledge is the interned view subsystem plus DAG (de)serialization: the
   former private hash-consing tables here were unsynchronized and raced
   under the domain pool; [Anonet_views.Interned] provides the same
   representatives from one mutex-guarded process-wide table, so knowledge
   values built by different pool workers are physically equal. *)
include Anonet_views.Interned

let view_of_graph g ~root ~depth =
  if depth < 1 then invalid_arg "Knowledge.view_of_graph: need depth >= 1";
  of_graph g ~root ~depth

(* DAG serialization: entries listed children-first; each entry is
   (mark, indices of children among earlier entries); the root is the last
   entry. *)
let to_label t =
  let index : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let entries = ref [] in
  let count = ref 0 in
  let rec visit t =
    if not (Hashtbl.mem index t.id) then begin
      List.iter visit t.children;
      Hashtbl.add index t.id !count;
      incr count;
      let child_ixs =
        List.map (fun c -> Label.Int (Hashtbl.find index c.id)) t.children
      in
      entries := Label.Pair (t.mark, Label.List child_ixs) :: !entries
    end
  in
  visit t;
  Label.List (List.rev !entries)

let of_label l =
  match l with
  | Label.List [] -> invalid_arg "Knowledge.of_label: empty"
  | Label.List entries ->
    let arr = Array.make (List.length entries) None in
    List.iteri
      (fun i entry ->
        match entry with
        | Label.Pair (mark, Label.List child_ixs) ->
          let children =
            List.map
              (fun ix ->
                let j = Label.to_int ix in
                if j < 0 || j >= i then
                  invalid_arg "Knowledge.of_label: bad child index";
                Option.get arr.(j))
              child_ixs
          in
          arr.(i) <- Some (node mark children)
        | _ -> invalid_arg "Knowledge.of_label: malformed entry")
      entries;
    (match arr.(Array.length arr - 1) with
     | Some t -> t
     | None -> invalid_arg "Knowledge.of_label: empty")
  | _ -> invalid_arg "Knowledge.of_label: not a list"
