module Label = Anonet_graph.Label

(* Knowledge is the interned view subsystem plus DAG (de)serialization: the
   former private hash-consing tables here were unsynchronized and raced
   under the domain pool; [Anonet_views.Interned] provides the same
   representatives from one sharded process-wide arena, so knowledge values
   built by different pool workers carry the same handle. *)
include Anonet_views.Interned

let view_of_graph g ~root ~depth =
  if depth < 1 then invalid_arg "Knowledge.view_of_graph: need depth >= 1";
  of_graph g ~root ~depth

(* DAG serialization: entries listed children-first; each entry is
   (mark, indices of children among earlier entries); the root is the last
   entry. *)
let build_label t =
  let index : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let entries = ref [] in
  let count = ref 0 in
  let rec visit t =
    if not (Hashtbl.mem index (id t)) then begin
      let children = children t in
      List.iter visit children;
      Hashtbl.add index (id t) !count;
      incr count;
      let child_ixs =
        List.map (fun c -> Label.Int (Hashtbl.find index (id c))) children
      in
      entries := Label.Pair (mark t, Label.List child_ixs) :: !entries
    end
  in
  visit t;
  Label.List (List.rev !entries)

(* Serialization is a pure function of the interned id, and A* broadcasts
   the same gathered view to every neighbor each exchange round — memoizing
   per domain means one DAG walk (and one label value) per distinct view
   instead of one per (node, round).  The shared label value also feeds the
   identity-keyed [of_label] cache on the receiving side. *)
let to_label_memo_key =
  Domain.DLS.new_key (fun () : (int, Label.t) Hashtbl.t -> Hashtbl.create 1024)

let to_label t =
  let memo = Domain.DLS.get to_label_memo_key in
  match Hashtbl.find_opt memo (id t) with
  | Some l -> l
  | None ->
    let l = build_label t in
    Hashtbl.add memo (id t) l;
    l

let decode_label l =
  match l with
  | Label.List [] -> invalid_arg "Knowledge.of_label: empty"
  | Label.List entries ->
    let arr = Array.make (List.length entries) None in
    List.iteri
      (fun i entry ->
        match entry with
        | Label.Pair (mark, Label.List child_ixs) ->
          let children =
            List.map
              (fun ix ->
                let j = Label.to_int ix in
                if j < 0 || j >= i then
                  invalid_arg "Knowledge.of_label: bad child index";
                Option.get arr.(j))
              child_ixs
          in
          arr.(i) <- Some (node mark children)
        | _ -> invalid_arg "Knowledge.of_label: malformed entry")
      entries;
    (match arr.(Array.length arr - 1) with
     | Some t -> t
     | None -> invalid_arg "Knowledge.of_label: empty")
  | _ -> invalid_arg "Knowledge.of_label: not a list"

(* Identity-keyed decode cache: the memoized [to_label] hands every receiver
   the same physical label value, so equality here is pointer equality with
   a structural hash (stable across GC moves; physically equal values are
   structurally equal, so they land in the same bucket).  Distinct-but-equal
   labels merely miss and decode — interning still yields the same tree. *)
module Label_key = struct
  type t = Label.t

  let equal = ( == )

  (* Serialized DAGs list entries children-first, so their heads (the leaf
     marks) are poor discriminators; the root entry — the last — and the
     entry count are.  One spine walk, no deep traversal. *)
  let hash (l : Label.t) =
    match l with
    | Label.List (e0 :: rest) ->
      let rec last_len n last = function
        | [] -> n, last
        | [ e ] -> n + 1, e
        | _ :: tl -> last_len (n + 1) last tl
      in
      let len, last = last_len 1 e0 rest in
      (Hashtbl.hash last * 31) + len
    | l -> Hashtbl.hash l
end

module Label_tbl = Hashtbl.Make (Label_key)

let of_label_cache_key =
  Domain.DLS.new_key (fun () : t Label_tbl.t -> Label_tbl.create 1024)

let of_label l =
  let cache = Domain.DLS.get of_label_cache_key in
  match Label_tbl.find_opt cache l with
  | Some t -> t
  | None ->
    let t = decode_label l in
    Label_tbl.add cache l t;
    t
