module Label = Anonet_graph.Label
module Graph = Anonet_graph.Graph

type t = {
  id : int;
  mark : Label.t;
  children : t list;
}

(* Hash-consing: the table maps (mark encoding, sorted child ids) to the
   unique representative.  The tables live for the whole process — they
   implement a pure function cache, so sharing them across simulated nodes
   does not leak information between nodes. *)

let table : (string * int list, t) Hashtbl.t = Hashtbl.create 4096

let next_id = ref 0

let compare_memo : (int * int, int) Hashtbl.t = Hashtbl.create 4096

let equal a b = a.id = b.id

let rec compare a b =
  if a.id = b.id then 0
  else begin
    let key = a.id, b.id in
    match Hashtbl.find_opt compare_memo key with
    | Some c -> c
    | None ->
      let c =
        let cm = Label.compare a.mark b.mark in
        if cm <> 0 then cm else List.compare compare a.children b.children
      in
      Hashtbl.add compare_memo key c;
      Hashtbl.add compare_memo (b.id, a.id) (-c);
      c
  end

let intern mark children =
  let key = Label.encode mark, List.map (fun c -> c.id) children in
  match Hashtbl.find_opt table key with
  | Some t -> t
  | None ->
    let t = { id = !next_id; mark; children } in
    incr next_id;
    Hashtbl.add table key t;
    t

let leaf mark = intern mark []

let node mark children = intern mark (List.sort compare children)

let depth_memo : (int, int) Hashtbl.t = Hashtbl.create 4096

let rec depth t =
  match Hashtbl.find_opt depth_memo t.id with
  | Some d -> d
  | None ->
    let d =
      match t.children with
      | [] -> 1
      | cs -> 1 + List.fold_left (fun m c -> max m (depth c)) 0 cs
    in
    Hashtbl.add depth_memo t.id d;
    d

let truncate_memo : (int * int, t) Hashtbl.t = Hashtbl.create 4096

let rec truncate t ~depth =
  if depth < 1 then invalid_arg "Knowledge.truncate: need depth >= 1";
  let key = t.id, depth in
  match Hashtbl.find_opt truncate_memo key with
  | Some t' -> t'
  | None ->
    let t' =
      if depth = 1 then leaf t.mark
      else node t.mark (List.map (fun c -> truncate c ~depth:(depth - 1)) t.children)
    in
    Hashtbl.add truncate_memo key t';
    t'

let view_of_graph g ~root ~depth =
  if depth < 1 then invalid_arg "Knowledge.view_of_graph: need depth >= 1";
  (* Build all views level by level; level d reuses level d-1. *)
  let n = Graph.n g in
  let current = ref (Array.init n (fun v -> leaf (Graph.label g v))) in
  for _ = 2 to depth do
    let prev = !current in
    current :=
      Array.init n (fun v ->
          node (Graph.label g v)
            (Array.to_list (Array.map (fun u -> prev.(u)) (Graph.neighbors g v))))
  done;
  !current.(root)

let subtrees t =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec visit t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      acc := t :: !acc;
      List.iter visit t.children
    end
  in
  visit t;
  !acc

(* DAG serialization: entries listed children-first; each entry is
   (mark, indices of children among earlier entries); the root is the last
   entry. *)
let to_label t =
  let index : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let entries = ref [] in
  let count = ref 0 in
  let rec visit t =
    if not (Hashtbl.mem index t.id) then begin
      List.iter visit t.children;
      Hashtbl.add index t.id !count;
      incr count;
      let child_ixs =
        List.map (fun c -> Label.Int (Hashtbl.find index c.id)) t.children
      in
      entries := Label.Pair (t.mark, Label.List child_ixs) :: !entries
    end
  in
  visit t;
  Label.List (List.rev !entries)

let of_label l =
  match l with
  | Label.List [] -> invalid_arg "Knowledge.of_label: empty"
  | Label.List entries ->
    let arr = Array.make (List.length entries) None in
    List.iteri
      (fun i entry ->
        match entry with
        | Label.Pair (mark, Label.List child_ixs) ->
          let children =
            List.map
              (fun ix ->
                let j = Label.to_int ix in
                if j < 0 || j >= i then
                  invalid_arg "Knowledge.of_label: bad child index";
                Option.get arr.(j))
              child_ixs
          in
          arr.(i) <- Some (node mark children)
        | _ -> invalid_arg "Knowledge.of_label: malformed entry")
      entries;
    (match arr.(Array.length arr - 1) with
     | Some t -> t
     | None -> invalid_arg "Knowledge.of_label: empty")
  | _ -> invalid_arg "Knowledge.of_label: not a list"
