(** The decoupling corollary of Theorem 1.

    "With the exception of a few mock cases, the execution of every
    randomized anonymous algorithm can be decoupled into a generic
    preprocessing randomized stage that computes a 2-hop coloring,
    followed by a problem-specific deterministic stage."  (Abstract.)

    [solve] realizes exactly that pipeline on a GRAN bundle: stage 1 runs
    the Las-Vegas 2-hop coloring algorithm (the only place randomness is
    used); stage 2 attaches the coloring to the instance and solves [Π^c]
    deterministically — either with the generic [A*] / [A_∞]
    derandomization, or (to show why the corollary has practical bite)
    with a problem-specific deterministic algorithm when one is supplied. *)

type stage_two =
  | Generic_a_star  (** the message-passing derandomization of Theorem 1 *)
  | Generic_a_infinity  (** the centralized form (Theorem 2) *)
  | Specific of Anonet_runtime.Algorithm.t
      (** a problem-specific deterministic algorithm expecting [Π^c]
          instances (e.g. {!Anonet_algorithms.Det_from_two_hop}) *)

type result = {
  outputs : Anonet_graph.Label.t array;
  coloring : Anonet_graph.Label.t array;  (** the stage-1 2-hop coloring *)
  coloring_rounds : int;  (** stage-1 round count *)
  stage_two_rounds : int;  (** stage-2 round count (0 for [A_∞]) *)
}

(** [solve ~gran g ~seed ~stage_two ()] runs the two-stage pipeline on a
    [Π]-instance [g] (plain input labels, no coloring attached — the
    pipeline creates it). *)
val solve :
  gran:Anonet_problems.Gran.t ->
  Anonet_graph.Graph.t ->
  seed:int ->
  stage_two:stage_two ->
  ?max_rounds:int ->
  unit ->
  (result, string) Stdlib.result
