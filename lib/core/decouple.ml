module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Executor = Anonet_runtime.Executor
module Tape = Anonet_runtime.Tape
module Las_vegas = Anonet_runtime.Las_vegas
module Problem = Anonet_problems.Problem
module Gran = Anonet_problems.Gran
module Rand_two_hop = Anonet_algorithms.Rand_two_hop

type stage_two =
  | Generic_a_star
  | Generic_a_infinity
  | Specific of Anonet_runtime.Algorithm.t

type result = {
  outputs : Label.t array;
  coloring : Label.t array;
  coloring_rounds : int;
  stage_two_rounds : int;
}

let solve ~gran g ~seed ~stage_two ?max_rounds () =
  (* Stage 1: the generic randomized preprocessing — a 2-hop coloring. *)
  match Las_vegas.solve_msg Rand_two_hop.algorithm g ~seed ?max_rounds () with
  | Error m -> Error ("stage 1 (2-hop coloring) failed: " ^ m)
  | Ok report ->
    let coloring = report.Las_vegas.outcome.Executor.outputs in
    let coloring_rounds = report.Las_vegas.outcome.Executor.rounds in
    let colored_instance = Problem.attach_coloring g coloring in
    let finish outputs stage_two_rounds =
      Ok { outputs; coloring; coloring_rounds; stage_two_rounds }
    in
    (* Stage 2: deterministic. *)
    (match stage_two with
     | Generic_a_star ->
       (match A_star.solve ~gran colored_instance ?max_rounds () with
        | Error m -> Error ("stage 2 (A*) failed: " ^ m)
        | Ok outcome ->
          finish outcome.Executor.outputs outcome.Executor.rounds)
     | Generic_a_infinity ->
       (match A_infinity.solve ~gran colored_instance () with
        | Error m -> Error ("stage 2 (A_infinity) failed: " ^ m)
        | Ok r -> finish r.A_infinity.outputs 0)
     | Specific algo ->
       let max_rounds =
         match max_rounds with Some r -> r | None -> 64 * (Graph.n g + 4)
       in
       (match Executor.run algo colored_instance ~tape:Tape.zero ~max_rounds with
        | Error f ->
          Error (Format.asprintf "stage 2 (specific) failed: %a" Executor.pp_failure f)
        | Ok outcome -> finish outcome.Executor.outputs outcome.Executor.rounds))
