(** The deterministic anonymous algorithm [A*] (Theorem 1, Figure 3).

    [A*] solves the 2-hop colored variant [Π^c] of any GRAN problem [Π]
    with {e no randomness}: it runs in phases [p = 1, 2, ...], where phase
    [p] spends [p] rounds gathering the depth-[p] local view of the
    current graph [I^p = (V, E, i, c, b^p)] (a full-information exchange
    whose messages are hash-consed view DAGs, see {!Knowledge}) and then
    executes the three sub-procedures of Figure 3 locally:

    - {b Update-Graph}: build the candidate set from the gathered view
      ({!Candidates}), keep the candidates' finite view graphs, select the
      smallest under the [(size, encoding)] order;
    - {b Update-Output}: simulate the randomized solver [A_R] on the
      selected graph using the bitstring labels [b̂] as the random bits;
      if the simulation is successful, adopt the output of one's own alias
      node — irrevocably;
    - {b Update-Bits}: find the smallest successful [p]-extension of the
      bitstring assignment ({!Min_search}) and adopt one's alias's string
      as the next [b] value.

    Termination and correctness follow the paper's analysis: from phase
    [2n] on, every node selects the true finite view graph [I*^p]
    (Lemma 7); the first phase [z] admitting a successful extension makes
    all nodes adopt a common assignment (Update-Bits); and at phase
    [z + 1] every node outputs according to the same successful simulation
    (Lemma 8), whose lift is a possible execution of [A_R] on the original
    instance (Lemma 9) — hence valid.

    Nodes with equal views perform equal computations, so the node-local
    work is memoized on the hash-consed view identity. *)

(** [make ~gran ()] builds [A*] for the given GRAN bundle.  The resulting
    algorithm expects [Π^c]-style instances (labels [<i, c>] with [c] a
    2-hop coloring); on other inputs no candidate ever passes validation
    and the algorithm never produces outputs.

    @param order search order for Update-Bits (default
    {!Min_search.Round_major}).
    @param max_search_states per-search frontier bound (default
    [1_000_000]). *)
val make :
  gran:Anonet_problems.Gran.t ->
  ?order:Min_search.order ->
  ?max_search_states:int ->
  unit ->
  Anonet_runtime.Algorithm.t

(** [solve ~gran g ()] runs [A*] on the [Π^c]-instance [g] to completion
    under the synchronous executor (with a constant-zero tape: [A*] is
    deterministic and ignores its random bits).

    @param max_rounds round budget (default [4 * (n + 4)^2], generous for
    the quadratic phase schedule). *)
val solve :
  gran:Anonet_problems.Gran.t ->
  Anonet_graph.Graph.t ->
  ?order:Min_search.order ->
  ?max_rounds:int ->
  unit ->
  (Anonet_runtime.Executor.outcome, string) result
