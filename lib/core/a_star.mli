(** The deterministic anonymous algorithm [A*] (Theorem 1, Figure 3).

    [A*] solves the 2-hop colored variant [Π^c] of any GRAN problem [Π]
    with {e no randomness}: it runs in phases [p = 1, 2, ...], where phase
    [p] spends [p] rounds gathering the depth-[p] local view of the
    current graph [I^p = (V, E, i, c, b^p)] (a full-information exchange
    whose messages are hash-consed view DAGs, see {!Knowledge}) and then
    executes the three sub-procedures of Figure 3 locally:

    - {b Update-Graph}: build the candidate set from the gathered view
      ({!Candidates}), keep the candidates' finite view graphs, select the
      smallest under the [(size, encoding)] order;
    - {b Update-Output}: simulate the randomized solver [A_R] on the
      selected graph using the bitstring labels [b̂] as the random bits;
      if the simulation is successful, adopt the output of one's own alias
      node — irrevocably;
    - {b Update-Bits}: find the smallest successful [p]-extension of the
      bitstring assignment ({!Min_search}) and adopt one's alias's string
      as the next [b] value.

    Termination and correctness follow the paper's analysis: from phase
    [2n] on, every node selects the true finite view graph [I*^p]
    (Lemma 7); the first phase [z] admitting a successful extension makes
    all nodes adopt a common assignment (Update-Bits); and at phase
    [z + 1] every node outputs according to the same successful simulation
    (Lemma 8), whose lift is a possible execution of [A_R] on the original
    instance (Lemma 9) — hence valid.

    Nodes with equal views perform equal computations, so the node-local
    work is memoized on the hash-consed view identity.

    {b Incremental phase engine.}  Once candidate selection stabilizes
    (Lemmas 6–7), consecutive phases repeat two expensive computations on
    the {e same} selected candidate: the Update-Output simulation, and
    the Update-Bits search — whose exactly-[p+1] breadth-first tree is a
    one-level extension of the exactly-[p] tree (the prefix property
    behind Lemma 9).  [A*] therefore keeps a bounded LRU cache of
    {!Min_search.Resumable} handles and simulation results, keyed by the
    selected candidate's canonical encoding (which pins the graph, its
    [<<i, c>, b>] labels, and hence the base assignment).  A phase whose
    selection is unchanged extends the warm frontier by one level instead
    of re-exploring [p] levels; a changed selection misses (evicting the
    least recently used entry at capacity) and starts cold.  Warm results
    are value-identical to cold ones, phase for phase — the test suite
    asserts this directly.  Cache traffic is published on the context's
    registry as [cache.search.hits] / [cache.search.misses] /
    [cache.search.evictions] / [cache.search.resumed_levels] (the BFS
    levels skipped by warm starts) / [cache.search.floor_hits] (handles
    kept alive past shallower targets by their hardened lower bound —
    {!Min_search.Resumable.floor} proves those targets return [None]
    without a rebuild). *)

(** [make ?ctx ~gran ()] builds [A*] for the given GRAN bundle.  The
    resulting algorithm expects [Π^c]-style instances (labels [<i, c>]
    with [c] a 2-hop coloring); on other inputs no candidate ever passes
    validation and the algorithm never produces outputs.

    [ctx] is captured by the algorithm's phase computations: its pool
    parallelizes the Update-Bits searches (byte-identical results, as
    {!Min_search} guarantees) and its observability handle receives the
    [search.*], [sim.*] and [cache.search.*] metrics and the
    [a_star.update_bits] events.

    @param order search order for Update-Bits (default
    {!Min_search.Round_major}).
    @param max_search_states per-search frontier bound (default
    [1_000_000]); for warm searches the bound is cumulative over a
    handle's lifetime.
    @param incremental enable the cross-phase cache (default [true]; the
    cold path is kept for ablation and for the equivalence tests).
    @param search_cache_cap bound on live cache entries (default [32]).
    @param pruning core-guided pruning for the Update-Bits searches
    (default [true]; see {!Min_search.minimal_successful} —
    value-identical either way, kept for ablation). *)
val make :
  ?ctx:Anonet_runtime.Run_ctx.t ->
  gran:Anonet_problems.Gran.t ->
  ?order:Min_search.order ->
  ?max_search_states:int ->
  ?incremental:bool ->
  ?search_cache_cap:int ->
  ?pruning:bool ->
  unit ->
  Anonet_runtime.Algorithm.t

(** [solve ?ctx ~gran g ()] runs [A*] on the [Π^c]-instance [g] to
    completion under the synchronous executor (with a constant-zero tape:
    [A*] is deterministic and ignores its random bits), timed under an
    [a_star.solve] span.  [ctx] is threaded both into the executor and
    into the phase computations (see {!make}).

    @param max_rounds round budget (default [4 * (n + 4)^2], generous for
    the quadratic phase schedule). *)
val solve :
  ?ctx:Anonet_runtime.Run_ctx.t ->
  gran:Anonet_problems.Gran.t ->
  Anonet_graph.Graph.t ->
  ?order:Min_search.order ->
  ?max_rounds:int ->
  ?incremental:bool ->
  ?search_cache_cap:int ->
  ?pruning:bool ->
  unit ->
  (Anonet_runtime.Executor.outcome, string) result
