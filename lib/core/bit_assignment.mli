(** Bit assignments [b : V -> {0,1}*] and their canonical orders
    (Section 2.2).

    A [t]-round simulation of the randomized algorithm [A_R] is induced by
    assigning every node a bitstring to replace its random bits.  The
    derandomization needs a {e predetermined total order} on assignments so
    that all nodes deterministically agree on "the smallest successful"
    one.  The paper fixes: shorter (uniform) length first, then
    lexicographic on the tuple [(b(u_1), ..., b(u_k))] in the canonical
    node order — {!compare_node_major}.  Any predetermined order supports
    the same lemmas; the library's default is {!compare_round_major}
    (compare the round-1 bits of all nodes, then round 2, ...), which
    admits an efficient prefix-sharing search.  Tests cross-check that both
    orders yield valid derandomizations. *)

type t = Anonet_graph.Bits.t array
(** indexed by the canonical node order of the graph being simulated *)

(** [uniform empty_of n] — [make n len]: [n] all-zero strings of length
    [len]. *)
val make : int -> len:int -> t

(** All-empty assignment for [n] nodes. *)
val empty : int -> t

(** [min_length b] is the number of whole rounds [b] can feed — the length
    of the induced simulation. *)
val min_length : t -> int

(** [max_length b] is the longest string in [b]. *)
val max_length : t -> int

(** [is_uniform b] holds when all strings have equal length (the paper's
    assignments [b : V -> {0,1}^t]). *)
val is_uniform : t -> bool

(** [is_extension ~base b] holds when [b.(i)] extends [base.(i)] for all
    [i] — the "p-extension" relation of Update-Bits (with [len]
    uniformity checked separately). *)
val is_extension : base:t -> t -> bool

(** The paper's order: length first (uniform lengths compared as
    integers; non-uniform assignments compare by their sorted length
    vectors), then node-major lexicographic. *)
val compare_node_major : t -> t -> int

(** The library default: length first, then round-major lexicographic
    (round-1 bits of [u_1..u_k], then round-2 bits, ...). *)
val compare_round_major : t -> t -> int

(** [free_bits base ~len] is the number of free bit positions an extension
    to length [len] must fill — the [f] such that {!extensions} has [2^f]
    elements.
    @raise Invalid_argument if some [base] string is longer than [len]. *)
val free_bits : t -> len:int -> int

(** [extensions base ~len] enumerates every assignment extending [base]
    with all strings of length exactly [len], in {e node-major}
    lexicographic order.  The sequence has [2^f] elements where [f] is the
    number of free bit positions — intended for tiny cross-checks only.
    @raise Invalid_argument if some [base] string is longer than [len]. *)
val extensions : t -> len:int -> t Seq.t

(** [extensions_range base ~len ~lo ~hi] is the [lo .. hi-1] slice (by
    enumeration index, i.e. by the integer whose bits fill the free
    positions) of {!extensions} — random access for sharding the
    node-major search by fixed bit-prefix.
    @raise Invalid_argument on a range outside [0 .. 2^f]. *)
val extensions_range : t -> len:int -> lo:int -> hi:int -> t Seq.t

(** [lift ~map b] pulls an assignment on a factor back to the product:
    product node [v] receives [b.(map.(v))] — how a simulation on the view
    graph induces an execution on the original graph (Section 2.3.2). *)
val lift : map:int array -> t -> t

val pp : Format.formatter -> t -> unit
