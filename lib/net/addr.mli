(** Listen/connect address specs: [unix:PATH] for a Unix-domain socket,
    [tcp:HOST:PORT] for TCP. *)

type t =
  | Unix_sock of string
  | Tcp of string * int  (** host, port *)

val of_string : string -> (t, string) result
val to_string : t -> string

val sockaddr : t -> Unix.sockaddr
(** Resolves the host for TCP addresses.
    @raise Failure if the host does not resolve. *)

val domain : t -> Unix.socket_domain
