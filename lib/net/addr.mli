(** Listen/connect address specs: [unix:PATH] for a Unix-domain socket,
    [tcp:HOST:PORT] for TCP. *)

type t =
  | Unix_sock of string
  | Tcp of string * int  (** host, port *)

val of_string : string -> (t, string) result
val to_string : t -> string

val resolve : t -> (Unix.socket_domain * Unix.sockaddr, string) result
(** The socket family and address to bind/connect, from a single
    resolution (for TCP, one [getaddrinfo] call — family and address
    always agree, even when the host resolves round-robin).  Never
    raises; an unresolvable host is an [Error]. *)
