module Run_error = Anonet_runtime.Run_error

let net_outcome failure =
  let code = Run_error.exit_code (Run_error.Net failure) in
  let message =
    match failure with
    | Run_error.Protocol { message }
    | Run_error.Rejected { message }
    | Run_error.Connection { message } -> message
  in
  { Runner.code; out = ""; err = message }

let connection m = net_outcome (Run_error.Connection { message = m })
let protocol m = net_outcome (Run_error.Protocol { message = m })

let submit ?(stream = 1) addr job ~on_event =
  match Addr.resolve addr with
  | Error m -> connection m
  | Ok (domain, sockaddr) ->
  match
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd sockaddr
     with e -> (try Unix.close fd with _ -> ()); raise e);
    fd
  with
  | exception Unix.Unix_error (err, _, _) ->
    connection
      (Printf.sprintf "cannot connect to %s: %s" (Addr.to_string addr)
         (Unix.error_message err))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match
          Frame.write fd
            { Frame.typ = Frame.Submit; stream; payload = Job.encode job }
        with
        | exception Unix.Unix_error (err, _, _) ->
          connection ("send failed: " ^ Unix.error_message err)
        | () ->
          let rec await () =
            match Frame.read fd with
            | exception Unix.Unix_error (err, _, _) ->
              connection ("receive failed: " ^ Unix.error_message err)
            | Ok None ->
              connection "server closed the connection before the result"
            | Error e -> protocol (Format.asprintf "%a" Frame.pp_protocol_error e)
            | Ok (Some f) when f.Frame.stream <> stream ->
              (* frames for streams we never opened: a server bug; skip *)
              await ()
            | Ok (Some { Frame.typ = Frame.Event; payload; _ }) ->
              on_event payload;
              await ()
            | Ok (Some { Frame.typ = Frame.Result; payload; _ }) ->
              if String.length payload < 1 then protocol "empty result frame"
              else
                {
                  Runner.code = Char.code payload.[0];
                  out = String.sub payload 1 (String.length payload - 1);
                  err = "";
                }
            | Ok (Some { Frame.typ = Frame.Error; payload; _ }) ->
              if String.length payload < 1 then protocol "empty error frame"
              else
                {
                  Runner.code = Char.code payload.[0];
                  out = "";
                  err = String.sub payload 1 (String.length payload - 1);
                }
            | Ok (Some { Frame.typ = Frame.Submit | Frame.Cancel; _ }) ->
              protocol "server sent a client-to-server frame type"
          in
          await ())
