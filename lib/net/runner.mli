(** Executes a {!Job.t} — the one engine behind both the CLI subcommands
    and the server's job loop, which is what makes "the same job over a
    socket" byte-identical to "the same job in-process": both sides build
    the same {!Anonet_runtime.Run_ctx}, run the same entry points, and
    render the same text.

    Observability: the caller supplies the handle.  The CLI wires its
    [--metrics]/[--events] flags in; the server gives each job an
    event-only handle whose NDJSON lines become [event] frames on the
    job's stream. *)

exception Bad_spec of string
(** The job (or one of its knob values) does not parse — a rejection, not
    an execution failure: nothing was run.  The server maps this to an
    [error] frame with {!Anonet_runtime.Run_error.Rejected}'s code; the
    CLI prints the message and exits 1. *)

type outcome = {
  code : int;  (** 0 on success, else the {!Anonet_runtime.Run_error} code *)
  out : string;  (** stdout text, exactly as the CLI subcommand prints it *)
  err : string;  (** diagnostic on failure; [""] on success *)
}

val bundle_of_spec : string -> Anonet_problems.Gran.t
(** [mis], [coloring], [2hop]/[two-hop] or [matching].
    @raise Bad_spec otherwise. *)

val coloring_of_spec :
  Anonet_graph.Graph.t -> string -> Anonet_graph.Label.t array
(** [unique], [mod:K] or [random:SEED] (the latter runs the Las-Vegas
    2-hop solver).  @raise Bad_spec on unknown specs or a [mod:K] that is
    not a 2-hop coloring of the graph. *)

val graph_of_spec : string -> Anonet_graph.Graph.t
(** {!Anonet_graph.Spec.graph} with failures mapped to {!Bad_spec}. *)

val execute : ?obs:Anonet_obs.Obs.t -> Job.t -> outcome
(** Runs the job to completion on the calling thread.  Job keys:

    - [solve]: [problem], [graph] (required); [seed] (default 1),
      [faults], [adversary], [divergence], [retransmit] ([true]/[false]),
      [jobs] (domains for attempt racing, default 1);
    - [derandomize]: [problem], [graph] (required); [colors] (default
      [random:1]), [method] ([a-infinity], default, or [a-star]), [jobs];
    - [experiment]: [id] (all experiments when absent), [jobs].

    @raise Bad_spec on unknown keys' values that do not parse, missing
    required keys, or unparseable specs.  Exceptions from the run itself
    (e.g. [Invalid_argument] when fault injection breaks an unwrapped
    algorithm's protocol) propagate. *)
