type typ = Submit | Cancel | Event | Result | Error

type t = { typ : typ; stream : int; payload : string }

let magic = "ANET"
let version = 1
let header_size = 14
let max_payload = 16 * 1024 * 1024

type protocol_error =
  | Bad_magic
  | Bad_version of int
  | Bad_type of int
  | Oversized of int
  | Truncated

let pp_protocol_error fmt = function
  | Bad_magic -> Format.pp_print_string fmt "bad magic (not an anonet peer?)"
  | Bad_version v -> Format.fprintf fmt "unsupported protocol version %d" v
  | Bad_type c -> Format.fprintf fmt "unknown frame type %d" c
  | Oversized n -> Format.fprintf fmt "frame payload of %d bytes over the cap" n
  | Truncated -> Format.pp_print_string fmt "connection closed mid-frame"

let type_code = function
  | Submit -> 1
  | Cancel -> 2
  | Event -> 3
  | Result -> 4
  | Error -> 5

let type_of_code = function
  | 1 -> Some Submit
  | 2 -> Some Cancel
  | 3 -> Some Event
  | 4 -> Some Result
  | 5 -> Some Error
  | _ -> None

let encode { typ; stream; payload } =
  let len = String.length payload in
  if len > max_payload then
    invalid_arg (Printf.sprintf "Frame.encode: %d-byte payload over the cap" len);
  if stream < 0 || stream > 0xFFFF_FFFF then
    invalid_arg (Printf.sprintf "Frame.encode: stream id %d out of range" stream);
  let b = Bytes.create (header_size + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint8 b 4 version;
  Bytes.set_uint8 b 5 (type_code typ);
  Bytes.set_int32_be b 6 (Int32.of_int stream);
  Bytes.set_int32_be b 10 (Int32.of_int len);
  Bytes.blit_string payload 0 b header_size len;
  Bytes.unsafe_to_string b

type decoded =
  | Decoded of t * int
  | Need_more of int
  | Malformed of protocol_error

(* Validates the parts of the header present in [s] at [off] — bad bytes
   are reported before the header is even complete, so a peer speaking the
   wrong protocol is rejected on its first few bytes. *)
let check_prefix s ~off ~avail =
  let magic_ok =
    let rec go i =
      i >= 4 || i >= avail || (s.[off + i] = magic.[i] && go (i + 1))
    in
    go 0
  in
  if not magic_ok then Some Bad_magic
  else if avail > 4 && Char.code s.[off + 4] <> version then
    Some (Bad_version (Char.code s.[off + 4]))
  else if avail > 5 && type_of_code (Char.code s.[off + 5]) = None then
    Some (Bad_type (Char.code s.[off + 5]))
  else None

let u32_be s off = Int32.to_int (String.get_int32_be s off) land 0xFFFF_FFFF

let decode s ~off =
  let avail = String.length s - off in
  match check_prefix s ~off ~avail with
  | Some e -> Malformed e
  | None ->
    if avail < header_size then Need_more header_size
    else begin
      let len = u32_be s (off + 10) in
      if len > max_payload then Malformed (Oversized len)
      else if avail < header_size + len then Need_more (header_size + len)
      else
        let typ = Option.get (type_of_code (Char.code s.[off + 5])) in
        let stream = u32_be s (off + 6) in
        let payload = String.sub s (off + header_size) len in
        Decoded ({ typ; stream; payload }, header_size + len)
    end

let write fd t =
  let s = encode t in
  let n = String.length s in
  let rec go sent =
    if sent < n then
      go (sent + Unix.write_substring fd s sent (n - sent))
  in
  go 0

(* Reads exactly [n] bytes; [Ok None] when EOF arrives before the first
   byte (so a clean close between frames is distinguishable from a
   truncation inside one). *)
let really_read fd n =
  let b = Bytes.create n in
  let rec go got =
    if got = n then Ok (Some (Bytes.unsafe_to_string b))
    else
      match Unix.read fd b got (n - got) with
      | 0 -> if got = 0 then Ok None else Error Truncated
      | k -> go (got + k)
  in
  go 0

let read fd =
  match really_read fd header_size with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some header) -> begin
      (* the bare header decodes completely only for an empty payload;
         otherwise [Need_more] tells us to read the payload separately *)
      match decode header ~off:0 with
      | Malformed e -> Error e
      | Decoded (t, _) -> Ok (Some t)
      | Need_more _ ->
        let len = u32_be header 10 in
        if len > max_payload then Error (Oversized len)
        else begin
          match really_read fd len with
          | Error _ as e -> e
          | Ok None -> Error Truncated
          | Ok (Some payload) ->
            let typ = Option.get (type_of_code (Char.code header.[5])) in
            Ok (Some { typ; stream = u32_be header 6; payload })
        end
    end
