(** The [anonet serve] loop: accepts connections, decodes {!Frame}s,
    and multiplexes submitted jobs across one shared
    {!Anonet_parallel.Pool} of domains.

    Concurrency model: the pool's [n] domains each run a worker loop that
    drains a shared job queue, so up to [n] jobs execute at once — every
    job runs sequentially on its worker unless its own [jobs=K] key asks
    for a private pool.  Each connection gets two threads: a reader that
    parses frames, and a writer that drains a per-connection outbox of
    outbound frames — workers and readers only ever {e enqueue} output,
    so no thread holding a lock or a pool slot can block on a peer's
    socket, and a job's [event] frames never interleave bytes with
    another job's on the same socket.

    Backpressure: three bounds, each answered without stalling anything
    shared.  The job queue is bounded ([max_queue]); a [submit] that
    arrives with the queue full is answered immediately with an [error]
    frame carrying {!Anonet_runtime.Run_error.Rejected}'s exit code.  The
    per-connection outbox is bounded; a client that stops reading while
    its jobs keep producing is dropped.  Socket writes carry a send
    timeout ([send_timeout], via [SO_SNDTIMEO]); a write that cannot make
    progress within it drops the connection instead of wedging the writer
    thread forever.

    Streams: ids are chosen by the client, scoped per connection, and
    live from an accepted [submit] to the stream's final frame — after
    which the id may be reused.  A [submit] on a stream that is still in
    flight is a protocol error; a [cancel] for an unknown (or already
    finished) stream is a no-op.

    Cancellation ([cancel] frame): a queued job is dropped; a running
    job's output is suppressed.  Either way the stream is answered with a
    single [error] frame ([Rejected], message ["cancelled"]).

    Metrics (when [obs] is live): [server.connections] and
    [server.frames.in]/[server.frames.out]/[server.frames.rejected]
    counters, and the [server.jobs.in_flight] gauge (queued + running). *)

type t

val start :
  ?obs:Anonet_obs.Obs.t ->
  ?domains:int ->
  ?max_queue:int ->
  ?send_timeout:float ->
  Addr.t ->
  (t, string) result
(** Binds, listens, and spawns the accept and worker threads; returns
    once the server is accepting.  [domains] defaults to
    [Domain.recommended_domain_count ()]; [max_queue] to 64;
    [send_timeout] to 30 seconds (0 disables the write deadline).  A
    stale Unix-socket path is unlinked before binding.  An unresolvable
    host or an address that cannot be bound is an [Error] with a
    human-readable diagnostic; nothing is left running in that case. *)

val bound_port : t -> int option
(** The actual TCP port — useful after binding port 0 in tests. *)

val stop : t -> unit
(** Stops accepting, drains running jobs, flushes each connection's
    outbox (bounded by [send_timeout] per write), joins every thread and
    the pool, and closes all sockets.  Idempotent. *)
