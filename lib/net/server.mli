(** The [anonet serve] loop: accepts connections, decodes {!Frame}s,
    and multiplexes submitted jobs across one shared
    {!Anonet_parallel.Pool} of domains.

    Concurrency model: the pool's [n] domains each run a worker loop that
    drains a shared job queue, so up to [n] jobs execute at once — every
    job runs sequentially on its worker unless its own [jobs=K] key asks
    for a private pool.  One reader thread per connection parses frames;
    writes to a connection are serialized by a per-connection lock, so a
    job's [event] frames never interleave bytes with another job's on the
    same socket.

    Backpressure: the job queue is bounded ([max_queue]); a [submit] that
    arrives with the queue full is answered immediately with an [error]
    frame carrying {!Anonet_runtime.Run_error.Rejected}'s exit code
    instead of stalling the connection's reader.

    Cancellation ([cancel] frame): a queued job is dropped; a running
    job's output is suppressed.  Either way the stream is answered with a
    single [error] frame ([Rejected], message ["cancelled"]).

    Metrics (when [obs] is live): [server.connections] and
    [server.frames.in]/[server.frames.out]/[server.frames.rejected]
    counters, and the [server.jobs.in_flight] gauge (queued + running). *)

type t

val start :
  ?obs:Anonet_obs.Obs.t ->
  ?domains:int ->
  ?max_queue:int ->
  Addr.t ->
  t
(** Binds, listens, and spawns the accept and worker threads; returns
    once the server is accepting.  [domains] defaults to
    [Domain.recommended_domain_count ()]; [max_queue] to 64.  A stale
    Unix-socket path is unlinked before binding.
    @raise Unix.Unix_error if the address cannot be bound. *)

val bound_port : t -> int option
(** The actual TCP port — useful after binding port 0 in tests. *)

val stop : t -> unit
(** Stops accepting, drains running jobs, joins every thread and the
    pool, and closes all sockets.  Idempotent. *)

val run : ?obs:Anonet_obs.Obs.t -> ?domains:int -> ?max_queue:int -> Addr.t -> unit
(** [start] then block forever (until the process is signalled) — the
    CLI entry point. *)
