(** Job specs: what a [submit] frame carries.

    A job is a kind — [solve], [derandomize] or [experiment] — plus
    string key/value pairs naming the same knobs the CLI subcommands take
    ([graph], [problem], [seed], [faults], [adversary], [divergence],
    [retransmit], [jobs], [colors], [method], [id]).  Two encodings:

    - {e text} ({!of_text}/{!to_text}): one [key=value] per line with [#]
      comments — the job-file format [anonet client] reads;
    - {e binary} ({!encode}/{!decode}): the length-prefixed pair encoding
      that travels inside a [submit] frame (one byte of kind, a 16-bit
      big-endian pair count, then per pair a 16-bit key length, the key,
      a 32-bit value length, the value).

    Keys are free-form here; {!Runner} decides which it understands and
    rejects the rest, so the wire encoding never needs to change when a
    runner grows a knob. *)

type kind = Solve | Derandomize | Experiment

type t = { kind : kind; pairs : (string * string) list }

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val get : t -> string -> string option
(** First binding of the key, if any. *)

val encode : t -> string
(** @raise Invalid_argument on a key over 65535 bytes or more than 65535
    pairs (no real job comes close; the bound keeps the u16 fields honest). *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; rejects truncated input and trailing garbage. *)

val of_text : string -> (t, string) result
(** Parse the job-file format.  Requires a [kind=...] line; splits on the
    first [=]; ignores blank lines and [#] comments. *)

val to_text : t -> string
