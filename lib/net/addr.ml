type t = Unix_sock of string | Tcp of string * int

let of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
    let path = String.sub s (i + 1) (String.length s - i - 1) in
    if path = "" then Error "empty unix socket path" else Ok (Unix_sock path)
  | Some i when String.sub s 0 i = "tcp" -> begin
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" rest)
      | Some j -> begin
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p <= 0xFFFF -> Ok (Tcp (host, p))
          | _ -> Error (Printf.sprintf "bad tcp port %S" port)
        end
    end
  | _ -> Error (Printf.sprintf "unknown address %S (want unix:PATH or tcp:HOST:PORT)" s)

let to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

(* One getaddrinfo call yields both the family and the address: resolving
   them separately can disagree under round-robin DNS (PF_INET6 socket,
   IPv4 sockaddr) and would double the lookup cost per connect/bind. *)
let resolve = function
  | Unix_sock p -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX p)
  | Tcp (host, port) -> begin
      match
        Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_family; ai_addr; _ } :: _ -> Ok (ai_family, ai_addr)
      | [] | (exception Unix.Unix_error _) ->
        Error (Printf.sprintf "cannot resolve host %S" host)
    end
