module Graph = Anonet_graph.Graph
module Label = Anonet_graph.Label
module Props = Anonet_graph.Props
module Problem = Anonet_problems.Problem
module Gran = Anonet_problems.Gran
module Bundles = Anonet_algorithms.Bundles
module Executor = Anonet_runtime.Executor
module Faults = Anonet_runtime.Faults
module Adversary = Anonet_runtime.Adversary
module Las_vegas = Anonet_runtime.Las_vegas
module Run_ctx = Anonet_runtime.Run_ctx
module Run_error = Anonet_runtime.Run_error
module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs

exception Bad_spec of string

let bad_spec fmt = Printf.ksprintf (fun m -> raise (Bad_spec m)) fmt

type outcome = { code : int; out : string; err : string }

let graph_of_spec spec =
  try Anonet_graph.Spec.graph spec with
  | Failure m -> raise (Bad_spec m)
  | Sys_error m -> bad_spec "cannot load graph: %s" m

let bundle_of_spec = function
  | "mis" -> Bundles.mis
  | "coloring" -> Bundles.coloring
  | "2hop" | "two-hop" -> Bundles.two_hop_coloring
  | "matching" -> Bundles.maximal_matching
  | p -> bad_spec "unknown problem %S (mis|coloring|2hop|matching)" p

let coloring_of_spec g spec =
  let n = Graph.n g in
  match String.split_on_char ':' spec with
  | [ "unique" ] -> Array.init n (fun v -> Label.Int v)
  | [ "mod"; k ] ->
    let k = try int_of_string k with Failure _ -> bad_spec "bad mod spec %S" spec in
    let c = Array.init n (fun v -> Label.Int (v mod k)) in
    if not (Props.is_k_hop_coloring g 2 (fun v -> c.(v))) then
      bad_spec "mod:%d is not a 2-hop coloring of this graph" k;
    c
  | [ "random"; seed ] -> begin
      let seed =
        try int_of_string seed with Failure _ -> bad_spec "bad seed in %S" spec
      in
      match
        Las_vegas.solve_msg Anonet_algorithms.Rand_two_hop.algorithm g ~seed ()
      with
      | Ok r -> r.Las_vegas.outcome.Executor.outputs
      | Error m ->
        (* a rejection like every other unrealizable colors= spec, not a
           bare Failure escaping to the generic job-failed handler *)
        bad_spec "random:%d base coloring failed: %s" seed m
    end
  | _ -> bad_spec "unknown coloring spec %S" spec

(* ---------- key accessors ---------- *)

let required job key =
  match Job.get job key with
  | Some v -> v
  | None ->
    bad_spec "%s job needs a %s=... key" (Job.kind_to_string job.Job.kind) key

let int_key job key default =
  match Job.get job key with
  | None -> default
  | Some v -> (
    try int_of_string v with Failure _ -> bad_spec "bad %s=%S (want an int)" key v)

let float_opt_key job key =
  match Job.get job key with
  | None -> None
  | Some v -> (
    try Some (float_of_string v)
    with Failure _ -> bad_spec "bad %s=%S (want a float)" key v)

let bool_key job key =
  match Job.get job key with
  | None | Some "false" -> false
  | Some "true" -> true
  | Some v -> bad_spec "bad %s=%S (want true or false)" key v

let faults_key job =
  match Job.get job "faults" with
  | None -> None
  | Some s -> begin
      match Faults.plan_of_string s with
      | Ok p -> Some p
      | Error m -> bad_spec "bad faults spec: %s" m
    end

let adversary_key job =
  match Job.get job "adversary" with
  | None -> None
  | Some s -> begin
      match Adversary.plan_of_string s with
      | Ok p -> Some p
      | Error m -> bad_spec "bad adversary spec: %s" m
    end

(* ---------- rendering (pinned to the CLI's historical formats) ---------- *)

let outputs_lines b outputs =
  Array.iteri
    (fun v o -> Printf.bprintf b "  node %2d: %s\n" v (Label.to_string o))
    outputs

let with_jobs ~obs jobs f =
  if jobs <= 1 then f None
  else Pool.with_pool ~obs ~domains:jobs (fun p -> f (Some p))

(* ---------- the three job kinds ---------- *)

let run_solve ~obs job =
  let g = graph_of_spec (required job "graph") in
  let problem = required job "problem" in
  let bundle = bundle_of_spec problem in
  let seed = int_key job "seed" 1 in
  let jobs = int_key job "jobs" 1 in
  let divergence = float_opt_key job "divergence" in
  let plan = faults_key job in
  let adversary = adversary_key job in
  let b = Buffer.create 256 in
  (match plan with
  | None -> ()
  | Some p -> Printf.bprintf b "fault plan: %s\n" (Faults.plan_to_string p));
  (match adversary with
  | None -> ()
  | Some p -> Printf.bprintf b "adversary plan: %s\n" (Adversary.plan_to_string p));
  let solver =
    if bool_key job "retransmit" then
      Anonet_runtime.Retransmit.wrap ~obs bundle.Gran.solver
    else bundle.Gran.solver
  in
  match
    with_jobs ~obs jobs (fun pool ->
        let ctx = Run_ctx.make ?faults:plan ?adversary ?pool ~obs () in
        Las_vegas.solve ~ctx solver g ~seed ?divergence ())
  with
  | Error f ->
    {
      code = Run_error.exit_code (Run_error.Las_vegas f);
      out = Buffer.contents b;
      err = f.Las_vegas.message;
    }
  | Ok r ->
    let o = r.Las_vegas.outcome.Executor.outputs in
    Printf.bprintf b "solved %s in %d rounds (%d messages, attempt %d):\n"
      problem r.Las_vegas.outcome.Executor.rounds
      r.Las_vegas.outcome.Executor.messages r.Las_vegas.attempts;
    outputs_lines b o;
    Printf.bprintf b "valid: %b\n"
      (bundle.Gran.problem.Problem.is_valid_output g o);
    { code = 0; out = Buffer.contents b; err = "" }

let run_derandomize ~obs job =
  let g = graph_of_spec (required job "graph") in
  let problem = required job "problem" in
  let bundle = bundle_of_spec problem in
  let colors =
    coloring_of_spec g (Option.value ~default:"random:1" (Job.get job "colors"))
  in
  let inst = Problem.attach_coloring g colors in
  let jobs = int_key job "jobs" 1 in
  let b = Buffer.create 256 in
  match Option.value ~default:"a-infinity" (Job.get job "method") with
  | "a-star" -> begin
      match
        with_jobs ~obs jobs (fun pool ->
            Anonet.A_star.solve ~ctx:(Run_ctx.make ?pool ~obs ()) ~gran:bundle
              inst ())
      with
      | Error m -> { code = 1; out = ""; err = m }
      | Ok outcome ->
        Printf.bprintf b "A* solved %s^c deterministically in %d rounds:\n"
          problem outcome.Executor.rounds;
        outputs_lines b outcome.Executor.outputs;
        Printf.bprintf b "valid: %b\n"
          (bundle.Gran.problem.Problem.is_valid_output g
             outcome.Executor.outputs);
        { code = 0; out = Buffer.contents b; err = "" }
    end
  | "a-infinity" -> begin
      match
        with_jobs ~obs jobs (fun pool ->
            Anonet.A_infinity.solve ~ctx:(Run_ctx.make ?pool ~obs ())
              ~gran:bundle inst ())
      with
      | Error m -> { code = 1; out = ""; err = m }
      | Ok r ->
        Printf.bprintf b
          "A_infinity solved %s^c (view graph: %d nodes; simulation: %d \
           rounds; search: %d states):\n"
          problem
          (Graph.n r.Anonet.A_infinity.view_graph.Anonet_views.View_graph.graph)
          (Anonet.Bit_assignment.max_length
             r.Anonet.A_infinity.found.Anonet.Min_search.assignment)
          r.Anonet.A_infinity.found.Anonet.Min_search.states_explored;
        outputs_lines b r.Anonet.A_infinity.outputs;
        Printf.bprintf b "valid: %b\n"
          (bundle.Gran.problem.Problem.is_valid_output g
             r.Anonet.A_infinity.outputs);
        { code = 0; out = Buffer.contents b; err = "" }
    end
  | m -> bad_spec "unknown method %S (a-star|a-infinity)" m

let render_output out =
  let module E = Anonet_experiments.Experiments in
  out.E.prelude
  ^ String.concat "" (List.map (fun r -> r.E.line) out.E.rows)
  ^ out.E.coda

let run_experiment ~obs job =
  let module E = Anonet_experiments.Experiments in
  let jobs = int_key job "jobs" 1 in
  (* validate the id before spinning up a pool *)
  (match Job.get job "id" with
  | None -> ()
  | Some id ->
    if not (List.mem_assoc (String.lowercase_ascii id) E.all) then
      bad_spec "unknown experiment id %S" id);
  with_jobs ~obs jobs (fun pool ->
      let ctx = Run_ctx.make ?pool ~obs () in
      match Job.get job "id" with
      | None ->
        let outs = E.run_all ~ctx () in
        {
          code = 0;
          out = String.concat "" (List.map render_output outs);
          err = "";
        }
      | Some id -> begin
          match E.run ~ctx id with
          | Ok out -> { code = 0; out = render_output out; err = "" }
          | Error m -> { code = 1; out = ""; err = m }
        end)

let execute ?(obs = Obs.null) job =
  match job.Job.kind with
  | Job.Solve -> run_solve ~obs job
  | Job.Derandomize -> run_derandomize ~obs job
  | Job.Experiment -> run_experiment ~obs job
