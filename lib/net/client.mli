(** The [anonet client] side: submit one job over a socket and stream its
    frames back.

    {!submit} mirrors {!Runner.execute}'s outcome so a caller can swap an
    in-process run for a remote one without changing how it prints or
    exits: [on_event] receives each NDJSON event line (without the
    trailing newline) as the corresponding local run would have written
    it, and the returned outcome carries the job's exit code and text.
    Transport problems are folded into the same outcome with the
    {!Anonet_runtime.Run_error.Net} band's codes ([Connection] when the
    server vanishes mid-job, [Protocol] when it sends bytes that are not
    frames). *)

val submit :
  ?stream:int -> Addr.t -> Job.t -> on_event:(string -> unit) -> Runner.outcome
(** Connect, send one [submit] frame (stream id [stream], default 1),
    dispatch [event] frames to [on_event], and return on the job's
    [result] or [error] frame.  Never raises on transport failure —
    connection refused, mid-job EOF and malformed frames all come back as
    outcomes with the appropriate [Net] exit code. *)
