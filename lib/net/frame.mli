(** Length-prefixed binary framing for the [anonet serve] wire protocol.

    Every frame is a fixed 14-byte header followed by a payload:

    {v
      offset  size  field
      0       4     magic    "ANET"
      4       1     version  (currently 1)
      5       1     type     1=submit 2=cancel 3=event 4=result 5=error
      6       4     stream   big-endian unsigned stream id
      10      4     length   big-endian unsigned payload length
      14      len   payload
    v}

    Stream ids multiplex many jobs over one connection: the client picks a
    fresh id per [submit]; every [event], [result] or [error] the server
    sends carries the id of the job it belongs to.  Payload contents by
    type:

    - [submit]: a binary-encoded job spec ({!Job.encode});
    - [cancel]: empty — the stream id names the job to cancel;
    - [event]: one NDJSON event line, without the trailing newline —
      byte-identical to what {!Anonet_obs.Events.ndjson} would have
      written locally;
    - [result]: one byte of exit code (0) then the job's stdout text;
    - [error]: one byte of {!Anonet_runtime.Run_error} exit code then the
      diagnostic message.

    Payloads are capped at {!max_payload}; a length field above the cap is
    rejected before any allocation, so a malicious or corrupt peer cannot
    make the reader allocate unbounded memory.  The codec is pure
    (string-in/string-out) so the qcheck suite can round-trip arbitrary
    frames and fuzz truncations without sockets. *)

type typ = Submit | Cancel | Event | Result | Error

type t = { typ : typ; stream : int; payload : string }

val magic : string
(** ["ANET"]. *)

val version : int

val header_size : int
(** 14 bytes. *)

val max_payload : int
(** 16 MiB. *)

(** Why a byte sequence is not a frame.  [Truncated] never appears here —
    incomplete input is reported as {!Need_more}, not as an error —
    except from the blocking reader, where EOF mid-frame is final. *)
type protocol_error =
  | Bad_magic
  | Bad_version of int
  | Bad_type of int
  | Oversized of int  (** declared payload length above {!max_payload} *)
  | Truncated  (** connection closed mid-frame (blocking reader only) *)

val pp_protocol_error : Format.formatter -> protocol_error -> unit

val encode : t -> string
(** @raise Invalid_argument if the payload exceeds {!max_payload} or the
    stream id is outside [0 .. 2^32-1]. *)

type decoded =
  | Decoded of t * int
      (** the frame and the total bytes it consumed from [off] *)
  | Need_more of int
      (** not yet decodable: the next frame occupies this many bytes from
          [off] (at least {!header_size} until the header is complete) *)
  | Malformed of protocol_error

val decode : string -> off:int -> decoded
(** Pure incremental decode of the frame starting at [off]. *)

val write : Unix.file_descr -> t -> unit
(** Blocking write of one encoded frame.  Not serialized — callers writing
    from several threads must hold their own per-connection lock. *)

val read : Unix.file_descr -> (t option, protocol_error) result
(** Blocking read of one frame.  [Ok None] is a clean EOF at a frame
    boundary; [Error Truncated] is an EOF inside one. *)
