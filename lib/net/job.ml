type kind = Solve | Derandomize | Experiment

type t = { kind : kind; pairs : (string * string) list }

let kind_to_string = function
  | Solve -> "solve"
  | Derandomize -> "derandomize"
  | Experiment -> "experiment"

let kind_of_string = function
  | "solve" -> Some Solve
  | "derandomize" -> Some Derandomize
  | "experiment" -> Some Experiment
  | _ -> None

let kind_code = function Solve -> 1 | Derandomize -> 2 | Experiment -> 3

let kind_of_code = function
  | 1 -> Some Solve
  | 2 -> Some Derandomize
  | 3 -> Some Experiment
  | _ -> None

let get t key =
  List.find_map (fun (k, v) -> if String.equal k key then Some v else None)
    t.pairs

let encode { kind; pairs } =
  let count = List.length pairs in
  if count > 0xFFFF then invalid_arg "Job.encode: too many pairs";
  let b = Buffer.create 256 in
  Buffer.add_uint8 b (kind_code kind);
  Buffer.add_uint16_be b count;
  List.iter
    (fun (k, v) ->
      if String.length k > 0xFFFF then invalid_arg "Job.encode: oversized key";
      Buffer.add_uint16_be b (String.length k);
      Buffer.add_string b k;
      Buffer.add_int32_be b (Int32.of_int (String.length v));
      Buffer.add_string b v)
    pairs;
  Buffer.contents b

let decode s =
  let len = String.length s in
  let error fmt = Printf.ksprintf Result.error fmt in
  if len < 3 then error "job spec too short (%d bytes)" len
  else
    match kind_of_code (Char.code s.[0]) with
    | None -> error "unknown job kind code %d" (Char.code s.[0])
    | Some kind ->
      let count = Char.code s.[1] * 256 + Char.code s.[2] in
      let rec pairs acc off remaining =
        if remaining = 0 then
          if off = len then Ok { kind; pairs = List.rev acc }
          else error "%d trailing bytes after the last pair" (len - off)
        else if off + 2 > len then Error "truncated key length"
        else
          let klen = Char.code s.[off] * 256 + Char.code s.[off + 1] in
          let off = off + 2 in
          if off + klen > len then Error "truncated key"
          else
            let key = String.sub s off klen in
            let off = off + klen in
            if off + 4 > len then Error "truncated value length"
            else
              let vlen =
                Int32.to_int (String.get_int32_be s off) land 0xFFFF_FFFF
              in
              let off = off + 4 in
              if vlen > len - off then Error "truncated value"
              else
                pairs ((key, String.sub s off vlen) :: acc) (off + vlen)
                  (remaining - 1)
      in
      pairs [] 3 count

let of_text text =
  let pairs =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    |> List.map (fun l ->
           match String.index_opt l '=' with
           | None -> Error (Printf.sprintf "no '=' in job line %S" l)
           | Some i ->
             Ok
               ( String.trim (String.sub l 0 i),
                 String.trim (String.sub l (i + 1) (String.length l - i - 1)) ))
  in
  match List.find_map (function Error e -> Some e | Ok _ -> None) pairs with
  | Some e -> Error e
  | None ->
    let pairs = List.filter_map Result.to_option pairs in
    (match List.assoc_opt "kind" pairs with
    | None -> Error "job file needs a kind=solve|derandomize|experiment line"
    | Some k -> begin
        match kind_of_string k with
        | None -> Error (Printf.sprintf "unknown job kind %S" k)
        | Some kind ->
          Ok { kind; pairs = List.filter (fun (k, _) -> k <> "kind") pairs }
      end)

let to_text { kind; pairs } =
  String.concat ""
    (Printf.sprintf "kind=%s\n" (kind_to_string kind)
    :: List.map (fun (k, v) -> Printf.sprintf "%s=%s\n" k v) pairs)
