module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs
module Events = Anonet_obs.Events
module Run_error = Anonet_runtime.Run_error

let protocol_code =
  Run_error.exit_code (Run_error.Net (Run_error.Protocol { message = "" }))

let rejected_code =
  Run_error.exit_code (Run_error.Net (Run_error.Rejected { message = "" }))

type conn = {
  fd : Unix.file_descr;
  lock : Mutex.t;
      (* serializes writes and guards [closed]/[draining]/[pending]/
         [cancelled]: a job's frames must not interleave bytes with
         another job's on the same socket *)
  mutable closed : bool;
  mutable draining : bool;  (* reader finished; close once pending = 0 *)
  mutable pending : int;  (* queued + running jobs on this connection *)
  cancelled : (int, unit) Hashtbl.t;
}

type entry = { conn : conn; stream : int; job : Job.t }

type t = {
  listen_fd : Unix.file_descr;
  addr : Addr.t;
  queue : entry Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable shutdown : bool;
  mutable inflight : int;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable stopped : bool;
  max_queue : int;
  pool : Pool.t;
  obs : Obs.t;
  frames_in : Anonet_obs.Metrics.counter option;
  frames_out : Anonet_obs.Metrics.counter option;
  frames_rejected : Anonet_obs.Metrics.counter option;
  connections : Anonet_obs.Metrics.counter option;
  jobs_gauge : Anonet_obs.Metrics.gauge option;
  mutable accept_thread : Thread.t option;
  mutable worker_thread : Thread.t option;
}

(* ---------- connection plumbing ---------- *)

let close_fd_once conn =
  if not conn.closed then begin
    conn.closed <- true;
    (* shutdown first: a reader thread blocked in [read(2)] on this fd is
       not woken by a bare [close(2)] from another thread *)
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* With [conn.lock] held. *)
let maybe_close conn = if conn.draining && conn.pending = 0 then close_fd_once conn

let send t conn frame =
  let sent =
    Mutex.protect conn.lock (fun () ->
        (not conn.closed)
        &&
        try
          Frame.write conn.fd frame;
          true
        with Unix.Unix_error _ -> close_fd_once conn; false)
  in
  if sent then Obs.incr t.frames_out

let error_frame code message stream =
  { Frame.typ = Frame.Error; stream; payload = String.make 1 (Char.chr code) ^ message }

let result_frame out stream =
  { Frame.typ = Frame.Result; stream; payload = "\x00" ^ out }

(* ---------- job execution (worker side) ---------- *)

let job_done t conn =
  Mutex.protect conn.lock (fun () ->
      conn.pending <- conn.pending - 1;
      maybe_close conn);
  Mutex.protect t.qlock (fun () ->
      t.inflight <- t.inflight - 1;
      Obs.set t.jobs_gauge t.inflight)

let execute t { conn; stream; job } =
  let cancelled () =
    Mutex.protect conn.lock (fun () -> Hashtbl.mem conn.cancelled stream)
  in
  (if cancelled () then send t conn (error_frame rejected_code "cancelled" stream)
   else begin
     let emit line =
       if not (cancelled ()) then
         send t conn { Frame.typ = Frame.Event; stream; payload = line }
     in
     let obs = Obs.make ~events:(Events.ndjson_lines emit) () in
     let outcome =
       try Runner.execute ~obs job with
       | Runner.Bad_spec m -> { Runner.code = rejected_code; out = ""; err = m }
       | exn ->
         {
           Runner.code = rejected_code;
           out = "";
           err = "job failed: " ^ Printexc.to_string exn;
         }
     in
     if cancelled () then send t conn (error_frame rejected_code "cancelled" stream)
     else if outcome.Runner.code = 0 then
       send t conn (result_frame outcome.Runner.out stream)
     else send t conn (error_frame outcome.Runner.code outcome.Runner.err stream)
   end);
  job_done t conn

let rec worker t =
  Mutex.lock t.qlock;
  while Queue.is_empty t.queue && not t.shutdown do
    Condition.wait t.qcond t.qlock
  done;
  let item = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.qlock;
  match item with
  | None -> ()
  | Some entry ->
    execute t entry;
    worker t

(* ---------- frame handling (reader side) ---------- *)

let reject t conn stream code message =
  Obs.incr t.frames_rejected;
  send t conn (error_frame code message stream)

let handle_submit t conn stream payload =
  match Job.decode payload with
  | Error m -> reject t conn stream protocol_code ("malformed submit payload: " ^ m)
  | Ok job ->
    let verdict =
      Mutex.protect t.qlock (fun () ->
          if t.shutdown then `Reject "server shutting down"
          else if Queue.length t.queue >= t.max_queue then
            `Reject "server busy (job queue full)"
          else begin
            Mutex.protect conn.lock (fun () -> conn.pending <- conn.pending + 1);
            Queue.add { conn; stream; job } t.queue;
            t.inflight <- t.inflight + 1;
            Obs.set t.jobs_gauge t.inflight;
            Condition.signal t.qcond;
            `Accepted
          end)
    in
    (match verdict with
    | `Accepted -> ()
    | `Reject why -> reject t conn stream rejected_code why)

let handle t conn (frame : Frame.t) =
  match frame.Frame.typ with
  | Frame.Submit -> handle_submit t conn frame.Frame.stream frame.Frame.payload
  | Frame.Cancel ->
    Mutex.protect conn.lock (fun () ->
        Hashtbl.replace conn.cancelled frame.Frame.stream ())
  | Frame.Event | Frame.Result | Frame.Error ->
    reject t conn frame.Frame.stream protocol_code
      "unexpected server-to-client frame type from client"

let finish_reader conn =
  Mutex.protect conn.lock (fun () ->
      conn.draining <- true;
      maybe_close conn)

let rec reader t conn =
  match Frame.read conn.fd with
  | exception Unix.Unix_error _ -> finish_reader conn
  | Ok None -> finish_reader conn
  | Error e ->
    Obs.incr t.frames_rejected;
    send t conn
      (error_frame protocol_code
         (Format.asprintf "%a" Frame.pp_protocol_error e)
         0);
    finish_reader conn
  | Ok (Some frame) ->
    Obs.incr t.frames_in;
    handle t conn frame;
    reader t conn

(* ---------- lifecycle ---------- *)

let unlink_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ | (exception Unix.Unix_error _) -> ()

let accept_loop t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | fd, _peer ->
      Obs.incr t.connections;
      let conn =
        {
          fd;
          lock = Mutex.create ();
          closed = false;
          draining = false;
          pending = 0;
          cancelled = Hashtbl.create 7;
        }
      in
      let thread = Thread.create (fun () -> reader t conn) () in
      Mutex.protect t.qlock (fun () ->
          t.conns <- conn :: t.conns;
          t.readers <- thread :: t.readers);
      go ()
  in
  go ()

let start ?(obs = Obs.null) ?domains ?(max_queue = 64) addr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match addr with
  | Addr.Unix_sock path -> unlink_stale_socket path
  | Addr.Tcp _ -> ());
  let listen_fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
  (match addr with
  | Addr.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
  | Addr.Unix_sock _ -> ());
  (try Unix.bind listen_fd (Addr.sockaddr addr)
   with e -> (try Unix.close listen_fd with _ -> ()); raise e);
  Unix.listen listen_fd 16;
  let pool = Pool.create ~obs ?domains () in
  let t =
    {
      listen_fd;
      addr;
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      shutdown = false;
      inflight = 0;
      conns = [];
      readers = [];
      stopped = false;
      max_queue;
      pool;
      obs;
      frames_in = Obs.counter obs "server.frames.in";
      frames_out = Obs.counter obs "server.frames.out";
      frames_rejected = Obs.counter obs "server.frames.rejected";
      connections = Obs.counter obs "server.connections";
      jobs_gauge = Obs.gauge obs "server.jobs.in_flight";
      accept_thread = None;
      worker_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.worker_thread <-
    Some
      (Thread.create
         (fun () -> Pool.run pool ~n:(Pool.domains pool) (fun _ -> worker t))
         ());
  t

let bound_port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

let stop t =
  let first =
    Mutex.protect t.qlock (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          t.shutdown <- true;
          Condition.broadcast t.qcond;
          true
        end)
  in
  if first then begin
    (* wake the accept thread: on Linux a blocked [accept(2)] survives a
       plain [close(2)] from another thread, but [shutdown(2)] on the
       listening socket makes it return EINVAL *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (* workers drain the queue, then exit; running jobs finish *)
    Option.iter Thread.join t.worker_thread;
    let conns, readers =
      Mutex.protect t.qlock (fun () -> (t.conns, t.readers))
    in
    List.iter (fun c -> Mutex.protect c.lock (fun () -> close_fd_once c)) conns;
    List.iter Thread.join readers;
    Pool.shutdown t.pool;
    match t.addr with
    | Addr.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Addr.Tcp _ -> ()
  end

let run ?obs ?domains ?max_queue addr =
  let t = start ?obs ?domains ?max_queue addr in
  let rec forever () =
    Unix.sleep 86_400;
    forever ()
  in
  try forever () with e -> stop t; raise e
