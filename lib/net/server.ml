module Pool = Anonet_parallel.Pool
module Obs = Anonet_obs.Obs
module Events = Anonet_obs.Events
module Run_error = Anonet_runtime.Run_error

let protocol_code =
  Run_error.exit_code (Run_error.Net (Run_error.Protocol { message = "" }))

let rejected_code =
  Run_error.exit_code (Run_error.Net (Run_error.Rejected { message = "" }))

(* A connection whose outbox backs up this far has stopped reading its
   socket while jobs keep producing; it is treated as dead rather than
   buffering without bound. *)
let max_outbox = 16_384

type conn = {
  fd : Unix.file_descr;
  lock : Mutex.t;
      (* guards every mutable field below.  Two rules keep one stalled
         connection from wedging the server: [lock] is never held across
         I/O (only the writer thread touches the socket for output, and
         it writes with the lock released), and [lock] is never acquired
         while [t.qlock] is held (the reverse nesting would chain every
         reader and worker behind a single blocked connection). *)
  wake : Condition.t;  (* signals the writer: outbox or lifecycle changed *)
  outbox : Frame.t Queue.t;
  mutable closed : bool;
  mutable draining : bool;  (* reader finished; close once flushed + idle *)
  mutable pending : int;  (* queued + running jobs on this connection *)
  jobs : (int, bool ref) Hashtbl.t;
      (* stream id -> cancelled flag, live jobs only: entries are added
         when a submit is accepted and removed when the stream's final
         frame is enqueued, so a finished stream id can be reused and a
         stale [cancel] is a no-op instead of a poison pill *)
}

type entry = { conn : conn; stream : int; job : Job.t; cancelled : bool ref }

type t = {
  listen_fd : Unix.file_descr;
  addr : Addr.t;
  queue : entry Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable shutdown : bool;
  mutable inflight : int;
  mutable conns : conn list;
  mutable threads : Thread.t list;  (* one reader + one writer per conn *)
  mutable stopped : bool;
  max_queue : int;
  pool : Pool.t;
  obs : Obs.t;
  frames_in : Anonet_obs.Metrics.counter option;
  frames_out : Anonet_obs.Metrics.counter option;
  frames_rejected : Anonet_obs.Metrics.counter option;
  connections : Anonet_obs.Metrics.counter option;
  jobs_gauge : Anonet_obs.Metrics.gauge option;
  mutable accept_thread : Thread.t option;
  mutable worker_thread : Thread.t option;
}

(* ---------- connection plumbing ---------- *)

(* With [conn.lock] held. *)
let close_fd_once conn =
  if not conn.closed then begin
    conn.closed <- true;
    (* shutdown first: a reader thread blocked in [read(2)] on this fd is
       not woken by a bare [close(2)] from another thread *)
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* With [conn.lock] held: the peer is gone or not reading. *)
let kill_conn conn =
  close_fd_once conn;
  Queue.clear conn.outbox;
  Condition.broadcast conn.wake

(* [send] never touches the socket: it enqueues for the connection's
   writer thread, so callers (readers holding no lock, workers mid-job)
   can never block on a peer that has stopped reading. *)
let send _t conn frame =
  Mutex.protect conn.lock (fun () ->
      if not conn.closed then begin
        if Queue.length conn.outbox >= max_outbox then kill_conn conn
        else begin
          Queue.add frame conn.outbox;
          Condition.signal conn.wake
        end
      end)

(* With [conn.lock] held: nothing left to deliver, ever. *)
let conn_finished conn =
  conn.closed
  || (conn.draining && conn.pending = 0 && Queue.is_empty conn.outbox)

(* One writer thread per connection drains the outbox.  The socket has
   SO_SNDTIMEO set, so a write to a peer that stopped reading fails with
   EAGAIN after the timeout instead of blocking a thread forever — the
   connection is then dropped. *)
let writer t conn =
  let rec go () =
    Mutex.lock conn.lock;
    while Queue.is_empty conn.outbox && not (conn_finished conn) do
      Condition.wait conn.wake conn.lock
    done;
    if conn.closed || Queue.is_empty conn.outbox then begin
      (* closed, or drained with the last frame flushed *)
      close_fd_once conn;
      Mutex.unlock conn.lock
    end
    else begin
      let frame = Queue.pop conn.outbox in
      Mutex.unlock conn.lock;
      match Frame.write conn.fd frame with
      | () ->
        Obs.incr t.frames_out;
        go ()
      | exception Unix.Unix_error _ ->
        Mutex.protect conn.lock (fun () -> kill_conn conn)
    end
  in
  go ()

let error_frame code message stream =
  { Frame.typ = Frame.Error; stream; payload = String.make 1 (Char.chr code) ^ message }

let result_frame out stream =
  { Frame.typ = Frame.Result; stream; payload = "\x00" ^ out }

(* ---------- job execution (worker side) ---------- *)

(* Retires the stream id BEFORE its final frame is enqueued: a client
   that has read the stream's result can reuse the id (or send a stale
   cancel) without racing the server's own bookkeeping.  The worker
   keeps cancellation working through [entry.cancelled], which it holds
   directly. *)
let stream_done conn stream =
  Mutex.protect conn.lock (fun () -> Hashtbl.remove conn.jobs stream)

let job_done t conn =
  Mutex.protect conn.lock (fun () ->
      conn.pending <- conn.pending - 1;
      Condition.signal conn.wake);
  Mutex.protect t.qlock (fun () ->
      t.inflight <- t.inflight - 1;
      Obs.set t.jobs_gauge t.inflight)

let execute t { conn; stream; job; cancelled } =
  let is_cancelled () = Mutex.protect conn.lock (fun () -> !cancelled) in
  (if is_cancelled () then begin
     stream_done conn stream;
     send t conn (error_frame rejected_code "cancelled" stream)
   end
   else begin
     let emit line =
       if not (is_cancelled ()) then
         send t conn { Frame.typ = Frame.Event; stream; payload = line }
     in
     let obs = Obs.make ~events:(Events.ndjson_lines emit) () in
     let outcome =
       try Runner.execute ~obs job with
       | Runner.Bad_spec m -> { Runner.code = rejected_code; out = ""; err = m }
       | exn ->
         {
           Runner.code = rejected_code;
           out = "";
           err = "job failed: " ^ Printexc.to_string exn;
         }
     in
     stream_done conn stream;
     if is_cancelled () then
       send t conn (error_frame rejected_code "cancelled" stream)
     else if outcome.Runner.code = 0 then
       send t conn (result_frame outcome.Runner.out stream)
     else send t conn (error_frame outcome.Runner.code outcome.Runner.err stream)
   end);
  job_done t conn

let rec worker t =
  Mutex.lock t.qlock;
  while Queue.is_empty t.queue && not t.shutdown do
    Condition.wait t.qcond t.qlock
  done;
  let item = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.qlock;
  match item with
  | None -> ()
  | Some entry ->
    execute t entry;
    worker t

(* ---------- frame handling (reader side) ---------- *)

let reject t conn stream code message =
  Obs.incr t.frames_rejected;
  send t conn (error_frame code message stream)

let handle_submit t conn stream payload =
  match Job.decode payload with
  | Error m -> reject t conn stream protocol_code ("malformed submit payload: " ^ m)
  | Ok job ->
    let cancelled = ref false in
    (* claim the stream and a pending slot before taking [t.qlock] —
       see the lock-order rule on [conn.lock] *)
    let fresh =
      Mutex.protect conn.lock (fun () ->
          (not (Hashtbl.mem conn.jobs stream))
          && begin
               Hashtbl.replace conn.jobs stream cancelled;
               conn.pending <- conn.pending + 1;
               true
             end)
    in
    if not fresh then
      reject t conn stream protocol_code
        (Printf.sprintf "stream %d already has a job in flight" stream)
    else begin
      let verdict =
        Mutex.protect t.qlock (fun () ->
            if t.shutdown then `Reject "server shutting down"
            else if Queue.length t.queue >= t.max_queue then
              `Reject "server busy (job queue full)"
            else begin
              Queue.add { conn; stream; job; cancelled } t.queue;
              t.inflight <- t.inflight + 1;
              Obs.set t.jobs_gauge t.inflight;
              Condition.signal t.qcond;
              `Accepted
            end)
      in
      match verdict with
      | `Accepted -> ()
      | `Reject why ->
        Mutex.protect conn.lock (fun () ->
            Hashtbl.remove conn.jobs stream;
            conn.pending <- conn.pending - 1;
            Condition.signal conn.wake);
        reject t conn stream rejected_code why
    end

let handle t conn (frame : Frame.t) =
  match frame.Frame.typ with
  | Frame.Submit -> handle_submit t conn frame.Frame.stream frame.Frame.payload
  | Frame.Cancel ->
    Mutex.protect conn.lock (fun () ->
        match Hashtbl.find_opt conn.jobs frame.Frame.stream with
        | Some flag -> flag := true
        | None -> ())  (* finished or never submitted: nothing to cancel *)
  | Frame.Event | Frame.Result | Frame.Error ->
    reject t conn frame.Frame.stream protocol_code
      "unexpected server-to-client frame type from client"

let finish_reader conn =
  Mutex.protect conn.lock (fun () ->
      conn.draining <- true;
      Condition.signal conn.wake)

let rec reader t conn =
  match Frame.read conn.fd with
  | exception Unix.Unix_error _ -> finish_reader conn
  | Ok None -> finish_reader conn
  | Error e ->
    Obs.incr t.frames_rejected;
    send t conn
      (error_frame protocol_code
         (Format.asprintf "%a" Frame.pp_protocol_error e)
         0);
    finish_reader conn
  | Ok (Some frame) ->
    Obs.incr t.frames_in;
    handle t conn frame;
    reader t conn

(* ---------- lifecycle ---------- *)

let unlink_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ | (exception Unix.Unix_error _) -> ()

let accept_loop t ~send_timeout =
  let rec go () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | fd, _peer ->
      Obs.incr t.connections;
      if send_timeout > 0. then
        (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO send_timeout
         with Unix.Unix_error _ -> ());
      let conn =
        {
          fd;
          lock = Mutex.create ();
          wake = Condition.create ();
          outbox = Queue.create ();
          closed = false;
          draining = false;
          pending = 0;
          jobs = Hashtbl.create 7;
        }
      in
      let rd = Thread.create (fun () -> reader t conn) () in
      let wr = Thread.create (fun () -> writer t conn) () in
      Mutex.protect t.qlock (fun () ->
          t.conns <- conn :: t.conns;
          t.threads <- rd :: wr :: t.threads);
      go ()
  in
  go ()

let start ?(obs = Obs.null) ?domains ?(max_queue = 64) ?(send_timeout = 30.)
    addr =
  match Addr.resolve addr with
  | Error m -> Error m
  | Ok (domain, sockaddr) ->
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (match addr with
    | Addr.Unix_sock path -> unlink_stale_socket path
    | Addr.Tcp _ -> ());
    let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match
      (match addr with
      | Addr.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
      | Addr.Unix_sock _ -> ());
      Unix.bind listen_fd sockaddr;
      Unix.listen listen_fd 16
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot listen on %s: %s" (Addr.to_string addr)
           (Unix.error_message e))
    | () ->
      let pool = Pool.create ~obs ?domains () in
      let t =
        {
          listen_fd;
          addr;
          queue = Queue.create ();
          qlock = Mutex.create ();
          qcond = Condition.create ();
          shutdown = false;
          inflight = 0;
          conns = [];
          threads = [];
          stopped = false;
          max_queue;
          pool;
          obs;
          frames_in = Obs.counter obs "server.frames.in";
          frames_out = Obs.counter obs "server.frames.out";
          frames_rejected = Obs.counter obs "server.frames.rejected";
          connections = Obs.counter obs "server.connections";
          jobs_gauge = Obs.gauge obs "server.jobs.in_flight";
          accept_thread = None;
          worker_thread = None;
        }
      in
      t.accept_thread <-
        Some (Thread.create (fun () -> accept_loop t ~send_timeout) ());
      t.worker_thread <-
        Some
          (Thread.create
             (fun () -> Pool.run pool ~n:(Pool.domains pool) (fun _ -> worker t))
             ());
      Ok t

let bound_port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

let stop t =
  let first =
    Mutex.protect t.qlock (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          t.shutdown <- true;
          Condition.broadcast t.qcond;
          true
        end)
  in
  if first then begin
    (* wake the accept thread: on Linux a blocked [accept(2)] survives a
       plain [close(2)] from another thread, but [shutdown(2)] on the
       listening socket makes it return EINVAL *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (* workers drain the queue, then exit; running jobs finish and their
       final frames land in the per-connection outboxes *)
    Option.iter Thread.join t.worker_thread;
    let conns, threads =
      Mutex.protect t.qlock (fun () -> (t.conns, t.threads))
    in
    (* mark every connection draining: its writer flushes what is left
       (bounded by SO_SNDTIMEO per write) and then closes the fd, which
       wakes the reader out of [read(2)] *)
    List.iter
      (fun c ->
        Mutex.protect c.lock (fun () ->
            c.draining <- true;
            Condition.broadcast c.wake))
      conns;
    List.iter Thread.join threads;
    Pool.shutdown t.pool;
    match t.addr with
    | Addr.Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Addr.Tcp _ -> ()
  end
