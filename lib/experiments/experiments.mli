(** The experiment harness: one executable experiment per figure and
    theorem of the paper, as indexed in DESIGN.md and recorded in
    EXPERIMENTS.md.  Each experiment prints its series to stdout and
    asserts its own invariants (a failed claim raises).

    Ids: [f1] [f2] [f3] (the figures), [t2] [t3] (theorems), [lemmas],
    [a1] [a2] [a3] [a4] (ablations), [e1] [e2] (extensions), [r1]
    (robustness under injected faults). *)

(** Id-indexed experiments: [(id, (description, run))]. *)
val all : (string * (string * (unit -> unit))) list

(** Run every experiment in order. *)
val run_all : unit -> unit

(** Run one experiment by id (case-insensitive). *)
val run : string -> (unit, string) result
