(** The experiment harness: one executable experiment per figure and
    theorem of the paper, as indexed in DESIGN.md and recorded in
    EXPERIMENTS.md.  Each experiment prints its series to stdout and
    asserts its own invariants (a failed claim raises).

    Ids: [f1] [f2] [f3] (the figures), [t2] [t3] (theorems), [lemmas],
    [a1] [a2] [a3] [a4] (ablations), [e1] [e2] (extensions), [r1]
    (robustness under injected faults).

    Every experiment accepts [?pool] (a {!Anonet_parallel.Pool.t}).
    Experiments whose rows are independent graph-family measurements fan
    the rows out across the pool's domains, collecting each row's fully
    formatted text and printing in input order — output is byte-identical
    to a sequential run.  [a1]/[a2] instead thread the pool into the
    minimal-simulation search itself (their rows report wall-clock time,
    which fanning would distort).  With no pool (or a 1-domain pool)
    everything runs sequentially, as before. *)

(** Id-indexed experiments: [(id, (description, run))]. *)
val all : (string * (string * (?pool:Anonet_parallel.Pool.t -> unit -> unit))) list

(** Run every experiment in order. *)
val run_all : ?pool:Anonet_parallel.Pool.t -> unit -> unit

(** Run one experiment by id (case-insensitive). *)
val run : ?pool:Anonet_parallel.Pool.t -> string -> (unit, string) result
