(** The experiment harness: one executable experiment per figure and
    theorem of the paper, as indexed in DESIGN.md and recorded in
    EXPERIMENTS.md.  Each experiment computes a structured {!output} —
    a list of {!row}s with typed fields — and asserts its own invariants
    (a failed claim raises).  {e Printing is the caller's job}: {!render}
    reproduces the historical stdout format byte-for-byte, so
    [render stdout] after [run] is exactly the old behavior, while
    programmatic consumers (the benchmark JSON, the event stream, tests)
    read the fields instead of re-parsing text.

    Ids: [f1] [f2] [f3] (the figures), [t2] [t3] (theorems), [lemmas],
    [a1] [a2] [a3] [a4] (ablations), [e1] [e2] (extensions), [r1]
    (robustness under injected faults), [r2] (degradation curves under an
    adaptive adversary), [avg] (average-case statistics — Norris depth,
    greedy 2-hop palette, MIS rounds — over seeded G(n,p) and
    random-regular ensembles; sizes default to n = 10^3, 10^4 and scale
    to 10^6 via the ANONET_AVG_NS environment variable).

    From the context: [ctx.pool] fans independent graph-family rows out
    across the pool's domains (results are merged in input order — the
    output is identical to a sequential run); [a1]/[a2] instead thread
    the context into the minimal-simulation search itself (their rows
    report wall-clock time, which fanning would distort).  [ctx.obs],
    when live, gets one ["experiment.row"] event per row (fields
    included) and an [experiment.<id>] span per experiment, plus
    whatever the instrumented runtime underneath emits. *)

type row = {
  experiment : string;  (** owning experiment id, e.g. ["t2"] *)
  label : string;  (** row key within the experiment, e.g. ["c12/3colors"] *)
  fields : (string * Anonet_obs.Events.value) list;
      (** the row's measurements, typed; what ["experiment.row"] events carry *)
  line : string;
      (** the row rendered exactly as the historical stdout format
          (newline-terminated; may span several lines) *)
}

type output = {
  id : string;
  title : string;  (** banner title, e.g. ["T2  Theorem 2: ..."] *)
  prelude : string;
      (** everything printed before the rows: banner, column headers,
          any figure text *)
  rows : row list;
  coda : string;  (** the ["shape: ..."] trailer *)
}

(** [(id, description)] for every experiment, in run order. *)
val all : (string * string) list

(** Run one experiment by id (case-insensitive). *)
val run : ?ctx:Anonet_runtime.Run_ctx.t -> string -> (output, string) result

(** Run every experiment in order. *)
val run_all : ?ctx:Anonet_runtime.Run_ctx.t -> unit -> output list

(** [render oc out] writes the experiment in the historical stdout
    format: prelude, then each row's [line], then the coda. *)
val render : out_channel -> output -> unit
